file(REMOVE_RECURSE
  "CMakeFiles/test_revng.dir/test_revng.cc.o"
  "CMakeFiles/test_revng.dir/test_revng.cc.o.d"
  "test_revng"
  "test_revng.pdb"
  "test_revng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_revng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
