# Empty dependencies file for test_revng.
# This may be replaced when dependencies are built.
