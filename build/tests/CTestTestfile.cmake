# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_memsys[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_revng[1]_include.cmake")
include("/root/repo/build/tests/test_hammer[1]_include.cmake")
include("/root/repo/build/tests/test_exploit[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
