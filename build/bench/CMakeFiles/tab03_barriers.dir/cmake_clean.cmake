file(REMOVE_RECURSE
  "CMakeFiles/tab03_barriers.dir/tab03_barriers.cc.o"
  "CMakeFiles/tab03_barriers.dir/tab03_barriers.cc.o.d"
  "tab03_barriers"
  "tab03_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
