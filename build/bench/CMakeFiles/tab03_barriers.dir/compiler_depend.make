# Empty compiler generated dependencies file for tab03_barriers.
# This may be replaced when dependencies are built.
