file(REMOVE_RECURSE
  "CMakeFiles/tab06_fuzzing.dir/tab06_fuzzing.cc.o"
  "CMakeFiles/tab06_fuzzing.dir/tab06_fuzzing.cc.o.d"
  "tab06_fuzzing"
  "tab06_fuzzing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_fuzzing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
