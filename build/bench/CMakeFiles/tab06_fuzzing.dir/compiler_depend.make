# Empty compiler generated dependencies file for tab06_fuzzing.
# This may be replaced when dependencies are built.
