file(REMOVE_RECURSE
  "CMakeFiles/sec53_end_to_end.dir/sec53_end_to_end.cc.o"
  "CMakeFiles/sec53_end_to_end.dir/sec53_end_to_end.cc.o.d"
  "sec53_end_to_end"
  "sec53_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
