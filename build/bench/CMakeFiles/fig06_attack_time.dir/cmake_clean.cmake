file(REMOVE_RECURSE
  "CMakeFiles/fig06_attack_time.dir/fig06_attack_time.cc.o"
  "CMakeFiles/fig06_attack_time.dir/fig06_attack_time.cc.o.d"
  "fig06_attack_time"
  "fig06_attack_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_attack_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
