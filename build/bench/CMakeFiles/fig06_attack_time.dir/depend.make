# Empty dependencies file for fig06_attack_time.
# This may be replaced when dependencies are built.
