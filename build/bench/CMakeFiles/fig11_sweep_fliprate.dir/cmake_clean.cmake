file(REMOVE_RECURSE
  "CMakeFiles/fig11_sweep_fliprate.dir/fig11_sweep_fliprate.cc.o"
  "CMakeFiles/fig11_sweep_fliprate.dir/fig11_sweep_fliprate.cc.o.d"
  "fig11_sweep_fliprate"
  "fig11_sweep_fliprate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sweep_fliprate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
