# Empty compiler generated dependencies file for fig11_sweep_fliprate.
# This may be replaced when dependencies are built.
