# Empty dependencies file for fig08_multibank_missrate.
# This may be replaced when dependencies are built.
