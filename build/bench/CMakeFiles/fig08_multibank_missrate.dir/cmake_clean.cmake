file(REMOVE_RECURSE
  "CMakeFiles/fig08_multibank_missrate.dir/fig08_multibank_missrate.cc.o"
  "CMakeFiles/fig08_multibank_missrate.dir/fig08_multibank_missrate.cc.o.d"
  "fig08_multibank_missrate"
  "fig08_multibank_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_multibank_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
