# Empty dependencies file for fig04_sbdr_heatmap.
# This may be replaced when dependencies are built.
