# Empty compiler generated dependencies file for fig03_threshold_distribution.
# This may be replaced when dependencies are built.
