file(REMOVE_RECURSE
  "CMakeFiles/fig09_multibank_flips.dir/fig09_multibank_flips.cc.o"
  "CMakeFiles/fig09_multibank_flips.dir/fig09_multibank_flips.cc.o.d"
  "fig09_multibank_flips"
  "fig09_multibank_flips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_multibank_flips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
