# Empty dependencies file for fig09_multibank_flips.
# This may be replaced when dependencies are built.
