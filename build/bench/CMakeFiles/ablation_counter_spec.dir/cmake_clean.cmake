file(REMOVE_RECURSE
  "CMakeFiles/ablation_counter_spec.dir/ablation_counter_spec.cc.o"
  "CMakeFiles/ablation_counter_spec.dir/ablation_counter_spec.cc.o.d"
  "ablation_counter_spec"
  "ablation_counter_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_counter_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
