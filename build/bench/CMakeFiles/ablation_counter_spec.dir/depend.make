# Empty dependencies file for ablation_counter_spec.
# This may be replaced when dependencies are built.
