file(REMOVE_RECURSE
  "CMakeFiles/tab04_mappings.dir/tab04_mappings.cc.o"
  "CMakeFiles/tab04_mappings.dir/tab04_mappings.cc.o.d"
  "tab04_mappings"
  "tab04_mappings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
