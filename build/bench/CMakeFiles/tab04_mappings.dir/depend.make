# Empty dependencies file for tab04_mappings.
# This may be replaced when dependencies are built.
