# Empty dependencies file for tab05_re_time.
# This may be replaced when dependencies are built.
