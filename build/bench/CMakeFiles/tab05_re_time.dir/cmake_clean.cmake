file(REMOVE_RECURSE
  "CMakeFiles/tab05_re_time.dir/tab05_re_time.cc.o"
  "CMakeFiles/tab05_re_time.dir/tab05_re_time.cc.o.d"
  "tab05_re_time"
  "tab05_re_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_re_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
