# Empty dependencies file for fig10_nop_sweep.
# This may be replaced when dependencies are built.
