file(REMOVE_RECURSE
  "CMakeFiles/rho_common.dir/common/gf2.cc.o"
  "CMakeFiles/rho_common.dir/common/gf2.cc.o.d"
  "CMakeFiles/rho_common.dir/common/logging.cc.o"
  "CMakeFiles/rho_common.dir/common/logging.cc.o.d"
  "CMakeFiles/rho_common.dir/common/rng.cc.o"
  "CMakeFiles/rho_common.dir/common/rng.cc.o.d"
  "CMakeFiles/rho_common.dir/common/stats.cc.o"
  "CMakeFiles/rho_common.dir/common/stats.cc.o.d"
  "CMakeFiles/rho_common.dir/common/table.cc.o"
  "CMakeFiles/rho_common.dir/common/table.cc.o.d"
  "librho_common.a"
  "librho_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rho_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
