file(REMOVE_RECURSE
  "librho_common.a"
)
