# Empty compiler generated dependencies file for rho_common.
# This may be replaced when dependencies are built.
