
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/revng/baseline_dare.cc" "src/CMakeFiles/rho_revng.dir/revng/baseline_dare.cc.o" "gcc" "src/CMakeFiles/rho_revng.dir/revng/baseline_dare.cc.o.d"
  "/root/repo/src/revng/baseline_drama.cc" "src/CMakeFiles/rho_revng.dir/revng/baseline_drama.cc.o" "gcc" "src/CMakeFiles/rho_revng.dir/revng/baseline_drama.cc.o.d"
  "/root/repo/src/revng/baseline_dramdig.cc" "src/CMakeFiles/rho_revng.dir/revng/baseline_dramdig.cc.o" "gcc" "src/CMakeFiles/rho_revng.dir/revng/baseline_dramdig.cc.o.d"
  "/root/repo/src/revng/reverse_engineer.cc" "src/CMakeFiles/rho_revng.dir/revng/reverse_engineer.cc.o" "gcc" "src/CMakeFiles/rho_revng.dir/revng/reverse_engineer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rho_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
