file(REMOVE_RECURSE
  "librho_revng.a"
)
