file(REMOVE_RECURSE
  "CMakeFiles/rho_revng.dir/revng/baseline_dare.cc.o"
  "CMakeFiles/rho_revng.dir/revng/baseline_dare.cc.o.d"
  "CMakeFiles/rho_revng.dir/revng/baseline_drama.cc.o"
  "CMakeFiles/rho_revng.dir/revng/baseline_drama.cc.o.d"
  "CMakeFiles/rho_revng.dir/revng/baseline_dramdig.cc.o"
  "CMakeFiles/rho_revng.dir/revng/baseline_dramdig.cc.o.d"
  "CMakeFiles/rho_revng.dir/revng/reverse_engineer.cc.o"
  "CMakeFiles/rho_revng.dir/revng/reverse_engineer.cc.o.d"
  "librho_revng.a"
  "librho_revng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rho_revng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
