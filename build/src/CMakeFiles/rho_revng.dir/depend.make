# Empty dependencies file for rho_revng.
# This may be replaced when dependencies are built.
