# Empty dependencies file for rho_memsys.
# This may be replaced when dependencies are built.
