file(REMOVE_RECURSE
  "CMakeFiles/rho_memsys.dir/memsys/memory_system.cc.o"
  "CMakeFiles/rho_memsys.dir/memsys/memory_system.cc.o.d"
  "CMakeFiles/rho_memsys.dir/memsys/timing_probe.cc.o"
  "CMakeFiles/rho_memsys.dir/memsys/timing_probe.cc.o.d"
  "librho_memsys.a"
  "librho_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rho_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
