file(REMOVE_RECURSE
  "librho_memsys.a"
)
