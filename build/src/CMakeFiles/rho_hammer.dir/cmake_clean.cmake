file(REMOVE_RECURSE
  "CMakeFiles/rho_hammer.dir/hammer/flip_analysis.cc.o"
  "CMakeFiles/rho_hammer.dir/hammer/flip_analysis.cc.o.d"
  "CMakeFiles/rho_hammer.dir/hammer/hammer_session.cc.o"
  "CMakeFiles/rho_hammer.dir/hammer/hammer_session.cc.o.d"
  "CMakeFiles/rho_hammer.dir/hammer/nop_tuner.cc.o"
  "CMakeFiles/rho_hammer.dir/hammer/nop_tuner.cc.o.d"
  "CMakeFiles/rho_hammer.dir/hammer/pattern.cc.o"
  "CMakeFiles/rho_hammer.dir/hammer/pattern.cc.o.d"
  "CMakeFiles/rho_hammer.dir/hammer/pattern_fuzzer.cc.o"
  "CMakeFiles/rho_hammer.dir/hammer/pattern_fuzzer.cc.o.d"
  "CMakeFiles/rho_hammer.dir/hammer/sweep.cc.o"
  "CMakeFiles/rho_hammer.dir/hammer/sweep.cc.o.d"
  "CMakeFiles/rho_hammer.dir/hammer/tuned_configs.cc.o"
  "CMakeFiles/rho_hammer.dir/hammer/tuned_configs.cc.o.d"
  "librho_hammer.a"
  "librho_hammer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rho_hammer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
