# Empty dependencies file for rho_hammer.
# This may be replaced when dependencies are built.
