
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hammer/flip_analysis.cc" "src/CMakeFiles/rho_hammer.dir/hammer/flip_analysis.cc.o" "gcc" "src/CMakeFiles/rho_hammer.dir/hammer/flip_analysis.cc.o.d"
  "/root/repo/src/hammer/hammer_session.cc" "src/CMakeFiles/rho_hammer.dir/hammer/hammer_session.cc.o" "gcc" "src/CMakeFiles/rho_hammer.dir/hammer/hammer_session.cc.o.d"
  "/root/repo/src/hammer/nop_tuner.cc" "src/CMakeFiles/rho_hammer.dir/hammer/nop_tuner.cc.o" "gcc" "src/CMakeFiles/rho_hammer.dir/hammer/nop_tuner.cc.o.d"
  "/root/repo/src/hammer/pattern.cc" "src/CMakeFiles/rho_hammer.dir/hammer/pattern.cc.o" "gcc" "src/CMakeFiles/rho_hammer.dir/hammer/pattern.cc.o.d"
  "/root/repo/src/hammer/pattern_fuzzer.cc" "src/CMakeFiles/rho_hammer.dir/hammer/pattern_fuzzer.cc.o" "gcc" "src/CMakeFiles/rho_hammer.dir/hammer/pattern_fuzzer.cc.o.d"
  "/root/repo/src/hammer/sweep.cc" "src/CMakeFiles/rho_hammer.dir/hammer/sweep.cc.o" "gcc" "src/CMakeFiles/rho_hammer.dir/hammer/sweep.cc.o.d"
  "/root/repo/src/hammer/tuned_configs.cc" "src/CMakeFiles/rho_hammer.dir/hammer/tuned_configs.cc.o" "gcc" "src/CMakeFiles/rho_hammer.dir/hammer/tuned_configs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rho_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
