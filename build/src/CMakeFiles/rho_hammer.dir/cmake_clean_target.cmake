file(REMOVE_RECURSE
  "librho_hammer.a"
)
