# Empty compiler generated dependencies file for rho_dram.
# This may be replaced when dependencies are built.
