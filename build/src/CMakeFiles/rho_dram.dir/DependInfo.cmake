
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/controller.cc" "src/CMakeFiles/rho_dram.dir/dram/controller.cc.o" "gcc" "src/CMakeFiles/rho_dram.dir/dram/controller.cc.o.d"
  "/root/repo/src/dram/dimm.cc" "src/CMakeFiles/rho_dram.dir/dram/dimm.cc.o" "gcc" "src/CMakeFiles/rho_dram.dir/dram/dimm.cc.o.d"
  "/root/repo/src/dram/dimm_profile.cc" "src/CMakeFiles/rho_dram.dir/dram/dimm_profile.cc.o" "gcc" "src/CMakeFiles/rho_dram.dir/dram/dimm_profile.cc.o.d"
  "/root/repo/src/dram/rfm.cc" "src/CMakeFiles/rho_dram.dir/dram/rfm.cc.o" "gcc" "src/CMakeFiles/rho_dram.dir/dram/rfm.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/CMakeFiles/rho_dram.dir/dram/timing.cc.o" "gcc" "src/CMakeFiles/rho_dram.dir/dram/timing.cc.o.d"
  "/root/repo/src/dram/trr.cc" "src/CMakeFiles/rho_dram.dir/dram/trr.cc.o" "gcc" "src/CMakeFiles/rho_dram.dir/dram/trr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rho_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_mapping.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
