file(REMOVE_RECURSE
  "CMakeFiles/rho_dram.dir/dram/controller.cc.o"
  "CMakeFiles/rho_dram.dir/dram/controller.cc.o.d"
  "CMakeFiles/rho_dram.dir/dram/dimm.cc.o"
  "CMakeFiles/rho_dram.dir/dram/dimm.cc.o.d"
  "CMakeFiles/rho_dram.dir/dram/dimm_profile.cc.o"
  "CMakeFiles/rho_dram.dir/dram/dimm_profile.cc.o.d"
  "CMakeFiles/rho_dram.dir/dram/rfm.cc.o"
  "CMakeFiles/rho_dram.dir/dram/rfm.cc.o.d"
  "CMakeFiles/rho_dram.dir/dram/timing.cc.o"
  "CMakeFiles/rho_dram.dir/dram/timing.cc.o.d"
  "CMakeFiles/rho_dram.dir/dram/trr.cc.o"
  "CMakeFiles/rho_dram.dir/dram/trr.cc.o.d"
  "librho_dram.a"
  "librho_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rho_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
