file(REMOVE_RECURSE
  "librho_dram.a"
)
