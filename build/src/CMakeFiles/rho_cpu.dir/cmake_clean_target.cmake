file(REMOVE_RECURSE
  "librho_cpu.a"
)
