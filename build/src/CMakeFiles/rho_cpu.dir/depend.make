# Empty dependencies file for rho_cpu.
# This may be replaced when dependencies are built.
