file(REMOVE_RECURSE
  "CMakeFiles/rho_cpu.dir/cpu/arch_params.cc.o"
  "CMakeFiles/rho_cpu.dir/cpu/arch_params.cc.o.d"
  "CMakeFiles/rho_cpu.dir/cpu/branch_predictor.cc.o"
  "CMakeFiles/rho_cpu.dir/cpu/branch_predictor.cc.o.d"
  "CMakeFiles/rho_cpu.dir/cpu/kernel.cc.o"
  "CMakeFiles/rho_cpu.dir/cpu/kernel.cc.o.d"
  "CMakeFiles/rho_cpu.dir/cpu/sim_cpu.cc.o"
  "CMakeFiles/rho_cpu.dir/cpu/sim_cpu.cc.o.d"
  "librho_cpu.a"
  "librho_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rho_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
