
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/arch_params.cc" "src/CMakeFiles/rho_cpu.dir/cpu/arch_params.cc.o" "gcc" "src/CMakeFiles/rho_cpu.dir/cpu/arch_params.cc.o.d"
  "/root/repo/src/cpu/branch_predictor.cc" "src/CMakeFiles/rho_cpu.dir/cpu/branch_predictor.cc.o" "gcc" "src/CMakeFiles/rho_cpu.dir/cpu/branch_predictor.cc.o.d"
  "/root/repo/src/cpu/kernel.cc" "src/CMakeFiles/rho_cpu.dir/cpu/kernel.cc.o" "gcc" "src/CMakeFiles/rho_cpu.dir/cpu/kernel.cc.o.d"
  "/root/repo/src/cpu/sim_cpu.cc" "src/CMakeFiles/rho_cpu.dir/cpu/sim_cpu.cc.o" "gcc" "src/CMakeFiles/rho_cpu.dir/cpu/sim_cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rho_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_mapping.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
