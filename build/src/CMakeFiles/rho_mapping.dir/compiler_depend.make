# Empty compiler generated dependencies file for rho_mapping.
# This may be replaced when dependencies are built.
