file(REMOVE_RECURSE
  "librho_mapping.a"
)
