file(REMOVE_RECURSE
  "CMakeFiles/rho_mapping.dir/mapping/address_mapping.cc.o"
  "CMakeFiles/rho_mapping.dir/mapping/address_mapping.cc.o.d"
  "CMakeFiles/rho_mapping.dir/mapping/mapping_presets.cc.o"
  "CMakeFiles/rho_mapping.dir/mapping/mapping_presets.cc.o.d"
  "librho_mapping.a"
  "librho_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rho_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
