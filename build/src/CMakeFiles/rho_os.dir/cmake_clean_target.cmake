file(REMOVE_RECURSE
  "librho_os.a"
)
