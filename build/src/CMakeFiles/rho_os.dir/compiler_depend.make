# Empty compiler generated dependencies file for rho_os.
# This may be replaced when dependencies are built.
