file(REMOVE_RECURSE
  "CMakeFiles/rho_os.dir/os/buddy_allocator.cc.o"
  "CMakeFiles/rho_os.dir/os/buddy_allocator.cc.o.d"
  "CMakeFiles/rho_os.dir/os/page_table.cc.o"
  "CMakeFiles/rho_os.dir/os/page_table.cc.o.d"
  "CMakeFiles/rho_os.dir/os/pagemap.cc.o"
  "CMakeFiles/rho_os.dir/os/pagemap.cc.o.d"
  "librho_os.a"
  "librho_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rho_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
