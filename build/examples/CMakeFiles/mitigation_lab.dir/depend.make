# Empty dependencies file for mitigation_lab.
# This may be replaced when dependencies are built.
