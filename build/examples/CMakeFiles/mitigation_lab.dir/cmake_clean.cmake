file(REMOVE_RECURSE
  "CMakeFiles/mitigation_lab.dir/mitigation_lab.cc.o"
  "CMakeFiles/mitigation_lab.dir/mitigation_lab.cc.o.d"
  "mitigation_lab"
  "mitigation_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
