
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fuzz_campaign.cc" "examples/CMakeFiles/fuzz_campaign.dir/fuzz_campaign.cc.o" "gcc" "examples/CMakeFiles/fuzz_campaign.dir/fuzz_campaign.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rho_revng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_exploit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_hammer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rho_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
