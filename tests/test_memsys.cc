/**
 * @file
 * Tests for MemorySystem composition and the SBDR timing probe.
 */

#include <gtest/gtest.h>

#include "memsys/memory_system.hh"
#include "memsys/timing_probe.hh"

using namespace rho;

TEST(MemorySystem, ComposesMappingFromArchAndDimm)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S1"));
    EXPECT_EQ(sys.mapping().memBytes(), 16ULL << 30);
    EXPECT_EQ(sys.mapping().numBanks(), 32u);
    EXPECT_TRUE(sys.mapping().sameBankAndRowStructure(
        mappingFor(Arch::RaptorLake, 16, 2)));
}

TEST(MemorySystem, ClampsDimmToPlatformFrequency)
{
    // S1 is a 3200 MT/s DIMM; Comet Lake only drives 2933.
    MemorySystem sys(Arch::CometLake, DimmProfile::byId("S1"));
    EXPECT_NEAR(sys.dimm().timing().tCK, 2000.0 / 2933, 1e-6);
    MemorySystem sys2(Arch::RaptorLake, DimmProfile::byId("S1"));
    EXPECT_NEAR(sys2.dimm().timing().tCK, 0.625, 1e-6);
}

TEST(MemorySystem, ClockAdvancesMonotonically)
{
    MemorySystem sys(Arch::CometLake, DimmProfile::byId("S2"));
    EXPECT_EQ(sys.now(), 0.0);
    sys.dramAccess(0x1000, 100.0);
    EXPECT_GE(sys.now(), 100.0);
    Ns t = sys.now();
    sys.dramAccess(0x2000, 50.0); // stale timestamp must not rewind
    EXPECT_GE(sys.now(), t);
    sys.advance(500.0);
    EXPECT_GE(sys.now(), t + 500.0);
}

TEST(MemorySystem, FunctionalDataPath)
{
    MemorySystem sys(Arch::AlderLake, DimmProfile::byId("S2"));
    sys.writeByte(0xdead00, 0x5a);
    EXPECT_EQ(sys.readByte(0xdead00), 0x5a);
    EXPECT_EQ(sys.readByte(0xdead01), 0x00);
}

namespace
{

/** Pick a pair with the given relationship via the mapping. */
PhysAddr
partnerFor(const AddressMapping &m, PhysAddr a, bool same_bank,
           bool same_row)
{
    DramAddr da = m.decode(a);
    DramAddr db = da;
    if (!same_bank)
        db.bank = (da.bank + 1) % m.numBanks();
    if (!same_row)
        db.row = da.row + 64;
    return m.encode(db);
}

} // namespace

class ProbeCase : public ::testing::TestWithParam<Arch>
{
};

TEST_P(ProbeCase, SbdrSlowerThanSameRowAndDiffBank)
{
    MemorySystem sys(GetParam(), DimmProfile::byId("S1"));
    TimingProbe probe(sys, 42);
    const auto &m = sys.mapping();
    PhysAddr a = m.encode({3, 1000, 0});

    double sbdr = probe.measurePair(a, partnerFor(m, a, true, false));
    double sr = probe.measurePair(a, partnerFor(m, a, true, true) + 256);
    double db = probe.measurePair(a, partnerFor(m, a, false, false));

    EXPECT_GT(sbdr, sr + 10.0);
    EXPECT_GT(sbdr, db + 10.0);
    EXPECT_NEAR(sr, db, 8.0);
}

INSTANTIATE_TEST_SUITE_P(AllArchs, ProbeCase,
                         ::testing::ValuesIn(allArchs));

TEST(TimingProbe, AdvancesClockAndCountsAccesses)
{
    MemorySystem sys(Arch::CometLake, DimmProfile::byId("S2"));
    TimingProbe probe(sys, 7);
    Ns t0 = sys.now();
    probe.measurePair(0x1000, 0x2000, 50);
    EXPECT_EQ(probe.accessCount(), 100u);
    EXPECT_GT(sys.now(), t0 + 100 * 40.0); // >= overhead+latency each
}

TEST(TimingProbe, MeasurementNoiseIsBounded)
{
    MemorySystem sys(Arch::CometLake, DimmProfile::byId("S2"));
    TimingProbe probe(sys, 7, /*noise_sigma=*/1.0);
    PhysAddr a = sys.mapping().encode({0, 10, 0});
    PhysAddr b = sys.mapping().encode({0, 500, 0});
    double first = probe.measurePair(a, b);
    for (int i = 0; i < 10; ++i) {
        double again = probe.measurePair(a, b);
        EXPECT_NEAR(again, first, 8.0);
    }
}
