/**
 * @file
 * Tests for the flip-set analysis utilities.
 */

#include <gtest/gtest.h>

#include "hammer/flip_analysis.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

TEST(FlipAnalysis, CountsAndClassifies)
{
    std::vector<FlipRecord> flips = {
        {0, 100, 64 * 8 + 13, true, 1.0},  // qword bit 13: exploitable
        {0, 100, 64 * 8 + 13, true, 2.0},
        {0, 101, 7, false, 3.0},           // qword bit 7: not
        {1, 200, 64 + 20, true, 4.0},      // qword bit 20: not
    };
    FlipStats s = analyzeFlips(flips);
    EXPECT_EQ(s.total, 4u);
    EXPECT_EQ(s.toOne, 3u);
    EXPECT_EQ(s.toZero, 1u);
    EXPECT_EQ(s.uniqueRows, 3u);
    EXPECT_EQ(s.uniqueBanks, 2u);
    EXPECT_EQ(s.maxPerRow, 2u);
    EXPECT_EQ(s.pteExploitable, 2u);
    EXPECT_DOUBLE_EQ(s.toOneRatio(), 0.75);
    EXPECT_DOUBLE_EQ(s.exploitableRatio(), 0.5);
    EXPECT_EQ(s.bitInQword[13], 2u);
    EXPECT_NE(s.describe().find("4 flips"), std::string::npos);
}

TEST(FlipAnalysis, EmptySetIsSafe)
{
    FlipStats s = analyzeFlips({});
    EXPECT_EQ(s.total, 0u);
    EXPECT_EQ(s.toOneRatio(), 0.0);
    EXPECT_EQ(s.exploitableRatio(), 0.0);
}

TEST(FlipAnalysis, ByRowGrouping)
{
    std::vector<FlipRecord> flips = {
        {0, 100, 1, true, 1.0},
        {0, 100, 2, true, 1.0},
        {2, 300, 3, false, 1.0},
    };
    auto rows = flipsByRow(flips);
    EXPECT_EQ(rows.size(), 2u);
    EXPECT_EQ((rows[{0, 100}]), 2u);
    EXPECT_EQ((rows[{2, 300}]), 1u);
}

TEST(FlipAnalysis, RealCampaignProperties)
{
    // On a real campaign: direction ratio near 50% (random cell
    // orientations x alternating 0x55 data), exploitable fraction
    // near 8/64, and flips spread over many rows.
    MemorySystem sys(Arch::CometLake, DimmProfile::byId("S4"),
                     TrrConfig{}, 91);
    HammerSession session(sys, 91);
    Rng rng(92);
    HammerConfig cfg = rhoConfig(Arch::CometLake, true, 350000);
    std::vector<FlipRecord> all;
    for (int i = 0; i < 10; ++i) {
        auto pattern = HammerPattern::randomNonUniform(rng);
        auto loc = session.randomLocation(pattern, cfg);
        auto out = session.hammer(pattern, loc, cfg);
        all.insert(all.end(), out.flipList.begin(), out.flipList.end());
    }

    FlipStats s = analyzeFlips(all);
    ASSERT_GT(s.total, 50u);
    EXPECT_GT(s.toOneRatio(), 0.3);
    EXPECT_LT(s.toOneRatio(), 0.7);
    EXPECT_NEAR(s.exploitableRatio(), 8.0 / 64.0, 0.08);
    EXPECT_GT(s.uniqueRows, 10u);
}
