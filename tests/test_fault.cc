/**
 * @file
 * Fault-injection framework tests and the chaos harness: schedule
 * composition, injector determinism, per-component fault delivery,
 * resilience of the reverse-engineering and exploitation pipelines
 * under the default chaos schedule, and checkpoint/resume of the
 * campaign engines after a simulated mid-run kill.
 *
 * Set RHO_CHAOS_SEED to re-run the chaos scenarios under a different
 * fault-randomness seed (CI sweeps several).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "exploit/massage.hh"
#include "exploit/pte_attack.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_schedule.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"
#include "memsys/timing_probe.hh"
#include "revng/reverse_engineer.hh"

using namespace rho;

namespace
{

std::uint64_t
chaosSeed()
{
    if (const char *s = std::getenv("RHO_CHAOS_SEED"))
        return std::strtoull(s, nullptr, 0);
    return 1234;
}

} // namespace

// ---------------------------------------------------------------------
// Schedule composition
// ---------------------------------------------------------------------

TEST(FaultSchedule, PhaseWindowsAndBurstTrains)
{
    FaultPhase p;
    p.startNs = 100.0;
    p.endNs = 200.0;
    p.levels.timingNoiseSigmaNs = 5.0;
    EXPECT_FALSE(p.activeAt(99.0));
    EXPECT_TRUE(p.activeAt(100.0));
    EXPECT_TRUE(p.activeAt(199.0));
    EXPECT_FALSE(p.activeAt(200.0));

    // Repeating burst train: active for the first 10ns of every 50ns.
    FaultPhase burst;
    burst.startNs = 0.0;
    burst.repeatPeriodNs = 50.0;
    burst.burstLenNs = 10.0;
    burst.levels.timingDriftNs = 3.0;
    EXPECT_TRUE(burst.activeAt(0.0));
    EXPECT_TRUE(burst.activeAt(9.0));
    EXPECT_FALSE(burst.activeAt(10.0));
    EXPECT_FALSE(burst.activeAt(49.0));
    EXPECT_TRUE(burst.activeAt(51.0));
    EXPECT_FALSE(burst.activeAt(111.0));
}

TEST(FaultSchedule, MergeSumsActiveLevelsAndScales)
{
    FaultSchedule s = FaultSchedule::timingBursts(100.0, 40.0, 6.0, 2.0)
                          .merge(FaultSchedule::flipNonReproduction(0.2));
    EXPECT_EQ(s.numPhases(), 2u);

    FaultLevels in_burst = s.levelsAt(10.0);
    EXPECT_DOUBLE_EQ(in_burst.timingNoiseSigmaNs, 6.0);
    EXPECT_DOUBLE_EQ(in_burst.timingDriftNs, 2.0);
    EXPECT_DOUBLE_EQ(in_burst.flipSuppressProb, 0.2);

    FaultLevels off_burst = s.levelsAt(60.0);
    EXPECT_DOUBLE_EQ(off_burst.timingNoiseSigmaNs, 0.0);
    EXPECT_DOUBLE_EQ(off_burst.flipSuppressProb, 0.2);

    FaultLevels doubled = s.scaled(2.0).levelsAt(10.0);
    EXPECT_DOUBLE_EQ(doubled.timingNoiseSigmaNs, 12.0);
    EXPECT_DOUBLE_EQ(doubled.flipSuppressProb, 0.4);

    // Probabilities saturate at 1 when scaled or summed.
    EXPECT_DOUBLE_EQ(s.scaled(10.0).levelsAt(60.0).flipSuppressProb, 1.0);
    EXPECT_FALSE(FaultSchedule::none().levelsAt(0.0).any());
    EXPECT_TRUE(FaultSchedule::chaosDefault().levelsAt(0.0).any());
}

// ---------------------------------------------------------------------
// Injector determinism
// ---------------------------------------------------------------------

TEST(FaultInjector, DeterministicPerSeed)
{
    FaultSchedule s = FaultSchedule::constant(
        {.timingNoiseSigmaNs = 5.0, .timingDriftNs = 1.0});
    FaultInjector a(s, 9), b(s, 9), c(s, 10);
    bool any_differs = false;
    for (int i = 0; i < 64; ++i) {
        Ns pa = a.timingPerturbation();
        EXPECT_DOUBLE_EQ(pa, b.timingPerturbation());
        any_differs |= pa != c.timingPerturbation();
    }
    EXPECT_TRUE(any_differs);
    EXPECT_EQ(a.stats().timingPerturbations, 64u);
}

TEST(FaultInjector, ChannelsDrawFromIndependentStreams)
{
    // Adding a second active channel must not shift the first
    // channel's draw sequence.
    FaultSchedule timing_only = FaultSchedule::constant(
        {.timingNoiseSigmaNs = 5.0});
    FaultSchedule timing_plus_alloc = FaultSchedule::constant(
        {.timingNoiseSigmaNs = 5.0, .allocFailProb = 0.5});
    FaultInjector a(timing_only, 7), b(timing_plus_alloc, 7);
    for (int i = 0; i < 32; ++i) {
        EXPECT_DOUBLE_EQ(a.timingPerturbation(), b.timingPerturbation());
        b.allocFails(); // interleave draws on the other channel
    }
}

TEST(FaultInjector, InactiveChannelsDeliverNothing)
{
    FaultInjector inj(FaultSchedule::none(), 5);
    for (int i = 0; i < 16; ++i) {
        EXPECT_DOUBLE_EQ(inj.timingPerturbation(), 0.0);
        EXPECT_FALSE(inj.suppressFlip());
        EXPECT_FALSE(inj.spuriousRefresh());
        EXPECT_FALSE(inj.allocFails());
        EXPECT_FALSE(inj.fragmentSpike());
    }
    EXPECT_EQ(inj.stats().total(), 0u);
}

// ---------------------------------------------------------------------
// Per-component fault delivery
// ---------------------------------------------------------------------

TEST(FaultDelivery, FullFlipSuppressionStopsAllFlips)
{
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, false, 60000);
    Rng prng(11);
    PatternParams pp;
    pp.minPairs = 3;
    pp.maxPairs = 3;
    HammerPattern pattern = HammerPattern::randomNonUniform(prng, pp);

    // Find a location where the clean system actually flips (weak-cell
    // placement is seed-dependent).
    MemorySystem clean(Arch::RaptorLake, DimmProfile::byId("S4"),
                       TrrConfig{}, 11);
    HammerSession cs(clean, 11);
    HammerLocation loc{0, 0};
    std::uint64_t baseline = 0;
    for (std::uint32_t bank = 0; bank < 8 && baseline == 0; ++bank) {
        for (std::uint64_t row = 500; row < 3000 && baseline == 0;
             row += 700) {
            loc = {bank, row};
            baseline = cs.hammer(pattern, loc, cfg).flips;
        }
    }
    ASSERT_GT(baseline, 0u);

    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                     TrrConfig{}, 11);
    FaultInjector inj(FaultSchedule::flipNonReproduction(1.0),
                      chaosSeed());
    sys.attachFaultInjector(&inj);
    HammerSession fs(sys, 11);
    EXPECT_EQ(fs.hammer(pattern, loc, cfg).flips, 0u);
    EXPECT_GT(inj.stats().flipsSuppressed, 0u);
}

TEST(FaultDelivery, BuddyAllocFailuresAndFragmentSpikes)
{
    BuddyAllocator buddy(1ULL << 28, 0.0);
    FaultInjector inj(FaultSchedule::constant({.allocFailProb = 1.0}),
                      chaosSeed());
    buddy.setFaultInjector(&inj);
    EXPECT_FALSE(buddy.allocPage().has_value());
    EXPECT_GT(inj.stats().allocFailures, 0u);
    buddy.setFaultInjector(nullptr);
    EXPECT_TRUE(buddy.allocPage().has_value());

    // A fragmentation spike keeps the free byte count but destroys
    // max-order contiguity.
    std::uint64_t free_before = buddy.freeBytes();
    std::size_t high_before = buddy.freeBlocksAt(BuddyAllocator::maxOrder);
    ASSERT_GT(high_before, 0u);
    buddy.fragmentationSpike(2);
    EXPECT_EQ(buddy.freeBytes(), free_before);
    EXPECT_EQ(buddy.freeBlocksAt(BuddyAllocator::maxOrder),
              high_before - 2);
    EXPECT_GE(buddy.freeBlocksAt(2), 2u * (1u << (8 - 0)));
}

TEST(FaultDelivery, RobustProbeRecoversCleanLatencyUnderBursts)
{
    PhysAddr a = 0x100000, b = 0x3200000;
    RobustTimingConfig rt;
    rt.baseSamples = 5;

    MemorySystem clean(Arch::AlderLake, DimmProfile::byId("S2"),
                       TrrConfig{}, 21);
    TimingProbe clean_probe(clean, 21);
    double truth = clean_probe.measurePairRobust(a, b, 100, rt);

    MemorySystem sys(Arch::AlderLake, DimmProfile::byId("S2"),
                     TrrConfig{}, 21);
    FaultInjector inj(FaultSchedule::timingBursts(200e3, 60e3, 15.0, 6.0),
                      chaosSeed());
    sys.attachFaultInjector(&inj);
    TimingProbe probe(sys, 21);
    RetryStats retry;
    double robust = probe.measurePairRobust(a, b, 100, rt, &retry);
    EXPECT_NEAR(robust, truth, 3.0);
    EXPECT_GT(retry.attempts, 0u);
}

// ---------------------------------------------------------------------
// Pipeline resilience under the default chaos schedule
// ---------------------------------------------------------------------

TEST(Chaos, ReverseEngineeringMatchesTruthUnderTimingBursts)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S1"),
                     TrrConfig{}, 31);
    FaultInjector inj(FaultSchedule::timingBursts(50e6, 8e6, 12.0, 3.0),
                      chaosSeed());
    sys.attachFaultInjector(&inj);
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 31);
    PhysPool pool(buddy, 0.70);
    TimingProbe probe(sys, 31);

    RhoReverseEngineer tool(probe, pool, 31);
    MappingRecovery rec = tool.run();
    ASSERT_TRUE(rec.success) << rec.failureReason;
    EXPECT_TRUE(rec.matches(sys.mapping()));
    EXPECT_EQ(rec.code, FailureCode::None);
}

namespace
{

PteAttackResult
runAttackTrial(Arch arch, std::uint64_t trial_seed, FaultInjector *inj)
{
    MemorySystem sys(arch, DimmProfile::byId("S4"), TrrConfig{},
                     hashCombine(trial_seed, 1));
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02,
                         hashCombine(trial_seed, 2));
    HammerSession session(sys, hashCombine(trial_seed, 3));
    PageTableManager pt(sys, buddy);
    if (inj) {
        sys.attachFaultInjector(inj);
        buddy.setFaultInjector(inj);
    }
    PteAttack attack(session, buddy, pt, hashCombine(trial_seed, 4));
    PteAttackParams params;
    params.hammerCfg = rhoConfig(arch, false, 120000);
    params.regions = 3;
    return attack.run(params);
}

} // namespace

TEST(Chaos, PteAttackSucceedsUnderDefaultChaosSchedule)
{
    // ISSUE acceptance: under the default chaos schedule (timing
    // bursts + 10% flip non-reproduction + allocation failures) the
    // end-to-end attack succeeds in >= 4/5 trials per platform with
    // <= 2x simulated-time inflation over the fault-free baseline.
    for (Arch arch : {Arch::AlderLake, Arch::RaptorLake}) {
        PteAttackResult base = runAttackTrial(arch, 900, nullptr);
        ASSERT_TRUE(base.success) << base.failureReason;
        EXPECT_EQ(base.templateRetry.retries +
                      base.rehammerRetry.backoffs, 0u)
            << "fault-free run must not back off";

        unsigned successes = 0;
        double chaos_time = 0.0;
        for (unsigned trial = 0; trial < 5; ++trial) {
            FaultInjector inj(FaultSchedule::chaosDefault(),
                              hashCombine(chaosSeed(), trial));
            PteAttackResult res =
                runAttackTrial(arch, 900 + trial, &inj);
            if (res.success) {
                ++successes;
                chaos_time += res.endToEndTimeNs;
            } else {
                // Honest failures carry machine-readable diagnostics.
                EXPECT_FALSE(res.failureReason.empty());
                EXPECT_NE(res.code, FailureCode::None);
            }
        }
        EXPECT_GE(successes, 4u) << archName(arch);
        ASSERT_GT(successes, 0u) << archName(arch);
        EXPECT_LE(chaos_time / successes, 2.0 * base.endToEndTimeNs)
            << archName(arch);
    }
}

TEST(Chaos, MassageCountersDoNotDriftUnderAllocPressure)
{
    // Regression pin for counter drift on rolled-back operations: each
    // steerPtPage performs exactly one injector-visible allocation (the
    // PT page inside mapPage). The victim-reclaim alloc on the failure
    // path is fault-exempt, so (a) delivered allocFailures equals the
    // number of failed massages — the reclaim never re-consults the
    // injector — and (b) no frame leaks: free memory returns to the
    // pre-massage level after every trial, failed or not.
    MemorySystem sys(Arch::AlderLake, DimmProfile::byId("S2"),
                     TrrConfig{}, 51);
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 51);
    PageTableManager pt(sys, buddy);
    PageTableMassager massager(buddy, pt, 51);

    constexpr unsigned trials = 24;
    std::vector<std::pair<PhysAddr, PhysAddr>> pages;
    for (unsigned i = 0; i < trials; ++i)
        pages.emplace_back(*buddy.allocPage(), *buddy.allocPage());

    FaultInjector inj(
        FaultSchedule::chaosDefault().merge(
            FaultSchedule::allocPressure(0.5, 0.0)),
        chaosSeed());
    sys.attachFaultInjector(&inj);
    buddy.setFaultInjector(&inj);

    std::uint64_t before = buddy.freeBytes();
    unsigned failures = 0;
    for (auto [victim, backing] : pages) {
        MassageResult res = massager.steerPtPage(42, victim, backing);
        if (res.code == FailureCode::AllocationFailed)
            ++failures;
        EXPECT_EQ(buddy.freeBytes(), before);
    }
    // The schedule must actually exercise both paths.
    EXPECT_GT(failures, 0u);
    EXPECT_LT(failures, trials);
    EXPECT_EQ(inj.stats().allocFailures, failures);
}

TEST(Chaos, PteAttackFailsHonestlyUnderTotalSuppression)
{
    // Escalated schedule no retry budget can beat: every flip is
    // suppressed and allocations fail frequently. The attack must
    // terminate with a structured, machine-readable failure.
    FaultSchedule hostile = FaultSchedule::flipNonReproduction(1.0)
        .merge(FaultSchedule::allocPressure(0.3, 0.05));
    FaultInjector inj(hostile, chaosSeed());

    MemorySystem sys(Arch::AlderLake, DimmProfile::byId("S4"),
                     TrrConfig{}, 41);
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 41);
    HammerSession session(sys, 41);
    PageTableManager pt(sys, buddy);
    sys.attachFaultInjector(&inj);
    buddy.setFaultInjector(&inj);

    PteAttack attack(session, buddy, pt, 41);
    PteAttackParams params;
    params.hammerCfg = rhoConfig(Arch::AlderLake, false, 60000);
    params.regions = 1;
    PteAttackResult res = attack.run(params);

    EXPECT_FALSE(res.success);
    EXPECT_FALSE(res.failureReason.empty());
    EXPECT_NE(res.code, FailureCode::None);
    EXPECT_STRNE(failureCodeName(res.code), "");
    EXPECT_EQ(res.totalFlips, 0u);
}

// ---------------------------------------------------------------------
// Campaign checkpoint/resume
// ---------------------------------------------------------------------

namespace
{

void
expectFuzzEqual(const FuzzResult &a, const FuzzResult &b)
{
    EXPECT_EQ(a.totalFlips, b.totalFlips);
    EXPECT_EQ(a.bestPatternFlips, b.bestPatternFlips);
    EXPECT_EQ(a.effectivePatterns, b.effectivePatterns);
    EXPECT_EQ(a.simTimeNs, b.simTimeNs); // bit-identical doubles
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.bestPattern.has_value(), b.bestPattern.has_value());
}

/** Keep the journal header plus the first `keep` task lines and a torn
 *  final line, simulating a kill mid-write. */
void
truncateJournal(const std::string &path, unsigned keep)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    in.close();
    ASSERT_GT(lines.size(), keep + 1);
    std::ofstream out(path, std::ios::trunc);
    for (unsigned i = 0; i <= keep; ++i)
        out << lines[i] << "\n";
    out << lines[keep + 1].substr(0, lines[keep + 1].size() / 2);
}

} // namespace

TEST(Checkpoint, FuzzCampaignResumesBitIdentical)
{
    SystemSpec spec(Arch::RaptorLake, DimmProfile::byId("S4"));
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, false, 30000);
    FuzzParams params;
    params.numPatterns = 6;
    params.locationsPerPattern = 1;
    params.jobs = 2;

    FuzzResult base = fuzzCampaign(spec, cfg, params, 77);

    std::string path = testing::TempDir() + "rho_fuzz.journal";
    std::remove(path.c_str());
    params.checkpointPath = path;
    expectFuzzEqual(fuzzCampaign(spec, cfg, params, 77), base);

    // Kill mid-run: only the first three tasks survive, the fourth is
    // torn. Resume must skip the torn line, re-run the missing tasks
    // and merge to a bit-identical result for any job count.
    for (unsigned jobs : {1u, 2u, 8u}) {
        truncateJournal(path, 3);
        params.jobs = jobs;
        ParallelStats stats;
        expectFuzzEqual(fuzzCampaign(spec, cfg, params, 77, &stats),
                        base);
        EXPECT_EQ(stats.tasksRestored, 3u) << jobs;
    }

    // A journal written under different campaign parameters must be
    // discarded, not replayed.
    FuzzParams other = params;
    other.numPatterns = 5;
    FuzzResult fresh = fuzzCampaign(spec, cfg, other, 77);
    ParallelStats stats;
    other.checkpointPath.clear();
    expectFuzzEqual(fuzzCampaign(spec, cfg, other, 77, &stats), fresh);
    std::remove(path.c_str());
}

TEST(Checkpoint, SweepCampaignResumesBitIdentical)
{
    SystemSpec spec(Arch::AlderLake, DimmProfile::byId("S4"));
    HammerConfig cfg = rhoConfig(Arch::AlderLake, false, 30000);
    Rng prng(3);
    PatternParams pp;
    pp.minPairs = 3;
    pp.maxPairs = 3;
    HammerPattern pattern = HammerPattern::randomNonUniform(prng, pp);

    SweepParams params;
    params.numLocations = 6;
    params.jobs = 2;
    SweepResult base = sweepCampaign(spec, pattern, cfg, params, 55);

    std::string path = testing::TempDir() + "rho_sweep.journal";
    std::remove(path.c_str());
    params.checkpointPath = path;
    SweepResult full = sweepCampaign(spec, pattern, cfg, params, 55);
    EXPECT_EQ(full.totalFlips, base.totalFlips);
    EXPECT_EQ(full.simTimeNs, base.simTimeNs);

    for (unsigned jobs : {1u, 8u}) {
        truncateJournal(path, 2);
        params.jobs = jobs;
        ParallelStats stats;
        SweepResult res = sweepCampaign(spec, pattern, cfg, params, 55,
                                        &stats);
        EXPECT_EQ(res.totalFlips, base.totalFlips);
        EXPECT_EQ(res.flipsPerLocation, base.flipsPerLocation);
        EXPECT_EQ(res.cumulativeTimeNs, base.cumulativeTimeNs);
        EXPECT_EQ(res.simTimeNs, base.simTimeNs);
        EXPECT_EQ(res.flipList.size(), base.flipList.size());
        EXPECT_EQ(stats.tasksRestored, 2u) << jobs;
    }
    std::remove(path.c_str());
}
