/**
 * @file
 * Multi-tenant VM layer tests: partition carving under every placement
 * policy, guest paging and stage-2 translation, the cross-VM attack
 * driver, and the two headline suites of the inter-VM work —
 *
 *  - the tenant-isolation differential suite: the pinned cross-VM
 *    campaign run on every modelled architecture over the full engine
 *    matrix ({Flat, Reference} row store x {Blocked, Reference} CPU
 *    replay) and over --jobs {1, 8} must produce byte-identical event
 *    streams and identical campaign results;
 *
 *  - the fuzzed isolation invariant: no configuration that *claims* to
 *    prevent cross-VM flips (guard rows, per-tenant bank partitioning)
 *    may ever yield one, across seeds, placements and tenant sizes.
 *    Override the seed count via RHO_VM_FUZZ_SEEDS for longer CI legs.
 */

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exploit/cross_vm.hh"
#include "hammer/tuned_configs.hh"
#include "mapping/mapping_presets.hh"
#include "os/vm.hh"
#include "trace/golden.hh"
#include "trace/tracer.hh"

using namespace rho;

namespace
{

/** Native DIMM for each backend (matches tests/test_backend.cc). */
const DimmProfile &
profileFor(Arch arch)
{
    return arch == Arch::CortexA72 ? DimmProfile::lpddr4Sample()
                                   : DimmProfile::byId("S4");
}

std::string
archToken(Arch arch)
{
    switch (arch) {
#define RHO_ARCH_TOKEN_CASE(name)                                       \
    case Arch::name:                                                    \
        return #name;
        RHO_ARCH_LIST(RHO_ARCH_TOKEN_CASE)
#undef RHO_ARCH_TOKEN_CASE
    }
    return "Unknown";
}

std::string
archParamName(const ::testing::TestParamInfo<Arch> &info)
{
    return archToken(info.param);
}

/** A rig with two carved tenants for the unit-level tests. */
struct VmRig
{
    MemorySystem sys;
    BuddyAllocator buddy;
    VmManager vmm;

    VmRig(VmConfig cfg, std::uint64_t seed = 7,
          std::uint64_t bytes_each = 4ull << 20, unsigned tenants = 2)
        : sys(Arch::RaptorLake, DimmProfile::byId("S2"), TrrConfig{},
              seed),
          buddy(sys.mapping().memBytes(), 0.02, seed),
          vmm(sys, buddy, cfg)
    {
        EXPECT_TRUE(vmm.createTenants(tenants, bytes_each));
    }
};

} // namespace

// ---------------------------------------------------------------------
// Partition carving
// ---------------------------------------------------------------------

TEST(VmCarve, ContiguousPartitionsAreDisjointAndSized)
{
    VmRig rig(VmConfig{VmPlacement::Contiguous, false});
    ASSERT_EQ(rig.vmm.tenantCount(), 2u);
    std::set<PhysAddr> all;
    for (VmId vm = 1; vm <= 2; ++vm) {
        const auto &frames = rig.vmm.framesOf(vm);
        EXPECT_EQ(frames.size(), (4ull << 20) / pageBytes);
        EXPECT_EQ(rig.vmm.gpaBytes(vm), 4ull << 20);
        for (PhysAddr f : frames) {
            EXPECT_EQ(f & (pageBytes - 1), 0u);
            EXPECT_TRUE(all.insert(f).second)
                << "frame shared between tenants";
            EXPECT_EQ(rig.vmm.ownerOf(f), vm);
            EXPECT_EQ(rig.vmm.ownerOf(f + pageBytes - 1), vm);
        }
    }
    EXPECT_FALSE(rig.vmm.claimsNoCrossVmFlips());
}

TEST(VmCarve, GuardedPlacementSeparatesTenantRows)
{
    // Under guard rows, no tenant row may be within the +-2 blast
    // radius of another tenant's row in the same bank.
    VmRig rig(VmConfig{VmPlacement::Guarded, false});
    EXPECT_TRUE(rig.vmm.claimsNoCrossVmFlips());
    const AddressMapping &map = rig.sys.mapping();
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::set<VmId>>
        rows;
    for (VmId vm = 1; vm <= 2; ++vm) {
        for (PhysAddr f : rig.vmm.framesOf(vm)) {
            for (std::uint64_t off = 0; off < pageBytes;
                 off += cacheLineBytes) {
                DramAddr da = map.decode(f + off);
                rows[{da.bank, da.row}].insert(vm);
            }
        }
    }
    for (const auto &[key, owners] : rows) {
        ASSERT_EQ(owners.size(), 1u)
            << "row shared between tenants, bank " << key.first;
        for (std::uint64_t d = 1; d <= 2; ++d) {
            for (std::uint64_t r : {key.second - d, key.second + d}) {
                auto it = rows.find({key.first, r});
                if (it == rows.end())
                    continue;
                EXPECT_EQ(*it->second.begin(), *owners.begin())
                    << "tenant rows within blast radius, bank "
                    << key.first << " rows " << key.second << "/" << r;
            }
        }
    }
}

TEST(VmCarve, BankPartitionGivesDisjointBankSets)
{
    VmRig rig(VmConfig{VmPlacement::Contiguous, true});
    EXPECT_TRUE(rig.vmm.claimsNoCrossVmFlips());
    const AddressMapping &map = rig.sys.mapping();
    std::vector<std::set<std::uint32_t>> banks(3);
    for (VmId vm = 1; vm <= 2; ++vm) {
        for (PhysAddr f : rig.vmm.framesOf(vm)) {
            for (std::uint64_t off = 0; off < pageBytes;
                 off += cacheLineBytes)
                banks[vm].insert(map.decode(f + off).bank);
        }
    }
    for (std::uint32_t b : banks[1])
        EXPECT_FALSE(banks[2].count(b)) << "shared bank " << b;
}

TEST(VmCarve, InterleavedAlternatesRowBlocks)
{
    VmRig rig(VmConfig{VmPlacement::Interleaved, false});
    // Round-robin order-1 blocks: sorting each tenant's frames, the
    // two partitions interleave at 8 KiB granularity rather than
    // forming two contiguous extents.
    auto f1 = rig.vmm.framesOf(1);
    auto f2 = rig.vmm.framesOf(2);
    std::sort(f1.begin(), f1.end());
    std::sort(f2.begin(), f2.end());
    EXPECT_LT(f2.front(), f1.back());
    EXPECT_LT(f1.front(), f2.back());
}

// ---------------------------------------------------------------------
// Stage-2 + guest paging
// ---------------------------------------------------------------------

TEST(VmPaging, Stage2TranslatesInstalledMap)
{
    VmRig rig(VmConfig{VmPlacement::Contiguous, false});
    const auto &frames = rig.vmm.framesOf(1);
    for (std::uint64_t i : {std::uint64_t{0}, frames.size() / 2,
                            frames.size() - 1}) {
        PhysAddr gpa = i * pageBytes + 123;
        auto hpa = rig.vmm.gpaToHpa(1, gpa);
        ASSERT_TRUE(hpa.has_value());
        EXPECT_EQ(*hpa, frames[i] + 123);
        auto back = rig.vmm.hpaToGpa(1, *hpa);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, gpa);
    }
    EXPECT_FALSE(rig.vmm.gpaToHpa(1, rig.vmm.gpaBytes(1)).has_value());
}

TEST(VmPaging, GuestMapTranslateRoundTrips)
{
    VmRig rig(VmConfig{VmPlacement::Contiguous, false});
    const std::uint64_t pid = 4242;
    VirtAddr va = 0x700000000000ULL;
    auto frame = rig.vmm.allocGuestFrame(1);
    ASSERT_TRUE(frame.has_value());
    ASSERT_TRUE(rig.vmm.vmMapPage(1, pid, va, *frame, true));
    auto host = rig.vmm.vmTranslate(1, pid, va + 77);
    ASSERT_TRUE(host.has_value());
    auto expect = rig.vmm.gpaToHpa(1, *frame + 77);
    ASSERT_TRUE(expect.has_value());
    EXPECT_EQ(*host, *expect);
    // The guest PT page itself lives in a tenant frame, reachable via
    // both its GPA and its stage-2 host address.
    auto pt_gpa = rig.vmm.vmPtPageGpa(1, pid, va);
    ASSERT_TRUE(pt_gpa.has_value());
    auto pt_hpa = rig.vmm.vmPtPageHpa(1, pid, va);
    ASSERT_TRUE(pt_hpa.has_value());
    EXPECT_EQ(rig.vmm.ownerOf(*pt_hpa), 1u);
}

TEST(VmPaging, SteerLandsPtPageOnChosenGpa)
{
    VmRig rig(VmConfig{VmPlacement::Contiguous, false});
    const std::uint64_t pid = 4242;
    // Target a frame deep enough that steering must burn allocations.
    std::uint64_t target = 40 * pageBytes;
    std::uint64_t backing = 3 * pageBytes; // page-aligned GPA
    GuestSteerResult steer =
        rig.vmm.steerGuestPtPage(1, pid, target, backing);
    ASSERT_TRUE(steer.success) << steer.failureReason;
    EXPECT_EQ(steer.ptPageGpa, target);
    EXPECT_EQ(steer.allocationsBurned, 40u);
    EXPECT_GT(steer.timeNs, 0.0);
    auto pt_gpa = rig.vmm.vmPtPageGpa(1, pid, steer.sprayBase);
    ASSERT_TRUE(pt_gpa.has_value());
    EXPECT_EQ(*pt_gpa, target);
    // The spray PTE points at the requested backing frame.
    auto host = rig.vmm.vmTranslate(1, pid, steer.sprayBase);
    ASSERT_TRUE(host.has_value());
    EXPECT_EQ(pageOf(*host), pageOf(*rig.vmm.gpaToHpa(1, backing)));
}

// ---------------------------------------------------------------------
// Cross-VM attack driver
// ---------------------------------------------------------------------

TEST(CrossVm, UndefendedInterleavedPlacementLeaksFlips)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                     TrrConfig{}, 11);
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 11);
    VmManager vmm(sys, buddy, VmConfig{VmPlacement::Interleaved, false});
    ASSERT_TRUE(vmm.createTenants(2, 8ull << 20));
    HammerSession session(sys, 11);
    CrossVmParams params;
    params.hammerCfg = rhoConfig(Arch::RaptorLake, false, 120000);
    params.vmCfg = vmm.config();
    params.hammerRuns = 16;
    params.attemptTakeover = false;
    CrossVmResult res = crossVmAttack(session, vmm, params, 11);
    EXPECT_GT(res.totalFlips, 0u);
    EXPECT_GT(res.crossVmFlipsRaw, 0u);
    EXPECT_TRUE(res.success);
    // Every reported cross flip decodes to a victim-owned address.
    for (const CrossVmFlipInfo &f : res.crossFlips) {
        EXPECT_NE(f.owner, 0u);
        EXPECT_NE(f.owner, params.attackerVm);
        EXPECT_EQ(vmm.ownerOf(f.hpa), f.owner);
    }
}

TEST(CrossVm, OnDieEccMasksSingleBitEscapes)
{
    // Same machine and seed, ECC off vs on: the raw (array-level)
    // cross-VM flips are identical, but the ECC read path corrects
    // every single-bit-per-codeword escape, so visibility shrinks.
    auto run = [](bool ecc) {
        EccConfig ecc_cfg;
        ecc_cfg.enabled = ecc;
        MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                         TrrConfig{}, 11, RfmConfig{}, PracConfig{},
                         ecc_cfg);
        BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 11);
        VmManager vmm(sys, buddy,
                      VmConfig{VmPlacement::Interleaved, false});
        EXPECT_TRUE(vmm.createTenants(2, 8ull << 20));
        HammerSession session(sys, 11);
        CrossVmParams params;
        params.hammerCfg = rhoConfig(Arch::RaptorLake, false, 120000);
        params.vmCfg = vmm.config();
        params.hammerRuns = 16;
        params.attemptTakeover = false;
        return crossVmAttack(session, vmm, params, 11);
    };
    CrossVmResult off = run(false);
    CrossVmResult on = run(true);
    ASSERT_GT(off.crossVmFlipsRaw, 0u);
    EXPECT_EQ(on.crossVmFlipsRaw, off.crossVmFlipsRaw);
    EXPECT_EQ(off.crossVmFlipsVisible, off.crossVmFlipsRaw);
    EXPECT_LT(on.crossVmFlipsVisible, on.crossVmFlipsRaw);
}

TEST(CrossVm, GuardedPlacementFailsWithStructuredCode)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                     TrrConfig{}, 11);
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 11);
    VmManager vmm(sys, buddy, VmConfig{VmPlacement::Guarded, false});
    ASSERT_TRUE(vmm.createTenants(2, 8ull << 20));
    HammerSession session(sys, 11);
    CrossVmParams params;
    params.hammerCfg = rhoConfig(Arch::RaptorLake, false, 120000);
    params.vmCfg = vmm.config();
    params.hammerRuns = 8;
    CrossVmResult res = crossVmAttack(session, vmm, params, 11);
    EXPECT_EQ(res.crossVmFlipsRaw, 0u);
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.code, FailureCode::CrossVmPlacementFailed);
    EXPECT_FALSE(res.failureReason.empty());
}

// ---------------------------------------------------------------------
// Tenant-isolation differential suite (the headline)
// ---------------------------------------------------------------------

namespace
{

struct EnginePair
{
    bool referenceRowStore;
    CpuModelKind cpu;
};

const EnginePair enginePairs[] = {
    {false, CpuModelKind::Blocked},  // the default fast stack
    {false, CpuModelKind::Reference},
    {true, CpuModelKind::Blocked},
    {true, CpuModelKind::Reference}, // the full original stack
};

/** The pinned cross-VM campaign on an arbitrary backend/engine. */
CrossVmCampaignResult
crossVmRun(Arch arch, unsigned jobs, EnginePair eng,
           std::vector<TraceEvent> &trace)
{
    SystemSpec spec(arch, profileFor(arch));
    spec.ecc.enabled = true;
    spec.referenceRowStore = eng.referenceRowStore;
    spec.cpuModel = eng.cpu;
    spec.trace.enabled = true;
    spec.trace.categories = CatVm | CatFlip | CatPhase;
    CrossVmCampaignParams params;
    params.attack.hammerCfg = rhoConfig(arch, false, 20000);
    params.attack.vmCfg = VmConfig{VmPlacement::Interleaved, false};
    params.attack.bytesPerTenant = 4ull << 20;
    params.attack.hammerRuns = 4;
    params.trials = 2;
    params.jobs = jobs;
    trace.clear();
    return crossVmCampaign(spec, params, 42, nullptr, &trace);
}

bool
sameCampaign(const CrossVmCampaignResult &a,
             const CrossVmCampaignResult &b)
{
    return a.trials == b.trials && a.successes == b.successes
           && a.totalFlips == b.totalFlips
           && a.crossVmFlipsRaw == b.crossVmFlipsRaw
           && a.crossVmFlipsVisible == b.crossVmFlipsVisible
           && a.takeovers == b.takeovers && a.simTimeNs == b.simTimeNs
           && a.codes == b.codes;
}

} // namespace

class VmDifferential : public ::testing::TestWithParam<Arch>
{
};

TEST_P(VmDifferential, CampaignIdenticalAcrossEngineMatrixAndJobs)
{
    Arch arch = GetParam();
    std::vector<TraceEvent> ref_tr;
    CrossVmCampaignResult ref =
        crossVmRun(arch, 1, enginePairs[0], ref_tr);
    std::string ref_bytes = goldenSerialize(ref_tr);
    EXPECT_FALSE(ref_tr.empty());
    // The stream must carry the VM-boundary events or it would not
    // guard the new subsystem.
    std::set<EventKind> kinds;
    for (const TraceEvent &e : ref_tr)
        kinds.insert(e.kind);
    EXPECT_TRUE(kinds.count(EventKind::VmMapped));

    for (unsigned jobs : {1u, 8u}) {
        for (std::size_t e = 0; e < std::size(enginePairs); ++e) {
            if (jobs == 1 && e == 0)
                continue; // the reference itself
            std::vector<TraceEvent> got_tr;
            CrossVmCampaignResult got =
                crossVmRun(arch, jobs, enginePairs[e], got_tr);
            EXPECT_EQ(goldenSerialize(got_tr), ref_bytes)
                << "trace diverged, engine pair " << e << " jobs "
                << jobs;
            EXPECT_TRUE(sameCampaign(got, ref))
                << "campaign result diverged, engine pair " << e
                << " jobs " << jobs;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllArchs, VmDifferential,
                         ::testing::ValuesIn(allArchs), archParamName);

// ---------------------------------------------------------------------
// Fuzzed isolation invariant
// ---------------------------------------------------------------------

TEST(VmIsolation, DefendedConfigsNeverLeakCrossVmFlips)
{
    // Every configuration that claims to prevent cross-VM flips is
    // attacked with a real budget across seeds; a single cross-VM flip
    // falsifies the defense claim. RHO_VM_FUZZ_SEEDS widens the sweep.
    unsigned num_seeds = 3;
    if (const char *env = std::getenv("RHO_VM_FUZZ_SEEDS")) {
        int v = std::atoi(env);
        if (v > 0)
            num_seeds = static_cast<unsigned>(v);
    }
    const VmConfig defended[] = {
        {VmPlacement::Guarded, false},
        {VmPlacement::Contiguous, true},
        {VmPlacement::Interleaved, true},
        {VmPlacement::Guarded, true},
    };
    for (unsigned s = 0; s < num_seeds; ++s) {
        std::uint64_t seed = hashCombine(0x150fa7e, s);
        for (const VmConfig &cfg : defended) {
            MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                             TrrConfig{}, seed);
            BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, seed);
            VmManager vmm(sys, buddy, cfg);
            ASSERT_TRUE(vmm.claimsNoCrossVmFlips());
            ASSERT_TRUE(vmm.createTenants(2, 8ull << 20));
            HammerSession session(sys, seed);
            CrossVmParams params;
            params.hammerCfg =
                rhoConfig(Arch::RaptorLake, false, 120000);
            params.vmCfg = cfg;
            params.hammerRuns = 8;
            params.attemptTakeover = false;
            CrossVmResult res =
                crossVmAttack(session, vmm, params, seed);
            EXPECT_EQ(res.crossVmFlipsRaw, 0u)
                << "defense leaked: placement "
                << vmPlacementName(cfg.placement) << " bankPartition "
                << cfg.bankPartition << " seed " << seed;
        }
    }
}
