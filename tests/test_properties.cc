/**
 * @file
 * Cross-cutting property suites: exhaustive bijection checks on small
 * mapping spaces, refresh-phase invariants, buddy allocator stress
 * invariants, disturbance accounting under randomized access streams,
 * and CPU-engine equivalence over fuzzed hammer kernels.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "cpu/sim_cpu.hh"
#include "dram/dimm.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"
#include "mapping/mapping_presets.hh"
#include "os/buddy_allocator.hh"
#include "os/vm.hh"

using namespace rho;

/**
 * GF(2) round-trip over every Table 4 preset: for each architecture
 * and supported geometry, addr -> (bank,row,col) -> addr must be the
 * identity, and dram -> addr -> dram likewise.
 */
TEST(MappingRoundTrip, AllTable4PresetsAreIdentity)
{
    struct Geometry
    {
        unsigned sizeGib;
        unsigned ranks;
    };
    const Geometry geometries[] = {{8, 1}, {16, 2}, {32, 2}};

    for (Arch arch : allArchs) {
        for (const Geometry &g : geometries) {
            AddressMapping m = mappingFor(arch, g.sizeGib, g.ranks);
            ASSERT_TRUE(m.isBijective()) << m.describe();

            // Structured probes: walk each physical bit plus dense
            // low addresses, then a pseudo-random spray.
            std::vector<PhysAddr> probes;
            for (unsigned b = 0; b < m.physBits(); ++b)
                probes.push_back(1ULL << b);
            for (PhysAddr pa = 0; pa < 4096; pa += 64)
                probes.push_back(pa);
            Rng rng(hashCombine(static_cast<std::uint64_t>(arch),
                                g.sizeGib));
            for (int i = 0; i < 4096; ++i)
                probes.push_back(rng.uniformInt(0, m.memBytes() - 1));

            for (PhysAddr pa : probes) {
                DramAddr da = m.decode(pa);
                EXPECT_EQ(m.encode(da), pa)
                    << archName(arch) << " " << g.sizeGib << "GiB";
            }

            // And the reverse direction on in-range coordinates.
            for (int i = 0; i < 1024; ++i) {
                DramAddr da;
                da.bank = static_cast<std::uint32_t>(
                    rng.uniformInt(0, m.numBanks() - 1));
                da.row = rng.uniformInt(0, m.numRows() - 1);
                da.col = rng.uniformInt(0, m.numCols() - 1);
                DramAddr rt = m.decode(m.encode(da));
                EXPECT_EQ(rt.bank, da.bank);
                EXPECT_EQ(rt.row, da.row);
                EXPECT_EQ(rt.col, da.col);
            }
        }
    }
}

/** flipsPerMinute must be well-defined before any location ran. */
TEST(SweepResultProperties, FlipsPerMinuteZeroTimeIsZero)
{
    SweepResult res;
    EXPECT_EQ(res.simTimeNs, 0.0);
    EXPECT_EQ(res.flipsPerMinute(), 0.0); // no division by zero / NaN

    // Flips without elapsed time (degenerate merge) still yield 0.
    res.totalFlips = 42;
    EXPECT_EQ(res.flipsPerMinute(), 0.0);

    // With time, the rate is finite and consistent.
    res.simTimeNs = 30e9; // half a minute
    EXPECT_DOUBLE_EQ(res.flipsPerMinute(), 84.0);
}

/** A single-location campaign produces a coherent one-entry result. */
TEST(SweepResultProperties, SingleLocationSweep)
{
    SystemSpec spec(Arch::CometLake, DimmProfile::byId("S4"));
    Rng rng(31);
    HammerPattern pattern = HammerPattern::randomNonUniform(rng);
    SweepParams params;
    params.numLocations = 1;
    params.jobs = 1;

    SweepResult res =
        sweepCampaign(spec, pattern,
                      rhoConfig(Arch::CometLake, true, 120000), params,
                      31);
    ASSERT_EQ(res.flipsPerLocation.size(), 1u);
    ASSERT_EQ(res.cumulativeTimeNs.size(), 1u);
    EXPECT_EQ(res.flipsPerLocation[0], res.totalFlips);
    EXPECT_EQ(res.cumulativeTimeNs[0], res.simTimeNs);
    EXPECT_GT(res.simTimeNs, 0.0);
    EXPECT_GE(res.flipsPerMinute(), 0.0);
    EXPECT_EQ(res.flipList.size(), res.totalFlips);
}

class MappingBijection : public ::testing::TestWithParam<Arch>
{
};

/**
 * Exhaustive bijection over a subsampled coset: for 64k addresses
 * spread across the full space, decode must be injective per
 * (bank,row,col) and encode its exact inverse.
 */
TEST_P(MappingBijection, InjectiveOnLargeSample)
{
    AddressMapping m = mappingFor(GetParam(), 16, 2);
    std::set<std::tuple<std::uint32_t, std::uint64_t, std::uint64_t>>
        seen;
    Rng rng(77);
    for (int i = 0; i < 65536; ++i) {
        PhysAddr pa = rng.uniformInt(0, m.memBytes() - 1);
        DramAddr da = m.decode(pa);
        auto key = std::make_tuple(da.bank, da.row, da.col);
        // Either new, or the exact same pa mapped twice.
        auto [it, fresh] = seen.insert(key);
        (void)it;
        if (!fresh)
            EXPECT_EQ(m.encode(da), pa);
        EXPECT_EQ(m.encode(da), pa);
    }
}

/** Banks must be perfectly balanced over aligned address ranges. */
TEST_P(MappingBijection, BanksUniformOverAlignedRegion)
{
    AddressMapping m = mappingFor(GetParam(), 8, 1);
    std::map<std::uint32_t, unsigned> counts;
    // A 2^20-byte aligned region covers the lowest bit of every bank
    // function, so banks split it evenly (the paper's Step-0 premise).
    for (PhysAddr pa = 0; pa < (1ULL << 21); pa += cacheLineBytes)
        ++counts[m.decode(pa).bank];
    unsigned lines = (1u << 21) / cacheLineBytes;
    for (auto [bank, n] : counts)
        EXPECT_EQ(n, lines / m.numBanks()) << "bank " << bank;
    EXPECT_EQ(counts.size(), m.numBanks());
}

INSTANTIATE_TEST_SUITE_P(AllArchs, MappingBijection,
                         ::testing::ValuesIn(allArchs));

class RefreshPhase : public ::testing::TestWithParam<unsigned>
{
};

/**
 * Refresh-race property: hammering that accumulates just below the
 * weakest threshold between any two refreshes never flips, regardless
 * of when within the retention window the hammering starts.
 */
TEST_P(RefreshPhase, SubThresholdNeverFlips)
{
    DimmProfile p = DimmProfile::byId("S4");
    p.weakCellsPerRow = 5.0;
    p.hcLogMean = std::log(3000.0);
    p.hcLogSigma = 0.05;
    p.hcMin = 2600;
    TrrConfig no;
    no.enabled = false;
    Dimm d(p, DramTiming::ddr4(2666), no);

    std::uint64_t base = 4000 + GetParam() * 64;
    d.fillRow(0, base + 1, 0x55, 0.0);
    // Start at a param-dependent phase within the retention window.
    Ns now = GetParam() * (d.timing().tREFW / 8.0);
    // 1200 pair activations per window << 2600 threshold.
    Ns step = d.timing().tREFW / 1200.0;
    for (int i = 0; i < 4000; ++i) {
        d.access({0, base, 0}, now);
        d.access({0, base + 2, 0}, now + 60.0);
        now += step;
    }
    EXPECT_TRUE(d.diffRow(0, base + 1, 0x55, now).empty());
}

/** And the same pressure delivered fast (within one window) flips. */
TEST_P(RefreshPhase, SuperThresholdFlips)
{
    DimmProfile p = DimmProfile::byId("S4");
    p.weakCellsPerRow = 5.0;
    p.hcLogMean = std::log(3000.0);
    p.hcLogSigma = 0.05;
    p.hcMin = 2600;
    TrrConfig no;
    no.enabled = false;
    Dimm d(p, DramTiming::ddr4(2666), no);

    // Three sandwiched victims: the probability that none of them
    // carries an eligible weak cell is negligible.
    std::uint64_t base = 4000 + GetParam() * 64;
    for (std::uint64_t v : {base + 1, base + 3, base + 5})
        d.fillRow(0, v, 0x55, 0.0);
    Ns now = GetParam() * (d.timing().tREFW / 8.0);
    for (int i = 0; i < 8000; ++i) {
        std::uint64_t agg = base + 2 * (i % 4);
        now += d.access({0, agg, 0}, now).latency;
    }
    std::size_t flips = 0;
    for (std::uint64_t v : {base + 1, base + 3, base + 5})
        flips += d.diffRow(0, v, 0x55, now).size();
    EXPECT_GT(flips, 0u);
}

INSTANTIATE_TEST_SUITE_P(Phases, RefreshPhase, ::testing::Range(0u, 8u));

class BuddyStress : public ::testing::TestWithParam<unsigned>
{
};

/**
 * Allocator stress property: random alloc/free sequences never hand
 * out overlapping blocks and always coalesce back to the initial
 * free-byte count.
 */
TEST_P(BuddyStress, NoOverlapAndFullCoalesce)
{
    BuddyAllocator b(1ULL << 26, 0.0);
    std::uint64_t initial = b.freeBytes();
    Rng rng(GetParam());

    std::vector<std::pair<PhysAddr, unsigned>> held;
    std::map<PhysAddr, PhysAddr> extents; // base -> end

    for (int step = 0; step < 2000; ++step) {
        if (held.empty() || rng.chance(0.55)) {
            unsigned order = static_cast<unsigned>(
                rng.uniformInt(0, 6));
            auto blk = b.alloc(order);
            if (!blk)
                continue;
            PhysAddr end = *blk + (pageBytes << order);
            // Overlap check against every held block.
            auto it = extents.lower_bound(*blk);
            if (it != extents.end())
                ASSERT_GE(it->first, end);
            if (it != extents.begin()) {
                --it;
                ASSERT_LE(it->second, *blk);
            }
            extents[*blk] = end;
            held.push_back({*blk, order});
        } else {
            std::size_t i = rng.uniformInt(0, held.size() - 1);
            auto [addr, order] = held[i];
            b.free(addr, order);
            extents.erase(addr);
            held[i] = held.back();
            held.pop_back();
        }
    }
    for (auto [addr, order] : held)
        b.free(addr, order);
    EXPECT_EQ(b.freeBytes(), initial);
    EXPECT_EQ(b.freeBlocksAt(BuddyAllocator::maxOrder),
              (1ULL << 26) / (pageBytes << BuddyAllocator::maxOrder));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyStress, ::testing::Range(0u, 8u));

/**
 * Disturbance bookkeeping: the flip log never reports a flip in a row
 * that was itself activated after its last data write (self-refresh
 * on activation), and diffRow always agrees with the log for rows the
 * attacker planted.
 */
TEST(Disturbance, LogAgreesWithDataDiff)
{
    DimmProfile p = DimmProfile::byId("S4");
    p.weakCellsPerRow = 2.0;
    p.hcLogMean = std::log(2500.0);
    p.hcLogSigma = 0.2;
    p.hcMin = 1800;
    TrrConfig no;
    no.enabled = false;
    Dimm d(p, DramTiming::ddr4(2666), no);

    std::vector<std::uint64_t> victims = {1001, 1003, 1005};
    for (auto v : victims)
        d.fillRow(0, v, 0x55, 0.0);
    Ns now = 0.0;
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t agg = 1000 + 2 * rng.uniformInt(0, 2); // 1000/2/4
        now += d.access({0, agg, 0}, now).latency;
    }
    std::size_t diffs = 0;
    for (auto v : victims)
        diffs += d.diffRow(0, v, 0x55, now).size();
    std::size_t logged = 0;
    for (const auto &f : d.flipLog())
        logged += f.row == 1001 || f.row == 1003 || f.row == 1005;
    EXPECT_EQ(diffs, logged);
}

// ---------------------------------------------------------------------
// CPU engines over fuzzed kernels
// ---------------------------------------------------------------------

namespace
{

/** Backend recording every DRAM access the core issues. */
class RecordingBackend : public MemoryBackend
{
  public:
    Ns
    dramAccess(PhysAddr pa, Ns now) override
    {
        accesses.push_back({pa, now});
        return 55.0;
    }

    std::vector<std::pair<PhysAddr, Ns>> accesses;
};

/**
 * A random but well-formed kernel body: arbitrary interleavings of
 * every op kind over a small line pool, guaranteed to contain at
 * least one memory read (run() rejects kernels with none).
 */
HammerKernel
fuzzKernel(Rng &rng)
{
    AddressingMode mode = rng.chance(0.5) ? AddressingMode::CppIndexed
                                          : AddressingMode::JitImmediate;
    HammerKernel k(mode);
    unsigned len = static_cast<unsigned>(rng.uniformInt(4, 40));
    unsigned mem_ops = 0;
    for (unsigned i = 0; i < len; ++i) {
        PhysAddr pa = 0x200000
            + rng.uniformInt(0, 7) * 0x40000; // 8-line pool
        switch (rng.uniformInt(0, 9)) {
          case 0:
            k.pushNops(
                static_cast<unsigned>(rng.uniformInt(1, 1200)));
            break;
          case 1:
            k.push({OpKind::AluDep, 0,
                    static_cast<std::uint32_t>(rng.uniformInt(1, 64))});
            break;
          case 2:
            k.push({OpKind::Lfence, 0, 1});
            break;
          case 3:
            k.push({rng.chance(0.5) ? OpKind::Mfence : OpKind::Cpuid, 0,
                    1});
            break;
          case 4:
            k.push({OpKind::BranchObf, 0, 1});
            break;
          case 5:
            k.push({OpKind::BranchLoop, 0, 1});
            break;
          case 6:
            k.pushMem(OpKind::ClFlushOpt, pa);
            break;
          case 7:
            k.pushMem(OpKind::Load, pa);
            ++mem_ops;
            break;
          default: {
            const OpKind hints[] = {OpKind::PrefetchT0, OpKind::PrefetchT1,
                                    OpKind::PrefetchT2,
                                    OpKind::PrefetchNta};
            k.pushMem(hints[rng.uniformInt(0, 3)], pa);
            ++mem_ops;
            break;
          }
        }
    }
    if (mem_ops == 0)
        k.pushMem(OpKind::PrefetchNta, 0x200000);
    return k;
}

} // namespace

/**
 * For arbitrary kernels, the Blocked engine must issue the identical
 * DRAM access sequence at identical (bit-exact, monotone) timestamps
 * and report identical counters as the Reference engine — batching
 * must never reorder or re-time anything observable.
 */
TEST(CpuEngineProperties, FuzzedKernelsReplayIdentically)
{
    for (std::uint64_t trial = 0; trial < 60; ++trial) {
        Rng fuzz(hashCombine(0xf022, trial));
        HammerKernel k = fuzzKernel(fuzz);
        Arch arch = allArchs[trial % allArchs.size()];
        std::uint64_t seed = hashCombine(trial, 0x5eed);
        Ns start = trial * 1e5;

        RecordingBackend blocked_mem, ref_mem;
        SimCpu blocked(ArchParams::forArch(arch), seed,
                       CpuModelKind::Blocked);
        SimCpu ref(ArchParams::forArch(arch), seed,
                   CpuModelKind::Reference);
        PerfCounters bc = blocked.run(k, blocked_mem, 1500, start);
        PerfCounters rc = ref.run(k, ref_mem, 1500, start);

        std::string what =
            "trial " + std::to_string(trial) + " " + archName(arch);
        EXPECT_EQ(bc.memReads, rc.memReads) << what;
        EXPECT_EQ(bc.dramAccesses, rc.dramAccesses) << what;
        EXPECT_EQ(bc.cacheHits, rc.cacheHits) << what;
        EXPECT_EQ(bc.pfQueueDrops, rc.pfQueueDrops) << what;
        EXPECT_EQ(bc.flushes, rc.flushes) << what;
        EXPECT_EQ(bc.branches, rc.branches) << what;
        EXPECT_EQ(bc.branchMispredicts, rc.branchMispredicts) << what;
        EXPECT_EQ(bc.nops, rc.nops) << what;
        EXPECT_EQ(bc.timeNs, rc.timeNs) << what;

        ASSERT_EQ(blocked_mem.accesses.size(), ref_mem.accesses.size())
            << what;
        for (std::size_t i = 0; i < ref_mem.accesses.size(); ++i) {
            ASSERT_EQ(blocked_mem.accesses[i].first,
                      ref_mem.accesses[i].first)
                << what << " access " << i;
            ASSERT_EQ(blocked_mem.accesses[i].second,
                      ref_mem.accesses[i].second)
                << what << " access " << i;
            // The DRAM command stream never travels backwards in time.
            if (i > 0) {
                ASSERT_GE(blocked_mem.accesses[i].second,
                          blocked_mem.accesses[i - 1].second)
                    << what << " access " << i;
            }
        }
    }
}

/**
 * Stage-2 translation properties, fuzzed over placements and seeds:
 * within each tenant the installed GPA -> HPA map is a bijection onto
 * that tenant's frames (10k random addresses round-trip through
 * gpaToHpa / hpaToGpa with offsets preserved), and across tenants no
 * host page is ever reachable from two VMs (no cross-VM aliasing).
 */
TEST(VmStage2Properties, BijectionPerVmAndNoCrossVmAliasing)
{
    const VmPlacement placements[] = {VmPlacement::Contiguous,
                                      VmPlacement::Interleaved,
                                      VmPlacement::Guarded};
    for (VmPlacement placement : placements) {
        for (bool bank_part : {false, true}) {
            std::uint64_t seed = hashCombine(
                static_cast<std::uint64_t>(placement), bank_part);
            MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S2"),
                             TrrConfig{}, seed);
            BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, seed);
            VmManager vmm(sys, buddy, VmConfig{placement, bank_part});
            ASSERT_TRUE(vmm.createTenants(3, 4ull << 20));

            std::map<std::uint64_t, VmId> host_owner;
            Rng rng(seed);
            for (VmId vm = 1; vm <= 3; ++vm) {
                const std::uint64_t bytes = vmm.gpaBytes(vm);
                std::set<std::uint64_t> host_pages;
                for (int i = 0; i < 10000; ++i) {
                    PhysAddr gpa = rng.uniformInt(0, bytes - 1);
                    auto hpa = vmm.gpaToHpa(vm, gpa);
                    ASSERT_TRUE(hpa.has_value())
                        << "unmapped gpa " << gpa << " vm " << vm;
                    // Offset-preserving, owner-consistent, invertible.
                    EXPECT_EQ(*hpa & (pageBytes - 1),
                              gpa & (pageBytes - 1));
                    EXPECT_EQ(vmm.ownerOf(*hpa), vm);
                    auto back = vmm.hpaToGpa(vm, *hpa);
                    ASSERT_TRUE(back.has_value());
                    EXPECT_EQ(*back, gpa);
                    host_pages.insert(pageOf(*hpa));
                    auto [it, fresh] =
                        host_owner.emplace(pageOf(*hpa), vm);
                    EXPECT_EQ(it->second, vm)
                        << "host page aliased across VMs";
                    (void)fresh;
                }
                // The sampled host pages all lie in the frame list —
                // the codomain of the installed stage-2 map.
                const auto &frames = vmm.framesOf(vm);
                std::set<PhysAddr> frame_set;
                for (PhysAddr f : frames)
                    frame_set.insert(pageOf(f));
                for (std::uint64_t hp : host_pages)
                    EXPECT_TRUE(frame_set.count(hp))
                        << "host page outside the tenant's partition";
            }
        }
    }
}
