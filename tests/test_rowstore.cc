/**
 * @file
 * Row-state storage tests: differential equivalence of the flat
 * fast-path store against the reference hash-map store (byte-identical
 * traces, identical flip sequences, across seeds and job counts), the
 * Dimm::reset() mitigation-state regression, and the flip-latch
 * re-arm semantics documented in dimm.hh.
 */

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dram/dimm.hh"
#include "dram/dimm_profile.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"
#include "trace/golden.hh"
#include "trace/tracer.hh"

using namespace rho;

namespace
{

/** Synthetic dense weak-cell profile (same shape test_dram.cc uses). */
DimmProfile
denseProfile()
{
    DimmProfile p = DimmProfile::byId("S4");
    p.weakCellsPerRow = 4.0;
    p.hcLogMean = std::log(2000.0);
    p.hcLogSigma = 0.1;
    p.hcMin = 1500;
    return p;
}

TrrConfig
noTrr()
{
    TrrConfig t;
    t.enabled = false;
    return t;
}

bool
sameFlips(const std::vector<FlipRecord> &a,
          const std::vector<FlipRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].bank != b[i].bank || a[i].row != b[i].row
            || a[i].bitOffset != b[i].bitOffset
            || a[i].toOne != b[i].toOne || a[i].when != b[i].when)
            return false;
    }
    return true;
}

/** The pinned quickstart campaign, through either row store. */
SweepResult
quickstartRun(unsigned jobs, bool reference,
              std::vector<TraceEvent> &trace)
{
    SystemSpec spec(Arch::RaptorLake, DimmProfile::byId("S2"));
    spec.referenceRowStore = reference;
    spec.trace.enabled = true;
    spec.trace.categories = CatDram | CatTrr | CatFlip | CatPhase;
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, 2000);
    Rng rng(42);
    HammerPattern pattern = HammerPattern::randomNonUniform(rng);
    SweepParams params;
    params.numLocations = 2;
    params.jobs = jobs;
    trace.clear();
    return sweepCampaign(spec, pattern, cfg, params, 42, nullptr,
                         nullptr, &trace);
}

/** The pinned TRR-evasion scenario, through either row store. */
std::vector<TraceEvent>
trrEvasionRun(std::uint64_t seed, bool reference,
              std::vector<FlipRecord> &flips)
{
    TrrConfig trr;
    trr.sampleProb = 0.5;
    trr.matchThreshold = 8;
    trr.maxRefreshesPerTick = 4;
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S2"), trr,
                     seed);
    if (reference)
        sys.dimm().setRowStore(RowStoreKind::Reference);
    Tracer tracer(TraceConfig{
        true, CatDram | CatDisturb | CatTrr | CatFlip | CatPhase,
        std::size_t{1} << 22});
    sys.attachTracer(&tracer);

    HammerSession session(sys, seed);
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, 150000);
    Rng rng(seed);

    HammerPattern uniform = HammerPattern::doubleSided();
    session.hammer(uniform, session.randomLocation(uniform, cfg), cfg);
    HammerPattern evading = HammerPattern::randomNonUniform(rng);
    session.hammer(evading, session.randomLocation(evading, cfg), cfg);

    sys.attachTracer(nullptr);
    EXPECT_EQ(tracer.dropped(), 0u);
    flips = sys.dimm().flipLog();
    return tracer.events();
}

} // namespace

// ---------------------------------------------------------------------
// Differential: flat vs. reference store
// ---------------------------------------------------------------------

TEST(RowStoreDifferential, QuickstartIdenticalAcrossStoresAndJobs)
{
    for (unsigned jobs : {1u, 8u}) {
        std::vector<TraceEvent> flat_tr, ref_tr;
        SweepResult flat = quickstartRun(jobs, false, flat_tr);
        SweepResult ref = quickstartRun(jobs, true, ref_tr);
        EXPECT_EQ(goldenSerialize(flat_tr), goldenSerialize(ref_tr))
            << "trace diverged, jobs " << jobs;
        EXPECT_TRUE(sameFlips(flat.flipList, ref.flipList))
            << "flip list diverged, jobs " << jobs;
        EXPECT_EQ(flat.totalFlips, ref.totalFlips);
        EXPECT_EQ(flat.simTimeNs, ref.simTimeNs);
    }
}

TEST(RowStoreDifferential, TrrEvasionIdenticalAcrossSeeds)
{
    unsigned total_flips = 0;
    for (std::uint64_t seed : {9ULL, 101ULL, 202ULL}) {
        std::vector<FlipRecord> flat_fl, ref_fl;
        auto flat_tr = trrEvasionRun(seed, false, flat_fl);
        auto ref_tr = trrEvasionRun(seed, true, ref_fl);
        EXPECT_EQ(goldenSerialize(flat_tr), goldenSerialize(ref_tr))
            << "trace diverged, seed " << seed;
        EXPECT_TRUE(sameFlips(flat_fl, ref_fl))
            << "flip log diverged, seed " << seed;
        total_flips += flat_fl.size();
    }
    // The scenario must actually exercise the flip path.
    EXPECT_GT(total_flips, 0u);
}

TEST(RowStoreDifferential, ColdRowChurnMatchesReference)
{
    // Thousands of distinct rows force the open-addressed index to
    // grow and the direct-mapped caches to alias (stride 64 maps every
    // row onto one way), exercising every cold path against the
    // reference store.
    auto churn = [](RowStoreKind kind, std::vector<TraceEvent> &out) {
        const DimmProfile &p = DimmProfile::byId("S4");
        Dimm d(p, DramTiming::ddr4(p.freqMts), TrrConfig{});
        d.setRowStore(kind);
        Tracer tr(TraceConfig{true, CatAll, std::size_t{1} << 22});
        d.setTracer(&tr);
        Ns now = 0.0;
        std::uint64_t rows = d.geometry().rowsPerBank;
        for (std::uint64_t i = 0; i < 3000; ++i) {
            std::uint64_t row = (i * 977) % rows;      // scattered
            now += d.access({0, row, 0}, now).latency;
            std::uint64_t aliased = (i * 64) % rows;   // one cache way
            now += d.access({1, aliased, 0}, now).latency;
        }
        d.setTracer(nullptr);
        EXPECT_EQ(tr.dropped(), 0u);
        out = tr.events();
        return d.flipLog();
    };
    std::vector<TraceEvent> flat_tr, ref_tr;
    auto flat_fl = churn(RowStoreKind::Flat, flat_tr);
    auto ref_fl = churn(RowStoreKind::Reference, ref_tr);
    EXPECT_FALSE(flat_tr.empty());
    EXPECT_EQ(goldenSerialize(flat_tr), goldenSerialize(ref_tr));
    EXPECT_TRUE(sameFlips(flat_fl, ref_fl));
}

TEST(RowStore, SwitchAfterStateMaterializedPanics)
{
    const DimmProfile &p = DimmProfile::byId("S2");
    Dimm d(p, DramTiming::ddr4(p.freqMts), TrrConfig{});
    d.access({0, 100, 0}, 0.0);
    EXPECT_DEATH(d.setRowStore(RowStoreKind::Reference), "materialized");
    // reset() clears the state, after which switching is legal again.
    d.reset();
    d.setRowStore(RowStoreKind::Reference);
    EXPECT_EQ(d.rowStore(), RowStoreKind::Reference);
}

// ---------------------------------------------------------------------
// Dimm::reset() regression: mitigation engines must reset too
// ---------------------------------------------------------------------

TEST(DimmReset, ResetDeviceMatchesFreshDevice)
{
    // TRR sampling consumes seeded randomness on every ACT and RFM
    // keeps per-bank RAA counters; a reset device must replay both
    // exactly like a new one. The sampler's match threshold is set
    // unreachable so its rng stream and Misra-Gries tables are
    // exercised (and traced) without the refreshes suppressing every
    // flip, and RFM's interval is long enough that the hammer flips
    // before the first command.
    DimmProfile p = denseProfile();
    TrrConfig trr;
    trr.matchThreshold = 1u << 30;
    RfmConfig rfm;
    rfm.enabled = true;
    rfm.raaimt = 4096;
    // Minimal REF decay: the per-tick decrement would otherwise hold
    // RAA below an interval this long and no RFM would ever fire.
    rfm.refDecrement = 1;

    auto script = [](Dimm &d, std::vector<TraceEvent> &out) {
        Tracer tr(TraceConfig{
            true, CatDram | CatDisturb | CatTrr | CatFlip,
            std::size_t{1} << 21});
        d.setTracer(&tr);
        Ns now = 0.0;
        d.fillRow(0, 5001, 0x55, now);
        for (int i = 0; i < 3000; ++i) {
            now += d.access({0, 5000, 0}, now).latency;
            now += d.access({0, 5002, 0}, now).latency;
        }
        d.setTracer(nullptr);
        EXPECT_EQ(tr.dropped(), 0u);
        out = tr.events();
    };

    std::vector<TraceEvent> fresh_tr, reused_tr;
    Dimm fresh(p, DramTiming::ddr4(2666), trr, rfm);
    script(fresh, fresh_tr);

    Dimm reused(p, DramTiming::ddr4(2666), trr, rfm);
    script(reused, reused_tr); // dirty sampler tables, rng and RAA
    reused.reset();
    EXPECT_EQ(reused.totalActs(), 0u);
    EXPECT_EQ(reused.flipLog().size(), 0u);
    EXPECT_EQ(reused.rfmCommandCount(), 0u);
    script(reused, reused_tr);

    // Identical flip sequence — and identical full event stream,
    // which pins the sampler's randomness (TrrSample events) and the
    // RAA bookkeeping (RfmRefresh events) byte-for-byte.
    EXPECT_TRUE(sameFlips(fresh.flipLog(), reused.flipLog()));
    EXPECT_GT(fresh.flipLog().size(), 0u);
    EXPECT_EQ(goldenSerialize(fresh_tr), goldenSerialize(reused_tr));
    EXPECT_EQ(fresh.totalActs(), reused.totalActs());
    EXPECT_EQ(fresh.trrRefreshCount(), reused.trrRefreshCount());
    EXPECT_EQ(fresh.rfmCommandCount(), reused.rfmCommandCount());
    EXPECT_GE(fresh.rfmCommandCount(), 1u);
    // The scenario must actually exercise the sampler's rng.
    std::size_t samples = 0;
    for (const TraceEvent &e : fresh_tr)
        samples += e.kind == EventKind::TrrSample;
    EXPECT_GT(samples, 0u);
}

// ---------------------------------------------------------------------
// Flip-latch re-arm semantics (documented in dimm.hh)
// ---------------------------------------------------------------------

namespace
{

/** Double-sided hammer around a victim until well past threshold. */
Ns
hammerVictim(Dimm &d, std::uint64_t victim, Ns now, int rounds = 3000)
{
    for (int i = 0; i < rounds; ++i) {
        now += d.access({0, victim - 1, 0}, now).latency;
        now += d.access({0, victim + 1, 0}, now).latency;
    }
    return now;
}

} // namespace

TEST(FlipLatch, ReadDoesNotRearmLatches)
{
    DimmProfile p = denseProfile();
    Dimm d(p, DramTiming::ddr4(2666), noTrr());
    std::uint64_t victim = 5001;
    Ns now = 0.0;
    d.fillRow(0, victim, 0x55, now);

    now = hammerVictim(d, victim, now);
    auto first = d.flipLog();
    std::size_t victim_flips = 0;
    for (const FlipRecord &f : first)
        victim_flips += f.row == victim;
    ASSERT_GT(victim_flips, 0u);

    // Read-verify every flipped byte (the attacker checking its
    // template), then hammer again: the latched cells must not
    // re-flip, because their data was never rewritten.
    for (const FlipRecord &f : first) {
        if (f.row == victim)
            d.readByte({0, victim, f.bitOffset >> 3}, now);
    }
    now = hammerVictim(d, victim, now);
    EXPECT_EQ(d.flipLog().size(), first.size());

    // Rewriting the row re-arms everything: the same hammer produces
    // the same victim flips again.
    d.fillRow(0, victim, 0x55, now);
    now = hammerVictim(d, victim, now);
    std::size_t victim_flips_after = 0;
    for (std::size_t i = first.size(); i < d.flipLog().size(); ++i)
        victim_flips_after += d.flipLog()[i].row == victim;
    EXPECT_EQ(victim_flips_after, victim_flips);
}

TEST(FlipLatch, PartialWriteRearmsOnlyWrittenRange)
{
    DimmProfile p = denseProfile();
    Dimm d(p, DramTiming::ddr4(2666), noTrr());
    std::uint64_t victim = 7001;
    Ns now = 0.0;
    d.fillRow(0, victim, 0x55, now);

    now = hammerVictim(d, victim, now);
    std::set<std::uint32_t> flipped_bytes;
    for (const FlipRecord &f : d.flipLog()) {
        if (f.row == victim)
            flipped_bytes.insert(f.bitOffset >> 3);
    }
    // The dense profile flips cells in several distinct bytes; needed
    // so "only the written range" is distinguishable from "all".
    ASSERT_GE(flipped_bytes.size(), 2u);

    // Rewrite exactly one flipped byte; only its cells may flip again.
    std::uint32_t target = *flipped_bytes.begin();
    std::uint8_t fresh = 0x55;
    d.writeBytes({0, victim, target}, &fresh, 1, now);
    std::size_t before = d.flipLog().size();
    now = hammerVictim(d, victim, now);
    std::size_t new_flips = 0;
    for (std::size_t i = before; i < d.flipLog().size(); ++i) {
        const FlipRecord &f = d.flipLog()[i];
        if (f.row != victim)
            continue;
        EXPECT_EQ(f.bitOffset >> 3, target)
            << "cell outside the written byte re-flipped";
        ++new_flips;
    }
    EXPECT_GT(new_flips, 0u);
}
