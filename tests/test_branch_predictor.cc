/**
 * @file
 * Tests for the gshare/BTB branch predictor.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "cpu/branch_predictor.hh"

using namespace rho;

TEST(BranchPredictor, LearnsAlwaysTakenLoop)
{
    BranchPredictor bp;
    for (int i = 0; i < 1000; ++i)
        bp.predictAndUpdate(0x1234, true, 0x99);
    // After warmup the loop branch should predict near-perfectly.
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 1000; ++i)
        bp.predictAndUpdate(0x1234, true, 0x99);
    EXPECT_EQ(bp.mispredicts() - before, 0u);
}

TEST(BranchPredictor, LearnsAlternatingPatternViaHistory)
{
    BranchPredictor bp;
    for (int i = 0; i < 4000; ++i)
        bp.predictAndUpdate(0x42, i & 1, 0x7);
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 1000; ++i)
        bp.predictAndUpdate(0x42, i & 1, 0x7);
    // gshare history disambiguates a strict alternation.
    EXPECT_LT(bp.mispredicts() - before, 100u);
}

TEST(BranchPredictor, RandomDirectionsUnpredictable)
{
    BranchPredictor bp;
    Rng rng(5);
    for (int i = 0; i < 2000; ++i)
        bp.predictAndUpdate(0x77, rng.chance(0.5), 1);
    double rate = double(bp.mispredicts()) / bp.lookups();
    EXPECT_GT(rate, 0.35);
}

TEST(BranchPredictor, RandomTargetsDefeatBtb)
{
    // Control-flow obfuscation: taken branches with rotating targets
    // miss in the BTB even when the direction is predictable.
    BranchPredictor bp;
    Rng rng(6);
    std::uint64_t miss = 0;
    for (int i = 0; i < 2000; ++i) {
        miss += bp.predictAndUpdate(0x88, true,
                                    1 + rng.uniformInt(0, 7));
    }
    EXPECT_GT(double(miss) / 2000.0, 0.7);
}

TEST(BranchPredictor, ResetClearsState)
{
    BranchPredictor bp;
    for (int i = 0; i < 100; ++i)
        bp.predictAndUpdate(0x1, true, 2);
    bp.reset();
    EXPECT_EQ(bp.lookups(), 0u);
    EXPECT_EQ(bp.mispredicts(), 0u);
    // First taken branch after reset mispredicts (cold BTB + weakly
    // not-taken counters).
    EXPECT_TRUE(bp.predictAndUpdate(0x1, true, 2));
}

TEST(BranchPredictor, DistinctPcsTrackSeparately)
{
    BranchPredictor bp;
    for (int i = 0; i < 500; ++i) {
        bp.predictAndUpdate(0xa, true, 1);
        bp.predictAndUpdate(0xb, false, 0);
    }
    std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 200; ++i) {
        bp.predictAndUpdate(0xa, true, 1);
        bp.predictAndUpdate(0xb, false, 0);
    }
    EXPECT_LT(bp.mispredicts() - before, 40u);
}
