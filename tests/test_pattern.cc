/**
 * @file
 * Property suite for the frequency-domain pattern genome layer:
 * synthesis invariants, the freq > period clamp, parameter
 * validation, mutate/crossover closure, and the wide-pattern
 * placement regression (unsigned wrap in randomLocation).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "hammer/hammer_session.hh"
#include "hammer/pattern.hh"

using namespace rho;

namespace
{

/** Shared invariants every materialized pattern must satisfy. */
void
expectWellFormed(const HammerPattern &p, const PatternParams &params)
{
    EXPECT_GE(p.numPairs(), params.minPairs);
    EXPECT_LE(p.numPairs(), params.maxPairs);
    EXPECT_GE(p.slots().size(), 1u << params.minPeriodLog2);
    EXPECT_LE(p.slots().size(), 1u << params.maxPeriodLog2);
    // Power-of-two period.
    EXPECT_EQ(p.slots().size() & (p.slots().size() - 1), 0u);
    for (unsigned s : p.slots())
        EXPECT_LT(s, p.numPairs()); // every slot filled, none dangling
    ASSERT_EQ(p.genome().size(), p.numPairs());
    for (const PairGene &g : p.genome()) {
        EXPECT_LE(g.rowOffset, params.maxRowSpread);
        EXPECT_LE(g.ampLog2, params.maxAmpLog2);
        EXPECT_LT(g.phase, p.slots().size());
        // Frequencies never exceed the period after materialization.
        EXPECT_LE(1u << g.freqLog2, p.slots().size());
    }
    unsigned max_off = 0;
    for (const PairGene &g : p.genome())
        max_off = std::max(max_off, g.rowOffset);
    EXPECT_GE(p.footprintRows(), max_off + 3);
}

} // namespace

TEST(PatternParamsCheck, DefaultsAreValid)
{
    EXPECT_TRUE(patternParamsOk(PatternParams{}));
    EXPECT_EQ(patternParamsError(PatternParams{}), "");
}

TEST(PatternParamsCheck, InvertedRangesRejected)
{
    PatternParams p;
    p.minPairs = 10;
    p.maxPairs = 4;
    EXPECT_FALSE(patternParamsOk(p));

    p = PatternParams{};
    p.minPeriodLog2 = 7;
    p.maxPeriodLog2 = 5;
    EXPECT_FALSE(patternParamsOk(p));

    p = PatternParams{};
    p.minPairs = 0;
    EXPECT_FALSE(patternParamsOk(p));
}

TEST(PatternParamsCheck, FreqAbovePeriodRejected)
{
    // maxFreqLog2 >= minPeriodLog2 allows a frequency above the
    // smallest period — the degenerate range behind the old
    // period/freq == 0 collapse.
    PatternParams p;
    p.minPeriodLog2 = 5;
    p.maxFreqLog2 = 5;
    EXPECT_FALSE(patternParamsOk(p));

    p = PatternParams{};
    p.maxAmpLog2 = p.minPeriodLog2;
    EXPECT_FALSE(patternParamsOk(p));
}

TEST(PatternGenome, RandomGenomeWellFormed)
{
    Rng rng(11);
    PatternParams params;
    for (int i = 0; i < 50; ++i) {
        auto p = HammerPattern::randomGenome(rng, params);
        expectWellFormed(p, params);
        EXPECT_TRUE(p.hasGenome());
        // Genome row offsets drive the footprint (tight, not the
        // legacy nPairs * stride quote).
        unsigned max_off = 0;
        for (const PairGene &g : p.genome())
            max_off = std::max(max_off, g.rowOffset);
        EXPECT_EQ(p.footprintRows(), max_off + 3);
        for (unsigned pair = 0; pair < p.numPairs(); ++pair)
            EXPECT_EQ(p.pairRowOffset(pair), p.genome()[pair].rowOffset);
    }
}

TEST(PatternGenome, LegacySamplerKeepsUniformFootprint)
{
    // randomNonUniform records genes but must keep the historical
    // stride layout and footprint quote — golden traces replay it.
    Rng rng(3);
    auto p = HammerPattern::randomNonUniform(rng);
    EXPECT_TRUE(p.hasGenome());
    EXPECT_EQ(p.footprintRows(), p.numPairs() * p.stride() + 3);
    for (unsigned pair = 0; pair < p.numPairs(); ++pair)
        EXPECT_EQ(p.pairRowOffset(pair), pair * p.stride());
}

TEST(PatternGenome, FromGenomeExactAppearanceCounts)
{
    // Fully subscribed period: every slot is claimed by a gene, so
    // per-pair appearance counts are exact (no filler ambiguity).
    // period 8 = pair0 (4 appearances x amp 1) + pair1 (2 x 2).
    std::vector<PairGene> genome = {
        {/*freqLog2=*/2, /*ampLog2=*/0, /*phase=*/0, /*rowOffset=*/0},
        {/*freqLog2=*/1, /*ampLog2=*/1, /*phase=*/1, /*rowOffset=*/8},
    };
    auto p = HammerPattern::fromGenome(99, 8, genome);
    std::vector<unsigned> counts(p.numPairs(), 0);
    for (unsigned s : p.slots())
        ++counts[s];
    EXPECT_EQ(counts[0], 4u);
    EXPECT_EQ(counts[1], 4u);
}

TEST(PatternGenome, FreqAbovePeriodClampsToPeriod)
{
    // freqLog2 8 on a 4-slot period: the unclamped period/freq step is
    // zero (the old collapse); clamped, the pair claims exactly the
    // whole period — once per slot, not 256 stacked placements.
    std::vector<PairGene> genome = {
        {/*freqLog2=*/8, /*ampLog2=*/0, /*phase=*/2, /*rowOffset=*/0},
        {/*freqLog2=*/0, /*ampLog2=*/0, /*phase=*/0, /*rowOffset=*/4},
    };
    auto p = HammerPattern::fromGenome(7, 4, genome);
    ASSERT_EQ(p.slots().size(), 4u);
    unsigned pair0 = 0;
    for (unsigned s : p.slots())
        pair0 += s == 0 ? 1 : 0;
    // The saturating pair owns the full period; the later gene's
    // placements drop (oversubscription is legal and earlier genes
    // win).
    EXPECT_EQ(pair0, 4u);
}

TEST(PatternGenome, RandomNonUniformClampsFreqToSmallPeriods)
{
    // Degenerate-but-callable params: frequency range above the
    // period. The sampler must clamp (bounded placement work) and
    // still produce a fully assigned slot sequence.
    PatternParams params;
    params.minPairs = 2;
    params.maxPairs = 4;
    params.minPeriodLog2 = 2; // 4 slots
    params.maxPeriodLog2 = 2;
    params.maxFreqLog2 = 6; // up to 64 "appearances"
    params.maxAmpLog2 = 1;
    Rng rng(21);
    for (int i = 0; i < 50; ++i) {
        auto p = HammerPattern::randomNonUniform(rng, params);
        ASSERT_EQ(p.slots().size(), 4u);
        for (unsigned s : p.slots())
            EXPECT_LT(s, p.numPairs());
        for (const PairGene &g : p.genome())
            EXPECT_LE(1u << g.freqLog2, p.slots().size());
    }
}

TEST(PatternGenome, FromGenomeIsDeterministic)
{
    Rng rng(5);
    auto a = HammerPattern::randomGenome(rng, PatternParams{});
    auto b = HammerPattern::fromGenome(
        a.id(), static_cast<unsigned>(a.slots().size()), a.genome());
    EXPECT_EQ(a.slots(), b.slots());
    EXPECT_EQ(a.genomeFingerprint(), b.genomeFingerprint());
    EXPECT_EQ(a.footprintRows(), b.footprintRows());
}

TEST(PatternGenome, MutatePreservesInvariants)
{
    PatternParams params;
    Rng rng(31);
    auto p = HammerPattern::randomGenome(rng, params);
    for (int i = 0; i < 300; ++i) {
        p = p.mutate(rng, params);
        expectWellFormed(p, params);
    }
}

TEST(PatternGenome, MutateIsDeterministicUnderRng)
{
    PatternParams params;
    Rng seed_rng(41);
    auto parent = HammerPattern::randomGenome(seed_rng, params);
    Rng a(77), b(77);
    auto ca = parent.mutate(a, params);
    auto cb = parent.mutate(b, params);
    EXPECT_EQ(ca.id(), cb.id());
    EXPECT_EQ(ca.slots(), cb.slots());
    EXPECT_EQ(ca.genomeFingerprint(), cb.genomeFingerprint());
}

TEST(PatternGenome, CrossoverPreservesInvariants)
{
    PatternParams params;
    Rng rng(51);
    for (int i = 0; i < 200; ++i) {
        auto a = HammerPattern::randomGenome(rng, params);
        auto b = HammerPattern::randomGenome(rng, params);
        auto child = HammerPattern::crossover(rng, a, b, params);
        expectWellFormed(child, params);
        // Pair count bounded by the parents' counts.
        EXPECT_GE(child.numPairs(),
                  std::min(a.numPairs(), b.numPairs()));
        EXPECT_LE(child.numPairs(),
                  std::max(a.numPairs(), b.numPairs()));
        // Period comes from one of the parents.
        EXPECT_TRUE(child.slots().size() == a.slots().size() ||
                    child.slots().size() == b.slots().size());
        // Every child gene matches the same-position gene of a parent
        // (phases are re-wrapped mod the child's period, so compare
        // them modulo that).
        unsigned period = static_cast<unsigned>(child.slots().size());
        auto matches = [&](const std::vector<PairGene> &parent,
                           std::size_t g) {
            if (g >= parent.size())
                return false;
            const PairGene &pg = parent[g];
            const PairGene &cg = child.genome()[g];
            return pg.freqLog2 == cg.freqLog2
                && pg.ampLog2 == cg.ampLog2
                && pg.rowOffset == cg.rowOffset
                && pg.phase % period == cg.phase;
        };
        for (std::size_t g = 0; g < child.genome().size(); ++g) {
            EXPECT_TRUE(matches(a.genome(), g) || matches(b.genome(), g))
                << "gene " << g;
        }
    }
}

TEST(PatternGenome, CrossoverIsDeterministicUnderRng)
{
    PatternParams params;
    Rng seed_rng(61);
    auto pa = HammerPattern::randomGenome(seed_rng, params);
    auto pb = HammerPattern::randomGenome(seed_rng, params);
    Rng a(88), b(88);
    auto ca = HammerPattern::crossover(a, pa, pb, params);
    auto cb = HammerPattern::crossover(b, pa, pb, params);
    EXPECT_EQ(ca.id(), cb.id());
    EXPECT_EQ(ca.slots(), cb.slots());
    EXPECT_EQ(ca.genomeFingerprint(), cb.genomeFingerprint());
}

TEST(WidePatternRegression, TryRandomLocationReportsUnplaceable)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S2"));
    HammerSession session(sys, 9);
    HammerConfig cfg;

    // A pathologically wide genome: one pair offset past the whole
    // bank. The old randomLocation computed rowsPerBank - span - 8 in
    // unsigned arithmetic, wrapped to ~2^64, and placed aggressors
    // out of bounds.
    std::uint64_t rows = sys.dimm().geometry().rowsPerBank;
    std::vector<PairGene> genome = {
        {0, 0, 0, 0},
        {0, 0, 1, static_cast<unsigned>(rows)},
    };
    auto wide = HammerPattern::fromGenome(1, 8, genome);
    EXPECT_GT(wide.footprintRows() + 16, rows);

    LocationPick pick = session.tryRandomLocation(wide, cfg);
    EXPECT_FALSE(pick.ok());
    EXPECT_EQ(pick.failure, FailureCode::PatternUnplaceable);

    // The legacy signature stays total: a clamped, in-range base row
    // instead of a wrapped one.
    for (int i = 0; i < 20; ++i) {
        HammerLocation loc = session.randomLocation(wide, cfg);
        EXPECT_LT(loc.baseRow, rows);
        EXPECT_GE(loc.baseRow, 8u);
        EXPECT_LT(loc.bank, sys.mapping().numBanks());
    }
}

TEST(WidePatternRegression, PlaceablePatternsStillPlace)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S2"));
    HammerSession session(sys, 10);
    HammerConfig cfg;
    Rng rng(71);
    for (int i = 0; i < 50; ++i) {
        auto p = HammerPattern::randomGenome(rng, PatternParams{});
        LocationPick pick = session.tryRandomLocation(p, cfg);
        ASSERT_TRUE(pick.ok());
        EXPECT_EQ(pick.failure, FailureCode::None);
        EXPECT_LT(pick.loc->baseRow + p.footprintRows() + 8,
                  sys.dimm().geometry().rowsPerBank);
        EXPECT_GE(pick.loc->baseRow, 8u);
    }
}
