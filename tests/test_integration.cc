/**
 * @file
 * Cross-module integration tests: the full attack pipeline
 * (reverse-engineer -> fuzz -> tune -> sweep) on a fresh machine, and
 * end-to-end reproducibility of the whole stack.
 */

#include <gtest/gtest.h>

#include "hammer/nop_tuner.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"
#include "revng/reverse_engineer.hh"

using namespace rho;

TEST(Pipeline, ReverseEngineerThenHammer)
{
    // The attack uses only what it recovered: the reverse-engineered
    // bank functions and row bits drive aggressor placement via a
    // reconstructed mapping, which must behave identically.
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                     TrrConfig{}, 17);
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 17);
    PhysPool pool(buddy, 0.70);
    TimingProbe probe(sys, 17);
    RhoReverseEngineer re(probe, pool, 17);
    MappingRecovery rec = re.run();
    ASSERT_TRUE(rec.success) << rec.failureReason;
    ASSERT_TRUE(rec.matches(sys.mapping()));

    HammerSession session(sys, 18);
    PatternFuzzer fuzzer(session, 19);
    FuzzParams params;
    params.numPatterns = 6;
    params.locationsPerPattern = 2;
    auto res = fuzzer.run(rhoConfig(Arch::RaptorLake, true, 300000),
                          params);
    EXPECT_GT(res.totalFlips, 0u);
    ASSERT_TRUE(res.bestPattern.has_value());
}

TEST(Pipeline, FuzzThenSweepBestPattern)
{
    MemorySystem sys(Arch::CometLake, DimmProfile::byId("S4"),
                     TrrConfig{}, 21);
    HammerSession session(sys, 21);
    PatternFuzzer fuzzer(session, 22);
    FuzzParams params;
    params.numPatterns = 6;
    params.locationsPerPattern = 2;
    HammerConfig cfg = rhoConfig(Arch::CometLake, true, 250000);
    auto fz = fuzzer.run(cfg, params);
    ASSERT_TRUE(fz.bestPattern.has_value());

    auto sw = sweep(session, *fz.bestPattern, cfg, 6, 23);
    EXPECT_GT(sw.totalFlips, 0u);
    EXPECT_GT(sw.flipsPerMinute(), 0.0);
}

TEST(Reproducibility, IdenticalSeedsIdenticalOutcomes)
{
    auto once = [](std::uint64_t seed) {
        MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S3"),
                         TrrConfig{}, seed);
        HammerSession session(sys, seed);
        PatternFuzzer fuzzer(session, seed + 1);
        FuzzParams params;
        params.numPatterns = 4;
        params.locationsPerPattern = 2;
        auto r = fuzzer.run(rhoConfig(Arch::RaptorLake, true, 200000),
                            params);
        return std::pair{r.totalFlips, r.bestPatternFlips};
    };
    EXPECT_EQ(once(99), once(99));
    EXPECT_NE(once(99), once(100)); // and seeds matter
}

TEST(Reproducibility, SimulatedTimeIsDeterministic)
{
    auto run = [] {
        MemorySystem sys(Arch::AlderLake, DimmProfile::byId("S2"),
                         TrrConfig{}, 55);
        HammerSession session(sys, 55);
        Rng rng(56);
        auto pattern = HammerPattern::randomNonUniform(rng);
        auto loc = session.randomLocation(pattern, HammerConfig{});
        auto out = session.hammer(pattern, loc,
                                  rhoConfig(Arch::AlderLake, true,
                                            150000));
        return out.perf.timeNs;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Pipeline, TuningPhaseMatchesShippedConfig)
{
    // The shipped tunedNopCount values must sit inside the productive
    // range an actual tuning run discovers (within the plateau).
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                     TrrConfig{}, 61);
    HammerSession session(sys, 61);
    Rng rng(64);
    auto pattern = HammerPattern::randomNonUniform(rng);
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, 400000);
    auto res = tuneNops(session, pattern, cfg, {0, 400, 800, 1600, 6000},
                        4, 63);
    // The shipped value must beat both extremes of the sweep.
    std::uint64_t at_shipped = 0, at_zero = 0, at_huge = 0;
    for (const auto &pt : res.curve) {
        if (pt.nops == 800)
            at_shipped = pt.flips;
        if (pt.nops == 0)
            at_zero = pt.flips;
        if (pt.nops == 6000)
            at_huge = pt.flips;
    }
    EXPECT_GT(at_shipped, at_zero);
    EXPECT_GT(at_shipped, at_huge);
}
