/**
 * @file
 * Tests for the ASCII table renderer and string formatting.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

using namespace rho;

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::string out = t.render();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "row width");
}

TEST(StrFormat, FormatsLikePrintf)
{
    EXPECT_EQ(strFormat("%d-%s-%.1f", 42, "x", 3.14), "42-x-3.1");
    EXPECT_EQ(strFormat("empty"), "empty");
}
