/**
 * @file
 * Cross-backend differential suite for the multi-vendor ArchBackend
 * work: every modelled architecture (Intel linear GF(2) presets, AMD
 * Zen 3's offset non-linear family, ARM Cortex-A72 on LPDDR4) is run
 * through the pinned quickstart / TRR-evasion / campaign scenarios
 * over the full engine matrix — {Flat, Reference} row store x
 * {Blocked, Reference} CPU replay — and every combination must be
 * byte-identical. Alongside sit the backend property tests: arch
 * registry completeness, decode/encode bijectivity fuzz, same-bank-set
 * closure against the family's XOR structure, REF-sync detection
 * determinism, Half-Double disturb bounds on LPDDR4, and reset parity
 * of the per-backend device state.
 */

#include <cmath>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dram/dimm.hh"
#include "dram/dimm_profile.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/ref_sync.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"
#include "mapping/mapping_presets.hh"
#include "trace/golden.hh"
#include "trace/tracer.hh"

using namespace rho;

namespace
{

/** Native DIMM for each backend: DDR4 modules on the desktop parts,
 *  the LPDDR4 sample board on the ARM core. */
const DimmProfile &
profileFor(Arch arch)
{
    return arch == Arch::CortexA72 ? DimmProfile::lpddr4Sample()
                                   : DimmProfile::byId("S2");
}

/** Enum identifier for an arch ("Zen3", "CortexA72", ...) — used as
 *  the gtest parameter name so CI legs can --gtest_filter by backend
 *  instead of by fragile parameter index. */
std::string
archToken(Arch arch)
{
    switch (arch) {
#define RHO_ARCH_TOKEN_CASE(name)                                       \
    case Arch::name:                                                    \
        return #name;
        RHO_ARCH_LIST(RHO_ARCH_TOKEN_CASE)
#undef RHO_ARCH_TOKEN_CASE
    }
    return "Unknown";
}

std::string
archParamName(const ::testing::TestParamInfo<Arch> &info)
{
    return archToken(info.param);
}

bool
sameFlips(const std::vector<FlipRecord> &a,
          const std::vector<FlipRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].bank != b[i].bank || a[i].row != b[i].row
            || a[i].bitOffset != b[i].bitOffset
            || a[i].toOne != b[i].toOne || a[i].when != b[i].when)
            return false;
    }
    return true;
}

} // namespace

// ---------------------------------------------------------------------
// Arch registry (X-macro) completeness
// ---------------------------------------------------------------------

TEST(ArchRegistry, EnumeratesEveryArchExactlyOnce)
{
    // allArchs is generated from RHO_ARCH_LIST, the same X-macro that
    // generates the enum itself, and a static_assert pins the count;
    // this test pins the *runtime* metadata switches to the registry.
    EXPECT_EQ(allArchs.size(), archCount);
    std::set<Arch> vals(allArchs.begin(), allArchs.end());
    EXPECT_EQ(vals.size(), archCount) << "duplicate enum value";

    std::set<std::string> names;
    for (Arch a : allArchs) {
        EXPECT_FALSE(archName(a).empty());
        EXPECT_FALSE(archCpu(a).empty());
        EXPECT_GT(archMemFreq(a), 0u);
        names.insert(archName(a));
    }
    EXPECT_EQ(names.size(), archCount) << "duplicate arch name";

    // Both non-Intel platforms are registered and expose REF blocking;
    // the Intel parts hide it behind controller queueing.
    EXPECT_TRUE(vals.count(Arch::Zen3));
    EXPECT_TRUE(vals.count(Arch::CortexA72));
    EXPECT_TRUE(archRefBlocking(Arch::Zen3));
    EXPECT_TRUE(archRefBlocking(Arch::CortexA72));
    EXPECT_FALSE(archRefBlocking(Arch::CometLake));
    EXPECT_FALSE(archRefBlocking(Arch::RaptorLake));
}

TEST(ArchRegistry, FamilyKindsMatchVendor)
{
    struct Geo
    {
        unsigned sizeGib, ranks;
    };
    for (Geo g : {Geo{8, 1}, {16, 2}, {32, 2}}) {
        for (Arch a : allArchs) {
            AddressMapping m = mappingFor(a, g.sizeGib, g.ranks);
            if (a == Arch::Zen3) {
                EXPECT_EQ(m.familyKind(), MappingFamilyKind::ZenOffset);
                EXPECT_NE(m.regionOffset(), 0u);
                EXPECT_NE(m.describe().find("Offset"), std::string::npos);
            } else {
                EXPECT_EQ(m.familyKind(), MappingFamilyKind::LinearGf2);
                EXPECT_EQ(m.regionOffset(), 0u);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Mapping-family property tests
// ---------------------------------------------------------------------

class BackendProps : public ::testing::TestWithParam<Arch>
{
};

TEST_P(BackendProps, BijectivityFuzzTenThousandAddresses)
{
    Arch arch = GetParam();
    struct Geo
    {
        unsigned sizeGib, ranks;
    };
    for (Geo g : {Geo{8, 1}, {16, 2}, {32, 2}}) {
        AddressMapping m = mappingFor(arch, g.sizeGib, g.ranks);
        Rng rng(0xb1cec7 + g.sizeGib);
        for (int i = 0; i < 10000; ++i) {
            PhysAddr pa = rng.uniformInt(0, m.memBytes() - 1);
            DramAddr da = m.decode(pa);
            ASSERT_LT(da.bank, m.numBanks());
            ASSERT_LT(da.row, m.numRows());
            ASSERT_LT(da.col, m.numCols());
            ASSERT_EQ(m.encode(da), pa) << "pa=" << pa;
        }
    }
}

TEST_P(BackendProps, SameBankSetClosureMatchesXorStructure)
{
    // The bank partition induced by decode() must agree with the
    // family's own published XOR structure *in normalized space*: two
    // addresses share a bank iff every bank function has equal parity
    // on their normalized forms. For the Zen family this pins the
    // mod-2^n offset transform of decode() to the one normalize()
    // exposes; for linear families normalize() is the identity.
    Arch arch = GetParam();
    AddressMapping m = mappingFor(arch, 8, 1);
    const auto &fns = m.bankFnMasks();
    Rng rng(0xc105);

    std::map<std::uint32_t, PhysAddr> rep; // one representative per bank
    for (int i = 0; i < 2000; ++i) {
        PhysAddr pa = rng.uniformInt(0, m.memBytes() - 1);
        std::uint32_t bank = m.decode(pa).bank;
        auto [it, fresh] = rep.emplace(bank, pa);
        (void)fresh;
        // Same bank => every function agrees on the normalized pair.
        std::uint64_t diff = m.normalize(pa) ^ m.normalize(it->second);
        for (std::uint64_t fn : fns) {
            EXPECT_EQ(__builtin_parityll(fn & diff), 0)
                << "bank " << bank << " violates fn " << std::hex << fn;
        }
    }
    // All banks show up, and representatives of different banks are
    // separated by at least one function (the converse direction).
    EXPECT_EQ(rep.size(), m.numBanks());
    for (auto &[b1, p1] : rep) {
        for (auto &[b2, p2] : rep) {
            if (b1 >= b2)
                continue;
            std::uint64_t diff = m.normalize(p1) ^ m.normalize(p2);
            bool any = false;
            for (std::uint64_t fn : fns)
                any = any || __builtin_parityll(fn & diff);
            EXPECT_TRUE(any) << "banks " << b1 << "/" << b2
                             << " indistinct under the XOR structure";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllArchs, BackendProps,
                         ::testing::ValuesIn(allArchs), archParamName);

// ---------------------------------------------------------------------
// Cross-backend differential scenarios (the headline)
// ---------------------------------------------------------------------

namespace
{

struct EnginePair
{
    bool referenceRowStore;
    CpuModelKind cpu;
};

const EnginePair enginePairs[] = {
    {false, CpuModelKind::Blocked},   // the default fast stack
    {false, CpuModelKind::Reference},
    {true, CpuModelKind::Blocked},
    {true, CpuModelKind::Reference},  // the full original stack
};

/** The pinned quickstart campaign on an arbitrary backend/engine. */
SweepResult
quickstartRun(Arch arch, unsigned jobs, EnginePair eng,
              std::vector<TraceEvent> &trace)
{
    SystemSpec spec(arch, profileFor(arch));
    spec.referenceRowStore = eng.referenceRowStore;
    spec.cpuModel = eng.cpu;
    spec.trace.enabled = true;
    spec.trace.categories = CatDram | CatTrr | CatFlip | CatPhase;
    HammerConfig cfg = rhoConfig(arch, true, 2000);
    Rng rng(42);
    HammerPattern pattern = HammerPattern::randomNonUniform(rng);
    SweepParams params;
    params.numLocations = 2;
    params.jobs = jobs;
    trace.clear();
    return sweepCampaign(spec, pattern, cfg, params, 42, nullptr,
                         nullptr, &trace);
}

/** The pinned TRR-evasion scenario on an arbitrary backend/engine. */
std::vector<TraceEvent>
trrEvasionRun(Arch arch, std::uint64_t seed, EnginePair eng,
              std::vector<FlipRecord> &flips)
{
    TrrConfig trr;
    trr.sampleProb = 0.5;
    trr.matchThreshold = 8;
    trr.maxRefreshesPerTick = 4;
    MemorySystem sys(arch, profileFor(arch), trr, seed);
    sys.setCpuModel(eng.cpu);
    if (eng.referenceRowStore)
        sys.dimm().setRowStore(RowStoreKind::Reference);
    Tracer tracer(TraceConfig{
        true, CatDram | CatDisturb | CatTrr | CatFlip | CatPhase,
        std::size_t{1} << 22});
    sys.attachTracer(&tracer);

    HammerSession session(sys, seed);
    HammerConfig cfg = rhoConfig(arch, true, 60000);
    Rng rng(seed);

    HammerPattern uniform = HammerPattern::doubleSided();
    session.hammer(uniform, session.randomLocation(uniform, cfg), cfg);
    HammerPattern evading = HammerPattern::randomNonUniform(rng);
    session.hammer(evading, session.randomLocation(evading, cfg), cfg);

    sys.attachTracer(nullptr);
    EXPECT_EQ(tracer.dropped(), 0u);
    flips = sys.dimm().flipLog();
    return tracer.events();
}

} // namespace

class BackendDifferential : public ::testing::TestWithParam<Arch>
{
};

TEST_P(BackendDifferential, QuickstartIdenticalAcrossEngineMatrix)
{
    Arch arch = GetParam();
    for (unsigned jobs : {1u, 8u}) {
        std::vector<TraceEvent> ref_tr;
        SweepResult ref =
            quickstartRun(arch, jobs, enginePairs[0], ref_tr);
        std::string ref_bytes = goldenSerialize(ref_tr);
        EXPECT_FALSE(ref_tr.empty());
        for (std::size_t e = 1; e < std::size(enginePairs); ++e) {
            std::vector<TraceEvent> got_tr;
            SweepResult got =
                quickstartRun(arch, jobs, enginePairs[e], got_tr);
            EXPECT_EQ(goldenSerialize(got_tr), ref_bytes)
                << "trace diverged, engine pair " << e << " jobs "
                << jobs;
            EXPECT_TRUE(sameFlips(got.flipList, ref.flipList))
                << "flip list diverged, engine pair " << e;
            EXPECT_EQ(got.totalFlips, ref.totalFlips);
            EXPECT_EQ(got.simTimeNs, ref.simTimeNs);
        }
    }
}

TEST_P(BackendDifferential, TrrEvasionIdenticalAcrossEngineMatrix)
{
    Arch arch = GetParam();
    std::vector<FlipRecord> ref_fl;
    auto ref_tr = trrEvasionRun(arch, 9, enginePairs[0], ref_fl);
    std::string ref_bytes = goldenSerialize(ref_tr);
    EXPECT_FALSE(ref_tr.empty());
    for (std::size_t e = 1; e < std::size(enginePairs); ++e) {
        std::vector<FlipRecord> got_fl;
        auto got_tr = trrEvasionRun(arch, 9, enginePairs[e], got_fl);
        EXPECT_EQ(goldenSerialize(got_tr), ref_bytes)
            << "trace diverged, engine pair " << e;
        EXPECT_TRUE(sameFlips(got_fl, ref_fl))
            << "flip log diverged, engine pair " << e;
    }
}

TEST_P(BackendDifferential, CampaignsBitIdenticalAcrossJobCounts)
{
    // REF synchronization enabled: on the refBlocking backends every
    // campaign task runs the detection train before hammering, and
    // the result must still be bit-identical for any --jobs (the
    // detector is driven purely by the simulated clock).
    Arch arch = GetParam();
    SystemSpec spec(arch, profileFor(arch));
    HammerConfig cfg = rhoConfig(arch, true, 30000);
    cfg.refSync = true;

    FuzzParams fparams;
    fparams.numPatterns = 3;
    fparams.locationsPerPattern = 1;
    fparams.jobs = 1;
    FuzzResult fref = fuzzCampaign(spec, cfg, fparams, 7);
    fparams.jobs = 8;
    FuzzResult fgot = fuzzCampaign(spec, cfg, fparams, 7);
    EXPECT_EQ(fgot.totalFlips, fref.totalFlips);
    EXPECT_EQ(fgot.dramAccesses, fref.dramAccesses);
    EXPECT_EQ(fgot.simTimeNs, fref.simTimeNs);

    Rng rng(7);
    HammerPattern pattern = HammerPattern::randomNonUniform(rng);
    SweepParams sparams;
    sparams.numLocations = 4;
    sparams.jobs = 1;
    SweepResult sref = sweepCampaign(spec, pattern, cfg, sparams, 7);
    sparams.jobs = 8;
    SweepResult sgot = sweepCampaign(spec, pattern, cfg, sparams, 7);
    EXPECT_EQ(sgot.totalFlips, sref.totalFlips);
    EXPECT_EQ(sgot.cumulativeTimeNs, sref.cumulativeTimeNs);
    EXPECT_EQ(sgot.simTimeNs, sref.simTimeNs);
    EXPECT_TRUE(sameFlips(sgot.flipList, sref.flipList));
}

INSTANTIATE_TEST_SUITE_P(AllArchs, BackendDifferential,
                         ::testing::ValuesIn(allArchs), archParamName);

// ---------------------------------------------------------------------
// REF-sync detection
// ---------------------------------------------------------------------

TEST(RefSync, DetectsCadenceOnlyOnRefBlockingBackends)
{
    for (Arch arch : allArchs) {
        MemorySystem sys(arch, profileFor(arch), TrrConfig{}, 5);
        RefSyncDetector det(sys);
        RefSyncEstimate est = det.detect();
        if (!archRefBlocking(arch)) {
            EXPECT_FALSE(est.detected) << archName(arch);
            continue;
        }
        EXPECT_TRUE(est.detected) << archName(arch);
        // The estimated period is the part's tREFI: ~7800 ns on the
        // DDR4 Zen 3 box, ~3904 ns on the LPDDR4 board.
        if (arch == Arch::Zen3) {
            EXPECT_GT(est.period, 7000.0);
            EXPECT_LT(est.period, 8600.0);
        } else {
            EXPECT_GT(est.period, 3500.0);
            EXPECT_LT(est.period, 4400.0);
        }
        EXPECT_GT(est.blockNs, 0.0);
        EXPECT_GE(est.spikes, 3u);
        EXPECT_GT(est.nextSafeStart(sys.now()), sys.now());
    }
}

TEST(RefSync, DetectionIsDeterministic)
{
    for (Arch arch : {Arch::Zen3, Arch::CortexA72}) {
        auto run = [arch] {
            MemorySystem sys(arch, profileFor(arch), TrrConfig{}, 5);
            RefSyncDetector det(sys);
            return det.detect();
        };
        RefSyncEstimate a = run(), b = run();
        EXPECT_EQ(a.detected, b.detected);
        EXPECT_EQ(a.period, b.period);
        EXPECT_EQ(a.lastBoundary, b.lastBoundary);
        EXPECT_EQ(a.blockNs, b.blockNs);
        EXPECT_EQ(a.spikes, b.spikes);
    }
}

// ---------------------------------------------------------------------
// Half-Double disturb bounds (LPDDR4)
// ---------------------------------------------------------------------

namespace
{

/**
 * Double-sided hammer (aggressors 4999/5001) on the LPDDR4 board with
 * an active TRR; returns the flip rows. The weights select the
 * distance-2 channels: `hd` the direct per-ACT coupling, `rd` the
 * refresh-sweep disturbance that turns the radius-1 victim refresh
 * into a Half-Double vector (TRR's refresh of a+-1 hammers a+-2).
 */
std::vector<std::uint64_t>
lpddr4Hammer(double hd, double rd, int rounds = 150000)
{
    DimmProfile p = DimmProfile::lpddr4Sample();
    p.weakCellsPerRow = 4.0;
    p.hcLogMean = std::log(400.0);
    p.hcLogSigma = 0.1;
    p.hcMin = 300;
    p.halfDoubleWeight = hd;
    p.refreshDisturbWeight = rd;

    TrrConfig trr;
    trr.sampleProb = 0.5;
    trr.matchThreshold = 8;
    trr.maxRefreshesPerTick = 4;

    Dimm d(p, DramTiming::lpddr4(p.freqMts), trr);
    Ns now = 0.0;
    for (std::uint64_t r = 4995; r <= 5005; ++r)
        d.fillRow(0, r, 0x55, now);
    for (int i = 0; i < rounds; ++i) {
        now += d.access({0, 4999, 0}, now).latency;
        now += d.access({0, 5001, 0}, now).latency;
    }
    std::vector<std::uint64_t> rows;
    for (const FlipRecord &f : d.flipLog())
        rows.push_back(f.row);
    return rows;
}

std::size_t
countRows(const std::vector<std::uint64_t> &rows,
          std::initializer_list<std::uint64_t> wanted)
{
    std::size_t n = 0;
    for (std::uint64_t r : rows) {
        for (std::uint64_t w : wanted)
            n += r == w;
    }
    return n;
}

} // namespace

TEST(HalfDouble, DisturbanceBoundedByReachAndMonotoneInWeights)
{
    // Stock LPDDR4 board: both distance-2 channels on.
    auto stock = lpddr4Hammer(0.12, 0.30);
    // Refresh channel only: the direct coupling off.
    auto refresh_only = lpddr4Hammer(0.0, 0.30);
    // Both channels off: distance-2 disturbance must vanish.
    auto none = lpddr4Hammer(0.0, 0.0);

    // Reach bound. Aggressors sit at 4999/5001; the direct coupling
    // reaches a+-2 and the radius-1 refresh sweep covers a+-1, whose
    // own disturbance lands one row further — so nothing outside
    // [4997, 5003] may ever flip, on any variant.
    for (auto *v : {&stock, &refresh_only, &none}) {
        for (std::uint64_t r : *v) {
            EXPECT_GE(r, 4997u);
            EXPECT_LE(r, 5003u);
        }
    }

    // Metamorphic bounds on the Half-Double rows 4997/5003 (distance 2
    // from the nearest aggressor, outside the TRR sweep, so their
    // disturbance accumulates across tREFI ticks):
    //  - with both channels off they never flip;
    //  - the refresh channel alone flips them — the mitigation is the
    //    attack vector;
    //  - adding the direct coupling can only add flips (same weak
    //    cells, strictly larger disturbance rate).
    std::size_t d2_stock = countRows(stock, {4997, 5003});
    std::size_t d2_refresh = countRows(refresh_only, {4997, 5003});
    EXPECT_EQ(countRows(none, {4997, 5003}), 0u);
    EXPECT_GT(d2_refresh, 0u);
    EXPECT_GE(d2_stock, d2_refresh);

    // The direct channel alone reaches them too.
    EXPECT_GT(countRows(lpddr4Hammer(0.12, 0.0), {4997, 5003}), 0u);
    EXPECT_GT(stock.size(), 0u);
    // With no distance-2 channel at all, the radius-1 TRR sweep resets
    // every distance-1 victim each tick before any cell can reach its
    // threshold: the mitigation wins completely. Only the Half-Double
    // channels break it.
    EXPECT_EQ(none.size(), 0u);
}

// ---------------------------------------------------------------------
// Reset parity of the per-backend device state
// ---------------------------------------------------------------------

TEST(BackendReset, Lpddr4ResetDeviceMatchesFreshDevice)
{
    // The LPDDR4 backend added per-bank REF-boundary accounting, the
    // refresh-sweep disturbance and the REF blocking stalls; a reset
    // device must replay all of it exactly like a new one — same stall
    // pattern, same TRR stream, same flips, byte-identical trace.
    DimmProfile p = DimmProfile::lpddr4Sample();
    p.weakCellsPerRow = 4.0;
    p.hcLogMean = std::log(800.0);
    p.hcLogSigma = 0.1;
    p.hcMin = 600;

    TrrConfig trr;
    trr.sampleProb = 0.5;
    trr.matchThreshold = 8;
    trr.maxRefreshesPerTick = 4;

    auto script = [](Dimm &d, std::vector<TraceEvent> &out) {
        Tracer tr(TraceConfig{
            true, CatDram | CatDisturb | CatTrr | CatFlip,
            std::size_t{1} << 22});
        d.setTracer(&tr);
        Ns now = 0.0;
        d.fillRow(0, 5001, 0x55, now);
        // Cross thousands of tREFI boundaries so the REF-blocking
        // stalls and the lazy boundary bookkeeping are exercised.
        for (int i = 0; i < 20000; ++i) {
            now += d.access({0, 5000, 0}, now).latency;
            now += d.access({0, 5002, 0}, now).latency;
        }
        d.setTracer(nullptr);
        EXPECT_EQ(tr.dropped(), 0u);
        out = tr.events();
    };

    std::vector<TraceEvent> fresh_tr, reused_tr;
    Dimm fresh(p, DramTiming::lpddr4(p.freqMts), trr);
    script(fresh, fresh_tr);

    Dimm reused(p, DramTiming::lpddr4(p.freqMts), trr);
    script(reused, reused_tr); // dirty REF accounting + TRR + charge
    reused.reset();
    EXPECT_EQ(reused.totalActs(), 0u);
    EXPECT_EQ(reused.flipLog().size(), 0u);
    script(reused, reused_tr);

    EXPECT_GT(fresh.flipLog().size(), 0u);
    EXPECT_TRUE(sameFlips(fresh.flipLog(), reused.flipLog()));
    EXPECT_EQ(goldenSerialize(fresh_tr), goldenSerialize(reused_tr));
    EXPECT_EQ(fresh.totalActs(), reused.totalActs());
    EXPECT_EQ(fresh.trrRefreshCount(), reused.trrRefreshCount());
}

TEST(BackendReset, RefSyncDetectableAgainAfterSystemReuse)
{
    // A campaign worker reuses its MemorySystem across phases; the
    // detector must keep finding the same cadence as time advances
    // (boundaries are absolute multiples of tREFI, not relative to the
    // detector's start).
    MemorySystem sys(Arch::CortexA72, DimmProfile::lpddr4Sample(),
                     TrrConfig{}, 5);
    RefSyncDetector det(sys);
    RefSyncEstimate first = det.detect();
    ASSERT_TRUE(first.detected);
    RefSyncDetector::align(sys, first);
    RefSyncEstimate second = det.detect();
    ASSERT_TRUE(second.detected);
    EXPECT_EQ(second.period, first.period);
    EXPECT_GT(second.lastBoundary, first.lastBoundary);
}
