/**
 * @file
 * Tests for the TRR / pTRR mitigation models: uniform double-sided
 * hammering must be caught, non-uniform decoy churn must evade the
 * sampler, and pTRR must stop everything.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "dram/dimm.hh"
#include "dram/trr.hh"
#include "hammer/hammer_session.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

TEST(TrrSampler, CountsAndTriggers)
{
    TrrConfig cfg;
    cfg.sampleProb = 1.0; // deterministic for the unit test
    cfg.matchThreshold = 10;
    TrrSampler s(cfg, 4);
    for (int i = 0; i < 12; ++i)
        s.observeAct(1, 777);
    auto targets = s.onRefreshTick();
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0].bank, 1u);
    EXPECT_EQ(targets[0].row, 777u);
    // The triggered entry is cleared.
    EXPECT_TRUE(s.onRefreshTick().empty());
}

TEST(TrrSampler, MisraGriesChurnEvictsAggressors)
{
    TrrConfig cfg;
    cfg.sampleProb = 1.0;
    cfg.counters = 4;
    cfg.matchThreshold = 10;
    TrrSampler s(cfg, 1);
    // Interleave one aggressor with a sea of distinct decoys: the
    // decrement churn keeps the aggressor's count below threshold.
    for (int round = 0; round < 400; ++round) {
        s.observeAct(0, 42);
        for (int d = 0; d < 8; ++d)
            s.observeAct(0, 10000 + round * 8 + d);
    }
    EXPECT_TRUE(s.onRefreshTick().empty());
}

TEST(TrrSampler, CapacityPerTick)
{
    TrrConfig cfg;
    cfg.sampleProb = 1.0;
    cfg.matchThreshold = 5;
    cfg.maxRefreshesPerTick = 2;
    TrrSampler s(cfg, 8);
    for (std::uint32_t b = 0; b < 4; ++b) {
        for (int i = 0; i < 8; ++i)
            s.observeAct(b, 100 + b);
    }
    EXPECT_EQ(s.onRefreshTick().size(), 2u); // capacity-limited
    EXPECT_EQ(s.onRefreshTick().size(), 2u); // remainder next tick
}

TEST(TrrSampler, DisabledSamplerDoesNothing)
{
    TrrConfig cfg;
    cfg.enabled = false;
    TrrSampler s(cfg, 2);
    for (int i = 0; i < 1000; ++i)
        s.observeAct(0, 1);
    EXPECT_TRUE(s.onRefreshTick().empty());
    EXPECT_EQ(s.targetedRefreshes(), 0u);
}

namespace
{

/** Double-sided hammer loop; returns flips on the victim. */
std::size_t
doubleSidedFlips(const TrrConfig &trr, int pairs = 12000)
{
    DimmProfile p = DimmProfile::byId("S4");
    p.weakCellsPerRow = 4.0;
    p.hcLogMean = std::log(4000.0);
    p.hcLogSigma = 0.1;
    p.hcMin = 3000;
    Dimm d(p, DramTiming::ddr4(2666), trr);
    d.fillRow(0, 5001, 0x55, 0.0);
    Ns now = 0.0;
    for (int i = 0; i < pairs; ++i) {
        now += d.access({0, 5000, 0}, now).latency;
        now += d.access({0, 5002, 0}, now).latency;
    }
    return d.diffRow(0, 5001, 0x55, now).size();
}

} // namespace

TEST(Trr, CatchesDoubleSidedHammering)
{
    EXPECT_EQ(doubleSidedFlips(TrrConfig{}), 0u);
}

TEST(Trr, WithoutTrrDoubleSidedFlips)
{
    TrrConfig off;
    off.enabled = false;
    EXPECT_GT(doubleSidedFlips(off), 0u);
}

/**
 * Regression for the Misra–Gries evasion mechanism DESIGN.md §3.2
 * rests on: a sampled aggressor whose counter has accumulated real
 * weight is *evicted* by a stream of distinct decoy activations, so
 * it never reaches the trigger threshold.
 */
TEST(TrrEvasion, DecoyChurnEvictsASampledAggressorCounter)
{
    TrrConfig cfg;
    cfg.sampleProb = 1.0; // deterministic for the regression
    cfg.counters = 4;
    cfg.matchThreshold = 16;
    TrrSampler s(cfg, 1);

    // The aggressor accumulates weight just below the threshold...
    for (int i = 0; i < 12; ++i)
        s.observeAct(0, 42);
    // ...then Blacksmith-style decoys (all distinct rows) churn the
    // table: Misra-Gries decrements drain the aggressor's counter and
    // finally evict the entry.
    for (int d = 0; d < 200; ++d)
        s.observeAct(0, 20000 + d);
    // Even hammering the aggressor some more afterwards stays below
    // threshold: its history was wiped with the eviction.
    for (int i = 0; i < 12; ++i)
        s.observeAct(0, 42);
    EXPECT_TRUE(s.onRefreshTick().empty());

    // Control: the same total aggressor weight without decoy churn
    // trips the sampler.
    TrrSampler control(cfg, 1);
    for (int i = 0; i < 24; ++i)
        control.observeAct(0, 42);
    auto targets = control.onRefreshTick();
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0].row, 42u);
}

/**
 * End-to-end pin of the evasion behaviour through the full attack
 * stack: with in-DRAM TRR enabled, the uniform double-sided pattern
 * is caught (zero flips) while a Blacksmith-style non-uniform
 * pattern's decoy activations evade the sampler and produce flips.
 */
TEST(TrrEvasion, NonUniformFlipsWhereUniformIsCaught)
{
    const std::uint64_t budget = 300000;
    HammerConfig cfg = rhoConfig(Arch::CometLake, true, budget);

    // Uniform double-sided: TRR locks onto the single aggressor pair.
    {
        MemorySystem sys(Arch::CometLake, DimmProfile::byId("S4"),
                         TrrConfig{}, 40);
        HammerSession session(sys, 40);
        HammerPattern uniform = HammerPattern::doubleSided();
        auto out =
            session.hammer(uniform, HammerLocation{1, 5000}, cfg);
        EXPECT_EQ(out.flips, 0u);
        EXPECT_GT(sys.dimm().trrRefreshCount(), 0u);
    }

    // Non-uniform: decoy churn evades the sampler; across a few
    // seeds the pattern family reliably produces flips.
    std::uint64_t nonuniform_flips = 0;
    for (std::uint64_t seed = 1; seed <= 6 && nonuniform_flips == 0;
         ++seed) {
        MemorySystem sys(Arch::CometLake, DimmProfile::byId("S4"),
                         TrrConfig{}, seed);
        HammerSession session(sys, seed);
        Rng rng(seed);
        HammerPattern pattern = HammerPattern::randomNonUniform(rng);
        auto loc = session.randomLocation(pattern, cfg);
        nonuniform_flips += session.hammer(pattern, loc, cfg).flips;
    }
    EXPECT_GT(nonuniform_flips, 0u);
}

TEST(Trr, PtrrStopsEvasiveHammering)
{
    // pTRR samples every ACT with small probability, which no access
    // pattern can evade: even with the in-DRAM TRR disabled, the
    // victim keeps being refreshed.
    TrrConfig ptrr;
    ptrr.enabled = false;
    ptrr.ptrr = true;
    ptrr.ptrrSampleProb = 2e-3;
    EXPECT_EQ(doubleSidedFlips(ptrr), 0u);
}
