/**
 * @file
 * Tests for the statistics helpers, in particular the bimodal
 * threshold finder the side channel relies on.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"

using namespace rho;

TEST(RunningStat, Moments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsSafe)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-3.0); // clamps into first bin
    h.add(25.0); // clamps into last bin
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.totalCount(), 4u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
}

TEST(Histogram, FractionAbove)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 90; ++i)
        h.add(10.0);
    for (int i = 0; i < 10; ++i)
        h.add(80.0);
    EXPECT_NEAR(h.fractionAbove(50.0), 0.1, 1e-9);
}

class ThresholdTest : public ::testing::TestWithParam<unsigned>
{
};

/**
 * Property: for synthetic bimodal latency distributions like the
 * SBDR channel produces, the threshold lands between the modes.
 */
TEST_P(ThresholdTest, SeparatesBimodalModes)
{
    Rng rng(GetParam());
    double lo_mode = 40.0 + rng.uniformReal(0, 10);
    double hi_mode = lo_mode + 20.0 + rng.uniformReal(0, 15);
    double frac_hi = 0.03 + rng.uniformReal(0, 0.05);

    Histogram h(20.0, 140.0, 240);
    for (int i = 0; i < 4000; ++i) {
        bool hi = rng.chance(frac_hi);
        h.add(rng.normal(hi ? hi_mode : lo_mode, 1.5));
    }
    double t = h.separatingThreshold(0.005);
    EXPECT_GT(t, lo_mode + 4.0);
    EXPECT_LT(t, hi_mode - 4.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdTest, ::testing::Range(0u, 10u));

TEST(Percentile, Basics)
{
    std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}
