/**
 * @file
 * The campaign service layer: shard partitioning, retry/backoff,
 * the worker file protocol, the fork/poll/SIGKILL supervisor, and the
 * end-to-end guarantee that supervised multi-process campaigns merge
 * bit-identically to uninterrupted in-process runs — under worker
 * crashes, hangs and journal bit-rot.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "fault/fault_injector.hh"
#include "hammer/tuned_configs.hh"
#include "service/campaign_service.hh"
#include "service/worker_protocol.hh"

using namespace rho;
using namespace rho::service;

namespace
{

std::string
tempBase(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(::getpid());
}

void
removeServiceFiles(const std::string &base, unsigned shards)
{
    std::remove((base + ".merged").c_str());
    for (unsigned k = 0; k < shards; ++k) {
        std::remove((base + ".shard" + std::to_string(k)).c_str());
        std::remove(
            (base + ".shard" + std::to_string(k) + ".status").c_str());
    }
}

/** Fast supervision knobs for tests. */
SupervisorConfig
testSupervisor()
{
    SupervisorConfig cfg;
    cfg.workers = 2;
    cfg.pollIntervalS = 0.002;
    cfg.retry.initialBackoffS = 0.005;
    cfg.retry.maxBackoffS = 0.02;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------

TEST(Service, RetryPolicyBackoffCurve)
{
    RetryPolicy policy;
    policy.maxAttempts = 4;
    policy.initialBackoffS = 0.05;
    policy.backoffFactor = 2.0;
    policy.maxBackoffS = 0.15;

    EXPECT_DOUBLE_EQ(policy.delayForAttempt(1), 0.0);
    EXPECT_DOUBLE_EQ(policy.delayForAttempt(2), 0.05);
    EXPECT_DOUBLE_EQ(policy.delayForAttempt(3), 0.10);
    EXPECT_DOUBLE_EQ(policy.delayForAttempt(4), 0.15); // capped
    EXPECT_DOUBLE_EQ(policy.delayForAttempt(9), 0.15);

    EXPECT_TRUE(policy.allows(1));
    EXPECT_TRUE(policy.allows(4));
    EXPECT_FALSE(policy.allows(5));

    RetryPolicy none;
    none.maxAttempts = 0; // degenerate: still one launch
    EXPECT_TRUE(none.allows(1));
    EXPECT_FALSE(none.allows(2));
}

// ---------------------------------------------------------------------
// Shard partitioning
// ---------------------------------------------------------------------

TEST(Service, MakeShardsBalancedAndComplete)
{
    auto shards = makeShards(10, 3, "/tmp/j");
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0].taskCount, 4u);
    EXPECT_EQ(shards[1].taskCount, 3u);
    EXPECT_EQ(shards[2].taskCount, 3u);

    // Contiguous cover of [0, 10), and masks form a partition.
    std::vector<std::uint8_t> covered(10, 0);
    unsigned next = 0;
    for (const auto &s : shards) {
        EXPECT_EQ(s.firstTask, next);
        next += s.taskCount;
        auto m = s.mask(10);
        for (unsigned i = 0; i < 10; ++i)
            covered[i] = static_cast<std::uint8_t>(covered[i] + m[i]);
    }
    EXPECT_EQ(next, 10u);
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(covered[i], 1u) << i;

    EXPECT_EQ(shards[1].journalPath, "/tmp/j.shard1");
    EXPECT_EQ(shards[1].statusPath, "/tmp/j.shard1.status");
}

TEST(Service, MakeShardsClampsToTaskCount)
{
    EXPECT_EQ(makeShards(2, 8, "/tmp/j").size(), 2u);
    EXPECT_EQ(makeShards(5, 0, "/tmp/j").size(), 1u);
    auto empty = makeShards(0, 4, "/tmp/j");
    ASSERT_EQ(empty.size(), 1u);
    EXPECT_EQ(empty[0].taskCount, 0u);
}

// ---------------------------------------------------------------------
// Worker file protocol
// ---------------------------------------------------------------------

TEST(Service, StatusFileRoundTrip)
{
    std::string path = tempBase("rho_status");
    {
        StatusFile status(path);
        status.start(3, 1234, 2);
        status.taskDone(7, 1);
        status.taskDone(8, 2);
    }
    StatusSnapshot snap = readStatus(path, path + ".nojournal");
    EXPECT_TRUE(snap.started);
    EXPECT_FALSE(snap.finished);
    EXPECT_EQ(snap.tasksDone, 2u);
    EXPECT_GT(snap.progressBytes, 0);

    {
        StatusFile status(path); // a new attempt truncates
        status.start(3, 1235, 3);
        status.finish(4);
    }
    snap = readStatus(path, path + ".nojournal");
    EXPECT_TRUE(snap.finished);
    EXPECT_EQ(snap.tasksDone, 0u);
    std::remove(path.c_str());
}

TEST(Service, MissingStatusFilesReadAsEmpty)
{
    StatusSnapshot snap = readStatus("/nonexistent/a", "/nonexistent/b");
    EXPECT_FALSE(snap.started);
    EXPECT_FALSE(snap.finished);
    EXPECT_EQ(snap.progressBytes, 0);
}

// ---------------------------------------------------------------------
// Supervisor (body mode)
// ---------------------------------------------------------------------

TEST(Service, SupervisorRunsAllShards)
{
    std::string base = tempBase("rho_sup_ok");
    auto shards = makeShards(6, 3, base);
    Supervisor sup(testSupervisor());
    SupervisorResult res = sup.run(shards, [](const ShardSpec &shard,
                                              unsigned, const WorkerChaos &) {
        StatusFile status(shard.statusPath);
        status.finish(shard.taskCount);
        return 0;
    });
    EXPECT_TRUE(res.complete());
    EXPECT_EQ(res.crashes, 0u);
    ASSERT_EQ(res.shards.size(), 3u);
    for (const auto &r : res.shards) {
        EXPECT_EQ(r.state, ShardState::Done);
        EXPECT_EQ(r.attempts, 1u);
        EXPECT_EQ(r.code, FailureCode::None);
    }
    removeServiceFiles(base, 3);
}

TEST(Service, SupervisorRetriesCrashedWorker)
{
    std::string base = tempBase("rho_sup_retry");
    auto shards = makeShards(4, 2, base);
    Supervisor sup(testSupervisor());
    // Shard 0 dies by SIGKILL on its first attempt only.
    SupervisorResult res = sup.run(
        shards, [](const ShardSpec &shard, unsigned attempt,
                   const WorkerChaos &) {
            if (shard.id == 0 && attempt == 1)
                ::raise(SIGKILL);
            return 0;
        });
    EXPECT_TRUE(res.complete());
    EXPECT_EQ(res.crashes, 1u);
    EXPECT_EQ(res.shards[0].state, ShardState::Done);
    EXPECT_EQ(res.shards[0].attempts, 2u);
    EXPECT_EQ(res.shards[0].lastFailure, FailureCode::WorkerCrashed);
    EXPECT_EQ(res.shards[1].attempts, 1u);
    removeServiceFiles(base, 2);
}

TEST(Service, SupervisorQuarantinesAfterRetryBudget)
{
    std::string base = tempBase("rho_sup_quar");
    auto shards = makeShards(4, 2, base);
    SupervisorConfig cfg = testSupervisor();
    cfg.retry.maxAttempts = 3;
    Supervisor sup(cfg);
    // Shard 1 fails every attempt; the campaign must degrade, not die.
    SupervisorResult res = sup.run(
        shards,
        [](const ShardSpec &shard, unsigned, const WorkerChaos &) {
            return shard.id == 1 ? 9 : 0;
        });
    EXPECT_FALSE(res.complete());
    EXPECT_EQ(res.quarantined, 1u);
    EXPECT_EQ(res.shards[0].state, ShardState::Done);
    EXPECT_EQ(res.shards[1].state, ShardState::Quarantined);
    EXPECT_EQ(res.shards[1].attempts, 3u);
    EXPECT_EQ(res.shards[1].code, FailureCode::ShardQuarantined);
    EXPECT_EQ(res.shards[1].lastFailure, FailureCode::WorkerCrashed);
    removeServiceFiles(base, 2);
}

TEST(Service, SupervisorKillsHungWorker)
{
    std::string base = tempBase("rho_sup_hang");
    auto shards = makeShards(2, 1, base);
    SupervisorConfig cfg = testSupervisor();
    cfg.heartbeatTimeoutS = 0.2;
    Supervisor sup(cfg);
    SupervisorResult res = sup.run(
        shards, [](const ShardSpec &, unsigned attempt,
                   const WorkerChaos &) -> int {
            if (attempt == 1)
                for (;;) // wedge silently; no file ever grows
                    ::pause();
            return 0;
        });
    EXPECT_TRUE(res.complete());
    EXPECT_EQ(res.hangs, 1u);
    EXPECT_EQ(res.shards[0].attempts, 2u);
    EXPECT_EQ(res.shards[0].lastFailure, FailureCode::WorkerHung);
    removeServiceFiles(base, 1);
}

TEST(Service, SupervisorShedsConcurrencyOnRepeatedSignalDeaths)
{
    std::string base = tempBase("rho_sup_shed");
    auto shards = makeShards(8, 4, base);
    SupervisorConfig cfg = testSupervisor();
    cfg.workers = 4;
    cfg.minWorkers = 1;
    cfg.shedAfterSignalDeaths = 2;
    Supervisor sup(cfg);
    // Every shard's first attempt dies like an OOM kill.
    SupervisorResult res = sup.run(
        shards, [](const ShardSpec &, unsigned attempt,
                   const WorkerChaos &) {
            if (attempt == 1)
                ::raise(SIGKILL);
            return 0;
        });
    EXPECT_TRUE(res.complete());
    EXPECT_EQ(res.crashes, 4u);
    EXPECT_EQ(res.peakWorkers, 4u);
    EXPECT_LT(res.finalWorkers, res.peakWorkers);
    removeServiceFiles(base, 4);
}

// ---------------------------------------------------------------------
// End-to-end service campaigns
// ---------------------------------------------------------------------

namespace
{

struct SweepScenario
{
    SystemSpec spec;
    HammerConfig cfg;
    HammerPattern pattern;

    explicit SweepScenario(std::uint64_t seed)
        : spec(Arch::AlderLake, DimmProfile::byId("S4")),
          cfg(rhoConfig(Arch::AlderLake, false, 30000)),
          pattern(makePattern(seed))
    {
    }

    static HammerPattern
    makePattern(std::uint64_t seed)
    {
        Rng prng(seed);
        PatternParams pp;
        pp.minPairs = 3;
        pp.maxPairs = 3;
        return HammerPattern::randomNonUniform(prng, pp);
    }
};

void
expectSweepEqual(const SweepResult &a, const SweepResult &b)
{
    EXPECT_EQ(a.totalFlips, b.totalFlips);
    EXPECT_EQ(a.flipsPerLocation, b.flipsPerLocation);
    EXPECT_EQ(a.cumulativeTimeNs, b.cumulativeTimeNs);
    EXPECT_EQ(a.simTimeNs, b.simTimeNs);
    EXPECT_EQ(a.flipList.size(), b.flipList.size());
}

ServiceParams
testService(const std::string &base, unsigned shards)
{
    ServiceParams service;
    service.shards = shards;
    service.jobsPerWorker = 1;
    service.journalBase = base;
    service.fsync = FsyncPolicy::Never; // tmpfs tests; speed
    service.supervisor = testSupervisor();
    return service;
}

} // namespace

TEST(Service, SweepServiceMatchesInProcessRun)
{
    SweepScenario sc(5);
    SweepParams params;
    params.numLocations = 6;
    SweepResult base = sweepCampaign(sc.spec, sc.pattern, sc.cfg, params,
                                     55);

    std::string jbase = tempBase("rho_svc_sweep");
    SweepServiceOutcome out = serviceSweepCampaign(
        sc.spec, sc.pattern, sc.cfg, params, 55, testService(jbase, 3));
    expectSweepEqual(out.result, base);
    EXPECT_EQ(out.report.code, FailureCode::None);
    EXPECT_EQ(out.report.tasksFromWorkers, 6u);
    EXPECT_EQ(out.report.tasksReexecuted, 0u);
    EXPECT_TRUE(out.report.supervisor.complete());
    removeServiceFiles(jbase, 3);
}

TEST(Service, SweepServiceSurvivesKilledWorkersBitIdentical)
{
    SweepScenario sc(5);
    SweepParams params;
    params.numLocations = 6;
    SweepResult base = sweepCampaign(sc.spec, sc.pattern, sc.cfg, params,
                                     55);

    std::string jbase = tempBase("rho_svc_kill");
    ServiceParams service = testService(jbase, 3);
    // SIGKILL every shard's first attempt after its first durable
    // record — the worst case short of losing the journal itself.
    service.supervisor.chaos = [](const ShardSpec &, unsigned attempt) {
        WorkerChaos chaos;
        if (attempt == 1)
            chaos.crashAfterRecords = 1;
        return chaos;
    };
    SweepServiceOutcome out = serviceSweepCampaign(
        sc.spec, sc.pattern, sc.cfg, params, 55, service);
    expectSweepEqual(out.result, base);
    EXPECT_EQ(out.report.code, FailureCode::None);
    EXPECT_EQ(out.report.supervisor.crashes, 3u);
    EXPECT_EQ(out.report.tasksFromWorkers, 6u);
    removeServiceFiles(jbase, 3);
}

TEST(Service, SweepServiceSurvivesHungWorkerBitIdentical)
{
    SweepScenario sc(5);
    SweepParams params;
    params.numLocations = 4;
    SweepResult base = sweepCampaign(sc.spec, sc.pattern, sc.cfg, params,
                                     55);

    std::string jbase = tempBase("rho_svc_hang");
    ServiceParams service = testService(jbase, 2);
    service.supervisor.heartbeatTimeoutS = 0.25;
    service.supervisor.chaos = [](const ShardSpec &shard,
                                  unsigned attempt) {
        WorkerChaos chaos;
        if (shard.id == 0 && attempt == 1)
            chaos.hangAfterRecords = 1;
        return chaos;
    };
    SweepServiceOutcome out = serviceSweepCampaign(
        sc.spec, sc.pattern, sc.cfg, params, 55, service);
    expectSweepEqual(out.result, base);
    EXPECT_EQ(out.report.supervisor.hangs, 1u);
    EXPECT_EQ(out.report.code, FailureCode::None);
    removeServiceFiles(jbase, 2);
}

TEST(Service, SweepServiceSurvivesJournalBitRotBitIdentical)
{
    SweepScenario sc(5);
    SweepParams params;
    params.numLocations = 6;
    SweepResult base = sweepCampaign(sc.spec, sc.pattern, sc.cfg, params,
                                     55);

    std::string jbase = tempBase("rho_svc_rot");
    // Rot every third journal record the workers write; the merge must
    // reject the rotted records and re-execute those tasks.
    FaultInjector faults(FaultSchedule::serviceChaos(0.0, 0.0, 1.0 / 3.0),
                         hashCombine(55, 0xB0));
    ServiceParams service = testService(jbase, 2);
    service.faults = &faults;
    // Crash/hang channels are off, so chaos plans stay empty; only the
    // bitRot hook fires (inside the forked workers).
    SweepServiceOutcome out = serviceSweepCampaign(
        sc.spec, sc.pattern, sc.cfg, params, 55, service);
    expectSweepEqual(out.result, base);
    EXPECT_EQ(out.report.code, FailureCode::None);
    EXPECT_EQ(out.report.tasksFromWorkers + out.report.tasksReexecuted,
              6u);
    removeServiceFiles(jbase, 2);
}

TEST(Service, QuarantinedShardReportsFailureCodeInsteadOfAborting)
{
    SweepScenario sc(5);
    SweepParams params;
    params.numLocations = 6;

    std::string jbase = tempBase("rho_svc_quar");
    ServiceParams service = testService(jbase, 3);
    service.supervisor.retry.maxAttempts = 2;
    // Shard 1 is killed before it can journal anything, every attempt.
    service.supervisor.chaos = [](const ShardSpec &shard, unsigned) {
        WorkerChaos chaos;
        if (shard.id == 1)
            chaos.crashAfterRecords = 1;
        return chaos;
    };
    SweepServiceOutcome out = serviceSweepCampaign(
        sc.spec, sc.pattern, sc.cfg, params, 55, service);

    EXPECT_EQ(out.report.code, FailureCode::ShardQuarantined);
    EXPECT_EQ(out.report.supervisor.quarantined, 1u);
    EXPECT_STREQ(failureCodeName(out.report.code), "shard-quarantined");

    // The degraded result still covers the healthy shards' tasks: the
    // merge compacts to the unmasked locations, in index order.
    SweepResult base = sweepCampaign(sc.spec, sc.pattern, sc.cfg, params,
                                     55);
    const auto &quarantined = out.report.supervisor.shards[1].spec;
    std::vector<std::uint64_t> expected;
    for (unsigned i = 0; i < params.numLocations; ++i) {
        bool masked = i >= quarantined.firstTask &&
                      i < quarantined.firstTask + quarantined.taskCount;
        if (!masked)
            expected.push_back(base.flipsPerLocation[i]);
    }
    EXPECT_EQ(out.result.flipsPerLocation, expected);
    removeServiceFiles(jbase, 3);
}

TEST(Service, FuzzServiceMatchesInProcessRunUnderChaos)
{
    SystemSpec spec(Arch::RaptorLake, DimmProfile::byId("S4"));
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, false, 30000);
    FuzzParams params;
    params.numPatterns = 6;
    params.locationsPerPattern = 1;
    FuzzResult base = fuzzCampaign(spec, cfg, params, 77);

    std::string jbase = tempBase("rho_svc_fuzz");
    ServiceParams service = testService(jbase, 3);
    service.supervisor.chaos = [](const ShardSpec &shard,
                                  unsigned attempt) {
        WorkerChaos chaos;
        if (shard.id % 2 == 0 && attempt == 1)
            chaos.crashAfterRecords = 1;
        return chaos;
    };
    FuzzServiceOutcome out =
        serviceFuzzCampaign(spec, cfg, params, 77, service);
    EXPECT_EQ(out.result.totalFlips, base.totalFlips);
    EXPECT_EQ(out.result.bestPatternFlips, base.bestPatternFlips);
    EXPECT_EQ(out.result.effectivePatterns, base.effectivePatterns);
    EXPECT_EQ(out.result.simTimeNs, base.simTimeNs);
    EXPECT_EQ(out.result.dramAccesses, base.dramAccesses);
    EXPECT_EQ(out.report.code, FailureCode::None);
    EXPECT_GE(out.report.supervisor.crashes, 2u);
    removeServiceFiles(jbase, 3);
}

TEST(Service, ChaosFromFaultsIsDeterministic)
{
    ShardSpec shard;
    shard.id = 1;
    shard.taskCount = 4;
    FaultInjector a(FaultSchedule::serviceChaos(1.0, 0.0, 0.0), 9);
    FaultInjector b(FaultSchedule::serviceChaos(1.0, 0.0, 0.0), 9);
    for (unsigned attempt = 1; attempt <= 3; ++attempt) {
        WorkerChaos ca = chaosFromFaults(a, shard, attempt);
        WorkerChaos cb = chaosFromFaults(b, shard, attempt);
        EXPECT_EQ(ca.crashAfterRecords, cb.crashAfterRecords);
        EXPECT_EQ(ca.hangAfterRecords, cb.hangAfterRecords);
        EXPECT_TRUE(ca.any());
    }
}
