/**
 * @file
 * Determinism and distribution sanity tests for the Rng wrapper.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

using namespace rho;

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.raw(), b.raw());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.raw() == b.raw();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(7);
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, PoissonMean)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 5000; ++i)
        sum += r.poisson(2.5);
    EXPECT_NEAR(sum / 5000.0, 2.5, 0.15);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(17);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIndependence)
{
    Rng a(5);
    Rng child = a.fork();
    // Child stream differs from parent's continued stream.
    EXPECT_NE(child.raw(), a.raw());
}

TEST(SplitMix, StableHashes)
{
    // splitMix64 is used for weak-cell fields; its values must be
    // stable across runs and platforms.
    EXPECT_EQ(splitMix64(0), 0xe220a8397b1dcdafULL);
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}
