/**
 * @file
 * Evolutionary pattern search: parameter validation, bit-identity for
 * any worker count, kill/resume transparency (including tampered
 * generation digests), REF-sync wiring through the fuzz path, the
 * evolved-beats-blind acceptance pin, and the bypass-boundary golden.
 *
 * Golden table
 * ------------
 * tests/goldens/bypass_boundary.txt pins the rendered blind-vs-evolved
 * boundary table for a small fixed search. Regenerate on intended
 * behaviour changes and commit with them:
 *
 *     ./test_evo --regen-goldens
 *     # or: RHO_REGEN_GOLDENS=1 ./test_evo
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "hammer/bypass_search.hh"
#include "hammer/evo_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

namespace
{

bool regenGoldens = false;

#ifndef RHO_GOLDEN_DIR
#define RHO_GOLDEN_DIR "tests/goldens"
#endif

std::string
goldenPath(const std::string &name)
{
    return std::string(RHO_GOLDEN_DIR) + "/" + name;
}

bool
readFileAll(const std::string &path, std::string &out)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

bool
writeFileAll(const std::string &path, const std::string &data)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

/** Byte-compare `text` against the committed golden (regen mode
 *  rewrites the golden and skips). */
void
checkGoldenText(const std::string &name, const std::string &text)
{
    std::string path = goldenPath(name);
    if (regenGoldens) {
        ASSERT_TRUE(writeFileAll(path, text)) << path;
        GTEST_SKIP() << "regenerated " << path << " (" << text.size()
                     << " bytes)";
    }
    std::string want;
    ASSERT_TRUE(readFileAll(path, want))
        << "missing golden " << path
        << " — run ./test_evo --regen-goldens and commit the result";
    EXPECT_EQ(text, want) << "boundary table diverged from " << path;
}

/** Small-but-real search shared by the determinism/resume tests. */
EvoParams
smallEvo()
{
    EvoParams params;
    params.populationSize = 4;
    params.generations = 3;
    params.elites = 1;
    params.locationsPerPattern = 1;
    return params;
}

HammerConfig
searchConfig(std::uint64_t budget = 60000)
{
    return rhoConfig(Arch::RaptorLake, true, budget);
}

SystemSpec
trrOnlySpec()
{
    return SystemSpec(Arch::RaptorLake, DimmProfile::ddr5Sample());
}

/** Field-wise exact equality of two evolutionary outcomes. */
void
expectEvoEqual(const EvoResult &a, const EvoResult &b)
{
    EXPECT_EQ(a.totalFlips, b.totalFlips);
    EXPECT_EQ(a.bestPatternFlips, b.bestPatternFlips);
    EXPECT_EQ(a.effectivePatterns, b.effectivePatterns);
    EXPECT_EQ(a.unplaceablePatterns, b.unplaceablePatterns);
    EXPECT_EQ(a.trialsRun, b.trialsRun);
    EXPECT_EQ(a.bestFlipsPerGeneration, b.bestFlipsPerGeneration);
    EXPECT_EQ(a.simTimeNs, b.simTimeNs);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.failure, b.failure);
    ASSERT_EQ(a.bestPattern.has_value(), b.bestPattern.has_value());
    if (a.bestPattern) {
        EXPECT_EQ(a.bestPattern->id(), b.bestPattern->id());
        EXPECT_EQ(a.bestPattern->genomeFingerprint(),
                  b.bestPattern->genomeFingerprint());
        EXPECT_EQ(a.bestPattern->slots(), b.bestPattern->slots());
    }
}

} // namespace

// ---------------------------------------------------------------------
// Parameter validation (structured failures, not UB or asserts)
// ---------------------------------------------------------------------

TEST(EvoParamsCheck, DefaultsAreValid)
{
    EXPECT_EQ(evoParamsError(EvoParams{}), "");
}

TEST(EvoParamsCheck, GeneticsKnobsValidated)
{
    EvoParams p;
    p.populationSize = 0;
    EXPECT_NE(evoParamsError(p), "");

    p = EvoParams{};
    p.generations = 0;
    EXPECT_NE(evoParamsError(p), "");

    p = EvoParams{};
    p.elites = p.populationSize; // no slot left for offspring
    EXPECT_NE(evoParamsError(p), "");

    p = EvoParams{};
    p.tournamentSize = 0;
    EXPECT_NE(evoParamsError(p), "");

    p = EvoParams{};
    p.crossoverProb = 1.5;
    EXPECT_NE(evoParamsError(p), "");

    p = EvoParams{};
    p.immigrantProb = -0.1;
    EXPECT_NE(evoParamsError(p), "");

    // Degenerate pattern ranges surface through the same check.
    p = EvoParams{};
    p.patternParams.minPairs = 9;
    p.patternParams.maxPairs = 2;
    EXPECT_NE(evoParamsError(p), "");
}

TEST(EvoParamsCheck, CampaignRejectsInvalidParamsStructurally)
{
    EvoParams params = smallEvo();
    params.patternParams.minPeriodLog2 = 9;
    params.patternParams.maxPeriodLog2 = 5;
    EvoResult res =
        evolvedFuzzCampaign(trrOnlySpec(), searchConfig(), params, 1);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.failure, FailureCode::InvalidPatternParams);
    EXPECT_FALSE(res.failureReason.empty());
    EXPECT_EQ(res.trialsRun, 0u);
    EXPECT_EQ(res.totalFlips, 0u);
}

TEST(FuzzParamsCheck, BlindCampaignRejectsInvalidParams)
{
    // Satellite: the blind fuzzer entry points validate too.
    FuzzParams params;
    params.numPatterns = 3;
    params.patternParams.maxFreqLog2 = 9; // >= minPeriodLog2
    FuzzResult res =
        fuzzCampaign(trrOnlySpec(), searchConfig(), params, 1);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.failure, FailureCode::InvalidPatternParams);
    EXPECT_EQ(res.dramAccesses, 0u);

    MemorySystem sys(Arch::RaptorLake, DimmProfile::ddr5Sample());
    HammerSession session(sys, 3);
    PatternFuzzer fuzzer(session, 3);
    FuzzResult serial = fuzzer.run(searchConfig(), params);
    EXPECT_EQ(serial.failure, FailureCode::InvalidPatternParams);
}

TEST(EvoParamsCheck, UnplaceableGenomesReported)
{
    // maxRowSpread wider than the bank: every sampled genome may fail
    // placement; the campaign must say so instead of flipping zero
    // bits silently. (maxRowSpread only has to clear the bank minus
    // guard rows for *some* offsets to fail; use a huge value so all
    // do.)
    EvoParams params = smallEvo();
    params.generations = 1;
    params.patternParams.maxRowSpread = 1u << 18; // >> rowsPerBank
    params.patternParams.minPairs = 2;
    params.patternParams.maxPairs = 2;
    EvoResult res =
        evolvedFuzzCampaign(trrOnlySpec(), searchConfig(), params, 1);
    if (res.unplaceablePatterns == res.trialsRun) {
        EXPECT_EQ(res.failure, FailureCode::PatternUnplaceable);
        EXPECT_EQ(res.totalFlips, 0u);
    }
    EXPECT_GT(res.unplaceablePatterns, 0u);
}

// ---------------------------------------------------------------------
// Determinism and resume
// ---------------------------------------------------------------------

TEST(EvoSearch, BitIdenticalAcrossJobCounts)
{
    EvoParams one = smallEvo();
    one.jobs = 1;
    EvoParams eight = smallEvo();
    eight.jobs = 8;
    EvoResult a =
        evolvedFuzzCampaign(trrOnlySpec(), searchConfig(), one, 11);
    EvoResult b =
        evolvedFuzzCampaign(trrOnlySpec(), searchConfig(), eight, 11);
    expectEvoEqual(a, b);
    EXPECT_EQ(a.trialsRun, one.trialBudget());
    EXPECT_GT(a.dramAccesses, 0u);
}

TEST(EvoSearch, LearningCurveShape)
{
    EvoParams params = smallEvo();
    MetricsRegistry metrics;
    EvoResult res = evolvedFuzzCampaign(trrOnlySpec(), searchConfig(),
                                        params, 11, nullptr, &metrics);
    ASSERT_EQ(res.bestFlipsPerGeneration.size(), params.generations);
    // The curve is a running best: non-decreasing, ending at the
    // campaign best.
    for (std::size_t g = 1; g < res.bestFlipsPerGeneration.size(); ++g) {
        EXPECT_GE(res.bestFlipsPerGeneration[g],
                  res.bestFlipsPerGeneration[g - 1]);
    }
    EXPECT_EQ(res.bestFlipsPerGeneration.back(), res.bestPatternFlips);
    EXPECT_EQ(metrics.value("campaign.generations"),
              params.generations);
    EXPECT_EQ(metrics.value("campaign.patterns"), params.trialBudget());
}

TEST(EvoSearch, CheckpointResumeIsTransparent)
{
    std::string path = testing::TempDir() + "rho_evo.journal";
    std::remove(path.c_str());

    EvoParams params = smallEvo();
    params.jobs = 2;
    params.checkpointPath = path;
    EvoResult cold =
        evolvedFuzzCampaign(trrOnlySpec(), searchConfig(), params, 23);

    // Simulate a mid-campaign kill: drop the tail of the journal (the
    // self-healing loader replays the surviving prefix and re-executes
    // the rest).
    std::string bytes;
    ASSERT_TRUE(readFileAll(path, bytes));
    ASSERT_GT(bytes.size(), 64u);
    ASSERT_TRUE(writeFileAll(path, bytes.substr(0, bytes.size() / 2)));

    EvoParams resume = params;
    resume.jobs = 8; // a different worker count must not matter either
    EvoResult warm =
        evolvedFuzzCampaign(trrOnlySpec(), searchConfig(), resume, 23);
    expectEvoEqual(cold, warm);

    // Full journal replay as well.
    EvoResult replay =
        evolvedFuzzCampaign(trrOnlySpec(), searchConfig(), params, 23);
    expectEvoEqual(cold, replay);

    // And journaling itself is never observable.
    EvoParams bare = smallEvo();
    bare.jobs = 2;
    EvoResult none =
        evolvedFuzzCampaign(trrOnlySpec(), searchConfig(), bare, 23);
    expectEvoEqual(cold, none);

    std::remove(path.c_str());
}

TEST(EvoSearch, TamperedGenerationDigestFallsBackToLiveEvaluation)
{
    std::string path = testing::TempDir() + "rho_evo_tamper.journal";
    std::remove(path.c_str());

    EvoParams params = smallEvo();
    params.jobs = 2;
    params.checkpointPath = path;
    EvoResult cold =
        evolvedFuzzCampaign(trrOnlySpec(), searchConfig(), params, 29);

    // Corrupt the first generation-digest meta record. The CRC check
    // rejects it (and the self-healing loader drops the suffix); the
    // resumed search must not trust the orphaned trial records and
    // still converge to the identical result.
    std::string bytes;
    ASSERT_TRUE(readFileAll(path, bytes));
    std::size_t pos = bytes.find("\nmeta ");
    ASSERT_NE(pos, std::string::npos) << "no meta records journaled";
    std::size_t eol = bytes.find('\n', pos + 1);
    ASSERT_NE(eol, std::string::npos);
    bytes[eol - 1] ^= 0x01;
    ASSERT_TRUE(writeFileAll(path, bytes));

    EvoResult warm =
        evolvedFuzzCampaign(trrOnlySpec(), searchConfig(), params, 29);
    expectEvoEqual(cold, warm);

    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// REF-sync wiring through the fuzz path
// ---------------------------------------------------------------------

TEST(EvoRefSync, KeysSeparateSyncedCampaigns)
{
    // A synced and an unsynced campaign must never share a journal.
    SystemSpec spec(Arch::Zen3, DimmProfile::byId("S2"));
    HammerConfig cfg = rhoConfig(Arch::Zen3, true, 30000);

    FuzzParams fp;
    FuzzParams fp_sync = fp;
    fp_sync.refSync = true;
    EXPECT_NE(fuzzJournalKey(spec, cfg, fp, 7),
              fuzzJournalKey(spec, cfg, fp_sync, 7));

    EvoParams ep = smallEvo();
    EvoParams ep_sync = ep;
    ep_sync.refSync = true;
    EXPECT_NE(evoJournalKey(spec, cfg, ep, 7),
              evoJournalKey(spec, cfg, ep_sync, 7));
}

TEST(EvoRefSync, RefSyncChangesOutcomesOnRefBlockingPlatform)
{
    // Zen 3 exposes REF blocking: the detection train plus boundary
    // alignment run before every trial, so the simulated timeline (and
    // typically the flip outcome) must differ from the unsynced run.
    SystemSpec spec(Arch::Zen3, DimmProfile::byId("S2"));
    HammerConfig cfg = rhoConfig(Arch::Zen3, true, 30000);

    FuzzParams params;
    params.numPatterns = 3;
    params.locationsPerPattern = 1;
    params.jobs = 2;
    FuzzResult plain = fuzzCampaign(spec, cfg, params, 7);
    params.refSync = true;
    FuzzResult synced = fuzzCampaign(spec, cfg, params, 7);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(synced.ok());
    EXPECT_NE(plain.simTimeNs, synced.simTimeNs);

    // Synced runs stay deterministic.
    FuzzResult again = fuzzCampaign(spec, cfg, params, 7);
    EXPECT_EQ(synced.totalFlips, again.totalFlips);
    EXPECT_EQ(synced.simTimeNs, again.simTimeNs);
    EXPECT_EQ(synced.dramAccesses, again.dramAccesses);

    EvoParams evo = smallEvo();
    evo.generations = 2;
    EvoResult eplain = evolvedFuzzCampaign(spec, cfg, evo, 7);
    evo.refSync = true;
    EvoResult esynced = evolvedFuzzCampaign(spec, cfg, evo, 7);
    ASSERT_TRUE(eplain.ok());
    ASSERT_TRUE(esynced.ok());
    EXPECT_NE(eplain.simTimeNs, esynced.simTimeNs);
}

// ---------------------------------------------------------------------
// The acceptance pin: evolved beats blind at equal budget
// ---------------------------------------------------------------------

TEST(EvoVsBlind, EvolvedBeatsBlindOnLeakyFrontierPoints)
{
    // Equal trial budget (48 pattern evaluations each), equal seed and
    // location count: the feedback-driven search must find a stronger
    // best pattern than blind sampling on both leaky frontier points.
    // Values pinned from the tuned engine; see EXPERIMENTS.md §6.
    const Arch arch = Arch::RaptorLake;
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    const HammerConfig cfg = rhoConfig(arch, true, 100000);

    std::vector<MitigationConfig> frontier;
    for (const auto &m : mitigationFrontier()) {
        if (m.name == "trr-only" || m.name == "rfm-relaxed")
            frontier.push_back(m);
    }
    ASSERT_EQ(frontier.size(), 2u);

    BypassParams evolved;
    evolved.engine = BypassEngine::Evolved;
    evolved.evo.populationSize = 6;
    evolved.evo.generations = 8;
    evolved.evo.locationsPerPattern = 2;
    evolved.seed = 5;

    BypassParams blind;
    blind.fuzz.numPatterns = evolved.evo.trialBudget();
    blind.fuzz.locationsPerPattern = 2;
    blind.seed = 5;

    BypassReport br = bypassSearch(arch, d1, cfg, frontier, blind);
    BypassReport er = bypassSearch(arch, d1, cfg, frontier, evolved);
    ASSERT_TRUE(br.ok());
    ASSERT_TRUE(er.ok());

    for (std::size_t i = 0; i < frontier.size(); ++i) {
        const BypassConfigResult &b = br.configs[i];
        const BypassConfigResult &e = er.configs[i];
        EXPECT_EQ(b.trialsRun, e.trialsRun) << frontier[i].name;
        EXPECT_EQ(e.trialsRun, evolved.evo.trialBudget());
        EXPECT_GT(e.fuzz.bestPatternFlips, b.fuzz.bestPatternFlips)
            << "evolved search lost to blind sampling on "
            << frontier[i].name << " at equal budget";
        EXPECT_TRUE(e.bypassed) << frontier[i].name;
    }
}

// ---------------------------------------------------------------------
// Boundary-table golden
// ---------------------------------------------------------------------

TEST(BypassBoundary, RenderedTableMatchesGolden)
{
    const Arch arch = Arch::RaptorLake;
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    const HammerConfig cfg = searchConfig();
    auto frontier = mitigationFrontier();

    BypassParams evolved;
    evolved.engine = BypassEngine::Evolved;
    evolved.evo.populationSize = 3;
    evolved.evo.generations = 2;
    evolved.evo.locationsPerPattern = 1;
    evolved.seed = 42;

    BypassParams blind;
    blind.fuzz.numPatterns = evolved.evo.trialBudget();
    blind.fuzz.locationsPerPattern = 1;
    blind.seed = 42;

    BypassReport br = bypassSearch(arch, d1, cfg, frontier, blind);
    BypassReport er = bypassSearch(arch, d1, cfg, frontier, evolved);
    ASSERT_TRUE(br.ok());
    ASSERT_TRUE(er.ok());
    checkGoldenText("bypass_boundary.txt",
                    renderBypassBoundary(br, er));
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--regen-goldens")
            regenGoldens = true;
    }
    if (const char *env = std::getenv("RHO_REGEN_GOLDENS")) {
        if (*env && std::string(env) != "0")
            regenGoldens = true;
    }
    return RUN_ALL_TESTS();
}
