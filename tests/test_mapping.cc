/**
 * @file
 * Tests for the DRAM address-mapping engine and the Table 4 presets:
 * bijectivity, decode/encode round trips, neighbour navigation, and
 * the randomized mapping generator's invariants.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "mapping/address_mapping.hh"
#include "mapping/mapping_presets.hh"

using namespace rho;

namespace
{

struct Geometry
{
    unsigned sizeGib;
    unsigned ranks;
};

struct PresetCase
{
    Arch arch;
    Geometry geom;
};

std::vector<PresetCase>
allPresets()
{
    std::vector<PresetCase> out;
    for (Arch a : allArchs) {
        for (Geometry g : {Geometry{8, 1}, {16, 2}, {32, 2}})
            out.push_back({a, g});
    }
    return out;
}

} // namespace

class PresetMapping : public ::testing::TestWithParam<PresetCase>
{
};

TEST_P(PresetMapping, IsBijective)
{
    auto [arch, g] = GetParam();
    AddressMapping m = mappingFor(arch, g.sizeGib, g.ranks);
    EXPECT_TRUE(m.isBijective()) << m.describe();
    EXPECT_EQ(m.memBytes(), std::uint64_t(g.sizeGib) << 30);
    EXPECT_EQ(m.numBanks(), g.ranks * 16u);
}

TEST_P(PresetMapping, EncodeDecodeRoundTrip)
{
    auto [arch, g] = GetParam();
    AddressMapping m = mappingFor(arch, g.sizeGib, g.ranks);
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        PhysAddr pa = rng.uniformInt(0, m.memBytes() - 1);
        DramAddr da = m.decode(pa);
        EXPECT_LT(da.bank, m.numBanks());
        EXPECT_LT(da.row, m.numRows());
        EXPECT_EQ(m.encode(da), pa);
    }
    for (int i = 0; i < 200; ++i) {
        DramAddr da;
        da.bank = static_cast<std::uint32_t>(
            rng.uniformInt(0, m.numBanks() - 1));
        da.row = rng.uniformInt(0, m.numRows() - 1);
        da.col = rng.uniformInt(0, m.numCols() - 1);
        EXPECT_EQ(m.decode(m.encode(da)), da);
    }
}

TEST_P(PresetMapping, RowNeighboursStayInBank)
{
    auto [arch, g] = GetParam();
    AddressMapping m = mappingFor(arch, g.sizeGib, g.ranks);
    Rng rng(3);
    for (int i = 0; i < 64; ++i) {
        std::uint32_t bank = static_cast<std::uint32_t>(
            rng.uniformInt(0, m.numBanks() - 1));
        std::uint64_t row = rng.uniformInt(2, m.numRows() - 3);
        for (int d = -2; d <= 2; ++d) {
            PhysAddr pa = m.rowToPhys(bank, row + d);
            DramAddr da = m.decode(pa);
            EXPECT_EQ(da.bank, bank);
            EXPECT_EQ(da.row, row + d);
        }
    }
}

TEST_P(PresetMapping, RoundTripAtAddressSpaceBoundaries)
{
    auto [arch, g] = GetParam();
    AddressMapping m = mappingFor(arch, g.sizeGib, g.ranks);

    // Bottom and top cache lines of the physical space. On the Zen
    // family the bottom sits BELOW the region base, so normalization
    // wraps around the top of the address space — the decode must
    // still be a clean bijection there.
    std::vector<PhysAddr> edges;
    for (PhysAddr d = 0; d < 4096; d += 64) {
        edges.push_back(d);
        edges.push_back(m.memBytes() - 64 - d);
    }
    // The region base itself and its vicinity (no-op for linear
    // families, which report offset 0).
    if (std::uint64_t base = m.regionOffset()) {
        for (PhysAddr d = 0; d < 4096; d += 64) {
            edges.push_back(base + d);
            edges.push_back(base - 64 - d);
        }
    }
    for (PhysAddr pa : edges) {
        DramAddr da = m.decode(pa);
        EXPECT_LT(da.bank, m.numBanks());
        EXPECT_LT(da.row, m.numRows());
        EXPECT_LT(da.col, m.numCols());
        EXPECT_EQ(m.encode(da), pa) << "pa=" << pa;
    }

    // Extreme DRAM coordinates map inside the space and round-trip.
    for (DramAddr da :
         {DramAddr{0, 0, 0},
          DramAddr{static_cast<std::uint32_t>(m.numBanks() - 1),
                   m.numRows() - 1, m.numCols() - 1},
          DramAddr{0, m.numRows() - 1, 0},
          DramAddr{static_cast<std::uint32_t>(m.numBanks() - 1), 0,
                   m.numCols() - 1}}) {
        PhysAddr pa = m.encode(da);
        EXPECT_LT(pa, m.memBytes());
        EXPECT_EQ(m.decode(pa), da);
    }
}

INSTANTIATE_TEST_SUITE_P(Table4, PresetMapping,
                         ::testing::ValuesIn(allPresets()));

TEST(MappingPresets, CometRocketShareScheme)
{
    auto comet = mappingFor(Arch::CometLake, 16, 2);
    auto rocket = mappingFor(Arch::RocketLake, 16, 2);
    EXPECT_TRUE(comet.sameBankAndRowStructure(rocket));
}

TEST(MappingPresets, AlderRaptorShareScheme)
{
    auto alder = mappingFor(Arch::AlderLake, 16, 2);
    auto raptor = mappingFor(Arch::RaptorLake, 16, 2);
    EXPECT_TRUE(alder.sameBankAndRowStructure(raptor));
}

TEST(MappingPresets, SchemesDifferAcrossFamilies)
{
    auto comet = mappingFor(Arch::CometLake, 16, 2);
    auto raptor = mappingFor(Arch::RaptorLake, 16, 2);
    EXPECT_FALSE(comet.sameBankAndRowStructure(raptor));
}

TEST(MappingPresets, CometHasPureRowBitsAlderDoesNot)
{
    // "Pure" row bits appear in no bank function; the paper observed
    // they exist on Comet/Rocket but vanished on Alder/Raptor.
    auto pure_rows = [](const AddressMapping &m) {
        std::uint64_t fn_union = 0;
        for (auto fn : m.bankFnMasks())
            fn_union |= fn;
        unsigned pure = 0;
        for (unsigned b : m.rowBitPositions()) {
            if (!bit(fn_union, b))
                ++pure;
        }
        return pure;
    };
    EXPECT_GT(pure_rows(mappingFor(Arch::CometLake, 16, 2)), 0u);
    EXPECT_EQ(pure_rows(mappingFor(Arch::RaptorLake, 16, 2)), 0u);
    EXPECT_EQ(pure_rows(mappingFor(Arch::AlderLake, 8, 1)), 0u);
}

TEST(MappingPresets, Table4ExactBankFunctions)
{
    auto m = mappingFor(Arch::CometLake, 8, 1);
    std::vector<std::uint64_t> expect = {
        maskOfBits({16, 19}), maskOfBits({15, 18}), maskOfBits({14, 17}),
        maskOfBits({6, 13})};
    auto fns = m.bankFnMasks();
    std::sort(fns.begin(), fns.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(fns, expect);
    EXPECT_EQ(m.rowBitPositions().front(), 17u);
    EXPECT_EQ(m.rowBitPositions().back(), 32u);
}

TEST(MappingPresets, UnsupportedGeometryIsFatal)
{
    EXPECT_DEATH(mappingFor(Arch::CometLake, 4, 1), "unsupported");
}

class RandomizedMapping : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RandomizedMapping, GeneratorInvariants)
{
    Rng rng(GetParam());
    unsigned fns = 4 + GetParam() % 3;
    unsigned non_row = 1 + GetParam() % 2;
    AddressMapping m = randomizedMapping(rng, 33 + GetParam() % 2, fns,
                                         non_row);
    EXPECT_TRUE(m.isBijective());
    EXPECT_EQ(m.numBankFns(), fns);

    // Requested number of non-row functions (disjoint from row bits).
    std::uint64_t row_mask = maskOfBits(m.rowBitPositions());
    unsigned actually_non_row = 0;
    for (auto fn : m.bankFnMasks()) {
        if ((fn & row_mask) == 0)
            ++actually_non_row;
    }
    EXPECT_GE(actually_non_row, non_row);
    EXPECT_LT(actually_non_row, fns); // at least one row-inclusive

    // Round trip still holds.
    Rng addr_rng(1);
    for (int i = 0; i < 50; ++i) {
        PhysAddr pa = addr_rng.uniformInt(0, m.memBytes() - 1);
        EXPECT_EQ(m.encode(m.decode(pa)), pa);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedMapping,
                         ::testing::Range(0u, 16u));

TEST(ArchNames, Table1Metadata)
{
    EXPECT_EQ(archName(Arch::CometLake), "Comet Lake");
    EXPECT_EQ(archCpu(Arch::RaptorLake), "i7-14700K");
    EXPECT_EQ(archMemFreq(Arch::CometLake), 2933u);
    EXPECT_EQ(archMemFreq(Arch::AlderLake), 3200u);
}

TEST(Describe, MentionsBankFnsAndRows)
{
    auto m = mappingFor(Arch::CometLake, 8, 1);
    auto s = m.describe();
    EXPECT_NE(s.find("Bank Func:"), std::string::npos);
    EXPECT_NE(s.find("Row: 17-32"), std::string::npos);
}
