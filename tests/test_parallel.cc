/**
 * @file
 * Tests for the parallel campaign engine: work-stealing thread-pool
 * semantics (ordering, exception propagation, edge cases) and the
 * headline determinism guarantee — sweep and fuzz campaigns produce
 * bit-identical results for any job count.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"
#include "trace/metrics.hh"

using namespace rho;

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    EXPECT_EQ(resolveJobs(0), ThreadPool::defaultJobs());
    EXPECT_EQ(resolveJobs(3), 3u);
}

TEST(ThreadPool, ZeroTasksIsANoOp)
{
    ThreadPool pool(4);
    pool.wait(); // must not hang with nothing submitted
    EXPECT_EQ(pool.counters().tasksRun, 0u);

    auto out = parallelMapOrdered(0, 4, [](unsigned i) { return i; });
    EXPECT_TRUE(out.empty());
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<unsigned> hits{0};
    for (unsigned i = 0; i < 100; ++i)
        pool.submit([&hits] { hits.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(hits.load(), 100u);
    EXPECT_EQ(pool.counters().tasksRun, 100u);

    // The pool is reusable: a second wave accumulates counters.
    for (unsigned i = 0; i < 50; ++i)
        pool.submit([&hits] { hits.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(hits.load(), 150u);
    EXPECT_EQ(pool.counters().tasksRun, 150u);
}

TEST(ThreadPool, OrderedResultsRegardlessOfCompletionOrder)
{
    // Stagger task durations so completion order differs from index
    // order; the result vector must still be index-ordered.
    auto fn = [](unsigned i) {
        std::this_thread::sleep_for(
            std::chrono::microseconds((97 - i % 97) * 10));
        return static_cast<std::uint64_t>(i) * i;
    };
    ParallelStats stats;
    auto out = parallelMapOrdered(97, 4, fn, &stats);
    ASSERT_EQ(out.size(), 97u);
    for (unsigned i = 0; i < 97; ++i)
        EXPECT_EQ(out[i], static_cast<std::uint64_t>(i) * i);
    EXPECT_EQ(stats.tasksRun, 97u);
    EXPECT_GT(stats.wallNs, 0.0);
    EXPECT_EQ(stats.taskWallMs.count(), 97u);
}

TEST(ThreadPool, ExceptionPropagatesEarliestTaskFirst)
{
    auto fn = [](unsigned i) -> int {
        if (i == 3)
            throw std::runtime_error("task 3");
        if (i == 7)
            throw std::runtime_error("task 7");
        return static_cast<int>(i);
    };
    try {
        parallelMapOrdered(16, 4, fn);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        // All tasks quiesce first, then the lowest-index error wins.
        EXPECT_STREQ(e.what(), "task 3");
    }
}

TEST(ThreadPool, SerialFallbackMatchesParallel)
{
    auto fn = [](unsigned i) { return splitMix64(i); };
    auto serial = parallelMapOrdered(32, 1, fn);
    auto parallel = parallelMapOrdered(32, 8, fn);
    EXPECT_EQ(serial, parallel);
}

namespace
{

/** Canonical small campaign setup used by the determinism suites. */
SystemSpec
campaignSpec()
{
    return SystemSpec(Arch::CometLake, DimmProfile::byId("S4"));
}

/** Flip lists must match exactly, including ordering. */
void
expectSameFlipList(const std::vector<FlipRecord> &a,
                   const std::vector<FlipRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].bank, b[i].bank) << "flip " << i;
        EXPECT_EQ(a[i].row, b[i].row) << "flip " << i;
        EXPECT_EQ(a[i].bitOffset, b[i].bitOffset) << "flip " << i;
        EXPECT_EQ(a[i].toOne, b[i].toOne) << "flip " << i;
        EXPECT_EQ(a[i].when, b[i].when) << "flip " << i;
    }
}

} // namespace

TEST(Determinism, FuzzCampaignBitIdenticalAcrossJobCounts)
{
    SystemSpec spec = campaignSpec();
    HammerConfig cfg = rhoConfig(Arch::CometLake, true, 150000);
    FuzzParams params;
    params.numPatterns = 5;
    params.locationsPerPattern = 1;

    for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
        params.jobs = 1;
        FuzzResult ref = fuzzCampaign(spec, cfg, params, seed);
        for (unsigned jobs : {2u, 8u}) {
            params.jobs = jobs;
            FuzzResult got = fuzzCampaign(spec, cfg, params, seed);
            EXPECT_EQ(got.totalFlips, ref.totalFlips)
                << "seed " << seed << " jobs " << jobs;
            EXPECT_EQ(got.bestPatternFlips, ref.bestPatternFlips)
                << "seed " << seed << " jobs " << jobs;
            EXPECT_EQ(got.effectivePatterns, ref.effectivePatterns);
            EXPECT_EQ(got.dramAccesses, ref.dramAccesses);
            EXPECT_EQ(got.simTimeNs, ref.simTimeNs);
            ASSERT_EQ(got.bestPattern.has_value(),
                      ref.bestPattern.has_value());
            if (ref.bestPattern) {
                EXPECT_EQ(got.bestPattern->id(), ref.bestPattern->id());
            }
        }
    }
}

TEST(Determinism, SweepCampaignBitIdenticalAcrossJobCounts)
{
    SystemSpec spec = campaignSpec();
    HammerConfig cfg = rhoConfig(Arch::CometLake, true, 150000);
    SweepParams params;
    params.numLocations = 6;

    for (std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
        Rng pattern_rng(seed);
        HammerPattern pattern =
            HammerPattern::randomNonUniform(pattern_rng);

        params.jobs = 1;
        SweepResult ref = sweepCampaign(spec, pattern, cfg, params, seed);
        for (unsigned jobs : {2u, 8u}) {
            params.jobs = jobs;
            SweepResult got =
                sweepCampaign(spec, pattern, cfg, params, seed);
            EXPECT_EQ(got.totalFlips, ref.totalFlips)
                << "seed " << seed << " jobs " << jobs;
            EXPECT_EQ(got.flipsPerLocation, ref.flipsPerLocation);
            EXPECT_EQ(got.cumulativeTimeNs, ref.cumulativeTimeNs);
            EXPECT_EQ(got.simTimeNs, ref.simTimeNs);
            expectSameFlipList(got.flipList, ref.flipList);
        }
    }
}

TEST(Determinism, MetricsTotalsIndependentOfJobCount)
{
    // The unified counters (ACTs, targeted refreshes, flips, ...) are
    // merged in task order, so the whole registry — not just the
    // headline result — must be identical for any job count.
    SystemSpec spec = campaignSpec();
    HammerConfig cfg = rhoConfig(Arch::CometLake, true, 150000);
    SweepParams params;
    params.numLocations = 4;

    std::uint64_t total_flips = 0;
    for (std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
        Rng pattern_rng(seed);
        HammerPattern pattern =
            HammerPattern::randomNonUniform(pattern_rng);

        params.jobs = 1;
        MetricsRegistry ref;
        sweepCampaign(spec, pattern, cfg, params, seed, nullptr, &ref);
        EXPECT_GT(ref.value("dram.acts"), 0u) << "seed " << seed;
        EXPECT_GT(ref.value("cpu.dram_accesses"), 0u) << "seed " << seed;
        EXPECT_EQ(ref.value("campaign.locations"), params.numLocations);
        total_flips += ref.value("hammer.flips");

        for (unsigned jobs : {2u, 8u}) {
            params.jobs = jobs;
            MetricsRegistry got;
            sweepCampaign(spec, pattern, cfg, params, seed, nullptr,
                          &got);
            EXPECT_EQ(got.all(), ref.all())
                << "seed " << seed << " jobs " << jobs;
        }
    }
    // The property is only interesting if the counters saw real work.
    EXPECT_GT(total_flips, 0u);
}

TEST(Determinism, RestoredTasksAreNotCountedAsRun)
{
    // Regression: a journal-restored task used to be counted in
    // tasksRun even though it did no simulation work, so a resumed
    // campaign reported tasksRun == numLocations twice over.
    SystemSpec spec = campaignSpec();
    HammerConfig cfg = rhoConfig(Arch::CometLake, true, 30000);
    Rng pattern_rng(44);
    HammerPattern pattern = HammerPattern::randomNonUniform(pattern_rng);
    SweepParams params;
    params.numLocations = 5;
    params.jobs = 2;
    params.checkpointPath = testing::TempDir() + "rho_tasksrun.journal";
    std::remove(params.checkpointPath.c_str());

    ParallelStats first;
    sweepCampaign(spec, pattern, cfg, params, 44, &first);
    EXPECT_EQ(first.tasksRun, 5u);
    EXPECT_EQ(first.tasksRestored, 0u);

    // Second run restores everything from the journal: no task
    // actually executed.
    ParallelStats second;
    sweepCampaign(spec, pattern, cfg, params, 44, &second);
    EXPECT_EQ(second.tasksRestored, 5u);
    EXPECT_EQ(second.tasksRun, 0u);
    std::remove(params.checkpointPath.c_str());
}

TEST(Determinism, CampaignStatsReflectScheduling)
{
    SystemSpec spec = campaignSpec();
    HammerConfig cfg = rhoConfig(Arch::CometLake, true, 60000);
    FuzzParams params;
    params.numPatterns = 6;
    params.locationsPerPattern = 1;
    params.jobs = 3;

    ParallelStats stats;
    fuzzCampaign(spec, cfg, params, 5, &stats);
    EXPECT_EQ(stats.jobs, 3u);
    EXPECT_EQ(stats.tasksRun, 6u);
    EXPECT_GT(stats.wallNs, 0.0);
    EXPECT_GT(stats.simNs, 0.0);
    EXPECT_EQ(stats.taskWallMs.count(), 6u);
}
