/**
 * @file
 * Tests for the OS substrate: buddy allocator invariants, address
 * spaces / pagemap, the reverse-engineering pool, and page tables
 * stored in simulated DRAM.
 */

#include <gtest/gtest.h>

#include "fault/fault_injector.hh"
#include "memsys/memory_system.hh"
#include "os/buddy_allocator.hh"
#include "os/page_table.hh"
#include "os/pagemap.hh"

using namespace rho;

TEST(Buddy, AllocFreeRoundTrip)
{
    BuddyAllocator b(1ULL << 30, /*reserved_frac=*/0.0);
    EXPECT_EQ(b.freeBytes(), 1ULL << 30);
    auto p = b.alloc(0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(b.freeBytes(), (1ULL << 30) - pageBytes);
    b.free(*p, 0);
    EXPECT_EQ(b.freeBytes(), 1ULL << 30);
}

TEST(Buddy, SplitsAndCoalesces)
{
    BuddyAllocator b(1ULL << 24, 0.0);
    // Allocate two order-0 buddies out of an order-1 split.
    auto a = b.alloc(0);
    auto c = b.alloc(0);
    ASSERT_TRUE(a && c);
    EXPECT_EQ(*c, *a + pageBytes); // lowest-address-first split
    b.free(*a, 0);
    b.free(*c, 0);
    // Everything must have coalesced back into max-order blocks.
    EXPECT_EQ(b.freeBlocksAt(BuddyAllocator::maxOrder),
              (1ULL << 24) / (pageBytes << BuddyAllocator::maxOrder));
}

TEST(Buddy, BlockAlignment)
{
    BuddyAllocator b(1ULL << 26, 0.0);
    for (unsigned order = 0; order <= BuddyAllocator::maxOrder; ++order) {
        auto p = b.alloc(order);
        ASSERT_TRUE(p);
        EXPECT_EQ(*p % (pageBytes << order), 0u) << order;
    }
}

TEST(Buddy, ExhaustionReturnsNullopt)
{
    BuddyAllocator b(pageBytes << BuddyAllocator::maxOrder, 0.0);
    ASSERT_TRUE(b.alloc(BuddyAllocator::maxOrder));
    EXPECT_FALSE(b.alloc(0).has_value());
    EXPECT_FALSE(b.alloc(BuddyAllocator::maxOrder).has_value());
}

TEST(Buddy, DrainBelowEmptiesLowOrders)
{
    BuddyAllocator b(1ULL << 26, 0.0);
    // Create some low-order fragmentation.
    std::vector<PhysAddr> held;
    for (int i = 0; i < 20; ++i)
        held.push_back(*b.alloc(0));
    auto drained = b.drainBelow(3);
    for (unsigned o = 0; o < 3; ++o)
        EXPECT_EQ(b.freeBlocksAt(o), 0u);
    // Returning the drained blocks restores the byte count.
    std::uint64_t before = b.freeBytes();
    for (auto [addr, order] : drained)
        b.free(addr, order);
    EXPECT_GT(b.freeBytes(), before);
}

TEST(Buddy, ReservedHolesReduceFreeBytes)
{
    BuddyAllocator b(1ULL << 28, 0.05, /*seed=*/3);
    double frac = 1.0 - double(b.freeBytes()) / (1ULL << 28);
    EXPECT_NEAR(frac, 0.05, 0.01);
}

TEST(Buddy, MisalignedFreePanics)
{
    BuddyAllocator b(1ULL << 24, 0.0);
    EXPECT_DEATH(b.free(pageBytes / 2, 0), "misaligned");
}

TEST(AddressSpace, MapTranslateUnmap)
{
    BuddyAllocator b(1ULL << 26, 0.0);
    AddressSpace as(b);
    auto mapped = as.mmap(3 * pageBytes);
    ASSERT_TRUE(mapped);
    VirtAddr va = *mapped;
    EXPECT_EQ(as.mappedPages(), 3u);
    auto pa = as.virtToPhys(va + pageBytes + 123);
    ASSERT_TRUE(pa);
    EXPECT_EQ(*pa % pageBytes, 123u);
    EXPECT_EQ(as.physToVirt(*pa), va + pageBytes + 123);
    as.munmapPage(va);
    EXPECT_FALSE(as.virtToPhys(va).has_value());
    EXPECT_EQ(as.mappedPages(), 2u);
}

TEST(AddressSpace, ContiguousMappingIsContiguous)
{
    BuddyAllocator b(1ULL << 26, 0.0);
    AddressSpace as(b);
    auto va = as.mmapContiguous(4); // 16 pages
    ASSERT_TRUE(va);
    PhysAddr base = *as.virtToPhys(*va);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(*as.virtToPhys(*va + i * pageBytes), base + i * pageBytes);
}

TEST(AddressSpace, DestructorReturnsMemory)
{
    BuddyAllocator b(1ULL << 24, 0.0);
    std::uint64_t before = b.freeBytes();
    {
        AddressSpace as(b);
        ASSERT_TRUE(as.mmap(64 * pageBytes));
        EXPECT_LT(b.freeBytes(), before);
    }
    EXPECT_EQ(b.freeBytes(), before);
}

TEST(PhysPool, CoverageAndMembership)
{
    BuddyAllocator b(1ULL << 28, 0.02);
    PhysPool pool(b, 0.70);
    EXPECT_NEAR(pool.coverage(), 0.70, 0.02);
    Rng rng(5);
    for (int i = 0; i < 200; ++i)
        EXPECT_TRUE(pool.contains(pool.randomAddr(rng)));
}

TEST(PhysPool, PairBaseHonorsMask)
{
    BuddyAllocator b(1ULL << 28, 0.02);
    PhysPool pool(b, 0.70);
    Rng rng(6);
    std::uint64_t mask = (1ULL << 14) | (1ULL << 21);
    for (int i = 0; i < 50; ++i) {
        auto base = pool.pairBase(rng, mask);
        ASSERT_TRUE(base);
        EXPECT_TRUE(pool.contains(*base));
        EXPECT_TRUE(pool.contains(*base ^ mask));
    }
}

TEST(PageTable, MapAndTranslateThroughDram)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S2"));
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02);
    PageTableManager pt(sys, buddy);

    PhysAddr frame = *buddy.allocPage();
    VirtAddr va = 0x500000000000ULL;
    ASSERT_TRUE(pt.mapPage(7, va, frame, true));
    auto xlate = pt.translate(7, va + 77);
    ASSERT_TRUE(xlate);
    EXPECT_EQ(*xlate, frame + 77);
    EXPECT_FALSE(pt.translate(7, va + (pageBytes << 9)).has_value());
    EXPECT_FALSE(pt.translate(8, va).has_value()); // other pid
}

TEST(PageTable, PteLivesInDramAndBitFlipsRedirect)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S2"));
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02);
    PageTableManager pt(sys, buddy);

    PhysAddr frame = *buddy.alloc(5); // aligned so bit 13 of PTE is 0
    VirtAddr va = 0x600000000000ULL;
    ASSERT_TRUE(pt.mapPage(9, va, frame, true));
    auto pte_addr = pt.pteAddrOf(9, va);
    ASSERT_TRUE(pte_addr);

    // Corrupt frame bit 13 directly through the DRAM data path, as a
    // RowHammer flip would.
    std::uint64_t pte = pt.readQword(*pte_addr);
    pt.writeQword(*pte_addr, pte ^ (1ULL << 13));
    auto xlate = pt.translate(9, va);
    ASSERT_TRUE(xlate);
    EXPECT_EQ(pageOf(*xlate), frame ^ (1ULL << 13));
}

TEST(PageTable, SharedTableWithinRegion)
{
    MemorySystem sys(Arch::AlderLake, DimmProfile::byId("S2"));
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02);
    PageTableManager pt(sys, buddy);
    VirtAddr base = 0x700000000000ULL;
    ASSERT_TRUE(pt.mapPage(1, base, *buddy.allocPage(), true));
    auto before = pt.ptPagesAllocated();
    ASSERT_TRUE(
        pt.mapPage(1, base + 5 * pageBytes, *buddy.allocPage(), true));
    EXPECT_EQ(pt.ptPagesAllocated(), before); // same 2 MiB region
    ASSERT_TRUE(
        pt.mapPage(1, base + (pageBytes << 9), *buddy.allocPage(), true));
    EXPECT_EQ(pt.ptPagesAllocated(), before + 1);
}

TEST(Buddy, FaultExemptAllocBypassesInjector)
{
    // Rollback paths reclaim frames with fault_exempt=true: an
    // injected failure there would corrupt allocator bookkeeping
    // after the fault was already charged to the rolled-back
    // operation.
    BuddyAllocator b(1ULL << 24, 0.0);
    FaultInjector inj(FaultSchedule::constant({.allocFailProb = 1.0}),
                      /*seed=*/7);
    b.setFaultInjector(&inj);

    std::uint64_t before = b.freeBytes();
    EXPECT_FALSE(b.alloc(0).has_value());
    EXPECT_EQ(b.freeBytes(), before); // injected failure burns nothing

    auto p = b.alloc(0, /*fault_exempt=*/true);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(b.freeBytes(), before - pageBytes);
    b.free(*p, 0);
}
