/**
 * @file
 * Unit and property tests for GF(2) linear algebra.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/gf2.hh"
#include "common/rng.hh"

using namespace rho;

TEST(Gf2, IdentitySolve)
{
    Gf2Matrix m(4);
    for (unsigned i = 0; i < 4; ++i)
        m.addRow(1ULL << i);
    EXPECT_EQ(m.rank(), 4u);
    auto sol = m.solve(0b1010);
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(*sol, 0b1010u);
}

TEST(Gf2, SingularSystemDetectsInconsistency)
{
    Gf2Matrix m(3);
    m.addRow(0b011);
    m.addRow(0b110);
    m.addRow(0b101); // = row0 ^ row1: dependent
    EXPECT_EQ(m.rank(), 2u);
    // rhs with row2 != row0 ^ row1 parity is inconsistent.
    EXPECT_FALSE(m.solve(0b001).has_value());
    EXPECT_FALSE(m.solve(0b111).has_value());
    // Consistent rhs (bit2 = bit0 ^ bit1) solves.
    EXPECT_TRUE(m.solve(0b011).has_value());
    EXPECT_TRUE(m.solve(0b110).has_value());
}

TEST(Gf2, NullBasisSpansKernel)
{
    Gf2Matrix m(5);
    m.addRow(0b00011);
    m.addRow(0b00110);
    auto basis = m.nullBasis();
    EXPECT_EQ(basis.size(), 3u); // 5 cols - rank 2
    for (auto n : basis) {
        EXPECT_EQ(parity(n, 0b00011), 0u);
        EXPECT_EQ(parity(n, 0b00110), 0u);
    }
}

TEST(Gf2, EmptyMatrixHasFullNullSpace)
{
    Gf2Matrix m(6);
    EXPECT_EQ(m.rank(), 0u);
    EXPECT_EQ(m.nullBasis().size(), 6u);
}

TEST(Gf2, SolverRejectsTooManyRows)
{
    Gf2Matrix m(10);
    for (int i = 0; i < 65; ++i)
        m.addRow(1);
    EXPECT_DEATH({ Gf2Solver s(m); }, "at most 64 rows");
}

class Gf2Random : public ::testing::TestWithParam<unsigned>
{
};

/** Property: for random full-rank square systems, solve() inverts. */
TEST_P(Gf2Random, RandomSquareSystemsRoundTrip)
{
    Rng rng(GetParam());
    unsigned n = 8 + GetParam() % 24;

    // Build a random invertible matrix: start from identity, apply
    // random row operations (preserves invertibility).
    std::vector<std::uint64_t> rows(n);
    for (unsigned i = 0; i < n; ++i)
        rows[i] = 1ULL << i;
    for (unsigned k = 0; k < 6 * n; ++k) {
        unsigned i = rng.uniformInt(0, n - 1);
        unsigned j = rng.uniformInt(0, n - 1);
        if (i != j)
            rows[i] ^= rows[j];
    }
    Gf2Matrix m(n);
    for (auto r : rows)
        m.addRow(r);
    ASSERT_EQ(m.rank(), n);

    Gf2Solver solver(m);
    ASSERT_TRUE(solver.fullRank());
    for (int trial = 0; trial < 16; ++trial) {
        std::uint64_t rhs =
            rng.uniformInt(0, (n == 64 ? ~0ULL : (1ULL << n) - 1));
        auto x = solver.solve(rhs);
        ASSERT_TRUE(x.has_value());
        // Verify A x = rhs.
        for (unsigned i = 0; i < n; ++i)
            EXPECT_EQ(parity(*x, rows[i]), bit(rhs, i));
    }
}

/** Property: particular solution + null basis enumerates solutions. */
TEST_P(Gf2Random, NullBasisGeneratesSolutions)
{
    Rng rng(GetParam() * 1337 + 1);
    unsigned cols = 12;
    Gf2Matrix m(cols);
    for (unsigned i = 0; i < 6; ++i)
        m.addRow(rng.uniformInt(1, (1ULL << cols) - 1));

    Gf2Solver solver(m);
    std::uint64_t rhs = rng.uniformInt(0, 63);
    auto x0 = solver.solve(rhs);
    if (!x0.has_value())
        return; // inconsistent rhs: nothing to check
    for (auto n : solver.nullBasis()) {
        std::uint64_t x = *x0 ^ n;
        for (unsigned i = 0; i < m.numRows(); ++i)
            EXPECT_EQ(parity(x, m.row(i)), bit(rhs, i));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gf2Random, ::testing::Range(0u, 12u));

TEST(Bits, MaskRoundTrip)
{
    std::vector<unsigned> positions = {3, 7, 21, 33};
    auto mask = maskOfBits(positions);
    EXPECT_EQ(bitsOfMask(mask), positions);
}

TEST(Bits, Parity)
{
    EXPECT_EQ(parity(0b1011, 0b1010), 0u);
    EXPECT_EQ(parity(0b1011, 0b0011), 0u);
    EXPECT_EQ(parity(0b1011, 0b0001), 1u);
}

TEST(Bits, SetAndFlip)
{
    EXPECT_EQ(setBit(0, 5, 1), 32u);
    EXPECT_EQ(setBit(32, 5, 0), 0u);
    EXPECT_EQ(flipBit(32, 5), 0u);
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_FALSE(isPow2(0));
    EXPECT_EQ(log2Exact(1ULL << 33), 33u);
}
