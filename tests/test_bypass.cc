/**
 * @file
 * Mitigation-bypass search: frontier sanity, bit-identical results for
 * any worker count, and checkpoint/resume transparency.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "hammer/bypass_search.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

namespace
{

/** Small-but-real search sizing shared by the determinism tests. */
BypassParams
smallParams()
{
    BypassParams params;
    params.fuzz.numPatterns = 6;
    params.fuzz.locationsPerPattern = 1;
    params.seed = 42;
    return params;
}

HammerConfig
searchConfig()
{
    return rhoConfig(Arch::RaptorLake, true, 60000);
}

/** Field-wise exact equality of two reports. */
void
expectReportsEqual(const BypassReport &a, const BypassReport &b)
{
    ASSERT_EQ(a.configs.size(), b.configs.size());
    for (std::size_t i = 0; i < a.configs.size(); ++i) {
        const BypassConfigResult &x = a.configs[i];
        const BypassConfigResult &y = b.configs[i];
        EXPECT_EQ(x.name, y.name);
        EXPECT_EQ(x.fuzz.totalFlips, y.fuzz.totalFlips) << x.name;
        EXPECT_EQ(x.fuzz.bestPatternFlips, y.fuzz.bestPatternFlips)
            << x.name;
        EXPECT_EQ(x.fuzz.effectivePatterns, y.fuzz.effectivePatterns)
            << x.name;
        EXPECT_EQ(x.fuzz.dramAccesses, y.fuzz.dramAccesses) << x.name;
        EXPECT_EQ(x.fuzz.simTimeNs, y.fuzz.simTimeNs) << x.name;
        EXPECT_EQ(x.fuzz.bestPattern.has_value(),
                  y.fuzz.bestPattern.has_value())
            << x.name;
        if (x.fuzz.bestPattern && y.fuzz.bestPattern) {
            EXPECT_EQ(x.fuzz.bestPattern->id(), y.fuzz.bestPattern->id())
                << x.name;
        }
        EXPECT_EQ(x.acts, y.acts) << x.name;
        EXPECT_EQ(x.trrRefreshes, y.trrRefreshes) << x.name;
        EXPECT_EQ(x.rfmCommands, y.rfmCommands) << x.name;
        EXPECT_EQ(x.pracAlerts, y.pracAlerts) << x.name;
        EXPECT_EQ(x.bypassed, y.bypassed) << x.name;
    }
}

} // namespace

TEST(MitigationFrontier, NamesAreUniqueAndOrdered)
{
    auto frontier = mitigationFrontier();
    ASSERT_GE(frontier.size(), 5u);
    EXPECT_EQ(frontier.front().name, "trr-only");
    std::set<std::string> names;
    for (const auto &c : frontier) {
        EXPECT_TRUE(names.insert(c.name).second)
            << "duplicate config name " << c.name;
    }
    // The baseline runs no DDR5 mitigation; the endpoint runs both.
    EXPECT_FALSE(frontier.front().rfm.enabled);
    EXPECT_FALSE(frontier.front().prac.enabled);
    EXPECT_TRUE(frontier.back().rfm.enabled);
    EXPECT_TRUE(frontier.back().prac.enabled);
}

TEST(MitigationFrontier, CampaignKeySeparatesConfigs)
{
    // The checkpoint key must fingerprint the mitigation settings, or
    // a bypass search sharing one journal directory would replay one
    // configuration's results under another.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    HammerConfig cfg = searchConfig();
    std::set<std::uint64_t> keys;
    for (const MitigationConfig &mit : mitigationFrontier()) {
        SystemSpec spec(Arch::RaptorLake, d1, mit.trr, mit.rfm);
        spec.prac = mit.prac;
        EXPECT_TRUE(keys.insert(campaignKey(spec, cfg, 42)).second)
            << "config " << mit.name
            << " collides with a previous campaign key";
    }
}

TEST(BypassSearch, BitIdenticalAcrossJobCounts)
{
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    // Two frontier points exercise both engines without making the
    // determinism check slow; full-frontier behaviour is covered by
    // the sec06 bench.
    std::vector<MitigationConfig> frontier;
    for (const auto &c : mitigationFrontier()) {
        if (c.name == "trr-only" || c.name == "rfm-strict+prac")
            frontier.push_back(c);
    }
    ASSERT_EQ(frontier.size(), 2u);

    BypassParams one = smallParams();
    one.fuzz.jobs = 1;
    BypassParams eight = smallParams();
    eight.fuzz.jobs = 8;

    BypassReport a =
        bypassSearch(Arch::RaptorLake, d1, searchConfig(), frontier, one);
    BypassReport b = bypassSearch(Arch::RaptorLake, d1, searchConfig(),
                                  frontier, eight);
    expectReportsEqual(a, b);
    // The baseline must be doing real work for the comparison to mean
    // anything.
    EXPECT_GT(a.configs[0].acts, 0u);
}

TEST(BypassSearch, CheckpointResumeIsTransparent)
{
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    std::vector<MitigationConfig> frontier;
    for (const auto &c : mitigationFrontier()) {
        if (c.name == "trr-only" || c.name == "prac-512")
            frontier.push_back(c);
    }
    ASSERT_EQ(frontier.size(), 2u);

    std::string base = testing::TempDir() + "rho_bypass.journal";
    for (const auto &c : frontier)
        std::remove((base + "." + c.name).c_str());

    BypassParams params = smallParams();
    params.fuzz.jobs = 2;
    params.fuzz.checkpointPath = base;

    BypassReport cold = bypassSearch(Arch::RaptorLake, d1, searchConfig(),
                                     frontier, params);
    // One journal per frontier point, named after the config.
    for (const auto &c : frontier) {
        FILE *f = std::fopen((base + "." + c.name).c_str(), "rb");
        ASSERT_NE(f, nullptr) << "missing journal for " << c.name;
        std::fclose(f);
    }

    // Resume replays every task from the journals; a different job
    // count on the resumed run must not matter either.
    BypassParams resume = params;
    resume.fuzz.jobs = 8;
    BypassReport warm = bypassSearch(Arch::RaptorLake, d1, searchConfig(),
                                     frontier, resume);
    expectReportsEqual(cold, warm);

    // And a checkpoint-free run agrees with both: journaling is an
    // optimization, never an observable.
    BypassParams bare = smallParams();
    bare.fuzz.jobs = 2;
    BypassReport none = bypassSearch(Arch::RaptorLake, d1, searchConfig(),
                                     frontier, bare);
    expectReportsEqual(cold, none);

    for (const auto &c : frontier)
        std::remove((base + "." + c.name).c_str());
}

TEST(BypassSearch, EvolvedEngineBitIdenticalAndResumable)
{
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    std::vector<MitigationConfig> frontier;
    for (const auto &c : mitigationFrontier()) {
        if (c.name == "trr-only" || c.name == "rfm-strict+prac")
            frontier.push_back(c);
    }
    ASSERT_EQ(frontier.size(), 2u);

    BypassParams params;
    params.engine = BypassEngine::Evolved;
    params.evo.populationSize = 3;
    params.evo.generations = 2;
    params.evo.locationsPerPattern = 1;
    params.seed = 42;

    BypassParams one = params;
    one.evo.jobs = 1;
    BypassParams eight = params;
    eight.evo.jobs = 8;
    BypassReport a =
        bypassSearch(Arch::RaptorLake, d1, searchConfig(), frontier, one);
    BypassReport b = bypassSearch(Arch::RaptorLake, d1, searchConfig(),
                                  frontier, eight);
    expectReportsEqual(a, b);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        EXPECT_EQ(a.configs[i].trialsRun, params.evo.trialBudget());
        EXPECT_EQ(a.configs[i].generationBestFlips,
                  b.configs[i].generationBestFlips);
        EXPECT_EQ(a.configs[i].generationBestFlips.size(),
                  params.evo.generations);
    }

    // Per-config evolved journals (suffixed like the blind engine's,
    // but under the evofuzz kind) resume transparently.
    std::string base = testing::TempDir() + "rho_bypass_evo.journal";
    for (const auto &c : frontier)
        std::remove((base + "." + c.name).c_str());
    BypassParams ckpt = params;
    ckpt.evo.jobs = 2;
    ckpt.evo.checkpointPath = base;
    BypassReport cold = bypassSearch(Arch::RaptorLake, d1, searchConfig(),
                                     frontier, ckpt);
    expectReportsEqual(a, cold);
    for (const auto &c : frontier) {
        FILE *f = std::fopen((base + "." + c.name).c_str(), "rb");
        ASSERT_NE(f, nullptr) << "missing evolved journal for " << c.name;
        std::fclose(f);
    }
    BypassReport warm = bypassSearch(Arch::RaptorLake, d1, searchConfig(),
                                     frontier, ckpt);
    expectReportsEqual(cold, warm);
    for (const auto &c : frontier)
        std::remove((base + "." + c.name).c_str());
}

TEST(BypassSearch, TrrOnlyBypassedStrictDefensesHold)
{
    // The headline claim at test scale: fuzzing finds flip-producing
    // patterns against the DDR4-style sampler, while provisioned
    // PRAC yields none.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    std::vector<MitigationConfig> frontier;
    for (const auto &c : mitigationFrontier()) {
        if (c.name == "trr-only" || c.name == "prac-512"
            || c.name == "rfm-strict+prac")
            frontier.push_back(c);
    }
    BypassParams params = smallParams();
    params.fuzz.numPatterns = 8;

    MetricsRegistry metrics;
    BypassReport report = bypassSearch(Arch::RaptorLake, d1,
                                       searchConfig(), frontier, params,
                                       &metrics);
    ASSERT_EQ(report.configs.size(), 3u);
    EXPECT_TRUE(report.configs[0].bypassed) << "TRR evasion regressed";
    EXPECT_FALSE(report.configs[1].bypassed);
    EXPECT_FALSE(report.configs[2].bypassed);
    EXPECT_EQ(report.bypassedCount(), 1u);
    // PRAC engaged (alerts fired) rather than the hammer going idle.
    EXPECT_GT(report.configs[1].pracAlerts, 0u);
    // The per-config metrics mirror the report.
    EXPECT_EQ(metrics.value("bypass.trr-only.bypassed"), 1u);
    EXPECT_EQ(metrics.value("bypass.prac-512.flips"), 0u);
    EXPECT_GT(metrics.value("bypass.prac-512.prac_alerts"), 0u);
}
