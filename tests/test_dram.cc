/**
 * @file
 * Tests for the DRAM device model: row-buffer timing, refresh
 * machinery, the disturbance/flip mechanism, and the data path.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "dram/controller.hh"
#include "dram/dimm.hh"
#include "dram/dimm_profile.hh"
#include "mapping/mapping_presets.hh"

using namespace rho;

namespace
{

Dimm
makeDimm(const std::string &id = "S2", TrrConfig trr = TrrConfig{})
{
    const auto &prof = DimmProfile::byId(id);
    return Dimm(prof, DramTiming::ddr4(prof.freqMts), trr);
}

TrrConfig
noTrr()
{
    TrrConfig t;
    t.enabled = false;
    return t;
}

} // namespace

TEST(DimmProfile, Table2Inventory)
{
    EXPECT_EQ(DimmProfile::all().size(), 7u);
    const auto &s1 = DimmProfile::byId("S1");
    EXPECT_EQ(s1.geom.sizeGib(), 16u);
    EXPECT_EQ(s1.geom.ranks, 2u);
    EXPECT_EQ(s1.productionDate, "W35-2023");
    const auto &s2 = DimmProfile::byId("S2");
    EXPECT_EQ(s2.geom.sizeGib(), 8u);
    const auto &m1 = DimmProfile::byId("M1");
    EXPECT_EQ(m1.geom.sizeGib(), 32u);
    EXPECT_FALSE(m1.flippable);
    EXPECT_DEATH(DimmProfile::byId("nope"), "unknown DIMM");
}

TEST(DimmProfile, WeakCellsDeterministic)
{
    const auto &p = DimmProfile::byId("S4");
    auto a = p.weakCellsFor(3, 1000);
    auto b = p.weakCellsFor(3, 1000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].bitOffset, b[i].bitOffset);
        EXPECT_EQ(a[i].threshold, b[i].threshold);
        EXPECT_EQ(a[i].trueCell, b[i].trueCell);
    }
    // Different rows get different fields (overwhelmingly likely).
    auto c = p.weakCellsFor(3, 1001);
    bool differs = a.size() != c.size();
    for (std::size_t i = 0; !differs && i < a.size() && i < c.size(); ++i)
        differs = a[i].bitOffset != c[i].bitOffset;
    EXPECT_TRUE(differs || a.empty());
}

TEST(DimmProfile, DensityOrdering)
{
    // S4 must be the most weak-cell-dense DIMM (Table 6 ordering).
    auto density = [](const std::string &id) {
        const auto &p = DimmProfile::byId(id);
        std::uint64_t cells = 0;
        for (std::uint64_t row = 0; row < 4000; ++row)
            cells += p.weakCellsFor(0, row).size();
        return cells;
    };
    auto s4 = density("S4"), s3 = density("S3"), s1 = density("S1");
    auto s5 = density("S5"), m1 = density("M1");
    EXPECT_GT(s4, s3);
    EXPECT_GT(s3, s1);
    EXPECT_GT(s1, s5);
    EXPECT_EQ(m1, 0u);
}

TEST(DramTiming, Presets)
{
    auto t = DramTiming::ddr4(3200);
    EXPECT_NEAR(t.tCK, 0.625, 1e-9);
    EXPECT_GT(t.tRC, t.tRAS);
    EXPECT_DEATH(DramTiming::ddr4(1866), "unsupported");
}

TEST(Dimm, RowBufferTiming)
{
    Dimm d = makeDimm();
    DramAddr a{0, 100, 0};
    DramAddr same_row{0, 100, 512};
    DramAddr other_row{0, 200, 0};
    DramAddr other_bank{5, 300, 0};

    Ns now = 1000.0;
    auto first = d.access(a, now);
    EXPECT_TRUE(first.act);
    now += first.latency;

    auto hit = d.access(same_row, now);
    EXPECT_TRUE(hit.rowHit);
    EXPECT_FALSE(hit.act);
    EXPECT_LT(hit.latency, first.latency);
    now += hit.latency;

    auto conflict = d.access(other_row, now);
    EXPECT_TRUE(conflict.act);
    EXPECT_FALSE(conflict.rowHit);
    EXPECT_GT(conflict.latency, hit.latency + 10.0);
    now += conflict.latency;

    // Different bank: independent row buffer, no conflict with bank 0.
    auto db_open = d.access(other_bank, now);
    now += db_open.latency;
    auto db_hit = d.access(other_bank, now);
    EXPECT_TRUE(db_hit.rowHit);
}

TEST(Dimm, SameBankActsRespectTrc)
{
    Dimm d = makeDimm();
    const auto &t = d.timing();
    // Alternate two rows in one bank back-to-back: each access is a
    // conflict and ACT spacing must be at least tRC.
    Ns now = 0.0;
    Ns prev_latency = 0.0;
    for (int i = 0; i < 10; ++i) {
        auto r = d.access({0, std::uint64_t(100 + (i & 1)), 0}, now);
        EXPECT_TRUE(r.act);
        prev_latency = r.latency;
        now += 1.0; // issue immediately: the bank must stretch time
    }
    EXPECT_GE(prev_latency, t.tRC); // backlog accumulated
}

TEST(Dimm, DisturbanceFlipsVictim)
{
    // Synthetic profile with one dense weak row region and TRR off.
    DimmProfile p = DimmProfile::byId("S4");
    p.weakCellsPerRow = 4.0;
    p.hcLogMean = std::log(2000.0);
    p.hcLogSigma = 0.1;
    p.hcMin = 1500;
    Dimm d(p, DramTiming::ddr4(2666), noTrr());

    std::uint64_t agg1 = 5000, victim = 5001, agg2 = 5002;
    d.fillRow(0, victim, 0x55, 0.0);

    Ns now = 0.0;
    for (int i = 0; i < 4000; ++i) {
        // Alternate the sandwiching aggressors (double-sided).
        auto r1 = d.access({0, agg1, 0}, now);
        now += r1.latency;
        auto r2 = d.access({0, agg2, 0}, now);
        now += r2.latency;
    }
    auto diffs = d.diffRow(0, victim, 0x55, now);
    EXPECT_GT(diffs.size(), 0u);
    // The flip log also covers the outer victims (agg +/- 1, 2).
    EXPECT_GE(d.flipLog().size(), diffs.size());
}

TEST(Dimm, VictimActivationRestoresCharge)
{
    DimmProfile p = DimmProfile::byId("S4");
    p.weakCellsPerRow = 4.0;
    p.hcLogMean = std::log(2000.0);
    p.hcLogSigma = 0.1;
    p.hcMin = 1500;
    Dimm d(p, DramTiming::ddr4(2666), noTrr());

    std::uint64_t agg1 = 5000, victim = 5001, agg2 = 5002;
    d.fillRow(0, victim, 0x55, 0.0);
    Ns now = 0.0;
    for (int i = 0; i < 4000; ++i) {
        now += d.access({0, agg1, 0}, now).latency;
        now += d.access({0, agg2, 0}, now).latency;
        // Periodically touch the victim itself: every activation of a
        // row restores its cells, so no flips can accumulate.
        if (i % 500 == 0)
            now += d.access({0, victim, 0}, now).latency;
    }
    EXPECT_EQ(d.diffRow(0, victim, 0x55, now).size(), 0u);
}

TEST(Dimm, AutoRefreshResetsDisturbance)
{
    DimmProfile p = DimmProfile::byId("S4");
    p.weakCellsPerRow = 4.0;
    p.hcLogMean = std::log(3000.0);
    p.hcLogSigma = 0.1;
    p.hcMin = 2500;
    Dimm d(p, DramTiming::ddr4(2666), noTrr());
    const auto &t = d.timing();

    std::uint64_t agg1 = 7000, victim = 7001, agg2 = 7002;
    d.fillRow(0, victim, 0x55, 0.0);
    // Hammer slowly: fewer than hcMin activations land between any
    // two auto-refreshes of the victim, so nothing may flip.
    Ns now = 0.0;
    Ns step = t.tREFW / 1000.0; // 1000 ACT pairs per retention window
    for (int i = 0; i < 12000; ++i) {
        d.access({0, agg1, 0}, now);
        d.access({0, agg2, 0}, now + 60.0);
        now += step;
    }
    EXPECT_EQ(d.diffRow(0, victim, 0x55, now).size(), 0u);
}

TEST(Dimm, M1NeverFlips)
{
    Dimm d = makeDimm("M1", noTrr());
    std::uint64_t agg1 = 9000, agg2 = 9002;
    d.fillRow(0, 9001, 0xAA, 0.0);
    Ns now = 0.0;
    for (int i = 0; i < 30000; ++i) {
        now += d.access({0, agg1, 0}, now).latency;
        now += d.access({0, agg2, 0}, now).latency;
    }
    EXPECT_EQ(d.flipLog().size(), 0u);
}

TEST(Dimm, DataPathReadWrite)
{
    Dimm d = makeDimm();
    std::uint8_t buf[4] = {0xde, 0xad, 0xbe, 0xef};
    d.writeBytes({2, 42, 100}, buf, 4, 0.0);
    EXPECT_EQ(d.readByte({2, 42, 100}, 1.0), 0xde);
    EXPECT_EQ(d.readByte({2, 42, 103}, 1.0), 0xef);
    EXPECT_EQ(d.readByte({2, 42, 99}, 1.0), 0x00); // untouched default
    EXPECT_DEATH(d.writeBytes({2, 42, 8190}, buf, 4, 0.0),
                 "crosses row boundary");
}

TEST(Dimm, FillRowAndDiff)
{
    Dimm d = makeDimm();
    d.fillRow(1, 10, 0x55, 0.0);
    EXPECT_EQ(d.readByte({1, 10, 1234}, 1.0), 0x55);
    EXPECT_TRUE(d.diffRow(1, 10, 0x55, 1.0).empty());
    // Manually corrupting one byte is detected with exact position.
    std::uint8_t v = 0x54;
    d.writeBytes({1, 10, 100}, &v, 1, 2.0);
    auto diffs = d.diffRow(1, 10, 0x55, 3.0);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].bitOffset, 100u * 8);
    EXPECT_FALSE(diffs[0].toOne);
}

TEST(Dimm, OutOfRangePanics)
{
    Dimm d = makeDimm();
    EXPECT_DEATH(d.access({99, 0, 0}, 0.0), "bank");
    EXPECT_DEATH(d.access({0, 1ULL << 40, 0}, 0.0), "row");
}

TEST(MemoryController, MappingGeometryMustMatch)
{
    const auto &prof = DimmProfile::byId("S1"); // 16 GiB, 2 ranks
    EXPECT_DEATH(MemoryController(mappingFor(Arch::CometLake, 8, 1), prof,
                                  DramTiming::ddr4(2933), TrrConfig{}),
                 "banks");
}

TEST(MemoryController, PhysAddrDataPath)
{
    const auto &prof = DimmProfile::byId("S2");
    MemoryController mc(mappingFor(Arch::RaptorLake, 8, 1), prof,
                        DramTiming::ddr4(3200), TrrConfig{});
    PhysAddr pa = 0x12345678;
    mc.writeByte(pa, 0x7e, 0.0);
    EXPECT_EQ(mc.readByte(pa, 1.0), 0x7e);
    auto r = mc.access(pa, 2.0);
    EXPECT_GT(r.latency, 0.0);
}
