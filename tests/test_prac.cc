/**
 * @file
 * PRAC / Alert Back-Off property suite (paper section 6).
 *
 * The centrepiece is the provisioning safety invariant: with the alert
 * threshold T below the DIMM's minimum hammer count divided by the
 * worst-case neighbour amplification, *no* fuzzed non-uniform pattern
 * can flip a bit — and the causal trace proves the stronger statement
 * that no victim row ever accumulates more than the analytic
 * disturbance bound between refreshes:
 *
 *     bound(T) = 2 * T * 1.0 + 2 * T * w_half = 2.16 * T
 *
 * (two distance-1 aggressors at weight 1.0 plus two distance-2 at the
 * half-double weight 0.08; each aggressor contributes at most T ACTs
 * between services because its own threshold crossing refreshes the
 * victim's neighbourhood).
 */

#include <gtest/gtest.h>

#include <map>

#include "dram/dimm.hh"
#include "dram/prac.hh"
#include "hammer/hammer_session.hh"
#include "hammer/tuned_configs.hh"
#include "trace/golden.hh"

using namespace rho;

namespace
{

// Dimm::halfDoubleWeight (private); the analytic bound mirrors it.
constexpr double kHalfDoubleWeight = 0.08;

constexpr double
disturbBound(std::uint32_t threshold)
{
    return 2.0 * threshold * 1.0
        + 2.0 * threshold * kHalfDoubleWeight;
}

} // namespace

// ---------------------------------------------------------------------
// PracEngine unit behaviour
// ---------------------------------------------------------------------

TEST(PracEngine, AlertsAtExactThreshold)
{
    PracConfig cfg;
    cfg.enabled = true;
    cfg.threshold = 4;
    cfg.aboSlots = 1;
    PracEngine prac(cfg, 1);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(prac.observeAct(0, 9).protect.empty());
    PracAlertAction a = prac.observeAct(0, 9);
    ASSERT_EQ(a.protect.size(), 1u);
    EXPECT_EQ(a.protect[0].row, 9u);
    EXPECT_EQ(a.peak, 4u);
    EXPECT_EQ(prac.alerts(), 1u);
    // The serviced counter restarts from zero.
    EXPECT_EQ(prac.rowCount(0, 9), 0u);
    EXPECT_TRUE(prac.observeAct(0, 9).protect.empty());
}

TEST(PracEngine, AboServicesHottestRowsAboveHalfThreshold)
{
    PracConfig cfg;
    cfg.enabled = true;
    cfg.threshold = 8;
    cfg.aboSlots = 3;
    PracEngine prac(cfg, 1);
    auto heat = [&](std::uint64_t row, unsigned acts) {
        for (unsigned i = 0; i < acts; ++i)
            prac.observeAct(0, row);
    };
    heat(10, 7); // >= threshold/2: eligible, hottest
    heat(20, 5); // >= threshold/2: eligible
    heat(30, 3); // below half threshold: not serviced
    heat(40, 8); // crosses -> alert
    // The crossing fired on row 40's 8th ACT; its action carried the
    // two hottest eligible rows.
    EXPECT_EQ(prac.alerts(), 1u);
    EXPECT_EQ(prac.rowCount(0, 10), 0u); // serviced
    EXPECT_EQ(prac.rowCount(0, 20), 0u); // serviced
    EXPECT_EQ(prac.rowCount(0, 30), 3u); // untouched
    EXPECT_EQ(prac.rowCount(0, 40), 0u);
}

TEST(PracEngine, AboTieBreaksOnLowerRow)
{
    PracConfig cfg;
    cfg.enabled = true;
    cfg.threshold = 6;
    cfg.aboSlots = 2; // crossing row + one extra slot
    PracEngine prac(cfg, 1);
    for (int i = 0; i < 3; ++i) {
        prac.observeAct(0, 50); // equal heat
        prac.observeAct(0, 44); // equal heat, lower row
    }
    for (int i = 0; i < 6; ++i)
        prac.observeAct(0, 70);
    // One extra slot, two equally hot candidates: lower row wins.
    EXPECT_EQ(prac.rowCount(0, 44), 0u);
    EXPECT_EQ(prac.rowCount(0, 50), 3u);
}

TEST(PracEngine, CountsPerBankIndependently)
{
    PracConfig cfg;
    cfg.enabled = true;
    cfg.threshold = 8;
    PracEngine prac(cfg, 4);
    for (int i = 0; i < 28; ++i)
        EXPECT_TRUE(prac.observeAct(i % 4, 123).protect.empty());
    EXPECT_EQ(prac.alerts(), 0u);
    EXPECT_EQ(prac.rowCount(0, 123), 7u);
}

TEST(PracEngine, DisabledIsTransparent)
{
    PracEngine prac(PracConfig{}, 1);
    for (int i = 0; i < 5000; ++i)
        EXPECT_TRUE(prac.observeAct(0, 1).protect.empty());
    EXPECT_EQ(prac.alerts(), 0u);
    EXPECT_EQ(prac.rowCount(0, 1), 0u); // disabled engine tracks nothing
}

TEST(PracEngine, RejectsDegenerateConfig)
{
    PracConfig zero_thr;
    zero_thr.enabled = true;
    zero_thr.threshold = 0;
    EXPECT_DEATH(PracEngine(zero_thr, 1), "threshold");
    PracConfig zero_slots;
    zero_slots.enabled = true;
    zero_slots.aboSlots = 0;
    EXPECT_DEATH(PracEngine(zero_slots, 1), "aboSlots");
}

TEST(PracEngine, ResetDropsCountersAndAlerts)
{
    PracConfig cfg;
    cfg.enabled = true;
    cfg.threshold = 4;
    PracEngine prac(cfg, 1);
    for (int i = 0; i < 5; ++i)
        prac.observeAct(0, 3);
    EXPECT_EQ(prac.alerts(), 1u);
    prac.reset();
    EXPECT_EQ(prac.alerts(), 0u);
    EXPECT_EQ(prac.rowCount(0, 3), 0u);
}

// ---------------------------------------------------------------------
// Device-level PRAC semantics
// ---------------------------------------------------------------------

TEST(PracDimm, CountersPersistAcrossRefreshWindows)
{
    // The defining property vs sampler-based TRR: PRAC counters live
    // in the rows, so regular REF cannot launder an aggressor's
    // history. Hammer slowly — far below the threshold per refresh
    // interval — and the alert still fires once the cumulative count
    // crosses.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    TrrConfig no_trr;
    no_trr.enabled = false;
    PracConfig prac;
    prac.enabled = true;
    prac.threshold = 64;
    Dimm d(d1, DramTiming::ddr5(4800), no_trr, RfmConfig{}, prac);

    Ns now = 0.0;
    const Ns trefi = d.timing().tREFI;
    for (int i = 0; i < 64; ++i) {
        now += d.access({0, 7000, 0}, now).latency;
        now += d.access({0, 7004, 0}, now).latency; // close the row
        now += 2.0 * trefi; // several REF ticks between each ACT pair
    }
    EXPECT_GE(d.pracAlertCount(), 1u);
    EXPECT_GT(d.aboStallNs(), 0.0);
}

TEST(PracDimm, AlertProtectsVictimsBeforeFlip)
{
    // Uniform double-sided hammering on the DDR5 sample: with the
    // threshold provisioned under hcMin / 2.16, the victim can never
    // reach its flip threshold.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    TrrConfig no_trr;
    no_trr.enabled = false;
    PracConfig prac;
    prac.enabled = true;
    prac.threshold = 512;
    ASSERT_LT(disturbBound(prac.threshold), d1.hcMin);

    Dimm with_prac(d1, DramTiming::ddr5(4800), no_trr, RfmConfig{}, prac);
    Dimm without(d1, DramTiming::ddr5(4800), no_trr);

    auto hammer = [](Dimm &d) {
        d.fillRow(0, 5001, 0x55, 0.0);
        Ns now = 0.0;
        for (int i = 0; i < 20000; ++i) {
            now += d.access({0, 5000, 0}, now).latency;
            now += d.access({0, 5002, 0}, now).latency;
        }
        return d.diffRow(0, 5001, 0x55, now).size();
    };

    EXPECT_GT(hammer(without), 0u);
    EXPECT_EQ(hammer(with_prac), 0u);
    EXPECT_GT(with_prac.pracAlertCount(), 10u);
}

// ---------------------------------------------------------------------
// The provisioning safety invariant, fuzzed
// ---------------------------------------------------------------------

TEST(PracProperty, SafetyInvariantHoldsForFuzzedPatterns)
{
    // >= 200 random non-uniform patterns across >= 3 seeds, each
    // hammered on a fresh PRAC-protected DDR5 system with every other
    // mitigation off. Checked per pattern:
    //   1. zero bit flips;
    //   2. trace replay: no row's accumulated disturbance ever
    //      exceeds bound(T) — the analytic ceiling — which is itself
    //      below the DIMM's minimum flip threshold.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    PracConfig prac;
    prac.enabled = true;
    prac.threshold = 512;
    const double bound = disturbBound(prac.threshold);
    ASSERT_LT(bound, static_cast<double>(d1.hcMin));

    TrrConfig no_trr;
    no_trr.enabled = false;

    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, 40000);
    PatternParams pparams; // stock fuzzer generation knobs

    TraceConfig tcfg;
    tcfg.enabled = true;
    tcfg.categories = CatDram | CatDisturb | CatTrr | CatFlip;
    tcfg.capacity = std::size_t{1} << 20;

    std::uint64_t total_alerts = 0;
    double max_accum = 0.0;
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        Rng pattern_rng(seed);
        for (unsigned p = 0; p < 70; ++p) {
            HammerPattern pattern =
                HammerPattern::randomNonUniform(pattern_rng, pparams);
            MemorySystem sys(Arch::RaptorLake, d1, no_trr,
                             seed * 1000 + p, RfmConfig{}, prac);
            HammerSession session(sys, seed * 1000 + p);
            Tracer tracer(tcfg);
            sys.attachTracer(&tracer);
            HammerLocation loc = session.randomLocation(pattern, cfg);
            HammerOutcome out = session.hammer(pattern, loc, cfg);
            sys.attachTracer(nullptr);

            ASSERT_EQ(out.flips, 0u)
                << "pattern " << p << " seed " << seed << " flipped";
            ASSERT_EQ(tracer.dropped(), 0u)
                << "trace truncated; invariant replay incomplete";
            total_alerts += sys.dimm().pracAlertCount();

            // Causal replay: accumulate Disturb, zero on any reset.
            std::map<std::pair<std::uint32_t, std::uint64_t>, double>
                accum;
            for (const TraceEvent &e : tracer.events()) {
                auto key = std::make_pair(e.a, e.b);
                if (e.kind == EventKind::Disturb) {
                    double &v = accum[key];
                    v += traceReal(e.c);
                    max_accum = std::max(max_accum, v);
                    ASSERT_LE(v, bound + 1e-6)
                        << "row " << e.b << " exceeded the disturb "
                        << "bound at t=" << e.when;
                } else if (e.kind == EventKind::DisturbReset
                           || e.kind == EventKind::FlipSuppressed) {
                    accum[key] = 0.0;
                }
            }
        }
    }
    // The invariant must not hold vacuously: PRAC had to work for it.
    EXPECT_GT(total_alerts, 0u);
    // And the hammer genuinely pressed against the ceiling.
    EXPECT_GT(max_accum, 0.5 * bound);
}

// ---------------------------------------------------------------------
// RAA metamorphic check: increments are exactly the ACT stream
// ---------------------------------------------------------------------

TEST(RfmProperty, RaaIncrementsMatchActStreamPerBank)
{
    // Metamorphic relation: however a pattern schedules its accesses,
    // the RFM engine's per-bank increment accounting must equal the
    // per-bank DramAct counts observed in the trace — RAA bookkeeping
    // observes every ACT exactly once.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    RfmConfig rfm;
    rfm.enabled = true;
    MemorySystem sys(Arch::RaptorLake, d1, TrrConfig{}, 97, rfm);
    HammerSession session(sys, 97);

    TraceConfig tcfg;
    tcfg.enabled = true;
    tcfg.categories = CatDram;
    tcfg.capacity = std::size_t{1} << 20;
    Tracer tracer(tcfg);
    sys.attachTracer(&tracer);

    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, 60000);
    cfg.numBanks = 4; // spread the pattern over several banks
    Rng rng(5);
    HammerPattern pattern = HammerPattern::randomNonUniform(rng);
    HammerLocation loc = session.randomLocation(pattern, cfg);
    session.hammer(pattern, loc, cfg);
    sys.attachTracer(nullptr);
    ASSERT_EQ(tracer.dropped(), 0u);

    std::map<std::uint32_t, std::uint64_t> acts_per_bank;
    std::uint64_t total_acts = 0;
    for (const TraceEvent &e : tracer.events()) {
        if (e.kind == EventKind::DramAct) {
            ++acts_per_bank[e.a];
            ++total_acts;
        }
    }
    ASSERT_GT(total_acts, 0u);
    EXPECT_GT(acts_per_bank.size(), 1u); // multi-bank really happened

    const RfmEngine &eng = sys.dimm().rfmEngine();
    for (const auto &[bank, count] : acts_per_bank)
        EXPECT_EQ(eng.raaIncrements(bank), count) << "bank " << bank;
    EXPECT_EQ(eng.totalRaaIncrements(), total_acts);
    EXPECT_EQ(eng.totalRaaIncrements(), sys.dimm().totalActs());
}

// ---------------------------------------------------------------------
// Dimm::reset() parity with the DDR5 mitigations enabled
// ---------------------------------------------------------------------

TEST(PracDimm, ResetDeviceMatchesFreshDeviceWithRfmAndPrac)
{
    // A reset device must replay exactly like a new one when RFM RAA
    // counters, PRAC row counters and the stall accounting are all in
    // play — byte-identical event stream included.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    TrrConfig trr;
    trr.matchThreshold = 1u << 30; // exercise sampler rng, never fire
    RfmConfig rfm;
    rfm.enabled = true;
    rfm.raaimt = 64;
    PracConfig prac;
    prac.enabled = true;
    prac.threshold = 256;

    auto script = [](Dimm &d, std::vector<TraceEvent> &out) {
        Tracer tr(TraceConfig{
            true, CatDram | CatDisturb | CatTrr | CatFlip,
            std::size_t{1} << 21});
        d.setTracer(&tr);
        Ns now = 0.0;
        d.fillRow(0, 5001, 0x55, now);
        for (int i = 0; i < 3000; ++i) {
            now += d.access({0, 5000, 0}, now).latency;
            now += d.access({0, 5002, 0}, now).latency;
        }
        d.setTracer(nullptr);
        EXPECT_EQ(tr.dropped(), 0u);
        out = tr.events();
    };

    std::vector<TraceEvent> fresh_tr, reused_tr;
    Dimm fresh(d1, DramTiming::ddr5(4800), trr, rfm, prac);
    script(fresh, fresh_tr);

    Dimm reused(d1, DramTiming::ddr5(4800), trr, rfm, prac);
    script(reused, reused_tr); // dirty RAA, PRAC counters, stalls
    reused.reset();
    EXPECT_EQ(reused.totalActs(), 0u);
    EXPECT_EQ(reused.rfmCommandCount(), 0u);
    EXPECT_EQ(reused.pracAlertCount(), 0u);
    EXPECT_EQ(reused.rfmStallNs(), 0.0);
    EXPECT_EQ(reused.aboStallNs(), 0.0);
    script(reused, reused_tr);

    EXPECT_EQ(goldenSerialize(fresh_tr), goldenSerialize(reused_tr));
    EXPECT_EQ(fresh.totalActs(), reused.totalActs());
    EXPECT_EQ(fresh.rfmCommandCount(), reused.rfmCommandCount());
    EXPECT_EQ(fresh.pracAlertCount(), reused.pracAlertCount());
    EXPECT_EQ(fresh.rfmStallNs(), reused.rfmStallNs());
    EXPECT_EQ(fresh.aboStallNs(), reused.aboStallNs());

    // The scenario must exercise all three new machinery paths.
    EXPECT_GT(fresh.rfmCommandCount(), 0u);
    EXPECT_GT(fresh.pracAlertCount(), 0u);
    std::size_t alerts = 0, abo = 0, stalls = 0;
    for (const TraceEvent &e : fresh_tr) {
        alerts += e.kind == EventKind::PracAlert;
        abo += e.kind == EventKind::AboRefresh;
        stalls += e.kind == EventKind::MitigationStall;
    }
    EXPECT_GT(alerts, 0u);
    EXPECT_GT(abo, 0u);
    EXPECT_GT(stalls, 0u);
}
