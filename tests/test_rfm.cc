/**
 * @file
 * Tests for the DDR5 Refresh Management model (paper section 6):
 * deterministic RAA accounting cannot be evaded by non-uniform
 * patterns, so no flips survive on DDR5 — the paper's observation.
 * Includes the regression pins for the REF-decrement fix: a previous
 * revision never subtracted from RAA on REF and over-fired RFMs.
 */

#include <gtest/gtest.h>

#include "dram/dimm.hh"
#include "dram/rfm.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

TEST(RfmEngine, FiresEveryRaaimtActs)
{
    RfmConfig cfg;
    cfg.enabled = true;
    cfg.raaimt = 8;
    RfmEngine rfm(cfg, 2);
    unsigned fired = 0;
    for (int i = 0; i < 64; ++i) {
        RfmAction a = rfm.observeAct(0, 100 + (i % 3));
        if (a.fired) {
            EXPECT_FALSE(a.protect.empty());
            EXPECT_FALSE(a.urgent); // never hit the RAAMMT cap
            ++fired;
        }
    }
    EXPECT_EQ(fired, 8u);
    EXPECT_EQ(rfm.rfmCommands(), 8u);
    EXPECT_EQ(rfm.urgentRfmCommands(), 0u);
}

TEST(RfmEngine, ProtectsMostRecentRows)
{
    RfmConfig cfg;
    cfg.enabled = true;
    cfg.raaimt = 4;
    cfg.victimsPerRfm = 2;
    RfmEngine rfm(cfg, 1);
    rfm.observeAct(0, 10);
    rfm.observeAct(0, 20);
    rfm.observeAct(0, 30);
    RfmAction a = rfm.observeAct(0, 40);
    ASSERT_TRUE(a.fired);
    ASSERT_EQ(a.protect.size(), 2u);
    EXPECT_EQ(a.protect[0].row, 40u); // most recent first
    EXPECT_EQ(a.protect[1].row, 30u);
}

TEST(RfmEngine, PerBankCounters)
{
    RfmConfig cfg;
    cfg.enabled = true;
    cfg.raaimt = 8;
    RfmEngine rfm(cfg, 4);
    // Spread ACTs over 4 banks: no single bank reaches the threshold.
    for (int i = 0; i < 28; ++i)
        EXPECT_FALSE(rfm.observeAct(i % 4, 5).fired);
}

TEST(RfmEngine, DisabledIsTransparent)
{
    RfmEngine rfm(RfmConfig{}, 1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(rfm.observeAct(0, 1).fired);
    EXPECT_EQ(rfm.rfmCommands(), 0u);
}

TEST(RfmEngine, RefDecrementExactCadence)
{
    // Regression pin for the REF-decrement fix. raaimt=8, REF
    // subtracts 3, workload repeats [5 ACTs, 1 REF]. By hand:
    //   iter 1: raa 0->5, REF -> 2
    //   iter 2: raa 2->7, REF -> 4
    //   iter 3: raa 4->8 fires mid-iter (-8), ends 1, REF -> 0
    // — a period of 3 iterations with exactly one RFM. The buggy model
    // (no decrement) fired floor(150/8) = 18 times instead of 10.
    RfmConfig cfg;
    cfg.enabled = true;
    cfg.raaimt = 8;
    cfg.refDecrement = 3;
    RfmEngine rfm(cfg, 1);
    for (int iter = 0; iter < 30; ++iter) {
        for (int a = 0; a < 5; ++a)
            rfm.observeAct(0, 100 + a);
        rfm.onRef();
    }
    EXPECT_EQ(rfm.rfmCommands(), 10u);
    EXPECT_EQ(rfm.raaIncrements(0), 150u);
}

TEST(RfmEngine, RefAbsorbsSlowActivity)
{
    // An ACT rate at or below the REF decrement rate never owes an
    // RFM: regular refresh already covers that disturbance budget.
    RfmConfig cfg;
    cfg.enabled = true;
    cfg.raaimt = 8;
    cfg.refDecrement = 4;
    RfmEngine rfm(cfg, 1);
    for (int iter = 0; iter < 100; ++iter) {
        for (int a = 0; a < 4; ++a)
            rfm.observeAct(0, 200 + a);
        rfm.onRef();
    }
    EXPECT_EQ(rfm.rfmCommands(), 0u);
}

TEST(RfmEngine, RefDecrementSaturatesAtZero)
{
    RfmConfig cfg;
    cfg.enabled = true;
    cfg.raaimt = 8;
    RfmEngine rfm(cfg, 1);
    rfm.observeAct(0, 1);
    EXPECT_EQ(rfm.raa(0), 1u);
    rfm.onRef(); // default decrement raaimt/2 = 4 > 1: clamps to 0
    EXPECT_EQ(rfm.raa(0), 0u);
    rfm.onRef();
    EXPECT_EQ(rfm.raa(0), 0u);
}

TEST(RfmEngine, RaammtCapForcesUrgentRfm)
{
    // A lazy controller (large serviceDelayActs) cannot defer past the
    // maximum threshold: the cap forces an urgent RFM.
    RfmConfig cfg;
    cfg.enabled = true;
    cfg.raaimt = 8;
    cfg.serviceDelayActs = 1000;
    cfg.raammt = 16;
    RfmEngine rfm(cfg, 1);
    unsigned fired_at = 0;
    for (unsigned i = 1; i <= 16; ++i) {
        RfmAction a = rfm.observeAct(0, 300);
        if (a.fired) {
            EXPECT_TRUE(a.urgent);
            fired_at = i;
        }
    }
    EXPECT_EQ(fired_at, 16u); // exactly at the cap, not before
    EXPECT_EQ(rfm.urgentRfmCommands(), 1u);
    // One RFM retires RAAIMT worth of activity; the rest carries over.
    EXPECT_EQ(rfm.raa(0), 8u);
}

TEST(RfmEngine, ServiceDelayDefersWithinCap)
{
    RfmConfig cfg;
    cfg.enabled = true;
    cfg.raaimt = 8;
    cfg.serviceDelayActs = 4;
    RfmEngine rfm(cfg, 1);
    unsigned fired_at = 0;
    for (unsigned i = 1; i <= 12; ++i) {
        if (rfm.observeAct(0, 7).fired)
            fired_at = i;
    }
    EXPECT_EQ(fired_at, 12u); // raaimt + serviceDelayActs
    EXPECT_EQ(rfm.urgentRfmCommands(), 0u);
}

TEST(RfmEngine, ForLevelOperatingPoints)
{
    EXPECT_FALSE(RfmConfig::forLevel(RfmLevel::Off).enabled);

    RfmConfig relaxed = RfmConfig::forLevel(RfmLevel::Relaxed);
    RfmConfig def = RfmConfig::forLevel(RfmLevel::Default);
    RfmConfig strict = RfmConfig::forLevel(RfmLevel::Strict);
    EXPECT_TRUE(relaxed.enabled);
    EXPECT_TRUE(def.enabled);
    EXPECT_TRUE(strict.enabled);
    // Stricter levels demand management more often and protect more.
    EXPECT_GT(relaxed.raaimt, def.raaimt);
    EXPECT_GT(def.raaimt, strict.raaimt);
    EXPECT_GE(strict.victimsPerRfm, def.victimsPerRfm);
    // JEDEC-typical derived defaults.
    EXPECT_EQ(def.raammtEffective(), 6 * def.raaimt);
    EXPECT_EQ(def.refDecrementEffective(), def.raaimt / 2);

    EXPECT_STREQ(rfmLevelName(RfmLevel::Strict), "strict");
}

TEST(Ddr5, TimingPreset)
{
    auto t = DramTiming::ddr5(4800);
    EXPECT_NEAR(t.tCK, 2000.0 / 4800, 1e-9);
    EXPECT_NEAR(t.tREFI, 3900.0, 1e-9); // doubled refresh rate
    EXPECT_GT(t.tRFM, 0.0);
    EXPECT_GT(t.tABO, 0.0);
    EXPECT_DEATH(DramTiming::ddr5(3200), "unsupported");
}

TEST(Ddr5, ProfileSample)
{
    const auto &d1 = DimmProfile::ddr5Sample();
    EXPECT_EQ(d1.id, "D1");
    EXPECT_EQ(d1.geom.sizeGib(), 16u);
    EXPECT_TRUE(d1.flippable); // cells exist; RFM protects them
}

TEST(Ddr5, RfmStopsNonUniformHammering)
{
    // The same double-sided pressure that flips a DDR4 part is fully
    // absorbed by RFM on the DDR5 sample, even with TRR disabled.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    TrrConfig no_trr;
    no_trr.enabled = false;
    RfmConfig rfm;
    rfm.enabled = true;

    Dimm with_rfm(d1, DramTiming::ddr5(4800), no_trr, rfm);
    Dimm without(d1, DramTiming::ddr5(4800), no_trr);

    auto hammer = [](Dimm &d) {
        d.fillRow(0, 5001, 0x55, 0.0);
        Ns now = 0.0;
        for (int i = 0; i < 20000; ++i) {
            now += d.access({0, 5000, 0}, now).latency;
            now += d.access({0, 5002, 0}, now).latency;
        }
        return d.diffRow(0, 5001, 0x55, now).size();
    };

    EXPECT_GT(hammer(without), 0u);
    EXPECT_EQ(hammer(with_rfm), 0u);
    EXPECT_GT(with_rfm.rfmCommandCount(), 100u);
    // Each RFM blocked the bank for tRFM; the stall is accounted.
    EXPECT_GT(with_rfm.rfmStallNs(), 0.0);
}

TEST(Ddr5, RefDecrementReducesDeviceRfmRate)
{
    // Device-level regression for the REF-decrement fix: the same
    // hammer pressure owes strictly fewer RFMs when regular refresh
    // subtracts from the rolling count than when it barely does.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    TrrConfig no_trr;
    no_trr.enabled = false;

    auto run = [&](std::uint32_t ref_dec) {
        RfmConfig rfm;
        rfm.enabled = true;
        rfm.refDecrement = ref_dec;
        Dimm d(d1, DramTiming::ddr5(4800), no_trr, rfm);
        Ns now = 0.0;
        for (int i = 0; i < 20000; ++i) {
            now += d.access({0, 5000, 0}, now).latency;
            now += d.access({0, 5002, 0}, now).latency;
        }
        return d.rfmCommandCount();
    };

    std::uint64_t barely = run(1);
    std::uint64_t typical = run(16); // the raaimt/2 JEDEC default
    EXPECT_GT(barely, typical);
    EXPECT_GT(typical, 100u);
}

TEST(Ddr5, RhoHammerFindsNoEffectivePattern)
{
    // Paper section 6: "we have not observed any effective pattern on
    // our setups with DDR5 DIMMs". Full rhoHammer stack vs RFM.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    TrrConfig trr; // stock TRR as well
    // Build a memory system manually around the DDR5 device: reuse
    // the Raptor Lake mapping (16 GiB dual-rank geometry matches).
    MemorySystem sys(Arch::RaptorLake, d1, trr, 77);
    // Swap in an RFM-protected DIMM is not exposed via MemorySystem;
    // hammer the Dimm-level API directly with the session instead:
    HammerSession session(sys, 77);
    PatternFuzzer fuzzer(session, 78);
    FuzzParams params;
    params.numPatterns = 6;
    params.locationsPerPattern = 2;
    auto base = fuzzer.run(rhoConfig(Arch::RaptorLake, true, 300000),
                           params);
    // Without RFM the DDR5 cells are flippable...
    EXPECT_GT(base.totalFlips, 0u);

    // ...and the dedicated Dimm-level check above shows RFM absorbing
    // the same pressure. (MemorySystem-level RFM plumbing follows in
    // Ddr5.MemorySystemWithRfm below.)
}

TEST(Ddr5, MemorySystemWithRfm)
{
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    MemorySystem sys(Arch::RaptorLake, d1, TrrConfig{}, 79,
                     [] {
                         RfmConfig r;
                         r.enabled = true;
                         return r;
                     }());
    HammerSession session(sys, 79);
    PatternFuzzer fuzzer(session, 80);
    FuzzParams params;
    params.numPatterns = 6;
    params.locationsPerPattern = 2;
    auto res = fuzzer.run(rhoConfig(Arch::RaptorLake, true, 300000),
                          params);
    EXPECT_EQ(res.totalFlips, 0u);
    EXPECT_GT(sys.dimm().rfmCommandCount(), 1000u);
}
