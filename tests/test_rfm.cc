/**
 * @file
 * Tests for the DDR5 Refresh Management model (paper section 6):
 * deterministic RAA accounting cannot be evaded by non-uniform
 * patterns, so no flips survive on DDR5 — the paper's observation.
 */

#include <gtest/gtest.h>

#include "dram/dimm.hh"
#include "dram/rfm.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

TEST(RfmEngine, FiresEveryRaaimtActs)
{
    RfmConfig cfg;
    cfg.enabled = true;
    cfg.raaimt = 8;
    RfmEngine rfm(cfg, 2);
    unsigned fired = 0;
    for (int i = 0; i < 64; ++i) {
        auto targets = rfm.observeAct(0, 100 + (i % 3));
        if (!targets.empty())
            ++fired;
    }
    EXPECT_EQ(fired, 8u);
    EXPECT_EQ(rfm.rfmCommands(), 8u);
}

TEST(RfmEngine, ProtectsMostRecentRows)
{
    RfmConfig cfg;
    cfg.enabled = true;
    cfg.raaimt = 4;
    cfg.victimsPerRfm = 2;
    RfmEngine rfm(cfg, 1);
    rfm.observeAct(0, 10);
    rfm.observeAct(0, 20);
    rfm.observeAct(0, 30);
    auto targets = rfm.observeAct(0, 40);
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0].row, 40u); // most recent first
    EXPECT_EQ(targets[1].row, 30u);
}

TEST(RfmEngine, PerBankCounters)
{
    RfmConfig cfg;
    cfg.enabled = true;
    cfg.raaimt = 8;
    RfmEngine rfm(cfg, 4);
    // Spread ACTs over 4 banks: no single bank reaches the threshold.
    for (int i = 0; i < 28; ++i)
        EXPECT_TRUE(rfm.observeAct(i % 4, 5).empty());
}

TEST(RfmEngine, DisabledIsTransparent)
{
    RfmEngine rfm(RfmConfig{}, 1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(rfm.observeAct(0, 1).empty());
    EXPECT_EQ(rfm.rfmCommands(), 0u);
}

TEST(Ddr5, TimingPreset)
{
    auto t = DramTiming::ddr5(4800);
    EXPECT_NEAR(t.tCK, 2000.0 / 4800, 1e-9);
    EXPECT_NEAR(t.tREFI, 3900.0, 1e-9); // doubled refresh rate
    EXPECT_DEATH(DramTiming::ddr5(3200), "unsupported");
}

TEST(Ddr5, ProfileSample)
{
    const auto &d1 = DimmProfile::ddr5Sample();
    EXPECT_EQ(d1.id, "D1");
    EXPECT_EQ(d1.geom.sizeGib(), 16u);
    EXPECT_TRUE(d1.flippable); // cells exist; RFM protects them
}

TEST(Ddr5, RfmStopsNonUniformHammering)
{
    // The same double-sided pressure that flips a DDR4 part is fully
    // absorbed by RFM on the DDR5 sample, even with TRR disabled.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    TrrConfig no_trr;
    no_trr.enabled = false;
    RfmConfig rfm;
    rfm.enabled = true;

    Dimm with_rfm(d1, DramTiming::ddr5(4800), no_trr, rfm);
    Dimm without(d1, DramTiming::ddr5(4800), no_trr);

    auto hammer = [](Dimm &d) {
        d.fillRow(0, 5001, 0x55, 0.0);
        Ns now = 0.0;
        for (int i = 0; i < 20000; ++i) {
            now += d.access({0, 5000, 0}, now).latency;
            now += d.access({0, 5002, 0}, now).latency;
        }
        return d.diffRow(0, 5001, 0x55, now).size();
    };

    EXPECT_GT(hammer(without), 0u);
    EXPECT_EQ(hammer(with_rfm), 0u);
    EXPECT_GT(with_rfm.rfmCommandCount(), 100u);
}

TEST(Ddr5, RhoHammerFindsNoEffectivePattern)
{
    // Paper section 6: "we have not observed any effective pattern on
    // our setups with DDR5 DIMMs". Full rhoHammer stack vs RFM.
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    TrrConfig trr; // stock TRR as well
    // Build a memory system manually around the DDR5 device: reuse
    // the Raptor Lake mapping (16 GiB dual-rank geometry matches).
    MemorySystem sys(Arch::RaptorLake, d1, trr, 77);
    // Swap in an RFM-protected DIMM is not exposed via MemorySystem;
    // hammer the Dimm-level API directly with the session instead:
    HammerSession session(sys, 77);
    PatternFuzzer fuzzer(session, 78);
    FuzzParams params;
    params.numPatterns = 6;
    params.locationsPerPattern = 2;
    auto base = fuzzer.run(rhoConfig(Arch::RaptorLake, true, 300000),
                           params);
    // Without RFM the DDR5 cells are flippable...
    EXPECT_GT(base.totalFlips, 0u);

    // ...and the dedicated Dimm-level check above shows RFM absorbing
    // the same pressure. (MemorySystem-level RFM plumbing follows in
    // Ddr5.MemorySystemWithRfm below.)
}

TEST(Ddr5, MemorySystemWithRfm)
{
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    MemorySystem sys(Arch::RaptorLake, d1, TrrConfig{}, 79,
                     [] {
                         RfmConfig r;
                         r.enabled = true;
                         return r;
                     }());
    HammerSession session(sys, 79);
    PatternFuzzer fuzzer(session, 80);
    FuzzParams params;
    params.numPatterns = 6;
    params.locationsPerPattern = 2;
    auto res = fuzzer.run(rhoConfig(Arch::RaptorLake, true, 300000),
                          params);
    EXPECT_EQ(res.totalFlips, 0u);
    EXPECT_GT(sys.dimm().rfmCommandCount(), 1000u);
}
