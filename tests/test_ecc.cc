/**
 * @file
 * On-die ECC tests: exhaustive metamorphic pinning of the SEC decoder
 * (single-bit always corrected; the documented double-error
 * miscorrection set {i,j} with (i+1)^(j+1) <= n; zero-syndrome
 * aliasing), plus device-level differential tests proving that the
 * ECC-on Dimm's controller-visible view is exactly the pure decoder
 * applied per codeword to the ECC-off Dimm's raw error field — and
 * that ECC changes nothing below the read path (identical raw flip
 * logs, identical campaign identity only when configured identically).
 */

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "dram/dimm.hh"
#include "dram/ecc.hh"
#include "dram/timing.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"
#include "trace/tracer.hh"

using namespace rho;

namespace
{

TrrConfig
noTrr()
{
    TrrConfig t;
    t.enabled = false;
    return t;
}

/** Dense weak-cell field so codewords collect multi-bit errors. */
DimmProfile
denseProfile()
{
    DimmProfile p = DimmProfile::byId("S4");
    p.id = "dense";
    p.weakCellsPerRow = 40.0;
    p.hcLogMean = std::log(1500.0);
    p.hcLogSigma = 0.2;
    p.hcMin = 800;
    return p;
}

} // namespace

// ---------------------------------------------------------------------
// Pure decoder: exhaustive metamorphic pinning
// ---------------------------------------------------------------------

TEST(SecDecoder, EmptyErrorSetIsClean)
{
    SecOnDieEcc ecc(16);
    EXPECT_EQ(ecc.dataBits(), 128u);
    EXPECT_EQ(ecc.decide({}).action, EccAction::Clean);
}

TEST(SecDecoder, EverySingleBitErrorIsCorrected)
{
    SecOnDieEcc ecc(16);
    for (std::uint32_t i = 0; i < ecc.dataBits(); ++i) {
        EccDecision d = ecc.decide({i});
        EXPECT_EQ(d.action, EccAction::Corrected) << "bit " << i;
        EXPECT_EQ(d.targetBit, i);
    }
}

TEST(SecDecoder, DoubleErrorsMiscorrectExactlyTheAliasingPairs)
{
    // The documented miscorrection set: {i, j} is miscorrected iff
    // (i+1) ^ (j+1) <= n, toggling bit ((i+1)^(j+1)) - 1; every other
    // pair has a check-bit syndrome and is merely detected. Exhaustive
    // over all n*(n-1)/2 pairs of the default 16-byte codeword.
    SecOnDieEcc ecc(16);
    const std::uint32_t n = ecc.dataBits();
    unsigned miscorrected = 0, detected = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = i + 1; j < n; ++j) {
            std::uint32_t s = (i + 1) ^ (j + 1);
            ASSERT_NE(s, 0u); // distinct bits never alias syndrome 0
            EccDecision d = ecc.decide({i, j});
            if (s <= n) {
                EXPECT_EQ(d.action, EccAction::Miscorrected)
                    << i << "," << j;
                EXPECT_EQ(d.targetBit, s - 1);
                // The decoder corrupts a third, previously-correct bit.
                EXPECT_NE(d.targetBit, i);
                EXPECT_NE(d.targetBit, j);
                ++miscorrected;
            } else {
                EXPECT_EQ(d.action, EccAction::Detected) << i << "," << j;
                ++detected;
            }
        }
    }
    EXPECT_GT(miscorrected, 0u);
    EXPECT_GT(detected, 0u);
    EXPECT_EQ(miscorrected + detected, n * (n - 1) / 2);
}

TEST(SecDecoder, MiscorrectionPlusTargetAliasesSyndromeZero)
{
    // Metamorphic closure: if {i, j} miscorrects onto bit t, then the
    // triple {i, j, t} XORs to syndrome 0 and must pass Undetected.
    SecOnDieEcc ecc(16);
    const std::uint32_t n = ecc.dataBits();
    unsigned triples = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = i + 1; j < n; ++j) {
            EccDecision d = ecc.decide({i, j});
            if (d.action != EccAction::Miscorrected)
                continue;
            EccDecision u = ecc.decide({i, j, d.targetBit});
            EXPECT_EQ(u.action, EccAction::Undetected)
                << i << "," << j << "," << d.targetBit;
            ++triples;
        }
    }
    EXPECT_GT(triples, 0u);
}

TEST(SecDecoder, DecisionIsOrderInvariant)
{
    SecOnDieEcc ecc(16);
    std::vector<std::uint32_t> e = {5, 90, 17, 64};
    EccDecision ref = ecc.decide(e);
    std::sort(e.begin(), e.end());
    do {
        EccDecision d = ecc.decide(e);
        EXPECT_EQ(d.action, ref.action);
        EXPECT_EQ(d.targetBit, ref.targetBit);
    } while (std::next_permutation(e.begin(), e.end()));
}

// ---------------------------------------------------------------------
// Device level: the ECC-on view is the decoder applied to the raw field
// ---------------------------------------------------------------------

namespace
{

/** Double-sided hammer on a fixed neighbourhood; returns the victim
 *  rows whose raw state the test inspects. */
std::vector<std::uint64_t>
hammerNeighbourhood(Dimm &d, std::uint8_t fill)
{
    const std::uint64_t agg1 = 5000, agg2 = 5002, agg3 = 5004;
    std::vector<std::uint64_t> victims;
    for (std::uint64_t r = 4998; r <= 5006; ++r) {
        d.fillRow(0, r, fill, 0.0);
        if (r != agg1 && r != agg2 && r != agg3)
            victims.push_back(r);
    }
    Ns now = 1.0;
    for (int i = 0; i < 3000; ++i) {
        now += d.access({0, agg1, 0}, now).latency;
        now += d.access({0, agg2, 0}, now).latency;
        now += d.access({0, agg3, 0}, now).latency;
    }
    return victims;
}

} // namespace

TEST(DimmEcc, VisibleFlipsAreTheDecodedRawField)
{
    const std::uint8_t fill = 0xA5;
    const DimmProfile prof = denseProfile();
    EccConfig ecc_on;
    ecc_on.enabled = true;

    Dimm raw(prof, DramTiming::ddr4(2666), noTrr());
    Dimm cooked(prof, DramTiming::ddr4(2666), noTrr(), RfmConfig{},
                PracConfig{}, ecc_on);
    auto victims = hammerNeighbourhood(raw, fill);
    auto victims2 = hammerNeighbourhood(cooked, fill);
    ASSERT_EQ(victims, victims2);

    // ECC lives on the read path only: the raw cell arrays, and hence
    // the committed flip logs, are identical.
    ASSERT_EQ(raw.flipLog().size(), cooked.flipLog().size());
    for (std::size_t i = 0; i < raw.flipLog().size(); ++i) {
        EXPECT_EQ(raw.flipLog()[i].row, cooked.flipLog()[i].row);
        EXPECT_EQ(raw.flipLog()[i].bitOffset,
                  cooked.flipLog()[i].bitOffset);
    }

    SecOnDieEcc decoder(ecc_on.codewordBytes);
    const std::uint32_t cw_bits = decoder.dataBits();
    Ns t = 1e9;
    unsigned multi_bit_codewords = 0, corrected_codewords = 0;
    for (std::uint64_t row : victims) {
        auto raw_diffs = raw.diffRow(0, row, fill, t);
        auto cooked_diffs = cooked.diffRow(0, row, fill, t);

        // Group the raw error field by codeword and run the pure
        // decoder: visible = E symmetric-difference {targetBit} when
        // the decoder acts, E otherwise.
        std::map<std::uint32_t, std::vector<std::uint32_t>> by_cw;
        for (const FlipRecord &f : raw_diffs)
            by_cw[f.bitOffset / cw_bits].push_back(f.bitOffset % cw_bits);
        std::set<std::uint32_t> predicted;
        for (auto &[cw, errs] : by_cw) {
            if (errs.size() > 1)
                ++multi_bit_codewords;
            std::set<std::uint32_t> visible(errs.begin(), errs.end());
            EccDecision d = decoder.decide(errs);
            if (d.action == EccAction::Corrected
                || d.action == EccAction::Miscorrected) {
                if (d.action == EccAction::Corrected)
                    ++corrected_codewords;
                if (!visible.erase(d.targetBit))
                    visible.insert(d.targetBit);
            }
            for (std::uint32_t b : visible)
                predicted.insert(cw * cw_bits + b);
        }
        std::set<std::uint32_t> got;
        for (const FlipRecord &f : cooked_diffs)
            got.insert(f.bitOffset);
        EXPECT_EQ(got, predicted) << "row " << row;
    }
    // The scenario must exercise both decoder regimes or it proves
    // nothing: plenty of corrected singles and at least one multi-bit
    // codeword reaching the miscorrection/detection paths.
    EXPECT_GT(corrected_codewords, 0u);
    EXPECT_GT(multi_bit_codewords, 0u);
}

TEST(DimmEcc, CorrectionEventsLandOnTheReadPath)
{
    const std::uint8_t fill = 0xA5;
    EccConfig ecc_on;
    ecc_on.enabled = true;
    Dimm d(denseProfile(), DramTiming::ddr4(2666), noTrr(), RfmConfig{},
           PracConfig{}, ecc_on);
    Tracer tracer(TraceConfig{true, CatFlip, std::size_t{1} << 20});
    d.setTracer(&tracer);
    auto victims = hammerNeighbourhood(d, fill);
    ASSERT_GT(d.flipLog().size(), 0u);
    Ns t = 1e9;
    std::uint64_t visible = 0;
    for (std::uint64_t row : victims)
        visible += d.diffRow(0, row, fill, t).size();
    d.setTracer(nullptr);
    unsigned corrected = 0, miscorrected = 0;
    for (const TraceEvent &e : tracer.events()) {
        if (e.kind == EventKind::EccCorrected)
            ++corrected;
        else if (e.kind == EventKind::EccMiscorrect)
            ++miscorrected;
    }
    EXPECT_GT(corrected, 0u);
    // Corrections remove raw flips from view; anything the decoder
    // corrupted shows up as extra visible bits.
    EXPECT_EQ(visible + corrected,
              d.flipLog().size() + miscorrected);
}

TEST(DimmEcc, SingleBitEscapeIsHealedOnByteRead)
{
    const std::uint8_t fill = 0xA5;
    EccConfig ecc_on;
    ecc_on.enabled = true;
    const DimmProfile prof = denseProfile();
    Dimm raw(prof, DramTiming::ddr4(2666), noTrr());
    Dimm cooked(prof, DramTiming::ddr4(2666), noTrr(), RfmConfig{},
                PracConfig{}, ecc_on);
    auto victims = hammerNeighbourhood(raw, fill);
    hammerNeighbourhood(cooked, fill);

    SecOnDieEcc decoder(ecc_on.codewordBytes);
    const std::uint32_t cw_bits = decoder.dataBits();
    Ns t = 1e9;
    unsigned healed_reads = 0;
    for (std::uint64_t row : victims) {
        std::map<std::uint32_t, std::vector<std::uint32_t>> by_cw;
        for (const FlipRecord &f : raw.diffRow(0, row, fill, t))
            by_cw[f.bitOffset / cw_bits].push_back(f.bitOffset % cw_bits);
        for (auto &[cw, errs] : by_cw) {
            if (errs.size() != 1)
                continue;
            // Single-bit escape: raw read differs from the fill,
            // ECC-corrected read returns it.
            std::uint32_t bit = cw * cw_bits + errs[0];
            DramAddr da{0, row, bit / 8};
            EXPECT_NE(raw.readByte(da, t), fill);
            EXPECT_EQ(cooked.readByte(da, t), fill);
            ++healed_reads;
        }
    }
    EXPECT_GT(healed_reads, 0u);
}

// ---------------------------------------------------------------------
// Campaign identity
// ---------------------------------------------------------------------

TEST(EccCampaign, EccAndRefreshBoostChangeCampaignIdentity)
{
    SystemSpec spec(Arch::RaptorLake, DimmProfile::byId("S2"));
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, 2000);
    std::uint64_t base = campaignKey(spec, cfg, 42);

    SystemSpec with_ecc = spec;
    with_ecc.ecc.enabled = true;
    EXPECT_NE(campaignKey(with_ecc, cfg, 42), base);

    SystemSpec wider = with_ecc;
    wider.ecc.codewordBytes = 32;
    EXPECT_NE(campaignKey(wider, cfg, 42),
              campaignKey(with_ecc, cfg, 42));

    SystemSpec boosted = spec;
    boosted.refreshBoost = 4.0;
    EXPECT_NE(campaignKey(boosted, cfg, 42), base);

    // Engine selection stays outside campaign identity.
    SystemSpec ref_engines = spec;
    ref_engines.referenceRowStore = true;
    ref_engines.cpuModel = CpuModelKind::Reference;
    EXPECT_EQ(campaignKey(ref_engines, cfg, 42), base);
}

TEST(EccCampaign, RefreshBoostSuppressesFlipsAtEqualBudget)
{
    auto flipsWithBoost = [](double boost) {
        MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                         TrrConfig{}, 9, RfmConfig{}, PracConfig{},
                         EccConfig{}, boost);
        HammerSession session(sys, 9);
        HammerConfig cfg = rhoConfig(Arch::RaptorLake, false, 120000);
        Rng rng(9);
        HammerPattern p = HammerPattern::randomNonUniform(rng);
        HammerOutcome out =
            session.hammer(p, session.randomLocation(p, cfg), cfg);
        return out.flips;
    };
    std::uint64_t stock = flipsWithBoost(1.0);
    std::uint64_t boosted = flipsWithBoost(8.0);
    EXPECT_GT(stock, 0u);
    EXPECT_LT(boosted, stock);
}
