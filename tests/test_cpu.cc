/**
 * @file
 * Tests for the speculative CPU timing model: asynchronous prefetch
 * semantics, the flush/prefetch disorder hazard (paper Fig. 7), fence
 * semantics, NOP pseudo-barriers, addressing-mode effects and the
 * per-architecture parameter trends.
 */

#include <gtest/gtest.h>

#include "cpu/arch_params.hh"
#include "cpu/cache_model.hh"
#include "cpu/kernel.hh"
#include "cpu/sim_cpu.hh"

using namespace rho;

namespace
{

/** Fixed-latency DRAM stub recording accesses. */
class StubMemory : public MemoryBackend
{
  public:
    explicit StubMemory(Ns latency = 60.0) : lat(latency) {}

    Ns
    dramAccess(PhysAddr pa, Ns now) override
    {
        accesses.push_back({pa, now});
        return lat;
    }

    std::vector<std::pair<PhysAddr, Ns>> accesses;
    Ns lat;
};

/** hammer+flush loop over `lines` lines with knobs. */
HammerKernel
makeLoop(unsigned lines, OpKind hammer, unsigned nops = 0,
         AddressingMode mode = AddressingMode::CppIndexed,
         OpKind barrier = OpKind::NopRun /*sentinel: none*/,
         bool obfuscate = false)
{
    HammerKernel k(mode);
    for (unsigned i = 0; i < lines; ++i) {
        PhysAddr pa = 0x100000 + i * 0x10000;
        if (obfuscate)
            k.push({OpKind::BranchObf, 0, 1});
        if (nops)
            k.pushNops(nops);
        k.pushMem(hammer, pa);
        k.pushMem(OpKind::ClFlushOpt, pa);
        if (barrier != OpKind::NopRun)
            k.push({barrier, 0, 1});
    }
    k.push({OpKind::BranchLoop, 0, 1});
    return k;
}

} // namespace

TEST(Kernel, InternsLines)
{
    HammerKernel k;
    auto a = k.lineIdFor(0x1000);
    auto b = k.lineIdFor(0x1020); // same 64-byte line
    auto c = k.lineIdFor(0x1040);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(k.numLines(), 2u);
    EXPECT_EQ(k.addrOf(a), 0x1000u);
}

TEST(Kernel, CountsMemReads)
{
    auto k = makeLoop(4, OpKind::PrefetchNta);
    EXPECT_EQ(k.memReadsPerPeriod(), 4u);
    EXPECT_DEATH(k.pushMem(OpKind::Lfence, 0), "not a memory op");
}

TEST(CacheModel, FlushPendingWindowHits)
{
    CacheModel c(1);
    EXPECT_FALSE(c.presentOrInFlight(0, 0.0));
    c.recordFill(0, 100.0);
    // In flight (MSHR) and after fill: present.
    EXPECT_TRUE(c.presentOrInFlight(0, 50.0));
    EXPECT_TRUE(c.presentOrInFlight(0, 150.0));
    // Flush issued at 150, latency 30: completes at max(150,100)+30.
    Ns done = c.recordFlush(0, 150.0, 30.0);
    EXPECT_DOUBLE_EQ(done, 180.0);
    // The Fig. 7 hazard window: accesses before completion still hit.
    EXPECT_TRUE(c.presentOrInFlight(0, 179.0));
    EXPECT_FALSE(c.presentOrInFlight(0, 180.0));
}

TEST(CacheModel, FlushWaitsForInFlightFill)
{
    CacheModel c(1);
    c.recordFill(0, 500.0);
    Ns done = c.recordFlush(0, 100.0, 30.0);
    EXPECT_DOUBLE_EQ(done, 530.0); // after the fill lands
}

TEST(CacheModel, FlushOfAbsentLineIsNoOp)
{
    CacheModel c(1);
    EXPECT_LT(c.recordFlush(0, 10.0, 30.0), 0.0);
}

TEST(ArchParams, GenerationalTrends)
{
    const auto &comet = ArchParams::forArch(Arch::CometLake);
    const auto &raptor = ArchParams::forArch(Arch::RaptorLake);
    // Newer cores: bigger windows, wider front end, more of the
    // dependency chain speculated away, worse flush jitter.
    EXPECT_GT(raptor.robSize, comet.robSize);
    EXPECT_GE(raptor.fetchWidth, comet.fetchWidth);
    EXPECT_LT(raptor.depChainBreakFactor, comet.depChainBreakFactor);
    EXPECT_GT(raptor.flushJitterProb, comet.flushJitterProb);
    EXPECT_GT(raptor.freqGhz, comet.freqGhz);
}

TEST(SimCpu, PrefetchFasterThanLoads)
{
    // Fig. 6: the asynchronous prefetch completes the same access
    // budget substantially faster than loads.
    for (Arch arch : allArchs) {
        StubMemory mem;
        SimCpu cpu(ArchParams::forArch(arch), 1);
        auto loads = cpu.run(makeLoop(16, OpKind::Load), mem, 20000);
        auto prefs =
            cpu.run(makeLoop(16, OpKind::PrefetchNta), mem, 20000);
        EXPECT_LT(prefs.timeNs, loads.timeNs) << archName(arch);
    }
}

TEST(SimCpu, AllPrefetchHintsSimilar)
{
    StubMemory mem;
    SimCpu cpu(ArchParams::forArch(Arch::CometLake), 1);
    std::vector<double> times;
    for (OpKind k : {OpKind::PrefetchT0, OpKind::PrefetchT1,
                     OpKind::PrefetchT2, OpKind::PrefetchNta}) {
        times.push_back(cpu.run(makeLoop(16, k), mem, 20000).timeNs);
    }
    for (double t : times) {
        EXPECT_LT(t, times[0] * 1.25);
        EXPECT_GT(t, times[0] * 0.75);
    }
}

TEST(SimCpu, DisorderDropsOnTightSameLineReuse)
{
    // A tight 2-line loop re-touches each line long before its flush
    // completes: most accesses must be served from the stale line.
    StubMemory mem;
    SimCpu cpu(ArchParams::forArch(Arch::RaptorLake), 1);
    auto ctr = cpu.run(makeLoop(2, OpKind::PrefetchNta, 0,
                                AddressingMode::JitImmediate),
                       mem, 20000);
    EXPECT_LT(ctr.missRate(), 0.30);
    EXPECT_GT(ctr.cacheHits, ctr.dramAccesses);
}

TEST(SimCpu, NopPseudoBarriersRestoreOrder)
{
    // Fig. 10 mechanism: NOP padding spaces accesses beyond the flush
    // latency, restoring the miss rate; and it costs time.
    StubMemory mem;
    SimCpu cpu(ArchParams::forArch(Arch::RaptorLake), 1);
    auto none = cpu.run(makeLoop(8, OpKind::PrefetchNta, 0), mem, 20000);
    auto padded =
        cpu.run(makeLoop(8, OpKind::PrefetchNta, 3000), mem, 20000);
    EXPECT_GT(padded.missRate(), none.missRate() + 0.2);
    EXPECT_GT(padded.timeNs, none.timeNs);
    EXPECT_EQ(padded.nops, 3000ull * 20000); // counted per access
}

TEST(SimCpu, CppIndexedMoreOrderedThanJit)
{
    // Fig. 8: the loop-carried dependency of the C++ primitive spaces
    // accesses; JIT immediates allow maximal reorder.
    StubMemory mem;
    SimCpu cpu(ArchParams::forArch(Arch::CometLake), 1);
    auto cpp = cpu.run(makeLoop(8, OpKind::PrefetchNta, 0,
                                AddressingMode::CppIndexed),
                       mem, 20000);
    auto jit = cpu.run(makeLoop(8, OpKind::PrefetchNta, 0,
                                AddressingMode::JitImmediate),
                       mem, 20000);
    EXPECT_GT(cpp.missRate(), jit.missRate());
}

TEST(SimCpu, NewerArchsMoreDisordered)
{
    StubMemory mem;
    auto miss = [&](Arch a) {
        SimCpu cpu(ArchParams::forArch(a), 1);
        return cpu.run(makeLoop(8, OpKind::PrefetchNta, 40), mem, 30000)
            .missRate();
    };
    EXPECT_GT(miss(Arch::CometLake), miss(Arch::RaptorLake));
}

TEST(SimCpu, SerializingBarriersAreSlowAndOrdered)
{
    // Table 3: CPUID and MFENCE order the stream at enormous cost.
    StubMemory mem;
    SimCpu cpu(ArchParams::forArch(Arch::RaptorLake), 1);
    auto none = cpu.run(makeLoop(8, OpKind::PrefetchNta), mem, 8000);
    auto cpuid = cpu.run(makeLoop(8, OpKind::PrefetchNta, 0,
                                  AddressingMode::CppIndexed,
                                  OpKind::Cpuid),
                         mem, 8000);
    auto mfence = cpu.run(makeLoop(8, OpKind::PrefetchNta, 0,
                                   AddressingMode::CppIndexed,
                                   OpKind::Mfence),
                          mem, 8000);
    EXPECT_GT(cpuid.timeNs, 8.0 * none.timeNs);
    EXPECT_GT(mfence.timeNs, 4.0 * none.timeNs);
    EXPECT_GT(cpuid.missRate(), 0.95);
}

TEST(SimCpu, LfenceOrdersViaAddressChainOnlyInCppMode)
{
    // Table 3's subtle point: LFENCE helps prefetch hammering only
    // through the indexed primitive's address loads; with immediates
    // (AsmJit) it does almost nothing.
    StubMemory mem;
    SimCpu cpu(ArchParams::forArch(Arch::RaptorLake), 1);
    auto cpp = cpu.run(makeLoop(8, OpKind::PrefetchNta, 0,
                                AddressingMode::CppIndexed,
                                OpKind::Lfence),
                       mem, 20000);
    auto jit = cpu.run(makeLoop(8, OpKind::PrefetchNta, 0,
                                AddressingMode::JitImmediate,
                                OpKind::Lfence),
                       mem, 20000);
    EXPECT_GT(cpp.missRate(), jit.missRate() + 0.1);
}

TEST(SimCpu, LfenceChargesArchCostOnNoWaitPath)
{
    // Regression for the Lfence fallback charging a hardcoded 2
    // cycles: with immediate (JIT) addressing and a pure prefetch
    // stream there are no older loads, so every LFENCE takes the
    // no-wait path — which must cost the architecture's fence issue
    // latency (lfenceIssueCyc), not a constant. Pin the exact
    // per-arch numbers that feed the Table 3 LFENCE columns: with K
    // extra fences per access the loop time grows by exactly
    // budget * K * lfenceIssueCyc cycles (the single prefetched line
    // stays cached after the first fill, so the loop is purely
    // dispatch-bound and the delta is linear).
    StubMemory mem;
    auto timed = [&](Arch a, unsigned fences, std::uint64_t budget) {
        HammerKernel k(AddressingMode::JitImmediate);
        for (unsigned i = 0; i < fences; ++i)
            k.push({OpKind::Lfence, 0, 1});
        k.pushMem(OpKind::PrefetchNta, 0x100000);
        SimCpu cpu(ArchParams::forArch(a), 1);
        return cpu.run(k, mem, budget).timeNs;
    };
    const std::uint64_t budget = 1000;
    for (Arch a : {Arch::CometLake, Arch::RocketLake, Arch::AlderLake,
                   Arch::RaptorLake}) {
        const ArchParams &p = ArchParams::forArch(a);
        double delta = timed(a, 16, budget) - timed(a, 8, budget);
        double expect = budget * 8.0 * p.lfenceIssueCyc / p.freqGhz;
        EXPECT_NEAR(delta, expect, 1e-6 * expect) << p.name;
        // The no-wait fence never pays the drain+restart cost.
        EXPECT_LT(p.lfenceIssueCyc, p.lfenceCyc) << p.name;
    }
    // The issue cost is per-arch (newer cores pay more), which the
    // old hardcoded fallback erased.
    EXPECT_LT(ArchParams::forArch(Arch::CometLake).lfenceIssueCyc,
              ArchParams::forArch(Arch::RaptorLake).lfenceIssueCyc);
}

TEST(SimCpu, LoadsThrottledByIssueOccupancy)
{
    // Section 4.5: the minimum pacing at which each primitive becomes
    // fully ordered differs: prefetches reach ~full miss rate at a
    // fraction of the per-access spacing loads need, so the ordered
    // prefetch activation rate is far higher.
    StubMemory mem;
    SimCpu cpu(ArchParams::forArch(Arch::CometLake), 1);
    auto loads = cpu.run(makeLoop(16, OpKind::Load, 3000), mem, 10000);
    auto prefs =
        cpu.run(makeLoop(16, OpKind::PrefetchNta, 600), mem, 10000);
    ASSERT_GT(loads.missRate(), 0.85);
    ASSERT_GT(prefs.missRate(), 0.85);
    EXPECT_GT(prefs.dramAccessRate(), 2.0 * loads.dramAccessRate());
}

TEST(SimCpu, ObfuscatedBranchesMispredict)
{
    StubMemory mem;
    SimCpu cpu(ArchParams::forArch(Arch::AlderLake), 1);
    auto ctr = cpu.run(makeLoop(8, OpKind::PrefetchNta, 0,
                                AddressingMode::CppIndexed,
                                OpKind::NopRun, /*obfuscate=*/true),
                       mem, 20000);
    ASSERT_GT(ctr.branches, 1000u);
    double rate = double(ctr.branchMispredicts) / ctr.branches;
    EXPECT_GT(rate, 0.4); // rdrand-driven: predictor cannot learn
}

TEST(SimCpu, LoopBranchesPredictWell)
{
    StubMemory mem;
    SimCpu cpu(ArchParams::forArch(Arch::AlderLake), 1);
    auto ctr = cpu.run(makeLoop(8, OpKind::PrefetchNta), mem, 20000);
    ASSERT_GT(ctr.branches, 100u);
    double rate = double(ctr.branchMispredicts) / ctr.branches;
    EXPECT_LT(rate, 0.05);
}

TEST(SimCpu, EmptyKernelIsFatal)
{
    StubMemory mem;
    SimCpu cpu(ArchParams::forArch(Arch::CometLake), 1);
    HammerKernel k;
    EXPECT_DEATH(cpu.run(k, mem, 100), "no memory reads");
}

TEST(SimCpu, BackToBackRunsAreDeterministic)
{
    // Regression for resetRunState(): a second run() on the same core
    // must behave exactly like the first (all per-run state — queues,
    // fill buffers, clocks, predictor, counters — re-zeroed), and like
    // a run on a freshly constructed core. The kernel is rng-free
    // (no ClFlushOpt: every arch has flushJitterProb > 0, so flushes
    // draw; no BranchObf) so determinism isolates state reset from
    // stream position.
    for (CpuModelKind kind :
         {CpuModelKind::Blocked, CpuModelKind::Reference}) {
        HammerKernel k(AddressingMode::CppIndexed);
        for (unsigned i = 0; i < 4; ++i) {
            k.pushNops(50);
            k.pushMem(OpKind::PrefetchNta, 0x100000 + i * 0x10000);
            k.pushMem(OpKind::Load, 0x200000 + i * 0x10000);
            k.push({OpKind::Lfence, 0, 1});
        }
        k.push({OpKind::BranchLoop, 0, 1});

        StubMemory mem1, mem2;
        SimCpu reused(ArchParams::forArch(Arch::RaptorLake), 7, kind);
        PerfCounters first = reused.run(k, mem1, 5000, 3e6);
        PerfCounters again = reused.run(k, mem1, 5000, 3e6);
        SimCpu fresh(ArchParams::forArch(Arch::RaptorLake), 7, kind);
        PerfCounters clean = fresh.run(k, mem2, 5000, 3e6);

        for (const PerfCounters *c : {&again, &clean}) {
            EXPECT_EQ(first.memReads, c->memReads);
            EXPECT_EQ(first.dramAccesses, c->dramAccesses);
            EXPECT_EQ(first.cacheHits, c->cacheHits);
            EXPECT_EQ(first.pfQueueDrops, c->pfQueueDrops);
            EXPECT_EQ(first.flushes, c->flushes);
            EXPECT_EQ(first.branches, c->branches);
            EXPECT_EQ(first.branchMispredicts, c->branchMispredicts);
            EXPECT_EQ(first.nops, c->nops);
            EXPECT_EQ(first.timeNs, c->timeNs); // bit-identical clock
        }
        // Leak check by construction: a stale load queue, fill-buffer
        // pool or ROB would shift completion times and the clock.
        EXPECT_GT(first.dramAccesses, 0u);
    }
}

TEST(SimCpu, DramTimestampsMonotone)
{
    StubMemory mem;
    SimCpu cpu(ArchParams::forArch(Arch::RaptorLake), 1);
    cpu.run(makeLoop(16, OpKind::PrefetchNta, 10), mem, 20000);
    for (std::size_t i = 1; i < mem.accesses.size(); ++i)
        EXPECT_GE(mem.accesses[i].second, mem.accesses[i - 1].second);
}
