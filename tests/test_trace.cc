/**
 * @file
 * Trace/metrics subsystem tests: event plumbing, the golden-trace
 * regression harness, cross-run/cross-jobs byte-identity, and causal
 * invariants replayed from recorded streams.
 *
 * Golden traces
 * -------------
 * The committed goldens live in tests/goldens/ (the build bakes the
 * path in via RHO_GOLDEN_DIR). A golden test runs a pinned scenario,
 * serializes the event stream and byte-compares it against the file —
 * any change to simulation behaviour that alters the stream fails the
 * comparison.
 *
 * When a behaviour change is *intended*, regenerate the goldens and
 * commit them together with the change:
 *
 *     ./test_trace --regen-goldens
 *     # or: RHO_REGEN_GOLDENS=1 ./test_trace
 *
 * Regeneration rewrites the golden files in the source tree and
 * reports each test as skipped; rerun without the flag to verify the
 * fresh goldens pass.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dram/dimm.hh"
#include "dram/timing.hh"
#include "exploit/cross_vm.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"
#include "os/vm.hh"
#include "trace/chrome_trace.hh"
#include "trace/golden.hh"
#include "trace/metrics.hh"
#include "trace/metrics_adapters.hh"
#include "trace/tracer.hh"

using namespace rho;

namespace
{

bool regenGoldens = false;

#ifndef RHO_GOLDEN_DIR
#define RHO_GOLDEN_DIR "tests/goldens"
#endif

std::string
goldenPath(const std::string &name)
{
    return std::string(RHO_GOLDEN_DIR) + "/" + name;
}

// ---------------------------------------------------------------------
// Pinned scenarios. Everything feeding these is explicit (arch, DIMM,
// seeds, budgets, categories) so the streams are pure functions of the
// code under test.
// ---------------------------------------------------------------------

/**
 * Scaled-down quickstart pipeline: the sweep-campaign path that
 * examples/quickstart.cc exercises interactively, with a small budget
 * so the golden stays a few thousand events.
 */
std::vector<TraceEvent>
quickstartTrace(unsigned jobs)
{
    SystemSpec spec(Arch::RaptorLake, DimmProfile::byId("S2"));
    spec.trace.enabled = true;
    spec.trace.categories = CatDram | CatTrr | CatFlip | CatPhase;
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, 2000);
    Rng rng(42);
    HammerPattern pattern = HammerPattern::randomNonUniform(rng);
    SweepParams params;
    params.numLocations = 2;
    params.jobs = jobs;
    std::vector<TraceEvent> trace;
    sweepCampaign(spec, pattern, cfg, params, 42, nullptr, nullptr,
                  &trace);
    return trace;
}

/** An aggressive sampler that uniform hammering cannot stay under. */
TrrConfig
aggressiveTrr()
{
    TrrConfig trr;
    trr.sampleProb = 0.5;
    trr.matchThreshold = 8;
    trr.maxRefreshesPerTick = 4;
    return trr;
}

/**
 * TRR-evasion scenario: the same machine hammered with plain
 * double-sided (caught by the sampler) and then with a non-uniform
 * pattern (evades it). The stream shows the mitigation working and
 * being worked around.
 */
std::vector<TraceEvent>
trrEvasionTrace(std::uint64_t seed, std::uint32_t categories,
                std::uint64_t budget)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S2"),
                     aggressiveTrr(), seed);
    Tracer tracer(TraceConfig{true, categories, std::size_t{1} << 22});
    sys.attachTracer(&tracer);

    HammerSession session(sys, seed);
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, budget);
    Rng rng(seed);

    HammerPattern uniform = HammerPattern::doubleSided();
    session.hammer(uniform, session.randomLocation(uniform, cfg), cfg);

    HammerPattern evading = HammerPattern::randomNonUniform(rng);
    session.hammer(evading, session.randomLocation(evading, cfg), cfg);

    sys.attachTracer(nullptr);
    EXPECT_EQ(tracer.dropped(), 0u);
    return tracer.events();
}

/**
 * DDR5 mitigation scenario: the sample DDR5 DIMM with default-level
 * RFM and PRAC/ABO both armed, hammered with a non-uniform pattern.
 * The stream exercises every mitigation event kind — RfmRefresh,
 * PracAlert, AboRefresh and MitigationStall.
 */
std::vector<TraceEvent>
ddr5MitigationTrace(std::uint64_t seed, std::uint32_t categories,
                    std::uint64_t budget)
{
    RfmConfig rfm = RfmConfig::forLevel(RfmLevel::Default);
    PracConfig prac;
    prac.enabled = true;
    prac.threshold = 256;
    MemorySystem sys(Arch::RaptorLake, DimmProfile::ddr5Sample(),
                     TrrConfig{}, seed, rfm, prac);
    Tracer tracer(TraceConfig{true, categories, std::size_t{1} << 22});
    sys.attachTracer(&tracer);

    HammerSession session(sys, seed);
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, budget);
    Rng rng(seed);
    HammerPattern evading = HammerPattern::randomNonUniform(rng);
    session.hammer(evading, session.randomLocation(evading, cfg), cfg);

    sys.attachTracer(nullptr);
    EXPECT_EQ(tracer.dropped(), 0u);
    return tracer.events();
}

/**
 * Inter-VM scenario: the pinned cross-VM campaign (two interleaved
 * tenants, on-die ECC on) whose stream covers the VM-boundary event
 * kinds — VmMapped for every stage-2 install, CrossVmFlip for every
 * flip that lands in another tenant's partition, EccCorrected on the
 * controller-visible scrub.
 */
std::vector<TraceEvent>
interVmTrace(unsigned jobs)
{
    SystemSpec spec(Arch::RaptorLake, DimmProfile::byId("S4"));
    spec.ecc.enabled = true;
    spec.trace.enabled = true;
    spec.trace.categories = CatVm | CatFlip | CatPhase;
    CrossVmCampaignParams params;
    params.attack.hammerCfg = rhoConfig(Arch::RaptorLake, false, 120000);
    params.attack.vmCfg = VmConfig{VmPlacement::Interleaved, false};
    params.attack.bytesPerTenant = 4ull << 20;
    params.attack.hammerRuns = 10;
    params.trials = 2;
    params.jobs = jobs;
    std::vector<TraceEvent> trace;
    crossVmCampaign(spec, params, 77, nullptr, &trace);
    return trace;
}

/**
 * ECC-miscorrection scenario: a synthetic dense weak-cell field makes
 * multi-bit codewords common, so the read-path decoder exercises the
 * EccMiscorrect path alongside routine corrections.
 */
std::vector<TraceEvent>
eccMiscorrectTrace()
{
    DimmProfile p = DimmProfile::byId("S4");
    p.id = "dense";
    p.weakCellsPerRow = 40.0;
    p.hcLogMean = std::log(1500.0);
    p.hcLogSigma = 0.2;
    p.hcMin = 800;
    TrrConfig trr;
    trr.enabled = false;
    EccConfig ecc;
    ecc.enabled = true;
    Dimm d(p, DramTiming::ddr4(2666), trr, RfmConfig{}, PracConfig{},
           ecc);
    Tracer tracer(TraceConfig{true, CatFlip, std::size_t{1} << 20});
    d.setTracer(&tracer);
    for (std::uint64_t r = 4998; r <= 5006; ++r)
        d.fillRow(0, r, 0xA5, 0.0);
    Ns now = 1.0;
    for (int i = 0; i < 3000; ++i) {
        now += d.access({0, 5000, 0}, now).latency;
        now += d.access({0, 5002, 0}, now).latency;
        now += d.access({0, 5004, 0}, now).latency;
    }
    for (std::uint64_t r : {4998, 4999, 5001, 5003, 5005, 5006})
        d.diffRow(0, r, 0xA5, 1e9);
    d.setTracer(nullptr);
    EXPECT_EQ(tracer.dropped(), 0u);
    return tracer.events();
}

/**
 * Byte-compare a stream against its committed golden, or rewrite the
 * golden in regen mode.
 */
void
checkGolden(const std::string &name,
            const std::vector<TraceEvent> &events)
{
    std::string path = goldenPath(name);
    if (regenGoldens) {
        ASSERT_TRUE(goldenWrite(path, events)) << path;
        GTEST_SKIP() << "regenerated " << path << " (" << events.size()
                     << " events, digest " << std::hex
                     << goldenDigest(events) << ")";
    }
    std::string bytes;
    ASSERT_TRUE(goldenReadFile(path, bytes))
        << "missing golden " << path
        << " — generate it with: ./test_trace --regen-goldens";
    std::vector<TraceEvent> want;
    ASSERT_TRUE(goldenParse(bytes, want)) << "corrupt golden " << path;
    ASSERT_EQ(goldenSerialize(events), bytes)
        << "trace diverged from golden " << path << ": got "
        << events.size() << " events (digest " << std::hex
        << goldenDigest(events) << "), golden has " << std::dec
        << want.size() << " (digest " << std::hex << goldenDigest(want)
        << "). If the behaviour change is intended, regenerate with "
           "./test_trace --regen-goldens and commit the new golden.";
}

} // namespace

// ---------------------------------------------------------------------
// Event / tracer plumbing
// ---------------------------------------------------------------------

TEST(TraceEvent, IsCompactPodWithStableNames)
{
    EXPECT_EQ(sizeof(TraceEvent), 32u);
    double x = -1234.5678e9;
    EXPECT_EQ(traceReal(traceBits(x)), x);
    for (unsigned k = 0; k < numEventKinds; ++k) {
        EventKind kind = static_cast<EventKind>(k);
        EXPECT_STRNE(eventKindName(kind), "");
        TraceCategory cat = categoryOf(kind);
        EXPECT_NE(cat & CatAll, 0u);
        EXPECT_STRNE(categoryName(cat), "");
    }
    EXPECT_EQ(categoryOf(EventKind::DramAct), CatDram);
    EXPECT_EQ(categoryOf(EventKind::TrrSample), CatTrr);
    EXPECT_EQ(categoryOf(EventKind::BitFlip), CatFlip);
    // The default mask excludes the two hot per-op categories.
    EXPECT_EQ(CatDefault & CatCpu, 0u);
    EXPECT_EQ(CatDefault & CatDisturb, 0u);
    EXPECT_NE(CatDefault & CatDram, 0u);
}

TEST(Tracer, DisabledTracerRecordsNothing)
{
    Tracer off;
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.wants(CatDram));
    RHO_TRACE(&off, 1.0, EventKind::DramAct, 0, 0, 0, 0);
    EXPECT_EQ(off.size(), 0u);
    // Null tracer pointers are fine too (the common un-attached case).
    Tracer *null_tr = nullptr;
    RHO_TRACE(null_tr, 1.0, EventKind::DramAct, 0, 0, 0, 0);
}

TEST(Tracer, CategoryMaskFiltersAtEmission)
{
    Tracer tr(TraceConfig{true, CatTrr | CatPhase, 64});
    RHO_TRACE(&tr, 1.0, EventKind::DramAct, 0, 1, 2, 0);     // filtered
    RHO_TRACE(&tr, 2.0, EventKind::TrrSample, 0, 1, 2, 3);   // kept
    RHO_TRACE(&tr, 3.0, EventKind::Disturb, 0, 1, 2, 0);     // filtered
    RHO_TRACE(&tr, 4.0, EventKind::PhaseBegin, 0, 0, 0, 0);  // kept
    auto ev = tr.events();
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[0].kind, EventKind::TrrSample);
    EXPECT_EQ(ev[0].c, 3u);
    EXPECT_EQ(ev[1].kind, EventKind::PhaseBegin);
}

TEST(Tracer, RingDropsOldestAndCounts)
{
    Tracer tr(TraceConfig{true, CatAll, 4});
    for (std::uint64_t i = 0; i < 10; ++i)
        tr.record(static_cast<Ns>(i), EventKind::DramAct, 0, 0, i, 0);
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.dropped(), 6u);
    auto ev = tr.events();
    ASSERT_EQ(ev.size(), 4u);
    // Oldest surviving first: rows 6,7,8,9.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(ev[i].b, 6 + i);
    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Tracer, AppendRestampedMergesInCallOrder)
{
    Tracer a(TraceConfig{true, CatAll, 16});
    Tracer b(TraceConfig{true, CatAll, 16});
    a.record(1.0, EventKind::DramAct, 0, 0, 11, 0);
    b.record(2.0, EventKind::DramAct, 0, 0, 22, 0);
    std::vector<TraceEvent> merged;
    appendRestamped(merged, a, 0);
    appendRestamped(merged, b, 1);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].tid, 0u);
    EXPECT_EQ(merged[0].b, 11u);
    EXPECT_EQ(merged[1].tid, 1u);
    EXPECT_EQ(merged[1].b, 22u);
}

// ---------------------------------------------------------------------
// Golden binary format
// ---------------------------------------------------------------------

TEST(GoldenFormat, RoundTripsBitExactly)
{
    std::vector<TraceEvent> ev;
    TraceEvent e;
    e.when = 1.5e9;
    e.kind = EventKind::BitFlip;
    e.flags = 1;
    e.tid = 7;
    e.a = 3;
    e.b = 12345;
    e.c = traceBits(2.25);
    ev.push_back(e);
    e.kind = EventKind::PhaseEnd;
    ev.push_back(e);

    std::string img = goldenSerialize(ev);
    EXPECT_EQ(img.size(), 24u + 32u * ev.size());
    std::vector<TraceEvent> back;
    ASSERT_TRUE(goldenParse(img, back));
    ASSERT_EQ(back.size(), ev.size());
    EXPECT_EQ(std::memcmp(back.data(), ev.data(),
                          ev.size() * sizeof(TraceEvent)),
              0);
    EXPECT_EQ(goldenDigest(back), goldenDigest(ev));
}

TEST(GoldenFormat, RejectsCorruptImages)
{
    std::vector<TraceEvent> ev(3);
    std::string img = goldenSerialize(ev);
    std::vector<TraceEvent> out;

    std::string bad_magic = img;
    bad_magic[0] = 'X';
    EXPECT_FALSE(goldenParse(bad_magic, out));
    EXPECT_TRUE(out.empty());

    std::string bad_version = img;
    bad_version[8] = 99;
    EXPECT_FALSE(goldenParse(bad_version, out));

    std::string truncated = img.substr(0, img.size() - 1);
    EXPECT_FALSE(goldenParse(truncated, out));

    std::string padded = img + "x";
    EXPECT_FALSE(goldenParse(padded, out));

    EXPECT_FALSE(goldenParse("short", out));
}

// ---------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------

TEST(ChromeTrace, EmitsPerfettoLoadableJson)
{
    std::vector<TraceEvent> ev;
    TraceEvent begin;
    begin.when = 1000.0;
    begin.kind = EventKind::PhaseBegin;
    begin.a = static_cast<std::uint32_t>(SimPhase::Hammer);
    ev.push_back(begin);
    TraceEvent flip;
    flip.when = 1500.0;
    flip.kind = EventKind::BitFlip;
    flip.flags = 1;
    flip.a = 2;
    flip.b = 77;
    flip.c = 129;
    ev.push_back(flip);
    TraceEvent end = begin;
    end.kind = EventKind::PhaseEnd;
    end.when = 2000.0;
    end.c = 1;
    ev.push_back(end);

    std::string json = chromeTraceJson(ev);
    ASSERT_GE(json.size(), 4u);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.substr(json.size() - 2), "]\n");
    // Phase pairs become duration events, others instants.
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"hammer\""), std::string::npos);
    EXPECT_NE(json.find("\"bit_flip\""), std::string::npos);
    // Timestamps are microseconds with fixed formatting.
    EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
    // The export itself is deterministic.
    EXPECT_EQ(json, chromeTraceJson(ev));
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(Metrics, AddMergeAndSubtreeDump)
{
    MetricsRegistry m;
    m.add("dram.acts", 10);
    m.add("dram.acts", 5);
    m.add("dram.refreshes.trr", 2);
    m.add("dramatic.acts", 99); // must NOT match the "dram" subtree
    m.set("parallel.jobs", 4);
    EXPECT_EQ(m.value("dram.acts"), 15u);
    EXPECT_EQ(m.value("unknown"), 0u);
    EXPECT_FALSE(m.has("unknown"));

    MetricsRegistry other;
    other.add("dram.acts", 1);
    other.add("hammer.flips", 3);
    m.merge(other);
    EXPECT_EQ(m.value("dram.acts"), 16u);
    EXPECT_EQ(m.value("hammer.flips"), 3u);

    std::string sub = m.dump("dram");
    EXPECT_NE(sub.find("dram.acts = 16"), std::string::npos);
    EXPECT_NE(sub.find("dram.refreshes.trr = 2"), std::string::npos);
    EXPECT_EQ(sub.find("dramatic.acts"), std::string::npos);
    EXPECT_EQ(sub.find("hammer.flips"), std::string::npos);
    // Full dump is name-ordered and therefore deterministic.
    EXPECT_EQ(m.dump(), m.dump());
}

// ---------------------------------------------------------------------
// Golden-trace regression
// ---------------------------------------------------------------------

TEST(GoldenTrace, QuickstartPipeline)
{
    checkGolden("quickstart.trace", quickstartTrace(2));
}

TEST(GoldenTrace, TrrEvasionScenario)
{
    checkGolden("trr_evasion.trace",
                trrEvasionTrace(9, CatTrr | CatFlip | CatPhase, 3000));
}

TEST(GoldenTrace, Ddr5MitigationScenario)
{
    auto events =
        ddr5MitigationTrace(9, CatTrr | CatFlip | CatPhase, 30000);
    // The scenario must pin all four mitigation event kinds, or the
    // golden would not guard them.
    std::set<EventKind> kinds;
    for (const TraceEvent &e : events)
        kinds.insert(e.kind);
    EXPECT_TRUE(kinds.count(EventKind::RfmRefresh));
    EXPECT_TRUE(kinds.count(EventKind::PracAlert));
    EXPECT_TRUE(kinds.count(EventKind::AboRefresh));
    EXPECT_TRUE(kinds.count(EventKind::MitigationStall));
    checkGolden("ddr5_mitigations.trace", events);
}

TEST(GoldenTrace, InterVmScenario)
{
    auto events = interVmTrace(1);
    // The scenario must pin the VM-boundary kinds, or the golden would
    // not guard the multi-tenant subsystem.
    std::set<EventKind> kinds;
    for (const TraceEvent &e : events)
        kinds.insert(e.kind);
    EXPECT_TRUE(kinds.count(EventKind::VmMapped));
    EXPECT_TRUE(kinds.count(EventKind::BitFlip));
    EXPECT_TRUE(kinds.count(EventKind::CrossVmFlip));
    EXPECT_TRUE(kinds.count(EventKind::EccCorrected));
    checkGolden("inter_vm.trace", events);
}

TEST(GoldenTrace, EccMiscorrectScenario)
{
    auto events = eccMiscorrectTrace();
    std::set<EventKind> kinds;
    for (const TraceEvent &e : events)
        kinds.insert(e.kind);
    EXPECT_TRUE(kinds.count(EventKind::EccCorrected));
    EXPECT_TRUE(kinds.count(EventKind::EccMiscorrect));
    checkGolden("ecc_miscorrect.trace", events);
}

// ---------------------------------------------------------------------
// Determinism: byte-identical streams across runs and --jobs
// ---------------------------------------------------------------------

TEST(TraceDeterminism, ByteIdenticalAcrossRuns)
{
    std::string a = goldenSerialize(quickstartTrace(2));
    std::string b = goldenSerialize(quickstartTrace(2));
    EXPECT_EQ(a, b);
}

TEST(TraceDeterminism, ByteIdenticalAcrossJobCounts)
{
    std::string ref = goldenSerialize(quickstartTrace(1));
    for (unsigned jobs : {2u, 8u}) {
        EXPECT_EQ(goldenSerialize(quickstartTrace(jobs)), ref)
            << "jobs " << jobs;
    }
}

TEST(TraceDeterminism, FuzzCampaignTraceIndependentOfJobs)
{
    SystemSpec spec(Arch::CometLake, DimmProfile::byId("S4"));
    spec.trace.enabled = true;
    spec.trace.categories = CatTrr | CatFlip | CatPhase;
    HammerConfig cfg = rhoConfig(Arch::CometLake, true, 2000);
    FuzzParams params;
    params.numPatterns = 4;
    params.locationsPerPattern = 1;

    params.jobs = 1;
    std::vector<TraceEvent> ref;
    fuzzCampaign(spec, cfg, params, 33, nullptr, nullptr, &ref);
    EXPECT_FALSE(ref.empty());
    for (unsigned jobs : {2u, 8u}) {
        params.jobs = jobs;
        std::vector<TraceEvent> got;
        fuzzCampaign(spec, cfg, params, 33, nullptr, nullptr, &got);
        EXPECT_EQ(goldenSerialize(got), goldenSerialize(ref))
            << "jobs " << jobs;
    }
}

TEST(TraceDeterminism, InterVmTraceIndependentOfJobs)
{
    std::string ref = goldenSerialize(interVmTrace(1));
    for (unsigned jobs : {2u, 8u}) {
        EXPECT_EQ(goldenSerialize(interVmTrace(jobs)), ref)
            << "jobs " << jobs;
    }
}

// ---------------------------------------------------------------------
// Causal invariants, replayed from recorded streams
// ---------------------------------------------------------------------

namespace
{

using RowKey = std::pair<std::uint32_t, std::uint64_t>;

/**
 * Replay one stream's disturb machinery: the accumulated disturbance
 * reconstructed from Disturb/DisturbReset/FlipSuppressed events must
 * match the recorded reset amounts exactly, and every BitFlip must be
 * preceded by enough accumulated disturbance to cross the flipped
 * cell's threshold.
 *
 * `flips_checked` counts BitFlip events verified (out-param so the
 * gtest ASSERT macros can be used — they require a void function).
 */
void
replayDisturbInvariant(const std::vector<TraceEvent> &events,
                       const DimmProfile &prof, unsigned &flips_checked)
{
    std::map<RowKey, double> acc;
    for (const TraceEvent &e : events) {
        RowKey key{e.a, e.b};
        switch (e.kind) {
          case EventKind::Disturb:
            acc[key] += traceReal(e.c);
            break;
          case EventKind::DisturbReset:
          case EventKind::FlipSuppressed:
            // The recorded dropped charge is exactly what the replay
            // accumulated: every mutation of the device's counter is
            // in the stream.
            EXPECT_DOUBLE_EQ(traceReal(e.c), acc[key])
                << eventKindName(e.kind) << " bank " << e.a << " row "
                << e.b << " at " << e.when;
            acc[key] = 0.0;
            break;
          case EventKind::BitFlip: {
            auto cells = prof.weakCellsFor(e.a, e.b);
            auto cell = std::find_if(
                cells.begin(), cells.end(), [&](const WeakCell &c) {
                    return c.bitOffset == e.c;
                });
            ASSERT_NE(cell, cells.end())
                << "flip at bank " << e.a << " row " << e.b
                << " bit " << e.c << " hit no weak cell";
            EXPECT_GE(acc[key], cell->threshold)
                << "flip before threshold at bank " << e.a << " row "
                << e.b;
            // Direction matches the cell type (true cell discharges
            // to 0, anti cell charges to 1).
            EXPECT_EQ(e.flags != 0, !cell->trueCell);
            ++flips_checked;
            break;
          }
          default:
            break;
        }
    }
}

/**
 * Replay the TRR sampler: a targeted refresh of (bank, row) requires
 * that, since the last targeted refresh of that row, some sample
 * raised its Misra-Gries counter to at least the match threshold.
 * `refreshes_checked` counts the targeted refreshes verified.
 */
void
replayTrrInvariant(const std::vector<TraceEvent> &events,
                   std::uint32_t match_threshold,
                   unsigned &refreshes_checked)
{
    std::map<RowKey, std::uint32_t> max_count;
    for (const TraceEvent &e : events) {
        RowKey key{e.a, e.b};
        if (e.kind == EventKind::TrrSample) {
            max_count[key] = std::max(
                max_count[key], static_cast<std::uint32_t>(e.c));
        } else if (e.kind == EventKind::TrrTargetedRefresh) {
            EXPECT_GE(max_count[key], match_threshold)
                << "targeted refresh without a qualifying sample, bank "
                << e.a << " row " << e.b << " at " << e.when;
            max_count[key] = 0; // counters restart after the refresh
            ++refreshes_checked;
        }
    }
}

} // namespace

TEST(CausalInvariants, DisturbAccumulatesBeforeEveryFlip)
{
    const DimmProfile &prof = DimmProfile::byId("S2");
    unsigned total_flips = 0;
    for (std::uint64_t seed : {101ULL, 102ULL, 103ULL}) {
        auto events = trrEvasionTrace(
            seed, CatDram | CatDisturb | CatFlip | CatTrr | CatPhase,
            150000);
        replayDisturbInvariant(events, prof, total_flips);
    }
    // The scenario must actually exercise the flip path.
    EXPECT_GT(total_flips, 0u);
}

TEST(CausalInvariants, SampleReachesThresholdBeforeTargetedRefresh)
{
    unsigned total_refreshes = 0;
    for (std::uint64_t seed : {101ULL, 102ULL, 103ULL}) {
        auto events =
            trrEvasionTrace(seed, CatTrr | CatPhase, 20000);
        replayTrrInvariant(events, aggressiveTrr().matchThreshold,
                           total_refreshes);
    }
    // The uniform half of the scenario must actually trip the sampler.
    EXPECT_GT(total_refreshes, 0u);
}

TEST(CausalInvariants, PracAlertsCrossThresholdAndAboRidesAlert)
{
    // Matches the threshold pinned inside ddr5MitigationTrace().
    const std::uint64_t threshold = 256;
    auto events = ddr5MitigationTrace(7, CatTrr | CatPhase, 60000);
    unsigned alerts = 0, abo_refreshes = 0;
    Ns last_alert_at = -1.0;
    for (const TraceEvent &e : events) {
        if (e.kind == EventKind::PracAlert) {
            // The recorded peak is the counter value that pulled
            // ALERT_n, so it can never be below the threshold.
            EXPECT_GE(e.c, threshold)
                << "alert below threshold, bank " << e.a << " row "
                << e.b << " at " << e.when;
            last_alert_at = e.when;
            ++alerts;
        } else if (e.kind == EventKind::AboRefresh) {
            // Back-off services are only issued while an alert is
            // being handled, never on their own.
            EXPECT_EQ(e.when, last_alert_at)
                << "orphan ABO refresh at " << e.when;
            ++abo_refreshes;
        }
    }
    EXPECT_GT(alerts, 0u);
    // Every alert services at least the crossing row.
    EXPECT_GE(abo_refreshes, alerts);
}

namespace
{

/**
 * Replay the on-die-ECC read path: a correction can only ever undo a
 * raw flip that the stream has already committed — every EccCorrected
 * (bank, row, bit) must be preceded (per task) by a BitFlip of exactly
 * that cell; every EccMiscorrect requires a multi-bit error, i.e. at
 * least two prior raw flips in the toggled bit's codeword; and every
 * CrossVmFlip restates a prior BitFlip whose owner differs from the
 * hammering tenant. `checked` counts the ECC/VM events verified.
 */
void
replayCorrectionInvariant(const std::vector<TraceEvent> &events,
                          std::uint32_t codeword_bits,
                          unsigned &checked)
{
    using Cell = std::tuple<std::uint16_t, std::uint32_t, std::uint64_t,
                            std::uint64_t>; // tid, bank, row, bit
    std::set<Cell> flipped;
    for (const TraceEvent &e : events) {
        switch (e.kind) {
          case EventKind::BitFlip:
            flipped.insert({e.tid, e.a, e.b, e.c});
            break;
          case EventKind::EccCorrected:
            EXPECT_TRUE(flipped.count({e.tid, e.a, e.b, e.c}))
                << "correction of a never-flipped cell, bank " << e.a
                << " row " << e.b << " bit " << e.c << " at " << e.when;
            ++checked;
            break;
          case EventKind::EccMiscorrect: {
            std::uint64_t cw = e.c / codeword_bits;
            unsigned raw_in_cw = 0;
            for (std::uint64_t bit = cw * codeword_bits;
                 bit < (cw + 1) * codeword_bits; ++bit)
                raw_in_cw += flipped.count({e.tid, e.a, e.b, bit});
            EXPECT_GE(raw_in_cw, 2u)
                << "miscorrection without a multi-bit error, bank "
                << e.a << " row " << e.b << " bit " << e.c;
            ++checked;
            break;
          }
          case EventKind::CrossVmFlip: {
            std::uint64_t bit = e.c & ((1ULL << 48) - 1);
            EXPECT_TRUE(flipped.count({e.tid, e.a, e.b, bit}))
                << "cross-VM flip without a raw flip, bank " << e.a
                << " row " << e.b << " bit " << bit;
            EXPECT_NE(static_cast<std::uint64_t>(e.flags), e.c >> 48)
                << "tenant reported as its own victim at " << e.when;
            ++checked;
            break;
          }
          default:
            break;
        }
    }
}

} // namespace

TEST(CausalInvariants, EccCorrectionsTargetPriorRawFlips)
{
    unsigned checked = 0;
    replayCorrectionInvariant(interVmTrace(1), 16 * 8, checked);
    EXPECT_GT(checked, 0u);
    unsigned dense_checked = 0;
    replayCorrectionInvariant(eccMiscorrectTrace(), 16 * 8,
                              dense_checked);
    EXPECT_GT(dense_checked, 0u);
}

TEST(CausalInvariants, PhaseBracketsAreBalanced)
{
    auto events = quickstartTrace(1);
    std::map<std::uint16_t, std::vector<std::uint32_t>> stack;
    unsigned pairs = 0;
    for (const TraceEvent &e : events) {
        if (e.kind == EventKind::PhaseBegin) {
            stack[e.tid].push_back(e.a);
        } else if (e.kind == EventKind::PhaseEnd) {
            ASSERT_FALSE(stack[e.tid].empty());
            EXPECT_EQ(stack[e.tid].back(), e.a);
            stack[e.tid].pop_back();
            ++pairs;
        }
    }
    for (auto &[tid, open] : stack)
        EXPECT_TRUE(open.empty()) << "unclosed phase in task " << tid;
    EXPECT_GT(pairs, 0u);
}

// ---------------------------------------------------------------------
// Campaign metrics wiring
// ---------------------------------------------------------------------

TEST(CampaignTrace, MetricsMatchDeviceTotalsAndTids)
{
    SystemSpec spec(Arch::RaptorLake, DimmProfile::byId("S2"));
    spec.trace.enabled = true;
    spec.trace.categories = CatDram | CatTrr | CatFlip | CatPhase;
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, 2000);
    Rng rng(42);
    HammerPattern pattern = HammerPattern::randomNonUniform(rng);
    SweepParams params;
    params.numLocations = 3;
    params.jobs = 2;

    MetricsRegistry metrics;
    std::vector<TraceEvent> trace;
    ParallelStats stats;
    sweepCampaign(spec, pattern, cfg, params, 42, &stats, &metrics,
                  &trace);

    // The merged stream carries per-task tids, in task order.
    std::set<std::uint16_t> tids;
    std::uint16_t last = 0;
    std::uint64_t act_events = 0;
    for (const TraceEvent &e : trace) {
        EXPECT_GE(e.tid, last); // task-ordered merge never interleaves
        last = e.tid;
        tids.insert(e.tid);
        if (e.kind == EventKind::DramAct)
            ++act_events;
    }
    EXPECT_EQ(tids.size(), params.numLocations);

    // The unified counters agree with the stream itself.
    EXPECT_EQ(metrics.value("dram.acts"), act_events);
    EXPECT_EQ(metrics.value("campaign.locations"), params.numLocations);
    EXPECT_GT(metrics.value("cpu.dram_accesses"), 0u);

    // And the ParallelStats adapter lands them under parallel.*.
    MetricsRegistry pm;
    addMetrics(pm, stats);
    EXPECT_EQ(pm.value("parallel.tasks_run"), params.numLocations);
    EXPECT_EQ(pm.value("parallel.jobs"), 2u);
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--regen-goldens")
            regenGoldens = true;
    }
    if (const char *env = std::getenv("RHO_REGEN_GOLDENS")) {
        if (*env && std::string(env) != "0")
            regenGoldens = true;
    }
    return RUN_ALL_TESTS();
}
