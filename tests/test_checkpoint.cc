/**
 * @file
 * TaskJournal v2 robustness: CRC/seq record validation, self-healing
 * recovery, v1 back-compat, and a journal-corruption property fuzz
 * that must never break campaign bit-identity.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/checkpoint.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

namespace
{

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeLines(const std::string &path, const std::vector<std::string> &lines,
           bool final_newline = true)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        out << lines[i];
        if (i + 1 < lines.size() || final_newline)
            out << "\n";
    }
}

/** Flip one bit of one line (line 0 = header) in a journal file. */
void
flipBit(const std::string &path, unsigned line_idx, unsigned bit)
{
    auto lines = readLines(path);
    ASSERT_LT(line_idx, lines.size());
    std::string &l = lines[line_idx];
    ASSERT_FALSE(l.empty());
    std::size_t pos = (bit / 8) % l.size();
    l[pos] = static_cast<char>(l[pos] ^ (1u << (bit % 8)));
    writeLines(path, lines);
}

std::string
tempPath(const char *name)
{
    std::string p = testing::TempDir() + name;
    std::remove(p.c_str());
    return p;
}

/** A small journal with `n` records ("payload-i x") at `path`. */
void
makeJournal(const std::string &path, std::uint64_t key, unsigned n,
            const JournalOptions &opts = JournalOptions{})
{
    TaskJournal j(path, key, "test", opts);
    for (unsigned i = 0; i < n; ++i)
        j.record(i, strFormat("payload-%u %u", i, i * 17));
}

} // namespace

// ---------------------------------------------------------------------
// CRC + double codec primitives
// ---------------------------------------------------------------------

TEST(Checkpoint, Crc32KnownAnswer)
{
    // The classic IEEE 802.3 check value.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0x00000000u);
    // Sensitivity: one flipped bit changes the sum.
    EXPECT_NE(crc32("123456789", 9), crc32("123456788", 9));
}

TEST(Checkpoint, DoubleCodecIsBitExact)
{
    for (double x : {0.0, -0.0, 1.5, -3.25e-7, 6.02214076e23, 1e-310}) {
        auto back = decodeDouble(encodeDouble(x));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(std::bit_cast<std::uint64_t>(*back),
                  std::bit_cast<std::uint64_t>(x));
    }
    EXPECT_FALSE(decodeDouble("").has_value());
    EXPECT_FALSE(decodeDouble("xyz").has_value());
    EXPECT_FALSE(decodeDouble("00000000000000").has_value());
}

// ---------------------------------------------------------------------
// v2 format: record, reload, self-heal
// ---------------------------------------------------------------------

TEST(Checkpoint, RecordsReloadVerbatim)
{
    std::string path = tempPath("rho_ckpt_basic.journal");
    makeJournal(path, 0x1234, 4);

    TaskJournal j(path, 0x1234, "test");
    EXPECT_EQ(j.recovery().fileVersion, 2u);
    EXPECT_EQ(j.restoredCount(), 4u);
    EXPECT_FALSE(j.recovery().truncatedAtCorruption);
    EXPECT_EQ(j.lookup(2), "payload-2 34");
    EXPECT_FALSE(j.lookup(9).has_value());
    std::remove(path.c_str());
}

TEST(Checkpoint, SingleBitFlipIsRejected)
{
    // The CRC regression: flip ONE bit of one record on disk; that
    // record and everything after it must be rejected, everything
    // before it preserved.
    std::string path = tempPath("rho_ckpt_bitflip.journal");
    makeJournal(path, 0x5678, 5);

    flipBit(path, /*line_idx=*/3, /*bit=*/5 * 8 + 1); // record #2

    {
        TaskJournal j(path, 0x5678, "test");
        EXPECT_EQ(j.restoredCount(), 2u);
        EXPECT_TRUE(j.lookup(0).has_value());
        EXPECT_TRUE(j.lookup(1).has_value());
        EXPECT_FALSE(j.lookup(2).has_value());
        EXPECT_FALSE(j.lookup(4).has_value());
        EXPECT_TRUE(j.recovery().truncatedAtCorruption);
        EXPECT_EQ(j.recovery().recordsDropped, 3u);
    }
    // Self-healed: the repaired file reloads with no complaints.
    TaskJournal j(path, 0x5678, "test");
    EXPECT_EQ(j.restoredCount(), 2u);
    EXPECT_FALSE(j.recovery().truncatedAtCorruption);
    std::remove(path.c_str());
}

TEST(Checkpoint, DuplicatedRecordLineTruncates)
{
    std::string path = tempPath("rho_ckpt_dup.journal");
    makeJournal(path, 0x77, 4);

    // Splice record #1's line after record #2 — its CRC is fine but
    // its sequence number goes backwards.
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 5u);
    std::vector<std::string> spliced = {lines[0], lines[1], lines[2],
                                        lines[3], lines[2], lines[4]};
    writeLines(path, spliced);

    TaskJournal j(path, 0x77, "test");
    EXPECT_EQ(j.restoredCount(), 3u);
    EXPECT_TRUE(j.recovery().truncatedAtCorruption);
    EXPECT_EQ(j.recovery().recordsDropped, 2u);
    std::remove(path.c_str());
}

TEST(Checkpoint, TornFinalLineIsDropped)
{
    std::string path = tempPath("rho_ckpt_torn.journal");
    makeJournal(path, 0x99, 3);

    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 4u);
    lines.back() = lines.back().substr(0, lines.back().size() / 2);
    writeLines(path, lines, /*final_newline=*/false);

    TaskJournal j(path, 0x99, "test");
    EXPECT_EQ(j.restoredCount(), 2u);
    EXPECT_TRUE(j.recovery().truncatedAtCorruption);
    std::remove(path.c_str());
}

TEST(Checkpoint, MismatchedKeyOrKindDiscards)
{
    std::string path = tempPath("rho_ckpt_key.journal");
    makeJournal(path, 0xAAAA, 3);
    {
        TaskJournal j(path, 0xBBBB, "test");
        EXPECT_EQ(j.restoredCount(), 0u);
        EXPECT_TRUE(j.recovery().discarded);
    }
    makeJournal(path, 0xAAAA, 3);
    TaskJournal j(path, 0xAAAA, "other");
    EXPECT_EQ(j.restoredCount(), 0u);
    EXPECT_TRUE(j.recovery().discarded);
    std::remove(path.c_str());
}

TEST(Checkpoint, FsyncPoliciesAllProduceLoadableJournals)
{
    for (FsyncPolicy policy : {FsyncPolicy::Never, FsyncPolicy::PerRecord,
                               FsyncPolicy::Interval}) {
        std::string path = tempPath("rho_ckpt_fsync.journal");
        JournalOptions opts;
        opts.fsync = policy;
        opts.fsyncInterval = 2;
        makeJournal(path, 0xF5, 5, opts);
        TaskJournal j(path, 0xF5, "test");
        EXPECT_EQ(j.restoredCount(), 5u);
        std::remove(path.c_str());
    }
}

TEST(Checkpoint, BitRotHookCorruptsExactlyOneRecord)
{
    std::string path = tempPath("rho_ckpt_rot.journal");
    {
        unsigned written = 0;
        JournalOptions opts;
        opts.bitRot = [&written](std::size_t) -> int {
            return ++written == 3 ? 42 : -1; // rot only record #2
        };
        TaskJournal j(path, 0xD0, "test", opts);
        for (unsigned i = 0; i < 5; ++i)
            j.record(i, strFormat("p-%u", i));
    }
    TaskJournal j(path, 0xD0, "test");
    EXPECT_EQ(j.restoredCount(), 2u);
    EXPECT_TRUE(j.recovery().truncatedAtCorruption);
    EXPECT_EQ(j.recovery().recordsDropped, 3u);
    std::remove(path.c_str());
}

TEST(Checkpoint, OnRecordReportsMonotonicSeq)
{
    std::string path = tempPath("rho_ckpt_seq.journal");
    std::vector<std::uint64_t> seqs;
    JournalOptions opts;
    opts.onRecord = [&seqs](unsigned, std::uint64_t seq) {
        seqs.push_back(seq);
    };
    {
        TaskJournal j(path, 0x31, "test", opts);
        for (unsigned i = 0; i < 3; ++i)
            j.record(i, "x");
    }
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3}));
    // A reopened journal continues the sequence past what it loaded.
    TaskJournal j(path, 0x31, "test", opts);
    j.record(3, "x");
    EXPECT_EQ(seqs.back(), 4u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// v1 back-compat (journals written by PR 2–6 binaries)
// ---------------------------------------------------------------------

namespace
{

/** Rewrite a v2 journal in the legacy v1 format (no seq, no CRC). */
void
downgradeToV1(const std::string &path)
{
    auto lines = readLines(path);
    ASSERT_FALSE(lines.empty());
    ASSERT_EQ(lines[0].rfind("rho-journal v2 ", 0), 0u);
    std::vector<std::string> v1;
    v1.push_back("rho-journal v1 " + lines[0].substr(15));
    for (std::size_t i = 1; i < lines.size(); ++i) {
        // "task <index> <seq> <crc> <payload>" -> "task <index> <payload>"
        std::istringstream rec(lines[i]);
        std::string tag, index, seq, crc, payload;
        ASSERT_TRUE(rec >> tag >> index >> seq >> crc);
        std::getline(rec, payload);
        if (!payload.empty() && payload.front() == ' ')
            payload.erase(0, 1);
        v1.push_back(tag + " " + index + " " + payload);
    }
    writeLines(path, v1);
}

} // namespace

TEST(Checkpoint, V1JournalLoadsAndUpgrades)
{
    std::string path = tempPath("rho_ckpt_v1.journal");
    makeJournal(path, 0xE1, 4);
    downgradeToV1(path);

    {
        TaskJournal j(path, 0xE1, "test");
        EXPECT_EQ(j.recovery().fileVersion, 1u);
        EXPECT_TRUE(j.recovery().upgradedFromV1);
        EXPECT_EQ(j.restoredCount(), 4u);
        EXPECT_EQ(j.lookup(3), "payload-3 51");
        j.record(4, "payload-4 68");
    }
    // The file on disk is now v2 with CRCs, including the new record.
    auto lines = readLines(path);
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines[0].rfind("rho-journal v2 ", 0), 0u);
    TaskJournal j(path, 0xE1, "test");
    EXPECT_EQ(j.recovery().fileVersion, 2u);
    EXPECT_FALSE(j.recovery().upgradedFromV1);
    EXPECT_EQ(j.restoredCount(), 5u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Campaign-level: corruption never breaks bit-identity
// ---------------------------------------------------------------------

namespace
{

struct SweepScenario
{
    SystemSpec spec;
    HammerConfig cfg;
    HammerPattern pattern;

    explicit SweepScenario(std::uint64_t seed)
        : spec(Arch::AlderLake, DimmProfile::byId("S4")),
          cfg(rhoConfig(Arch::AlderLake, false, 30000)),
          pattern(makePattern(seed))
    {
    }

    static HammerPattern
    makePattern(std::uint64_t seed)
    {
        Rng prng(seed);
        PatternParams pp;
        pp.minPairs = 3;
        pp.maxPairs = 3;
        return HammerPattern::randomNonUniform(prng, pp);
    }
};

void
expectSweepEqual(const SweepResult &a, const SweepResult &b)
{
    EXPECT_EQ(a.totalFlips, b.totalFlips);
    EXPECT_EQ(a.flipsPerLocation, b.flipsPerLocation);
    EXPECT_EQ(a.cumulativeTimeNs, b.cumulativeTimeNs);
    EXPECT_EQ(a.simTimeNs, b.simTimeNs); // bit-identical doubles
    EXPECT_EQ(a.flipList.size(), b.flipList.size());
}

} // namespace

TEST(Checkpoint, V1CampaignJournalResumesBitIdentical)
{
    SweepScenario sc(3);
    SweepParams params;
    params.numLocations = 6;
    params.jobs = 2;
    SweepResult base = sweepCampaign(sc.spec, sc.pattern, sc.cfg, params,
                                     55);

    std::string path = tempPath("rho_ckpt_v1_campaign.journal");
    params.checkpointPath = path;
    sweepCampaign(sc.spec, sc.pattern, sc.cfg, params, 55);

    // Pretend the journal was written by a PR 2–6 binary, with the
    // last two tasks lost to a kill.
    downgradeToV1(path);
    auto lines = readLines(path);
    lines.resize(lines.size() - 2);
    writeLines(path, lines);

    ParallelStats stats;
    SweepResult resumed = sweepCampaign(sc.spec, sc.pattern, sc.cfg,
                                        params, 55, &stats);
    expectSweepEqual(resumed, base);
    EXPECT_EQ(stats.tasksRestored, 4u);
    std::remove(path.c_str());
}

TEST(Checkpoint, CorruptionPropertyFuzzKeepsBitIdentity)
{
    // The property: NO corruption of the journal file — truncation,
    // torn line, duplicated records, single-bit rot — may change a
    // resumed campaign's merged result. Three seeds, several random
    // corruption rounds each.
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        SweepScenario sc(seed);
        SweepParams params;
        params.numLocations = 5;
        params.jobs = 2;
        SweepResult base = sweepCampaign(sc.spec, sc.pattern, sc.cfg,
                                         params, seed);

        std::string path = tempPath("rho_ckpt_fuzz.journal");
        params.checkpointPath = path;
        expectSweepEqual(sweepCampaign(sc.spec, sc.pattern, sc.cfg,
                                       params, seed),
                         base);

        Rng rng(hashCombine(seed, 0xF0));
        for (unsigned round = 0; round < 6; ++round) {
            auto lines = readLines(path);
            ASSERT_GE(lines.size(), 2u);
            unsigned op = (unsigned)rng.uniformInt(0, 3);
            unsigned victim =
                (unsigned)rng.uniformInt(1, lines.size() - 1);
            switch (op) {
            case 0: // truncate the suffix
                lines.resize(victim);
                writeLines(path, lines);
                break;
            case 1: { // tear a line in half, drop the rest
                lines.resize(victim + 1);
                lines.back() =
                    lines.back().substr(0, lines.back().size() / 2);
                writeLines(path, lines, false);
                break;
            }
            case 2: // duplicate a record line in place
                lines.insert(lines.begin() + victim, lines[victim]);
                writeLines(path, lines);
                break;
            default: { // flip a random bit of a random record
                unsigned bit = (unsigned)rng.uniformInt(
                    0, lines[victim].size() * 8 - 1);
                flipBit(path, victim, bit);
                break;
            }
            }
            SweepResult resumed = sweepCampaign(sc.spec, sc.pattern,
                                                sc.cfg, params, seed);
            expectSweepEqual(resumed, base);
        }
        std::remove(path.c_str());
    }
}
