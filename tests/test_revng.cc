/**
 * @file
 * Tests for mapping reverse engineering: rhoHammer's Algorithm 1 must
 * recover every Table 4 preset and randomized mappings; the prior-art
 * baselines must fail exactly where the paper reports.
 */

#include <gtest/gtest.h>

#include "fault/fault_injector.hh"
#include "revng/baseline_dare.hh"
#include "revng/baseline_drama.hh"
#include "revng/baseline_dramdig.hh"
#include "revng/reverse_engineer.hh"

using namespace rho;

namespace
{

struct Rig
{
    MemorySystem sys;
    BuddyAllocator buddy;
    PhysPool pool;
    TimingProbe probe;

    Rig(Arch arch, const std::string &dimm, std::uint64_t seed,
        double fraction = 0.70)
        : sys(arch, DimmProfile::byId(dimm), TrrConfig{}, seed),
          buddy(sys.mapping().memBytes(), 0.02, seed),
          pool(buddy, fraction), probe(sys, seed)
    {
    }

    Rig(Arch arch, const DimmProfile &dimm, AddressMapping mapping,
        std::uint64_t seed)
        : sys(arch, dimm, std::move(mapping), TrrConfig{}, seed),
          buddy(sys.mapping().memBytes(), 0.02, seed),
          pool(buddy, 0.70), probe(sys, seed)
    {
    }
};

} // namespace

TEST(SameFnSpan, BasisInvariance)
{
    std::vector<std::uint64_t> a = {0b0011, 0b0110};
    std::vector<std::uint64_t> b = {0b0101, 0b0110}; // same span
    std::vector<std::uint64_t> c = {0b0011, 0b1100}; // different
    EXPECT_TRUE(sameFnSpan(a, b, 4));
    EXPECT_FALSE(sameFnSpan(a, c, 4));
    EXPECT_FALSE(sameFnSpan(a, {0b0011}, 4)); // size mismatch
}

class RhoReOnArch : public ::testing::TestWithParam<Arch>
{
};

TEST_P(RhoReOnArch, RecoversGroundTruth)
{
    Rig rig(GetParam(), "S2", 11);
    RhoReverseEngineer re(rig.probe, rig.pool, 11);
    MappingRecovery rec = re.run();
    ASSERT_TRUE(rec.success) << rec.failureReason;
    EXPECT_TRUE(rec.matches(rig.sys.mapping()))
        << archName(GetParam());
    // Table 5: recovery takes on the order of seconds (simulated).
    EXPECT_LT(rec.simTimeNs, 30e9);
    EXPECT_GT(rec.simTimeNs, 0.1e9);
}

INSTANTIATE_TEST_SUITE_P(AllArchs, RhoReOnArch,
                         ::testing::ValuesIn(allArchs));

TEST(RhoRe, RecoversDualRankGeometry)
{
    Rig rig(Arch::RaptorLake, "S1", 13); // 16 GiB, 2 ranks, 5 fns
    RhoReverseEngineer re(rig.probe, rig.pool, 13);
    MappingRecovery rec = re.run();
    ASSERT_TRUE(rec.success) << rec.failureReason;
    EXPECT_EQ(rec.bankFns.size(), 5u);
    EXPECT_TRUE(rec.matches(rig.sys.mapping()));
}

class RhoReRandomized : public ::testing::TestWithParam<unsigned>
{
};

/**
 * Property: Algorithm 1 is layout-agnostic — it recovers randomized
 * mappings with arbitrary function structure it has never seen.
 */
TEST_P(RhoReRandomized, RecoversRandomMappings)
{
    Rng gen(1000 + GetParam());
    unsigned fns = 4; // 16 banks = S2 geometry
    AddressMapping truth =
        randomizedMapping(gen, 33, fns, 1 + GetParam() % 2);
    Rig rig(Arch::RaptorLake, DimmProfile::byId("S2"), truth,
            2000 + GetParam());
    RhoReverseEngineer re(rig.probe, rig.pool, 3000 + GetParam());
    MappingRecovery rec = re.run();
    ASSERT_TRUE(rec.success) << rec.failureReason;
    EXPECT_TRUE(rec.matches(truth)) << truth.describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RhoReRandomized,
                         ::testing::Range(0u, 6u));

TEST(Drama, FailsOnAllEvaluatedMachines)
{
    // Table 5 row "DRAMA": no correct result on any machine — its
    // small-function brute force cannot express Alder/Raptor mappings
    // and its row heuristic mislabels the overlapped row bits on
    // Comet/Rocket.
    for (Arch arch : allArchs) {
        Rig rig(arch, "S2", 21, 0.4);
        DramaReverseEngineer drama(rig.probe, rig.pool, 21);
        MappingRecovery rec = drama.run();
        EXPECT_FALSE(rec.matches(rig.sys.mapping())) << archName(arch);
    }
}

TEST(DramDig, CorrectButSlowOnCometRocket)
{
    for (Arch arch : {Arch::CometLake, Arch::RocketLake}) {
        Rig rig(arch, "S2", 23);
        DramDigReverseEngineer dd(rig.probe, rig.pool, 23);
        MappingRecovery rec = dd.run();
        ASSERT_TRUE(rec.success) << rec.failureReason;
        EXPECT_TRUE(rec.matches(rig.sys.mapping())) << archName(arch);

        // Table 5: two orders of magnitude slower than rhoHammer.
        Rig rig2(arch, "S2", 24);
        RhoReverseEngineer re(rig2.probe, rig2.pool, 24);
        MappingRecovery fast = re.run();
        EXPECT_GT(rec.simTimeNs, 20.0 * fast.simTimeNs);
    }
}

TEST(DramDig, AbortsWithoutPureRowBits)
{
    for (Arch arch : {Arch::AlderLake, Arch::RaptorLake}) {
        Rig rig(arch, "S2", 25);
        DramDigReverseEngineer dd(rig.probe, rig.pool, 25);
        MappingRecovery rec = dd.run();
        EXPECT_FALSE(rec.success);
        EXPECT_NE(rec.failureReason.find("pure row"), std::string::npos);
        EXPECT_EQ(rec.code, FailureCode::NoPureRowBits);
        EXPECT_GT(rec.simTimeNs, 0.0);
    }
}

TEST(Dare, PartiallyNonDeterministicOnComet)
{
    // Table 5: DARE succeeds on Comet/Rocket only part of the time
    // (34/50 observed in the paper).
    unsigned correct = 0;
    const unsigned runs = 12;
    for (unsigned i = 0; i < runs; ++i) {
        Rig rig(Arch::CometLake, "S2", 100 + i);
        DareReverseEngineer dare(rig.probe, rig.pool,
                                 rig.sys.mapping(), 100 + i);
        MappingRecovery rec = dare.run();
        correct += rec.success && rec.matches(rig.sys.mapping());
    }
    EXPECT_GT(correct, runs / 3);
    EXPECT_LT(correct, runs); // not deterministic
}

TEST(Dare, FailsOnAlderRaptor)
{
    for (Arch arch : {Arch::AlderLake, Arch::RaptorLake}) {
        Rig rig(arch, "S2", 31);
        DareReverseEngineer dare(rig.probe, rig.pool, rig.sys.mapping(),
                                 31);
        MappingRecovery rec = dare.run();
        EXPECT_FALSE(rec.success) << archName(arch);
        EXPECT_NE(rec.failureReason.find("superpage"),
                  std::string::npos);
        EXPECT_EQ(rec.code, FailureCode::SuperpageRangeExceeded);
        EXPECT_GT(rec.simTimeNs, 0.0);
    }
}

// ---- Structured-failure contract ------------------------------------
//
// Every failure branch a recovery tool can actually take must report
// success=false together with a stable failureReason string and a
// machine-readable FailureCode. (The remaining enum values —
// IncompleteStructure, and DRAMA's NoPureRowBits — guard internal
// invariants that no stock preset or fault schedule can violate; they
// share the same reporting pattern and stay as defense in depth.)

TEST(FailurePaths, RhoReFailsHonestlyUnderOverwhelmingNoise)
{
    // Constant (not bursty) timing noise wider than the latency-mode
    // separation defeats every robust-measurement layer by design:
    // there is no clean window to re-measure in. The tool must say so
    // instead of returning a garbage mapping.
    Rig rig(Arch::CometLake, "S2", 27);
    FaultLevels lv;
    lv.timingNoiseSigmaNs = 60.0;
    lv.timingDriftNs = 30.0;
    FaultInjector inj(FaultSchedule::constant(lv), 27);
    rig.sys.attachFaultInjector(&inj);

    RhoReverseEngineer re(rig.probe, rig.pool, 27);
    MappingRecovery rec = re.run();
    EXPECT_FALSE(rec.success);
    EXPECT_EQ(rec.code, FailureCode::NoRowFunctions);
    EXPECT_EQ(rec.failureReason, "no row-inclusive bank functions found");
    EXPECT_GT(rec.simTimeNs, 0.0);
    // The robust layers visibly fought the noise before giving up.
    EXPECT_GT(rec.measureRetry.retries, 0u);
    EXPECT_GT(rec.measureRetry.backoffNs, 0.0);
}

TEST(FailurePaths, DramaFunctionSearchIncompleteIsStructured)
{
    for (Arch arch : {Arch::AlderLake, Arch::RaptorLake}) {
        Rig rig(arch, "S2", 26);
        DramaReverseEngineer drama(rig.probe, rig.pool, 26);
        MappingRecovery rec = drama.run();
        EXPECT_FALSE(rec.success) << archName(arch);
        EXPECT_EQ(rec.code, FailureCode::FunctionSearchIncomplete);
        EXPECT_NE(rec.failureReason.find("function search incomplete"),
                  std::string::npos);
        EXPECT_GT(rec.simTimeNs, 0.0);
    }
}

TEST(ReTiming, RhoFasterThanDare)
{
    Rig rig(Arch::CometLake, "S2", 41);
    RhoReverseEngineer re(rig.probe, rig.pool, 41);
    auto fast = re.run();
    Rig rig2(Arch::CometLake, "S2", 42);
    DareReverseEngineer dare(rig2.probe, rig2.pool, rig2.sys.mapping(),
                             42);
    auto slow = dare.run();
    EXPECT_LT(fast.simTimeNs, slow.simTimeNs);
}
