/**
 * @file
 * Tests for the attack layer: pattern generation, kernel construction,
 * hammer execution, fuzzing, NOP tuning and sweeping — including the
 * headline behavioural properties (baseline fails on Alder/Raptor,
 * rhoHammer revives it).
 */

#include <gtest/gtest.h>

#include "hammer/nop_tuner.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

TEST(Pattern, RandomNonUniformShape)
{
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        auto p = HammerPattern::randomNonUniform(rng);
        EXPECT_GE(p.numPairs(), 4u);
        EXPECT_LE(p.numPairs(), 14u);
        EXPECT_GE(p.slots().size(), 32u);
        for (unsigned s : p.slots())
            EXPECT_LT(s, p.numPairs()); // every slot filled
        EXPECT_GT(p.footprintRows(), p.numPairs() * 4);
    }
}

TEST(Pattern, NonUniformFrequencies)
{
    Rng rng(4);
    auto p = HammerPattern::randomNonUniform(rng);
    std::vector<unsigned> counts(p.numPairs(), 0);
    for (unsigned s : p.slots())
        ++counts[s];
    auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
    EXPECT_GT(*mx, *mn); // pairs have different access frequencies
}

TEST(Pattern, DoubleSidedIsUniform)
{
    auto p = HammerPattern::doubleSided(32);
    EXPECT_EQ(p.numPairs(), 1u);
    for (unsigned s : p.slots())
        EXPECT_EQ(s, 0u);
}

TEST(Session, KernelStructure)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S2"));
    HammerSession session(sys, 1);
    Rng rng(5);
    auto pattern = HammerPattern::randomNonUniform(rng);

    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true);
    HammerLocation loc{2, 1000};
    HammerKernel k = session.buildKernel(pattern, loc, cfg);

    // Slots x banks x 2 rows, each access = hammer + flush.
    std::uint64_t expect_reads =
        pattern.slots().size() * cfg.numBanks * 2;
    EXPECT_EQ(k.memReadsPerPeriod(), expect_reads);
    // Distinct lines: pairs x banks x 2 aggressors.
    EXPECT_EQ(k.numLines(), pattern.numPairs() * cfg.numBanks * 2);

    // Obfuscation branch per slot; NOP run per access.
    unsigned branches = 0, nop_runs = 0, flushes = 0;
    for (const Op &op : k.body()) {
        branches += op.kind == OpKind::BranchObf;
        nop_runs += op.kind == OpKind::NopRun;
        flushes += op.kind == OpKind::ClFlushOpt;
    }
    EXPECT_EQ(branches, pattern.slots().size());
    EXPECT_EQ(nop_runs, expect_reads);
    EXPECT_EQ(flushes, expect_reads);

    // Every interned line decodes into the expected bank set and rows.
    const auto &map = sys.mapping();
    for (std::uint32_t l = 0; l < k.numLines(); ++l) {
        DramAddr da = map.decode(k.addrOf(l));
        std::uint32_t rel =
            (da.bank + map.numBanks() - loc.bank) % map.numBanks();
        EXPECT_LT(rel, cfg.numBanks);
        EXPECT_GE(da.row, loc.baseRow);
        EXPECT_LE(da.row, loc.baseRow + pattern.footprintRows());
    }
}

TEST(Session, HammerRestoresVictimData)
{
    MemorySystem sys(Arch::CometLake, DimmProfile::byId("S4"));
    HammerSession session(sys, 2);
    Rng rng(6);
    auto pattern = HammerPattern::randomNonUniform(rng);
    HammerConfig cfg = rhoConfig(Arch::CometLake, true, 200000);
    auto loc = session.randomLocation(pattern, cfg);
    auto out = session.hammer(pattern, loc, cfg);
    // Whatever flipped, a second check must start from clean data.
    auto again = sys.dimm().diffRow(loc.bank, loc.baseRow + 1,
                                    cfg.victimFill, sys.now());
    EXPECT_TRUE(again.empty());
    EXPECT_EQ(out.flips, out.flipList.size());
}

TEST(Session, LocationsRespectFootprint)
{
    MemorySystem sys(Arch::CometLake, DimmProfile::byId("S2"));
    HammerSession session(sys, 3);
    Rng rng(7);
    auto pattern = HammerPattern::randomNonUniform(rng);
    HammerConfig cfg;
    for (int i = 0; i < 100; ++i) {
        auto loc = session.randomLocation(pattern, cfg);
        EXPECT_LT(loc.bank, sys.mapping().numBanks());
        EXPECT_LT(loc.baseRow + pattern.footprintRows() + 2,
                  sys.dimm().geometry().rowsPerBank);
        EXPECT_GE(loc.baseRow, 2u);
    }
}

TEST(TunedConfigs, Shapes)
{
    for (Arch a : allArchs) {
        auto rho = rhoConfig(a, true);
        EXPECT_TRUE(rho.isPrefetch());
        EXPECT_TRUE(rho.obfuscate);
        EXPECT_EQ(rho.barrier, BarrierKind::Nop);
        EXPECT_GT(rho.nopCount, 0u);
        EXPECT_GT(rho.numBanks, 1u);
        auto bl = baselineConfig(a, false);
        EXPECT_FALSE(bl.isPrefetch());
        EXPECT_EQ(bl.numBanks, 1u);
        EXPECT_EQ(bl.barrier, BarrierKind::None);
    }
    // Newer platforms need larger pseudo-barriers.
    EXPECT_GT(tunedNopCount(Arch::RaptorLake),
              tunedNopCount(Arch::CometLake));
}

namespace
{

FuzzResult
fuzz(Arch arch, const std::string &dimm, const HammerConfig &cfg,
     std::uint64_t seed = 2)
{
    MemorySystem sys(arch, DimmProfile::byId(dimm), TrrConfig{}, seed);
    HammerSession session(sys, seed);
    PatternFuzzer fuzzer(session, seed + 1);
    FuzzParams params;
    params.numPatterns = 8;
    params.locationsPerPattern = 2;
    return fuzzer.run(cfg, params);
}

} // namespace

TEST(Headline, BaselineFailsOnRaptorRhoRevives)
{
    auto bl = fuzz(Arch::RaptorLake, "S2",
                   baselineConfig(Arch::RaptorLake, false, 300000));
    auto rho = fuzz(Arch::RaptorLake, "S2",
                    rhoConfig(Arch::RaptorLake, true, 300000));
    EXPECT_LE(bl.totalFlips, 8u);       // "completely fail"
    EXPECT_GE(rho.totalFlips, 40u);     // revived
    EXPECT_GT(rho.totalFlips, 5 * std::max<std::uint64_t>(bl.totalFlips, 1));
}

TEST(Headline, RhoBeatsBaselineOnComet)
{
    auto bl = fuzz(Arch::CometLake, "S2",
                   baselineConfig(Arch::CometLake, false, 300000));
    auto rho = fuzz(Arch::CometLake, "S2",
                    rhoConfig(Arch::CometLake, true, 300000));
    EXPECT_GT(bl.totalFlips, 0u); // baseline still works here
    EXPECT_GT(rho.totalFlips, 2 * bl.totalFlips);
}

TEST(Headline, MultiBankBeatsSingleBankForRho)
{
    auto s = fuzz(Arch::CometLake, "S4",
                  rhoConfig(Arch::CometLake, false, 300000));
    auto m = fuzz(Arch::CometLake, "S4",
                  rhoConfig(Arch::CometLake, true, 300000));
    EXPECT_GT(m.totalFlips, s.totalFlips);
}

TEST(Headline, M1DimmNeverFlips)
{
    auto rho = fuzz(Arch::CometLake, "M1",
                    rhoConfig(Arch::CometLake, true, 300000));
    EXPECT_EQ(rho.totalFlips, 0u);
}

TEST(NopTuner, InteriorOptimum)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                     TrrConfig{}, 4);
    HammerSession session(sys, 4);
    Rng rng(8);
    auto pattern = HammerPattern::randomNonUniform(rng);
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, 300000);

    auto res = tuneNops(session, pattern, cfg,
                        {0, 200, 800, 6000}, /*locations=*/3, 9);
    ASSERT_EQ(res.curve.size(), 4u);
    // Fig. 10 shape: no ordering -> ~nothing; optimum in the middle;
    // excessive padding kills the activation rate again.
    EXPECT_GT(res.bestNops, 0u);
    EXPECT_LT(res.bestNops, 6000u);
    EXPECT_GE(res.bestFlips, res.curve.front().flips);
    EXPECT_GT(res.bestFlips, res.curve.back().flips);
    // Time grows monotonically with padding.
    EXPECT_LT(res.curve[0].timeNs, res.curve[3].timeNs);
}

TEST(Sweep, DeterministicLocationsAndRates)
{
    MemorySystem sys(Arch::CometLake, DimmProfile::byId("S4"),
                     TrrConfig{}, 5);
    HammerSession session(sys, 5);
    Rng rng(10);
    auto pattern = HammerPattern::randomNonUniform(rng);
    HammerConfig cfg = rhoConfig(Arch::CometLake, true, 200000);

    auto res = sweep(session, pattern, cfg, 6, /*seed=*/77);
    EXPECT_EQ(res.flipsPerLocation.size(), 6u);
    EXPECT_EQ(res.cumulativeTimeNs.size(), 6u);
    EXPECT_GT(res.simTimeNs, 0.0);
    std::uint64_t sum = 0;
    for (auto f : res.flipsPerLocation)
        sum += f;
    EXPECT_EQ(sum, res.totalFlips);
    if (res.totalFlips > 0)
        EXPECT_GT(res.flipsPerMinute(), 0.0);
    // Cumulative time strictly increases.
    for (std::size_t i = 1; i < res.cumulativeTimeNs.size(); ++i)
        EXPECT_GT(res.cumulativeTimeNs[i], res.cumulativeTimeNs[i - 1]);
}

TEST(Tab03, BarrierStrategyOrderingPinned)
{
    // Table 3's shape on both of its architectures: serializing
    // barriers (CPUID, MFENCE) pay so much per access that they kill
    // the attack outright, while LFENCE between prefetches "does
    // almost nothing" — it drains an empty load queue and only costs
    // the per-arch issue overhead (lfenceIssueCyc, the no-wait path
    // SimCpu::execOp used to mis-charge as a flat 2 cycles).
    for (Arch arch : {Arch::AlderLake, Arch::RaptorLake}) {
        MemorySystem sys(arch, DimmProfile::byId("S2"), TrrConfig{}, 16);
        HammerSession session(sys, 16);
        HammerPattern pattern = HammerPattern::doubleSided();
        HammerConfig base = rhoConfig(arch, true, 60000);
        HammerLocation loc = session.randomLocation(pattern, base);

        auto timeWith = [&](BarrierKind b, std::uint64_t budget) {
            HammerConfig cfg = rhoConfig(arch, true, budget);
            cfg.barrier = b;
            if (b != BarrierKind::Nop)
                cfg.nopCount = 0;
            HammerOutcome out = session.hammer(pattern, loc, cfg);
            // Normalize to per-access simulated cost so the capped
            // budgets of the slow barriers stay comparable.
            return out.perf.timeNs / static_cast<double>(budget);
        };

        double none = timeWith(BarrierKind::None, 60000);
        double lfence = timeWith(BarrierKind::Lfence, 60000);
        double mfence = timeWith(BarrierKind::Mfence, 8000);
        double cpuid = timeWith(BarrierKind::Cpuid, 8000);

        // Lower rows of Table 3: the serializing barriers cost ~two
        // orders of magnitude per access (completion wait dominates,
        // so MFENCE and CPUID land in the same band) while LFENCE
        // stays within a small constant of the barrier-free loop —
        // visible at all only because the no-wait path charges the
        // (small) per-arch issue cost.
        EXPECT_GT(lfence, none) << archName(arch);
        EXPECT_LT(lfence, 3.0 * none) << archName(arch);
        EXPECT_GT(mfence, 20.0 * lfence) << archName(arch);
        EXPECT_GT(cpuid, 20.0 * lfence) << archName(arch);
    }
}

TEST(Mitigation, PtrrStopsRhoHammer)
{
    // Section 6: the BIOS "Rowhammer Prevention" (pTRR) option
    // eliminates the flips rhoHammer otherwise induces.
    TrrConfig ptrr;
    ptrr.ptrr = true;
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"), ptrr, 6);
    HammerSession session(sys, 6);
    PatternFuzzer fuzzer(session, 7);
    FuzzParams params;
    params.numPatterns = 6;
    params.locationsPerPattern = 2;
    auto res = fuzzer.run(rhoConfig(Arch::RaptorLake, true, 300000),
                          params);
    EXPECT_LE(res.totalFlips, 2u);
}
