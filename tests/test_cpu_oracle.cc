/**
 * @file
 * Differential oracle for the CPU replay engines: CpuModelKind::Blocked
 * (block-cached replay) must be byte-identical to
 * CpuModelKind::Reference (the original op-by-op interpreter) — same
 * PerfCounters including the floating-point clock, same DRAM command
 * stream, same golden trace, same flips, same randomness consumption —
 * across architectures, kernel shapes, seeds and campaign job counts.
 *
 * Also pins the ReplayRng replica (cpu/replay_rng.hh) directly against
 * the std library objects it replaces: raw engine stream, bernoulli and
 * uniform-int draws, and the state handoff both ways.
 */

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cpu/arch_params.hh"
#include "cpu/kernel.hh"
#include "cpu/replay_rng.hh"
#include "cpu/sim_cpu.hh"
#include "dram/dimm_profile.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"
#include "trace/golden.hh"
#include "trace/tracer.hh"

using namespace rho;

namespace
{

// ---------------------------------------------------------------------
// ReplayRng vs the std library
// ---------------------------------------------------------------------

/** std::mt19937_64 positioned at the same state as `r`. */
std::mt19937_64
stdEngineAt(const Rng &r)
{
    std::mt19937_64 eng;
    std::istringstream in(r.saveEngineState());
    in >> eng;
    EXPECT_TRUE(static_cast<bool>(in));
    return eng;
}

} // namespace

TEST(ReplayRng, RawStreamMatchesStdEngine)
{
    for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL, ~0ULL}) {
        Rng src(seed);
        // Start mid-block too: a partially consumed engine state must
        // import at the right read position.
        for (int skip = 0; skip < 3; ++skip)
            src.raw();
        ReplayRng rr;
        rr.importFrom(src);
        std::mt19937_64 eng = stdEngineAt(src);
        // > 2 full twist blocks (312 words each).
        for (int i = 0; i < 1000; ++i)
            ASSERT_EQ(rr.next(), eng()) << "seed " << seed << " draw " << i;
    }
}

TEST(ReplayRng, ChanceMatchesRngAndStaysInSync)
{
    const double probs[] = {-0.5, 0.0, 1e-18, 0.02, 0.1, 0.25, 0.5,
                            0.6,  0.7, 0.999, 1.0,  1.5};
    Rng ref(77);
    Rng shadow(77);
    ReplayRng rr;
    rr.importFrom(shadow);
    for (int round = 0; round < 400; ++round) {
        for (double p : probs) {
            ASSERT_EQ(rr.chance(p), ref.chance(p))
                << "p " << p << " round " << round;
        }
    }
    // The replica consumed exactly the same number of engine words.
    rr.exportTo(shadow);
    EXPECT_EQ(shadow.saveEngineState(), ref.saveEngineState());
}

TEST(ReplayRng, UniformIntMatchesRngAndStaysInSync)
{
    struct Range
    {
        std::uint64_t lo, hi;
    };
    // Power-of-two span (no rejection), degenerate, offset, a span
    // with a nonzero Lemire threshold (rejection possible), and the
    // full 2^64 span (raw-draw path).
    const Range ranges[] = {{0, 7},
                            {3, 3},
                            {1, 8},
                            {0, 0xfffffffffffffffdULL},
                            {5, ~0ULL - 1},
                            {0, ~0ULL}};
    Rng ref(123);
    Rng shadow(123);
    ReplayRng rr;
    rr.importFrom(shadow);
    for (int round = 0; round < 500; ++round) {
        for (const Range &r : ranges) {
            ASSERT_EQ(rr.uniformInt(r.lo, r.hi),
                      ref.uniformInt(r.lo, r.hi))
                << "[" << r.lo << ", " << r.hi << "] round " << round;
        }
    }
    rr.exportTo(shadow);
    EXPECT_EQ(shadow.saveEngineState(), ref.saveEngineState());
}

TEST(ReplayRng, PeekConsumeIfAdvancesByZeroOrOne)
{
    Rng ref(9);
    Rng shadow(9);
    ReplayRng rr;
    rr.importFrom(shadow);
    for (int i = 0; i < 700; ++i) {
        std::uint64_t expect = ref.raw();
        ASSERT_EQ(rr.peek(), expect);
        ASSERT_EQ(rr.peek(), expect); // peek does not advance
        if (i % 3 == 0) {
            rr.consumeIf(false); // still not advanced
            ASSERT_EQ(rr.peek(), expect);
        }
        rr.consumeIf(true);
    }
    rr.exportTo(shadow);
    EXPECT_EQ(shadow.saveEngineState(), ref.saveEngineState());
}

TEST(ReplayRng, StateRoundTripsBothWays)
{
    Rng a(31337);
    for (int i = 0; i < 500; ++i)
        a.raw(); // land mid-block
    std::string before = a.saveEngineState();
    ReplayRng rr;
    rr.importFrom(a);
    Rng b(1);
    rr.exportTo(b);
    EXPECT_EQ(b.saveEngineState(), before);
    // And the streams agree after the round trip.
    EXPECT_EQ(a.raw(), b.raw());
}

// ---------------------------------------------------------------------
// SimCpu differential: Blocked vs Reference
// ---------------------------------------------------------------------

namespace
{

/** Fixed-latency backend recording the DRAM command stream. */
class RecordingMemory : public MemoryBackend
{
  public:
    Ns
    dramAccess(PhysAddr pa, Ns now) override
    {
        accesses.push_back({pa, now});
        return 60.0;
    }

    std::vector<std::pair<PhysAddr, Ns>> accesses;
};

/** The kernel shapes the paper's attack variants produce. */
HammerKernel
shapedKernel(const std::string &shape)
{
    AddressingMode mode = shape == "jit" ? AddressingMode::JitImmediate
                                         : AddressingMode::CppIndexed;
    HammerKernel k(mode);
    for (unsigned i = 0; i < 6; ++i) {
        PhysAddr pa = 0x100000 + i * 0x10000;
        if (shape == "obfuscated")
            k.push({OpKind::BranchObf, 0, 1});
        if (shape == "nop-padded")
            k.pushNops(800);
        if (shape == "load")
            k.pushMem(OpKind::Load, pa);
        else
            k.pushMem(OpKind::PrefetchNta, pa);
        k.pushMem(OpKind::ClFlushOpt, pa);
        if (shape == "fenced")
            k.push({OpKind::Lfence, 0, 1});
    }
    k.push({OpKind::BranchLoop, 0, 1});
    return k;
}

const char *const kKernelShapes[] = {"plain",  "jit",        "obfuscated",
                                     "nop-padded", "load",   "fenced"};

/** Assert every PerfCounters field matches, including the fp clock. */
void
expectSameCounters(const PerfCounters &a, const PerfCounters &b,
                   const std::string &what)
{
    EXPECT_EQ(a.memReads, b.memReads) << what;
    EXPECT_EQ(a.dramAccesses, b.dramAccesses) << what;
    EXPECT_EQ(a.cacheHits, b.cacheHits) << what;
    EXPECT_EQ(a.pfQueueDrops, b.pfQueueDrops) << what;
    EXPECT_EQ(a.flushes, b.flushes) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts) << what;
    EXPECT_EQ(a.nops, b.nops) << what;
    // Bit-identical simulated time, not approximately equal: the
    // blocked engine hoists expressions but never reassociates them.
    EXPECT_EQ(a.timeNs, b.timeNs) << what;
}

} // namespace

TEST(CpuOracle, CountersAndDramStreamIdenticalEverywhere)
{
    for (Arch arch : allArchs) {
        for (const char *shape : kKernelShapes) {
            for (std::uint64_t seed : {1ULL, 99ULL}) {
                HammerKernel k = shapedKernel(shape);
                RecordingMemory blocked_mem, ref_mem;
                SimCpu blocked(ArchParams::forArch(arch), seed,
                               CpuModelKind::Blocked);
                SimCpu ref(ArchParams::forArch(arch), seed,
                           CpuModelKind::Reference);
                PerfCounters bc = blocked.run(k, blocked_mem, 4000);
                PerfCounters rc = ref.run(k, ref_mem, 4000);

                std::string what = archName(arch) + std::string("/")
                    + shape + "/seed " + std::to_string(seed);
                expectSameCounters(bc, rc, what);
                ASSERT_EQ(blocked_mem.accesses.size(),
                          ref_mem.accesses.size())
                    << what;
                for (std::size_t i = 0; i < ref_mem.accesses.size(); ++i) {
                    ASSERT_EQ(blocked_mem.accesses[i].first,
                              ref_mem.accesses[i].first)
                        << what << " access " << i;
                    // Same address AND same bit-exact issue time.
                    ASSERT_EQ(blocked_mem.accesses[i].second,
                              ref_mem.accesses[i].second)
                        << what << " access " << i;
                }
            }
        }
    }
}

TEST(CpuOracle, RngStreamHandoffSpansRuns)
{
    // Back-to-back runs on one core: the blocked engine borrows the
    // rng stream and must hand it back exactly where the reference
    // engine would have left it, or the second run diverges.
    for (const char *shape : {"obfuscated", "plain"}) {
        HammerKernel k = shapedKernel(shape);
        RecordingMemory m1, m2;
        SimCpu blocked(ArchParams::forArch(Arch::RaptorLake), 5,
                       CpuModelKind::Blocked);
        SimCpu ref(ArchParams::forArch(Arch::RaptorLake), 5,
                   CpuModelKind::Reference);
        blocked.run(k, m1, 3000);
        ref.run(k, m2, 3000);
        PerfCounters b2 = blocked.run(k, m1, 3000, 1e6);
        PerfCounters r2 = ref.run(k, m2, 3000, 1e6);
        expectSameCounters(b2, r2, std::string("second run, ") + shape);
    }
}

TEST(CpuOracle, ZeroBudgetMatchesReferenceEdge)
{
    HammerKernel k = shapedKernel("plain");
    RecordingMemory m1, m2;
    SimCpu blocked(ArchParams::forArch(Arch::AlderLake), 3,
                   CpuModelKind::Blocked);
    SimCpu ref(ArchParams::forArch(Arch::AlderLake), 3,
               CpuModelKind::Reference);
    PerfCounters bc = blocked.run(k, m1, 0);
    PerfCounters rc = ref.run(k, m2, 0);
    expectSameCounters(bc, rc, "zero budget");
    EXPECT_EQ(m1.accesses.size(), m2.accesses.size());
}

TEST(CpuOracle, GoldenTraceIdenticalWhenTraced)
{
    // Traced runs exercise the Traced replay specialization (no NOP
    // fusion, per-event emission); the serialized trace must match the
    // reference byte for byte — CPU retire/stall/cache events included.
    auto traced = [](CpuModelKind kind) {
        MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                         TrrConfig{}, 11);
        Tracer tracer(TraceConfig{true, CatAll, std::size_t{1} << 22});
        sys.attachTracer(&tracer);
        SimCpu cpu(sys.cpuParams(), 11, kind);
        cpu.setTracer(&tracer);
        HammerKernel k = shapedKernel("obfuscated");
        cpu.run(k, sys, 3000);
        sys.attachTracer(nullptr);
        EXPECT_EQ(tracer.dropped(), 0u);
        return goldenSerialize(tracer.events());
    };
    EXPECT_EQ(traced(CpuModelKind::Blocked),
              traced(CpuModelKind::Reference));
}

namespace
{

/** The pinned quickstart campaign, through either CPU engine. */
SweepResult
campaignRun(unsigned jobs, CpuModelKind kind,
            std::vector<TraceEvent> &trace)
{
    SystemSpec spec(Arch::RaptorLake, DimmProfile::byId("S2"));
    spec.cpuModel = kind;
    spec.trace.enabled = true;
    spec.trace.categories = CatDram | CatTrr | CatFlip | CatPhase;
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true, 2000);
    Rng rng(42);
    HammerPattern pattern = HammerPattern::randomNonUniform(rng);
    SweepParams params;
    params.numLocations = 2;
    params.jobs = jobs;
    trace.clear();
    return sweepCampaign(spec, pattern, cfg, params, 42, nullptr,
                         nullptr, &trace);
}

bool
sameFlips(const std::vector<FlipRecord> &a,
          const std::vector<FlipRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].bank != b[i].bank || a[i].row != b[i].row
            || a[i].bitOffset != b[i].bitOffset
            || a[i].toOne != b[i].toOne || a[i].when != b[i].when)
            return false;
    }
    return true;
}

} // namespace

TEST(CpuOracle, CampaignFlipsAndTracesIdenticalAcrossModesAndJobs)
{
    for (unsigned jobs : {1u, 8u}) {
        std::vector<TraceEvent> blocked_tr, ref_tr;
        SweepResult blocked =
            campaignRun(jobs, CpuModelKind::Blocked, blocked_tr);
        SweepResult ref =
            campaignRun(jobs, CpuModelKind::Reference, ref_tr);
        EXPECT_EQ(goldenSerialize(blocked_tr), goldenSerialize(ref_tr))
            << "trace diverged, jobs " << jobs;
        EXPECT_TRUE(sameFlips(blocked.flipList, ref.flipList))
            << "flip list diverged, jobs " << jobs;
        EXPECT_EQ(blocked.totalFlips, ref.totalFlips);
        EXPECT_EQ(blocked.simTimeNs, ref.simTimeNs);
    }
}

TEST(CpuOracle, Sec53ShapedSessionIdentical)
{
    // The sec53_end_to_end workload shape (single-bank rho config on
    // S4): full HammerSession through both engines must agree on acts,
    // flips and the simulated clock.
    auto sessionRun = [](CpuModelKind kind, std::vector<FlipRecord> &fl) {
        MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                         TrrConfig{}, 17);
        sys.setCpuModel(kind);
        HammerSession session(sys, 17);
        HammerConfig cfg = rhoConfig(Arch::RaptorLake, false, 60000);
        HammerPattern pattern = HammerPattern::doubleSided();
        HammerLocation loc = session.randomLocation(pattern, cfg);
        session.hammer(pattern, loc, cfg);
        fl = sys.dimm().flipLog();
        struct
        {
            std::uint64_t acts;
            Ns clock;
        } out{sys.dimm().totalActs(), sys.now()};
        return std::pair<std::uint64_t, Ns>{out.acts, out.clock};
    };
    std::vector<FlipRecord> blocked_fl, ref_fl;
    auto blocked = sessionRun(CpuModelKind::Blocked, blocked_fl);
    auto ref = sessionRun(CpuModelKind::Reference, ref_fl);
    EXPECT_EQ(blocked.first, ref.first);
    EXPECT_EQ(blocked.second, ref.second); // bit-identical sim clock
    EXPECT_TRUE(sameFlips(blocked_fl, ref_fl));
}
