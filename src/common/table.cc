#include "common/table.hh"

#include <cstdarg>
#include <cstdio>

#include "common/logging.hh"

namespace rho
{

TextTable::TextTable(std::vector<std::string> header)
    : head(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != head.size())
        panic("TextTable: row width %zu != header width %zu",
              row.size(), head.size());
    body.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(head.size(), 0);
    auto grow = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(head);
    for (const auto &r : body)
        grow(r);

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string out;
        for (std::size_t i = 0; i < row.size(); ++i) {
            out += "| ";
            out += row[i];
            out.append(widths[i] - row[i].size() + 1, ' ');
        }
        out += "|\n";
        return out;
    };

    std::string sep = "+";
    for (std::size_t w : widths)
        sep += std::string(w + 2, '-') + "+";
    sep += "\n";

    std::string out = sep + render_row(head) + sep;
    for (const auto &r : body)
        out += render_row(r);
    out += sep;
    return out;
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
strFormat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(len, '\0');
    std::vsnprintf(out.data(), len + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace rho
