/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the simulator draws from an explicitly
 * seeded Rng so that all experiments are exactly reproducible. The
 * splitMix64 hash is also exposed for "stateless" randomness, e.g. the
 * per-row weak-cell profiles that must be recomputable from (seed, row).
 */

#ifndef RHO_COMMON_RNG_HH
#define RHO_COMMON_RNG_HH

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace rho
{

/** Mix a 64-bit value into a well-distributed 64-bit hash (splitmix64). */
constexpr std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine hash values (order-sensitive). */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return splitMix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/**
 * Seeded pseudo-random source with the distribution helpers the
 * simulator needs. Thin wrapper around std::mt19937_64.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine(seed) {}

    /** Uniform integer in [lo, hi] (inclusive). */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return std::bernoulli_distribution(p)(engine);
    }

    /** Normal distribution sample. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine);
    }

    /** Log-normal distribution sample (of the underlying normal). */
    double
    logNormal(double logMean, double logSigma)
    {
        return std::lognormal_distribution<double>(logMean, logSigma)(engine);
    }

    /** Poisson distribution sample. */
    std::uint64_t
    poisson(double mean)
    {
        if (mean <= 0.0)
            return 0;
        return std::poisson_distribution<std::uint64_t>(mean)(engine);
    }

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[uniformInt(0, v.size() - 1)];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(0, i - 1);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for sub-components). */
    Rng
    fork()
    {
        return Rng(engine());
    }

    /** Raw 64-bit draw. */
    std::uint64_t raw() { return engine(); }

    /**
     * Engine state in the standard mersenne_twister_engine text
     * serialization (312 state words + read position). Lets an exact
     * engine replica (cpu/replay_rng.hh) take over the stream and hand
     * it back without disturbing it.
     */
    std::string saveEngineState() const;
    void loadEngineState(const std::string &text);

  private:
    std::mt19937_64 engine;
};

} // namespace rho

#endif // RHO_COMMON_RNG_HH
