#include "common/gf2.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace rho
{

Gf2Solver::Gf2Solver(const Gf2Matrix &m)
    : nCols(m.numCols()), fullRowRank(true)
{
    if (m.numRows() > 64)
        panic("Gf2Solver supports at most 64 rows (got %u)", m.numRows());

    // Forward elimination, tracking which combination of original rows
    // produced each echelon row so that any rhs can be reduced later.
    for (unsigned i = 0; i < m.numRows(); ++i) {
        std::uint64_t row = m.row(i);
        std::uint64_t comb = 1ULL << i;
        for (const auto &e : ech) {
            if (bit(row, e.pivot)) {
                row ^= e.row;
                comb ^= e.comb;
            }
        }
        if (row == 0) {
            zeroCombs.push_back(comb);
            fullRowRank = false;
        } else {
            unsigned pivot = 63 - std::countl_zero(row);
            ech.push_back({row, comb, pivot});
        }
    }

    // Back elimination to reduced row echelon form: clear each pivot
    // column from every other echelon row.
    for (std::size_t i = 0; i < ech.size(); ++i) {
        for (std::size_t j = 0; j < ech.size(); ++j) {
            if (i != j && bit(ech[j].row, ech[i].pivot)) {
                ech[j].row ^= ech[i].row;
                ech[j].comb ^= ech[i].comb;
            }
        }
    }

    // Null-space basis: one vector per free (non-pivot) column.
    std::uint64_t pivot_mask = 0;
    for (const auto &e : ech)
        pivot_mask |= 1ULL << e.pivot;
    for (unsigned f = 0; f < nCols; ++f) {
        if (bit(pivot_mask, f))
            continue;
        std::uint64_t n = 1ULL << f;
        for (const auto &e : ech) {
            // In RREF each row reads x_pivot + sum(free bits in row) = 0.
            if (bit(e.row, f))
                n |= 1ULL << e.pivot;
        }
        nullVecs.push_back(n);
    }
}

std::optional<std::uint64_t>
Gf2Solver::solve(std::uint64_t rhs) const
{
    for (std::uint64_t comb : zeroCombs) {
        if (parity(rhs, comb))
            return std::nullopt; // inconsistent system
    }
    std::uint64_t x = 0;
    for (const auto &e : ech) {
        if (parity(rhs, e.comb))
            x |= 1ULL << e.pivot;
    }
    return x;
}

unsigned
Gf2Matrix::rank() const
{
    // rank + nullity = #columns (rank-nullity theorem).
    Gf2Solver s(*this);
    return numCols() - static_cast<unsigned>(s.nullBasis().size());
}

std::optional<std::uint64_t>
Gf2Matrix::solve(std::uint64_t rhs) const
{
    return Gf2Solver(*this).solve(rhs);
}

std::vector<std::uint64_t>
Gf2Matrix::nullBasis() const
{
    return Gf2Solver(*this).nullBasis();
}

} // namespace rho
