#include "common/thread_pool.hh"

#include <algorithm>
#include <chrono>

namespace rho
{

unsigned
ThreadPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    unsigned n = std::max(num_threads, 1u);
    queues.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lk(stateMutex);
        stopping = true;
    }
    workCv.notify_all();
    for (auto &t : workers)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    unsigned q;
    {
        std::lock_guard<std::mutex> lk(stateMutex);
        ++pending;
        q = nextQueue;
        nextQueue = (nextQueue + 1) % queues.size();
    }
    {
        std::lock_guard<std::mutex> lk(queues[q]->mutex);
        queues[q]->tasks.push_back(std::move(task));
    }
    workCv.notify_one();
}

bool
ThreadPool::popLocal(unsigned worker_idx, std::function<void()> &out)
{
    WorkerQueue &q = *queues[worker_idx];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (q.tasks.empty())
        return false;
    // LIFO on the owner's side: best locality for freshly split work.
    out = std::move(q.tasks.back());
    q.tasks.pop_back();
    return true;
}

bool
ThreadPool::stealFrom(unsigned thief_idx, std::function<void()> &out)
{
    unsigned n = queues.size();
    for (unsigned d = 1; d < n; ++d) {
        WorkerQueue &q = *queues[(thief_idx + d) % n];
        std::lock_guard<std::mutex> lk(q.mutex);
        if (q.tasks.empty())
            continue;
        // FIFO on the thief's side: take the oldest (largest) work.
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
        stealCount.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned worker_idx)
{
    for (;;) {
        std::function<void()> task;
        if (popLocal(worker_idx, task) || stealFrom(worker_idx, task)) {
            task();
            tasksRunCount.fetch_add(1, std::memory_order_relaxed);
            bool drained;
            {
                std::lock_guard<std::mutex> lk(stateMutex);
                drained = --pending == 0;
            }
            if (drained)
                idleCv.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lk(stateMutex);
        if (stopping)
            return;
        // Re-check under the lock: a submit() may have raced our scans.
        workCv.wait_for(lk, std::chrono::milliseconds(1),
                        [this] { return stopping || pending > 0; });
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(stateMutex);
    idleCv.wait(lk, [this] { return pending == 0; });
}

PoolCounters
ThreadPool::counters() const
{
    PoolCounters c;
    c.tasksRun = tasksRunCount.load(std::memory_order_relaxed);
    c.steals = stealCount.load(std::memory_order_relaxed);
    return c;
}

} // namespace rho
