#include "common/checkpoint.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace rho
{

std::string
encodeDouble(double x)
{
    return strFormat("%016llx",
                     (unsigned long long)std::bit_cast<std::uint64_t>(x));
}

std::optional<double>
decodeDouble(const std::string &s)
{
    if (s.size() != 16)
        return std::nullopt;
    std::uint64_t bits = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return std::nullopt;
        bits = (bits << 4) | static_cast<std::uint64_t>(digit);
    }
    return std::bit_cast<double>(bits);
}

std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

namespace
{

/**
 * The byte string the record CRC covers. Task records keep the
 * original v2 image (no tag) for backward compatibility; meta records
 * prefix their tag so the two namespaces cannot be spliced into each
 * other by rewriting the tag word in place.
 */
std::string
crcImage(unsigned index, std::uint64_t seq, const std::string &payload,
         bool meta)
{
    std::ostringstream os;
    if (meta)
        os << "meta ";
    os << index << " " << seq << " " << payload;
    return os.str();
}

std::string
recordLine(unsigned index, std::uint64_t seq, const std::string &payload,
           bool meta)
{
    std::string image = crcImage(index, seq, payload, meta);
    return strFormat("%s %u %llu %08x ", meta ? "meta" : "task", index,
                     (unsigned long long)seq,
                     crc32(image.data(), image.size())) +
           payload + "\n";
}

/** Split trailing payload after `rec >> fixed fields`. */
std::string
restOfLine(std::istringstream &rec)
{
    std::string payload;
    std::getline(rec, payload);
    if (!payload.empty() && payload.front() == ' ')
        payload.erase(0, 1);
    return payload;
}

} // namespace

TaskJournal::TaskJournal(const std::string &path, std::uint64_t key,
                         const std::string &kind,
                         const JournalOptions &options)
    : filePath(path), opts(options)
{
    header = strFormat("rho-journal v2 %s %016llx", kind.c_str(),
                       (unsigned long long)key);
    std::string v1_header =
        strFormat("rho-journal v1 %s %016llx", kind.c_str(),
                  (unsigned long long)key);

    std::vector<LoadedLine> good;
    bool reusable = false;
    bool file_existed = false;
    bool needs_rewrite = false;
    {
        std::ifstream in(filePath, std::ios::binary);
        std::string line;
        if (in && std::getline(in, line)) {
            file_existed = true;
            if (line == header) {
                // v2: verify every record; stop at the first corrupt
                // one — everything after it is untrusted (a splice or
                // bit-rot can shift the tail arbitrarily).
                reusable = true;
                recov.fileVersion = 2;
                std::uint64_t prev_seq = 0;
                std::size_t total = 0;
                while (std::getline(in, line)) {
                    ++total;
                    if (in.eof()) // torn final line (no newline)
                        break;
                    std::istringstream rec(line);
                    std::string tag, crc_hex;
                    unsigned index;
                    std::uint64_t seq;
                    if (!(rec >> tag >> index >> seq >> crc_hex) ||
                        (tag != "task" && tag != "meta") ||
                        crc_hex.size() != 8)
                        break;
                    bool is_meta = tag == "meta";
                    std::uint32_t want =
                        (std::uint32_t)std::strtoul(crc_hex.c_str(),
                                                    nullptr, 16);
                    std::string payload = restOfLine(rec);
                    std::string image =
                        crcImage(index, seq, payload, is_meta);
                    if (crc32(image.data(), image.size()) != want)
                        break; // bit-rot: reject, truncate here
                    if (seq <= prev_seq)
                        break; // duplicate/reordered record
                    prev_seq = seq;
                    good.push_back(
                        {index, seq, std::move(payload), is_meta});
                }
                // Count the untrusted suffix after a corrupt record so
                // recovery reports the full loss, not just line one.
                while (std::getline(in, line))
                    ++total;
                recov.recordsLoaded = good.size();
                recov.recordsDropped = total - good.size();
                if (recov.recordsDropped > 0) {
                    recov.truncatedAtCorruption = true;
                    needs_rewrite = true;
                }
                nextSeq = prev_seq + 1;
            } else if (line == v1_header) {
                // v1 (PR 2–6): no seq, no CRC. A line is a complete
                // record only if the stream did not hit EOF mid-line.
                reusable = true;
                recov.fileVersion = 1;
                recov.upgradedFromV1 = true;
                needs_rewrite = true;
                while (std::getline(in, line) && !in.eof()) {
                    std::istringstream rec(line);
                    std::string tag;
                    unsigned index;
                    if (!(rec >> tag >> index) || tag != "task") {
                        ++recov.recordsDropped;
                        continue; // unreadable: skip, keep the rest
                    }
                    good.push_back(
                        {index, nextSeq++, restOfLine(rec), false});
                }
                recov.recordsLoaded = good.size();
            }
        }
    }

    if (!reusable) {
        // Fresh journal (or a stale one from different parameters).
        recov.discarded = file_existed;
        needs_rewrite = true;
        good.clear();
        nextSeq = 1;
    }

    for (const LoadedLine &l : good) {
        if (l.meta)
            restoredMeta[l.index] = l.payload;
        else
            restored[l.index] = l.payload;
    }

    if (needs_rewrite)
        rewriteAtomic(good);
    openAppendFd();
}

TaskJournal::~TaskJournal()
{
    if (fd >= 0) {
        if (opts.fsync == FsyncPolicy::Interval && recordsSinceSync > 0)
            ::fsync(fd);
        ::close(fd);
    }
}

void
TaskJournal::rewriteAtomic(const std::vector<LoadedLine> &lines)
{
    std::string tmp =
        strFormat("%s.tmp.%d", filePath.c_str(), (int)::getpid());
    int tfd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (tfd < 0)
        fatal("TaskJournal: cannot write %s", tmp.c_str());
    std::string content = header + "\n";
    for (const LoadedLine &l : lines)
        content += recordLine(l.index, l.seq, l.payload, l.meta);
    const char *p = content.data();
    std::size_t left = content.size();
    while (left > 0) {
        ssize_t n = ::write(tfd, p, left);
        if (n <= 0) {
            ::close(tfd);
            fatal("TaskJournal: short write to %s", tmp.c_str());
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    // The rename below publishes the new file atomically: a kill
    // before it leaves the old file intact, after it the new one.
    ::fsync(tfd);
    ::close(tfd);
    if (std::rename(tmp.c_str(), filePath.c_str()) != 0)
        fatal("TaskJournal: cannot rename %s over %s", tmp.c_str(),
              filePath.c_str());
}

void
TaskJournal::openAppendFd()
{
    if (fd >= 0)
        ::close(fd);
    fd = ::open(filePath.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd < 0)
        fatal("TaskJournal: cannot append to %s", filePath.c_str());
}

void
TaskJournal::maybeFsync()
{
    switch (opts.fsync) {
    case FsyncPolicy::Never:
        break;
    case FsyncPolicy::PerRecord:
        ::fsync(fd);
        break;
    case FsyncPolicy::Interval:
        if (++recordsSinceSync >= std::max(opts.fsyncInterval, 1u)) {
            ::fsync(fd);
            recordsSinceSync = 0;
        }
        break;
    }
}

void
TaskJournal::record(unsigned index, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(mtx);
    recordLocked(index, payload, false);
}

void
TaskJournal::recordMeta(unsigned index, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(mtx);
    recordLocked(index, payload, true);
}

void
TaskJournal::recordLocked(unsigned index, const std::string &payload,
                          bool meta)
{
    std::uint64_t seq = nextSeq++;
    std::string line = recordLine(index, seq, payload, meta);
    if (opts.bitRot) {
        // Corrupt on the way to disk (never the trailing newline so
        // the damage stays within this record's line).
        int bit = opts.bitRot((line.size() - 1) * 8);
        if (bit >= 0) {
            std::size_t pos = static_cast<std::size_t>(bit) / 8 %
                              (line.size() - 1);
            line[pos] = static_cast<char>(
                line[pos] ^ (1 << (static_cast<unsigned>(bit) % 8)));
        }
    }
    const char *p = line.data();
    std::size_t left = line.size();
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n <= 0)
            fatal("TaskJournal: cannot append to %s", filePath.c_str());
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    maybeFsync();
    if (opts.onRecord)
        opts.onRecord(index, seq);
}

void
TaskJournal::sync()
{
    std::lock_guard<std::mutex> lock(mtx);
    if (fd >= 0) {
        ::fsync(fd);
        recordsSinceSync = 0;
    }
}

std::optional<std::string>
TaskJournal::lookup(unsigned index) const
{
    auto it = restored.find(index);
    if (it == restored.end())
        return std::nullopt;
    return it->second;
}

std::optional<std::string>
TaskJournal::lookupMeta(unsigned index) const
{
    auto it = restoredMeta.find(index);
    if (it == restoredMeta.end())
        return std::nullopt;
    return it->second;
}

} // namespace rho
