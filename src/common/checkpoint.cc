#include "common/checkpoint.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace rho
{

std::string
encodeDouble(double x)
{
    return strFormat("%016llx",
                     (unsigned long long)std::bit_cast<std::uint64_t>(x));
}

std::optional<double>
decodeDouble(const std::string &s)
{
    if (s.size() != 16)
        return std::nullopt;
    std::uint64_t bits = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return std::nullopt;
        bits = (bits << 4) | static_cast<std::uint64_t>(digit);
    }
    return std::bit_cast<double>(bits);
}

TaskJournal::TaskJournal(const std::string &path, std::uint64_t key,
                         const std::string &kind)
    : filePath(path)
{
    std::string expected_header =
        strFormat("rho-journal v1 %s %016llx", kind.c_str(),
                  (unsigned long long)key);

    bool reusable = false;
    {
        std::ifstream in(filePath);
        std::string line;
        if (in && std::getline(in, line) && line == expected_header) {
            reusable = true;
            // A line is a complete record only if the stream did not
            // hit EOF mid-line; getline() sets eofbit when the final
            // line lacks a terminating newline (torn write).
            while (std::getline(in, line) && !in.eof()) {
                std::istringstream rec(line);
                std::string tag;
                unsigned index;
                if (!(rec >> tag >> index) || tag != "task")
                    continue; // unreadable record: skip, keep the rest
                std::string payload;
                std::getline(rec, payload);
                if (!payload.empty() && payload.front() == ' ')
                    payload.erase(0, 1);
                restored[index] = payload;
            }
        }
    }

    if (!reusable) {
        // Fresh journal (or a stale one from different parameters).
        std::ofstream out(filePath, std::ios::trunc);
        if (!out)
            fatal("TaskJournal: cannot write %s", filePath.c_str());
        out << expected_header << "\n" << std::flush;
    }
}

std::optional<std::string>
TaskJournal::lookup(unsigned index) const
{
    auto it = restored.find(index);
    if (it == restored.end())
        return std::nullopt;
    return it->second;
}

void
TaskJournal::record(unsigned index, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(mtx);
    std::ofstream out(filePath, std::ios::app);
    if (!out)
        fatal("TaskJournal: cannot append to %s", filePath.c_str());
    out << "task " << index << " " << payload << "\n" << std::flush;
}

} // namespace rho
