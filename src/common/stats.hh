/**
 * @file
 * Lightweight statistics helpers: running moments, histograms, and a
 * two-mode (bimodal) threshold finder used by the SBDR side channel.
 */

#ifndef RHO_COMMON_STATS_HH
#define RHO_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace rho
{

/** Online mean / variance / min / max accumulator (Welford). */
class RunningStat
{
  public:
    void add(double x);

    std::uint64_t count() const { return n; }
    double mean() const { return n ? m : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

    void clear() { *this = RunningStat(); }

  private:
    std::uint64_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    double total = 0.0;
};

/** Fixed-width histogram over [lo, hi). Out-of-range samples clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned num_bins);

    void add(double x);

    unsigned numBins() const { return bins.size(); }
    std::uint64_t binCount(unsigned i) const { return bins[i]; }
    double binCenter(unsigned i) const;
    std::uint64_t totalCount() const { return total; }

    /** Fraction of samples at or above x. */
    double fractionAbove(double x) const;

    /**
     * Find a separating threshold for a bimodal distribution: the
     * midpoint of the widest empty (or near-empty) gap between the two
     * densest regions. Used to split SBDR from non-SBDR latencies.
     *
     * @param min_upper_frac minimum fraction of samples expected in the
     *        upper (slow) mode; the search only considers thresholds
     *        leaving at least this fraction above.
     * @param near_empty_frac bins holding at most this fraction of all
     *        samples still count as part of a gap. Zero (the default)
     *        requires strictly empty bins; a small tolerance keeps the
     *        gap findable when interference sprinkles samples into it.
     */
    double separatingThreshold(double min_upper_frac = 0.005,
                               double near_empty_frac = 0.0) const;

  private:
    double lo, hi, width;
    std::vector<std::uint64_t> bins;
    std::uint64_t total = 0;
};

/** Percentile of a (copied, sorted) sample vector; p in [0, 100]. */
double percentile(std::vector<double> samples, double p);

/** Median of a (copied, sorted) sample vector; 0 when empty. */
double median(std::vector<double> samples);

/** Median absolute deviation around a given center. */
double medianAbsDeviation(const std::vector<double> &samples,
                          double center);

/**
 * MAD-based outlier rejection: keep samples within k * max(MAD,
 * mad_floor) of the median. The floor prevents a degenerate zero-MAD
 * (many identical samples) from rejecting everything else. Returns the
 * inliers in input order; never empties a non-empty input (the median
 * sample always survives).
 */
std::vector<double> madFilter(const std::vector<double> &samples,
                              double k, double mad_floor);

/**
 * Retry / backoff accounting for one resilient phase (robust timing,
 * templating, re-hammering, ...). Aggregates like ParallelStats:
 * surfaced by benches so robustness overhead is visible.
 */
struct RetryStats
{
    std::uint64_t attempts = 0;   //!< total attempts, first tries included
    std::uint64_t retries = 0;    //!< attempts beyond the first
    std::uint64_t backoffs = 0;   //!< backoff sleeps taken
    double backoffNs = 0.0;       //!< total simulated backoff time

    void
    recordAttempt()
    {
        ++attempts;
    }

    void
    recordRetry(double backoff_ns)
    {
        ++attempts;
        ++retries;
        if (backoff_ns > 0.0) {
            ++backoffs;
            backoffNs += backoff_ns;
        }
    }

    RetryStats &
    operator+=(const RetryStats &o)
    {
        attempts += o.attempts;
        retries += o.retries;
        backoffs += o.backoffs;
        backoffNs += o.backoffNs;
        return *this;
    }

    /** One-line "attempts=... retries=..." summary for bench output. */
    std::string summary() const;
};

/**
 * Execution counters of one parallel campaign (sweep / fuzz fan-out):
 * how the work was scheduled and how wall-clock time relates to the
 * simulated time the tasks covered. Filled by parallelMapOrdered().
 */
struct ParallelStats
{
    unsigned jobs = 1;            //!< worker threads used
    std::uint64_t tasksRun = 0;   //!< tasks executed
    std::uint64_t tasksRestored = 0; //!< tasks restored from a checkpoint
    std::uint64_t steals = 0;     //!< tasks migrated between workers
    double wallNs = 0.0;          //!< host wall-clock for the fan-out
    double simNs = 0.0;           //!< simulated ns covered (caller-set)
    RunningStat taskWallMs;       //!< per-task host wall-clock, ms

    /** Simulated-vs-wall speed ratio (0 when wall time unknown). */
    double
    simSpeedup() const
    {
        return wallNs > 0.0 ? simNs / wallNs : 0.0;
    }

    /** One-line human-readable summary for bench output. */
    std::string summary() const;
};

} // namespace rho

#endif // RHO_COMMON_STATS_HH
