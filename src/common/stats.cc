#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/table.hh"

namespace rho
{

void
RunningStat::add(double x)
{
    ++n;
    total += x;
    double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

double
RunningStat::variance() const
{
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo_, double hi_, unsigned num_bins)
    : lo(lo_), hi(hi_), width((hi_ - lo_) / num_bins),
      bins(num_bins, 0)
{
    if (num_bins == 0 || hi_ <= lo_)
        panic("Histogram: invalid range [%f, %f) x %u", lo_, hi_, num_bins);
}

void
Histogram::add(double x)
{
    long i = static_cast<long>((x - lo) / width);
    i = std::clamp<long>(i, 0, static_cast<long>(bins.size()) - 1);
    ++bins[i];
    ++total;
}

double
Histogram::binCenter(unsigned i) const
{
    return lo + (i + 0.5) * width;
}

double
Histogram::fractionAbove(double x) const
{
    if (total == 0)
        return 0.0;
    std::uint64_t above = 0;
    for (unsigned i = 0; i < bins.size(); ++i) {
        if (binCenter(i) >= x)
            above += bins[i];
    }
    return static_cast<double>(above) / static_cast<double>(total);
}

double
Histogram::separatingThreshold(double min_upper_frac,
                               double near_empty_frac) const
{
    // Scan for the longest run of (near-)empty bins that still leaves
    // at least min_upper_frac of the samples above it. Latency
    // distributions from the row-conflict side channel are strongly
    // bimodal, so this simple rule is robust.
    std::uint64_t needed_above =
        static_cast<std::uint64_t>(min_upper_frac * total);
    std::uint64_t near_limit =
        static_cast<std::uint64_t>(near_empty_frac * total);

    long best_start = -1, best_len = 0;
    long cur_start = -1, cur_len = 0;
    // Suffix counts to check the upper-mode mass quickly.
    std::vector<std::uint64_t> suffix(bins.size() + 1, 0);
    for (long i = bins.size() - 1; i >= 0; --i)
        suffix[i] = suffix[i + 1] + bins[i];

    for (long i = 0; i < static_cast<long>(bins.size()); ++i) {
        if (bins[i] <= near_limit) {
            if (cur_start < 0)
                cur_start = i;
            ++cur_len;
            bool enough_above = suffix[i + 1] >= std::max<std::uint64_t>(
                needed_above, 1);
            bool some_below = suffix[0] - suffix[cur_start] > 0;
            if (cur_len > best_len && enough_above && some_below) {
                best_len = cur_len;
                best_start = cur_start;
            }
        } else {
            cur_start = -1;
            cur_len = 0;
        }
    }

    if (best_start < 0) {
        // No empty gap; fall back to the midpoint between the global
        // mean and the max.
        double weighted = 0;
        for (unsigned i = 0; i < bins.size(); ++i)
            weighted += binCenter(i) * bins[i];
        double mean = total ? weighted / total : (lo + hi) / 2;
        return (mean + hi) / 2;
    }
    return lo + (best_start + best_len / 2.0) * width;
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    double idx = (p / 100.0) * (samples.size() - 1);
    std::size_t i0 = static_cast<std::size_t>(idx);
    std::size_t i1 = std::min(i0 + 1, samples.size() - 1);
    double frac = idx - i0;
    return samples[i0] * (1 - frac) + samples[i1] * frac;
}

double
median(std::vector<double> samples)
{
    return percentile(std::move(samples), 50.0);
}

double
medianAbsDeviation(const std::vector<double> &samples, double center)
{
    std::vector<double> dev;
    dev.reserve(samples.size());
    for (double x : samples)
        dev.push_back(std::abs(x - center));
    return median(std::move(dev));
}

std::vector<double>
madFilter(const std::vector<double> &samples, double k, double mad_floor)
{
    if (samples.size() < 3)
        return samples;
    double med = median(samples);
    double mad = std::max(medianAbsDeviation(samples, med), mad_floor);
    std::vector<double> inliers;
    inliers.reserve(samples.size());
    for (double x : samples) {
        if (std::abs(x - med) <= k * mad)
            inliers.push_back(x);
    }
    return inliers;
}

std::string
RetryStats::summary() const
{
    return strFormat(
        "attempts=%llu retries=%llu backoffs=%llu backoff=%.2f ms",
        (unsigned long long)attempts, (unsigned long long)retries,
        (unsigned long long)backoffs, backoffNs / 1e6);
}

std::string
ParallelStats::summary() const
{
    std::string s = strFormat(
        "jobs=%u tasks=%llu steals=%llu wall=%.0f ms sim=%.0f ms "
        "(avg task %.1f ms)",
        jobs, (unsigned long long)tasksRun, (unsigned long long)steals,
        wallNs / 1e6, simNs / 1e6, taskWallMs.mean());
    if (tasksRestored > 0) {
        s += strFormat(" restored=%llu",
                       (unsigned long long)tasksRestored);
    }
    return s;
}

} // namespace rho
