#include "common/rng.hh"

#include <sstream>

namespace rho
{

std::string
Rng::saveEngineState() const
{
    std::ostringstream out;
    out << engine;
    return out.str();
}

void
Rng::loadEngineState(const std::string &text)
{
    std::istringstream in(text);
    in >> engine;
}

} // namespace rho
