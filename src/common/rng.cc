#include "common/rng.hh"

// All Rng members are defined inline in the header; this translation unit
// exists so the library has an anchor and future non-inline helpers have a
// home.

namespace rho
{
} // namespace rho
