/**
 * @file
 * Bit-manipulation helpers used throughout address-mapping code.
 */

#ifndef RHO_COMMON_BITS_HH
#define RHO_COMMON_BITS_HH

#include <bit>
#include <cstdint>
#include <vector>

namespace rho
{

/** Extract the single bit at position pos. */
constexpr std::uint64_t
bit(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1ULL;
}

/** Set (1) or clear (0) the bit at position pos. */
constexpr std::uint64_t
setBit(std::uint64_t value, unsigned pos, std::uint64_t to)
{
    return (value & ~(1ULL << pos)) | ((to & 1ULL) << pos);
}

/** Flip the bit at position pos. */
constexpr std::uint64_t
flipBit(std::uint64_t value, unsigned pos)
{
    return value ^ (1ULL << pos);
}

/** XOR-reduce the bits selected by mask (linear bank functions). */
constexpr std::uint64_t
parity(std::uint64_t value, std::uint64_t mask)
{
    return std::popcount(value & mask) & 1ULL;
}

/** Build a mask with the given bit positions set. */
inline std::uint64_t
maskOfBits(const std::vector<unsigned> &positions)
{
    std::uint64_t m = 0;
    for (unsigned p : positions)
        m |= 1ULL << p;
    return m;
}

/** List the set bit positions of a mask, ascending. */
inline std::vector<unsigned>
bitsOfMask(std::uint64_t mask)
{
    std::vector<unsigned> out;
    while (mask) {
        unsigned p = std::countr_zero(mask);
        out.push_back(p);
        mask &= mask - 1;
    }
    return out;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    return std::countr_zero(v);
}

/** @return true iff v is a power of two (and non-zero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace rho

#endif // RHO_COMMON_BITS_HH
