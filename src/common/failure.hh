/**
 * @file
 * Structured failure codes for the attack pipeline.
 *
 * Every result struct that reports `success = false` also carries a
 * FailureCode so tooling (chaos harness, campaign drivers, CI) can
 * branch on machine-readable outcomes instead of grepping the
 * human-readable `failureReason` strings. The strings remain for
 * humans; the codes are the stable contract.
 */

#ifndef RHO_COMMON_FAILURE_HH
#define RHO_COMMON_FAILURE_HH

#include <cstdint>

namespace rho
{

/** Machine-readable failure taxonomy for RE / exploit results. */
enum class FailureCode : std::uint8_t
{
    None = 0,               //!< success (or failure not yet classified)

    // Reverse engineering (Alg. 1 + baselines).
    NoRowFunctions,         //!< no row-inclusive bank functions found
    NoPureRowBits,          //!< pure row bits undetectable
    FunctionSearchIncomplete, //!< baseline could not explain all sets
    SuperpageRangeExceeded, //!< functions above superpage-resolvable bits
    IncompleteStructure,    //!< row/column structure not recovered
    MeasurementUnstable,    //!< timings never stabilized within budget

    // Exploit pipeline (template -> massage -> hammer -> PTE).
    AllocationFailed,       //!< allocator returned no block
    NoFlipsTemplated,       //!< templating produced zero flips
    NoExploitableFlips,     //!< flips exist but none hit PFN bits
    MassageFailed,          //!< could not steer a PT page to the victim
    FlipNotReproduced,      //!< templated flip failed to re-trigger
    RetryBudgetExhausted,   //!< all configured retries consumed

    // Campaign service (src/service supervisor + journal layer).
    WorkerCrashed,          //!< worker process exited abnormally
    WorkerHung,             //!< worker missed heartbeats / deadline
    ShardQuarantined,       //!< shard exhausted its retry budget
    JournalCorrupted,       //!< journal records failed CRC / were lost

    // Pattern synthesis / fuzzing (src/hammer pattern engines).
    InvalidPatternParams,   //!< degenerate PatternParams ranges
    PatternUnplaceable,     //!< footprint exceeds the bank's row space

    // Multi-tenant VM layer (src/os/vm + cross-VM exploit paths).
    CrossVmPlacementFailed, //!< no templated flip lands in the victim
                            //!< VM's physical partition
};

/** Stable identifier string (used in logs and machine output). */
constexpr const char *
failureCodeName(FailureCode c)
{
    switch (c) {
    case FailureCode::None: return "none";
    case FailureCode::NoRowFunctions: return "no-row-functions";
    case FailureCode::NoPureRowBits: return "no-pure-row-bits";
    case FailureCode::FunctionSearchIncomplete:
        return "function-search-incomplete";
    case FailureCode::SuperpageRangeExceeded:
        return "superpage-range-exceeded";
    case FailureCode::IncompleteStructure: return "incomplete-structure";
    case FailureCode::MeasurementUnstable: return "measurement-unstable";
    case FailureCode::AllocationFailed: return "allocation-failed";
    case FailureCode::NoFlipsTemplated: return "no-flips-templated";
    case FailureCode::NoExploitableFlips: return "no-exploitable-flips";
    case FailureCode::MassageFailed: return "massage-failed";
    case FailureCode::FlipNotReproduced: return "flip-not-reproduced";
    case FailureCode::RetryBudgetExhausted:
        return "retry-budget-exhausted";
    case FailureCode::WorkerCrashed: return "worker-crashed";
    case FailureCode::WorkerHung: return "worker-hung";
    case FailureCode::ShardQuarantined: return "shard-quarantined";
    case FailureCode::JournalCorrupted: return "journal-corrupted";
    case FailureCode::InvalidPatternParams:
        return "invalid-pattern-params";
    case FailureCode::PatternUnplaceable: return "pattern-unplaceable";
    case FailureCode::CrossVmPlacementFailed:
        return "cross-vm-placement-failed";
    }
    return "unknown";
}

} // namespace rho

#endif // RHO_COMMON_FAILURE_HH
