/**
 * @file
 * Dense linear algebra over GF(2) with 64-bit word rows.
 *
 * DRAM address mappings are linear maps over GF(2): every output bit
 * (bank-function bit, row bit, column bit) is the XOR of a subset of
 * physical address bits. Constructing a physical address for a desired
 * (bank, row, column) triple therefore reduces to solving a linear
 * system, which this module provides.
 */

#ifndef RHO_COMMON_GF2_HH
#define RHO_COMMON_GF2_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace rho
{

/**
 * A matrix over GF(2) with up to 64 columns. Each row is stored as a
 * 64-bit mask; column j of row i is bit j of rows[i].
 */
class Gf2Matrix
{
  public:
    Gf2Matrix(unsigned num_cols = 0) : nCols(num_cols) {}

    /** Append a row given as a bitmask of its set columns. */
    void addRow(std::uint64_t mask) { rows.push_back(mask); }

    unsigned numRows() const { return rows.size(); }
    unsigned numCols() const { return nCols; }
    std::uint64_t row(unsigned i) const { return rows[i]; }

    /** Rank via Gaussian elimination (does not modify *this). */
    unsigned rank() const;

    /**
     * Solve A x = b. Rows of A are this matrix; b is a bit per row
     * (bit i of rhs corresponds to row i; supports up to 64 rows).
     *
     * @return a particular solution mask, or nullopt if inconsistent.
     *         Free variables are set to zero.
     */
    std::optional<std::uint64_t> solve(std::uint64_t rhs) const;

    /**
     * Basis of the null space: masks n such that A n = 0. The set of
     * all solutions of A x = b is particular + span(null basis).
     */
    std::vector<std::uint64_t> nullBasis() const;

    /** @return true iff the rows are linearly independent. */
    bool rowsIndependent() const { return rank() == numRows(); }

  private:
    unsigned nCols;
    std::vector<std::uint64_t> rows;
};

/**
 * Precomputed solver for repeated solves against a fixed matrix.
 * Performs the elimination once; each solve() is then O(rows).
 */
class Gf2Solver
{
  public:
    explicit Gf2Solver(const Gf2Matrix &m);

    /** Whether the matrix has full row rank (every rhs is solvable). */
    bool fullRank() const { return fullRowRank; }

    /** Particular solution with free variables zero; nullopt if none. */
    std::optional<std::uint64_t> solve(std::uint64_t rhs) const;

    /** Null-space basis of the matrix. */
    const std::vector<std::uint64_t> &nullBasis() const { return nullVecs; }

  private:
    unsigned nCols;
    // Echelon rows paired with the rhs-combination mask that produced
    // them, so a new rhs can be reduced without re-eliminating.
    struct EchRow { std::uint64_t row; std::uint64_t comb; unsigned pivot; };
    std::vector<EchRow> ech;
    std::vector<std::uint64_t> zeroCombs; // rows reduced to zero
    std::vector<std::uint64_t> nullVecs;
    bool fullRowRank;
};

} // namespace rho

#endif // RHO_COMMON_GF2_HH
