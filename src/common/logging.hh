/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * panic()  - an internal invariant was violated (a library bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something is suspicious but the run can continue.
 * inform() - plain status output.
 */

#ifndef RHO_COMMON_LOGGING_HH
#define RHO_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rho
{

/** Print a formatted message and abort(); use for internal bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr; execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is currently enabled. */
bool verbose();

} // namespace rho

#endif // RHO_COMMON_LOGGING_HH
