/**
 * @file
 * Deterministic ordered parallel map on top of the work-stealing
 * ThreadPool.
 *
 * The contract every campaign engine builds on: task i writes only
 * result slot i, results are consumed in index order, and each task
 * derives all of its randomness from hashCombine(seed, i) — so the
 * merged output is bit-identical for any job count, including the
 * jobs == 1 serial path (which runs inline without a pool).
 */

#ifndef RHO_COMMON_PARALLEL_HH
#define RHO_COMMON_PARALLEL_HH

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <vector>

#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace rho
{

/** Resolve a user-facing job count: 0 means hardware_concurrency. */
inline unsigned
resolveJobs(unsigned jobs)
{
    return jobs == 0 ? ThreadPool::defaultJobs() : jobs;
}

/**
 * Run `fn(i)` for i in [0, num_tasks) and return the results in index
 * order. With more than one job, tasks run on a work-stealing pool;
 * the first exception (by task index) is rethrown after all tasks
 * quiesce. `fn` must be callable concurrently from multiple threads
 * and must not share mutable state across indices.
 */
template <typename Fn>
auto
parallelMapOrdered(unsigned num_tasks, unsigned jobs, Fn &&fn,
                   ParallelStats *stats = nullptr)
    -> std::vector<decltype(fn(0u))>
{
    using Result = decltype(fn(0u));
    using Clock = std::chrono::steady_clock;

    unsigned n_jobs = resolveJobs(jobs);
    std::vector<Result> results(num_tasks);
    std::vector<std::exception_ptr> errors(num_tasks);
    RunningStat task_ms;
    std::mutex task_ms_mutex;

    auto t0 = Clock::now();
    auto run_one = [&](unsigned i) {
        auto task_start = Clock::now();
        try {
            results[i] = fn(i);
        } catch (...) {
            errors[i] = std::current_exception();
        }
        double ms = std::chrono::duration<double, std::milli>(
                        Clock::now() - task_start)
                        .count();
        std::lock_guard<std::mutex> lk(task_ms_mutex);
        task_ms.add(ms);
    };

    if (n_jobs <= 1 || num_tasks <= 1) {
        for (unsigned i = 0; i < num_tasks; ++i)
            run_one(i);
        if (stats) {
            stats->jobs = 1;
            stats->tasksRun = num_tasks;
            stats->steals = 0;
        }
    } else {
        ThreadPool pool(std::min<unsigned>(n_jobs, num_tasks));
        for (unsigned i = 0; i < num_tasks; ++i)
            pool.submit([&run_one, i] { run_one(i); });
        pool.wait();
        if (stats) {
            PoolCounters c = pool.counters();
            stats->jobs = pool.numThreads();
            stats->tasksRun = c.tasksRun;
            stats->steals = c.steals;
        }
    }
    if (stats) {
        stats->wallNs = std::chrono::duration<double, std::nano>(
                            Clock::now() - t0)
                            .count();
        stats->taskWallMs = task_ms;
    }

    for (unsigned i = 0; i < num_tasks; ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }
    return results;
}

} // namespace rho

#endif // RHO_COMMON_PARALLEL_HH
