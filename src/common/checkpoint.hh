/**
 * @file
 * TaskJournal: append-only checkpoint journal for parallel campaigns.
 *
 * A campaign that can be killed mid-run (OOM killer, ^C, a cluster
 * pre-emption) records each completed task's serialized result as one
 * journal line. On restart, completed tasks are replayed from the
 * journal instead of re-executed; because every task is independently
 * seeded via hashCombine(seed, index) and results are merged in index
 * order, a resumed campaign is bit-identical to an uninterrupted one
 * for any --jobs value.
 *
 * Format: plain text, one record per line —
 *
 *   rho-journal v1 <kind> <key-hex>        (header)
 *   task <index> <payload>                 (one per completed task)
 *
 * The key fingerprints the campaign parameters; opening a journal
 * whose key differs from the current campaign discards it (the file
 * is truncated and restarted). A record line is only trusted if
 * complete — a torn final line from a kill mid-write is ignored, as
 * is everything a parser cannot read. Doubles are serialized as
 * bit-exact hex so replayed results round-trip exactly.
 */

#ifndef RHO_COMMON_CHECKPOINT_HH
#define RHO_COMMON_CHECKPOINT_HH

#include <bit>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace rho
{

/** Serialize a double bit-exactly (hex of its IEEE-754 image). */
std::string encodeDouble(double x);

/** Inverse of encodeDouble; nullopt on malformed input. */
std::optional<double> decodeDouble(const std::string &s);

/** Append-only, crash-tolerant per-task result journal. */
class TaskJournal
{
  public:
    /**
     * Open (or create) the journal at `path` for a campaign
     * fingerprinted by `key`. An existing file with a matching header
     * has its complete task records loaded for replay; a mismatched
     * or unparsable file is discarded and rewritten. `kind` names the
     * campaign type ("sweep", "fuzz") purely for human inspection.
     */
    TaskJournal(const std::string &path, std::uint64_t key,
                const std::string &kind);

    /** Payload of a previously completed task, if journaled. */
    std::optional<std::string> lookup(unsigned index) const;

    /** Number of restorable task records loaded at open. */
    std::size_t restoredCount() const { return restored.size(); }

    /**
     * Record a completed task. Thread-safe; the line is flushed to
     * the file before returning so a later kill cannot lose it.
     * Payloads must not contain newlines.
     */
    void record(unsigned index, const std::string &payload);

    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
    std::unordered_map<unsigned, std::string> restored;
    std::mutex mtx;
};

} // namespace rho

#endif // RHO_COMMON_CHECKPOINT_HH
