/**
 * @file
 * TaskJournal: append-only checkpoint journal for parallel campaigns.
 *
 * A campaign that can be killed mid-run (OOM killer, ^C, a cluster
 * pre-emption, a supervisor SIGKILL) records each completed task's
 * serialized result as one journal line. On restart, completed tasks
 * are replayed from the journal instead of re-executed; because every
 * task is independently seeded via hashCombine(seed, index) and
 * results are merged in index order, a resumed campaign is
 * bit-identical to an uninterrupted one for any --jobs value, any
 * worker-process count, and any kill or corruption point.
 *
 * Current format (v2): plain text, one record per line —
 *
 *   rho-journal v2 <kind> <key-hex>                  (header)
 *   task <index> <seq> <crc-hex> <payload>           (one per task)
 *   meta <index> <seq> <crc-hex> <payload>           (aux records)
 *
 * `meta` is a second record kind sharing the task sequence space but
 * a separate index namespace: campaign engines use it for per-phase
 * bookkeeping that is not a task result (the evolutionary fuzzer
 * journals one generation-digest meta record per generation so a
 * resumed search can prove the restored trial outcomes belong to the
 * same deterministic evolution trajectory). `seq` is a strictly
 * monotonic per-file sequence number and `crc` a CRC32 (IEEE) over
 * "<index> <seq> <payload>" for task records and
 * "meta <index> <seq> <payload>" for meta records (the tag is part of
 * the image so the two namespaces cannot be spliced into each other). A record is trusted
 * only if its line is newline-terminated, parses, its CRC matches and
 * its sequence number strictly increases — so torn final lines, rotted
 * bits, duplicated lines and spliced tails are all detected. Recovery
 * is self-healing: loading truncates at the *first* corrupt record
 * (everything before it replays; the lost suffix re-executes) and the
 * repaired file is rewritten atomically (write temp + rename) so a
 * later kill mid-repair cannot make things worse.
 *
 * v1 files (PR 2–6 binaries: no seq, no CRC) still load: complete,
 * parseable lines are restored with the legacy rules, then the file is
 * upgraded in place to v2 via the same atomic rewrite.
 *
 * The key fingerprints the campaign parameters; opening a journal
 * whose key (or kind) differs from the current campaign discards it.
 * Doubles are serialized as bit-exact hex so replayed results
 * round-trip exactly.
 */

#ifndef RHO_COMMON_CHECKPOINT_HH
#define RHO_COMMON_CHECKPOINT_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace rho
{

/** Serialize a double bit-exactly (hex of its IEEE-754 image). */
std::string encodeDouble(double x);

/** Inverse of encodeDouble; nullopt on malformed input. */
std::optional<double> decodeDouble(const std::string &s);

/** CRC32 (IEEE 802.3, reflected) — the journal record checksum. */
std::uint32_t crc32(const void *data, std::size_t len);

/** Durability/overhead trade-off for journal appends. */
enum class FsyncPolicy : std::uint8_t
{
    Never,     //!< OS page cache only (journal survives process death,
               //!< not a host power cut)
    PerRecord, //!< fsync after every record (default; a reaped record
               //!< is durable)
    Interval,  //!< fsync every JournalOptions::fsyncInterval records
};

/** Optional knobs and hooks for a TaskJournal. */
struct JournalOptions
{
    FsyncPolicy fsync = FsyncPolicy::PerRecord;
    unsigned fsyncInterval = 32; //!< used by FsyncPolicy::Interval

    /**
     * Fault hook (chaos/testing): called once per appended record with
     * the record line's size in bits; return a bit index to corrupt
     * that record on disk, or -1 to write it intact. The flipped bit
     * makes the record fail its CRC on the next open — exercising the
     * self-healing recovery path end to end.
     */
    std::function<int(std::size_t num_bits)> bitRot;

    /**
     * Observer called after each record is durably appended (service
     * workers wire their status-file heartbeat here).
     */
    std::function<void(unsigned index, std::uint64_t seq)> onRecord;
};

/** What TaskJournal found (and did) while opening a file. */
struct JournalRecovery
{
    unsigned fileVersion = 0;       //!< 1 or 2; 0 = no reusable file
    std::size_t recordsLoaded = 0;  //!< restorable records
    std::size_t recordsDropped = 0; //!< corrupt record + lost suffix
    bool truncatedAtCorruption = false; //!< v2 self-healing fired
    bool upgradedFromV1 = false;    //!< v1 file rewritten as v2
    bool discarded = false;         //!< key/kind mismatch: file reset
};

/** Append-only, crash-tolerant, corruption-detecting task journal. */
class TaskJournal
{
  public:
    /**
     * Open (or create) the journal at `path` for a campaign
     * fingerprinted by `key`. An existing v2 file with a matching
     * header has its verified task records loaded for replay (and is
     * repaired in place if a corrupt suffix is found); a v1 file is
     * loaded with the legacy rules and upgraded. A mismatched or
     * unparsable file is discarded and rewritten. `kind` names the
     * campaign type ("sweep3", "fuzz3") and is part of the match.
     */
    TaskJournal(const std::string &path, std::uint64_t key,
                const std::string &kind,
                const JournalOptions &options = JournalOptions{});
    ~TaskJournal();

    TaskJournal(const TaskJournal &) = delete;
    TaskJournal &operator=(const TaskJournal &) = delete;

    /** Payload of a previously completed task, if journaled. */
    std::optional<std::string> lookup(unsigned index) const;

    /** Payload of a previously recorded meta record, if journaled. */
    std::optional<std::string> lookupMeta(unsigned index) const;

    /** Number of restorable task records loaded at open. */
    std::size_t restoredCount() const { return restored.size(); }

    /** All restored records (service-layer shard merge reads this). */
    const std::unordered_map<unsigned, std::string> &
    entries() const
    {
        return restored;
    }

    /**
     * Record a completed task. Thread-safe; the line is written (and,
     * per the fsync policy, made durable) before returning, so a later
     * kill cannot lose it. Payloads must not contain newlines.
     */
    void record(unsigned index, const std::string &payload);

    /**
     * Record an auxiliary (non-task) entry under the meta namespace.
     * Same durability and thread-safety contract as record().
     */
    void recordMeta(unsigned index, const std::string &payload);

    /** Force an fsync of everything appended so far. */
    void sync();

    const std::string &path() const { return filePath; }

    /** What the constructor found on disk. */
    const JournalRecovery &recovery() const { return recov; }

  private:
    struct LoadedLine
    {
        unsigned index;
        std::uint64_t seq;
        std::string payload;
        bool meta = false;
    };

    /** Write header + records to a temp file and rename into place. */
    void rewriteAtomic(const std::vector<LoadedLine> &lines);
    void openAppendFd();
    void maybeFsync();

    void recordLocked(unsigned index, const std::string &payload,
                      bool meta);

    std::string filePath;
    std::string header;
    std::unordered_map<unsigned, std::string> restored;
    std::unordered_map<unsigned, std::string> restoredMeta;
    JournalOptions opts;
    JournalRecovery recov;
    std::uint64_t nextSeq = 1;
    unsigned recordsSinceSync = 0;
    int fd = -1;
    std::mutex mtx;
};

} // namespace rho

#endif // RHO_COMMON_CHECKPOINT_HH
