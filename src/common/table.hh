/**
 * @file
 * ASCII table renderer used by the benchmark harnesses to print
 * paper-style tables and figure series.
 */

#ifndef RHO_COMMON_TABLE_HH
#define RHO_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace rho
{

/** A simple left-padded ASCII table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace rho

#endif // RHO_COMMON_TABLE_HH
