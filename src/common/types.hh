/**
 * @file
 * Fundamental scalar types shared across the rhohammer libraries.
 */

#ifndef RHO_COMMON_TYPES_HH
#define RHO_COMMON_TYPES_HH

#include <cstdint>

namespace rho
{

/** A simulated physical address (byte granularity). */
using PhysAddr = std::uint64_t;

/** A simulated virtual address (byte granularity). */
using VirtAddr = std::uint64_t;

/** Simulated time in nanoseconds. */
using Ns = double;

/** CPU core cycles (fractional cycles allowed for sub-cycle costs). */
using Cycles = double;

/** Size of a cache line in bytes (x86). */
constexpr std::uint64_t cacheLineBytes = 64;

/** Size of a base page in bytes. */
constexpr std::uint64_t pageBytes = 4096;

/** Round an address down to its cache-line base. */
constexpr PhysAddr
lineOf(PhysAddr pa)
{
    return pa & ~(cacheLineBytes - 1);
}

/** Round an address down to its page base. */
constexpr PhysAddr
pageOf(PhysAddr pa)
{
    return pa & ~(pageBytes - 1);
}

} // namespace rho

#endif // RHO_COMMON_TYPES_HH
