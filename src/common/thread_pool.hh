/**
 * @file
 * Work-stealing thread pool for campaign-level parallelism.
 *
 * Tasks are coarse (one full hammer-session simulation each), so the
 * pool optimizes for predictable semantics, not sub-microsecond
 * dispatch: each worker owns a deque fed round-robin at submission,
 * pops its own work LIFO, and steals FIFO from siblings when idle.
 * The pool never reorders *results* — callers that need ordered
 * output index into a pre-sized result array (see parallel.hh).
 */

#ifndef RHO_COMMON_THREAD_POOL_HH
#define RHO_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rho
{

/** Execution counters of one pool run (wired into ParallelStats). */
struct PoolCounters
{
    std::uint64_t tasksRun = 0; //!< tasks executed to completion
    std::uint64_t steals = 0;   //!< tasks taken from a sibling's deque
};

/**
 * Fixed-size work-stealing pool. Submit any number of tasks, then
 * wait() for quiescence; counters accumulate across waves. The pool
 * is not reentrant (tasks must not submit tasks).
 */
class ThreadPool
{
  public:
    /** @param num_threads worker count; clamped to >= 1. */
    explicit ThreadPool(unsigned num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Queue one task. Thread-safe w.r.t. other submit() calls. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished running. */
    void wait();

    unsigned numThreads() const { return workers.size(); }

    /** Snapshot of the execution counters (call after wait()). */
    PoolCounters counters() const;

    /**
     * `hardware_concurrency`, clamped to >= 1 — the meaning of
     * "jobs = 0" everywhere a job count is configurable.
     */
    static unsigned defaultJobs();

  private:
    struct WorkerQueue
    {
        std::deque<std::function<void()>> tasks;
        std::mutex mutex;
    };

    void workerLoop(unsigned worker_idx);
    bool popLocal(unsigned worker_idx, std::function<void()> &out);
    bool stealFrom(unsigned thief_idx, std::function<void()> &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> workers;

    std::mutex stateMutex;
    std::condition_variable workCv;  //!< workers: work may be available
    std::condition_variable idleCv;  //!< waiters: pending may be zero
    std::uint64_t pending = 0;       //!< submitted but not yet finished
    bool stopping = false;
    unsigned nextQueue = 0;          //!< round-robin submission cursor

    std::atomic<std::uint64_t> tasksRunCount{0};
    std::atomic<std::uint64_t> stealCount{0};
};

} // namespace rho

#endif // RHO_COMMON_THREAD_POOL_HH
