#include "os/buddy_allocator.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "fault/fault_injector.hh"

namespace rho
{

BuddyAllocator::BuddyAllocator(std::uint64_t mem_bytes,
                               double reserved_frac, std::uint64_t seed)
    : memSize(mem_bytes), numPages(mem_bytes / pageBytes),
      freeLists(maxOrder + 1)
{
    if (!isPow2(mem_bytes) || mem_bytes < (pageBytes << maxOrder))
        fatal("BuddyAllocator: memory size must be a power of two and "
              ">= one max-order block");

    // Seed the free lists with max-order blocks.
    std::uint64_t block_pages = 1ULL << maxOrder;
    for (std::uint64_t p = 0; p < numPages; p += block_pages)
        freeLists[maxOrder].insert(p);

    // Punch reserved holes: small blocks scattered across memory.
    Rng rng(seed);
    std::uint64_t reserved_target =
        static_cast<std::uint64_t>(reserved_frac * numPages);
    std::uint64_t reserved = 0;
    while (reserved < reserved_target) {
        unsigned order = static_cast<unsigned>(rng.uniformInt(0, 4));
        auto blk = alloc(order);
        if (!blk)
            break;
        reserved += 1ULL << order;
    }
}

std::optional<PhysAddr>
BuddyAllocator::alloc(unsigned order, bool fault_exempt)
{
    if (order > maxOrder)
        return std::nullopt;

    if (injector && !fault_exempt) {
        if (injector->fragmentSpike())
            fragmentationSpike();
        if (injector->allocFails())
            return std::nullopt;
    }

    unsigned from = order;
    while (from <= maxOrder && freeLists[from].empty())
        ++from;
    if (from > maxOrder)
        return std::nullopt;

    std::uint64_t page = *freeLists[from].begin();
    freeLists[from].erase(freeLists[from].begin());

    // Split down to the requested order, freeing the upper halves.
    while (from > order) {
        --from;
        std::uint64_t buddy = page + (1ULL << from);
        freeLists[from].insert(buddy);
    }
    return page * pageBytes;
}

void
BuddyAllocator::free(PhysAddr addr, unsigned order)
{
    if (addr % (pageBytes << order) != 0)
        panic("BuddyAllocator::free: misaligned block");
    std::uint64_t page = pageIndexOf(addr);

    while (order < maxOrder) {
        std::uint64_t buddy = page ^ (1ULL << order);
        auto it = freeLists[order].find(buddy);
        if (it == freeLists[order].end())
            break;
        freeLists[order].erase(it);
        page = std::min(page, buddy);
        ++order;
    }
    freeLists[order].insert(page);
}

std::uint64_t
BuddyAllocator::freeBytes() const
{
    std::uint64_t pages = 0;
    for (unsigned o = 0; o <= maxOrder; ++o)
        pages += freeLists[o].size() << o;
    return pages * pageBytes;
}

std::size_t
BuddyAllocator::freeBlocksAt(unsigned order) const
{
    return freeLists[order].size();
}

void
BuddyAllocator::fragmentationSpike(unsigned blocks)
{
    constexpr unsigned frag_order = 2;
    for (unsigned b = 0; b < blocks && !freeLists[maxOrder].empty();
         ++b) {
        auto last = std::prev(freeLists[maxOrder].end());
        std::uint64_t page = *last;
        freeLists[maxOrder].erase(last);
        std::uint64_t step = 1ULL << frag_order;
        for (std::uint64_t p = page; p < page + (1ULL << maxOrder);
             p += step)
            freeLists[frag_order].insert(p);
    }
}

std::vector<std::pair<PhysAddr, unsigned>>
BuddyAllocator::drainBelow(unsigned min_order)
{
    std::vector<std::pair<PhysAddr, unsigned>> drained;
    for (unsigned o = 0; o < min_order && o <= maxOrder; ++o) {
        while (!freeLists[o].empty()) {
            std::uint64_t page = *freeLists[o].begin();
            freeLists[o].erase(freeLists[o].begin());
            drained.push_back({page * pageBytes, o});
        }
    }
    return drained;
}

} // namespace rho
