#include "os/vm.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace rho
{

namespace
{
constexpr std::uint64_t rowBlockOrder = 1; // 8 KiB = one row (linear maps)
constexpr std::uint64_t rowBlockBytes = pageBytes << rowBlockOrder;
} // namespace

const char *
vmPlacementName(VmPlacement p)
{
    switch (p) {
      case VmPlacement::Contiguous:
        return "contiguous";
      case VmPlacement::Interleaved:
        return "interleaved";
      case VmPlacement::Guarded:
        return "guarded";
    }
    return "?";
}

VmManager::VmManager(MemorySystem &sys_, BuddyAllocator &buddy_,
                     VmConfig cfg_)
    : sys(sys_), buddy(buddy_), cfg(cfg_), s2(sys_, buddy_)
{
}

bool
VmManager::createTenants(unsigned count, std::uint64_t bytes_each)
{
    if (numTenants != 0)
        panic("VmManager: tenants already created");
    if (count == 0 || bytes_each == 0 || bytes_each % pageBytes != 0)
        panic("VmManager: bad tenant geometry");

    partitions.assign(count, {});
    bool ok;
    if (cfg.bankPartition)
        ok = carveBankPartition(count, bytes_each);
    else if (cfg.placement == VmPlacement::Interleaved)
        ok = carveInterleaved(count, bytes_each);
    else
        ok = carveContiguous(count, bytes_each,
                             cfg.placement == VmPlacement::Guarded);
    if (!ok) {
        releaseCarve();
        return false;
    }

    // All partitions are carved; now install the stage-2 identity-by-
    // index mappings. The stage-2 PT pages come from what the buddy
    // still holds (hypervisor memory), never from a tenant partition.
    for (unsigned t = 0; t < count; ++t) {
        VmId vm = static_cast<VmId>(t + 1);
        const auto &frames = partitions[t];
        for (std::uint64_t i = 0; i < frames.size(); ++i) {
            std::uint64_t gpa = i * pageBytes;
            if (!s2.mapPage(stage2Pid(vm), gpa, frames[i], true)) {
                releaseCarve();
                return false;
            }
            owners[frames[i] / pageBytes] = vm;
            hostToGpa[frames[i] / pageBytes] = gpa;
            RHO_TRACE(sys.tracer(), sys.now(), EventKind::VmMapped, 0, vm,
                      i, frames[i] / pageBytes);
        }
    }

    freeFrames.assign(count, {});
    for (unsigned t = 0; t < count; ++t)
        for (std::uint64_t i = 0; i < partitions[t].size(); ++i)
            freeFrames[t].insert(i);
    numTenants = count;
    return true;
}

bool
VmManager::carveContiguous(unsigned count, std::uint64_t bytes_each,
                           bool guarded)
{
    constexpr std::uint64_t blockBytes = pageBytes
                                         << BuddyAllocator::maxOrder;
    for (unsigned t = 0; t < count; ++t) {
        std::uint64_t got = 0;
        while (got < bytes_each) {
            auto blk = buddy.alloc(BuddyAllocator::maxOrder);
            if (!blk)
                return false;
            carvedBlocks.emplace_back(*blk, BuddyAllocator::maxOrder);
            std::uint64_t take =
                std::min(blockBytes, bytes_each - got);
            for (std::uint64_t off = 0; off < take; off += pageBytes)
                partitions[t].push_back(*blk + off);
            got += take;
        }
        // Hold a guard block between this tenant and the next. The
        // buddy allocates lowest-address-first, so every frame of
        // tenant t sits below the guard, and every frame of tenant
        // t+1 above it: >= 4 MiB of host-address separation.
        if (guarded && t + 1 < count) {
            auto g = buddy.alloc(BuddyAllocator::maxOrder);
            if (!g)
                return false;
            carvedBlocks.emplace_back(*g, BuddyAllocator::maxOrder);
            guardBlocks.push_back(*g);
        }
    }
    return true;
}

bool
VmManager::carveInterleaved(unsigned count, std::uint64_t bytes_each)
{
    // Row-sized blocks dealt round-robin: consecutive rows alternate
    // owners, so nearly every tenant row has another tenant's rows
    // within the blast radius.
    std::uint64_t rounds = (bytes_each + rowBlockBytes - 1)
                           / rowBlockBytes;
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (unsigned t = 0; t < count; ++t) {
            if (partitions[t].size() * pageBytes >= bytes_each)
                continue;
            auto blk = buddy.alloc(rowBlockOrder);
            if (!blk)
                return false;
            carvedBlocks.emplace_back(*blk, rowBlockOrder);
            std::uint64_t take =
                std::min(rowBlockBytes,
                         bytes_each - partitions[t].size() * pageBytes);
            for (std::uint64_t off = 0; off < take; off += pageBytes)
                partitions[t].push_back(*blk + off);
        }
    }
    return true;
}

std::uint64_t
VmManager::bankSignature(PhysAddr block) const
{
    // The set of banks the lines of an aligned row-sized block decode
    // into. Two blocks' bank sets are cosets of the same subgroup (the
    // GF(2) span of the bank functions restricted to in-block bits),
    // hence identical or disjoint — so hashing the signature assigns
    // whole cosets, and distinct signatures mean disjoint bank sets.
    const AddressMapping &map = sys.mapping();
    std::vector<std::uint32_t> banks;
    for (std::uint64_t off = 0; off < rowBlockBytes;
         off += cacheLineBytes)
        banks.push_back(map.decode(block + off).bank);
    std::sort(banks.begin(), banks.end());
    banks.erase(std::unique(banks.begin(), banks.end()), banks.end());
    std::uint64_t sig = 0x5160f00dULL;
    for (std::uint32_t b : banks)
        sig = hashCombine(sig, b);
    return sig;
}

bool
VmManager::carveBankPartition(unsigned count, std::uint64_t bytes_each)
{
    // Draw row-sized blocks and assign each to the tenant its bank-set
    // signature hashes to; blocks hashing to a full tenant are parked
    // and returned to the buddy afterwards.
    std::vector<std::pair<PhysAddr, unsigned>> rejected;
    std::vector<std::uint64_t> have(count, 0);
    unsigned done = 0;
    while (done < count) {
        auto blk = buddy.alloc(rowBlockOrder);
        if (!blk) {
            for (auto &[a, o] : rejected)
                buddy.free(a, o);
            return false;
        }
        unsigned t = static_cast<unsigned>(bankSignature(*blk) % count);
        if (have[t] >= bytes_each) {
            rejected.emplace_back(*blk, rowBlockOrder);
            continue;
        }
        carvedBlocks.emplace_back(*blk, rowBlockOrder);
        std::uint64_t take =
            std::min(rowBlockBytes, bytes_each - have[t]);
        for (std::uint64_t off = 0; off < take; off += pageBytes)
            partitions[t].push_back(*blk + off);
        have[t] += take;
        if (have[t] >= bytes_each)
            ++done;
    }
    for (auto &[a, o] : rejected)
        buddy.free(a, o);
    return true;
}

void
VmManager::releaseCarve()
{
    for (auto &[a, o] : carvedBlocks)
        buddy.free(a, o);
    carvedBlocks.clear();
    guardBlocks.clear();
    partitions.clear();
    owners.clear();
    hostToGpa.clear();
}

const std::vector<PhysAddr> &
VmManager::framesOf(VmId vm) const
{
    if (vm == 0 || vm > numTenants)
        panic("VmManager::framesOf: no such tenant");
    return partitions[vm - 1];
}

std::uint64_t
VmManager::gpaBytes(VmId vm) const
{
    return framesOf(vm).size() * pageBytes;
}

VmId
VmManager::ownerOf(PhysAddr hpa) const
{
    auto it = owners.find(hpa / pageBytes);
    return it == owners.end() ? 0 : it->second;
}

std::optional<PhysAddr>
VmManager::gpaToHpa(VmId vm, PhysAddr gpa)
{
    auto hpa = s2.translate(stage2Pid(vm), gpa);
    if (!hpa)
        return std::nullopt;
    return *hpa;
}

std::optional<PhysAddr>
VmManager::hpaToGpa(VmId vm, PhysAddr hpa) const
{
    auto it = hostToGpa.find(hpa / pageBytes);
    if (it == hostToGpa.end())
        return std::nullopt;
    auto own = owners.find(hpa / pageBytes);
    if (own == owners.end() || own->second != vm)
        return std::nullopt;
    return it->second + (hpa & (pageBytes - 1));
}

std::optional<std::uint64_t>
VmManager::allocGuestFrame(VmId vm)
{
    if (vm == 0 || vm > numTenants)
        panic("VmManager::allocGuestFrame: no such tenant");
    auto &fl = freeFrames[vm - 1];
    if (fl.empty())
        return std::nullopt;
    std::uint64_t frame = *fl.begin();
    fl.erase(fl.begin());
    return frame * pageBytes;
}

void
VmManager::freeGuestFrame(VmId vm, std::uint64_t gpa_frame)
{
    if (vm == 0 || vm > numTenants)
        panic("VmManager::freeGuestFrame: no such tenant");
    freeFrames[vm - 1].insert(gpa_frame / pageBytes);
}

bool
VmManager::vmMapPage(VmId vm, std::uint64_t pid, VirtAddr va,
                     std::uint64_t gpa_frame, bool writable)
{
    auto key = std::make_tuple(vm, pid, va & ~((pageBytes << 9) - 1));
    auto it = guestPtPages.find(key);
    std::uint64_t pt_gpa;
    if (it != guestPtPages.end()) {
        pt_gpa = it->second;
    } else {
        auto got = allocGuestFrame(vm);
        if (!got)
            return false;
        pt_gpa = *got;
        auto pt_hpa = gpaToHpa(vm, pt_gpa);
        if (!pt_hpa)
            return false;
        // Fresh tables are zeroed through the DRAM data path, like the
        // stage-1 manager does for host PT pages.
        for (unsigned i = 0; i < 512; ++i)
            s2.writeQword(*pt_hpa + i * 8, 0);
        guestPtPages.emplace(key, pt_gpa);
    }
    std::uint64_t index = (va >> 12) & 0x1ff;
    auto pte_hpa = gpaToHpa(vm, pt_gpa + index * 8);
    if (!pte_hpa)
        return false;
    // Guest PTEs store guest frame numbers; stage-2 resolves them at
    // walk time.
    s2.writeQword(*pte_hpa, pte::make(gpa_frame, writable));
    return true;
}

std::optional<PhysAddr>
VmManager::vmTranslate(VmId vm, std::uint64_t pid, VirtAddr va)
{
    auto pt_gpa = vmPtPageGpa(vm, pid, va);
    if (!pt_gpa)
        return std::nullopt;
    std::uint64_t index = (va >> 12) & 0x1ff;
    auto pte_hpa = gpaToHpa(vm, *pt_gpa + index * 8);
    if (!pte_hpa)
        return std::nullopt;
    std::uint64_t e = s2.readQword(*pte_hpa);
    if (!(e & pte::presentBit))
        return std::nullopt;
    return gpaToHpa(vm, pte::frameOf(e) + (va & (pageBytes - 1)));
}

std::optional<std::uint64_t>
VmManager::vmPtPageGpa(VmId vm, std::uint64_t pid, VirtAddr va) const
{
    auto it = guestPtPages.find(
        std::make_tuple(vm, pid, va & ~((pageBytes << 9) - 1)));
    if (it == guestPtPages.end())
        return std::nullopt;
    return it->second;
}

std::optional<PhysAddr>
VmManager::vmPtPageHpa(VmId vm, std::uint64_t pid, VirtAddr va)
{
    auto gpa = vmPtPageGpa(vm, pid, va);
    if (!gpa)
        return std::nullopt;
    return gpaToHpa(vm, *gpa);
}

GuestSteerResult
VmManager::steerGuestPtPage(VmId vm, std::uint64_t pid,
                            std::uint64_t target_gpa_page,
                            std::uint64_t backing_gpa_frame)
{
    GuestSteerResult res;
    if (vm == 0 || vm > numTenants)
        panic("VmManager::steerGuestPtPage: no such tenant");
    auto &fl = freeFrames[vm - 1];
    std::uint64_t target_frame = target_gpa_page / pageBytes;
    if (!fl.count(target_frame)) {
        res.code = FailureCode::MassageFailed;
        res.failureReason = "target guest frame is not free";
        return res;
    }

    // Hold every free frame below the target so the lowest-first
    // guest allocator's next pick is exactly the target.
    std::vector<std::uint64_t> held;
    for (auto it = fl.begin(); it != fl.end() && *it < target_frame;) {
        held.push_back(*it);
        it = fl.erase(it);
    }
    res.allocationsBurned = static_cast<unsigned>(held.size());
    res.timeNs = (static_cast<Ns>(held.size()) + 1.0) * allocCostNs;

    // A fresh spray VA forces a new guest PT page; its table frame is
    // drawn from the massaged allocator.
    VirtAddr spray = nextSprayVa;
    nextSprayVa += pageBytes << 9;
    bool mapped = vmMapPage(vm, pid, spray, backing_gpa_frame, true);

    for (std::uint64_t f : held)
        fl.insert(f);

    auto landed = vmPtPageGpa(vm, pid, spray);
    if (!mapped || !landed || *landed != target_gpa_page) {
        res.code = FailureCode::MassageFailed;
        res.failureReason = "guest PT page missed the target frame";
        return res;
    }
    res.success = true;
    res.ptPageGpa = *landed;
    res.sprayBase = spray;
    return res;
}

} // namespace rho
