#include "os/pagemap.hh"

#include "common/logging.hh"

namespace rho
{

AddressSpace::AddressSpace(BuddyAllocator &buddy_) : buddy(buddy_)
{
}

AddressSpace::~AddressSpace()
{
    for (auto [va, pa] : pages)
        buddy.free(pa, 0);
}

std::optional<VirtAddr>
AddressSpace::mmap(std::uint64_t bytes)
{
    std::uint64_t npages = (bytes + pageBytes - 1) / pageBytes;
    VirtAddr base = nextVirt;
    for (std::uint64_t i = 0; i < npages; ++i) {
        auto pa = buddy.allocPage();
        if (!pa) {
            // Out of physical memory (or injected allocation fault):
            // unwind the partial mapping so the caller sees a clean
            // failure instead of a crash.
            warn("AddressSpace::mmap: out of physical memory");
            for (std::uint64_t j = 0; j < i; ++j) {
                VirtAddr va = base + j * pageBytes;
                auto it = pages.find(va);
                reverse.erase(it->second);
                buddy.free(it->second, 0);
                pages.erase(it);
            }
            return std::nullopt;
        }
        VirtAddr va = base + i * pageBytes;
        pages[va] = *pa;
        reverse[*pa] = va;
    }
    nextVirt = base + npages * pageBytes + pageBytes; // guard gap
    return base;
}

std::optional<VirtAddr>
AddressSpace::mmapContiguous(unsigned order)
{
    auto pa = buddy.alloc(order);
    if (!pa)
        return std::nullopt;
    std::uint64_t npages = 1ULL << order;
    VirtAddr base = nextVirt;
    for (std::uint64_t i = 0; i < npages; ++i) {
        VirtAddr va = base + i * pageBytes;
        PhysAddr p = *pa + i * pageBytes;
        pages[va] = p;
        reverse[p] = va;
    }
    nextVirt = base + npages * pageBytes + pageBytes;
    return base;
}

void
AddressSpace::munmapPage(VirtAddr va)
{
    auto it = pages.find(pageOf(va));
    if (it == pages.end())
        panic("AddressSpace::munmapPage: page not mapped");
    reverse.erase(it->second);
    buddy.free(it->second, 0);
    pages.erase(it);
}

std::optional<PhysAddr>
AddressSpace::virtToPhys(VirtAddr va) const
{
    auto it = pages.find(pageOf(va));
    if (it == pages.end())
        return std::nullopt;
    return it->second + (va & (pageBytes - 1));
}

std::optional<VirtAddr>
AddressSpace::physToVirt(PhysAddr pa) const
{
    auto it = reverse.find(pageOf(pa));
    if (it == reverse.end())
        return std::nullopt;
    return it->second + (pa & (pageBytes - 1));
}

PhysPool::PhysPool(BuddyAllocator &buddy, double fraction)
    : memBytes(buddy.memBytes())
{
    std::uint64_t total_pages = memBytes / pageBytes;
    ownedBitmap.assign(total_pages, false);
    std::uint64_t target =
        static_cast<std::uint64_t>(fraction * total_pages);
    unsigned misses = 0;
    while (pageList.size() < target) {
        // Grab large blocks first (fast and realistic: the kernel
        // serves large anonymous mappings from high orders).
        auto blk = buddy.alloc(BuddyAllocator::maxOrder);
        unsigned order = BuddyAllocator::maxOrder;
        if (!blk) {
            blk = buddy.allocPage();
            order = 0;
            if (!blk) {
                // A single failure may be an injected transient fault
                // rather than true exhaustion; give up only after a
                // few consecutive misses.
                if (++misses >= 4)
                    break;
                continue;
            }
        }
        misses = 0;
        std::uint64_t npages = 1ULL << order;
        for (std::uint64_t i = 0; i < npages; ++i) {
            PhysAddr pa = *blk + i * pageBytes;
            ownedBitmap[pa / pageBytes] = true;
            pageList.push_back(pa);
        }
    }
}

std::optional<PhysAddr>
PhysPool::pairBase(Rng &rng, std::uint64_t diff_mask,
                   unsigned max_tries) const
{
    for (unsigned i = 0; i < max_tries; ++i) {
        PhysAddr a = randomAddr(rng);
        PhysAddr b = a ^ diff_mask;
        if (b < memBytes && contains(b))
            return a;
    }
    return std::nullopt;
}

double
PhysPool::coverage() const
{
    return static_cast<double>(pageList.size())
        / (memBytes / pageBytes);
}

} // namespace rho
