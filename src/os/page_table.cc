#include "os/page_table.hh"

#include "common/logging.hh"

namespace rho
{

PageTableManager::PageTableManager(MemorySystem &sys_,
                                   BuddyAllocator &buddy_)
    : sys(sys_), buddy(buddy_)
{
}

std::uint64_t
PageTableManager::readQword(PhysAddr pa)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(sys.readByte(pa + i)) << (8 * i);
    }
    return v;
}

void
PageTableManager::writeQword(PhysAddr pa, std::uint64_t value)
{
    for (unsigned i = 0; i < 8; ++i)
        sys.writeByte(pa + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

bool
PageTableManager::mapPage(std::uint64_t pid, VirtAddr va, PhysAddr pa,
                          bool writable)
{
    TableKey key = keyFor(pid, va);
    auto it = ptPages.find(key);
    if (it == ptPages.end()) {
        auto pt = buddy.allocPage();
        if (!pt) {
            warn("PageTableManager: out of memory for PT page");
            return false;
        }
        it = ptPages.emplace(key, *pt).first;
        // Zero the fresh table through the data path.
        for (unsigned i = 0; i < 512; ++i)
            writeQword(*pt + i * 8, 0);
    }
    unsigned idx = (va >> 12) & 0x1ff;
    writeQword(it->second + idx * 8, pte::make(pa, writable));
    return true;
}

std::optional<PhysAddr>
PageTableManager::pteAddrOf(std::uint64_t pid, VirtAddr va)
{
    auto it = ptPages.find(keyFor(pid, va));
    if (it == ptPages.end())
        return std::nullopt;
    unsigned idx = (va >> 12) & 0x1ff;
    return it->second + idx * 8;
}

std::optional<PhysAddr>
PageTableManager::ptPageOf(std::uint64_t pid, VirtAddr va)
{
    auto it = ptPages.find(keyFor(pid, va));
    if (it == ptPages.end())
        return std::nullopt;
    return it->second;
}

std::optional<PhysAddr>
PageTableManager::translate(std::uint64_t pid, VirtAddr va)
{
    auto pte_addr = pteAddrOf(pid, va);
    if (!pte_addr)
        return std::nullopt;
    std::uint64_t e = readQword(*pte_addr);
    if (!(e & pte::presentBit))
        return std::nullopt;
    return pte::frameOf(e) | (va & (pageBytes - 1));
}

} // namespace rho
