/**
 * @file
 * Page-table substrate for the end-to-end PTE corruption attack.
 *
 * Leaf page tables live in simulated DRAM: every PTE is stored through
 * the memory controller's data path, so RowHammer bit flips in a
 * page-table page genuinely corrupt translations, exactly the effect
 * the exploit (paper section 5.3) relies on.
 */

#ifndef RHO_OS_PAGE_TABLE_HH
#define RHO_OS_PAGE_TABLE_HH

#include <map>
#include <optional>

#include "memsys/memory_system.hh"
#include "os/buddy_allocator.hh"

namespace rho
{

/** x86-64 style PTE encoding (simplified). */
namespace pte
{
constexpr std::uint64_t presentBit = 1ULL << 0;
constexpr std::uint64_t writableBit = 1ULL << 1;
constexpr std::uint64_t userBit = 1ULL << 2;
constexpr std::uint64_t frameMask = 0x000ffffffffff000ULL;

constexpr std::uint64_t
make(PhysAddr frame, bool writable)
{
    return (frame & frameMask) | presentBit | userBit |
           (writable ? writableBit : 0);
}

constexpr PhysAddr frameOf(std::uint64_t e) { return e & frameMask; }
} // namespace pte

/**
 * Manages leaf page-table pages (512 PTEs each, covering 2 MiB of
 * virtual space) for all simulated processes.
 */
class PageTableManager
{
  public:
    PageTableManager(MemorySystem &sys, BuddyAllocator &buddy);

    /**
     * Install a translation; allocates the PT page on first touch.
     * @return false if the PT page allocation failed (no mapping is
     *         installed); existing-table mappings always succeed.
     */
    [[nodiscard]] bool mapPage(std::uint64_t pid, VirtAddr va,
                               PhysAddr pa, bool writable);

    /**
     * MMU walk: reads the PTE from simulated DRAM, so hammered flips
     * take effect. @return target physical address, if present.
     */
    std::optional<PhysAddr> translate(std::uint64_t pid, VirtAddr va);

    /** Physical address of the leaf PTE for (pid, va). */
    std::optional<PhysAddr> pteAddrOf(std::uint64_t pid, VirtAddr va);

    /** Physical base of the PT page covering (pid, va), if any. */
    std::optional<PhysAddr> ptPageOf(std::uint64_t pid, VirtAddr va);

    /** Raw PTE read/write through the DRAM data path. */
    std::uint64_t readQword(PhysAddr pa);
    void writeQword(PhysAddr pa, std::uint64_t value);

    std::uint64_t ptPagesAllocated() const { return ptPages.size(); }

  private:
    using TableKey = std::pair<std::uint64_t, VirtAddr>;

    TableKey
    keyFor(std::uint64_t pid, VirtAddr va) const
    {
        return {pid, va & ~((pageBytes << 9) - 1)}; // 2 MiB region
    }

    MemorySystem &sys;
    BuddyAllocator &buddy;
    std::map<TableKey, PhysAddr> ptPages;
};

} // namespace rho

#endif // RHO_OS_PAGE_TABLE_HH
