/**
 * @file
 * Linux-style buddy allocator over the simulated physical address
 * space.
 *
 * The end-to-end exploit (paper section 5.3) relies on massaging the
 * kernel's physical page allocator: exhausting low orders to obtain
 * 4 MiB-contiguous regions as an unprivileged user, and steering a
 * page-table page into a previously templated victim frame. This
 * model reproduces the allocator mechanics those techniques depend
 * on: per-order free lists, splitting, and buddy coalescing.
 */

#ifndef RHO_OS_BUDDY_ALLOCATOR_HH
#define RHO_OS_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace rho
{

class FaultInjector;

/** Physical frame allocator with per-order free lists. */
class BuddyAllocator
{
  public:
    /** Largest block order (2^10 pages = 4 MiB), as in Linux. */
    static constexpr unsigned maxOrder = 10;

    /**
     * @param mem_bytes size of physical memory (power of two).
     * @param reserved_frac fraction of memory pre-reserved in small
     *        scattered blocks (kernel text/data, firmware holes),
     *        making the initial free layout realistic.
     * @param seed randomness for the reserved holes.
     */
    BuddyAllocator(std::uint64_t mem_bytes, double reserved_frac = 0.03,
                   std::uint64_t seed = 0xb0dd1);

    /**
     * Allocate a 2^order-page block; lowest-address-first policy.
     *
     * @param fault_exempt skip the attached fault injector. Rollback
     *        paths that must reclaim a specific just-freed block use
     *        this: an injected failure there would corrupt allocator
     *        bookkeeping rather than model pressure, and the injected
     *        fault was already charged to the operation being rolled
     *        back.
     */
    std::optional<PhysAddr> alloc(unsigned order,
                                  bool fault_exempt = false);

    /** Allocate one 4 KiB page. */
    std::optional<PhysAddr> allocPage() { return alloc(0); }

    /** Return a block to the allocator (coalesces buddies). */
    void free(PhysAddr addr, unsigned order);

    /** Free bytes remaining. */
    std::uint64_t freeBytes() const;

    /** Number of free blocks at exactly this order. */
    std::size_t freeBlocksAt(unsigned order) const;

    /**
     * Exhaust every free block of order < min_order (allocating them
     * to the caller). Afterwards any page-sized allocation must split
     * a high-order block, which is the contiguity guarantee the
     * exploit's templating phase uses.
     *
     * @return the drained blocks so the caller can free them later.
     */
    std::vector<std::pair<PhysAddr, unsigned>>
    drainBelow(unsigned min_order);

    std::uint64_t memBytes() const { return memSize; }

    /**
     * Attach a fault injector (nullptr detaches): alloc() may then
     * fail spuriously (kernel under memory pressure) or be preceded by
     * a fragmentation spike. The injector must outlive the allocator
     * or be detached first.
     */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }

    /**
     * Fragment up to `blocks` max-order free blocks into order-2
     * pieces without coalescing, emulating a burst of kernel
     * allocation churn. Free byte count is unchanged; high-order
     * contiguity is destroyed until buddies lazily re-merge through
     * free(). Highest-address blocks are taken first, mirroring how
     * background churn eats the reserve the exploit's lowest-first
     * allocations have not touched yet.
     */
    void fragmentationSpike(unsigned blocks = 4);

  private:
    std::uint64_t pageIndexOf(PhysAddr a) const { return a / pageBytes; }

    std::uint64_t memSize;
    std::uint64_t numPages;
    // Free lists hold page indices (block base), kept sorted so
    // allocation order is deterministic.
    std::vector<std::set<std::uint64_t>> freeLists;
    FaultInjector *injector = nullptr;
};

} // namespace rho

#endif // RHO_OS_BUDDY_ALLOCATOR_HH
