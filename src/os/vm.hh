/**
 * @file
 * Lightweight multi-tenant VM layer over the OS substrate.
 *
 * Each tenant VM owns a guest-physical address space (GPA, a dense
 * [0, partitionBytes) range) backed by a partition of host-physical
 * frames carved from the BuddyAllocator. Second-stage translation
 * (GPA -> HPA) is stacked on the existing PageTableManager: the
 * stage-2 leaf tables live in simulated DRAM under per-VM hypervisor
 * pids, so RowHammer flips can genuinely corrupt stage-2 entries.
 * Guest page tables in turn live in *guest* frames and store GPA
 * frame numbers; a guest MMU walk reads the PTE through DRAM (and
 * through on-die ECC when enabled), then stage-2 translates both the
 * PTE location and the target frame.
 *
 * Placement policies (the defense surface, after the inter-VM
 * RowHammer evaluation framework in PAPERS.md):
 *
 *  - Contiguous: each tenant gets max-order (4 MiB) blocks,
 *    lowest-address first. Tenants touch at partition boundaries, so
 *    boundary rows are cross-VM hammerable.
 *  - Interleaved: tenants take turns drawing order-1 (8 KiB = one
 *    row on the linear mappings) blocks — maximal row adjacency
 *    between tenants, the worst case for isolation.
 *  - Guarded: Contiguous plus a held max-order guard block between
 *    consecutive tenants. A 4 MiB guard spans >= 16 rows in every
 *    bank on the modelled geometries, far beyond the +-2 blast
 *    radius, so the policy claims zero cross-VM flips.
 *
 * Orthogonally, per-tenant bank partitioning (VmConfig::bankPartition)
 * carves order-1 blocks by their bank-set signature: the banks an
 * aligned 8 KiB block decodes into form cosets of the GF(2) closure
 * of the in-block bank-function bits, so two blocks' bank sets are
 * either identical or disjoint, and hashing the signature to a tenant
 * gives tenants pairwise-disjoint bank sets. Disturbance never leaves
 * the hammered bank, so this defense also claims zero cross-VM flips.
 */

#ifndef RHO_OS_VM_HH
#define RHO_OS_VM_HH

#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/failure.hh"
#include "os/page_table.hh"

namespace rho
{

/** Tenant identifier; 0 is the hypervisor / unowned memory. */
using VmId = std::uint16_t;

/** How tenant partitions are carved from host memory. */
enum class VmPlacement
{
    Contiguous, //!< max-order blocks per tenant, tenants adjacent
    Interleaved, //!< row-sized blocks round-robin across tenants
    Guarded,    //!< Contiguous + held guard block between tenants
};

/** VM-layer configuration (defense toggles live here + SystemSpec). */
struct VmConfig
{
    VmPlacement placement = VmPlacement::Contiguous;
    /**
     * Per-tenant bank partitioning: carve by bank-set signature so
     * tenants never share a DRAM bank. Overrides the row-geometry
     * aspect of `placement`.
     */
    bool bankPartition = false;
};

/** Stable display name ("contiguous", "interleaved", "guarded"). */
const char *vmPlacementName(VmPlacement p);

/** Outcome of steering a guest PT page onto a chosen guest frame. */
struct GuestSteerResult
{
    bool success = false;
    FailureCode code = FailureCode::None;
    std::string failureReason;
    std::uint64_t ptPageGpa = 0; //!< where the guest PT page landed
    VirtAddr sprayBase = 0;      //!< first guest VA the table covers
    unsigned allocationsBurned = 0;
    Ns timeNs = 0.0;
};

/**
 * The hypervisor: carves tenant partitions, owns stage-2 translation,
 * and models the guest-side paging the cross-VM exploit attacks.
 */
class VmManager
{
  public:
    VmManager(MemorySystem &sys, BuddyAllocator &buddy,
              VmConfig cfg = VmConfig{});

    /**
     * Carve `count` tenant partitions of `bytes_each` host bytes
     * (page-granular) according to the configured placement, then
     * install the stage-2 GPA->HPA mappings (emitting one VmMapped
     * event per frame). Tenants are VmIds 1..count. All partitions
     * are carved in one call; a second call is rejected.
     *
     * @return false (with no partitions) when host memory or stage-2
     *         table allocation is exhausted.
     */
    [[nodiscard]] bool createTenants(unsigned count,
                                     std::uint64_t bytes_each);

    unsigned tenantCount() const { return numTenants; }
    const VmConfig &config() const { return cfg; }

    /**
     * True when the configuration claims to *prevent* cross-VM flips
     * outright (Guarded placement or bank partitioning) — the claim
     * the tenant-isolation property test falsifies against.
     */
    bool
    claimsNoCrossVmFlips() const
    {
        return cfg.bankPartition || cfg.placement == VmPlacement::Guarded;
    }

    /** Host frames of one tenant, in GPA order (frame i backs GPA
     *  i * pageBytes). */
    const std::vector<PhysAddr> &framesOf(VmId vm) const;

    /** Guest-physical size of a tenant's partition. */
    std::uint64_t gpaBytes(VmId vm) const;

    /** Owning tenant of a host address (0 = hypervisor/unowned). */
    VmId ownerOf(PhysAddr hpa) const;

    /**
     * Stage-2 walk through simulated DRAM: hammered stage-2 entries
     * take effect. @return host address, if mapped.
     */
    std::optional<PhysAddr> gpaToHpa(VmId vm, PhysAddr gpa);

    /** Inverse lookup from the installed (uncorrupted) mapping. */
    std::optional<PhysAddr> hpaToGpa(VmId vm, PhysAddr hpa) const;

    // ---- Guest paging -----------------------------------------------

    /**
     * Guest frame allocator: lowest-GPA-first free list per tenant.
     * @return GPA of the allocated frame.
     */
    std::optional<std::uint64_t> allocGuestFrame(VmId vm);
    void freeGuestFrame(VmId vm, std::uint64_t gpa_frame);

    /**
     * Install a guest translation va -> gpa_frame for (vm, pid).
     * Allocates the guest PT page (from the tenant's own frames) on
     * first touch of a 2 MiB region; PTEs store GPA frame numbers and
     * are written through DRAM at their stage-2-translated host
     * addresses.
     */
    [[nodiscard]] bool vmMapPage(VmId vm, std::uint64_t pid, VirtAddr va,
                                 std::uint64_t gpa_frame, bool writable);

    /**
     * Guest MMU walk: PTE read through DRAM (and on-die ECC), then
     * stage-2 translation of the target. @return host address.
     */
    std::optional<PhysAddr> vmTranslate(VmId vm, std::uint64_t pid,
                                        VirtAddr va);

    /** GPA of the guest PT page covering (vm, pid, va), if any. */
    std::optional<std::uint64_t> vmPtPageGpa(VmId vm, std::uint64_t pid,
                                             VirtAddr va) const;

    /** Host address of that PT page (via the installed stage-2 map). */
    std::optional<PhysAddr> vmPtPageHpa(VmId vm, std::uint64_t pid,
                                        VirtAddr va);

    /**
     * Massage the guest frame allocator so the next guest PT page
     * lands exactly on `target_gpa_page`: hold every free frame below
     * the target, map a fresh spray VA (PTE -> backing_gpa_frame) to
     * trigger the PT allocation, then release the held frames.
     */
    GuestSteerResult steerGuestPtPage(VmId vm, std::uint64_t pid,
                                      std::uint64_t target_gpa_page,
                                      std::uint64_t backing_gpa_frame);

    /** Stage-2 table manager (introspection; hypervisor pids). */
    PageTableManager &stage2() { return s2; }

    /** Per-allocation modelled cost (hypercall + fault path). */
    static constexpr Ns allocCostNs = 3000.0;

  private:
    std::uint64_t
    stage2Pid(VmId vm) const
    {
        return 0xF0000000ULL + vm;
    }

    bool carveContiguous(unsigned count, std::uint64_t bytes_each,
                         bool guarded);
    bool carveInterleaved(unsigned count, std::uint64_t bytes_each);
    bool carveBankPartition(unsigned count, std::uint64_t bytes_each);
    void releaseCarve();
    std::uint64_t bankSignature(PhysAddr block) const;

    MemorySystem &sys;
    BuddyAllocator &buddy;
    VmConfig cfg;
    PageTableManager s2;
    unsigned numTenants = 0;

    /** Tenant host frames in GPA order; index vm-1. */
    std::vector<std::vector<PhysAddr>> partitions;
    /** Allocation bookkeeping for releaseCarve on failure. */
    std::vector<std::pair<PhysAddr, unsigned>> carvedBlocks;
    /** Guard blocks held by the hypervisor (never mapped or freed). */
    std::vector<PhysAddr> guardBlocks;
    /** host page index -> owner. */
    std::unordered_map<std::uint64_t, VmId> owners;
    /** host page index -> GPA page (per the installed stage-2 map). */
    std::unordered_map<std::uint64_t, std::uint64_t> hostToGpa;
    /** Free guest frames (frame index), lowest-first; index vm-1. */
    std::vector<std::set<std::uint64_t>> freeFrames;
    /** (vm, pid, 2 MiB-aligned va) -> GPA of the guest PT page. */
    std::map<std::tuple<VmId, std::uint64_t, VirtAddr>, std::uint64_t>
        guestPtPages;
    VirtAddr nextSprayVa = 0x600000000000ULL;
};

} // namespace rho

#endif // RHO_OS_VM_HH
