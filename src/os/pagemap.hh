/**
 * @file
 * Process address-space model with a /proc/pid/pagemap-style
 * virtual-to-physical query interface, plus the large physical page
 * pool the reverse-engineering phase allocates.
 */

#ifndef RHO_OS_PAGEMAP_HH
#define RHO_OS_PAGEMAP_HH

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "os/buddy_allocator.hh"

namespace rho
{

/**
 * A process's mapped pages. mmap() takes frames from the buddy
 * allocator; virtToPhys models the root-only pagemap interface.
 */
class AddressSpace
{
  public:
    explicit AddressSpace(BuddyAllocator &buddy);
    ~AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    /**
     * Map `bytes` of memory in 4 KiB pages.
     * @return the virtual base, or nullopt if physical memory ran out
     *         (any partially mapped pages are released again).
     */
    std::optional<VirtAddr> mmap(std::uint64_t bytes);

    /**
     * Map a physically contiguous block of 2^order pages (obtained by
     * buddy-allocator massaging in real exploits).
     * @return nullopt if no such block is free.
     */
    std::optional<VirtAddr> mmapContiguous(unsigned order);

    /** Unmap and free the page at this virtual page address. */
    void munmapPage(VirtAddr va);

    /** pagemap lookup (requires root on real systems). */
    std::optional<PhysAddr> virtToPhys(VirtAddr va) const;

    /** Reverse lookup within this address space. */
    std::optional<VirtAddr> physToVirt(PhysAddr pa) const;

    std::uint64_t mappedPages() const { return pages.size(); }

  private:
    BuddyAllocator &buddy;
    std::map<VirtAddr, PhysAddr> pages;       // per page base
    std::unordered_map<PhysAddr, VirtAddr> reverse;
    VirtAddr nextVirt = 0x7f0000000000ULL;
};

/**
 * The reverse-engineering memory pool: a large fraction of physical
 * memory owned in 4 KiB pages, with fast membership and sampling.
 */
class PhysPool
{
  public:
    /**
     * Allocate pages until `fraction` of physical memory is owned
     * (or the allocator runs dry).
     */
    PhysPool(BuddyAllocator &buddy, double fraction);

    /** Does the pool own the page containing pa? */
    bool
    contains(PhysAddr pa) const
    {
        std::uint64_t idx = pa / pageBytes;
        return idx < ownedBitmap.size() && ownedBitmap[idx];
    }

    /** A uniformly random owned byte address. */
    PhysAddr
    randomAddr(Rng &rng) const
    {
        PhysAddr page = pageList[rng.uniformInt(0, pageList.size() - 1)];
        return page + rng.uniformInt(0, pageBytes - 1);
    }

    /**
     * Find an owned pair differing exactly in the given bit mask.
     * @return base address, or nullopt after max_tries failures.
     */
    std::optional<PhysAddr> pairBase(Rng &rng, std::uint64_t diff_mask,
                                     unsigned max_tries = 4096) const;

    double coverage() const;
    std::uint64_t ownedPages() const { return pageList.size(); }

  private:
    std::vector<bool> ownedBitmap;
    std::vector<PhysAddr> pageList;
    std::uint64_t memBytes;
};

} // namespace rho

#endif // RHO_OS_PAGEMAP_HH
