/**
 * @file
 * The crash-safe multi-process campaign supervisor.
 *
 * The supervisor owns a set of shards (shard.hh) and drives each to
 * completion with worker *processes*, so a worker that is SIGKILLed
 * (OOM killer, chaos testing, operator) or wedges in an infinite loop
 * cannot take the campaign down:
 *
 *  - workers are forked (body mode, for tests and in-binary services)
 *    or fork+exec'd (exec mode, for a separate worker entry point);
 *  - liveness is judged purely from the file protocol
 *    (worker_protocol.hh): any byte-size change of the status or
 *    journal file is a heartbeat. No pipes, no signals-from-child —
 *    a dead worker's trail is still readable;
 *  - a worker silent past `heartbeatTimeoutS`, or alive past
 *    `shardDeadlineS`, is SIGKILLed and counted as a hang;
 *  - failed shards retry under a bounded exponential backoff
 *    (retry_policy.hh); the shard journal makes every retry resume
 *    where the previous attempt died;
 *  - repeated *signal* deaths (the OOM-killer signature) shed
 *    concurrency: the worker-slot count halves down to `minWorkers`,
 *    trading throughput for survival;
 *  - a shard that exhausts its retry budget is quarantined and
 *    reported via FailureCode::ShardQuarantined — the campaign
 *    completes degraded instead of aborting.
 *
 * The supervisor is single-threaded: one poll loop launches, reaps,
 * and kills. Determinism note: scheduling order never affects merged
 * campaign results (tasks are pure functions of the campaign seed);
 * only the supervisor log varies with timing.
 */

#ifndef RHO_SERVICE_SUPERVISOR_HH
#define RHO_SERVICE_SUPERVISOR_HH

#include <functional>
#include <string>
#include <vector>

#include "service/retry_policy.hh"
#include "service/shard.hh"

namespace rho::service
{

/**
 * Deterministic fault plan for one worker attempt, decided by the
 * supervisor *before* the fork (so it is reproducible from the chaos
 * seed regardless of scheduling). Executed inside the worker by the
 * campaign service's journal hooks.
 */
struct WorkerChaos
{
    /** After this many journal records, raise(SIGKILL). 0 = never. */
    unsigned crashAfterRecords = 0;
    /** After this many journal records, spin forever. 0 = never. */
    unsigned hangAfterRecords = 0;

    bool
    any() const
    {
        return crashAfterRecords != 0 || hangAfterRecords != 0;
    }
};

/** Worker body run in the forked child; its return is the exit code. */
using WorkerBody = std::function<int(const ShardSpec &shard,
                                     unsigned attempt,
                                     const WorkerChaos &chaos)>;

/** Builds the argv for an exec-mode worker (argv[0] = binary path). */
using WorkerArgv = std::function<std::vector<std::string>(
    const ShardSpec &shard, unsigned attempt, const WorkerChaos &chaos)>;

/** Supervisor tuning knobs. */
struct SupervisorConfig
{
    unsigned workers = 2;    //!< concurrent worker processes
    unsigned minWorkers = 1; //!< floor when shedding concurrency
    RetryPolicy retry{};

    /** Kill a worker with no file growth for this long (seconds). */
    double heartbeatTimeoutS = 10.0;
    /** Kill a worker attempt that outlives this wall-clock budget. */
    double shardDeadlineS = 120.0;
    /** Poll-loop sleep between supervision passes. */
    double pollIntervalS = 0.002;

    /**
     * Halve the worker-slot count (down to minWorkers) after this many
     * cumulative signal deaths. Supervisor-initiated hang kills are
     * excluded — they signal a wedged worker, not memory pressure.
     * 0 disables shedding.
     */
    unsigned shedAfterSignalDeaths = 2;

    /** Optional chaos plan per (shard, attempt); null = no chaos. */
    std::function<WorkerChaos(const ShardSpec &, unsigned attempt)> chaos;

    /** Mirror supervisor log lines to stderr as they happen. */
    bool logToStderr = false;
};

/** Outcome of one supervised run over a shard set. */
struct SupervisorResult
{
    std::vector<ShardReport> shards;
    std::vector<std::string> log; //!< timestamped supervisor events

    unsigned crashes = 0; //!< abnormal worker exits (all shards)
    unsigned hangs = 0;   //!< supervisor-initiated SIGKILLs
    unsigned quarantined = 0;
    unsigned peakWorkers = 0;  //!< slots at launch
    unsigned finalWorkers = 0; //!< slots after any shedding

    /** True when every shard completed (nothing quarantined). */
    bool
    complete() const
    {
        return quarantined == 0;
    }
};

/** The single-threaded fork/poll/reap supervisor loop. */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorConfig cfg);

    /**
     * Drive all shards to Done or Quarantined, running `body` in a
     * forked child per attempt (the child calls _exit with the body's
     * return value and never returns to the caller's stack).
     */
    SupervisorResult run(const std::vector<ShardSpec> &shards,
                         const WorkerBody &body);

    /**
     * Exec-mode variant: fork + execv the argv that `argv_builder`
     * returns, one process per attempt. Used by the campaign-service
     * example's `--worker` entry point.
     */
    SupervisorResult runExec(const std::vector<ShardSpec> &shards,
                             const WorkerArgv &argv_builder);

  private:
    struct Slot; // per-shard supervision state

    using Launcher = std::function<int(const ShardSpec &, unsigned attempt,
                                       const WorkerChaos &)>;

    SupervisorResult supervise(const std::vector<ShardSpec> &shards,
                               const Launcher &launch);

    void logLine(SupervisorResult &result, const std::string &line);

    SupervisorConfig cfg;
};

} // namespace rho::service

#endif // RHO_SERVICE_SUPERVISOR_HH
