#include "service/retry_policy.hh"

#include <algorithm>

namespace rho::service
{

double
RetryPolicy::delayForAttempt(unsigned attempt) const
{
    if (attempt <= 1)
        return 0.0;
    double d = initialBackoffS;
    for (unsigned i = 2; i < attempt; ++i)
        d *= backoffFactor;
    return std::min(d, maxBackoffS);
}

} // namespace rho::service
