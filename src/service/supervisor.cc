#include "service/supervisor.hh"

#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/table.hh"
#include "service/worker_protocol.hh"

namespace rho::service
{

namespace
{

double
monotonicNow()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
}

void
sleepFor(double seconds)
{
    if (seconds <= 0.0)
        return;
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(seconds);
    ts.tv_nsec = static_cast<long>((seconds - ts.tv_sec) * 1e9);
    nanosleep(&ts, nullptr);
}

std::string
exitDescription(int wait_status)
{
    if (WIFEXITED(wait_status))
        return strFormat("exit %d", WEXITSTATUS(wait_status));
    if (WIFSIGNALED(wait_status))
        return strFormat("signal %d", WTERMSIG(wait_status));
    return strFormat("status 0x%x", wait_status);
}

} // namespace

/** Per-shard supervision state for the poll loop. */
struct Supervisor::Slot
{
    ShardReport report;
    int pid = -1;
    double launchedAt = 0.0;
    double notBefore = 0.0; //!< earliest next launch (backoff)
    double lastProgressAt = 0.0;
    long long lastProgressBytes = -1;
    bool killedForHang = false; //!< pending reap is a supervisor kill
};

Supervisor::Supervisor(SupervisorConfig cfg_) : cfg(std::move(cfg_))
{
    if (cfg.workers == 0)
        cfg.workers = 1;
    if (cfg.minWorkers == 0)
        cfg.minWorkers = 1;
    if (cfg.minWorkers > cfg.workers)
        cfg.minWorkers = cfg.workers;
}

void
Supervisor::logLine(SupervisorResult &result, const std::string &line)
{
    result.log.push_back(line);
    if (cfg.logToStderr)
        std::fprintf(stderr, "[supervisor] %s\n", line.c_str());
}

SupervisorResult
Supervisor::run(const std::vector<ShardSpec> &shards, const WorkerBody &body)
{
    Launcher launch = [&body](const ShardSpec &shard, unsigned attempt,
                              const WorkerChaos &chaos) -> int {
        int pid = ::fork();
        if (pid < 0)
            fatal("supervisor: fork failed: %s", std::strerror(errno));
        if (pid == 0) {
            // Child: run the body and leave without unwinding the
            // parent's stack (no destructors, no atexit handlers —
            // the journal fsyncs as it goes).
            int code = 1;
            try {
                code = body(shard, attempt, chaos);
            } catch (...) {
                code = 1;
            }
            ::_exit(code);
        }
        return pid;
    };
    return supervise(shards, launch);
}

SupervisorResult
Supervisor::runExec(const std::vector<ShardSpec> &shards,
                    const WorkerArgv &argv_builder)
{
    Launcher launch = [&argv_builder](const ShardSpec &shard,
                                      unsigned attempt,
                                      const WorkerChaos &chaos) -> int {
        std::vector<std::string> args = argv_builder(shard, attempt, chaos);
        if (args.empty())
            fatal("supervisor: exec argv builder returned no argv[0]");
        int pid = ::fork();
        if (pid < 0)
            fatal("supervisor: fork failed: %s", std::strerror(errno));
        if (pid == 0) {
            std::vector<char *> argv;
            argv.reserve(args.size() + 1);
            for (auto &a : args)
                argv.push_back(const_cast<char *>(a.c_str()));
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            std::fprintf(stderr, "supervisor worker: execv %s: %s\n",
                         argv[0], std::strerror(errno));
            ::_exit(127);
        }
        return pid;
    };
    return supervise(shards, launch);
}

SupervisorResult
Supervisor::supervise(const std::vector<ShardSpec> &shards,
                      const Launcher &launch)
{
    SupervisorResult result;
    std::vector<Slot> slots(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i)
        slots[i].report.spec = shards[i];

    unsigned concurrency = cfg.workers;
    unsigned signalDeaths = 0; //!< since the last shed
    result.peakWorkers = concurrency;
    logLine(result, strFormat("starting: %zu shard(s), %u worker slot(s)",
                              shards.size(), concurrency));

    for (;;) {
        double now = monotonicNow();
        unsigned running = 0, pending = 0;
        for (auto &slot : slots) {
            if (slot.report.state == ShardState::Running)
                ++running;
            else if (slot.report.state == ShardState::Pending)
                ++pending;
        }
        if (running == 0 && pending == 0)
            break;

        // Launch pending shards whose backoff delay has elapsed.
        for (auto &slot : slots) {
            if (running >= concurrency)
                break;
            if (slot.report.state != ShardState::Pending ||
                now < slot.notBefore) {
                continue;
            }
            unsigned attempt = slot.report.attempts + 1;
            WorkerChaos chaos;
            if (cfg.chaos)
                chaos = cfg.chaos(slot.report.spec, attempt);
            slot.pid = launch(slot.report.spec, attempt, chaos);
            slot.report.attempts = attempt;
            slot.report.state = ShardState::Running;
            slot.launchedAt = now;
            slot.lastProgressAt = now;
            slot.lastProgressBytes = -1;
            slot.killedForHang = false;
            ++running;
            logLine(result,
                    strFormat("shard %u attempt %u: launched pid %d"
                              " (tasks [%u, %u))",
                              slot.report.spec.id, attempt, slot.pid,
                              slot.report.spec.firstTask,
                              slot.report.spec.firstTask +
                                  slot.report.spec.taskCount));
        }

        // Reap exits and police heartbeats/deadlines.
        for (auto &slot : slots) {
            if (slot.report.state != ShardState::Running)
                continue;
            int status = 0;
            int reaped = ::waitpid(slot.pid, &status, WNOHANG);
            if (reaped == slot.pid) {
                if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                    slot.report.state = ShardState::Done;
                    logLine(result,
                            strFormat("shard %u attempt %u: done",
                                      slot.report.spec.id,
                                      slot.report.attempts));
                    continue;
                }

                // Abnormal exit: crash or our own hang kill.
                ++slot.report.crashes;
                ++result.crashes;
                bool hang = slot.killedForHang;
                if (hang) {
                    ++slot.report.hangs;
                    ++result.hangs;
                    slot.report.lastFailure = FailureCode::WorkerHung;
                } else {
                    slot.report.lastFailure = FailureCode::WorkerCrashed;
                    if (WIFSIGNALED(status))
                        ++signalDeaths;
                }
                slot.report.detail = exitDescription(status) +
                                     (hang ? " (hang kill)" : "");
                logLine(result,
                        strFormat("shard %u attempt %u: %s",
                                  slot.report.spec.id, slot.report.attempts,
                                  slot.report.detail.c_str()));

                // Graceful degradation: repeated signal deaths look
                // like memory pressure — shed worker slots.
                if (cfg.shedAfterSignalDeaths != 0 &&
                    signalDeaths >= cfg.shedAfterSignalDeaths &&
                    concurrency > cfg.minWorkers) {
                    concurrency = std::max(cfg.minWorkers, concurrency / 2);
                    signalDeaths = 0;
                    logLine(result,
                            strFormat("shedding concurrency to %u worker"
                                      " slot(s) after repeated signal"
                                      " deaths",
                                      concurrency));
                }

                unsigned next = slot.report.attempts + 1;
                if (cfg.retry.allows(next)) {
                    double delay = cfg.retry.delayForAttempt(next);
                    slot.report.state = ShardState::Pending;
                    slot.notBefore = monotonicNow() + delay;
                    logLine(result,
                            strFormat("shard %u: retrying as attempt %u"
                                      " after %.3fs backoff",
                                      slot.report.spec.id, next, delay));
                } else {
                    slot.report.state = ShardState::Quarantined;
                    slot.report.code = FailureCode::ShardQuarantined;
                    ++result.quarantined;
                    logLine(result,
                            strFormat("shard %u: quarantined after %u"
                                      " attempt(s) (%s)",
                                      slot.report.spec.id,
                                      slot.report.attempts,
                                      failureCodeName(
                                          slot.report.lastFailure)));
                }
                continue;
            }

            // Still running: any status/journal byte change is a
            // heartbeat.
            StatusSnapshot snap = readStatus(slot.report.spec.statusPath,
                                             slot.report.spec.journalPath);
            if (snap.progressBytes != slot.lastProgressBytes) {
                slot.lastProgressBytes = snap.progressBytes;
                slot.lastProgressAt = now;
            }
            bool heartbeatLost = cfg.heartbeatTimeoutS > 0.0 &&
                now - slot.lastProgressAt > cfg.heartbeatTimeoutS;
            bool pastDeadline = cfg.shardDeadlineS > 0.0 &&
                now - slot.launchedAt > cfg.shardDeadlineS;
            if ((heartbeatLost || pastDeadline) && !slot.killedForHang) {
                slot.killedForHang = true;
                logLine(result,
                        strFormat("shard %u attempt %u: %s — SIGKILL"
                                  " pid %d",
                                  slot.report.spec.id, slot.report.attempts,
                                  heartbeatLost ? "heartbeat lost"
                                                : "deadline exceeded",
                                  slot.pid));
                ::kill(slot.pid, SIGKILL);
            }
        }

        sleepFor(cfg.pollIntervalS);
    }

    result.finalWorkers = concurrency;
    for (auto &slot : slots)
        result.shards.push_back(slot.report);
    logLine(result,
            strFormat("finished: %u crash(es), %u hang(s), %u"
                      " quarantined, %u worker slot(s) remaining",
                      result.crashes, result.hangs, result.quarantined,
                      result.finalWorkers));
    return result;
}

} // namespace rho::service
