#include "service/worker_protocol.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace rho::service
{

StatusFile::StatusFile(const std::string &path)
{
    fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0)
        fatal("StatusFile: cannot write %s", path.c_str());
}

StatusFile::~StatusFile()
{
    if (fd >= 0)
        ::close(fd);
}

void
StatusFile::appendLine(const std::string &line)
{
    std::string buf = line + "\n";
    const char *p = buf.data();
    std::size_t left = buf.size();
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n <= 0)
            return; // status is advisory; never kill the worker over it
        p += n;
        left -= static_cast<std::size_t>(n);
    }
}

void
StatusFile::start(unsigned shard, int pid, unsigned attempt)
{
    appendLine(strFormat("start %u %d %u", shard, pid, attempt));
}

void
StatusFile::taskDone(unsigned index, std::uint64_t seq)
{
    appendLine(strFormat("task %u %llu", index, (unsigned long long)seq));
}

void
StatusFile::finish(unsigned tasks_completed)
{
    appendLine(strFormat("done %u", tasks_completed));
}

namespace
{

long long
fileSize(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<long long>(st.st_size);
}

} // namespace

StatusSnapshot
readStatus(const std::string &status_path, const std::string &journal_path)
{
    StatusSnapshot snap;
    snap.progressBytes = fileSize(status_path) + fileSize(journal_path);
    std::ifstream in(status_path);
    std::string line;
    while (in && std::getline(in, line)) {
        std::istringstream rec(line);
        std::string tag;
        if (!(rec >> tag))
            continue;
        if (tag == "start")
            snap.started = true;
        else if (tag == "task")
            ++snap.tasksDone;
        else if (tag == "done")
            snap.finished = true;
    }
    return snap;
}

JournalOptions
withStatusHeartbeat(JournalOptions base, StatusFile &status)
{
    auto chained = base.onRecord;
    base.onRecord = [chained, &status](unsigned index, std::uint64_t seq) {
        if (chained)
            chained(index, seq);
        status.taskDone(index, seq);
    };
    return base;
}

} // namespace rho::service
