/**
 * @file
 * Bounded retry with exponential backoff for crashed or wedged shards.
 *
 * Pure data + arithmetic: the supervisor asks "how long until attempt
 * N may launch" and "is attempt N allowed at all". Backoff is
 * deterministic (no jitter) so supervisor logs are reproducible; the
 * workers' results are pure functions of the campaign seed anyway, so
 * scheduling never affects the merged output.
 */

#ifndef RHO_SERVICE_RETRY_POLICY_HH
#define RHO_SERVICE_RETRY_POLICY_HH

namespace rho::service
{

/** Retry budget + backoff curve for one shard. */
struct RetryPolicy
{
    unsigned maxAttempts = 4;      //!< total launches (1 = no retries)
    double initialBackoffS = 0.05; //!< delay before the first retry
    double backoffFactor = 2.0;    //!< multiplier per further retry
    double maxBackoffS = 2.0;      //!< cap on any single delay

    /**
     * Seconds to wait before launching attempt `attempt` (1-based;
     * attempt 1 launches immediately).
     */
    double delayForAttempt(unsigned attempt) const;

    /** True while `attempt` (1-based) is within the budget. */
    bool
    allows(unsigned attempt) const
    {
        return attempt <= (maxAttempts == 0 ? 1 : maxAttempts);
    }
};

} // namespace rho::service

#endif // RHO_SERVICE_RETRY_POLICY_HH
