/**
 * @file
 * The campaign service: sweep/fuzz campaigns sharded across supervised
 * worker processes, with crash-safe journals and a bit-identical merge.
 *
 * Flow for one campaign (serviceSweepCampaign / serviceFuzzCampaign):
 *
 *  1. The task keyspace [0, N) is split into contiguous shards
 *     (shard.hh). Each shard gets its own journal + status file under
 *     `ServiceParams::journalBase`.
 *  2. The Supervisor drives one worker process per shard (fork in body
 *     mode; the example binary also exposes an exec-mode `--worker`
 *     entry via runSweepShardWorker/runFuzzShardWorker). Workers run
 *     the ordinary campaign engine with a task mask restricted to
 *     their shard, journaling every completed task. Crashed / hung
 *     workers are retried with backoff and resume from their journal.
 *  3. The parent absorbs all completed shards' verified journal
 *     records into one merged journal (all shard journals share the
 *     campaign's journal key), then runs the campaign in-process over
 *     the merged journal: every journaled task replays, and any task
 *     lost to a kill, a torn line or bit-rot silently re-executes.
 *
 * Because each task is a pure function of hashCombine(seed, index) and
 * merging is in index order, the final result is byte-identical to an
 * uninterrupted single-process run — for any worker count, any --jobs,
 * any kill point, any corrupted record. Shards that exhaust their
 * retry budget are quarantined: their tasks are masked out of the
 * merge and the degradation is reported via
 * FailureCode::ShardQuarantined instead of an abort.
 */

#ifndef RHO_SERVICE_CAMPAIGN_SERVICE_HH
#define RHO_SERVICE_CAMPAIGN_SERVICE_HH

#include <cstdint>
#include <string>

#include "fault/fault_injector.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/sweep.hh"
#include "service/supervisor.hh"

namespace rho::service
{

/** How a campaign is sharded, supervised and journaled. */
struct ServiceParams
{
    unsigned shards = 4;        //!< worker shard count
    unsigned jobsPerWorker = 1; //!< threads inside each worker
    std::string journalBase;    //!< required: path prefix for journals

    /** Durability policy for shard + merged journals. */
    FsyncPolicy fsync = FsyncPolicy::PerRecord;

    SupervisorConfig supervisor{};

    /**
     * Optional chaos source. When set (and supervisor.chaos is not),
     * each worker launch consults workerCrash()/workerHang() for a
     * deterministic mid-shard SIGKILL / wedge plan, and worker
     * journals corrupt records via journalBitRot().
     */
    FaultInjector *faults = nullptr;

    /**
     * Exec mode: when set, workers are fork+exec'd with this argv
     * (typically the host binary's own `--worker` entry re-deriving
     * the campaign from its arguments) instead of forked body-mode
     * processes. `faults`-driven bit-rot does not cross the exec
     * boundary — encode any chaos the worker should self-inflict in
     * the argv.
     */
    WorkerArgv execArgv;
};

/** Service-level accounting for one campaign run. */
struct ServiceReport
{
    SupervisorResult supervisor;
    std::string mergedJournalPath;
    unsigned tasksFromWorkers = 0; //!< replayed from shard journals
    unsigned tasksReexecuted = 0;  //!< lost/corrupt; redone in parent
    /** ShardQuarantined when the result is degraded, else None. */
    FailureCode code = FailureCode::None;
};

struct SweepServiceOutcome
{
    SweepResult result;
    ServiceReport report;
};

struct FuzzServiceOutcome
{
    FuzzResult result;
    ServiceReport report;
};

/**
 * Run `params` as a supervised multi-process campaign. The campaign
 * parameters (`params.numLocations`, seed, ...) mean exactly what they
 * mean for sweepCampaign(); `params.checkpointPath`, `params.journal`
 * and `params.taskMask` are overridden by the service layer.
 */
SweepServiceOutcome serviceSweepCampaign(const SystemSpec &spec,
                                         const HammerPattern &pattern,
                                         const HammerConfig &cfg,
                                         const SweepParams &params,
                                         std::uint64_t seed,
                                         const ServiceParams &service);

/** fuzzCampaign() under the same service contract. */
FuzzServiceOutcome serviceFuzzCampaign(const SystemSpec &spec,
                                       const HammerConfig &cfg,
                                       const FuzzParams &params,
                                       std::uint64_t seed,
                                       const ServiceParams &service);

/**
 * The worker-side entry point for one sweep shard attempt: writes the
 * status trail, runs the masked campaign against the shard journal,
 * and executes any chaos plan. Returns the process exit code. Called
 * in-process by body-mode workers and by the example binary's
 * exec-mode `--worker` entry.
 *
 * `params.journal` should carry the fsync policy (and any bitRot
 * hook); the status heartbeat and chaos hooks are chained onto it.
 */
int runSweepShardWorker(const SystemSpec &spec, const HammerPattern &pattern,
                        const HammerConfig &cfg, SweepParams params,
                        std::uint64_t seed, const ShardSpec &shard,
                        unsigned attempt, const WorkerChaos &chaos);

/** Fuzz-shard worker entry point (see runSweepShardWorker). */
int runFuzzShardWorker(const SystemSpec &spec, const HammerConfig &cfg,
                       FuzzParams params, std::uint64_t seed,
                       const ShardSpec &shard, unsigned attempt,
                       const WorkerChaos &chaos);

/**
 * Deterministic chaos plan for one (shard, attempt) drawn from the
 * injector's worker-crash/hang channels: a triggered fault fires after
 * a record count derived from (shard.id, attempt), so plans are
 * reproducible from the chaos seed.
 */
WorkerChaos chaosFromFaults(FaultInjector &faults, const ShardSpec &shard,
                            unsigned attempt);

} // namespace rho::service

#endif // RHO_SERVICE_CAMPAIGN_SERVICE_HH
