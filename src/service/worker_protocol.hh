/**
 * @file
 * The file-protocol between a shard worker and its supervisor.
 *
 * A worker owns two files: its shard checkpoint journal (the durable
 * result log, common/checkpoint.hh) and a small status file it appends
 * human-readable progress lines to:
 *
 *   start <shard> <pid> <attempt>
 *   task <index> <seq>
 *   done <tasks-completed>
 *
 * The supervisor never parses worker stdout and holds no pipe to the
 * child — it polls the status + journal files, so a SIGKILLed worker
 * (OOM killer, chaos) leaves a perfectly readable trail: progress up
 * to the kill is preserved, and the next attempt resumes from the
 * journal. Status lines are advisory (heartbeat + humans); the journal
 * is the source of truth.
 */

#ifndef RHO_SERVICE_WORKER_PROTOCOL_HH
#define RHO_SERVICE_WORKER_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/checkpoint.hh"

namespace rho::service
{

/** Worker-side append-only status writer (one line per event). */
class StatusFile
{
  public:
    /** Truncates the file: each attempt starts a fresh status trail. */
    explicit StatusFile(const std::string &path);
    ~StatusFile();

    StatusFile(const StatusFile &) = delete;
    StatusFile &operator=(const StatusFile &) = delete;

    void start(unsigned shard, int pid, unsigned attempt);
    void taskDone(unsigned index, std::uint64_t seq);
    void finish(unsigned tasks_completed);

  private:
    void appendLine(const std::string &line);
    int fd = -1;
};

/** Supervisor-side snapshot of a worker's observable progress. */
struct StatusSnapshot
{
    bool started = false;
    bool finished = false;
    unsigned tasksDone = 0;
    /** Combined byte size of status + journal files: the heartbeat.
     *  Any change (either direction — an attempt restart truncates the
     *  status file) counts as progress. */
    long long progressBytes = 0;
};

/** Parse a worker's status file + journal size; missing files are 0. */
StatusSnapshot readStatus(const std::string &status_path,
                          const std::string &journal_path);

/**
 * Chain a StatusFile heartbeat onto journal options: every durable
 * record also appends a `task` status line (after any hook already in
 * `base` runs).
 */
JournalOptions withStatusHeartbeat(JournalOptions base, StatusFile &status);

} // namespace rho::service

#endif // RHO_SERVICE_WORKER_PROTOCOL_HH
