#include "service/campaign_service.hh"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "service/worker_protocol.hh"

namespace rho::service
{

namespace
{

/**
 * Chain the worker-side hooks onto journal options: status heartbeat
 * first, then the chaos plan (so the record that trips the chaos is
 * already durable — crash-after-record semantics, the worst case for
 * the resume path).
 */
JournalOptions
withWorkerHooks(JournalOptions opts, StatusFile &status,
                const WorkerChaos &chaos)
{
    opts = withStatusHeartbeat(std::move(opts), status);
    if (!chaos.any())
        return opts;
    auto inner = opts.onRecord;
    auto records = std::make_shared<unsigned>(0);
    WorkerChaos plan = chaos;
    opts.onRecord = [inner, records, plan](unsigned index,
                                           std::uint64_t seq) {
        if (inner)
            inner(index, seq);
        unsigned n = ++*records;
        if (plan.crashAfterRecords != 0 && n >= plan.crashAfterRecords)
            ::raise(SIGKILL);
        if (plan.hangAfterRecords != 0 && n >= plan.hangAfterRecords) {
            // Wedge without touching any file: the supervisor's
            // heartbeat timeout is the only way out.
            for (;;)
                ::pause();
        }
    };
    return opts;
}

/** Journal options a worker starts from (before the worker hooks). */
JournalOptions
workerJournalOptions(const ServiceParams &service)
{
    JournalOptions opts;
    opts.fsync = service.fsync;
    if (service.faults != nullptr) {
        FaultInjector *faults = service.faults;
        opts.bitRot = [faults](std::size_t num_bits) {
            return faults->journalBitRot(num_bits);
        };
    }
    return opts;
}

/**
 * Shard, supervise, and absorb completed shard journals into the
 * merged journal. On return `mask_out`/`use_mask` describe which tasks
 * the parent's merge run may execute (quarantined shards masked out).
 */
ServiceReport
superviseAndMerge(unsigned total_tasks, const ServiceParams &service,
                  std::uint64_t journal_key, const char *kind,
                  const WorkerBody &body,
                  std::vector<std::uint8_t> &mask_out, bool &use_mask)
{
    if (service.journalBase.empty())
        fatal("campaign service: ServiceParams::journalBase is required");

    std::vector<ShardSpec> shards =
        makeShards(total_tasks, service.shards, service.journalBase);

    SupervisorConfig scfg = service.supervisor;
    if (!scfg.chaos && service.faults != nullptr) {
        FaultInjector *faults = service.faults;
        scfg.chaos = [faults](const ShardSpec &shard, unsigned attempt) {
            return chaosFromFaults(*faults, shard, attempt);
        };
    }

    ServiceReport report;
    Supervisor supervisor(scfg);
    report.supervisor = service.execArgv
        ? supervisor.runExec(shards, service.execArgv)
        : supervisor.run(shards, body);
    report.mergedJournalPath = service.journalBase + ".merged";

    // Quarantined shards are excluded from the merge; their tasks are
    // the degradation the FailureCode reports.
    mask_out.assign(std::max(total_tasks, 1u), 1);
    use_mask = false;
    for (const ShardReport &r : report.supervisor.shards) {
        if (r.state != ShardState::Quarantined)
            continue;
        use_mask = true;
        for (unsigned i = 0; i < r.spec.taskCount; ++i)
            mask_out[r.spec.firstTask + i] = 0;
    }

    // Absorb every completed shard's verified records. Shard journals
    // share the campaign key, so TaskJournal's own recovery rules
    // (CRC, seq, torn lines) decide what is trustworthy — anything
    // rejected here simply re-executes in the parent's merge run.
    {
        JournalOptions mopts;
        mopts.fsync = FsyncPolicy::Never;
        TaskJournal merged(report.mergedJournalPath, journal_key, kind,
                           mopts);
        std::vector<std::uint8_t> have(std::max(total_tasks, 1u), 0);
        for (unsigned i = 0; i < total_tasks; ++i)
            if (merged.lookup(i))
                have[i] = 1;
        for (const ShardReport &r : report.supervisor.shards) {
            if (r.state != ShardState::Done)
                continue;
            TaskJournal shard_journal(r.spec.journalPath, journal_key,
                                      kind, mopts);
            for (const auto &[index, payload] : shard_journal.entries()) {
                if (index >= total_tasks || have[index])
                    continue;
                merged.record(index, payload);
                have[index] = 1;
            }
        }
        merged.sync();

        for (unsigned i = 0; i < total_tasks; ++i) {
            if (!mask_out[i])
                continue;
            if (have[i])
                ++report.tasksFromWorkers;
            else
                ++report.tasksReexecuted;
        }
    }

    report.code = use_mask ? FailureCode::ShardQuarantined
                           : FailureCode::None;
    return report;
}

} // namespace

WorkerChaos
chaosFromFaults(FaultInjector &faults, const ShardSpec &shard,
                unsigned attempt)
{
    // Draw both channels unconditionally so enabling one never shifts
    // the other's stream.
    bool crash = faults.workerCrash();
    bool hang = faults.workerHang();
    WorkerChaos chaos;
    unsigned span = std::max(1u, shard.taskCount);
    if (crash)
        chaos.crashAfterRecords = 1 + (shard.id + attempt) % span;
    else if (hang)
        chaos.hangAfterRecords = 1 + (shard.id * 3 + attempt) % span;
    return chaos;
}

int
runSweepShardWorker(const SystemSpec &spec, const HammerPattern &pattern,
                    const HammerConfig &cfg, SweepParams params,
                    std::uint64_t seed, const ShardSpec &shard,
                    unsigned attempt, const WorkerChaos &chaos)
{
    StatusFile status(shard.statusPath);
    status.start(shard.id, static_cast<int>(::getpid()), attempt);

    std::vector<std::uint8_t> mask = shard.mask(params.numLocations);
    params.checkpointPath = shard.journalPath;
    params.taskMask = &mask;
    params.journal = withWorkerHooks(std::move(params.journal), status,
                                     chaos);
    sweepCampaign(spec, pattern, cfg, params, seed);

    status.finish(shard.taskCount);
    return 0;
}

int
runFuzzShardWorker(const SystemSpec &spec, const HammerConfig &cfg,
                   FuzzParams params, std::uint64_t seed,
                   const ShardSpec &shard, unsigned attempt,
                   const WorkerChaos &chaos)
{
    StatusFile status(shard.statusPath);
    status.start(shard.id, static_cast<int>(::getpid()), attempt);

    std::vector<std::uint8_t> mask = shard.mask(params.numPatterns);
    params.checkpointPath = shard.journalPath;
    params.taskMask = &mask;
    params.journal = withWorkerHooks(std::move(params.journal), status,
                                     chaos);
    fuzzCampaign(spec, cfg, params, seed);

    status.finish(shard.taskCount);
    return 0;
}

SweepServiceOutcome
serviceSweepCampaign(const SystemSpec &spec, const HammerPattern &pattern,
                     const HammerConfig &cfg, const SweepParams &params,
                     std::uint64_t seed, const ServiceParams &service)
{
    SweepParams base = params;
    base.checkpointPath.clear();
    base.journal = JournalOptions{};
    base.taskMask = nullptr;

    std::uint64_t key = sweepJournalKey(spec, cfg, base, pattern, seed);

    WorkerBody body = [&](const ShardSpec &shard, unsigned attempt,
                          const WorkerChaos &chaos) {
        SweepParams wp = base;
        wp.jobs = std::max(1u, service.jobsPerWorker);
        wp.journal = workerJournalOptions(service);
        return runSweepShardWorker(spec, pattern, cfg, std::move(wp), seed,
                                   shard, attempt, chaos);
    };

    SweepServiceOutcome out;
    std::vector<std::uint8_t> mask;
    bool use_mask = false;
    out.report = superviseAndMerge(base.numLocations, service, key,
                                   SweepJournalKind, body, mask, use_mask);

    // The merge run: replay everything the workers proved, re-execute
    // whatever was lost, skip quarantined tasks.
    SweepParams fin = base;
    fin.checkpointPath = out.report.mergedJournalPath;
    fin.journal.fsync = service.fsync;
    fin.taskMask = use_mask ? &mask : nullptr;
    out.result = sweepCampaign(spec, pattern, cfg, fin, seed);
    return out;
}

FuzzServiceOutcome
serviceFuzzCampaign(const SystemSpec &spec, const HammerConfig &cfg,
                    const FuzzParams &params, std::uint64_t seed,
                    const ServiceParams &service)
{
    FuzzParams base = params;
    base.checkpointPath.clear();
    base.journal = JournalOptions{};
    base.taskMask = nullptr;

    std::uint64_t key = fuzzJournalKey(spec, cfg, base, seed);

    WorkerBody body = [&](const ShardSpec &shard, unsigned attempt,
                          const WorkerChaos &chaos) {
        FuzzParams wp = base;
        wp.jobs = std::max(1u, service.jobsPerWorker);
        wp.journal = workerJournalOptions(service);
        return runFuzzShardWorker(spec, cfg, std::move(wp), seed, shard,
                                  attempt, chaos);
    };

    FuzzServiceOutcome out;
    std::vector<std::uint8_t> mask;
    bool use_mask = false;
    out.report = superviseAndMerge(base.numPatterns, service, key,
                                   FuzzJournalKind, body, mask, use_mask);

    FuzzParams fin = base;
    fin.checkpointPath = out.report.mergedJournalPath;
    fin.journal.fsync = service.fsync;
    fin.taskMask = use_mask ? &mask : nullptr;
    out.result = fuzzCampaign(spec, cfg, fin, seed);
    return out;
}

} // namespace rho::service
