/**
 * @file
 * Shards: the unit of work the campaign supervisor schedules.
 *
 * A campaign's task keyspace [0, totalTasks) is partitioned into
 * contiguous shards; each shard is executed by one worker process that
 * journals completed tasks into the shard's own checkpoint journal
 * (all shard journals share the campaign's journal key, so the
 * supervisor can absorb them into one merged journal afterwards). A
 * shard that keeps failing is quarantined and reported through the
 * FailureCode taxonomy instead of aborting the campaign.
 */

#ifndef RHO_SERVICE_SHARD_HH
#define RHO_SERVICE_SHARD_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/failure.hh"
#include "common/table.hh"

namespace rho::service
{

/** One contiguous slice of a campaign's task keyspace. */
struct ShardSpec
{
    unsigned id = 0;
    unsigned firstTask = 0;
    unsigned taskCount = 0;
    std::string journalPath; //!< per-shard checkpoint journal
    std::string statusPath;  //!< per-shard worker status file

    /** Execution mask for SweepParams/FuzzParams::taskMask. */
    std::vector<std::uint8_t>
    mask(unsigned total_tasks) const
    {
        std::vector<std::uint8_t> m(total_tasks, 0);
        for (unsigned i = 0; i < taskCount; ++i)
            m[firstTask + i] = 1;
        return m;
    }
};

/** Supervisor-side lifecycle of one shard. */
enum class ShardState : std::uint8_t
{
    Pending,     //!< waiting for a worker slot (or backoff delay)
    Running,     //!< a worker process owns it
    Done,        //!< worker exited 0; journal covers the shard
    Quarantined, //!< retry budget exhausted; excluded from the merge
};

constexpr const char *
shardStateName(ShardState s)
{
    switch (s) {
    case ShardState::Pending: return "pending";
    case ShardState::Running: return "running";
    case ShardState::Done: return "done";
    case ShardState::Quarantined: return "quarantined";
    }
    return "unknown";
}

/** Final per-shard accounting reported by the supervisor. */
struct ShardReport
{
    ShardSpec spec;
    ShardState state = ShardState::Pending;
    unsigned attempts = 0; //!< launches consumed (1 = first try)
    unsigned crashes = 0;  //!< abnormal exits (signal or exit != 0)
    unsigned hangs = 0;    //!< heartbeat/deadline kills by the supervisor
    FailureCode code = FailureCode::None; //!< ShardQuarantined when dead
    FailureCode lastFailure = FailureCode::None; //!< crash vs hang
    std::string detail; //!< human-readable failure description
};

/**
 * Partition [0, totalTasks) into at most `shards` contiguous,
 * balanced, non-empty shards. Journal/status paths derive from
 * `journal_base` ("<base>.shard<k>" / "<base>.shard<k>.status").
 */
inline std::vector<ShardSpec>
makeShards(unsigned total_tasks, unsigned shards,
           const std::string &journal_base)
{
    unsigned n = std::max(1u, std::min(shards, std::max(total_tasks, 1u)));
    std::vector<ShardSpec> out;
    out.reserve(n);
    unsigned base = total_tasks / n, extra = total_tasks % n, first = 0;
    for (unsigned k = 0; k < n; ++k) {
        ShardSpec s;
        s.id = k;
        s.firstTask = first;
        s.taskCount = base + (k < extra ? 1 : 0);
        s.journalPath = strFormat("%s.shard%u", journal_base.c_str(), k);
        s.statusPath = s.journalPath + ".status";
        first += s.taskCount;
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace rho::service

#endif // RHO_SERVICE_SHARD_HH
