#include "dram/dimm.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "fault/fault_injector.hh"

namespace rho
{

Dimm::Dimm(const DimmProfile &profile, const DramTiming &timing,
           const TrrConfig &trr_cfg, const RfmConfig &rfm_cfg)
    : prof(profile), tim(timing), trr(trr_cfg, profile.geom.flatBanks()),
      rfm(rfm_cfg, profile.geom.flatBanks()),
      banks(profile.geom.flatBanks())
{
}

void
Dimm::reset()
{
    rows.clear();
    flips.clear();
    std::fill(banks.begin(), banks.end(), BankState{});
    acts = 0;
    nextTrrTick = 0.0;
}

Ns
Dimm::autoRefreshBefore(std::uint64_t row, Ns now) const
{
    // The refresh engine sweeps all rows once per tREFW in
    // refreshSlots bursts; a row's slot is its index modulo the slot
    // count, giving every row a fixed phase within the window.
    double slot = static_cast<double>(row % DramTiming::refreshSlots);
    Ns phase = (slot + 0.5) / DramTiming::refreshSlots * tim.tREFW;
    double k = std::floor((now - phase) / tim.tREFW);
    return phase + k * tim.tREFW;
}

// Zero a row's accumulated disturbance, emitting DisturbReset only
// when charge was actually dropped — so a quiet row never produces
// trace chatter and the causal replay sees exactly the resets that
// gate flips.
void
Dimm::resetDisturb(RowState &rs, std::uint32_t bank, std::uint64_t row,
                   Ns when, ResetSource source)
{
    if (rs.disturb > 0.0) {
        RHO_TRACE(tracer, when, EventKind::DisturbReset,
                  static_cast<std::uint8_t>(source), bank, row,
                  traceBits(rs.disturb));
    }
    rs.disturb = 0.0;
}

void
Dimm::applyAutoRefresh(RowState &rs, std::uint32_t bank,
                       std::uint64_t row, Ns now)
{
    Ns last = autoRefreshBefore(row, now);
    if (last > rs.lastRefresh) {
        rs.lastRefresh = last;
        // Stamped with the refresh's own (earlier) time: the stream
        // stays causally ordered even though the reset applies lazily.
        resetDisturb(rs, bank, row, last, ResetSource::AutoRefresh);
    }
}

Dimm::RowState &
Dimm::rowState(std::uint32_t bank, std::uint64_t row, Ns now)
{
    auto [it, inserted] = rows.try_emplace(rowKey(bank, row));
    RowState &rs = it->second;
    if (inserted)
        rs.lastRefresh = autoRefreshBefore(row, now);
    else
        applyAutoRefresh(rs, bank, row, now);
    return rs;
}

std::vector<std::uint8_t> &
Dimm::materializeData(RowState &rs)
{
    if (!rs.data) {
        rs.data = std::make_unique<std::vector<std::uint8_t>>(
            prof.geom.rowBytes, rs.fill);
    }
    return *rs.data;
}

void
Dimm::disturbNeighbour(std::uint32_t bank, std::uint64_t victim,
                       double weight, Ns now)
{
    RowState &rs = rowState(bank, victim, now);
    rs.disturb += weight;
    RHO_TRACE(tracer, now, EventKind::Disturb, 0, bank, victim,
              traceBits(weight));

    if (!rs.cellsInit) {
        rs.cells = prof.weakCellsFor(bank, victim);
        rs.flipped.assign(rs.cells.size(), false);
        rs.cellsInit = true;
    }
    if (rs.cells.empty())
        return;

    for (std::size_t i = 0; i < rs.cells.size(); ++i) {
        if (rs.flipped[i] || rs.disturb < rs.cells[i].threshold)
            continue;
        // Injected non-reproduction (Kim et al.: flip reproducibility
        // is itself probabilistic): the cell spontaneously retains its
        // charge and the row's accumulated disturbance is restored, so
        // the hammer must re-accumulate from zero. A retried run can
        // still produce the flip; a budget-exhausted run cannot.
        if (injector && injector->suppressFlip()) {
            // FlipSuppressed implies the disturb reset; the causal
            // replay treats it as one (no separate DisturbReset).
            RHO_TRACE(tracer, now, EventKind::FlipSuppressed, 0, bank,
                      victim, traceBits(rs.disturb));
            rs.disturb = 0.0;
            return;
        }
        // Threshold crossed: the cell loses its charged state. The
        // flip only manifests if the stored bit is in the vulnerable
        // orientation (true cell storing 1, anti cell storing 0).
        auto &data = materializeData(rs);
        const WeakCell &c = rs.cells[i];
        std::uint32_t byte = c.bitOffset >> 3;
        std::uint8_t mask = 1u << (c.bitOffset & 7);
        bool stored_one = data[byte] & mask;
        if (c.trueCell && stored_one) {
            data[byte] &= ~mask;
            flips.push_back({bank, victim, c.bitOffset, false, now});
            RHO_TRACE(tracer, now, EventKind::BitFlip, 0, bank, victim,
                      c.bitOffset);
        } else if (!c.trueCell && !stored_one) {
            data[byte] |= mask;
            flips.push_back({bank, victim, c.bitOffset, true, now});
            RHO_TRACE(tracer, now, EventKind::BitFlip, 1, bank, victim,
                      c.bitOffset);
        }
        rs.flipped[i] = true;
    }
}

void
Dimm::refreshNeighbours(std::uint32_t bank, std::uint64_t row, Ns now,
                        ResetSource source)
{
    for (int d = -2; d <= 2; ++d) {
        if (d == 0)
            continue;
        std::int64_t v = static_cast<std::int64_t>(row) + d;
        if (v < 0 || v >= static_cast<std::int64_t>(prof.geom.rowsPerBank))
            continue;
        RowState &rs = rowState(bank, static_cast<std::uint64_t>(v), now);
        resetDisturb(rs, bank, static_cast<std::uint64_t>(v), now, source);
        rs.lastRefresh = now;
    }
}

void
Dimm::processTrrTicks(Ns now)
{
    if (nextTrrTick == 0.0)
        nextTrrTick = tim.tREFI;
    // If the simulation jumped far ahead (idle phases), fast-forward:
    // stale counters would have decayed anyway.
    if (now - nextTrrTick > tim.tREFW) {
        nextTrrTick = std::floor(now / tim.tREFI) * tim.tREFI;
    }
    while (nextTrrTick <= now) {
        for (const TrrTarget &t : trr.onRefreshTick(nextTrrTick)) {
            RHO_TRACE(tracer, nextTrrTick, EventKind::TrrTargetedRefresh,
                      0, t.bank, t.row, 0);
            refreshNeighbours(t.bank, t.row, nextTrrTick,
                              ResetSource::TrrNeighbor);
        }
        nextTrrTick += tim.tREFI;
    }
}

void
Dimm::doAct(std::uint32_t bank, std::uint64_t row, Ns now)
{
    ++acts;
    RHO_TRACE(tracer, now, EventKind::DramAct, 0, bank, row, 0);
    processTrrTicks(now);

    if (auto ptrr = trr.observeAct(bank, row, now)) {
        RHO_TRACE(tracer, now, EventKind::PtrrRefresh, 0, ptrr->bank,
                  ptrr->row, 0);
        refreshNeighbours(ptrr->bank, ptrr->row, now,
                          ResetSource::TrrNeighbor);
    }

    // DDR5 refresh management: deterministic per-bank RAA counters
    // trigger RFM commands that protect recently activated rows.
    for (const TrrTarget &t : rfm.observeAct(bank, row)) {
        RHO_TRACE(tracer, now, EventKind::RfmRefresh, 0, t.bank, t.row, 0);
        refreshNeighbours(t.bank, t.row, now, ResetSource::RfmNeighbor);
    }

    // Injected spurious TRR: the controller refreshes this row's
    // neighbourhood even though no sampler selected it.
    if (injector && injector->spuriousRefresh()) {
        RHO_TRACE(tracer, now, EventKind::SpuriousRefresh, 0, bank, row, 0);
        refreshNeighbours(bank, row, now, ResetSource::Spurious);
    }

    // Activating a row restores the charge of its own cells.
    RowState &self = rowState(bank, row, now);
    resetDisturb(self, bank, row, now, ResetSource::SelfAct);
    self.lastRefresh = now;

    for (int d = -2; d <= 2; ++d) {
        if (d == 0)
            continue;
        std::int64_t v = static_cast<std::int64_t>(row) + d;
        if (v < 0 || v >= static_cast<std::int64_t>(prof.geom.rowsPerBank))
            continue;
        double w = (d == 1 || d == -1) ? 1.0 : halfDoubleWeight;
        disturbNeighbour(bank, static_cast<std::uint64_t>(v), w, now);
    }
}

DramAccessResult
Dimm::access(const DramAddr &da, Ns now)
{
    if (da.bank >= banks.size())
        panic("Dimm::access: bank %u out of range", da.bank);
    if (da.row >= prof.geom.rowsPerBank)
        panic("Dimm::access: row %llu out of range",
              static_cast<unsigned long long>(da.row));

    BankState &bk = banks[da.bank];
    Ns start = std::max(now, bk.readyAt);
    DramAccessResult res{};

    if (bk.openRow == static_cast<std::int64_t>(da.row)) {
        // Row-buffer hit: CAS only.
        Ns done = start + tim.tCL;
        bk.readyAt = start + 4 * tim.tCK;
        RHO_TRACE(tracer, start, EventKind::DramRowHit, 0, da.bank,
                  da.row, 0);
        res = {done - now + tim.busOverhead, true, false};
    } else {
        bool conflict = bk.openRow >= 0;
        // ACT-to-ACT spacing within the bank (tRC) and, on conflict,
        // the precharge of the currently open row.
        Ns act_at = std::max(start, bk.lastActAt + tim.tRC);
        Ns pre = conflict ? tim.tRP : 0.0;
        Ns done = act_at + pre + tim.tRCD + tim.tCL;
        if (conflict)
            RHO_TRACE(tracer, act_at, EventKind::DramPre, 0, da.bank,
                      static_cast<std::uint64_t>(bk.openRow), 0);
        bk.lastActAt = act_at + pre;
        bk.readyAt = act_at + pre + tim.tRCD;
        bk.openRow = static_cast<std::int64_t>(da.row);
        doAct(da.bank, da.row, act_at + pre);
        res = {done - now + tim.busOverhead, false, true};
    }
    return res;
}

void
Dimm::writeBytes(const DramAddr &da, const std::uint8_t *data,
                 std::size_t len, Ns now)
{
    if (da.col + len > prof.geom.rowBytes)
        panic("Dimm::writeBytes: write crosses row boundary");
    RowState &rs = rowState(da.bank, da.row, now);
    auto &bytes = materializeData(rs);
    std::copy(data, data + len, bytes.begin() + da.col);
    // The write activates and restores the row.
    resetDisturb(rs, da.bank, da.row, now, ResetSource::DataWrite);
    rs.lastRefresh = now;
    std::fill(rs.flipped.begin(), rs.flipped.end(), false);
}

std::uint8_t
Dimm::readByte(const DramAddr &da, Ns now)
{
    RowState &rs = rowState(da.bank, da.row, now);
    std::uint8_t v = rs.data ? (*rs.data)[da.col] : rs.fill;
    // Reading activates and restores the row.
    resetDisturb(rs, da.bank, da.row, now, ResetSource::DataRead);
    rs.lastRefresh = now;
    return v;
}

void
Dimm::fillRow(std::uint32_t bank, std::uint64_t row, std::uint8_t pattern,
              Ns now)
{
    RowState &rs = rowState(bank, row, now);
    rs.fill = pattern;
    if (rs.data)
        std::fill(rs.data->begin(), rs.data->end(), pattern);
    resetDisturb(rs, bank, row, now, ResetSource::DataWrite);
    rs.lastRefresh = now;
    std::fill(rs.flipped.begin(), rs.flipped.end(), false);
}

std::vector<FlipRecord>
Dimm::diffRow(std::uint32_t bank, std::uint64_t row, std::uint8_t expected,
              Ns now)
{
    std::vector<FlipRecord> out;
    RowState &rs = rowState(bank, row, now);
    if (!rs.data)
        return out;
    const auto &bytes = *rs.data;
    for (std::uint32_t b = 0; b < bytes.size(); ++b) {
        std::uint8_t diff = bytes[b] ^ expected;
        while (diff) {
            unsigned bit_idx = std::countr_zero(diff);
            diff &= diff - 1;
            bool to_one = bytes[b] & (1u << bit_idx);
            out.push_back({bank, row, (b << 3) + bit_idx, to_one, now});
        }
    }
    return out;
}

} // namespace rho
