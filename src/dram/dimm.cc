#include "dram/dimm.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fault/fault_injector.hh"

namespace rho
{

Dimm::Dimm(const DimmProfile &profile, const DramTiming &timing,
           const TrrConfig &trr_cfg, const RfmConfig &rfm_cfg,
           const PracConfig &prac_cfg, const EccConfig &ecc_cfg)
    : prof(profile), tim(timing), ecc(ecc_cfg),
      eccDecoder(ecc_cfg.codewordBytes),
      trr(trr_cfg, profile.geom.flatBanks()),
      rfm(rfm_cfg, profile.geom.flatBanks()),
      prac(prac_cfg, profile.geom.flatBanks()),
      bankOpenRow(profile.geom.flatBanks(), -1),
      bankReadyAt(profile.geom.flatBanks(), 0.0),
      bankLastActAt(profile.geom.flatBanks(), -1e18),
      bankRefSeen(profile.geom.flatBanks(), 0.0),
      bankRows(profile.geom.flatBanks()), nextTrrTick(timing.tREFI),
      halfDoubleWeight(profile.halfDoubleWeight)
{
    if (ecc.enabled
        && (ecc.codewordBytes == 0
            || profile.geom.rowBytes % ecc.codewordBytes != 0))
        panic("Dimm: ECC codeword (%u B) must evenly divide the row "
              "(%u B)",
              ecc.codewordBytes,
              static_cast<unsigned>(profile.geom.rowBytes));
}

void
Dimm::reset()
{
    rows.clear();
    for (BankRows &b : bankRows)
        b = BankRows{};
    flips.clear();
    std::fill(bankOpenRow.begin(), bankOpenRow.end(), -1);
    std::fill(bankReadyAt.begin(), bankReadyAt.end(), 0.0);
    std::fill(bankLastActAt.begin(), bankLastActAt.end(), -1e18);
    std::fill(bankRefSeen.begin(), bankRefSeen.end(), 0.0);
    acts = 0;
    nextTrrTick = tim.tREFI;
    pendingStall = 0.0;
    rfmStalls = 0.0;
    aboStalls = 0.0;
    trr.reset();
    rfm.reset();
    prac.reset();
}

void
Dimm::setRowStore(RowStoreKind kind)
{
    if (kind == store)
        return;
    if (acts != 0 || anyRowState())
        panic("Dimm::setRowStore: row state already materialized; "
              "select the store right after construction or reset()");
    store = kind;
}

bool
Dimm::anyRowState() const
{
    if (!rows.empty())
        return true;
    for (const BankRows &b : bankRows) {
        if (!b.pool.empty())
            return true;
    }
    return false;
}

Ns
Dimm::autoRefreshBefore(std::uint64_t row, Ns now) const
{
    // The refresh engine sweeps all rows once per tREFW in
    // refreshSlots bursts; a row's slot is its index modulo the slot
    // count, giving every row a fixed phase within the window.
    double slot = static_cast<double>(row % DramTiming::refreshSlots);
    Ns phase = (slot + 0.5) / DramTiming::refreshSlots * tim.tREFW;
    double k = std::floor((now - phase) / tim.tREFW);
    return phase + k * tim.tREFW;
}

// Zero a row's accumulated disturbance, emitting DisturbReset only
// when charge was actually dropped — so a quiet row never produces
// trace chatter and the causal replay sees exactly the resets that
// gate flips.
void
Dimm::resetDisturb(RowState &rs, std::uint32_t bank, std::uint64_t row,
                   Ns when, ResetSource source)
{
    if (rs.disturb > 0.0) {
        RHO_TRACE(tracer, when, EventKind::DisturbReset,
                  static_cast<std::uint8_t>(source), bank, row,
                  traceBits(rs.disturb));
    }
    rs.disturb = 0.0;
}

void
Dimm::applyAutoRefresh(RowState &rs, std::uint32_t bank,
                       std::uint64_t row, Ns now)
{
    // Memoised no-op check: autoRefreshBefore is monotone in now, so
    // while now is short of the next slot boundary (arBoundary) and
    // lastRefresh still covers the last evaluated slot (arLast), the
    // refresh below provably cannot fire and one comparison suffices.
    // The lastRefresh guard keeps this exact even when a TRR-driven
    // refresh rolls lastRefresh back to an earlier tick time.
    if (store == RowStoreKind::Flat && now < rs.arBoundary
        && rs.lastRefresh >= rs.arLast)
        return;
    Ns last = autoRefreshBefore(row, now);
    rs.arLast = last;
    rs.arBoundary = last + tim.tREFW;
    if (last > rs.lastRefresh) {
        rs.lastRefresh = last;
        // Stamped with the refresh's own (earlier) time: the stream
        // stays causally ordered even though the reset applies lazily.
        resetDisturb(rs, bank, row, last, ResetSource::AutoRefresh);
    }
}

Dimm::RowState *
Dimm::flatFind(BankRows &b, std::uint64_t row) const
{
    if (b.keys.empty())
        return nullptr;
    std::size_t mask = b.keys.size() - 1;
    std::size_t i = splitMix64(row) & mask;
    while (b.keys[i] != BankRows::emptyKey) {
        if (b.keys[i] == row)
            return b.vals[i];
        i = (i + 1) & mask;
    }
    return nullptr;
}

void
Dimm::flatGrow(BankRows &b)
{
    std::vector<std::uint64_t> old_keys = std::move(b.keys);
    std::vector<RowState *> old_vals = std::move(b.vals);
    std::size_t cap = old_keys.empty() ? 256 : old_keys.size() * 2;
    b.keys.assign(cap, BankRows::emptyKey);
    b.vals.assign(cap, nullptr);
    std::size_t mask = cap - 1;
    for (std::size_t j = 0; j < old_keys.size(); ++j) {
        if (old_keys[j] == BankRows::emptyKey)
            continue;
        std::size_t i = splitMix64(old_keys[j]) & mask;
        while (b.keys[i] != BankRows::emptyKey)
            i = (i + 1) & mask;
        b.keys[i] = old_keys[j];
        b.vals[i] = old_vals[j];
    }
}

/**
 * Find-or-create without applying the lazy auto-refresh (callers do
 * that at each use). Checks the direct-mapped cache, then the
 * open-addressed index, then inserts into the pointer-stable pool.
 */
Dimm::RowState *
Dimm::flatLookup(BankRows &b, std::uint64_t row, Ns now)
{
    BankRows::CacheEntry &ce = b.cache[row & (BankRows::cacheWays - 1)];
    if (ce.tag == row)
        return ce.rs;
    RowState *rs = flatFind(b, row);
    if (!rs) {
        if (b.keys.empty() || (b.used + 1) * 10 >= b.keys.size() * 7)
            flatGrow(b);
        b.pool.emplace_back();
        rs = &b.pool.back();
        rs->lastRefresh = autoRefreshBefore(row, now);
        std::size_t mask = b.keys.size() - 1;
        std::size_t i = splitMix64(row) & mask;
        while (b.keys[i] != BankRows::emptyKey)
            i = (i + 1) & mask;
        b.keys[i] = row;
        b.vals[i] = rs;
        ++b.used;
    }
    ce.tag = row;
    ce.rs = rs;
    return rs;
}

Dimm::RowState &
Dimm::rowState(std::uint32_t bank, std::uint64_t row, Ns now)
{
    if (store == RowStoreKind::Flat) {
        RowState *rs = flatLookup(bankRows[bank], row, now);
        // A just-created row has lastRefresh == the slot this call
        // would compute, so applying the lazy refresh unconditionally
        // is a no-op for it — same semantics as the reference path.
        applyAutoRefresh(*rs, bank, row, now);
        return *rs;
    }
    auto [it, inserted] = rows.try_emplace(rowKey(bank, row));
    RowState &rs = it->second;
    if (inserted)
        rs.lastRefresh = autoRefreshBefore(row, now);
    else
        applyAutoRefresh(rs, bank, row, now);
    return rs;
}

std::vector<std::uint8_t> &
Dimm::materializeData(RowState &rs)
{
    if (!rs.data) {
        rs.data = std::make_unique<std::vector<std::uint8_t>>(
            prof.geom.rowBytes, rs.fill);
        // The ECC shadow materializes with the data: both start as the
        // fill pattern, so data implies shadow while ECC is on.
        if (ecc.enabled) {
            rs.shadow = std::make_unique<std::vector<std::uint8_t>>(
                prof.geom.rowBytes, rs.fill);
        }
    }
    return *rs.data;
}

/**
 * Run the SEC decoder over one aligned codeword: the error set is the
 * per-bit difference between the stored cells and the as-written
 * shadow. `base` is the codeword's first byte offset within the row.
 */
EccDecision
Dimm::decodeCodeword(const RowState &rs, std::uint32_t base) const
{
    std::vector<std::uint32_t> errs;
    const auto &data = *rs.data;
    const auto &shadow = *rs.shadow;
    for (std::uint32_t b = 0; b < ecc.codewordBytes; ++b) {
        std::uint8_t diff = data[base + b] ^ shadow[base + b];
        while (diff) {
            unsigned bit = std::countr_zero(diff);
            diff &= diff - 1;
            errs.push_back(b * 8 + bit);
        }
    }
    return eccDecoder.decide(errs);
}

void
Dimm::recomputeMinThreshold(RowState &rs)
{
    double m = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < rs.cells.size(); ++i) {
        if (!rs.flipped[i])
            m = std::min(m, static_cast<double>(rs.cells[i].threshold));
    }
    rs.minUnflipped = m;
}

void
Dimm::disturbNeighbour(std::uint32_t bank, std::uint64_t victim,
                       double weight, Ns now)
{
    RowState &rs = rowState(bank, victim, now);
    disturbCells(rs, bank, victim, weight, now);
}

void
Dimm::initCells(RowState &rs, std::uint32_t bank, std::uint64_t victim)
{
    rs.cells = prof.weakCellsFor(bank, victim);
    rs.flipped.assign(rs.cells.size(), false);
    rs.cellsInit = true;
    recomputeMinThreshold(rs);
}

void
Dimm::disturbCells(RowState &rs, std::uint32_t bank, std::uint64_t victim,
                   double weight, Ns now)
{
    rs.disturb += weight;
    RHO_TRACE(tracer, now, EventKind::Disturb, 0, bank, victim,
              traceBits(weight));

    if (!rs.cellsInit)
        initCells(rs, bank, victim);
    if (rs.cells.empty())
        return;
    // Common-case O(1) exit: no unlatched cell can have crossed its
    // threshold yet (minUnflipped is a conservative lower bound), so
    // the scan below — including its fault-injection draws — cannot
    // do anything.
    if (store == RowStoreKind::Flat && rs.disturb < rs.minUnflipped)
        return;

    scanCells(rs, bank, victim, now);
}

void
Dimm::scanCells(RowState &rs, std::uint32_t bank, std::uint64_t victim,
                Ns now)
{
    for (std::size_t i = 0; i < rs.cells.size(); ++i) {
        if (rs.flipped[i] || rs.disturb < rs.cells[i].threshold)
            continue;
        // Injected non-reproduction (Kim et al.: flip reproducibility
        // is itself probabilistic): the cell spontaneously retains its
        // charge and the row's accumulated disturbance is restored, so
        // the hammer must re-accumulate from zero. A retried run can
        // still produce the flip; a budget-exhausted run cannot.
        if (injector && injector->suppressFlip()) {
            // FlipSuppressed implies the disturb reset; the causal
            // replay treats it as one (no separate DisturbReset).
            // minUnflipped stays a valid (conservative) bound: no
            // latch changed.
            RHO_TRACE(tracer, now, EventKind::FlipSuppressed, 0, bank,
                      victim, traceBits(rs.disturb));
            rs.disturb = 0.0;
            return;
        }
        // Threshold crossed: the cell loses its charged state. The
        // flip only manifests if the stored bit is in the vulnerable
        // orientation (true cell storing 1, anti cell storing 0).
        auto &data = materializeData(rs);
        const WeakCell &c = rs.cells[i];
        std::uint32_t byte = c.bitOffset >> 3;
        std::uint8_t mask = 1u << (c.bitOffset & 7);
        bool stored_one = data[byte] & mask;
        if (c.trueCell && stored_one) {
            data[byte] &= ~mask;
            flips.push_back({bank, victim, c.bitOffset, false, now});
            RHO_TRACE(tracer, now, EventKind::BitFlip, 0, bank, victim,
                      c.bitOffset);
        } else if (!c.trueCell && !stored_one) {
            data[byte] |= mask;
            flips.push_back({bank, victim, c.bitOffset, true, now});
            RHO_TRACE(tracer, now, EventKind::BitFlip, 1, bank, victim,
                      c.bitOffset);
        }
        rs.flipped[i] = true;
    }
    recomputeMinThreshold(rs);
}

void
Dimm::refreshNeighbours(std::uint32_t bank, std::uint64_t row, Ns now,
                        ResetSource source)
{
    const int radius = static_cast<int>(prof.refreshRadius);
    const std::int64_t rows_per_bank =
        static_cast<std::int64_t>(prof.geom.rowsPerBank);
    for (int d = -radius; d <= radius; ++d) {
        if (d == 0)
            continue;
        std::int64_t v = static_cast<std::int64_t>(row) + d;
        if (v < 0 || v >= rows_per_bank)
            continue;
        RowState &rs = rowState(bank, static_cast<std::uint64_t>(v), now);
        resetDisturb(rs, bank, static_cast<std::uint64_t>(v), now, source);
        rs.lastRefresh = now;
    }

    // Half-Double: each victim refresh above is itself an activation,
    // and on parts with measurable distance-2 coupling it disturbs its
    // *own* distance-1 neighbourhood. With the narrow LPDDR4-style
    // sweep (radius 1) the refreshes of r+-1 therefore hammer r+-2 —
    // rows the sweep did NOT reset — turning the mitigation into the
    // attack vector. The sweep completes first (matching the command
    // order of a real per-row refresh train), then the disturbances
    // land.
    if (prof.refreshDisturbWeight <= 0.0)
        return;
    for (int d = -radius; d <= radius; ++d) {
        if (d == 0)
            continue;
        std::int64_t v = static_cast<std::int64_t>(row) + d;
        if (v < 0 || v >= rows_per_bank)
            continue;
        for (int e = -1; e <= 1; e += 2) {
            std::int64_t u = v + e;
            if (u < 0 || u >= rows_per_bank)
                continue;
            disturbNeighbour(bank, static_cast<std::uint64_t>(u),
                             prof.refreshDisturbWeight, now);
        }
    }
}

void
Dimm::processTrrTicks(Ns now)
{
    // Epoch gate: nextTrrTick is the next tREFI boundary (set at
    // construction/reset), so between boundaries — i.e. for almost
    // every ACT of a hammer burst — advancing the mitigation clocks is
    // provably a no-op and costs this one compare. When now is short
    // of the boundary, neither the fast-forward test (now - nextTrrTick
    // is negative) nor the tick loop below could fire.
    if (now < nextTrrTick)
        return;
    // If the simulation jumped far ahead (idle phases), fast-forward:
    // stale counters would have decayed anyway.
    if (now - nextTrrTick > tim.tREFW) {
        nextTrrTick = std::floor(now / tim.tREFI) * tim.tREFI;
    }
    while (nextTrrTick <= now) {
        for (const TrrTarget &t : trr.onRefreshTick(nextTrrTick)) {
            RHO_TRACE(tracer, nextTrrTick, EventKind::TrrTargetedRefresh,
                      0, t.bank, t.row, 0);
            refreshNeighbours(t.bank, t.row, nextTrrTick,
                              ResetSource::TrrNeighbor);
        }
        // Each tick is one REF command: per JEDEC, REF subtracts from
        // every bank's rolling accumulated ACT count. (Ticks skipped
        // by the idle fast-forward above carry no decrement — the
        // device was quiescent, so its RAA counters were near zero.)
        rfm.onRef();
        nextTrrTick += tim.tREFI;
    }
}

void
Dimm::doAct(std::uint32_t bank, std::uint64_t row, Ns now)
{
    ++acts;
    RHO_TRACE(tracer, now, EventKind::DramAct, 0, bank, row, 0);
    processTrrTicks(now);

    // A passive sampler (TRR and pTRR both off) draws no randomness
    // and mutates nothing, so skipping the call is observably
    // identical — it only removes call overhead from the hot loop.
    if (trr.active()) {
        if (auto ptrr = trr.observeAct(bank, row, now)) {
            RHO_TRACE(tracer, now, EventKind::PtrrRefresh, 0, ptrr->bank,
                      ptrr->row, 0);
            refreshNeighbours(ptrr->bank, ptrr->row, now,
                              ResetSource::TrrNeighbor);
        }
    }

    // DDR5 refresh management: deterministic per-bank RAA counters
    // trigger RFM commands that protect recently activated rows.
    // (A disabled engine observes nothing, so the call is skipped.)
    if (rfm.enabled()) {
        RfmAction a = rfm.observeAct(bank, row);
        if (a.fired) {
            pendingStall += tim.tRFM;
            rfmStalls += tim.tRFM;
            RHO_TRACE(tracer, now, EventKind::MitigationStall, 0, bank, 0,
                      traceBits(tim.tRFM));
            for (const TrrTarget &t : a.protect) {
                RHO_TRACE(tracer, now, EventKind::RfmRefresh,
                          a.urgent ? 1 : 0, t.bank, t.row, 0);
                refreshNeighbours(t.bank, t.row, now,
                                  ResetSource::RfmNeighbor);
            }
        }
    }

    // PRAC: exact per-row counters inside the array; a row crossing
    // the threshold pulls ALERT_n and the device services the hottest
    // rows during the Alert Back-Off window.
    if (prac.enabled()) {
        PracAlertAction alert = prac.observeAct(bank, row);
        if (!alert.protect.empty()) {
            RHO_TRACE(tracer, now, EventKind::PracAlert, 0, bank, row,
                      alert.peak);
            pendingStall += tim.tABO;
            aboStalls += tim.tABO;
            RHO_TRACE(tracer, now, EventKind::MitigationStall, 1, bank, 0,
                      traceBits(tim.tABO));
            for (const TrrTarget &t : alert.protect) {
                RHO_TRACE(tracer, now, EventKind::AboRefresh, 0, t.bank,
                          t.row, 0);
                refreshNeighbours(t.bank, t.row, now,
                                  ResetSource::PracNeighbor);
            }
        }
    }

    // Injected spurious TRR: the controller refreshes this row's
    // neighbourhood even though no sampler selected it.
    if (injector && injector->spuriousRefresh()) {
        RHO_TRACE(tracer, now, EventKind::SpuriousRefresh, 0, bank, row, 0);
        refreshNeighbours(bank, row, now, ResetSource::Spurious);
    }

    static constexpr int ds[4] = {-2, -1, 1, 2};

    if (store == RowStoreKind::Flat) {
        BankRows &b = bankRows[bank];
        BankRows::NbEntry &ne = b.nbCache[row & (BankRows::nbWays - 1)];
        if (ne.tag != row) {
            ne.tag = row;
            ne.self = flatLookup(b, row, now);
            for (unsigned i = 0; i < 4; ++i) {
                std::int64_t v = static_cast<std::int64_t>(row) + ds[i];
                ne.nb[i] =
                    (v >= 0
                     && v < static_cast<std::int64_t>(prof.geom.rowsPerBank))
                        ? flatLookup(b, static_cast<std::uint64_t>(v), now)
                        : nullptr;
            }
        }
        // Activating a row restores the charge of its own cells. The
        // auto-refresh memo (arLast/arBoundary) is re-checked inline
        // so the common no-op case costs two compares and no call;
        // applyAutoRefresh performs the identical check again, so the
        // split cannot change behaviour.
        RowState &self = *ne.self;
        if (!(now < self.arBoundary && self.lastRefresh >= self.arLast))
            applyAutoRefresh(self, bank, row, now);
        resetDisturb(self, bank, row, now, ResetSource::SelfAct);
        self.lastRefresh = now;
        for (unsigned i = 0; i < 4; ++i) {
            if (!ne.nb[i])
                continue;
            RowState &nb = *ne.nb[i];
            std::uint64_t victim = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(row) + ds[i]);
            double w = (ds[i] == 1 || ds[i] == -1) ? 1.0 : halfDoubleWeight;
            if (!(now < nb.arBoundary && nb.lastRefresh >= nb.arLast))
                applyAutoRefresh(nb, bank, victim, now);
            // Inlined disturbCells fast path (same checks, same order):
            // accumulate, trace, lazily materialize the cell list, and
            // only fall into the scan when an unlatched cell could
            // actually have crossed its threshold.
            nb.disturb += w;
            RHO_TRACE(tracer, now, EventKind::Disturb, 0, bank, victim,
                      traceBits(w));
            if (!nb.cellsInit)
                initCells(nb, bank, victim);
            if (!nb.cells.empty() && nb.disturb >= nb.minUnflipped)
                scanCells(nb, bank, victim, now);
        }
        return;
    }

    // Reference path: every row resolved through the hash map.
    RowState &self = rowState(bank, row, now);
    resetDisturb(self, bank, row, now, ResetSource::SelfAct);
    self.lastRefresh = now;

    for (int d = -2; d <= 2; ++d) {
        if (d == 0)
            continue;
        std::int64_t v = static_cast<std::int64_t>(row) + d;
        if (v < 0 || v >= static_cast<std::int64_t>(prof.geom.rowsPerBank))
            continue;
        double w = (d == 1 || d == -1) ? 1.0 : halfDoubleWeight;
        disturbNeighbour(bank, static_cast<std::uint64_t>(v), w, now);
    }
}

DramAccessResult
Dimm::access(const DramAddr &da, Ns now)
{
    if (da.bank >= bankOpenRow.size())
        panic("Dimm::access: bank %u out of range", da.bank);
    if (da.row >= prof.geom.rowsPerBank)
        panic("Dimm::access: row %llu out of range",
              static_cast<unsigned long long>(da.row));

    Ns start = std::max(now, bankReadyAt[da.bank]);

    // REF blocking (DramTiming::refBlocking platforms): a periodic
    // all-bank REF fires every tREFI. It closes the open row, and an
    // access landing inside the tRFC service window stalls to its end
    // — the latency spike hammer/ref_sync locks onto. Accounted lazily
    // per bank: only the most recent boundary matters, because the
    // row-closure and the stall are both idempotent per window.
    if (tim.refBlocking) {
        Ns boundary = std::floor(start / tim.tREFI) * tim.tREFI;
        if (boundary > 0.0) {
            if (boundary > bankRefSeen[da.bank]) {
                bankRefSeen[da.bank] = boundary;
                if (bankOpenRow[da.bank] >= 0) {
                    RHO_TRACE(tracer, boundary, EventKind::DramPre, 1,
                              da.bank,
                              static_cast<std::uint64_t>(
                                  bankOpenRow[da.bank]),
                              0);
                    bankOpenRow[da.bank] = -1;
                }
            }
            if (start - boundary < tim.tRFC)
                start = boundary + tim.tRFC;
        }
    }

    DramAccessResult res{};

    if (bankOpenRow[da.bank] == static_cast<std::int64_t>(da.row)) {
        // Row-buffer hit: CAS only.
        Ns done = start + tim.tCL;
        bankReadyAt[da.bank] = start + 4 * tim.tCK;
        RHO_TRACE(tracer, start, EventKind::DramRowHit, 0, da.bank,
                  da.row, 0);
        res = {done - now + tim.busOverhead, true, false};
    } else {
        bool conflict = bankOpenRow[da.bank] >= 0;
        // ACT-to-ACT spacing within the bank (tRC) and, on conflict,
        // the precharge of the currently open row.
        Ns act_at = std::max(start, bankLastActAt[da.bank] + tim.tRC);
        Ns pre = conflict ? tim.tRP : 0.0;
        Ns done = act_at + pre + tim.tRCD + tim.tCL;
        if (conflict)
            RHO_TRACE(tracer, act_at, EventKind::DramPre, 0, da.bank,
                      static_cast<std::uint64_t>(bankOpenRow[da.bank]), 0);
        bankLastActAt[da.bank] = act_at + pre;
        bankReadyAt[da.bank] = act_at + pre + tim.tRCD;
        bankOpenRow[da.bank] = static_cast<std::int64_t>(da.row);
        doAct(da.bank, da.row, act_at + pre);
        // Mitigation commands raised by this ACT (RFM, Alert Back-Off)
        // block the bank: fold the pending stall into the access
        // latency and push out the bank's ready time.
        if (pendingStall > 0.0) {
            done += pendingStall;
            bankReadyAt[da.bank] += pendingStall;
            bankLastActAt[da.bank] += pendingStall;
            pendingStall = 0.0;
        }
        res = {done - now + tim.busOverhead, false, true};
    }
    return res;
}

void
Dimm::writeBytes(const DramAddr &da, const std::uint8_t *data,
                 std::size_t len, Ns now)
{
    if (da.col + len > prof.geom.rowBytes)
        panic("Dimm::writeBytes: write crosses row boundary");
    RowState &rs = rowState(da.bank, da.row, now);
    auto &bytes = materializeData(rs);
    std::copy(data, data + len, bytes.begin() + da.col);
    // The device recomputes check bits over the written data: the
    // shadow tracks exactly what was last written.
    if (rs.shadow)
        std::copy(data, data + len, rs.shadow->begin() + da.col);
    // The write activates and restores the row.
    resetDisturb(rs, da.bank, da.row, now, ResetSource::DataWrite);
    rs.lastRefresh = now;
    // Re-arm exactly the latches whose stored byte was rewritten: a
    // partial write leaves cells outside the range latched (their data
    // was not touched, so there is no fresh charge state to lose).
    if (rs.cellsInit && !rs.cells.empty()) {
        bool rearmed = false;
        for (std::size_t i = 0; i < rs.cells.size(); ++i) {
            std::uint32_t byte = rs.cells[i].bitOffset >> 3;
            if (rs.flipped[i] && byte >= da.col && byte < da.col + len) {
                rs.flipped[i] = false;
                rearmed = true;
            }
        }
        if (rearmed)
            recomputeMinThreshold(rs);
    }
}

std::uint8_t
Dimm::readByte(const DramAddr &da, Ns now)
{
    RowState &rs = rowState(da.bank, da.row, now);
    std::uint8_t v = rs.data ? (*rs.data)[da.col] : rs.fill;
    // On-die ECC runs on the read path, per codeword. An event is
    // emitted only when the decoder's action lands in the byte being
    // returned — i.e. when the controller-visible value differs from
    // the raw cells.
    if (ecc.enabled && rs.data) {
        std::uint32_t base = da.col - (da.col % ecc.codewordBytes);
        EccDecision d = decodeCodeword(rs, base);
        if (d.action == EccAction::Corrected
            || d.action == EccAction::Miscorrected) {
            std::uint32_t byte = base + (d.targetBit >> 3);
            if (byte == da.col) {
                v ^= static_cast<std::uint8_t>(1u << (d.targetBit & 7));
                RHO_TRACE(tracer, now,
                          d.action == EccAction::Corrected
                              ? EventKind::EccCorrected
                              : EventKind::EccMiscorrect,
                          0, da.bank, da.row,
                          static_cast<std::uint64_t>(base) * 8
                              + d.targetBit);
            }
        }
    }
    // Reading activates and restores the row — but does not re-arm
    // flip latches: the sense amplifiers write back the (flipped)
    // value that was read, not fresh data.
    resetDisturb(rs, da.bank, da.row, now, ResetSource::DataRead);
    rs.lastRefresh = now;
    return v;
}

void
Dimm::fillRow(std::uint32_t bank, std::uint64_t row, std::uint8_t pattern,
              Ns now)
{
    RowState &rs = rowState(bank, row, now);
    rs.fill = pattern;
    if (rs.data)
        std::fill(rs.data->begin(), rs.data->end(), pattern);
    if (rs.shadow)
        std::fill(rs.shadow->begin(), rs.shadow->end(), pattern);
    resetDisturb(rs, bank, row, now, ResetSource::DataWrite);
    rs.lastRefresh = now;
    // The whole row's data is rewritten: every latch re-arms.
    if (rs.cellsInit) {
        std::fill(rs.flipped.begin(), rs.flipped.end(), false);
        recomputeMinThreshold(rs);
    }
}

std::vector<FlipRecord>
Dimm::diffRow(std::uint32_t bank, std::uint64_t row, std::uint8_t expected,
              Ns now)
{
    std::vector<FlipRecord> out;
    RowState &rs = rowState(bank, row, now);
    if (!rs.data)
        return out;
    const auto &bytes = *rs.data;
    if (!ecc.enabled) {
        for (std::uint32_t b = 0; b < bytes.size(); ++b) {
            std::uint8_t diff = bytes[b] ^ expected;
            while (diff) {
                unsigned bit_idx = std::countr_zero(diff);
                diff &= diff - 1;
                bool to_one = bytes[b] & (1u << bit_idx);
                out.push_back({bank, row, (b << 3) + bit_idx, to_one, now});
            }
        }
        return out;
    }
    // ECC view: decode each codeword, apply the decoder's (mis)action
    // to a working copy, then diff the corrected bytes. Single-bit
    // flips vanish here (and are traced as corrections); multi-bit
    // patterns either alias past the decoder or get a third bit
    // corrupted.
    std::vector<std::uint8_t> cw(ecc.codewordBytes);
    for (std::uint32_t base = 0; base < bytes.size();
         base += ecc.codewordBytes) {
        std::copy(bytes.begin() + base,
                  bytes.begin() + base + ecc.codewordBytes, cw.begin());
        EccDecision d = decodeCodeword(rs, base);
        if (d.action == EccAction::Corrected
            || d.action == EccAction::Miscorrected) {
            cw[d.targetBit >> 3] ^=
                static_cast<std::uint8_t>(1u << (d.targetBit & 7));
            RHO_TRACE(tracer, now,
                      d.action == EccAction::Corrected
                          ? EventKind::EccCorrected
                          : EventKind::EccMiscorrect,
                      0, bank, row,
                      static_cast<std::uint64_t>(base) * 8 + d.targetBit);
        }
        for (std::uint32_t b = 0; b < ecc.codewordBytes; ++b) {
            std::uint8_t diff = cw[b] ^ expected;
            while (diff) {
                unsigned bit_idx = std::countr_zero(diff);
                diff &= diff - 1;
                bool to_one = cw[b] & (1u << bit_idx);
                out.push_back(
                    {bank, row, ((base + b) << 3) + bit_idx, to_one, now});
            }
        }
    }
    return out;
}

} // namespace rho
