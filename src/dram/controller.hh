/**
 * @file
 * Memory controller: binds an AddressMapping to a Dimm and exposes
 * physical-address based timed and functional access.
 */

#ifndef RHO_DRAM_CONTROLLER_HH
#define RHO_DRAM_CONTROLLER_HH

#include <memory>

#include "dram/dimm.hh"
#include "mapping/address_mapping.hh"

namespace rho
{

/**
 * Single-channel memory controller. Owns the DIMM; translation uses
 * the (CPU-specific) AddressMapping.
 */
class MemoryController
{
  public:
    MemoryController(AddressMapping mapping, const DimmProfile &profile,
                     const DramTiming &timing, const TrrConfig &trr_cfg,
                     const RfmConfig &rfm_cfg = RfmConfig{},
                     const PracConfig &prac_cfg = PracConfig{},
                     const EccConfig &ecc_cfg = EccConfig{});

    /** Timed access by physical address. */
    DramAccessResult access(PhysAddr pa, Ns now);

    /**
     * Timed access by pre-decoded DRAM address — the fast path for
     * callers that cache decode() results for a fixed working set
     * (MemorySystem::resolveLine). Identical to access(pa, now) for
     * da == decode(pa).
     */
    DramAccessResult access(const DramAddr &da, Ns now);

    /** Physical-to-DRAM address translation (pure). */
    DramAddr decode(PhysAddr pa) const { return map.decode(pa); }

    /** Functional data path (used to plant and check victim data). */
    std::uint8_t readByte(PhysAddr pa, Ns now);
    void writeByte(PhysAddr pa, std::uint8_t value, Ns now);

    const AddressMapping &mapping() const { return map; }
    Dimm &dimm() { return *dev; }
    const Dimm &dimm() const { return *dev; }

  private:
    AddressMapping map;
    std::unique_ptr<Dimm> dev;
};

} // namespace rho

#endif // RHO_DRAM_CONTROLLER_HH
