/**
 * @file
 * PRAC — Per-Row Activation Counting with Alert Back-Off (ABO), the
 * DDR5 mitigation direction the paper's section 6 names as closing
 * the sampler-starvation loophole for good.
 *
 * PRAC stores an activation counter *in every DRAM row*; each ACT of a
 * row increments its own counter. The counters persist across regular
 * REF (they live in the row's storage, not in sampler SRAM), so no
 * amount of decoy churn or refresh phasing can make the device lose
 * track of an aggressor. When a row's count reaches the alert
 * threshold the device asserts ALERT_n and the host enters Alert
 * Back-Off: it stops issuing ACTs for the tABO window while the device
 * services the rows it knows are hottest — refreshing their
 * neighbourhoods and resetting the serviced counters.
 *
 * Model simplifications (documented in DESIGN.md):
 *  - counters are exact and per (bank, row), with no RFM-subtraction
 *    variant (JEDEC allows decrementing instead of zeroing);
 *  - ABO services up to `aboSlots` rows per alert: the crossing row
 *    plus the highest remaining counters at or above half threshold
 *    (deterministic tie-break on the lower row number);
 *  - the back-off stall is charged to the activating bank as a flat
 *    tABO penalty by the controller (see Dimm::access).
 */

#ifndef RHO_DRAM_PRAC_HH
#define RHO_DRAM_PRAC_HH

#include <cstdint>
#include <map>
#include <vector>

#include "dram/trr.hh"

namespace rho
{

/** PRAC/ABO tunables. */
struct PracConfig
{
    bool enabled = false;
    /**
     * Per-row ACT count that asserts ALERT_n. Safe deployments pick
     * this well below the DIMM's HC_first divided by the worst-case
     * neighbour amplification (two distance-1 aggressors at weight 1
     * plus two distance-2 at the half-double weight).
     */
    std::uint32_t threshold = 512;
    /**
     * Rows serviced per alert: the crossing row plus up to
     * (aboSlots - 1) further rows whose counters reached at least half
     * the threshold, hottest first.
     */
    unsigned aboSlots = 2;
};

/** What one alert serviced (empty `protect` = no alert). */
struct PracAlertAction
{
    std::vector<TrrTarget> protect; //!< rows whose neighbourhoods refresh
    std::uint32_t peak = 0;         //!< counter value that crossed
};

/**
 * Exact per-row activation counting. The owning Dimm feeds it ACTs;
 * it returns the rows serviced under Alert Back-Off when a counter
 * crosses the threshold.
 */
class PracEngine
{
  public:
    PracEngine(const PracConfig &cfg, std::uint32_t num_banks);

    /**
     * Observe one activation.
     * @return the ABO service decision (protect empty unless ALERT_n
     *         was asserted by this ACT).
     */
    PracAlertAction observeAct(std::uint32_t bank, std::uint64_t row);

    bool enabled() const { return cfg.enabled; }

    const PracConfig &config() const { return cfg; }

    /** ALERT_n assertions (= ABO windows) so far. */
    std::uint64_t alerts() const { return alertCount; }

    /** Current counter of one row (test introspection; 0 if untracked). */
    std::uint32_t rowCount(std::uint32_t bank, std::uint64_t row) const;

    /**
     * Restore the factory-fresh engine: drops every per-row counter
     * and the alert count.
     */
    void reset();

  private:
    PracConfig cfg;
    // Ordered map per bank: deterministic iteration for the hottest-
    // rows scan regardless of insertion history. Campaigns touch a
    // handful of distinct rows per bank, so the tree stays tiny.
    std::vector<std::map<std::uint64_t, std::uint32_t>> counts;
    std::uint64_t alertCount = 0;
};

} // namespace rho

#endif // RHO_DRAM_PRAC_HH
