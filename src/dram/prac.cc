#include "dram/prac.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rho
{

PracEngine::PracEngine(const PracConfig &cfg_, std::uint32_t num_banks)
    : cfg(cfg_), counts(num_banks)
{
    if (cfg.enabled && cfg.threshold == 0)
        panic("PracEngine: threshold must be positive when enabled");
    if (cfg.enabled && cfg.aboSlots == 0)
        panic("PracEngine: aboSlots must be positive when enabled");
}

void
PracEngine::reset()
{
    for (auto &bank : counts)
        bank.clear();
    alertCount = 0;
}

std::uint32_t
PracEngine::rowCount(std::uint32_t bank, std::uint64_t row) const
{
    const auto &table = counts[bank];
    auto it = table.find(row);
    return it == table.end() ? 0 : it->second;
}

PracAlertAction
PracEngine::observeAct(std::uint32_t bank, std::uint64_t row)
{
    PracAlertAction action;
    if (!cfg.enabled)
        return action;

    auto &table = counts[bank];
    std::uint32_t &count = table[row];
    if (++count < cfg.threshold)
        return action;

    // ALERT_n: the crossing row is serviced first, then the hottest
    // remaining counters at or above half threshold fill the ABO
    // service slots (hottest first, lower row number on ties — the
    // std::map scan makes the order deterministic).
    ++alertCount;
    action.peak = count;
    action.protect.push_back({bank, row});
    count = 0;

    if (cfg.aboSlots > 1) {
        std::vector<std::pair<std::uint32_t, std::uint64_t>> hot;
        std::uint32_t floor = cfg.threshold / 2;
        for (const auto &[r, c] : table) {
            if (r != row && c >= floor && c > 0)
                hot.push_back({c, r});
        }
        std::sort(hot.begin(), hot.end(),
                  [](const auto &a, const auto &b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                  });
        unsigned extra = std::min<std::size_t>(cfg.aboSlots - 1,
                                               hot.size());
        for (unsigned i = 0; i < extra; ++i) {
            action.protect.push_back({bank, hot[i].second});
            table[hot[i].second] = 0;
        }
    }
    return action;
}

} // namespace rho
