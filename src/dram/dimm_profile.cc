#include "dram/dimm_profile.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace rho
{

std::vector<WeakCell>
DimmProfile::weakCellsFor(std::uint32_t bank, std::uint64_t row) const
{
    std::vector<WeakCell> cells;
    if (!flippable)
        return cells;

    Rng rng(hashCombine(seed, hashCombine(bank, row)));
    std::uint64_t n = rng.poisson(weakCellsPerRow);
    cells.reserve(n);
    std::uint32_t max_bit = static_cast<std::uint32_t>(geom.rowBytes * 8);
    for (std::uint64_t i = 0; i < n; ++i) {
        WeakCell c;
        c.bitOffset = static_cast<std::uint32_t>(
            rng.uniformInt(0, max_bit - 1));
        c.trueCell = rng.chance(0.5);
        double hc = rng.logNormal(hcLogMean, hcLogSigma);
        c.threshold = static_cast<std::uint32_t>(
            std::max<double>(hcMin, hc));
        cells.push_back(c);
    }
    return cells;
}

namespace
{

DimmProfile
profile(const std::string &id, const std::string &date, unsigned mts,
        unsigned ranks, std::uint64_t rows, double wc_per_row,
        double hc_mean, double hc_sigma, std::uint32_t hc_min,
        std::uint64_t seed)
{
    DimmProfile p;
    p.id = id;
    p.productionDate = date;
    p.freqMts = mts;
    p.geom = DimmGeometry{ranks, 16, rows};
    p.seed = seed;
    p.flippable = wc_per_row > 0.0;
    p.weakCellsPerRow = wc_per_row;
    p.hcLogMean = std::log(hc_mean);
    p.hcLogSigma = hc_sigma;
    p.hcMin = hc_min;
    return p;
}

// The seven DDR4 UDIMMs of paper Table 2. Vulnerability parameters
// (weak-cell density and HC_first threshold distributions) are
// calibrated to the simulator's scaled 8 ms retention window so that
// relative flip-proneness matches Table 6:
// S4 > S3 > S2 ~ S1 >> S5 ~ H1 > M1 (= none).
const std::vector<DimmProfile> &
profiles()
{
    static const std::vector<DimmProfile> all = {
        profile("S1", "W35-2023", 3200, 2, 1ULL << 16,
                1.20, 11.0e3, 0.55, 3600, 0x51f00d01),
        profile("S2", "W33-2021", 3200, 1, 1ULL << 16,
                1.50, 10.0e3, 0.60, 3200, 0x51f00d02),
        profile("S3", "W30-2020", 2933, 2, 1ULL << 16,
                2.20, 9.0e3, 0.60, 2800, 0x51f00d03),
        profile("S4", "W49-2018", 2666, 2, 1ULL << 16,
                2.80, 8.0e3, 0.65, 2500, 0x51f00d04),
        profile("S5", "W22-2017", 2400, 2, 1ULL << 16,
                0.10, 14.0e3, 0.50, 5000, 0x51f00d05),
        profile("H1", "W13-2020", 2666, 2, 1ULL << 16,
                0.07, 15.0e3, 0.50, 5500, 0x51f00d06),
        profile("M1", "W01-2024", 3200, 2, 1ULL << 17,
                0.0, 1e9, 0.1, 1000000000u, 0x51f00d07),
    };
    return all;
}

} // namespace

const DimmProfile &
DimmProfile::byId(const std::string &id)
{
    for (const auto &p : profiles()) {
        if (p.id == id)
            return p;
    }
    fatal("DimmProfile::byId: unknown DIMM '%s'", id.c_str());
}

const DimmProfile &
DimmProfile::ddr5Sample()
{
    static const DimmProfile d1 = profile(
        "D1", "W10-2024", 4800, 2, 1ULL << 16,
        2.0, 8.0e3, 0.6, 2500, 0x51f00dd5);
    return d1;
}

const DimmProfile &
DimmProfile::lpddr4Sample()
{
    static const DimmProfile l1 = [] {
        DimmProfile p = profile("L1", "W20-2022", 3200, 1, 1ULL << 16,
                                1.80, 9.5e3, 0.60, 3000, 0x51f00dd4);
        p.standard = MemStandard::Lpddr4;
        // Half-Double configuration: the victim refresh only covers
        // r+-1, and each swept-row refresh re-disturbs its own
        // distance-1 neighbourhood — TRR's refreshes of r+-1 hammer
        // r+-2.
        p.refreshRadius = 1;
        p.refreshDisturbWeight = 0.30;
        p.halfDoubleWeight = 0.12;
        return p;
    }();
    return l1;
}

const std::vector<const DimmProfile *> &
DimmProfile::all()
{
    static const std::vector<const DimmProfile *> ptrs = [] {
        std::vector<const DimmProfile *> v;
        for (const auto &p : profiles())
            v.push_back(&p);
        return v;
    }();
    return ptrs;
}

} // namespace rho
