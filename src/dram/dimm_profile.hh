/**
 * @file
 * Per-DIMM vulnerability profiles (paper Table 2).
 *
 * Real DIMMs differ wildly in RowHammer susceptibility: which cells are
 * weak, their disturbance thresholds (HC_first), and their density vary
 * by vendor and production date. We model each DIMM as a deterministic
 * weak-cell field: the weak cells of a row are a pure function of
 * (profile seed, bank, row), so repeated experiments see the same
 * physical-location-dependent behaviour the paper reports.
 */

#ifndef RHO_DRAM_DIMM_PROFILE_HH
#define RHO_DRAM_DIMM_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rho
{

/** DIMM geometry: ranks, banks per rank, rows per bank. */
struct DimmGeometry
{
    unsigned ranks;
    unsigned banksPerRank;
    std::uint64_t rowsPerBank;
    std::uint64_t rowBytes = 8192;

    std::uint32_t flatBanks() const { return ranks * banksPerRank; }
    std::uint64_t
    totalBytes() const
    {
        return static_cast<std::uint64_t>(flatBanks()) * rowsPerBank
            * rowBytes;
    }
    unsigned sizeGib() const { return totalBytes() >> 30; }
};

/**
 * A disturbance-prone cell within a row. Offsets are bit positions
 * within the 8 KiB row. True cells flip 1 -> 0; anti cells 0 -> 1.
 */
struct WeakCell
{
    std::uint32_t bitOffset;  //!< 0 .. rowBytes*8-1
    bool trueCell;            //!< charged state encodes 1
    std::uint32_t threshold;  //!< disturbance (weighted ACTs) to flip
};

/**
 * Which JEDEC standard the device speaks. Auto derives the historical
 * behaviour from the data rate (>= 4000 MT/s is DDR5, else DDR4) so
 * the Table 2 profiles stay untouched.
 */
enum class MemStandard
{
    Auto,
    Ddr4,
    Ddr5,
    Lpddr4,
};

/**
 * Static description of one DIMM: identity, geometry, and the
 * statistical weak-cell field parameters.
 */
class DimmProfile
{
  public:
    std::string id;             //!< e.g. "S1"
    std::string productionDate; //!< e.g. "W35-2023"
    unsigned freqMts;           //!< rated data rate
    MemStandard standard = MemStandard::Auto;
    DimmGeometry geom;
    std::uint64_t seed;         //!< weak-cell field seed

    // Vulnerability field parameters.
    bool flippable;             //!< false: no weak cells at all (M1)
    double weakCellsPerRow;     //!< Poisson mean
    double hcLogMean;           //!< ln-space threshold location
    double hcLogSigma;          //!< ln-space threshold spread
    std::uint32_t hcMin;        //!< lower clamp on thresholds

    // First-order disturbance couplings ("Revisiting RowHammer" /
    // Half-Double). An ACT on row r disturbs r+-1 with weight 1 and
    // r+-2 with weight halfDoubleWeight; a victim refresh sweep
    // covers +-refreshRadius rows, and when refreshDisturbWeight > 0
    // each swept-row refresh acts as an activation disturbing *its*
    // distance-2 neighbourhood — the Half-Double lever: TRR's own
    // refreshes of r+-1 hammer r+-2 (and r itself is re-disturbed
    // from both sides).
    double halfDoubleWeight = 0.08;
    double refreshDisturbWeight = 0.0;
    unsigned refreshRadius = 2;

    /**
     * Deterministically materialize the weak cells of a row.
     * Pure function of (seed, bank, row); cheap enough to call lazily.
     */
    std::vector<WeakCell> weakCellsFor(std::uint32_t bank,
                                       std::uint64_t row) const;

    /** Look up one of the seven paper DIMMs: S1..S5, H1, M1. */
    static const DimmProfile &byId(const std::string &id);

    /** All seven paper DIMMs in Table 2 order. */
    static const std::vector<const DimmProfile *> &all();

    /**
     * A DDR5 UDIMM like the paper's section 6 future-work setups
     * (not part of Table 2): 16 GiB dual-rank DDR5-4800, flippable
     * cells present but protected by RFM at the device level.
     */
    static const DimmProfile &ddr5Sample();

    /**
     * An LPDDR4 mobile part for the ARMv8 backend (not part of
     * Table 2): 8 GiB single-rank LPDDR4-3200 with a radius-1 victim
     * refresh whose sweeps themselves disturb — the Half-Double
     * configuration (refreshRadius 1, refreshDisturbWeight > 0).
     */
    static const DimmProfile &lpddr4Sample();
};

} // namespace rho

#endif // RHO_DRAM_DIMM_PROFILE_HH
