#include "dram/rfm.hh"

#include <algorithm>

namespace rho
{

RfmEngine::RfmEngine(const RfmConfig &cfg_, std::uint32_t num_banks)
    : cfg(cfg_), banks(num_banks)
{
}

void
RfmEngine::reset()
{
    for (BankState &b : banks)
        b = BankState{};
    rfms = 0;
}

std::vector<TrrTarget>
RfmEngine::observeAct(std::uint32_t bank, std::uint64_t row)
{
    std::vector<TrrTarget> out;
    if (!cfg.enabled)
        return out;

    BankState &b = banks[bank];

    // Recency list: move-to-front of distinct rows.
    auto it = std::find(b.recent.begin(), b.recent.end(), row);
    if (it != b.recent.end())
        b.recent.erase(it);
    b.recent.insert(b.recent.begin(), row);
    if (b.recent.size() > cfg.recencyDepth)
        b.recent.pop_back();

    if (++b.raa >= cfg.raaimt) {
        b.raa = 0;
        ++rfms;
        // The device refreshes the neighbourhoods of the rows it saw
        // activated most recently — deterministic, so no pattern can
        // hide its true aggressors from it.
        unsigned n = std::min<unsigned>(cfg.victimsPerRfm,
                                        b.recent.size());
        for (unsigned i = 0; i < n; ++i)
            out.push_back({bank, b.recent[i]});
    }
    return out;
}

} // namespace rho
