#include "dram/rfm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rho
{

const char *
rfmLevelName(RfmLevel level)
{
    switch (level) {
      case RfmLevel::Off: return "off";
      case RfmLevel::Relaxed: return "relaxed";
      case RfmLevel::Default: return "default";
      case RfmLevel::Strict: return "strict";
    }
    return "unknown";
}

RfmConfig
RfmConfig::forLevel(RfmLevel level)
{
    RfmConfig cfg;
    switch (level) {
      case RfmLevel::Off:
        cfg.enabled = false;
        break;
      case RfmLevel::Relaxed:
        cfg.enabled = true;
        cfg.raaimt = 64;
        cfg.victimsPerRfm = 2;
        break;
      case RfmLevel::Default:
        cfg.enabled = true;
        cfg.raaimt = 32;
        break;
      case RfmLevel::Strict:
        cfg.enabled = true;
        cfg.raaimt = 16;
        cfg.victimsPerRfm = 6;
        cfg.recencyDepth = 24;
        break;
    }
    return cfg;
}

RfmEngine::RfmEngine(const RfmConfig &cfg_, std::uint32_t num_banks)
    : cfg(cfg_), banks(num_banks)
{
    if (cfg.enabled && cfg.raaimt == 0)
        panic("RfmEngine: raaimt must be positive when RFM is enabled");
}

void
RfmEngine::reset()
{
    for (BankState &b : banks)
        b = BankState{};
    rfms = 0;
    urgentRfms = 0;
}

std::uint64_t
RfmEngine::raaIncrements(std::uint32_t bank) const
{
    return banks[bank].increments;
}

std::uint64_t
RfmEngine::totalRaaIncrements() const
{
    std::uint64_t total = 0;
    for (const BankState &b : banks)
        total += b.increments;
    return total;
}

std::uint32_t
RfmEngine::raa(std::uint32_t bank) const
{
    return banks[bank].raa;
}

void
RfmEngine::onRef()
{
    if (!cfg.enabled)
        return;
    std::uint32_t dec = cfg.refDecrementEffective();
    for (BankState &b : banks)
        b.raa = b.raa > dec ? b.raa - dec : 0;
}

RfmAction
RfmEngine::observeAct(std::uint32_t bank, std::uint64_t row)
{
    RfmAction action;
    if (!cfg.enabled)
        return action;

    BankState &b = banks[bank];
    ++b.increments;

    // Recency list: move-to-front of distinct rows.
    auto it = std::find(b.recent.begin(), b.recent.end(), row);
    if (it != b.recent.end())
        b.recent.erase(it);
    b.recent.insert(b.recent.begin(), row);
    if (b.recent.size() > cfg.recencyDepth)
        b.recent.pop_back();

    ++b.raa;

    // The controller issues the owed RFM once RAA is serviceDelayActs
    // past RAAIMT; the RAAMMT cap forces an urgent RFM regardless of
    // how lazy the controller is.
    std::uint32_t cap = cfg.raammtEffective();
    std::uint32_t fire_at = cfg.raaimt
        + static_cast<std::uint32_t>(cfg.serviceDelayActs);
    if (fire_at > cap)
        fire_at = cap;

    if (b.raa >= cap)
        action.urgent = true;
    else if (b.raa < fire_at)
        return action;

    // One RFM retires RAAIMT worth of activity; the remainder carries
    // over into the next management interval.
    b.raa = b.raa > cfg.raaimt ? b.raa - cfg.raaimt : 0;
    action.fired = true;
    ++rfms;
    if (action.urgent)
        ++urgentRfms;
    // The device refreshes the neighbourhoods of the rows it saw
    // activated most recently — deterministic, so no pattern can
    // hide its true aggressors from it.
    unsigned n =
        std::min<unsigned>(cfg.victimsPerRfm, b.recent.size());
    for (unsigned i = 0; i < n; ++i)
        action.protect.push_back({bank, b.recent[i]});
    return action;
}

} // namespace rho
