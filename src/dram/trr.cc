#include "dram/trr.hh"

#include <algorithm>

namespace rho
{

TrrSampler::TrrSampler(const TrrConfig &cfg_, std::uint32_t num_banks)
    : cfg(cfg_), tables(num_banks), rng(cfg_.seed)
{
}

void
TrrSampler::reset()
{
    for (auto &table : tables)
        table.clear();
    rng = Rng(cfg.seed);
    issued = 0;
}

std::optional<TrrTarget>
TrrSampler::observeAct(std::uint32_t bank, std::uint64_t row, Ns now)
{
    (void)now; // only read when tracing is compiled in
    std::optional<TrrTarget> ptrr_hit;
    if (cfg.ptrr && rng.chance(cfg.ptrrSampleProb)) {
        ++issued;
        ptrr_hit = TrrTarget{bank, row};
    }

    if (!cfg.enabled)
        return ptrr_hit;
    if (!rng.chance(cfg.sampleProb))
        return ptrr_hit;

    auto &table = tables[bank];
    for (auto &e : table) {
        if (e.row == row) {
            ++e.count;
            RHO_TRACE(tracer, now, EventKind::TrrSample, 0, bank, row,
                      e.count);
            return ptrr_hit;
        }
    }
    if (table.size() < cfg.counters) {
        table.push_back({row, 1});
        RHO_TRACE(tracer, now, EventKind::TrrSample, 0, bank, row, 1);
        return ptrr_hit;
    }
    // Misra-Gries: a non-resident sample decrements every counter.
    // This is the churn non-uniform patterns exploit: enough distinct
    // decoy rows keep true aggressor counts pinned near zero.
    RHO_TRACE(tracer, now, EventKind::TrrSample, 0, bank, row, 0);
    for (auto &e : table) {
        if (e.count > 0)
            --e.count;
    }
    std::erase_if(table, [&](const Entry &e) {
        if (e.count != 0)
            return false;
        RHO_TRACE(tracer, now, EventKind::TrrEvict, 0, bank, e.row, 0);
        return true;
    });
    return ptrr_hit;
}

std::vector<TrrTarget>
TrrSampler::onRefreshTick(Ns now)
{
    (void)now;
    std::vector<TrrTarget> out;
    if (!cfg.enabled)
        return out;

    // Gather rows over threshold across banks, strongest first.
    struct Cand { std::uint32_t bank; std::size_t idx; std::uint32_t cnt; };
    std::vector<Cand> cands;
    for (std::uint32_t b = 0; b < tables.size(); ++b) {
        for (std::size_t i = 0; i < tables[b].size(); ++i) {
            if (tables[b][i].count >= cfg.matchThreshold)
                cands.push_back({b, i, tables[b][i].count});
        }
    }
    std::sort(cands.begin(), cands.end(),
              [](const Cand &a, const Cand &b) { return a.cnt > b.cnt; });

    std::vector<std::pair<std::uint32_t, std::uint64_t>> to_remove;
    for (const auto &c : cands) {
        if (out.size() >= cfg.maxRefreshesPerTick)
            break;
        out.push_back({c.bank, tables[c.bank][c.idx].row});
        to_remove.push_back({c.bank, tables[c.bank][c.idx].row});
    }
    for (auto [b, row] : to_remove) {
        std::erase_if(tables[b],
                      [row](const Entry &e) { return e.row == row; });
    }
    issued += out.size();
    return out;
}

} // namespace rho
