/**
 * @file
 * DDR4 device timing parameters (nanoseconds).
 */

#ifndef RHO_DRAM_TIMING_HH
#define RHO_DRAM_TIMING_HH

#include "common/types.hh"

namespace rho
{

/**
 * The subset of DDR4 timings the simulator models. All values in ns.
 */
struct DramTiming
{
    Ns tCK;   //!< clock period
    Ns tRCD;  //!< activate to column command
    Ns tRP;   //!< precharge period
    Ns tCL;   //!< CAS latency
    Ns tRAS;  //!< activate to precharge
    Ns tRC;   //!< activate to activate, same bank
    Ns tRFC;  //!< refresh command period (rank blocked)
    Ns tREFI = 7800.0;   //!< average refresh command interval
    /**
     * Retention window: every row refreshed once per tREFW. The real
     * DDR4 value is 64 ms; the simulator uses a 8 ms window so
     * threshold-scaled experiments complete in tractable budgets
     * (documented in EXPERIMENTS.md; all rate-vs-threshold races are
     * preserved, just 8x faster).
     */
    Ns tREFW = 8.0e6;
    Ns busOverhead;      //!< fixed core-to-DRAM round-trip overhead
    /**
     * RFM command period: the bank is blocked while the device
     * performs refresh management (DDR5; charged by the controller
     * when an RFM fires).
     */
    Ns tRFM = 195.0;
    /**
     * PRAC Alert Back-Off window: ACT-issue pause after ALERT_n while
     * the device services its hottest rows.
     */
    Ns tABO = 180.0;

    /**
     * Does the controller expose REF blocking to the core? When true,
     * an access landing inside the tRFC window after a periodic REF
     * (every tREFI) stalls until the window ends and finds its row
     * buffer closed — the latency-spike side channel ZenHammer's
     * synchronized hammering locks onto (see hammer/ref_sync). Intel
     * configurations hide the spikes behind controller queueing
     * (false); AMD and LPDDR4 platforms expose them.
     */
    bool refBlocking = false;

    /** Number of refresh commands per retention window. */
    static constexpr unsigned refreshSlots = 1024;

    /**
     * JEDEC-flavored preset for a given data rate (e.g. 2400, 2666,
     * 2933, 3200 MT/s) with typical absolute latencies.
     */
    static DramTiming ddr4(unsigned mtps);

    /**
     * DDR5 preset (paper section 6 future-work setups): doubled
     * refresh rate, 4800/5600 MT/s grades.
     */
    static DramTiming ddr5(unsigned mtps);

    /**
     * LPDDR4 preset (ARMv8 board backends): slower analog latencies,
     * per-bank-pair refresh cadence approximated by a doubled REF rate
     * with a shorter blocking window, REF blocking exposed.
     */
    static DramTiming lpddr4(unsigned mtps);
};

} // namespace rho

#endif // RHO_DRAM_TIMING_HH
