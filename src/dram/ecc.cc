#include "dram/ecc.hh"

namespace rho
{

EccDecision
SecOnDieEcc::decide(const std::vector<std::uint32_t> &error_bits) const
{
    if (error_bits.empty())
        return {EccAction::Clean, 0};
    if (error_bits.size() == 1)
        return {EccAction::Corrected, error_bits[0]};

    std::uint32_t s = 0;
    for (std::uint32_t bit : error_bits)
        s ^= syndromeOf(bit);
    if (s == 0)
        return {EccAction::Undetected, 0};
    if (s <= dataBits())
        return {EccAction::Miscorrected, s - 1};
    return {EccAction::Detected, 0};
}

} // namespace rho
