#include "dram/controller.hh"

#include "common/logging.hh"

namespace rho
{

MemoryController::MemoryController(AddressMapping mapping,
                                   const DimmProfile &profile,
                                   const DramTiming &timing,
                                   const TrrConfig &trr_cfg,
                                   const RfmConfig &rfm_cfg,
                                   const PracConfig &prac_cfg,
                                   const EccConfig &ecc_cfg)
    : map(std::move(mapping)),
      dev(std::make_unique<Dimm>(profile, timing, trr_cfg, rfm_cfg,
                                 prac_cfg, ecc_cfg))
{
    if (map.numBanks() != profile.geom.flatBanks()) {
        fatal("MemoryController: mapping has %u banks, DIMM has %u",
              map.numBanks(), profile.geom.flatBanks());
    }
    if (map.numRows() != profile.geom.rowsPerBank) {
        fatal("MemoryController: mapping has %llu rows, DIMM has %llu",
              static_cast<unsigned long long>(map.numRows()),
              static_cast<unsigned long long>(profile.geom.rowsPerBank));
    }
}

DramAccessResult
MemoryController::access(PhysAddr pa, Ns now)
{
    return dev->access(map.decode(pa), now);
}

DramAccessResult
MemoryController::access(const DramAddr &da, Ns now)
{
    return dev->access(da, now);
}

std::uint8_t
MemoryController::readByte(PhysAddr pa, Ns now)
{
    return dev->readByte(map.decode(pa), now);
}

void
MemoryController::writeByte(PhysAddr pa, std::uint8_t value, Ns now)
{
    std::uint8_t v = value;
    dev->writeBytes(map.decode(pa), &v, 1, now);
}

} // namespace rho
