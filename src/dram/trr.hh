/**
 * @file
 * Target Row Refresh (TRR) mitigation model.
 *
 * DDR4 devices ship an in-DRAM sampler that watches the ACT stream and
 * issues targeted refreshes to the neighbours of rows it believes are
 * being hammered. We model it as a per-bank Misra-Gries frequent-items
 * sketch with a small number of counters and probabilistic sampling,
 * which reproduces the behaviour the attack literature exploits:
 * uniform double-sided hammering is caught quickly, while non-uniform
 * (Blacksmith-style) patterns churn the counters with decoy rows and
 * keep the true aggressors below the trigger threshold.
 *
 * The controller-side pTRR mitigation (paper section 6) is also
 * modelled: every ACT has a small probability of an immediate
 * neighbour refresh, which no access pattern can evade.
 */

#ifndef RHO_DRAM_TRR_HH
#define RHO_DRAM_TRR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/tracer.hh"

namespace rho
{

/** Tunables of the TRR / pTRR models. */
struct TrrConfig
{
    bool enabled = true;          //!< in-DRAM TRR present (all DDR4)
    unsigned counters = 4;        //!< Misra-Gries table size per bank
    double sampleProb = 0.25;     //!< per-ACT sampling probability
    std::uint32_t matchThreshold = 24; //!< count needed to trigger
    unsigned maxRefreshesPerTick = 2;  //!< TRR capacity per tREFI
    bool ptrr = false;            //!< BIOS "Rowhammer Prevention"
    double ptrrSampleProb = 4e-3; //!< pTRR per-ACT refresh probability
    std::uint64_t seed = 0x7272;  //!< sampling randomness seed
};

/** A row the mitigation decided to protect the neighbours of. */
struct TrrTarget
{
    std::uint32_t bank;
    std::uint64_t row;
};

/**
 * The sampler state machine. The owning Dimm feeds it ACTs and refresh
 * ticks; it returns aggressor rows whose neighbours must be refreshed.
 */
class TrrSampler
{
  public:
    TrrSampler(const TrrConfig &cfg, std::uint32_t num_banks);

    /**
     * Observe one row activation at simulated time `now`.
     *
     * @return a pTRR target needing an *immediate* neighbour refresh,
     *         if pTRR sampled this activation.
     */
    std::optional<TrrTarget> observeAct(std::uint32_t bank,
                                        std::uint64_t row, Ns now = 0.0);

    /**
     * Called once per tREFI: the device piggybacks targeted refreshes
     * on the regular refresh command.
     *
     * @return aggressor rows (up to maxRefreshesPerTick) whose
     *         neighbours the device refreshes now.
     */
    std::vector<TrrTarget> onRefreshTick(Ns now = 0.0);

    /** Number of targeted refreshes issued so far (statistics). */
    std::uint64_t targetedRefreshes() const { return issued; }

    /**
     * Whether any mitigation (TRR or pTRR) is configured. A passive
     * sampler draws no randomness and never selects a target, so
     * callers may skip observeAct entirely when this is false.
     */
    bool active() const { return cfg.enabled || cfg.ptrr; }

    /**
     * Restore the factory-fresh sampler: clears every per-bank table,
     * re-seeds the sampling randomness, and zeroes the issue counter,
     * so a reset sampler makes the same decisions as a new one.
     */
    void reset();

    /**
     * Attach a tracer for TrrSample/TrrEvict events (nullptr
     * detaches). Emission never consumes randomness, so tracing
     * cannot perturb the sampler's decisions.
     */
    void setTracer(Tracer *t) { tracer = t; }

  private:
    struct Entry
    {
        std::uint64_t row;
        std::uint32_t count;
    };

    TrrConfig cfg;
    std::vector<std::vector<Entry>> tables; // per flat bank
    Rng rng;
    std::uint64_t issued = 0;
    Tracer *tracer = nullptr;
};

} // namespace rho

#endif // RHO_DRAM_TRR_HH
