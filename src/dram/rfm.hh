/**
 * @file
 * DDR5 Refresh Management (RFM) model (paper section 6, "Towards
 * Future Research on DDR5").
 *
 * DDR5 devices maintain a Rolling Accumulated ACT (RAA) counter per
 * bank; when it reaches the RAAIMT threshold the controller must
 * issue an RFM command, giving the device time to refresh the rows it
 * considers most at risk. Unlike DDR4 TRR's tiny probabilistic
 * sampler, the RAA bookkeeping is deterministic and cannot be starved
 * by decoy churn — which is why the paper (and concurrent work)
 * observed no effective non-uniform pattern on DDR5 setups.
 *
 * The model tracks per-bank RAA counters and a small recency list of
 * activated rows; every RFM event refreshes the neighbourhood of the
 * most-recently-activated distinct rows.
 */

#ifndef RHO_DRAM_RFM_HH
#define RHO_DRAM_RFM_HH

#include <cstdint>
#include <vector>

#include "dram/trr.hh"

namespace rho
{

/** DDR5 RFM tunables (JEDEC-style knobs, simplified). */
struct RfmConfig
{
    bool enabled = false;
    std::uint32_t raaimt = 32;      //!< ACTs per bank between RFMs
    unsigned victimsPerRfm = 4;     //!< rows protected per RFM
    unsigned recencyDepth = 16;     //!< distinct rows tracked per bank
};

/**
 * Per-bank RAA counters + recency tracking. The owning Dimm feeds it
 * ACTs; it returns rows whose neighbourhoods must be refreshed when
 * an RFM fires.
 */
class RfmEngine
{
  public:
    RfmEngine(const RfmConfig &cfg, std::uint32_t num_banks);

    /**
     * Observe one activation.
     * @return rows to protect now (empty unless an RFM fired).
     */
    std::vector<TrrTarget> observeAct(std::uint32_t bank,
                                      std::uint64_t row);

    std::uint64_t rfmCommands() const { return rfms; }

    bool enabled() const { return cfg.enabled; }

    /**
     * Restore the factory-fresh engine: zeroes every bank's RAA
     * counter and recency list plus the RFM command count.
     */
    void reset();

  private:
    struct BankState
    {
        std::uint32_t raa = 0;
        std::vector<std::uint64_t> recent; // most recent first
    };

    RfmConfig cfg;
    std::vector<BankState> banks;
    std::uint64_t rfms = 0;
};

} // namespace rho

#endif // RHO_DRAM_RFM_HH
