/**
 * @file
 * DDR5 Refresh Management (RFM) model (paper section 6, "Towards
 * Future Research on DDR5").
 *
 * DDR5 devices maintain a Rolling Accumulated ACT (RAA) counter per
 * bank with JEDEC-shaped bookkeeping:
 *
 *  - every ACT increments the bank's RAA counter;
 *  - when RAA reaches the *initial* management threshold (RAAIMT) the
 *    controller owes the device an RFM command; issuing it subtracts
 *    RAAIMT from the counter (leftover activity carries over);
 *  - every REF command subtracts a configurable amount from every
 *    bank's counter (refDecrement) — regular refresh already covers a
 *    slice of the disturbance budget, so the rolling count decays;
 *  - RAA may never reach the *maximum* management threshold (RAAMMT):
 *    a controller that deferred its RFMs (serviceDelayActs) is forced
 *    into an urgent RFM at the cap.
 *
 * Unlike DDR4 TRR's tiny probabilistic sampler, the RAA bookkeeping is
 * deterministic and cannot be starved by decoy churn — which is why
 * the paper (and concurrent work) observed no effective non-uniform
 * pattern on DDR5 setups.
 *
 * The model tracks per-bank RAA counters and a small recency list of
 * activated rows; every RFM event refreshes the neighbourhood of the
 * most-recently-activated distinct rows.
 */

#ifndef RHO_DRAM_RFM_HH
#define RHO_DRAM_RFM_HH

#include <cstdint>
#include <vector>

#include "dram/trr.hh"

namespace rho
{

/**
 * Coarse RFM operating points (mode-register "RFM level" shorthand):
 * how aggressively the device demands refresh management.
 */
enum class RfmLevel : std::uint8_t
{
    Off,      //!< RFM not required (DDR5 with RFM disabled)
    Relaxed,  //!< high RAAIMT, few rows protected per RFM
    Default,  //!< JEDEC-typical RAAIMT = 32
    Strict,   //!< low RAAIMT, maximum protection per RFM
};

/** Stable display name ("off", "relaxed", ...). */
const char *rfmLevelName(RfmLevel level);

/** DDR5 RFM tunables (JEDEC-style knobs, simplified). */
struct RfmConfig
{
    bool enabled = false;
    std::uint32_t raaimt = 32;      //!< initial threshold: ACTs per RFM
    /**
     * Maximum threshold: RAA is never allowed to reach it (urgent RFM
     * fires at the cap). 0 selects the JEDEC-typical 6 * raaimt.
     */
    std::uint32_t raammt = 0;
    /**
     * RAA subtracted from every bank per REF command (saturating at
     * zero). 0 selects the JEDEC-typical raaimt / 2.
     */
    std::uint32_t refDecrement = 0;
    /**
     * ACTs the controller may defer an owed RFM past RAAIMT (models a
     * lazy controller batching RFMs). 0 = issue promptly. Deferral is
     * bounded by RAAMMT regardless.
     */
    unsigned serviceDelayActs = 0;
    unsigned victimsPerRfm = 4;     //!< rows protected per RFM
    unsigned recencyDepth = 16;     //!< distinct rows tracked per bank

    std::uint32_t
    raammtEffective() const
    {
        return raammt != 0 ? raammt : 6 * raaimt;
    }

    std::uint32_t
    refDecrementEffective() const
    {
        return refDecrement != 0 ? refDecrement : raaimt / 2;
    }

    /** The operating point for one RFM level. */
    static RfmConfig forLevel(RfmLevel level);
};

/** What one observed ACT made the refresh-management machinery do. */
struct RfmAction
{
    std::vector<TrrTarget> protect; //!< rows to protect now
    bool fired = false;             //!< an RFM command was issued
    bool urgent = false;            //!< the RAAMMT cap forced it
};

/**
 * Per-bank RAA counters + recency tracking. The owning Dimm feeds it
 * ACTs and REF commands; it returns rows whose neighbourhoods must be
 * refreshed when an RFM fires.
 */
class RfmEngine
{
  public:
    RfmEngine(const RfmConfig &cfg, std::uint32_t num_banks);

    /**
     * Observe one activation.
     * @return the RFM decision (protect list empty unless one fired).
     */
    RfmAction observeAct(std::uint32_t bank, std::uint64_t row);

    /**
     * Observe one REF command: every bank's RAA counter is decremented
     * by refDecrement (saturating at zero). Per JEDEC, regular refresh
     * subtracts from the rolling count — a previous revision of this
     * model never decayed RAA on REF and over-fired RFMs.
     */
    void onRef();

    std::uint64_t rfmCommands() const { return rfms; }

    /** RFMs forced by the RAAMMT cap (subset of rfmCommands()). */
    std::uint64_t urgentRfmCommands() const { return urgentRfms; }

    /**
     * Total RAA increments observed for one bank — exactly one per
     * ACT, so campaign accounting can be cross-checked against the
     * device's ACT stream (metamorphic RAA test).
     */
    std::uint64_t raaIncrements(std::uint32_t bank) const;

    /** Sum of raaIncrements over all banks. */
    std::uint64_t totalRaaIncrements() const;

    /** Current RAA counter of one bank (test introspection). */
    std::uint32_t raa(std::uint32_t bank) const;

    bool enabled() const { return cfg.enabled; }

    const RfmConfig &config() const { return cfg; }

    /**
     * Restore the factory-fresh engine: zeroes every bank's RAA
     * counter, increment accounting and recency list plus the RFM
     * command counts.
     */
    void reset();

  private:
    struct BankState
    {
        std::uint32_t raa = 0;
        std::uint64_t increments = 0;
        std::vector<std::uint64_t> recent; // most recent first
    };

    RfmConfig cfg;
    std::vector<BankState> banks;
    std::uint64_t rfms = 0;
    std::uint64_t urgentRfms = 0;
};

} // namespace rho

#endif // RHO_DRAM_RFM_HH
