/**
 * @file
 * On-die ECC model: per-codeword single-error-correcting (SEC) code
 * with deterministic miscorrection, after "Revisiting RowHammer"
 * (Kim et al.): on-die ECC corrects every single-bit error, but a
 * multi-bit error pattern whose syndrome collides with a valid
 * single-bit syndrome is *miscorrected* — the decoder flips a third,
 * previously correct bit — and a pattern with syndrome zero passes
 * through undetected.
 *
 * The code is a systematic Hamming-style SEC code over one codeword of
 * `codewordBytes` data bytes. Check bits live outside the modelled
 * array (the device stores them internally and they are assumed not to
 * flip; RowHammer templating targets the much larger data array), so
 * the decoder is fully characterised by the syndrome each *data* bit
 * produces: bit i has syndrome i+1, nonzero and distinct per bit.
 *
 * For an error set E (data-bit indices), the decoder sees the XOR of
 * the member syndromes and acts deterministically:
 *
 *   |E| = 0            -> Clean        (no action)
 *   |E| = 1            -> Corrected    (the erroneous bit, fixed)
 *   |E| >= 2, s == 0   -> Undetected   (aliases the zero syndrome)
 *   |E| >= 2, s <= n   -> Miscorrected (bit s-1 toggled; n = data bits)
 *   |E| >= 2, s >  n   -> Detected     (check-bit syndrome; passthrough)
 *
 * The documented miscorrection set for double errors is therefore
 * exactly the pairs {i, j} with (i+1) ^ (j+1) <= n — pinned by the
 * metamorphic tests in tests/test_ecc.cc.
 *
 * Correction is a read-path transformation only: the array keeps the
 * raw (flipped) cells, and the device never writes corrections back —
 * matching real on-die ECC, where scrubbing is a separate mechanism.
 */

#ifndef RHO_DRAM_ECC_HH
#define RHO_DRAM_ECC_HH

#include <cstdint>
#include <vector>

namespace rho
{

/** On-die ECC configuration (campaign-identity relevant). */
struct EccConfig
{
    bool enabled = false;
    /** Data bytes per codeword; rows are covered in aligned chunks. */
    std::uint32_t codewordBytes = 16;
};

/** What the decoder did to one codeword. */
enum class EccAction : std::uint8_t
{
    Clean,        //!< no error
    Corrected,    //!< single error, fixed on the read path
    Undetected,   //!< multi-bit error aliasing syndrome 0; passthrough
    Miscorrected, //!< multi-bit error aliasing a data-bit syndrome
    Detected,     //!< multi-bit error with a check-bit syndrome
};

/** Decoder verdict for one codeword. */
struct EccDecision
{
    EccAction action = EccAction::Clean;
    /**
     * Data-bit index (within the codeword) the decoder flips. For
     * Corrected this is the erroneous bit (the flip heals it); for
     * Miscorrected it is a *correct* bit the decoder corrupts. Unused
     * otherwise.
     */
    std::uint32_t targetBit = 0;
};

/** Pure SEC decoder over one codeword (stateless, unit-testable). */
class SecOnDieEcc
{
  public:
    explicit SecOnDieEcc(std::uint32_t codeword_bytes)
        : cwBytes(codeword_bytes)
    {
    }

    std::uint32_t codewordBytes() const { return cwBytes; }
    std::uint32_t dataBits() const { return cwBytes * 8; }

    /** Syndrome of data bit i: i+1, nonzero and distinct per bit. */
    static constexpr std::uint32_t
    syndromeOf(std::uint32_t bit)
    {
        return bit + 1;
    }

    /** Decode an error set (data-bit indices within the codeword). */
    EccDecision decide(const std::vector<std::uint32_t> &error_bits) const;

  private:
    std::uint32_t cwBytes;
};

} // namespace rho

#endif // RHO_DRAM_ECC_HH
