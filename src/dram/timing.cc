#include "dram/timing.hh"

#include "common/logging.hh"

namespace rho
{

DramTiming
DramTiming::ddr4(unsigned mtps)
{
    // Absolute analog latencies are nearly constant across DDR4 speed
    // grades; the clock just quantizes them. Typical JEDEC values.
    DramTiming t{};
    t.tCK = 2000.0 / static_cast<double>(mtps);
    switch (mtps) {
      case 2400:
        t.tRCD = 13.32; t.tRP = 13.32; t.tCL = 13.32;
        break;
      case 2666:
        t.tRCD = 13.50; t.tRP = 13.50; t.tCL = 13.50;
        break;
      case 2933:
        t.tRCD = 13.64; t.tRP = 13.64; t.tCL = 13.64;
        break;
      case 3200:
        t.tRCD = 13.75; t.tRP = 13.75; t.tCL = 13.75;
        break;
      default:
        fatal("DramTiming::ddr4: unsupported data rate %u", mtps);
    }
    t.tRAS = 32.0;
    t.tRC = t.tRAS + t.tRP;
    t.tRFC = 350.0;
    // RFM/ABO do not exist on DDR4; the values only matter when a
    // DDR4-grade device is simulated with the DDR5 mitigations on.
    t.tRFM = 350.0;
    t.busOverhead = 32.0; // core + uncore + controller queueing
    return t;
}

DramTiming
DramTiming::ddr5(unsigned mtps)
{
    DramTiming t{};
    t.tCK = 2000.0 / static_cast<double>(mtps);
    switch (mtps) {
      case 4800:
        t.tRCD = 13.33; t.tRP = 13.33; t.tCL = 13.33;
        break;
      case 5600:
        t.tRCD = 13.57; t.tRP = 13.57; t.tCL = 13.57;
        break;
      default:
        fatal("DramTiming::ddr5: unsupported data rate %u", mtps);
    }
    t.tRAS = 32.0;
    t.tRC = t.tRAS + t.tRP;
    t.tRFC = 295.0;
    // DDR5 doubles the refresh rate (paper section 6).
    t.tREFI = 3900.0;
    t.busOverhead = 34.0;
    return t;
}

DramTiming
DramTiming::lpddr4(unsigned mtps)
{
    DramTiming t{};
    t.tCK = 2000.0 / static_cast<double>(mtps);
    switch (mtps) {
      case 2400:
        t.tRCD = 18.00; t.tRP = 21.00; t.tCL = 16.66;
        break;
      case 3200:
        t.tRCD = 18.00; t.tRP = 21.00; t.tCL = 17.10;
        break;
      case 4266:
        t.tRCD = 18.00; t.tRP = 21.00; t.tCL = 17.34;
        break;
      default:
        fatal("DramTiming::lpddr4: unsupported data rate %u", mtps);
    }
    t.tRAS = 42.0;
    t.tRC = t.tRAS + t.tRP;
    // Per-bank refresh: half the interval of DDR4's all-bank REF, but
    // a much shorter blocking window per command.
    t.tRFC = 180.0;
    t.tREFI = 3904.0;
    t.tRFM = 180.0;
    // Mobile SoC fabrics add interconnect latency the big-core
    // uncore hides.
    t.busOverhead = 40.0;
    // LPDDR4 controllers are shallow: REF stalls reach the core.
    t.refBlocking = true;
    return t;
}

} // namespace rho
