/**
 * @file
 * Behavioural DDR4 DIMM model: bank/row-buffer timing, periodic
 * refresh, TRR, and the charge-disturbance mechanism that produces
 * RowHammer bit flips.
 *
 * Flip mechanics: every activation (ACT) of a row disturbs its
 * neighbours (distance 1 fully, distance 2 attenuated). A row's
 * accumulated disturbance resets whenever the row itself is activated
 * or refreshed (auto-refresh sweeps all rows once per tREFW; TRR adds
 * targeted refreshes). When the accumulated disturbance crosses a weak
 * cell's threshold, the stored bit flips in the direction determined
 * by the cell's true/anti orientation.
 */

#ifndef RHO_DRAM_DIMM_HH
#define RHO_DRAM_DIMM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dram/dimm_profile.hh"
#include "dram/timing.hh"
#include "dram/rfm.hh"
#include "dram/trr.hh"
#include "mapping/address_mapping.hh"
#include "trace/tracer.hh"

namespace rho
{

class FaultInjector;

/** A committed bit flip, for statistics and test introspection. */
struct FlipRecord
{
    std::uint32_t bank;
    std::uint64_t row;
    std::uint32_t bitOffset; //!< within the 8 KiB row
    bool toOne;              //!< flip direction
    Ns when;
};

/** Result of a timed DRAM access. */
struct DramAccessResult
{
    Ns latency;   //!< controller-visible latency, ns
    bool rowHit;  //!< served from the open row buffer
    bool act;     //!< an ACT was performed (hammer-relevant)
};

/**
 * One DIMM: geometry and weak cells from a DimmProfile, timing from a
 * DramTiming, mitigations from a TrrConfig.
 */
class Dimm
{
  public:
    Dimm(const DimmProfile &profile, const DramTiming &timing,
         const TrrConfig &trr_cfg, const RfmConfig &rfm_cfg = RfmConfig{});

    /** Timed access; advances internal (lazy) refresh machinery. */
    DramAccessResult access(const DramAddr &da, Ns now);

    /**
     * Functional data-path write of contiguous bytes within one row,
     * starting at the byte offset da.col. Activates the row
     * (resetting its disturbance) as a real write would.
     */
    void writeBytes(const DramAddr &da, const std::uint8_t *data,
                    std::size_t len, Ns now);

    /** Functional read of one byte (flips already applied). */
    std::uint8_t readByte(const DramAddr &da, Ns now);

    /** Fill an entire row with a repeating byte pattern. */
    void fillRow(std::uint32_t bank, std::uint64_t row,
                 std::uint8_t pattern, Ns now);

    /**
     * Compare a row's stored data against the fill pattern it was
     * initialized with; returns the bit offsets that differ.
     */
    std::vector<FlipRecord> diffRow(std::uint32_t bank, std::uint64_t row,
                                    std::uint8_t expected, Ns now);

    const DimmProfile &profile() const { return prof; }
    const DramTiming &timing() const { return tim; }
    const DimmGeometry &geometry() const { return prof.geom; }

    /** Running log of every committed flip (clearable). */
    const std::vector<FlipRecord> &flipLog() const { return flips; }
    void clearFlipLog() { flips.clear(); }

    std::uint64_t totalActs() const { return acts; }
    std::uint64_t trrRefreshCount() const { return trr.targetedRefreshes(); }
    std::uint64_t rfmCommandCount() const { return rfm.rfmCommands(); }

    /** Drop all per-row state (fresh device). */
    void reset();

    /**
     * Attach a fault injector (nullptr detaches). Enables probabilistic
     * flip non-reproduction at threshold crossings and spurious
     * TRR-style neighbour refreshes per ACT. The injector must outlive
     * the DIMM or be detached first.
     */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }

    /**
     * Attach a tracer (nullptr detaches) for DRAM command, disturb,
     * flip, and mitigation events. Forwards to the TRR sampler.
     * Tracing draws no randomness and touches no timing state, so an
     * attached tracer never changes simulation results.
     */
    void
    setTracer(Tracer *t)
    {
        tracer = t;
        trr.setTracer(t);
    }

  private:
    struct RowState
    {
        Ns lastRefresh = -1e18;
        double disturb = 0.0;
        bool cellsInit = false;
        std::vector<WeakCell> cells;
        std::vector<bool> flipped;
        std::unique_ptr<std::vector<std::uint8_t>> data;
        std::uint8_t fill = 0;
    };

    struct BankState
    {
        std::int64_t openRow = -1;
        Ns readyAt = 0.0;
        Ns lastActAt = -1e18;
    };

    static std::uint64_t
    rowKey(std::uint32_t bank, std::uint64_t row)
    {
        return (static_cast<std::uint64_t>(bank) << 40) | row;
    }

    RowState &rowState(std::uint32_t bank, std::uint64_t row, Ns now);
    void applyAutoRefresh(RowState &rs, std::uint32_t bank,
                          std::uint64_t row, Ns now);
    Ns autoRefreshBefore(std::uint64_t row, Ns now) const;
    void refreshNeighbours(std::uint32_t bank, std::uint64_t row, Ns now,
                           ResetSource source);
    void resetDisturb(RowState &rs, std::uint32_t bank, std::uint64_t row,
                      Ns when, ResetSource source);
    void doAct(std::uint32_t bank, std::uint64_t row, Ns now);
    void disturbNeighbour(std::uint32_t bank, std::uint64_t victim,
                          double weight, Ns now);
    void processTrrTicks(Ns now);
    std::vector<std::uint8_t> &materializeData(RowState &rs);

    const DimmProfile &prof;
    DramTiming tim;
    TrrSampler trr;
    RfmEngine rfm;
    std::vector<BankState> banks;
    std::unordered_map<std::uint64_t, RowState> rows;
    std::vector<FlipRecord> flips;
    std::uint64_t acts = 0;
    Ns nextTrrTick = 0.0;
    double halfDoubleWeight = 0.08;
    FaultInjector *injector = nullptr;
    Tracer *tracer = nullptr;
};

} // namespace rho

#endif // RHO_DRAM_DIMM_HH
