/**
 * @file
 * Behavioural DDR4 DIMM model: bank/row-buffer timing, periodic
 * refresh, TRR, and the charge-disturbance mechanism that produces
 * RowHammer bit flips.
 *
 * Flip mechanics: every activation (ACT) of a row disturbs its
 * neighbours (distance 1 fully, distance 2 attenuated). A row's
 * accumulated disturbance resets whenever the row itself is activated
 * or refreshed (auto-refresh sweeps all rows once per tREFW; TRR adds
 * targeted refreshes). When the accumulated disturbance crosses a weak
 * cell's threshold, the stored bit flips in the direction determined
 * by the cell's true/anti orientation.
 *
 * Flip-latch (re-arm) semantics: once a weak cell's threshold is
 * crossed, the cell is *latched* — the flip (or the orientation
 * mismatch that made it a no-op) has been applied to the currently
 * stored data, and the cell is skipped by later threshold scans. A
 * latched cell re-arms only when the data it stores is rewritten:
 * writeBytes() re-arms exactly the cells whose byte lies in the
 * written range, fillRow() re-arms the whole row. Charge-restoring
 * operations (self-ACT, readByte(), auto-refresh, TRR/RFM refresh)
 * reset the accumulated disturbance but do NOT re-arm — reading a
 * flipped cell senses and restores the flipped value, so there is no
 * fresh charge state to lose until the attacker (or victim) rewrites
 * it.
 *
 * Row-state storage: the hot activation path uses a flat per-bank
 * store (RowStoreKind::Flat) — an open-addressed row index over a
 * pointer-stable pool, fronted by a direct-mapped cache of recently
 * touched rows and a per-bank cache of the activated row's open
 * neighbourhood. A hammer loop revisits the same handful of rows
 * millions of times, so nearly every lookup is a cache hit. The
 * original std::unordered_map path is kept as RowStoreKind::Reference;
 * both produce bit-identical traces and flip sequences (pinned by the
 * differential tests in tests/test_rowstore.cc and the committed
 * goldens).
 */

#ifndef RHO_DRAM_DIMM_HH
#define RHO_DRAM_DIMM_HH

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dram/dimm_profile.hh"
#include "dram/ecc.hh"
#include "dram/timing.hh"
#include "dram/prac.hh"
#include "dram/rfm.hh"
#include "dram/trr.hh"
#include "mapping/address_mapping.hh"
#include "trace/tracer.hh"

namespace rho
{

class FaultInjector;

/** A committed bit flip, for statistics and test introspection. */
struct FlipRecord
{
    std::uint32_t bank;
    std::uint64_t row;
    std::uint32_t bitOffset; //!< within the 8 KiB row
    bool toOne;              //!< flip direction
    Ns when;
};

/** Result of a timed DRAM access. */
struct DramAccessResult
{
    Ns latency;   //!< controller-visible latency, ns
    bool rowHit;  //!< served from the open row buffer
    bool act;     //!< an ACT was performed (hammer-relevant)
};

/**
 * Which per-row state organisation the device uses. Observable
 * behaviour is identical; Flat is the fast path, Reference the
 * original hash-map implementation kept as a differential-testing
 * oracle.
 */
enum class RowStoreKind
{
    Flat,      //!< per-bank open-addressed index + lookup caches
    Reference  //!< global std::unordered_map, linear weak-cell scans
};

/**
 * One DIMM: geometry and weak cells from a DimmProfile, timing from a
 * DramTiming, mitigations from a TrrConfig.
 */
class Dimm
{
  public:
    Dimm(const DimmProfile &profile, const DramTiming &timing,
         const TrrConfig &trr_cfg, const RfmConfig &rfm_cfg = RfmConfig{},
         const PracConfig &prac_cfg = PracConfig{},
         const EccConfig &ecc_cfg = EccConfig{});

    /** Timed access; advances internal (lazy) refresh machinery. */
    DramAccessResult access(const DramAddr &da, Ns now);

    /**
     * Functional data-path write of contiguous bytes within one row,
     * starting at the byte offset da.col. Activates the row
     * (resetting its disturbance) as a real write would, and re-arms
     * the flip latches of exactly the weak cells whose byte falls in
     * the written range (see the flip-latch semantics in the file
     * comment).
     */
    void writeBytes(const DramAddr &da, const std::uint8_t *data,
                    std::size_t len, Ns now);

    /**
     * Functional read of one byte (flips already applied). Restores
     * the row's charge (disturbance resets) but does not re-arm flip
     * latches: a read-verified cell stays flipped until its data is
     * rewritten.
     */
    std::uint8_t readByte(const DramAddr &da, Ns now);

    /**
     * Fill an entire row with a repeating byte pattern. Re-arms every
     * flip latch in the row (the whole row's data is rewritten).
     */
    void fillRow(std::uint32_t bank, std::uint64_t row,
                 std::uint8_t pattern, Ns now);

    /**
     * Compare a row's stored data against the fill pattern it was
     * initialized with; returns the bit offsets that differ.
     *
     * With on-die ECC enabled, the comparison runs on the
     * controller-visible (post-correction) view: per aligned codeword
     * the decoder corrects single-bit errors (emitting EccCorrected)
     * and deterministically miscorrects the documented multi-bit
     * syndromes (EccMiscorrect) — so the returned flips are exactly
     * the ECC-escaping ones. The raw cell flips stay in flipLog().
     */
    std::vector<FlipRecord> diffRow(std::uint32_t bank, std::uint64_t row,
                                    std::uint8_t expected, Ns now);

    /** On-die ECC configuration this device was built with. */
    const EccConfig &eccConfig() const { return ecc; }

    const DimmProfile &profile() const { return prof; }
    const DramTiming &timing() const { return tim; }
    const DimmGeometry &geometry() const { return prof.geom; }

    /** Running log of every committed flip (clearable). */
    const std::vector<FlipRecord> &flipLog() const { return flips; }
    void clearFlipLog() { flips.clear(); }

    std::uint64_t totalActs() const { return acts; }
    std::uint64_t trrRefreshCount() const { return trr.targetedRefreshes(); }
    std::uint64_t rfmCommandCount() const { return rfm.rfmCommands(); }
    std::uint64_t pracAlertCount() const { return prac.alerts(); }

    /** Simulated time the bank spent stalled on RFM commands. */
    Ns rfmStallNs() const { return rfmStalls; }
    /** Simulated time the bank spent stalled in ABO windows. */
    Ns aboStallNs() const { return aboStalls; }

    /** Refresh-management engine (RAA accounting introspection). */
    const RfmEngine &rfmEngine() const { return rfm; }
    /** PRAC engine (per-row counter introspection). */
    const PracEngine &pracEngine() const { return prac; }

    /**
     * Restore the factory-fresh device: drops all per-row state and
     * resets the mitigation engines (TRR sampler tables *and* sampling
     * randomness, RFM RAA counters), so a reset device produces the
     * same flip sequence as a newly constructed one.
     */
    void reset();

    /**
     * Select the row-state organisation. Must be called before any
     * row state materializes (right after construction or reset());
     * switching a device with live rows would discard accumulated
     * charge state, so it panics instead.
     */
    void setRowStore(RowStoreKind kind);
    RowStoreKind rowStore() const { return store; }

    /**
     * Attach a fault injector (nullptr detaches). Enables probabilistic
     * flip non-reproduction at threshold crossings and spurious
     * TRR-style neighbour refreshes per ACT. The injector must outlive
     * the DIMM or be detached first.
     */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }

    /**
     * Attach a tracer (nullptr detaches) for DRAM command, disturb,
     * flip, and mitigation events. Forwards to the TRR sampler.
     * Tracing draws no randomness and touches no timing state, so an
     * attached tracer never changes simulation results.
     */
    void
    setTracer(Tracer *t)
    {
        tracer = t;
        trr.setTracer(t);
    }

  private:
    struct RowState
    {
        Ns lastRefresh = -1e18;
        double disturb = 0.0;
        bool cellsInit = false;
        std::vector<WeakCell> cells;
        std::vector<bool> flipped;
        std::unique_ptr<std::vector<std::uint8_t>> data;
        /**
         * As-written copy of the row (on-die ECC only): what the
         * device's check bits were computed over. Maintained by the
         * functional write paths (writeBytes/fillRow), never by the
         * flip machinery — the shadow-vs-data diff per codeword is
         * exactly the decoder's error set.
         */
        std::unique_ptr<std::vector<std::uint8_t>> shadow;
        std::uint8_t fill = 0;

        /**
         * Conservative lower bound on the smallest threshold among
         * unlatched weak cells (+inf when none): the threshold scan
         * runs only when `disturb` reaches it. Invariant:
         * minUnflipped <= min{threshold(c) : c unlatched}, so a stale
         * (too-low) bound costs a wasted scan but never skips a flip.
         */
        double minUnflipped = std::numeric_limits<double>::infinity();

        // Auto-refresh memo: the slot time this row's lazy refresh was
        // last evaluated at (arLast) and the next slot boundary
        // (arBoundary). While now < arBoundary and lastRefresh hasn't
        // been rolled back below arLast, applyAutoRefresh is provably
        // a no-op and returns after one comparison.
        Ns arLast = 1e18;
        Ns arBoundary = -1e18;
    };

    /** Per-bank flat row store: index + pool + lookup caches. */
    struct BankRows
    {
        static constexpr std::uint64_t emptyKey = ~0ULL;
        static constexpr std::size_t cacheWays = 64;
        static constexpr std::size_t nbWays = 8;

        // Open-addressed index (linear probing, power-of-two size):
        // row number -> pointer into the pool. Grown at 70% load.
        std::vector<std::uint64_t> keys;
        std::vector<RowState *> vals;
        std::size_t used = 0;

        // Pointer-stable storage for the rows of this bank.
        std::deque<RowState> pool;

        /** Direct-mapped cache of recently touched rows. */
        struct CacheEntry
        {
            std::uint64_t tag = emptyKey;
            RowState *rs = nullptr;
        };
        std::array<CacheEntry, cacheWays> cache;

        /**
         * Open-neighbourhood cache for doAct: the activated row plus
         * its four blast-radius neighbours, resolved once and reused
         * while the hammer loop revisits the row. Direct-mapped on the
         * row number; an entry is displaced (invalidated) when a
         * different row maps onto its way.
         */
        struct NbEntry
        {
            std::uint64_t tag = emptyKey;
            RowState *self = nullptr;
            std::array<RowState *, 4> nb{}; //!< d = -2,-1,+1,+2
        };
        std::array<NbEntry, nbWays> nbCache;
    };

    static std::uint64_t
    rowKey(std::uint32_t bank, std::uint64_t row)
    {
        return (static_cast<std::uint64_t>(bank) << 40) | row;
    }

    RowState &rowState(std::uint32_t bank, std::uint64_t row, Ns now);
    RowState *flatFind(BankRows &b, std::uint64_t row) const;
    RowState *flatLookup(BankRows &b, std::uint64_t row, Ns now);
    void flatGrow(BankRows &b);
    bool anyRowState() const;
    void applyAutoRefresh(RowState &rs, std::uint32_t bank,
                          std::uint64_t row, Ns now);
    Ns autoRefreshBefore(std::uint64_t row, Ns now) const;
    void refreshNeighbours(std::uint32_t bank, std::uint64_t row, Ns now,
                           ResetSource source);
    void resetDisturb(RowState &rs, std::uint32_t bank, std::uint64_t row,
                      Ns when, ResetSource source);
    void doAct(std::uint32_t bank, std::uint64_t row, Ns now);
    void disturbNeighbour(std::uint32_t bank, std::uint64_t victim,
                          double weight, Ns now);
    void disturbCells(RowState &rs, std::uint32_t bank,
                      std::uint64_t victim, double weight, Ns now);
    void initCells(RowState &rs, std::uint32_t bank, std::uint64_t victim);
    void scanCells(RowState &rs, std::uint32_t bank, std::uint64_t victim,
                   Ns now);
    void recomputeMinThreshold(RowState &rs);
    void processTrrTicks(Ns now);
    std::vector<std::uint8_t> &materializeData(RowState &rs);
    EccDecision decodeCodeword(const RowState &rs,
                               std::uint32_t base) const;

    const DimmProfile &prof;
    DramTiming tim;
    EccConfig ecc;
    SecOnDieEcc eccDecoder;
    TrrSampler trr;
    RfmEngine rfm;
    PracEngine prac;
    /**
     * Per-bank queue state, structure-of-arrays: access() only ever
     * touches one field class at a time (ready sweep, open-row
     * compare, ACT spacing), so parallel arrays keep the hot compares
     * on densely packed cache lines instead of striding over structs.
     */
    std::vector<std::int64_t> bankOpenRow; //!< open row, -1 = closed
    std::vector<Ns> bankReadyAt;           //!< bank busy until
    std::vector<Ns> bankLastActAt;         //!< last ACT (tRC spacing)
    /**
     * Last periodic-REF boundary this bank has accounted for (REF
     * blocking platforms only, see DramTiming::refBlocking): the
     * boundary closes the open row, and an access landing inside the
     * following tRFC window stalls to its end. Lazily advanced per
     * access so idle banks cost nothing.
     */
    std::vector<Ns> bankRefSeen;
    RowStoreKind store = RowStoreKind::Flat;
    std::vector<BankRows> bankRows;             //!< Flat storage
    std::unordered_map<std::uint64_t, RowState> rows; //!< Reference
    std::vector<FlipRecord> flips;
    std::uint64_t acts = 0;
    /**
     * Next tREFI epoch boundary. Constructed (and reset) to the first
     * tick, so the per-ACT mitigation-clock check in processTrrTicks
     * is a single compare until the epoch actually rolls over.
     */
    Ns nextTrrTick = 0.0;
    /**
     * Mitigation stall accrued by the current doAct (tRFM per RFM
     * fire, tABO per alert); access() folds it into the command's
     * latency and the bank's readyAt, then clears it.
     */
    Ns pendingStall = 0.0;
    Ns rfmStalls = 0.0;
    Ns aboStalls = 0.0;
    /**
     * Distance-2 coupling weight, copied out of the profile at
     * construction (the doAct hot loop reads it per neighbour).
     */
    double halfDoubleWeight = 0.08;
    FaultInjector *injector = nullptr;
    Tracer *tracer = nullptr;
};

} // namespace rho

#endif // RHO_DRAM_DIMM_HH
