#include "trace/chrome_trace.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace rho
{

namespace
{

// Fixed-format µs timestamp: deterministic text for deterministic
// event streams (ostream double formatting is locale-sensitive).
void
appendTs(std::string &out, Ns when)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", when / 1000.0);
    out += buf;
}

void
appendArgs(std::string &out, const TraceEvent &ev)
{
    char buf[160];
    switch (categoryOf(ev.kind)) {
      case CatDram:
      case CatTrr:
      case CatDisturb:
      case CatFlip:
        std::snprintf(buf, sizeof(buf),
                      "\"bank\":%" PRIu32 ",\"row\":%" PRIu64
                      ",\"c\":%" PRIu64 ",\"flags\":%u",
                      ev.a, ev.b, ev.c, ev.flags);
        break;
      case CatPhase:
        std::snprintf(buf, sizeof(buf),
                      "\"phase\":\"%s\",\"b\":%" PRIu64 ",\"c\":%" PRIu64
                      ",\"flags\":%u",
                      simPhaseName(static_cast<SimPhase>(ev.a)), ev.b,
                      ev.c, ev.flags);
        break;
      default:
        std::snprintf(buf, sizeof(buf),
                      "\"a\":%" PRIu32 ",\"b\":%" PRIu64 ",\"c\":%" PRIu64
                      ",\"flags\":%u",
                      ev.a, ev.b, ev.c, ev.flags);
        break;
    }
    out += buf;
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent> &events)
{
    std::string out;
    out.reserve(events.size() * 140 + 16);
    out += "[\n";
    bool first = true;
    for (const TraceEvent &ev : events) {
        const bool isBegin = ev.kind == EventKind::PhaseBegin;
        const bool isEnd = ev.kind == EventKind::PhaseEnd;
        const char *ph = isBegin ? "B" : isEnd ? "E" : "i";
        const char *name = (isBegin || isEnd)
                               ? simPhaseName(static_cast<SimPhase>(ev.a))
                               : eventKindName(ev.kind);

        if (!first)
            out += ",\n";
        first = false;

        out += "{\"name\":\"";
        out += name;
        out += "\",\"cat\":\"";
        out += categoryName(categoryOf(ev.kind));
        out += "\",\"ph\":\"";
        out += ph;
        out += "\",\"ts\":";
        appendTs(out, ev.when);
        out += ",\"pid\":1,\"tid\":";
        out += std::to_string(ev.tid);
        if (!isEnd) {
            if (!isBegin)
                out += ",\"s\":\"t\""; // instant scope: thread
            out += ",\"args\":{";
            appendArgs(out, ev);
            out += "}";
        }
        out += "}";
    }
    out += "\n]\n";
    return out;
}

bool
chromeTraceWrite(const std::string &path,
                 const std::vector<TraceEvent> &events)
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        return false;
    const std::string doc = chromeTraceJson(events);
    f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    return f.good();
}

} // namespace rho
