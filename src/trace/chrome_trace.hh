/**
 * @file
 * Chrome `trace_event` JSON sink.
 *
 * Produces the JSON Array Format understood by Perfetto
 * (https://ui.perfetto.dev) and Chrome's legacy `about://tracing`:
 * PhaseBegin/PhaseEnd become duration ("B"/"E") slices, everything
 * else becomes an instant ("i") event. Timestamps are simulated
 * nanoseconds converted to microseconds with fixed three-decimal
 * formatting, so the text output is as deterministic as the event
 * stream itself. Event tids map to Perfetto tracks, so a parallel
 * campaign renders one lane per task.
 */

#ifndef RHO_TRACE_CHROME_TRACE_HH
#define RHO_TRACE_CHROME_TRACE_HH

#include <string>
#include <vector>

#include "trace/event.hh"

namespace rho
{

/** Render events as a Chrome trace_event JSON array document. */
std::string chromeTraceJson(const std::vector<TraceEvent> &events);

/** Write chromeTraceJson(events) to `path`; false on I/O failure. */
bool chromeTraceWrite(const std::string &path,
                      const std::vector<TraceEvent> &events);

} // namespace rho

#endif // RHO_TRACE_CHROME_TRACE_HH
