/**
 * @file
 * Compact binary golden-trace format.
 *
 * Layout (little-endian host image):
 *
 *     offset  size  field
 *     0       8     magic "rhotrace"
 *     8       4     format version (currently 1)
 *     12      4     reserved (0)
 *     16      8     event count N
 *     24      32*N  raw TraceEvent records
 *
 * Records are the in-memory image of TraceEvent (32 B, no padding —
 * enforced by static_assert), so serialization is bit-exact and a
 * byte-compare of two golden files is exactly an event-stream
 * equality check. Goldens are committed under tests/goldens/ and
 * regenerated with `test_trace --regen-goldens`.
 */

#ifndef RHO_TRACE_GOLDEN_HH
#define RHO_TRACE_GOLDEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.hh"

namespace rho
{

/** Serialize events to the golden binary image (header + records). */
std::string goldenSerialize(const std::vector<TraceEvent> &events);

/**
 * Parse a golden image back into events. Returns false (and leaves
 * `out` empty) on a bad magic, version, or truncated payload.
 */
bool goldenParse(const std::string &bytes, std::vector<TraceEvent> &out);

/** Write a golden file; returns false on I/O failure. */
bool goldenWrite(const std::string &path,
                 const std::vector<TraceEvent> &events);

/** Read a whole file into `bytes`; returns false if unreadable. */
bool goldenReadFile(const std::string &path, std::string &bytes);

/**
 * FNV-1a digest of the serialized image — a stable fingerprint for
 * log lines and quick mismatch triage.
 */
std::uint64_t goldenDigest(const std::vector<TraceEvent> &events);

} // namespace rho

#endif // RHO_TRACE_GOLDEN_HH
