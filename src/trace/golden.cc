#include "trace/golden.hh"

#include <cstring>
#include <fstream>
#include <sstream>

namespace rho
{

namespace
{

constexpr char goldenMagic[8] = {'r', 'h', 'o', 't', 'r', 'a', 'c', 'e'};
constexpr std::uint32_t goldenVersion = 1;
constexpr std::size_t goldenHeaderBytes = 24;

} // namespace

std::string
goldenSerialize(const std::vector<TraceEvent> &events)
{
    std::string out;
    out.reserve(goldenHeaderBytes + events.size() * sizeof(TraceEvent));
    out.append(goldenMagic, sizeof(goldenMagic));

    std::uint32_t version = goldenVersion;
    std::uint32_t reserved = 0;
    std::uint64_t count = events.size();
    out.append(reinterpret_cast<const char *>(&version), sizeof(version));
    out.append(reinterpret_cast<const char *>(&reserved), sizeof(reserved));
    out.append(reinterpret_cast<const char *>(&count), sizeof(count));
    if (!events.empty())
        out.append(reinterpret_cast<const char *>(events.data()),
                   events.size() * sizeof(TraceEvent));
    return out;
}

bool
goldenParse(const std::string &bytes, std::vector<TraceEvent> &out)
{
    out.clear();
    if (bytes.size() < goldenHeaderBytes)
        return false;
    if (std::memcmp(bytes.data(), goldenMagic, sizeof(goldenMagic)) != 0)
        return false;

    std::uint32_t version = 0;
    std::uint64_t count = 0;
    std::memcpy(&version, bytes.data() + 8, sizeof(version));
    std::memcpy(&count, bytes.data() + 16, sizeof(count));
    if (version != goldenVersion)
        return false;
    if (bytes.size() != goldenHeaderBytes + count * sizeof(TraceEvent))
        return false;

    out.resize(count);
    if (count)
        std::memcpy(out.data(), bytes.data() + goldenHeaderBytes,
                    count * sizeof(TraceEvent));
    return true;
}

bool
goldenWrite(const std::string &path, const std::vector<TraceEvent> &events)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    const std::string image = goldenSerialize(events);
    f.write(image.data(), static_cast<std::streamsize>(image.size()));
    return f.good();
}

bool
goldenReadFile(const std::string &path, std::string &bytes)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
    return true;
}

std::uint64_t
goldenDigest(const std::vector<TraceEvent> &events)
{
    const std::string image = goldenSerialize(events);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char ch : image) {
        h ^= ch;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace rho
