#include "trace/metrics.hh"

#include <sstream>

namespace rho
{

std::string
MetricsRegistry::dump(const std::string &prefix) const
{
    std::ostringstream out;
    for (const auto &[name, v] : counters_) {
        if (!prefix.empty()) {
            if (name.compare(0, prefix.size(), prefix) != 0)
                continue;
            // "dram" matches "dram.acts" but not "dramatic.acts".
            if (name.size() > prefix.size() && name[prefix.size()] != '.')
                continue;
        }
        out << "  " << name << " = " << v << "\n";
    }
    return out.str();
}

} // namespace rho
