/**
 * @file
 * Typed simulation events: the vocabulary of the cross-layer trace.
 *
 * Every event is a fixed-size 32-byte POD stamped with simulated time,
 * so an event stream is a pure function of the simulation inputs —
 * byte-identical across runs and across `--jobs` values — and can be
 * byte-compared against committed golden traces. Events carry three
 * generic payload fields (`a`, `b`, `c`) whose meaning depends on the
 * kind (documented per enumerator); doubles travel bit-cast through
 * `c` so the stream stays bit-exact.
 */

#ifndef RHO_TRACE_EVENT_HH
#define RHO_TRACE_EVENT_HH

#include <bit>
#include <cstdint>
#include <type_traits>

#include "common/types.hh"

namespace rho
{

/**
 * Event taxonomy. The `a`/`b`/`c` columns document the payload layout;
 * `flags` carries a small per-kind discriminant (flip direction,
 * refresh source, success bit).
 */
enum class EventKind : std::uint8_t
{
    // ---- CPU core (category Cpu) ------------------------------------
    InstrRetire,     //!< a=op kind, c=count (NOP runs fold into one)
    InstrStall,      //!< a=resource (0 ROB, 1 LQ, 2 SB), c=stall ns bits
    PrefetchIssue,   //!< b=phys addr
    PrefetchDrop,    //!< b=phys addr (prefetch queue full)
    CacheHit,        //!< b=phys addr (served by a present/stale line)
    CacheMiss,       //!< b=phys addr (demand miss reaching DRAM)
    PipelineFlush,   //!< branch mispredict; a=1 obfuscated, 0 loop

    // ---- DRAM device (category Dram) --------------------------------
    DramAct,         //!< a=bank, b=row
    DramRowHit,      //!< a=bank, b=row (CAS on the open row)
    DramPre,         //!< a=bank, b=row being closed (conflict precharge)
    DisturbReset,    //!< a=bank, b=row, c=old disturb bits,
                     //!< flags=ResetSource; emitted only when
                     //!< accumulated disturbance was actually dropped

    // ---- Mitigations (category Trr) ---------------------------------
    TrrSample,       //!< a=bank, b=row, c=counter value after sampling
    TrrEvict,        //!< a=bank, b=row (Misra-Gries counter death)
    TrrTargetedRefresh, //!< a=bank, b=aggressor row (per tREFI tick)
    PtrrRefresh,     //!< a=bank, b=row (controller pTRR immediate)
    RfmRefresh,      //!< a=bank, b=row (DDR5 RFM protected row)

    // ---- Disturb accumulation (category Disturb; hot) ---------------
    Disturb,         //!< a=bank, b=row, c=added weight bits

    // ---- Flip machinery (category Flip) -----------------------------
    BitFlip,         //!< a=bank, b=row, c=bit offset, flags=toOne
    FlipSuppressed,  //!< a=bank, b=row (injected non-reproduction)
    SpuriousRefresh, //!< a=bank, b=row (injected TRR-style refresh)

    // ---- Fault injection (category Fault) ---------------------------
    FaultPhaseEnter, //!< schedule became active at `when`
    FaultPhaseExit,  //!< schedule became inactive at `when`
    FaultDelivered,  //!< a=FaultChannel

    // ---- Attack / experiment structure (category Phase) -------------
    PhaseBegin,      //!< a=SimPhase
    PhaseEnd,        //!< a=SimPhase, c=outcome count (flips, ...)
    AttackDecision,  //!< a=SimPhase, b=FailureCode, flags=success
    Retry,           //!< a=SimPhase, c=backoff ns bits

    // ---- DDR5 PRAC / refresh management (category Trr; appended so
    // ---- committed goldens keep their kind bytes) --------------------
    PracAlert,       //!< a=bank, b=row that crossed, c=counter value
    AboRefresh,      //!< a=bank, b=row serviced during Alert Back-Off
    MitigationStall, //!< a=bank, c=stall ns bits, flags=0 RFM / 1 ABO

    // ---- VM layer / on-die ECC (categories Vm and Flip; appended so
    // ---- committed goldens keep their kind bytes) --------------------
    VmMapped,        //!< a=vm id, b=guest frame (GPA), c=host frame
    EccCorrected,    //!< a=bank, b=row, c=corrected bit offset in row
    EccMiscorrect,   //!< a=bank, b=row, c=toggled bit offset in row
    CrossVmFlip,     //!< a=bank, b=row, c=bit off | attacker vm << 48,
                     //!< flags=victim vm id
};

/** Number of distinct event kinds (array sizing). */
constexpr unsigned numEventKinds =
    static_cast<unsigned>(EventKind::CrossVmFlip) + 1;

/** Why a row's accumulated disturbance was dropped (DisturbReset). */
enum class ResetSource : std::uint8_t
{
    AutoRefresh = 0,  //!< periodic tREFW sweep reached the row
    TrrNeighbor = 1,  //!< TRR targeted refresh of an adjacent aggressor
    RfmNeighbor = 2,  //!< DDR5 RFM protection
    Spurious = 3,     //!< injected spurious refresh
    SelfAct = 4,      //!< the row itself was activated
    DataWrite = 5,    //!< functional write/fill restored the row
    DataRead = 6,     //!< functional read activated the row
    PracNeighbor = 7, //!< DDR5 PRAC Alert Back-Off service
};

/** Which injector channel delivered a fault (FaultDelivered). */
enum class FaultChannel : std::uint8_t
{
    Timing = 0,
    FlipSuppress = 1,
    SpuriousRefresh = 2,
    AllocFail = 3,
    FragmentSpike = 4,
    WorkerCrash = 5,
    WorkerHang = 6,
    JournalBitRot = 7,
};

/** Experiment phases bracketed by PhaseBegin/PhaseEnd. */
enum class SimPhase : std::uint8_t
{
    Hammer = 0,      //!< one kernel execution on the CPU model
    Verify = 1,      //!< victim-row diff after a hammer pass
    Template = 2,    //!< exploit templating sweep
    Massage = 3,     //!< page-table massage
    Rehammer = 4,    //!< flip reproduction on live data
    ReverseEng = 5,  //!< DRAM mapping reverse engineering
    Measure = 6,     //!< robust timing measurement
    NopTune = 7,     //!< counter-speculation NOP tuning
};

/** Coarse event groups; the tracer filters on a category bitmask. */
enum TraceCategory : std::uint32_t
{
    CatCpu = 1u << 0,
    CatDram = 1u << 1,
    CatTrr = 1u << 2,
    CatDisturb = 1u << 3, //!< several events per ACT — the hot one
    CatFlip = 1u << 4,
    CatFault = 1u << 5,
    CatPhase = 1u << 6,
    CatVm = 1u << 7,      //!< VM-layer mapping / boundary crossings

    CatAll = 0xffu,
    /** Everything except per-op CPU and per-ACT disturb chatter. */
    CatDefault = CatAll & ~(CatCpu | CatDisturb),
};

/** Category of one event kind. */
constexpr TraceCategory
categoryOf(EventKind k)
{
    switch (k) {
      case EventKind::InstrRetire:
      case EventKind::InstrStall:
      case EventKind::PrefetchIssue:
      case EventKind::PrefetchDrop:
      case EventKind::CacheHit:
      case EventKind::CacheMiss:
      case EventKind::PipelineFlush:
        return CatCpu;
      case EventKind::DramAct:
      case EventKind::DramRowHit:
      case EventKind::DramPre:
      case EventKind::DisturbReset:
        return CatDram;
      case EventKind::TrrSample:
      case EventKind::TrrEvict:
      case EventKind::TrrTargetedRefresh:
      case EventKind::PtrrRefresh:
      case EventKind::RfmRefresh:
      case EventKind::PracAlert:
      case EventKind::AboRefresh:
      case EventKind::MitigationStall:
        return CatTrr;
      case EventKind::Disturb:
        return CatDisturb;
      case EventKind::BitFlip:
      case EventKind::FlipSuppressed:
      case EventKind::SpuriousRefresh:
      case EventKind::EccCorrected:
      case EventKind::EccMiscorrect:
        return CatFlip;
      case EventKind::VmMapped:
      case EventKind::CrossVmFlip:
        return CatVm;
      case EventKind::FaultPhaseEnter:
      case EventKind::FaultPhaseExit:
      case EventKind::FaultDelivered:
        return CatFault;
      case EventKind::PhaseBegin:
      case EventKind::PhaseEnd:
      case EventKind::AttackDecision:
      case EventKind::Retry:
        return CatPhase;
    }
    return CatPhase; // unreachable
}

/**
 * One trace record. 32 bytes, no padding, trivially copyable — the
 * golden binary format is the raw in-memory image (host endianness;
 * all supported targets are little-endian).
 */
struct TraceEvent
{
    Ns when = 0.0;            //!< simulated time, ns
    EventKind kind = EventKind::InstrRetire;
    std::uint8_t flags = 0;   //!< per-kind discriminant
    std::uint16_t tid = 0;    //!< logical track (campaign task index)
    std::uint32_t a = 0;      //!< bank / op kind / phase id
    std::uint64_t b = 0;      //!< row / physical address / code
    std::uint64_t c = 0;      //!< count / bit offset / double bits
};

static_assert(sizeof(TraceEvent) == 32, "golden format is 32 B/event");
static_assert(std::is_trivially_copyable_v<TraceEvent>);

/** Bit-exact double transport through TraceEvent::c. */
constexpr std::uint64_t
traceBits(double x)
{
    return std::bit_cast<std::uint64_t>(x);
}

/** Inverse of traceBits. */
constexpr double
traceReal(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

/** Stable display name of an event kind ("dram_act", "bit_flip", ...). */
const char *eventKindName(EventKind k);

/** Stable display name of a category ("cpu", "dram", ...). */
const char *categoryName(TraceCategory c);

/** Stable display name of a phase ("hammer", "template", ...). */
const char *simPhaseName(SimPhase p);

} // namespace rho

#endif // RHO_TRACE_EVENT_HH
