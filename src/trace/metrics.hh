/**
 * @file
 * MetricsRegistry: named hierarchical counters unifying the scattered
 * per-subsystem statistics (PerfCounters, FaultStats, RetryStats,
 * ParallelStats, Dimm totals) under dotted names — "dram.acts",
 * "cpu.cache_hits", "retry.template.attempts" — so benches, examples
 * and campaign drivers can dump or merge one object instead of five.
 *
 * Counters are integer-valued and stored in a sorted map, so
 * iteration (and therefore dump()) order is deterministic. Real-valued
 * statistics (simulated ns) are stored as integer nanoseconds.
 */

#ifndef RHO_TRACE_METRICS_HH
#define RHO_TRACE_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

namespace rho
{

/** Ordered collection of named monotonic counters. */
class MetricsRegistry
{
  public:
    /** Add `delta` to counter `name` (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta)
    {
        counters_[name] += delta;
    }

    /** Overwrite counter `name`. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Current value; zero for unknown names. */
    std::uint64_t
    value(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    bool
    has(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    /** Counter-wise sum of another registry into this one. */
    void
    merge(const MetricsRegistry &other)
    {
        for (const auto &[name, v] : other.counters_)
            counters_[name] += v;
    }

    std::size_t size() const { return counters_.size(); }
    void clear() { counters_.clear(); }

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /**
     * Multi-line "  name = value" dump in name order, optionally
     * restricted to counters under `prefix` (dotted-name subtree).
     */
    std::string dump(const std::string &prefix = "") const;

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace rho

#endif // RHO_TRACE_METRICS_HH
