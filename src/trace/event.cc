#include "trace/event.hh"

namespace rho
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::InstrRetire: return "instr_retire";
      case EventKind::InstrStall: return "instr_stall";
      case EventKind::PrefetchIssue: return "prefetch_issue";
      case EventKind::PrefetchDrop: return "prefetch_drop";
      case EventKind::CacheHit: return "cache_hit";
      case EventKind::CacheMiss: return "cache_miss";
      case EventKind::PipelineFlush: return "pipeline_flush";
      case EventKind::DramAct: return "dram_act";
      case EventKind::DramRowHit: return "dram_row_hit";
      case EventKind::DramPre: return "dram_pre";
      case EventKind::DisturbReset: return "disturb_reset";
      case EventKind::TrrSample: return "trr_sample";
      case EventKind::TrrEvict: return "trr_evict";
      case EventKind::TrrTargetedRefresh: return "trr_targeted_refresh";
      case EventKind::PtrrRefresh: return "ptrr_refresh";
      case EventKind::RfmRefresh: return "rfm_refresh";
      case EventKind::Disturb: return "disturb";
      case EventKind::BitFlip: return "bit_flip";
      case EventKind::FlipSuppressed: return "flip_suppressed";
      case EventKind::SpuriousRefresh: return "spurious_refresh";
      case EventKind::FaultPhaseEnter: return "fault_phase_enter";
      case EventKind::FaultPhaseExit: return "fault_phase_exit";
      case EventKind::FaultDelivered: return "fault_delivered";
      case EventKind::PhaseBegin: return "phase_begin";
      case EventKind::PhaseEnd: return "phase_end";
      case EventKind::AttackDecision: return "attack_decision";
      case EventKind::Retry: return "retry";
      case EventKind::PracAlert: return "prac_alert";
      case EventKind::AboRefresh: return "abo_refresh";
      case EventKind::MitigationStall: return "mitigation_stall";
      case EventKind::VmMapped: return "vm_mapped";
      case EventKind::EccCorrected: return "ecc_corrected";
      case EventKind::EccMiscorrect: return "ecc_miscorrect";
      case EventKind::CrossVmFlip: return "cross_vm_flip";
    }
    return "unknown";
}

const char *
categoryName(TraceCategory c)
{
    switch (c) {
      case CatCpu: return "cpu";
      case CatDram: return "dram";
      case CatTrr: return "trr";
      case CatDisturb: return "disturb";
      case CatFlip: return "flip";
      case CatFault: return "fault";
      case CatPhase: return "phase";
      case CatVm: return "vm";
      default: return "mixed";
    }
}

const char *
simPhaseName(SimPhase p)
{
    switch (p) {
      case SimPhase::Hammer: return "hammer";
      case SimPhase::Verify: return "verify";
      case SimPhase::Template: return "template";
      case SimPhase::Massage: return "massage";
      case SimPhase::Rehammer: return "rehammer";
      case SimPhase::ReverseEng: return "reverse_eng";
      case SimPhase::Measure: return "measure";
      case SimPhase::NopTune: return "nop_tune";
    }
    return "unknown";
}

} // namespace rho
