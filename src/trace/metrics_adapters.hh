/**
 * @file
 * Header-only adapters folding the per-subsystem statistics structs
 * into a MetricsRegistry under stable dotted names. Kept out of
 * metrics.hh so rho_trace itself depends only on rho_common; any
 * target that links the subsystem in question can include this.
 *
 * Naming scheme: "<subsystem>.<counter>", snake_case, with retry
 * channels nested one level deeper ("retry.<phase>.<counter>").
 */

#ifndef RHO_TRACE_METRICS_ADAPTERS_HH
#define RHO_TRACE_METRICS_ADAPTERS_HH

#include <cstdint>

#include "common/stats.hh"
#include "cpu/perf_counters.hh"
#include "dram/dimm.hh"
#include "fault/fault_injector.hh"
#include "trace/metrics.hh"

namespace rho
{

inline std::uint64_t
metricNs(double ns)
{
    return ns > 0.0 ? static_cast<std::uint64_t>(ns) : 0;
}

/** SimCpu run counters → "cpu.*". */
inline void
addMetrics(MetricsRegistry &m, const PerfCounters &pc)
{
    m.add("cpu.mem_reads", pc.memReads);
    m.add("cpu.dram_accesses", pc.dramAccesses);
    m.add("cpu.cache_hits", pc.cacheHits);
    m.add("cpu.pf_queue_drops", pc.pfQueueDrops);
    m.add("cpu.flushes", pc.flushes);
    m.add("cpu.branches", pc.branches);
    m.add("cpu.branch_mispredicts", pc.branchMispredicts);
    m.add("cpu.nops", pc.nops);
    m.add("cpu.time_ns", metricNs(pc.timeNs));
}

/** DIMM device totals → "dram.*". */
inline void
addMetrics(MetricsRegistry &m, const Dimm &dimm)
{
    m.add("dram.acts", dimm.totalActs());
    m.add("dram.refreshes.trr", dimm.trrRefreshCount());
    m.add("dram.refreshes.rfm", dimm.rfmCommandCount());
    m.add("dram.flips", dimm.flipLog().size());
}

/** Delivered-fault counters → "fault.*". */
inline void
addMetrics(MetricsRegistry &m, const FaultStats &fs)
{
    m.add("fault.timing_perturbations", fs.timingPerturbations);
    m.add("fault.flips_suppressed", fs.flipsSuppressed);
    m.add("fault.spurious_refreshes", fs.spuriousRefreshes);
    m.add("fault.alloc_failures", fs.allocFailures);
    m.add("fault.fragment_spikes", fs.fragmentSpikes);
}

/** Retry accounting for one phase → "retry.<phase>.*". */
inline void
addMetrics(MetricsRegistry &m, const std::string &phase,
           const RetryStats &rs)
{
    const std::string p = "retry." + phase + ".";
    m.add(p + "attempts", rs.attempts);
    m.add(p + "retries", rs.retries);
    m.add(p + "backoffs", rs.backoffs);
    m.add(p + "backoff_ns", metricNs(rs.backoffNs));
}

/** Campaign scheduling counters → "parallel.*". */
inline void
addMetrics(MetricsRegistry &m, const ParallelStats &ps)
{
    m.set("parallel.jobs", ps.jobs);
    m.add("parallel.tasks_run", ps.tasksRun);
    m.add("parallel.tasks_restored", ps.tasksRestored);
    m.add("parallel.steals", ps.steals);
    m.add("parallel.wall_ns", metricNs(ps.wallNs));
    m.add("parallel.sim_ns", metricNs(ps.simNs));
}

} // namespace rho

#endif // RHO_TRACE_METRICS_ADAPTERS_HH
