#include "trace/tracer.hh"

#include <algorithm>

namespace rho
{

Tracer::Tracer(TraceConfig cfg) : cfg_(cfg), enabled_(cfg.enabled)
{
    if (cfg_.capacity == 0)
        cfg_.capacity = 1;
    if (enabled_)
        ring_.reserve(std::min(cfg_.capacity, std::size_t{1} << 12));
}

void
Tracer::record(Ns when, EventKind kind, std::uint8_t flags,
               std::uint32_t a, std::uint64_t b, std::uint64_t c)
{
    TraceEvent ev;
    ev.when = when;
    ev.kind = kind;
    ev.flags = flags;
    ev.tid = tid_;
    ev.a = a;
    ev.b = b;
    ev.c = c;

    if (count_ < cfg_.capacity) {
        ring_.push_back(ev);
        ++count_;
        head_ = count_ % cfg_.capacity;
    } else {
        // Full: overwrite the oldest slot (drop-oldest flight recorder).
        ring_[head_] = ev;
        head_ = (head_ + 1) % cfg_.capacity;
        ++dropped_;
    }
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(count_);
    if (count_ < cfg_.capacity) {
        out.assign(ring_.begin(), ring_.end());
    } else {
        // head_ points at the oldest event once the ring has wrapped.
        out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
                   ring_.end());
        out.insert(out.end(), ring_.begin(),
                   ring_.begin() + static_cast<std::ptrdiff_t>(head_));
    }
    return out;
}

void
Tracer::clear()
{
    ring_.clear();
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
}

void
appendRestamped(std::vector<TraceEvent> &out, const Tracer &src,
                std::uint16_t tid)
{
    for (TraceEvent ev : src.events()) {
        ev.tid = tid;
        out.push_back(ev);
    }
}

} // namespace rho
