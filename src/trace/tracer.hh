/**
 * @file
 * Flight-recorder tracer: a per-owner ring buffer of TraceEvents.
 *
 * Design constraints, in priority order:
 *
 *  1. Determinism. A Tracer belongs to exactly one logical track — a
 *     campaign task, or the single system of a serial experiment — so
 *     event order within a Tracer is the simulation's own causal
 *     order. Parallel campaigns give each task its own Tracer and
 *     merge them in task-index order, which makes the merged stream
 *     independent of `--jobs` and wall-clock scheduling. There is no
 *     global thread-local registry on purpose: thread identity is not
 *     deterministic, task identity is.
 *
 *  2. Overhead when disabled. Emission goes through the RHO_TRACE
 *     macro whose guard is a single pointer test plus a `bool` load;
 *     argument expressions are not evaluated when tracing is off.
 *     Building with -DRHO_TRACE_DISABLED compiles emission out
 *     entirely (the acceptance bar is <5% on micro_kernels with
 *     tracing compiled in but disabled — the macro guard meets it
 *     without the kill switch, which exists for belt-and-braces).
 *
 *  3. Bounded memory. The buffer is a ring with drop-oldest
 *     semantics: a long run keeps the most recent `capacity` events
 *     and counts what it dropped. Golden tests size the workload to
 *     fit so dropping never perturbs them.
 */

#ifndef RHO_TRACE_TRACER_HH
#define RHO_TRACE_TRACER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/event.hh"

namespace rho
{

/** Knobs for one Tracer; carried by SystemSpec and CLI flags. */
struct TraceConfig
{
    bool enabled = false;
    std::uint32_t categories = CatDefault;
    std::size_t capacity = std::size_t{1} << 20; //!< events (32 MiB)
};

/**
 * Ring buffer of typed events for one logical track. Not thread-safe;
 * each concurrent owner gets its own instance (see file comment).
 */
class Tracer
{
  public:
    explicit Tracer(TraceConfig cfg = {});

    /** True when emission is on and `cat` passes the category mask. */
    bool
    wants(TraceCategory cat) const
    {
        return enabled_ && (cfg_.categories & cat) != 0;
    }

    bool enabled() const { return enabled_; }

    /** Logical track id stamped on every subsequent event. */
    void setTid(std::uint16_t tid) { tid_ = tid; }
    std::uint16_t tid() const { return tid_; }

    /** Append one event (caller already checked wants()). */
    void record(Ns when, EventKind kind, std::uint8_t flags,
                std::uint32_t a, std::uint64_t b, std::uint64_t c);

    /** Events in causal order, oldest surviving first. */
    std::vector<TraceEvent> events() const;

    /** Events discarded by the drop-oldest policy. */
    std::uint64_t dropped() const { return dropped_; }

    std::size_t size() const { return count_; }
    const TraceConfig &config() const { return cfg_; }

    /** Forget everything recorded so far (capacity retained). */
    void clear();

  private:
    TraceConfig cfg_;
    bool enabled_ = false;
    std::uint16_t tid_ = 0;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;  //!< next write slot
    std::size_t count_ = 0; //!< live events (≤ capacity)
    std::uint64_t dropped_ = 0;
};

/**
 * Append `src`'s events to `out`, restamping their tid. Campaign
 * drivers call this per task, in task-index order, so the merged
 * stream is deterministic for any `--jobs`.
 */
void appendRestamped(std::vector<TraceEvent> &out, const Tracer &src,
                     std::uint16_t tid);

} // namespace rho

/**
 * Hot-path emission guard. `tr` is a `Tracer *` (may be null); the
 * payload expressions are only evaluated when the tracer is live and
 * the kind's category is selected.
 */
#ifdef RHO_TRACE_DISABLED
#define RHO_TRACE(tr, when, kind, flags, a, b, c) ((void)0)
#else
#define RHO_TRACE(tr, when, kind, flags, a, b, c)                         \
    do {                                                                  \
        ::rho::Tracer *rho_tr_ = (tr);                                    \
        if (rho_tr_ && rho_tr_->wants(::rho::categoryOf(kind)))           \
            rho_tr_->record((when), (kind), (flags), (a), (b), (c));      \
    } while (0)
#endif

#endif // RHO_TRACE_TRACER_HH
