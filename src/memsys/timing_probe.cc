#include "memsys/timing_probe.hh"

#include <algorithm>

#include "fault/fault_injector.hh"

namespace rho
{

TimingProbe::TimingProbe(MemorySystem &sys_, std::uint64_t seed,
                         Ns noise_sigma, Ns loop_overhead_ns)
    : sys(sys_), rng(seed), noiseSigma(noise_sigma),
      loopOverhead(loop_overhead_ns)
{
}

double
TimingProbe::measurePair(PhysAddr a, PhysAddr b, unsigned rounds)
{
    latBuf.clear();
    Ns fastest = 1e18;
    for (unsigned r = 0; r < rounds; ++r) {
        for (PhysAddr pa : {a, b}) {
            // clflush + access + fence measurement iteration.
            sys.advance(loopOverhead);
            Ns lat = sys.dramAccess(pa, sys.now());
            sys.advance(lat);
            latBuf.push_back(lat);
            fastest = std::min(fastest, lat);
        }
    }
    accesses += latBuf.size();
    // Reject REF-stall spikes (see header); summation order is the
    // access order, so a spike-free train averages bit-identically to
    // the plain mean.
    double total = 0.0;
    std::uint64_t n = 0;
    for (Ns lat : latBuf) {
        if (lat <= fastest + refSpikeCutoffNs) {
            total += lat;
            ++n;
        }
    }
    double avg = total / static_cast<double>(n);
    double sample = avg + rng.normal(0.0, noiseSigma);
    // Environmental interference (co-running workloads) on top of the
    // intrinsic rdtscp jitter, when a fault injector is attached.
    if (FaultInjector *inj = sys.faultInjector())
        sample += inj->timingPerturbation();
    return sample;
}

double
TimingProbe::measurePairRobust(PhysAddr a, PhysAddr b, unsigned rounds,
                               const RobustTimingConfig &cfg,
                               RetryStats *retry)
{
    unsigned base = std::max(1u, cfg.baseSamples);
    unsigned sub_rounds = std::max(1u, rounds / base);

    std::vector<double> samples;
    samples.reserve(base + cfg.maxExtraRounds);
    for (unsigned s = 0; s < base; ++s)
        samples.push_back(measurePair(a, b, sub_rounds));
    if (retry)
        retry->recordAttempt();

    Ns backoff = cfg.backoffNs;
    for (unsigned extra = 0; extra < cfg.maxExtraRounds; ++extra) {
        double med = median(samples);
        if (medianAbsDeviation(samples, med) <= cfg.madGateNs)
            break;
        // Unstable: wait out the interference in simulated time, then
        // take one more independent sub-measurement.
        sys.advance(backoff);
        if (retry)
            retry->recordRetry(backoff);
        RHO_TRACE(sys.tracer(), sys.now(), EventKind::Retry, 0,
                  static_cast<std::uint32_t>(SimPhase::Measure), 0,
                  traceBits(backoff));
        backoff = std::min(backoff * cfg.backoffFactor, cfg.maxBackoffNs);
        samples.push_back(measurePair(a, b, sub_rounds));
    }

    // The median of the (possibly grown) sample set rejects burst
    // outliers that a mean would absorb.
    return median(samples);
}

} // namespace rho
