#include "memsys/timing_probe.hh"

namespace rho
{

TimingProbe::TimingProbe(MemorySystem &sys_, std::uint64_t seed,
                         Ns noise_sigma, Ns loop_overhead_ns)
    : sys(sys_), rng(seed), noiseSigma(noise_sigma),
      loopOverhead(loop_overhead_ns)
{
}

double
TimingProbe::measurePair(PhysAddr a, PhysAddr b, unsigned rounds)
{
    double total = 0.0;
    std::uint64_t n = 0;
    for (unsigned r = 0; r < rounds; ++r) {
        for (PhysAddr pa : {a, b}) {
            // clflush + access + fence measurement iteration.
            sys.advance(loopOverhead);
            Ns lat = sys.dramAccess(pa, sys.now());
            sys.advance(lat);
            total += lat;
            ++n;
        }
    }
    accesses += n;
    double avg = total / static_cast<double>(n);
    return avg + rng.normal(0.0, noiseSigma);
}

} // namespace rho
