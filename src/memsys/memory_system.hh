/**
 * @file
 * MemorySystem: the composition root tying one architecture (mapping +
 * core parameters) to one DIMM behind a memory controller, with a
 * global simulated clock.
 */

#ifndef RHO_MEMSYS_MEMORY_SYSTEM_HH
#define RHO_MEMSYS_MEMORY_SYSTEM_HH

#include <deque>
#include <memory>
#include <unordered_map>

#include "cpu/arch_params.hh"
#include "cpu/sim_cpu.hh"
#include "dram/controller.hh"
#include "fault/fault_injector.hh"
#include "mapping/mapping_presets.hh"
#include "trace/tracer.hh"

namespace rho
{

/**
 * One simulated machine: CPU architecture + single-channel DIMM.
 * Implements MemoryBackend so SimCpu kernels can drive it, and keeps
 * a monotone global clock so successive experiment phases observe a
 * consistent refresh/TRR timeline.
 */
class MemorySystem : public MemoryBackend
{
  public:
    /**
     * @param arch platform (selects mapping scheme + core model).
     * @param dimm DIMM profile (geometry, timing grade, weak cells).
     * @param trr_cfg mitigation configuration.
     * @param seed randomness for the core model.
     * @param ecc_cfg on-die ECC model (off by default).
     * @param refresh_boost divide tREFI/tREFW by this factor — the
     *        "refresh boosting" software defense (1.0 = stock rate).
     */
    MemorySystem(Arch arch, const DimmProfile &dimm,
                 const TrrConfig &trr_cfg = TrrConfig{},
                 std::uint64_t seed = 1,
                 const RfmConfig &rfm_cfg = RfmConfig{},
                 const PracConfig &prac_cfg = PracConfig{},
                 const EccConfig &ecc_cfg = EccConfig{},
                 double refresh_boost = 1.0);

    /**
     * Build with an explicit mapping (used by reverse-engineering
     * property tests that randomize the mapping).
     */
    MemorySystem(Arch arch, const DimmProfile &dimm,
                 AddressMapping mapping, const TrrConfig &trr_cfg,
                 std::uint64_t seed,
                 const RfmConfig &rfm_cfg = RfmConfig{},
                 const PracConfig &prac_cfg = PracConfig{},
                 const EccConfig &ecc_cfg = EccConfig{},
                 double refresh_boost = 1.0);

    // MemoryBackend
    Ns dramAccess(PhysAddr pa, Ns now) override;

    /**
     * Memoized physical-to-DRAM address decode: the first request for
     * a line runs the full GF(2) mapping and caches the result in
     * pointer-stable storage, so a hammer kernel's fixed working set
     * decodes once per system instead of once per access. Handles stay
     * valid for this system's lifetime.
     */
    const void *resolveLine(PhysAddr pa) override;
    Ns dramAccessResolved(const void *handle, Ns now) override;

    /** CPU replay engine newly built cores use (see CpuModelKind). */
    CpuModelKind cpuModel() const { return cpuKind; }
    void setCpuModel(CpuModelKind k) { cpuKind = k; }

    /** Current global simulated time. */
    Ns now() const { return clock; }

    /** Advance the clock (idle time between experiment phases). */
    void advance(Ns dt) { clock += dt; }

    /** Fold a CPU-run end time into the global clock. */
    void syncTo(Ns t) { clock = std::max(clock, t); }

    Arch arch() const { return archId; }
    const ArchParams &cpuParams() const { return *params; }
    const AddressMapping &mapping() const { return mc->mapping(); }
    MemoryController &controller() { return *mc; }
    Dimm &dimm() { return mc->dimm(); }
    const Dimm &dimm() const { return mc->dimm(); }

    /**
     * Attach a fault injector to this machine: binds it to the global
     * clock and enables its DRAM-side channels (flip suppression,
     * spurious refresh). TimingProbe and BuddyAllocator consult it via
     * faultInjector(). Pass nullptr to detach. The injector must
     * outlive the system or be detached before destruction.
     */
    void
    attachFaultInjector(FaultInjector *inj)
    {
        injector = inj;
        if (inj) {
            inj->bindClock(&clock);
            inj->setTracer(tr);
        }
        mc->dimm().setFaultInjector(inj);
    }

    /** Attached injector, or nullptr when running fault-free. */
    FaultInjector *faultInjector() const { return injector; }

    /**
     * Attach a tracer to this machine: wires the DIMM (and through it
     * the TRR sampler) and any already-attached fault injector. Order
     * relative to attachFaultInjector does not matter — whichever is
     * attached second picks the other up. Pass nullptr to detach. The
     * tracer must outlive the system or be detached first.
     */
    void
    attachTracer(Tracer *t)
    {
        tr = t;
        mc->dimm().setTracer(t);
        if (injector)
            injector->setTracer(t);
    }

    /** Attached tracer, or nullptr when not tracing. */
    Tracer *tracer() const { return tr; }

    /** Functional data path at the current clock. */
    std::uint8_t readByte(PhysAddr pa) { return mc->readByte(pa, clock); }
    void
    writeByte(PhysAddr pa, std::uint8_t v)
    {
        mc->writeByte(pa, v, clock);
    }

  private:
    Arch archId;
    const ArchParams *params;
    std::unique_ptr<MemoryController> mc;
    FaultInjector *injector = nullptr;
    Tracer *tr = nullptr;
    Ns clock = 0.0;
    CpuModelKind cpuKind = CpuModelKind::Blocked;

    // resolveLine memo: deque keeps decoded addresses pointer-stable
    // while the index grows.
    std::deque<DramAddr> resolvedLines;
    std::unordered_map<PhysAddr, const DramAddr *> resolvedIndex;
};

/**
 * A recipe for building identical MemorySystems on demand.
 *
 * Parallel campaign engines instantiate one fresh system per task so
 * tasks share no mutable state; construction is cheap because the
 * DIMM's per-row state is lazy (nothing is allocated until a row is
 * touched). The referenced DimmProfile must outlive the spec — the
 * static Table 2 profiles (`DimmProfile::byId`) always do.
 */
struct SystemSpec
{
    Arch arch = Arch::RaptorLake;
    const DimmProfile *dimm = nullptr;
    TrrConfig trr{};
    RfmConfig rfm{};
    PracConfig prac{};
    EccConfig ecc{};     //!< on-die ECC model (campaign identity)
    /**
     * Refresh boosting defense: the refresh clock (tREFI and the tREFW
     * sweep) runs this many times faster than stock. Part of campaign
     * identity; 1.0 is a plain machine.
     */
    double refreshBoost = 1.0;
    TraceConfig trace{}; //!< campaign workers trace per-task when enabled

    /**
     * Route every instantiated DIMM through the original hash-map row
     * store (RowStoreKind::Reference) instead of the flat fast path.
     * Used by the differential tests in tests/test_rowstore.cc; both
     * stores are observably identical.
     */
    bool referenceRowStore = false;

    /**
     * CPU replay engine for cores built against the instantiated
     * system (HammerSession reads it). Blocked is the block-cached
     * fast path; Reference keeps the original op-by-op interpreter as
     * the differential oracle (tests/test_cpu_oracle.cc). Both are
     * observably identical, so — like referenceRowStore — this field
     * is not part of a campaign's content-addressed identity.
     */
    CpuModelKind cpuModel = CpuModelKind::Blocked;

    SystemSpec() = default;
    SystemSpec(Arch arch_, const DimmProfile &dimm_,
               const TrrConfig &trr_ = TrrConfig{},
               const RfmConfig &rfm_ = RfmConfig{})
        : arch(arch_), dimm(&dimm_), trr(trr_), rfm(rfm_)
    {
    }

    /** Build a fresh system; `seed` feeds the core model only. */
    MemorySystem instantiate(std::uint64_t seed) const;
};

} // namespace rho

#endif // RHO_MEMSYS_MEMORY_SYSTEM_HH
