#include "memsys/memory_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rho
{

MemorySystem
SystemSpec::instantiate(std::uint64_t seed) const
{
    if (!dimm)
        panic("SystemSpec::instantiate: no DIMM profile set");
    MemorySystem sys(arch, *dimm, trr, seed, rfm, prac);
    if (referenceRowStore)
        sys.dimm().setRowStore(RowStoreKind::Reference);
    sys.setCpuModel(cpuModel);
    return sys;
}

MemorySystem::MemorySystem(Arch arch, const DimmProfile &dimm,
                           const TrrConfig &trr_cfg, std::uint64_t seed,
                           const RfmConfig &rfm_cfg,
                           const PracConfig &prac_cfg)
    : MemorySystem(arch, dimm,
                   mappingFor(arch, dimm.geom.sizeGib(), dimm.geom.ranks),
                   trr_cfg, seed, rfm_cfg, prac_cfg)
{
}

MemorySystem::MemorySystem(Arch arch, const DimmProfile &dimm,
                           AddressMapping mapping, const TrrConfig &trr_cfg,
                           std::uint64_t seed, const RfmConfig &rfm_cfg,
                           const PracConfig &prac_cfg)
    : archId(arch), params(&ArchParams::forArch(arch))
{
    // The platform clamps the DIMM to its supported data rate; DDR5
    // parts (>= 4000 MT/s rating) use the DDR5 timing preset.
    bool ddr5 = dimm.freqMts >= 4000;
    unsigned mts = ddr5 ? dimm.freqMts
                        : std::min(dimm.freqMts, archMemFreq(arch));
    mc = std::make_unique<MemoryController>(
        std::move(mapping), dimm,
        ddr5 ? DramTiming::ddr5(mts) : DramTiming::ddr4(mts), trr_cfg,
        rfm_cfg, prac_cfg);
    (void)seed;
}

Ns
MemorySystem::dramAccess(PhysAddr pa, Ns now)
{
    Ns t = std::max(clock, now);
    DramAccessResult res = mc->access(pa, t);
    clock = t;
    return res.latency;
}

const void *
MemorySystem::resolveLine(PhysAddr pa)
{
    auto it = resolvedIndex.find(pa);
    if (it != resolvedIndex.end())
        return it->second;
    resolvedLines.push_back(mc->decode(pa));
    const DramAddr *da = &resolvedLines.back();
    resolvedIndex.emplace(pa, da);
    return da;
}

Ns
MemorySystem::dramAccessResolved(const void *handle, Ns now)
{
    // Must stay the exact twin of dramAccess() minus the decode.
    Ns t = std::max(clock, now);
    DramAccessResult res =
        mc->access(*static_cast<const DramAddr *>(handle), t);
    clock = t;
    return res.latency;
}

} // namespace rho
