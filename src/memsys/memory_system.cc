#include "memsys/memory_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rho
{

MemorySystem
SystemSpec::instantiate(std::uint64_t seed) const
{
    if (!dimm)
        panic("SystemSpec::instantiate: no DIMM profile set");
    MemorySystem sys(arch, *dimm, trr, seed, rfm, prac, ecc,
                     refreshBoost);
    if (referenceRowStore)
        sys.dimm().setRowStore(RowStoreKind::Reference);
    sys.setCpuModel(cpuModel);
    return sys;
}

MemorySystem::MemorySystem(Arch arch, const DimmProfile &dimm,
                           const TrrConfig &trr_cfg, std::uint64_t seed,
                           const RfmConfig &rfm_cfg,
                           const PracConfig &prac_cfg,
                           const EccConfig &ecc_cfg, double refresh_boost)
    : MemorySystem(arch, dimm,
                   mappingFor(arch, dimm.geom.sizeGib(), dimm.geom.ranks),
                   trr_cfg, seed, rfm_cfg, prac_cfg, ecc_cfg,
                   refresh_boost)
{
}

MemorySystem::MemorySystem(Arch arch, const DimmProfile &dimm,
                           AddressMapping mapping, const TrrConfig &trr_cfg,
                           std::uint64_t seed, const RfmConfig &rfm_cfg,
                           const PracConfig &prac_cfg,
                           const EccConfig &ecc_cfg, double refresh_boost)
    : archId(arch), params(&ArchParams::forArch(arch))
{
    // The platform clamps the DIMM to its supported data rate. The
    // profile's MemStandard picks the timing preset; Auto keeps the
    // historical rule (>= 4000 MT/s rating means DDR5, else DDR4).
    MemStandard std_ = dimm.standard;
    if (std_ == MemStandard::Auto)
        std_ = dimm.freqMts >= 4000 ? MemStandard::Ddr5 : MemStandard::Ddr4;
    unsigned mts = std_ == MemStandard::Ddr4
                       ? std::min(dimm.freqMts, archMemFreq(arch))
                       : dimm.freqMts;
    DramTiming timing;
    switch (std_) {
      case MemStandard::Ddr4:
        timing = DramTiming::ddr4(mts);
        break;
      case MemStandard::Ddr5:
        timing = DramTiming::ddr5(mts);
        break;
      case MemStandard::Lpddr4:
        timing = DramTiming::lpddr4(mts);
        break;
      case MemStandard::Auto:
        panic("MemorySystem: unresolved MemStandard::Auto");
    }
    // Shallow-controller platforms expose REF stalls to the core even
    // on DDR4 parts (hammer/ref_sync relies on the spikes).
    timing.refBlocking = timing.refBlocking || archRefBlocking(arch);
    // Refresh boosting: the controller issues REF this many times
    // faster, so both the tREFI tick (TRR/RFM clocks, REF blocking)
    // and the tREFW all-rows sweep shrink together.
    if (refresh_boost <= 0.0)
        panic("MemorySystem: refresh boost must be positive");
    if (refresh_boost != 1.0) {
        timing.tREFI /= refresh_boost;
        timing.tREFW /= refresh_boost;
    }
    mc = std::make_unique<MemoryController>(std::move(mapping), dimm,
                                            timing, trr_cfg, rfm_cfg,
                                            prac_cfg, ecc_cfg);
    (void)seed;
}

Ns
MemorySystem::dramAccess(PhysAddr pa, Ns now)
{
    Ns t = std::max(clock, now);
    DramAccessResult res = mc->access(pa, t);
    clock = t;
    return res.latency;
}

const void *
MemorySystem::resolveLine(PhysAddr pa)
{
    auto it = resolvedIndex.find(pa);
    if (it != resolvedIndex.end())
        return it->second;
    resolvedLines.push_back(mc->decode(pa));
    const DramAddr *da = &resolvedLines.back();
    resolvedIndex.emplace(pa, da);
    return da;
}

Ns
MemorySystem::dramAccessResolved(const void *handle, Ns now)
{
    // Must stay the exact twin of dramAccess() minus the decode.
    Ns t = std::max(clock, now);
    DramAccessResult res =
        mc->access(*static_cast<const DramAddr *>(handle), t);
    clock = t;
    return res.latency;
}

} // namespace rho
