/**
 * @file
 * The SBDR (same-bank different-row) timing side channel.
 *
 * Reverse engineering measures the average access latency of address
 * pairs: same-row and different-bank pairs are served by open row
 * buffers (fast), while same-bank different-row pairs force a
 * precharge + activate on every access (slow). The probe models the
 * rdtscp-based measurement loop, including timer noise.
 */

#ifndef RHO_MEMSYS_TIMING_PROBE_HH
#define RHO_MEMSYS_TIMING_PROBE_HH

#include "common/rng.hh"
#include "common/stats.hh"
#include "memsys/memory_system.hh"

namespace rho
{

/**
 * Tuning for measurePairRobust(): how many independent sub-samples to
 * take, when their spread is considered unstable (MAD gate), and how
 * to back off in simulated time before re-measuring.
 */
struct RobustTimingConfig
{
    unsigned baseSamples = 3;   //!< initial independent sub-measurements
    unsigned maxExtraRounds = 4; //!< re-measurement rounds when unstable
    double madGateNs = 3.0;     //!< spread above this triggers re-measure
    Ns backoffNs = 20e3;        //!< first backoff (simulated ns)
    double backoffFactor = 2.0; //!< exponential growth per round
    Ns maxBackoffNs = 320e3;    //!< backoff ceiling
};

/** Measurement front end for the row-conflict side channel. */
class TimingProbe
{
  public:
    /**
     * @param noise_sigma gaussian jitter (ns) added to every averaged
     *        measurement, modelling rdtscp and system noise.
     * @param loop_overhead_ns per-access instruction overhead of the
     *        flush+access+fence measurement loop.
     */
    TimingProbe(MemorySystem &sys, std::uint64_t seed,
                Ns noise_sigma = 1.2, Ns loop_overhead_ns = 12.0);

    /**
     * Average per-access latency (ns) of alternately accessing a and
     * b, each address accessed `rounds` times, flushed in between.
     *
     * Accesses slower than the train's fastest by more than
     * refSpikeCutoffNs are excluded from the average: on platforms
     * with exposed REF blocking a few accesses per train absorb a
     * tRFC-sized refresh stall, and attackers discard those
     * REF-crossing rounds. Both latency modes of the side channel sit
     * within ~30 ns of each other, so the cutoff never fires on
     * spike-free platforms and the mean is exactly the historical one.
     */
    double measurePair(PhysAddr a, PhysAddr b, unsigned rounds = 50);

    /** Spike-rejection window above the fastest access of a train. */
    static constexpr Ns refSpikeCutoffNs = 100.0;

    /**
     * Outlier-resilient pair measurement: splits `rounds` across
     * several independent sub-measurements and returns their median.
     * If the sub-measurements disagree (MAD above cfg.madGateNs — a
     * co-running workload burst), waits out the interference with
     * bounded exponential backoff in simulated time and re-measures,
     * up to cfg.maxExtraRounds times. Retry accounting lands in
     * `retry` when given.
     */
    double measurePairRobust(PhysAddr a, PhysAddr b, unsigned rounds = 50,
                             const RobustTimingConfig &cfg = {},
                             RetryStats *retry = nullptr);

    /** Total timed accesses so far (cost accounting for Table 5). */
    std::uint64_t accessCount() const { return accesses; }

    MemorySystem &system() { return sys; }

  private:
    MemorySystem &sys;
    Rng rng;
    Ns noiseSigma;
    Ns loopOverhead;
    std::uint64_t accesses = 0;
    std::vector<Ns> latBuf; //!< per-train scratch (avoids realloc)
};

} // namespace rho

#endif // RHO_MEMSYS_TIMING_PROBE_HH
