#include "hammer/sweep.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>

#include "common/checkpoint.hh"
#include "common/parallel.hh"

namespace rho
{

std::uint64_t
campaignKey(const SystemSpec &spec, const HammerConfig &cfg,
            std::uint64_t seed)
{
    std::uint64_t key = hashCombine(seed, 0x9a3fULL);
    key = hashCombine(key, static_cast<std::uint64_t>(spec.arch));
    for (char c : spec.dimm->id)
        key = hashCombine(key, static_cast<std::uint64_t>(c));
    key = hashCombine(key, static_cast<std::uint64_t>(cfg.instr));
    key = hashCombine(key, static_cast<std::uint64_t>(cfg.mode));
    key = hashCombine(key, cfg.numBanks);
    key = hashCombine(key, cfg.obfuscate ? 1 : 0);
    key = hashCombine(key, static_cast<std::uint64_t>(cfg.barrier));
    key = hashCombine(key, cfg.nopCount);
    key = hashCombine(key, cfg.accessBudget);
    key = hashCombine(key, cfg.victimFill);
    key = hashCombine(key, cfg.aggrFill);
    key = hashCombine(key, cfg.refSync ? 1 : 0);
    // Mitigation configuration: a bypass search runs many campaigns
    // against one checkpoint path that differ only in TRR/RFM/PRAC
    // settings; the key must separate them or a journal recorded under
    // one config would be replayed under another.
    key = hashCombine(key, spec.trr.enabled ? 1 : 0);
    key = hashCombine(key, spec.trr.counters);
    key = hashCombine(key, traceBits(spec.trr.sampleProb));
    key = hashCombine(key, spec.trr.matchThreshold);
    key = hashCombine(key, spec.trr.maxRefreshesPerTick);
    key = hashCombine(key, spec.trr.ptrr ? 1 : 0);
    key = hashCombine(key, traceBits(spec.trr.ptrrSampleProb));
    key = hashCombine(key, spec.trr.seed);
    key = hashCombine(key, spec.rfm.enabled ? 1 : 0);
    key = hashCombine(key, spec.rfm.raaimt);
    key = hashCombine(key, spec.rfm.raammt);
    key = hashCombine(key, spec.rfm.refDecrement);
    key = hashCombine(key, spec.rfm.serviceDelayActs);
    key = hashCombine(key, spec.rfm.victimsPerRfm);
    key = hashCombine(key, spec.rfm.recencyDepth);
    key = hashCombine(key, spec.prac.enabled ? 1 : 0);
    key = hashCombine(key, spec.prac.threshold);
    key = hashCombine(key, spec.prac.aboSlots);
    // On-die ECC and refresh boosting change which flips a campaign
    // observes, so they separate journal identities too.
    key = hashCombine(key, spec.ecc.enabled ? 1 : 0);
    key = hashCombine(key, spec.ecc.codewordBytes);
    key = hashCombine(key, traceBits(spec.refreshBoost));
    return key;
}

HammerLocation
sweepLocationAt(const DimmGeometry &geom, const HammerPattern &pattern,
                std::uint64_t seed, unsigned index)
{
    std::uint64_t span = pattern.footprintRows() + 8;
    HammerLocation loc;
    loc.bank = static_cast<std::uint32_t>(hashCombine(seed, index)
                                          % geom.flatBanks());
    // Non-repeating rows: stride the bank space deterministically.
    std::uint64_t region =
        (geom.rowsPerBank - 16) / std::max<std::uint64_t>(span, 1);
    std::uint64_t slot = (index * 2654435761ULL) % region;
    loc.baseRow = 8 + slot * span;
    return loc;
}

SweepResult
sweep(HammerSession &session, const HammerPattern &pattern,
      const HammerConfig &cfg, unsigned num_locations, std::uint64_t seed)
{
    SweepResult res;
    MemorySystem &sys = session.system();
    const auto &geom = sys.dimm().geometry();

    Ns t0 = sys.now();
    for (unsigned l = 0; l < num_locations; ++l) {
        HammerLocation loc = sweepLocationAt(geom, pattern, seed, l);
        HammerOutcome out = session.hammer(pattern, loc, cfg);
        res.totalFlips += out.flips;
        res.flipsPerLocation.push_back(out.flips);
        res.cumulativeTimeNs.push_back(sys.now() - t0);
        for (const auto &f : out.flipList)
            res.flipList.push_back(f);
    }
    res.simTimeNs = sys.now() - t0;
    return res;
}

namespace
{

/** What one sweep task reports back for the ordered merge. */
struct SweepTaskResult
{
    std::uint64_t flips = 0;
    Ns simTimeNs = 0.0;
    std::vector<FlipRecord> flipList;
    // Device/core totals for the unified metrics (journaled so a
    // checkpoint-restored task contributes identical counters).
    std::uint64_t acts = 0;
    std::uint64_t trrRefreshes = 0;
    std::uint64_t rfmCommands = 0;
    std::uint64_t pracAlerts = 0;
    std::uint64_t dramAccesses = 0;
    // Per-task trace; never journaled (tracing bypasses restores).
    std::vector<TraceEvent> events;
};

/**
 * One journal line: flips, sim time, flip records, then the metric
 * totals. The journal kind is "sweep3" — earlier formats ("sweep",
 * "sweep2" without the PRAC counter) do not parse and are discarded
 * via the kind mismatch.
 */
std::string
serializeSweepTask(const SweepTaskResult &r)
{
    std::ostringstream out;
    out << r.flips << " " << encodeDouble(r.simTimeNs) << " "
        << r.flipList.size();
    for (const FlipRecord &f : r.flipList) {
        out << " " << f.bank << " " << f.row << " " << f.bitOffset << " "
            << (f.toOne ? 1 : 0) << " " << encodeDouble(f.when);
    }
    out << " " << r.acts << " " << r.trrRefreshes << " " << r.rfmCommands
        << " " << r.pracAlerts << " " << r.dramAccesses;
    return out.str();
}

std::optional<SweepTaskResult>
parseSweepTask(const std::string &payload)
{
    std::istringstream in(payload);
    SweepTaskResult r;
    std::string sim_hex;
    std::size_t n = 0;
    if (!(in >> r.flips >> sim_hex >> n))
        return std::nullopt;
    auto sim = decodeDouble(sim_hex);
    if (!sim)
        return std::nullopt;
    r.simTimeNs = *sim;
    r.flipList.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        FlipRecord f{};
        int to_one = 0;
        std::string when_hex;
        if (!(in >> f.bank >> f.row >> f.bitOffset >> to_one >> when_hex))
            return std::nullopt;
        auto when = decodeDouble(when_hex);
        if (!when)
            return std::nullopt;
        f.toOne = to_one != 0;
        f.when = *when;
        r.flipList.push_back(f);
    }
    if (!(in >> r.acts >> r.trrRefreshes >> r.rfmCommands >> r.pracAlerts
          >> r.dramAccesses))
        return std::nullopt;
    return r;
}

} // namespace

std::uint64_t
sweepJournalKey(const SystemSpec &spec, const HammerConfig &cfg,
                const SweepParams &params, const HammerPattern &pattern,
                std::uint64_t seed)
{
    std::uint64_t key = campaignKey(spec, cfg, seed);
    key = hashCombine(key, params.numLocations);
    key = hashCombine(key, pattern.id());
    return key;
}

SweepResult
sweepCampaign(const SystemSpec &spec, const HammerPattern &pattern,
              const HammerConfig &cfg, const SweepParams &params,
              std::uint64_t seed, ParallelStats *stats,
              MetricsRegistry *metrics, std::vector<TraceEvent> *trace)
{
    const DimmGeometry &geom = spec.dimm->geom;
    const bool tracing = spec.trace.enabled;
    const std::vector<std::uint8_t> *mask = params.taskMask;

    std::shared_ptr<TaskJournal> journal;
    if (!params.checkpointPath.empty()) {
        journal = std::make_shared<TaskJournal>(
            params.checkpointPath,
            sweepJournalKey(spec, cfg, params, pattern, seed),
            SweepJournalKind, params.journal);
    }
    std::atomic<std::uint64_t> restored{0};

    auto task = [&](unsigned i) -> SweepTaskResult {
        if (mask && !(*mask)[i])
            return SweepTaskResult{}; // another shard's task
        // A journal restore has no event stream, so a tracing run
        // recomputes every task to keep the merged trace complete.
        if (journal && !tracing) {
            if (auto payload = journal->lookup(i)) {
                if (auto r = parseSweepTask(*payload)) {
                    restored.fetch_add(1, std::memory_order_relaxed);
                    return std::move(*r);
                }
            }
        }
        std::uint64_t task_seed = hashCombine(seed, i);
        MemorySystem sys = spec.instantiate(task_seed);
        HammerSession session(sys, task_seed);
        Tracer tracer(spec.trace);
        if (tracing) {
            tracer.setTid(static_cast<std::uint16_t>(i));
            sys.attachTracer(&tracer);
        }
        HammerLocation loc = sweepLocationAt(geom, pattern, seed, i);

        Ns t0 = sys.now();
        HammerOutcome out = session.hammer(pattern, loc, cfg);
        SweepTaskResult r;
        r.flips = out.flips;
        r.simTimeNs = sys.now() - t0;
        r.flipList = std::move(out.flipList);
        r.acts = sys.dimm().totalActs();
        r.trrRefreshes = sys.dimm().trrRefreshCount();
        r.rfmCommands = sys.dimm().rfmCommandCount();
        r.pracAlerts = sys.dimm().pracAlertCount();
        r.dramAccesses = out.perf.dramAccesses;
        if (tracing)
            r.events = tracer.events();
        if (tracing)
            sys.attachTracer(nullptr);
        if (journal)
            journal->record(i, serializeSweepTask(r));
        return r;
    };

    auto tasks = parallelMapOrdered(params.numLocations, params.jobs,
                                    task, stats);
    if (stats) {
        stats->tasksRestored = restored.load();
        // Restored tasks did no simulation work; tasksRun counts only
        // tasks actually executed.
        stats->tasksRun -= stats->tasksRestored;
    }

    // Merge in task-index order: identical output for any job count.
    SweepResult res;
    unsigned merged = 0;
    for (unsigned i = 0; i < tasks.size(); ++i) {
        if (mask && !(*mask)[i])
            continue; // another shard's task: no merge contribution
        const SweepTaskResult &t = tasks[i];
        ++merged;
        res.totalFlips += t.flips;
        res.flipsPerLocation.push_back(t.flips);
        res.simTimeNs += t.simTimeNs;
        res.cumulativeTimeNs.push_back(res.simTimeNs);
        for (const auto &f : t.flipList)
            res.flipList.push_back(f);
        if (metrics) {
            metrics->add("dram.acts", t.acts);
            metrics->add("dram.refreshes.trr", t.trrRefreshes);
            metrics->add("dram.refreshes.rfm", t.rfmCommands);
            metrics->add("dram.alerts.prac", t.pracAlerts);
            metrics->add("cpu.dram_accesses", t.dramAccesses);
            metrics->add("hammer.flips", t.flips);
        }
        if (trace)
            trace->insert(trace->end(), t.events.begin(), t.events.end());
    }
    if (metrics)
        metrics->add("campaign.locations", merged);
    if (stats)
        stats->simNs = res.simTimeNs;
    return res;
}

} // namespace rho
