#include "hammer/sweep.hh"

#include <algorithm>

#include "common/parallel.hh"

namespace rho
{

HammerLocation
sweepLocationAt(const DimmGeometry &geom, const HammerPattern &pattern,
                std::uint64_t seed, unsigned index)
{
    std::uint64_t span = pattern.footprintRows() + 8;
    HammerLocation loc;
    loc.bank = static_cast<std::uint32_t>(hashCombine(seed, index)
                                          % geom.flatBanks());
    // Non-repeating rows: stride the bank space deterministically.
    std::uint64_t region =
        (geom.rowsPerBank - 16) / std::max<std::uint64_t>(span, 1);
    std::uint64_t slot = (index * 2654435761ULL) % region;
    loc.baseRow = 8 + slot * span;
    return loc;
}

SweepResult
sweep(HammerSession &session, const HammerPattern &pattern,
      const HammerConfig &cfg, unsigned num_locations, std::uint64_t seed)
{
    SweepResult res;
    MemorySystem &sys = session.system();
    const auto &geom = sys.dimm().geometry();

    Ns t0 = sys.now();
    for (unsigned l = 0; l < num_locations; ++l) {
        HammerLocation loc = sweepLocationAt(geom, pattern, seed, l);
        HammerOutcome out = session.hammer(pattern, loc, cfg);
        res.totalFlips += out.flips;
        res.flipsPerLocation.push_back(out.flips);
        res.cumulativeTimeNs.push_back(sys.now() - t0);
        for (const auto &f : out.flipList)
            res.flipList.push_back(f);
    }
    res.simTimeNs = sys.now() - t0;
    return res;
}

namespace
{

/** What one sweep task reports back for the ordered merge. */
struct SweepTaskResult
{
    std::uint64_t flips = 0;
    Ns simTimeNs = 0.0;
    std::vector<FlipRecord> flipList;
};

} // namespace

SweepResult
sweepCampaign(const SystemSpec &spec, const HammerPattern &pattern,
              const HammerConfig &cfg, const SweepParams &params,
              std::uint64_t seed, ParallelStats *stats)
{
    const DimmGeometry &geom = spec.dimm->geom;

    auto task = [&](unsigned i) -> SweepTaskResult {
        std::uint64_t task_seed = hashCombine(seed, i);
        MemorySystem sys = spec.instantiate(task_seed);
        HammerSession session(sys, task_seed);
        HammerLocation loc = sweepLocationAt(geom, pattern, seed, i);

        Ns t0 = sys.now();
        HammerOutcome out = session.hammer(pattern, loc, cfg);
        SweepTaskResult r;
        r.flips = out.flips;
        r.simTimeNs = sys.now() - t0;
        r.flipList = std::move(out.flipList);
        return r;
    };

    auto tasks = parallelMapOrdered(params.numLocations, params.jobs,
                                    task, stats);

    // Merge in task-index order: identical output for any job count.
    SweepResult res;
    for (const SweepTaskResult &t : tasks) {
        res.totalFlips += t.flips;
        res.flipsPerLocation.push_back(t.flips);
        res.simTimeNs += t.simTimeNs;
        res.cumulativeTimeNs.push_back(res.simTimeNs);
        for (const auto &f : t.flipList)
            res.flipList.push_back(f);
    }
    if (stats)
        stats->simNs = res.simTimeNs;
    return res;
}

} // namespace rho
