#include "hammer/sweep.hh"

namespace rho
{

SweepResult
sweep(HammerSession &session, const HammerPattern &pattern,
      const HammerConfig &cfg, unsigned num_locations, std::uint64_t seed)
{
    SweepResult res;
    Rng rng(seed);
    MemorySystem &sys = session.system();
    const auto &geom = sys.dimm().geometry();

    Ns t0 = sys.now();
    std::uint64_t span = pattern.footprintRows() + 8;
    for (unsigned l = 0; l < num_locations; ++l) {
        HammerLocation loc;
        loc.bank = static_cast<std::uint32_t>(
            rng.uniformInt(0, geom.flatBanks() - 1));
        // Non-repeating rows: stride the bank space deterministically.
        std::uint64_t region =
            (geom.rowsPerBank - 16) / std::max<std::uint64_t>(span, 1);
        std::uint64_t slot = (l * 2654435761ULL) % region;
        loc.baseRow = 8 + slot * span;

        HammerOutcome out = session.hammer(pattern, loc, cfg);
        res.totalFlips += out.flips;
        res.flipsPerLocation.push_back(out.flips);
        res.cumulativeTimeNs.push_back(sys.now() - t0);
        for (const auto &f : out.flipList)
            res.flipList.push_back(f);
    }
    res.simTimeNs = sys.now() - t0;
    return res;
}

} // namespace rho
