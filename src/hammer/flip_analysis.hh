/**
 * @file
 * Flip-set analysis utilities: the post-processing real tooling
 * (Blacksmith and successors) performs on templated flips — direction
 * ratios, spatial distributions, PTE-exploitability classification,
 * and per-row clustering.
 */

#ifndef RHO_HAMMER_FLIP_ANALYSIS_HH
#define RHO_HAMMER_FLIP_ANALYSIS_HH

#include <map>
#include <string>
#include <vector>

#include "dram/dimm.hh"

namespace rho
{

/** Aggregate statistics over a set of flips. */
struct FlipStats
{
    std::uint64_t total = 0;
    std::uint64_t toOne = 0;        //!< 0 -> 1 flips (anti cells)
    std::uint64_t toZero = 0;       //!< 1 -> 0 flips (true cells)
    std::uint64_t uniqueRows = 0;
    std::uint64_t uniqueBanks = 0;
    std::uint64_t maxPerRow = 0;    //!< worst clustered row
    /** Flips landing in frame bits [12,19] of an aligned 64-bit
     *  word — the PTE-exploitable subset (paper section 5.3). */
    std::uint64_t pteExploitable = 0;
    /** Per-bit-in-qword histogram (64 buckets). */
    std::vector<std::uint64_t> bitInQword;

    double toOneRatio() const
    {
        return total ? double(toOne) / total : 0.0;
    }
    double
    exploitableRatio() const
    {
        return total ? double(pteExploitable) / total : 0.0;
    }

    /** Multi-line human-readable summary. */
    std::string describe() const;
};

/** Compute statistics over a flip list. */
FlipStats analyzeFlips(const std::vector<FlipRecord> &flips);

/** Rows carrying at least min_flips flips, with their counts. */
std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t>
flipsByRow(const std::vector<FlipRecord> &flips);

} // namespace rho

#endif // RHO_HAMMER_FLIP_ANALYSIS_HH
