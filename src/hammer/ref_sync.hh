/**
 * @file
 * ZenHammer-style REF synchronization: on platforms whose memory
 * controller exposes REF blocking (DramTiming::refBlocking — AMD Zen,
 * LPDDR4 boards), an access that lands inside the tRFC refresh window
 * stalls until the window ends. Those periodic latency spikes leak the
 * refresh cadence; a synchronized hammer aligns its burst to start
 * right after a REF so the full tREFI interval is spike-free and the
 * in-flight aggressor train is never split by a refresh (which would
 * hand TRR a free sampling opportunity mid-pattern).
 *
 * The detector issues a train of same-bank row-conflict accesses,
 * flags spikes by a median + k*MAD gate, and estimates the period and
 * phase from the spike timestamps. Everything is driven by the
 * simulated clock only, so detection is deterministic for a given
 * MemorySystem state regardless of host threading (--jobs).
 */

#ifndef RHO_HAMMER_REF_SYNC_HH
#define RHO_HAMMER_REF_SYNC_HH

#include <cstdint>

#include "common/types.hh"

namespace rho
{

class MemorySystem;

/** Result of one REF-cadence detection train. */
struct RefSyncEstimate
{
    bool detected = false;
    Ns period = 0.0;       //!< estimated tREFI
    Ns lastBoundary = 0.0; //!< sim time of the last observed spike
    Ns blockNs = 0.0;      //!< largest observed blocking excess (~tRFC)
    unsigned spikes = 0;   //!< spikes the train observed

    /** First spike-free burst start strictly after `now`. */
    Ns nextSafeStart(Ns now) const;
};

/**
 * Detect the REF cadence of a MemorySystem by timing a row-conflict
 * access train. On platforms without REF blocking the train sees no
 * spikes and the estimate comes back undetected (callers fall through
 * to unsynchronized hammering).
 */
class RefSyncDetector
{
  public:
    explicit RefSyncDetector(MemorySystem &sys) : sys(sys) {}

    /**
     * Run the detection train.
     * @param probes number of timed accesses; the default covers
     *        several tREFI at typical row-conflict latencies.
     */
    RefSyncEstimate detect(unsigned probes = 768);

    /**
     * Advance the system clock to the next spike-free window start
     * (boundary + observed block time + a small guard). No-op when the
     * estimate is undetected.
     */
    static void align(MemorySystem &sys, const RefSyncEstimate &est);

  private:
    MemorySystem &sys;
};

} // namespace rho

#endif // RHO_HAMMER_REF_SYNC_HH
