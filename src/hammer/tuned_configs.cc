#include "hammer/tuned_configs.hh"

#include "common/logging.hh"

namespace rho
{

unsigned
tunedNopCount(Arch arch)
{
    switch (arch) {
      case Arch::CometLake: return 450;
      case Arch::RocketLake: return 500;
      case Arch::AlderLake: return 800;
      case Arch::RaptorLake: return 800;
      // Zen 3 prefetches retire quickly; a Comet-class pause suffices.
      case Arch::Zen3: return 500;
      // Cortex-A72 runs at 1.8 GHz: fewer nops cover the same ns.
      case Arch::CortexA72: return 200;
    }
    panic("tunedNopCount: bad arch");
}

unsigned
tunedBankCount(Arch arch)
{
    switch (arch) {
      case Arch::CometLake: return 3;
      case Arch::RocketLake: return 3;
      case Arch::AlderLake: return 2;
      case Arch::RaptorLake: return 2;
      case Arch::Zen3: return 3;
      // The A72's shallow load queue saturates past two banks.
      case Arch::CortexA72: return 2;
    }
    panic("tunedBankCount: bad arch");
}

HammerConfig
rhoConfig(Arch arch, bool multibank, std::uint64_t access_budget)
{
    HammerConfig cfg;
    cfg.instr = HammerInstr::PrefetchNta;
    cfg.mode = AddressingMode::CppIndexed;
    cfg.numBanks = multibank ? tunedBankCount(arch) : 1;
    cfg.obfuscate = true;
    cfg.barrier = BarrierKind::Nop;
    cfg.nopCount = tunedNopCount(arch);
    cfg.accessBudget = access_budget;
    return cfg;
}

HammerConfig
baselineConfig(Arch arch, bool multibank, std::uint64_t access_budget)
{
    HammerConfig cfg;
    cfg.instr = HammerInstr::Load;
    cfg.mode = AddressingMode::CppIndexed;
    cfg.numBanks = multibank ? tunedBankCount(arch) : 1;
    cfg.obfuscate = false;
    cfg.barrier = BarrierKind::None;
    cfg.accessBudget = access_budget;
    return cfg;
}

} // namespace rho
