/**
 * @file
 * The fuzzing operation (paper section 4.1): generate pseudo-random
 * non-uniform patterns, trial each at a few physical locations, and
 * track total/best bit flips — the metric reported in Table 6 and
 * Fig. 9.
 */

#ifndef RHO_HAMMER_PATTERN_FUZZER_HH
#define RHO_HAMMER_PATTERN_FUZZER_HH

#include <optional>

#include "hammer/hammer_session.hh"

namespace rho
{

/** Fuzzing campaign sizing. */
struct FuzzParams
{
    unsigned numPatterns = 40;
    unsigned locationsPerPattern = 3;
    PatternParams patternParams;
};

/** Campaign outcome (Table 6 reports totalFlips, bestPatternFlips). */
struct FuzzResult
{
    std::uint64_t totalFlips = 0;      //!< across all effective patterns
    std::uint64_t bestPatternFlips = 0;
    std::optional<HammerPattern> bestPattern;
    unsigned effectivePatterns = 0;    //!< patterns with >=1 flip
    Ns simTimeNs = 0.0;
    std::uint64_t dramAccesses = 0;
};

/** Drives fuzzing campaigns over a HammerSession. */
class PatternFuzzer
{
  public:
    PatternFuzzer(HammerSession &session, std::uint64_t seed);

    FuzzResult run(const HammerConfig &cfg, const FuzzParams &params);

  private:
    HammerSession &session;
    Rng rng;
};

} // namespace rho

#endif // RHO_HAMMER_PATTERN_FUZZER_HH
