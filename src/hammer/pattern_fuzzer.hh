/**
 * @file
 * The fuzzing operation (paper section 4.1): generate pseudo-random
 * non-uniform patterns, trial each at a few physical locations, and
 * track total/best bit flips — the metric reported in Table 6 and
 * Fig. 9.
 *
 * Two drivers are provided:
 *  - PatternFuzzer::run(): the single-session serial path (device
 *    state carries over between patterns);
 *  - fuzzCampaign(): the parallel campaign engine. Every pattern
 *    trial is an independent task with its own MemorySystem and
 *    HammerSession seeded hashCombine(seed, task_index); results
 *    merge in task order, so totalFlips / bestPatternFlips and the
 *    best-pattern choice are bit-identical for any `jobs` count.
 */

#ifndef RHO_HAMMER_PATTERN_FUZZER_HH
#define RHO_HAMMER_PATTERN_FUZZER_HH

#include <optional>
#include <string>
#include <vector>

#include "common/checkpoint.hh"
#include "common/stats.hh"
#include "hammer/hammer_session.hh"
#include "trace/metrics.hh"

namespace rho
{

/** Journal kind tag for fuzzCampaign() checkpoints. */
inline constexpr const char *FuzzJournalKind = "fuzz4";

/** Fuzzing campaign sizing. */
struct FuzzParams
{
    unsigned numPatterns = 40;
    unsigned locationsPerPattern = 3;
    unsigned jobs = 0; //!< fuzzCampaign() workers; 0 = hw concurrency
    PatternParams patternParams;

    /**
     * Synchronize every hammer run with the refresh window
     * (HammerConfig::refSync): each trial detects the REF period via
     * the latency side channel and starts just after a boundary. Only
     * effective on refBlocking platforms (Zen, LPDDR4) — elsewhere the
     * detector finds no spikes and the trial proceeds unaligned.
     */
    bool refSync = false;

    /**
     * When non-empty, completed pattern trials are journaled here and
     * a killed campaign resumes from its last completed task on the
     * next run with the same parameters — merged output stays
     * bit-identical to an uninterrupted run for any `jobs` value.
     * Patterns are not stored: task i's pattern regenerates from
     * Rng(hashCombine(seed, i)) exactly as the live path builds it.
     */
    std::string checkpointPath;

    /** Durability/fault options for the checkpoint journal. */
    JournalOptions journal{};

    /**
     * Service sharding: when non-null, only tasks with mask[i] != 0
     * execute and merge (see SweepParams::taskMask — same contract,
     * same key-sharing rules).
     */
    const std::vector<std::uint8_t> *taskMask = nullptr;
};

/** Campaign outcome (Table 6 reports totalFlips, bestPatternFlips). */
struct FuzzResult
{
    std::uint64_t totalFlips = 0;      //!< across all effective patterns
    std::uint64_t bestPatternFlips = 0;
    std::optional<HammerPattern> bestPattern;
    unsigned effectivePatterns = 0;    //!< patterns with >=1 flip
    unsigned unplaceablePatterns = 0;  //!< footprint exceeded the bank
    Ns simTimeNs = 0.0;
    std::uint64_t dramAccesses = 0;

    /**
     * InvalidPatternParams when the campaign was rejected before any
     * trial ran (degenerate PatternParams ranges), PatternUnplaceable
     * when every trialled pattern was too wide for the bank; None
     * otherwise. failureReason carries the human-readable detail.
     */
    FailureCode failure = FailureCode::None;
    std::string failureReason;

    bool ok() const { return failure == FailureCode::None; }
};

/** Drives serial fuzzing campaigns over one shared HammerSession. */
class PatternFuzzer
{
  public:
    PatternFuzzer(HammerSession &session, std::uint64_t seed);

    FuzzResult run(const HammerConfig &cfg, const FuzzParams &params);

  private:
    HammerSession &session;
    Rng rng;
};

/**
 * Parallel fuzzing campaign: one independent task per pattern, fanned
 * out over `params.jobs` workers. Pattern i is generated from
 * Rng(hashCombine(seed, i)) and trialled on a fresh system, so the
 * outcome is a pure function of (spec, cfg, params, seed) no matter
 * how many threads run it.
 *
 * @param stats optional per-campaign scheduling/timing counters.
 * @param metrics optional unified counters (see sweepCampaign);
 *        totals are identical for any `jobs` value.
 * @param trace optional merged event stream; filled only when
 *        spec.trace.enabled (see sweepCampaign for semantics).
 */
FuzzResult fuzzCampaign(const SystemSpec &spec, const HammerConfig &cfg,
                        const FuzzParams &params, std::uint64_t seed,
                        ParallelStats *stats = nullptr,
                        MetricsRegistry *metrics = nullptr,
                        std::vector<TraceEvent> *trace = nullptr);

/**
 * The exact journal key fuzzCampaign() opens its checkpoint with
 * (campaignKey plus the fuzz-specific fields). The service layer uses
 * it to read shard journals and build the merged journal.
 */
std::uint64_t fuzzJournalKey(const SystemSpec &spec,
                             const HammerConfig &cfg,
                             const FuzzParams &params, std::uint64_t seed);

} // namespace rho

#endif // RHO_HAMMER_PATTERN_FUZZER_HH
