/**
 * @file
 * Non-uniform hammering patterns in the frequency domain
 * (Blacksmith-style, paper section 4.1).
 *
 * A pattern is a base period of slots; each slot hammers one
 * double-sided aggressor pair. Pairs carry different frequencies,
 * phases and amplitudes, so some act as true aggressors and others as
 * decoys that churn the TRR sampler. Patterns encode only *relative*
 * row offsets; they are instantiated at a concrete (bank, base row)
 * location when executed.
 *
 * Patterns built from a *genome* carry one PairGene per pair — the
 * (frequency, phase, amplitude, row offset) tuple is first-class
 * state, so the evolutionary fuzzer (hammer/evo_fuzzer) can mutate and
 * recombine patterns instead of sampling blindly. Genome pairs may sit
 * at arbitrary row offsets, not just the uniform `pair * stride`
 * layout of the legacy sampler; overlapping pairs are legal and act as
 * Blacksmith-style aggressor reuse.
 */

#ifndef RHO_HAMMER_PATTERN_HH
#define RHO_HAMMER_PATTERN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/failure.hh"
#include "common/rng.hh"

namespace rho
{

/** Generation knobs for the fuzzer. */
struct PatternParams
{
    unsigned minPairs = 4;
    unsigned maxPairs = 14;
    unsigned minPeriodLog2 = 5; //!< 32 slots
    unsigned maxPeriodLog2 = 7; //!< 128 slots
    unsigned maxFreqLog2 = 3;   //!< up to 8 appearances per period
    unsigned maxAmpLog2 = 2;    //!< up to 4 consecutive repeats
    unsigned maxRowSpread = 56; //!< largest genome pair row offset
};

/**
 * Human-readable rejection reason for a degenerate PatternParams, or
 * "" when the parameters are usable. Inverted ranges (minPairs >
 * maxPairs, minPeriodLog2 > maxPeriodLog2) would feed Rng::uniformInt
 * a lo > hi range — undefined behaviour in the underlying
 * distribution — and maxFreqLog2 >= minPeriodLog2 permits frequencies
 * above the period. Fuzzer entry points reject such params with
 * FailureCode::InvalidPatternParams instead of sampling from them.
 */
std::string patternParamsError(const PatternParams &params);

/** True when patternParamsError(params) is empty. */
inline bool
patternParamsOk(const PatternParams &params)
{
    return patternParamsError(params).empty();
}

/**
 * One pair's frequency-domain gene: how often the pair appears per
 * period (2^freqLog2, clamped to the period at materialization), how
 * many consecutive slots each appearance occupies (2^ampLog2), the
 * slot phase of the first appearance, and the row offset of the
 * pair's first aggressor relative to the instantiation base row (the
 * second aggressor sits at +2, the sandwiched victim at +1).
 */
struct PairGene
{
    unsigned freqLog2 = 0;
    unsigned ampLog2 = 0;
    unsigned phase = 0;
    unsigned rowOffset = 0;

    bool
    operator==(const PairGene &o) const
    {
        return freqLog2 == o.freqLog2 && ampLog2 == o.ampLog2
            && phase == o.phase && rowOffset == o.rowOffset;
    }
};

/** A frequency-domain aggressor schedule. */
class HammerPattern
{
  public:
    /** Pseudo-random non-uniform pattern (the blind sampler). */
    static HammerPattern randomNonUniform(
        Rng &rng, const PatternParams &params = PatternParams{});

    /**
     * Random genome-backed pattern (the evolutionary fuzzer's seed
     * generator): like randomNonUniform but with per-pair random row
     * offsets in [0, maxRowSpread] and frequencies clamped to the
     * period at draw time.
     */
    static HammerPattern randomGenome(
        Rng &rng, const PatternParams &params = PatternParams{});

    /**
     * Materialize a pattern from an explicit genome. Phases are
     * reduced mod the period and frequencies clamped to it; slots not
     * claimed by any gene are filled deterministically from `id` so
     * equal (id, period, genome) triples materialize bit-identically.
     */
    static HammerPattern fromGenome(std::uint64_t id,
                                    unsigned period_slots,
                                    std::vector<PairGene> genome);

    /** Classic uniform double-sided hammering (TRR catches this). */
    static HammerPattern doubleSided(unsigned period_slots = 64);

    /**
     * A genome-preserving point mutation: tweak one gene field, add or
     * drop a pair, or resize the period — all within `params` bounds.
     * Deterministic for a given rng state; the child gets a fresh
     * pattern id drawn from `rng`.
     */
    HammerPattern mutate(Rng &rng, const PatternParams &params) const;

    /**
     * Uniform crossover of two genomes: the child takes its period
     * from one parent and each gene from either parent (genes past the
     * shorter genome come from the longer one). Pair count stays
     * within [min(nA, nB), max(nA, nB)], which both parents keep
     * inside [minPairs, maxPairs].
     */
    static HammerPattern crossover(Rng &rng, const HammerPattern &a,
                                   const HammerPattern &b,
                                   const PatternParams &params);

    /** Slot sequence: pair index hammered at each slot. */
    const std::vector<unsigned> &slots() const { return slotSeq; }

    unsigned numPairs() const { return nPairs; }

    /** Per-pair genes; empty for doubleSided() legacy patterns. */
    const std::vector<PairGene> &genome() const { return genes; }

    bool hasGenome() const { return !genes.empty(); }

    /**
     * Order-sensitive hash of (period, genome). Two patterns with
     * equal fingerprints materialize identical schedules for equal
     * ids; the evolutionary fuzzer journals population digests built
     * from this.
     */
    std::uint64_t genomeFingerprint() const;

    /**
     * Row offset (relative to the location base row) of the first
     * aggressor of a pair; the second aggressor sits at +2 and the
     * main victim at +1.
     */
    unsigned
    pairRowOffset(unsigned pair) const
    {
        if (pair < genes.size())
            return genes[pair].rowOffset;
        return pair * pairStride;
    }

    /** Rows per pair footprint (aggressors + guard). */
    unsigned stride() const { return pairStride; }

    /** Total footprint of the pattern in rows. */
    unsigned
    footprintRows() const
    {
        if (legacySpan || genes.empty())
            return nPairs * pairStride + 3;
        unsigned max_off = 0;
        for (const PairGene &g : genes)
            max_off = max_off < g.rowOffset ? g.rowOffset : max_off;
        return max_off + 3;
    }

    std::uint64_t id() const { return patternId; }
    std::string describe() const;

  private:
    std::vector<unsigned> slotSeq;
    std::vector<PairGene> genes;
    unsigned nPairs = 0;
    unsigned pairStride = 4;
    /**
     * Legacy samplers lay pairs out at uniform stride and quote the
     * footprint as nPairs * stride + 3; genome patterns quote the
     * tight max-offset footprint. The flag keeps the legacy quote (and
     * with it every pre-genome location schedule) bit-stable.
     */
    bool legacySpan = true;
    std::uint64_t patternId = 0;
};

} // namespace rho

#endif // RHO_HAMMER_PATTERN_HH
