/**
 * @file
 * Non-uniform hammering patterns in the frequency domain
 * (Blacksmith-style, paper section 4.1).
 *
 * A pattern is a base period of slots; each slot hammers one
 * double-sided aggressor pair. Pairs carry different frequencies,
 * phases and amplitudes, so some act as true aggressors and others as
 * decoys that churn the TRR sampler. Patterns encode only *relative*
 * row offsets; they are instantiated at a concrete (bank, base row)
 * location when executed.
 */

#ifndef RHO_HAMMER_PATTERN_HH
#define RHO_HAMMER_PATTERN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace rho
{

/** Generation knobs for the fuzzer. */
struct PatternParams
{
    unsigned minPairs = 4;
    unsigned maxPairs = 14;
    unsigned minPeriodLog2 = 5; //!< 32 slots
    unsigned maxPeriodLog2 = 7; //!< 128 slots
    unsigned maxFreqLog2 = 3;   //!< up to 8 appearances per period
    unsigned maxAmpLog2 = 2;    //!< up to 4 consecutive repeats
};

/** A frequency-domain aggressor schedule. */
class HammerPattern
{
  public:
    /** Pseudo-random non-uniform pattern (the fuzzer's generator). */
    static HammerPattern randomNonUniform(
        Rng &rng, const PatternParams &params = PatternParams{});

    /** Classic uniform double-sided hammering (TRR catches this). */
    static HammerPattern doubleSided(unsigned period_slots = 64);

    /** Slot sequence: pair index hammered at each slot. */
    const std::vector<unsigned> &slots() const { return slotSeq; }

    unsigned numPairs() const { return nPairs; }

    /**
     * Row offset (relative to the location base row) of the first
     * aggressor of a pair; the second aggressor sits at +2 and the
     * main victim at +1.
     */
    unsigned
    pairRowOffset(unsigned pair) const
    {
        return pair * pairStride;
    }

    /** Rows per pair footprint (aggressors + guard). */
    unsigned stride() const { return pairStride; }

    /** Total footprint of the pattern in rows. */
    unsigned
    footprintRows() const
    {
        return nPairs * pairStride + 3;
    }

    std::uint64_t id() const { return patternId; }
    std::string describe() const;

  private:
    std::vector<unsigned> slotSeq;
    unsigned nPairs = 0;
    unsigned pairStride = 4;
    std::uint64_t patternId = 0;
};

} // namespace rho

#endif // RHO_HAMMER_PATTERN_HH
