/**
 * @file
 * Mitigation-bypass search (paper section 6): drive the non-uniform
 * pattern fuzzer against a frontier of mitigation configurations —
 * DDR4-style TRR alone, DDR5 RFM at several strictness levels, and
 * PRAC/ABO at several thresholds — hunting for patterns that still
 * produce flips.
 *
 * The search reuses the parallel campaign engine unchanged: each
 * configuration is one fuzzCampaign() whose outcome is a pure function
 * of (spec, cfg, params, seed), so the whole search is bit-identical
 * for any --jobs value and survives kill/resume via per-configuration
 * checkpoint journals.
 */

#ifndef RHO_HAMMER_BYPASS_SEARCH_HH
#define RHO_HAMMER_BYPASS_SEARCH_HH

#include <string>
#include <vector>

#include "hammer/evo_fuzzer.hh"
#include "hammer/pattern_fuzzer.hh"
#include "memsys/memory_system.hh"

namespace rho
{

/** One point on the mitigation frontier. */
struct MitigationConfig
{
    std::string name;  //!< stable identifier ("trr-only", "rfm-strict")
    TrrConfig trr{};   //!< in-DRAM sampler settings
    RfmConfig rfm{};   //!< refresh-management settings
    PracConfig prac{}; //!< per-row activation counting settings
};

/**
 * The standard frontier evaluated by the section 6 bench: TRR alone
 * (the DDR4 baseline the paper's patterns evade), RFM at each level,
 * PRAC at a production threshold and a deliberately weak one, and the
 * combined RFM+PRAC endpoint. TRR stays enabled in every DDR5 config —
 * RFM and PRAC are additions to the sampler, not replacements.
 */
std::vector<MitigationConfig> mitigationFrontier();

/** Which pattern-search engine drives the per-config campaign. */
enum class BypassEngine : std::uint8_t
{
    Blind,   //!< pattern_fuzzer: independent random patterns
    Evolved, //!< evo_fuzzer: feedback-driven generational search
};

/** Short display name ("blind", "evolved"). */
const char *bypassEngineName(BypassEngine engine);

/** Outcome of fuzzing one mitigation configuration. */
struct BypassConfigResult
{
    std::string name;                 //!< MitigationConfig::name
    FuzzResult fuzz;                  //!< merged campaign outcome
    std::uint64_t acts = 0;           //!< device ACT total
    std::uint64_t trrRefreshes = 0;   //!< targeted refreshes issued
    std::uint64_t rfmCommands = 0;    //!< RFM commands fired
    std::uint64_t pracAlerts = 0;     //!< ALERT_n assertions
    double flipsPerMinute = 0.0;      //!< flips over simulated minutes
    bool bypassed = false;            //!< some pattern produced a flip
    std::uint64_t trialsRun = 0;      //!< pattern evaluations merged

    /** Evolved engine only: the per-generation learning curve
     *  (EvoResult::bestFlipsPerGeneration); empty for Blind. */
    std::vector<std::uint64_t> generationBestFlips;
};

/** Sizing of one bypass search. */
struct BypassParams
{
    FuzzParams fuzz; //!< per-config campaign sizing (checkpointPath is
                     //!< treated as a base name; each configuration
                     //!< journals to "<base>.<config-name>")

    /**
     * Evolved-engine sizing (used when engine == Evolved). Its
     * checkpointPath/journal/jobs/refSync/patternParams are taken from
     * here, not from `fuzz` — the two engines journal under different
     * kinds and must not share files.
     */
    EvoParams evo;

    BypassEngine engine = BypassEngine::Blind;
    std::uint64_t seed = 1;
};

/** Full search outcome, one entry per frontier point, input order. */
struct BypassReport
{
    std::vector<BypassConfigResult> configs;

    /**
     * First per-config campaign failure (invalid params, all patterns
     * unplaceable); None when every campaign ran. Individual configs
     * carry their own code in configs[i].fuzz.failure.
     */
    FailureCode failure = FailureCode::None;
    std::string failureReason;

    bool ok() const { return failure == FailureCode::None; }

    /** Configs where at least one fuzzed pattern flipped a bit. */
    unsigned
    bypassedCount() const
    {
        unsigned n = 0;
        for (const auto &c : configs)
            n += c.bypassed ? 1 : 0;
        return n;
    }
};

/**
 * Run the fuzzer against each mitigation configuration on one
 * machine. Deterministic: every configuration's campaign derives its
 * task seeds from hashCombine(params.seed, task_index) on a fresh
 * system, so the report is bit-identical for any fuzz.jobs value and
 * across checkpoint/resume.
 *
 * @param metrics optional; per-config counters are recorded under
 *        "bypass.<config-name>." prefixes plus the unified totals.
 */
BypassReport bypassSearch(Arch arch, const DimmProfile &dimm,
                          const HammerConfig &cfg,
                          const std::vector<MitigationConfig> &frontier,
                          const BypassParams &params,
                          MetricsRegistry *metrics = nullptr);

/**
 * Render the bypass-boundary table comparing the blind sampler and the
 * evolved search over the same frontier at equal trial budgets: per
 * config, each engine's total/best flips, the evolved learning curve,
 * the defense's visible reaction (RFM commands, ALERT_n assertions —
 * from the evolved run), and a verdict:
 *
 *   open      — both engines flip bits (the defense is below the
 *               boundary for any search strategy)
 *   evo-only  — only the evolved search flips bits (the boundary
 *               sits between blind and feedback-driven search)
 *   blind-only— only the blind sampler flips bits (rare; sampling
 *               luck at small budgets)
 *   sealed    — neither engine flips a bit
 *
 * `blind` and `evolved` must cover the same configs in the same
 * order. The string is deterministic (golden-testable).
 */
std::string renderBypassBoundary(const BypassReport &blind,
                                 const BypassReport &evolved);

} // namespace rho

#endif // RHO_HAMMER_BYPASS_SEARCH_HH
