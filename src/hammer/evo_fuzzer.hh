/**
 * @file
 * Evolutionary pattern search: a feedback-driven alternative to the
 * blind sampler in pattern_fuzzer. Generations of genome-backed
 * patterns (hammer/pattern PairGene) are evaluated on the device
 * model, then bred — elitism keeps the strongest genomes verbatim,
 * tournament selection picks parents, and uniform crossover plus
 * point mutation produce the next generation. Fitness feeds on the
 * observed device response: bit flips first, then TRR sampler churn
 * (targeted refreshes the pattern provoked — a pattern the sampler
 * chases is learning the sampler's blind spots), then raw activations.
 *
 * Determinism contract (same as every campaign engine in src/hammer):
 * all genetics (seeding, selection, breeding) run serially on a master
 * Rng derived from the campaign seed, and every evaluation task
 * derives its randomness from hashCombine(seed, trial_index) with
 * trial_index = generation * populationSize + individual. Results
 * merge in trial order, so the search is bit-identical for any
 * `jobs` value.
 *
 * Resume contract: each evaluated trial is journaled exactly like a
 * fuzz task, and each generation's population digest is journaled as
 * a `meta` record. On resume the digest is recomputed from the replayed
 * genetics and must match the journaled one before any of that
 * generation's trial records are trusted — a mismatch (journal from a
 * diverged trajectory) falls back to live evaluation from that
 * generation on.
 */

#ifndef RHO_HAMMER_EVO_FUZZER_HH
#define RHO_HAMMER_EVO_FUZZER_HH

#include <optional>
#include <string>
#include <vector>

#include "common/checkpoint.hh"
#include "common/stats.hh"
#include "hammer/hammer_session.hh"
#include "hammer/pattern_fuzzer.hh"
#include "trace/metrics.hh"

namespace rho
{

/** Journal kind tag for evolvedFuzzCampaign() checkpoints. */
inline constexpr const char *EvoJournalKind = "evofuzz1";

/** Evolutionary search sizing and genetics knobs. */
struct EvoParams
{
    unsigned populationSize = 10;
    unsigned generations = 4;
    unsigned elites = 2;        //!< copied unchanged into the next gen
    unsigned tournamentSize = 3;
    double crossoverProb = 0.6; //!< child from two parents vs one
    double immigrantProb = 0.15; //!< fresh random genome per child slot

    unsigned locationsPerPattern = 3;
    unsigned jobs = 0; //!< evaluation workers; 0 = hw concurrency
    bool refSync = false; //!< REF-window alignment per trial
    PatternParams patternParams;

    /**
     * When non-empty, trial outcomes and generation digests journal
     * here; a killed search resumes bit-identically (see file
     * comment). Same path conventions as FuzzParams::checkpointPath.
     */
    std::string checkpointPath;
    JournalOptions journal{};

    /** Trials this search will run (the blind-sampler equivalent of
     *  FuzzParams::numPatterns, for equal-budget comparisons). */
    unsigned trialBudget() const { return populationSize * generations; }
};

/** Merged outcome of an evolutionary search. */
struct EvoResult
{
    std::uint64_t totalFlips = 0;   //!< across all effective trials
    std::uint64_t bestPatternFlips = 0;
    std::optional<HammerPattern> bestPattern;
    unsigned effectivePatterns = 0; //!< trials with >= 1 flip
    unsigned unplaceablePatterns = 0;
    std::uint64_t trialsRun = 0;    //!< evaluations merged (all gens)

    /** Best per-trial flip count seen up to and including each
     *  generation — the search's learning curve. */
    std::vector<std::uint64_t> bestFlipsPerGeneration;

    Ns simTimeNs = 0.0;
    std::uint64_t dramAccesses = 0;

    FailureCode failure = FailureCode::None;
    std::string failureReason;

    bool ok() const { return failure == FailureCode::None; }
};

/**
 * Rejection reason for degenerate EvoParams ("" when usable): checks
 * patternParamsError plus the genetics knobs (population/generation
 * counts, elite count below the population, tournament size,
 * probabilities in [0, 1]).
 */
std::string evoParamsError(const EvoParams &params);

/**
 * Run the evolutionary search against one system configuration.
 * Deterministic for (spec, cfg, params, seed) — any jobs value, any
 * kill/resume point (see file comment).
 *
 * @param stats optional scheduling counters, accumulated across
 *        generations.
 * @param metrics optional unified counters (same keys as
 *        fuzzCampaign, plus "campaign.generations").
 */
EvoResult evolvedFuzzCampaign(const SystemSpec &spec,
                              const HammerConfig &cfg,
                              const EvoParams &params, std::uint64_t seed,
                              ParallelStats *stats = nullptr,
                              MetricsRegistry *metrics = nullptr);

/** The journal key evolvedFuzzCampaign() opens its checkpoint with. */
std::uint64_t evoJournalKey(const SystemSpec &spec,
                            const HammerConfig &cfg,
                            const EvoParams &params, std::uint64_t seed);

} // namespace rho

#endif // RHO_HAMMER_EVO_FUZZER_HH
