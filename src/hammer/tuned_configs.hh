/**
 * @file
 * Canonical attack configurations per platform.
 *
 * rhoHammer's tuning phase (section 4.4) sweeps the NOP pseudo-barrier
 * size and the bank count per platform; these helpers return the
 * tuned results for the four evaluated machines so experiments and
 * examples don't repeat the sweep. The baseline configurations mirror
 * the original Blacksmith/ZenHammer load-based hammering.
 */

#ifndef RHO_HAMMER_TUNED_CONFIGS_HH
#define RHO_HAMMER_TUNED_CONFIGS_HH

#include "hammer/hammer_session.hh"

namespace rho
{

/** Platform-optimal NOP pseudo-barrier size (tuning-phase output). */
unsigned tunedNopCount(Arch arch);

/** Platform-optimal multi-bank replication factor. */
unsigned tunedBankCount(Arch arch);

/**
 * Full rhoHammer configuration: prefetch-based hammering with
 * control-flow obfuscation and tuned NOP pseudo-barriers.
 *
 * @param multibank single-bank (rho-S) vs optimal multi-bank (rho-M).
 */
HammerConfig rhoConfig(Arch arch, bool multibank,
                       std::uint64_t access_budget = 400000);

/**
 * Load-based baseline (Blacksmith-style, no barriers).
 *
 * @param multibank single-bank (BL-S) vs multi-bank (BL-M).
 */
HammerConfig baselineConfig(Arch arch, bool multibank,
                            std::uint64_t access_budget = 400000);

} // namespace rho

#endif // RHO_HAMMER_TUNED_CONFIGS_HH
