#include "hammer/pattern_fuzzer.hh"

namespace rho
{

PatternFuzzer::PatternFuzzer(HammerSession &session_, std::uint64_t seed)
    : session(session_), rng(seed)
{
}

FuzzResult
PatternFuzzer::run(const HammerConfig &cfg, const FuzzParams &params)
{
    FuzzResult res;
    Ns t0 = session.system().now();

    for (unsigned i = 0; i < params.numPatterns; ++i) {
        HammerPattern pattern =
            HammerPattern::randomNonUniform(rng, params.patternParams);
        std::uint64_t pattern_flips = 0;
        for (unsigned l = 0; l < params.locationsPerPattern; ++l) {
            HammerLocation loc = session.randomLocation(pattern, cfg);
            HammerOutcome out = session.hammer(pattern, loc, cfg);
            pattern_flips += out.flips;
            res.dramAccesses += out.perf.dramAccesses;
        }
        if (pattern_flips > 0) {
            ++res.effectivePatterns;
            res.totalFlips += pattern_flips;
        }
        if (pattern_flips > res.bestPatternFlips) {
            res.bestPatternFlips = pattern_flips;
            res.bestPattern = pattern;
        }
    }
    res.simTimeNs = session.system().now() - t0;
    return res;
}

} // namespace rho
