#include "hammer/pattern_fuzzer.hh"

#include <atomic>
#include <memory>
#include <sstream>

#include "common/checkpoint.hh"
#include "common/parallel.hh"
#include "hammer/sweep.hh"

namespace rho
{

PatternFuzzer::PatternFuzzer(HammerSession &session_, std::uint64_t seed)
    : session(session_), rng(seed)
{
}

FuzzResult
PatternFuzzer::run(const HammerConfig &cfg, const FuzzParams &params)
{
    FuzzResult res;
    if (std::string err = patternParamsError(params.patternParams);
        !err.empty()) {
        res.failure = FailureCode::InvalidPatternParams;
        res.failureReason = err;
        return res;
    }
    HammerConfig run_cfg = cfg;
    if (params.refSync)
        run_cfg.refSync = true;
    Ns t0 = session.system().now();

    for (unsigned i = 0; i < params.numPatterns; ++i) {
        HammerPattern pattern =
            HammerPattern::randomNonUniform(rng, params.patternParams);
        LocationPick first = session.tryRandomLocation(pattern, run_cfg);
        if (!first.ok()) {
            ++res.unplaceablePatterns;
            continue;
        }
        std::uint64_t pattern_flips = 0;
        for (unsigned l = 0; l < params.locationsPerPattern; ++l) {
            HammerLocation loc =
                l == 0 ? *first.loc
                       : session.randomLocation(pattern, run_cfg);
            HammerOutcome out = session.hammer(pattern, loc, run_cfg);
            pattern_flips += out.flips;
            res.dramAccesses += out.perf.dramAccesses;
        }
        if (pattern_flips > 0) {
            ++res.effectivePatterns;
            res.totalFlips += pattern_flips;
        }
        if (pattern_flips > res.bestPatternFlips) {
            res.bestPatternFlips = pattern_flips;
            res.bestPattern = pattern;
        }
    }
    res.simTimeNs = session.system().now() - t0;
    if (params.numPatterns > 0 &&
        res.unplaceablePatterns == params.numPatterns) {
        res.failure = FailureCode::PatternUnplaceable;
        res.failureReason =
            "every pattern footprint exceeded the bank's row space";
    }
    return res;
}

namespace
{

/** What one pattern-trial task reports back for the ordered merge. */
struct FuzzTaskResult
{
    HammerPattern pattern;
    std::uint64_t flips = 0;
    std::uint64_t dramAccesses = 0;
    unsigned unplaceable = 0; //!< 1 when the pattern did not fit
    Ns simTimeNs = 0.0;
    // Device totals for the unified metrics (journaled).
    std::uint64_t acts = 0;
    std::uint64_t trrRefreshes = 0;
    std::uint64_t rfmCommands = 0;
    std::uint64_t pracAlerts = 0;
    // Per-task trace; never journaled (tracing bypasses restores).
    std::vector<TraceEvent> events;
};

/**
 * Journal payload: the numeric outcome only. The pattern itself is a
 * pure function of the task seed and is regenerated on replay. The
 * kind is "fuzz4" — earlier formats ("fuzz" .. "fuzz3" without the
 * placement flag) are discarded via the kind mismatch.
 */
std::string
serializeFuzzTask(const FuzzTaskResult &r)
{
    std::ostringstream out;
    out << r.flips << " " << r.dramAccesses << " "
        << encodeDouble(r.simTimeNs) << " " << r.acts << " "
        << r.trrRefreshes << " " << r.rfmCommands << " " << r.pracAlerts
        << " " << r.unplaceable;
    return out.str();
}

bool
parseFuzzTask(const std::string &payload, FuzzTaskResult &r)
{
    std::istringstream in(payload);
    std::string sim_hex;
    if (!(in >> r.flips >> r.dramAccesses >> sim_hex >> r.acts
          >> r.trrRefreshes >> r.rfmCommands >> r.pracAlerts
          >> r.unplaceable))
        return false;
    auto sim = decodeDouble(sim_hex);
    if (!sim)
        return false;
    r.simTimeNs = *sim;
    return true;
}

} // namespace

std::uint64_t
fuzzJournalKey(const SystemSpec &spec, const HammerConfig &cfg,
               const FuzzParams &params, std::uint64_t seed)
{
    // Fold params.refSync into the config the same way fuzzCampaign
    // applies it, so the journal key matches the campaign actually run.
    HammerConfig eff = cfg;
    if (params.refSync)
        eff.refSync = true;
    std::uint64_t key = campaignKey(spec, eff, seed);
    key = hashCombine(key, params.numPatterns);
    key = hashCombine(key, params.locationsPerPattern);
    key = hashCombine(key, params.patternParams.minPairs);
    key = hashCombine(key, params.patternParams.maxPairs);
    key = hashCombine(key, params.patternParams.minPeriodLog2);
    key = hashCombine(key, params.patternParams.maxPeriodLog2);
    key = hashCombine(key, params.patternParams.maxFreqLog2);
    key = hashCombine(key, params.patternParams.maxAmpLog2);
    key = hashCombine(key, params.patternParams.maxRowSpread);
    return key;
}

FuzzResult
fuzzCampaign(const SystemSpec &spec, const HammerConfig &cfg,
             const FuzzParams &params, std::uint64_t seed,
             ParallelStats *stats, MetricsRegistry *metrics,
             std::vector<TraceEvent> *trace)
{
    const bool tracing = spec.trace.enabled;
    const std::vector<std::uint8_t> *mask = params.taskMask;
    if (std::string err = patternParamsError(params.patternParams);
        !err.empty()) {
        FuzzResult res;
        res.failure = FailureCode::InvalidPatternParams;
        res.failureReason = err;
        return res;
    }
    HammerConfig run_cfg = cfg;
    if (params.refSync)
        run_cfg.refSync = true;
    std::shared_ptr<TaskJournal> journal;
    if (!params.checkpointPath.empty()) {
        journal = std::make_shared<TaskJournal>(
            params.checkpointPath,
            fuzzJournalKey(spec, cfg, params, seed), FuzzJournalKind,
            params.journal);
    }
    std::atomic<std::uint64_t> restored{0};

    auto task = [&](unsigned i) -> FuzzTaskResult {
        if (mask && !(*mask)[i])
            return FuzzTaskResult{}; // another shard's task
        std::uint64_t task_seed = hashCombine(seed, i);
        Rng pattern_rng(task_seed);
        FuzzTaskResult r;
        r.pattern = HammerPattern::randomNonUniform(pattern_rng,
                                                    params.patternParams);
        // Tracing bypasses restores: a restored task has no events.
        if (journal && !tracing) {
            if (auto payload = journal->lookup(i)) {
                if (parseFuzzTask(*payload, r)) {
                    restored.fetch_add(1, std::memory_order_relaxed);
                    return r;
                }
            }
        }
        MemorySystem sys = spec.instantiate(task_seed);
        HammerSession session(sys, task_seed);
        Tracer tracer(spec.trace);
        if (tracing) {
            tracer.setTid(static_cast<std::uint16_t>(i));
            sys.attachTracer(&tracer);
        }
        Ns t0 = sys.now();
        for (unsigned l = 0; l < params.locationsPerPattern; ++l) {
            LocationPick pick =
                session.tryRandomLocation(r.pattern, run_cfg);
            if (!pick.ok()) {
                r.unplaceable = 1;
                break;
            }
            HammerOutcome out =
                session.hammer(r.pattern, *pick.loc, run_cfg);
            r.flips += out.flips;
            r.dramAccesses += out.perf.dramAccesses;
        }
        r.simTimeNs = sys.now() - t0;
        r.acts = sys.dimm().totalActs();
        r.trrRefreshes = sys.dimm().trrRefreshCount();
        r.rfmCommands = sys.dimm().rfmCommandCount();
        r.pracAlerts = sys.dimm().pracAlertCount();
        if (tracing) {
            r.events = tracer.events();
            sys.attachTracer(nullptr);
        }
        if (journal)
            journal->record(i, serializeFuzzTask(r));
        return r;
    };

    auto tasks = parallelMapOrdered(params.numPatterns, params.jobs,
                                    task, stats);
    if (stats) {
        stats->tasksRestored = restored.load();
        // Restored tasks did no simulation work; tasksRun counts only
        // tasks actually executed.
        stats->tasksRun -= stats->tasksRestored;
    }

    // Merge in task-index order: the serial reduction semantics
    // (earliest strict maximum wins the best-pattern slot) hold for
    // any job count.
    FuzzResult res;
    unsigned merged = 0;
    for (unsigned i = 0; i < tasks.size(); ++i) {
        if (mask && !(*mask)[i])
            continue; // another shard's task: no merge contribution
        FuzzTaskResult &t = tasks[i];
        ++merged;
        res.unplaceablePatterns += t.unplaceable;
        if (t.flips > 0) {
            ++res.effectivePatterns;
            res.totalFlips += t.flips;
        }
        if (t.flips > res.bestPatternFlips) {
            res.bestPatternFlips = t.flips;
            res.bestPattern = std::move(t.pattern);
        }
        res.dramAccesses += t.dramAccesses;
        res.simTimeNs += t.simTimeNs;
        if (metrics) {
            metrics->add("dram.acts", t.acts);
            metrics->add("dram.refreshes.trr", t.trrRefreshes);
            metrics->add("dram.refreshes.rfm", t.rfmCommands);
            metrics->add("dram.alerts.prac", t.pracAlerts);
            metrics->add("cpu.dram_accesses", t.dramAccesses);
            metrics->add("hammer.flips", t.flips);
        }
        if (trace)
            trace->insert(trace->end(), t.events.begin(), t.events.end());
    }
    if (metrics)
        metrics->add("campaign.patterns", merged);
    if (stats)
        stats->simNs = res.simTimeNs;
    if (merged > 0 && res.unplaceablePatterns == merged) {
        res.failure = FailureCode::PatternUnplaceable;
        res.failureReason =
            "every pattern footprint exceeded the bank's row space";
    }
    return res;
}

} // namespace rho
