#include "hammer/evo_fuzzer.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <sstream>

#include "common/parallel.hh"
#include "common/table.hh"
#include "hammer/sweep.hh"

namespace rho
{

std::string
evoParamsError(const EvoParams &params)
{
    std::string pattern_err = patternParamsError(params.patternParams);
    if (!pattern_err.empty())
        return pattern_err;
    if (params.populationSize < 1)
        return "populationSize must be >= 1";
    if (params.generations < 1)
        return "generations must be >= 1";
    if (params.elites >= params.populationSize)
        return strFormat("elites (%u) must be < populationSize (%u)",
                         params.elites, params.populationSize);
    if (params.tournamentSize < 1)
        return "tournamentSize must be >= 1";
    if (params.crossoverProb < 0.0 || params.crossoverProb > 1.0)
        return "crossoverProb must be in [0, 1]";
    if (params.immigrantProb < 0.0 || params.immigrantProb > 1.0)
        return "immigrantProb must be in [0, 1]";
    return "";
}

namespace
{

/** One trial's evaluation outcome (same shape as a fuzz task). */
struct EvoTaskResult
{
    std::uint64_t flips = 0;
    std::uint64_t dramAccesses = 0;
    unsigned unplaceable = 0;
    Ns simTimeNs = 0.0;
    std::uint64_t acts = 0;
    std::uint64_t trrRefreshes = 0;
    std::uint64_t rfmCommands = 0;
    std::uint64_t pracAlerts = 0;
};

std::string
serializeEvoTask(const EvoTaskResult &r)
{
    std::ostringstream out;
    out << r.flips << " " << r.dramAccesses << " "
        << encodeDouble(r.simTimeNs) << " " << r.acts << " "
        << r.trrRefreshes << " " << r.rfmCommands << " " << r.pracAlerts
        << " " << r.unplaceable;
    return out.str();
}

bool
parseEvoTask(const std::string &payload, EvoTaskResult &r)
{
    std::istringstream in(payload);
    std::string sim_hex;
    if (!(in >> r.flips >> r.dramAccesses >> sim_hex >> r.acts
          >> r.trrRefreshes >> r.rfmCommands >> r.pracAlerts
          >> r.unplaceable))
        return false;
    auto sim = decodeDouble(sim_hex);
    if (!sim)
        return false;
    r.simTimeNs = *sim;
    return true;
}

/**
 * Fitness of one evaluated genome: flips dominate, then TRR sampler
 * churn (a pattern the sampler keeps chasing has found the decoy
 * balance the next mutation can exploit), then raw activations (a
 * throughput proxy — patterns that stall the bus breed out).
 */
struct Fitness
{
    std::uint64_t flips = 0;
    std::uint64_t trrRefreshes = 0;
    std::uint64_t acts = 0;

    bool
    operator<(const Fitness &o) const
    {
        if (flips != o.flips)
            return flips < o.flips;
        if (trrRefreshes != o.trrRefreshes)
            return trrRefreshes < o.trrRefreshes;
        return acts < o.acts;
    }
};

/** Order-sensitive digest of a generation's genomes. */
std::uint64_t
populationDigest(unsigned generation,
                 const std::vector<HammerPattern> &pop)
{
    std::uint64_t d = hashCombine(0xe70d16e5ULL, generation);
    for (const HammerPattern &p : pop) {
        d = hashCombine(d, p.id());
        d = hashCombine(d, p.genomeFingerprint());
    }
    return d;
}

} // namespace

std::uint64_t
evoJournalKey(const SystemSpec &spec, const HammerConfig &cfg,
              const EvoParams &params, std::uint64_t seed)
{
    HammerConfig eff = cfg;
    if (params.refSync)
        eff.refSync = true;
    std::uint64_t key = campaignKey(spec, eff, seed);
    key = hashCombine(key, 0xe70ULL);
    key = hashCombine(key, params.populationSize);
    key = hashCombine(key, params.generations);
    key = hashCombine(key, params.elites);
    key = hashCombine(key, params.tournamentSize);
    key = hashCombine(key, std::bit_cast<std::uint64_t>(
                               params.crossoverProb));
    key = hashCombine(key, std::bit_cast<std::uint64_t>(
                               params.immigrantProb));
    key = hashCombine(key, params.locationsPerPattern);
    key = hashCombine(key, params.patternParams.minPairs);
    key = hashCombine(key, params.patternParams.maxPairs);
    key = hashCombine(key, params.patternParams.minPeriodLog2);
    key = hashCombine(key, params.patternParams.maxPeriodLog2);
    key = hashCombine(key, params.patternParams.maxFreqLog2);
    key = hashCombine(key, params.patternParams.maxAmpLog2);
    key = hashCombine(key, params.patternParams.maxRowSpread);
    return key;
}

EvoResult
evolvedFuzzCampaign(const SystemSpec &spec, const HammerConfig &cfg,
                    const EvoParams &params, std::uint64_t seed,
                    ParallelStats *stats, MetricsRegistry *metrics)
{
    EvoResult res;
    if (std::string err = evoParamsError(params); !err.empty()) {
        res.failure = FailureCode::InvalidPatternParams;
        res.failureReason = err;
        return res;
    }
    HammerConfig run_cfg = cfg;
    if (params.refSync)
        run_cfg.refSync = true;

    std::shared_ptr<TaskJournal> journal;
    if (!params.checkpointPath.empty()) {
        journal = std::make_shared<TaskJournal>(
            params.checkpointPath, evoJournalKey(spec, cfg, params, seed),
            EvoJournalKind, params.journal);
    }

    const unsigned pop_size = params.populationSize;
    const PatternParams &pp = params.patternParams;

    // Master rng: ALL genetics draw from here, serially, so the
    // trajectory is a pure function of (seed, restored fitness) no
    // matter how the evaluations are scheduled.
    Rng evo(hashCombine(seed, 0xe701ULL));

    std::vector<HammerPattern> pop;
    pop.reserve(pop_size);
    for (unsigned j = 0; j < pop_size; ++j) {
        HammerPattern p = HammerPattern::randomGenome(evo, pp);
        if (j % 2 == 0) {
            // Anchor half the seed population on the uniform-stride
            // layout the blind sampler uses: disjoint pairs with
            // sandwiched victims are a known-good geometry, so
            // evolution starts at the blind baseline and explores
            // spread offsets from there instead of having to
            // rediscover non-overlapping placements.
            std::vector<PairGene> genome = p.genome();
            for (unsigned k = 0; k < genome.size(); ++k)
                genome[k].rowOffset =
                    std::min(k * p.stride(), pp.maxRowSpread);
            p = HammerPattern::fromGenome(
                p.id(), static_cast<unsigned>(p.slots().size()),
                std::move(genome));
        }
        pop.push_back(std::move(p));
    }

    // Restored trial records are trusted only while every generation
    // digest matches the replayed trajectory; after a mismatch the
    // journal is from a diverged run and the tail re-executes live.
    bool trust = journal != nullptr;
    std::atomic<std::uint64_t> restored{0};

    auto tournament = [&](const std::vector<Fitness> &fit) -> unsigned {
        unsigned best = static_cast<unsigned>(
            evo.uniformInt(0, pop_size - 1));
        for (unsigned k = 1; k < params.tournamentSize; ++k) {
            unsigned c = static_cast<unsigned>(
                evo.uniformInt(0, pop_size - 1));
            if (fit[best] < fit[c])
                best = c;
        }
        return best;
    };

    for (unsigned g = 0; g < params.generations; ++g) {
        if (journal) {
            std::string digest = strFormat(
                "%016llx",
                (unsigned long long)populationDigest(g, pop));
            if (auto m = journal->lookupMeta(g)) {
                if (*m != digest) {
                    trust = false;
                    journal->recordMeta(g, digest);
                }
            } else {
                journal->recordMeta(g, digest);
            }
        }

        auto task = [&](unsigned j) -> EvoTaskResult {
            unsigned t = g * pop_size + j;
            EvoTaskResult r;
            if (journal && trust) {
                if (auto payload = journal->lookup(t)) {
                    if (parseEvoTask(*payload, r)) {
                        restored.fetch_add(1,
                                           std::memory_order_relaxed);
                        return r;
                    }
                }
            }
            std::uint64_t task_seed = hashCombine(seed, t);
            MemorySystem sys = spec.instantiate(task_seed);
            HammerSession session(sys, task_seed);
            Ns t0 = sys.now();
            for (unsigned l = 0; l < params.locationsPerPattern; ++l) {
                LocationPick pick =
                    session.tryRandomLocation(pop[j], run_cfg);
                if (!pick.ok()) {
                    r.unplaceable = 1;
                    break;
                }
                HammerOutcome out =
                    session.hammer(pop[j], *pick.loc, run_cfg);
                r.flips += out.flips;
                r.dramAccesses += out.perf.dramAccesses;
            }
            r.simTimeNs = sys.now() - t0;
            r.acts = sys.dimm().totalActs();
            r.trrRefreshes = sys.dimm().trrRefreshCount();
            r.rfmCommands = sys.dimm().rfmCommandCount();
            r.pracAlerts = sys.dimm().pracAlertCount();
            if (journal)
                journal->record(t, serializeEvoTask(r));
            return r;
        };

        ParallelStats gen_stats;
        auto evals = parallelMapOrdered(pop_size, params.jobs, task,
                                        stats ? &gen_stats : nullptr);
        if (stats) {
            stats->jobs = gen_stats.jobs;
            stats->tasksRun += gen_stats.tasksRun;
            stats->steals += gen_stats.steals;
            stats->wallNs += gen_stats.wallNs;
        }

        // Merge in trial order: the earliest strict maximum (across
        // the whole search) keeps the best-pattern slot.
        std::vector<Fitness> fit(pop_size);
        for (unsigned j = 0; j < pop_size; ++j) {
            const EvoTaskResult &t = evals[j];
            ++res.trialsRun;
            res.unplaceablePatterns += t.unplaceable;
            if (t.flips > 0) {
                ++res.effectivePatterns;
                res.totalFlips += t.flips;
            }
            if (t.flips > res.bestPatternFlips) {
                res.bestPatternFlips = t.flips;
                res.bestPattern = pop[j];
            }
            res.dramAccesses += t.dramAccesses;
            res.simTimeNs += t.simTimeNs;
            fit[j] = Fitness{t.flips, t.trrRefreshes, t.acts};
            if (metrics) {
                metrics->add("dram.acts", t.acts);
                metrics->add("dram.refreshes.trr", t.trrRefreshes);
                metrics->add("dram.refreshes.rfm", t.rfmCommands);
                metrics->add("dram.alerts.prac", t.pracAlerts);
                metrics->add("cpu.dram_accesses", t.dramAccesses);
                metrics->add("hammer.flips", t.flips);
            }
        }
        res.bestFlipsPerGeneration.push_back(res.bestPatternFlips);

        if (g + 1 == params.generations)
            break;

        // Breed the next generation (serial; master rng only).
        std::vector<unsigned> order(pop_size);
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(),
                         [&](unsigned a, unsigned b) {
                             return fit[b] < fit[a];
                         });
        std::vector<HammerPattern> next;
        next.reserve(pop_size);
        for (unsigned e = 0; e < params.elites; ++e)
            next.push_back(pop[order[e]]);
        while (next.size() < pop_size) {
            if (evo.chance(params.immigrantProb)) {
                next.push_back(HammerPattern::randomGenome(evo, pp));
                continue;
            }
            unsigned a = tournament(fit);
            if (evo.chance(params.crossoverProb)) {
                unsigned b = tournament(fit);
                HammerPattern child =
                    HammerPattern::crossover(evo, pop[a], pop[b], pp);
                next.push_back(child.mutate(evo, pp));
            } else {
                next.push_back(pop[a].mutate(evo, pp));
            }
        }
        pop = std::move(next);
    }

    if (stats) {
        stats->tasksRestored = restored.load();
        stats->tasksRun -= std::min<std::uint64_t>(stats->tasksRun,
                                                   restored.load());
        stats->simNs = res.simTimeNs;
    }
    if (metrics) {
        metrics->add("campaign.patterns", res.trialsRun);
        metrics->add("campaign.generations", params.generations);
    }
    if (res.trialsRun > 0 && res.unplaceablePatterns == res.trialsRun) {
        res.failure = FailureCode::PatternUnplaceable;
        res.failureReason =
            "every pattern footprint exceeded the bank's row space";
    }
    return res;
}

} // namespace rho
