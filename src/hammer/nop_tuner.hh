/**
 * @file
 * The NOP-count tuning phase of counter-speculation hammering
 * (paper section 4.4, Fig. 10): sweep the pseudo-barrier size and
 * keep the optimum, which balances prefetch ordering against
 * activation-rate loss.
 */

#ifndef RHO_HAMMER_NOP_TUNER_HH
#define RHO_HAMMER_NOP_TUNER_HH

#include <vector>

#include "hammer/hammer_session.hh"

namespace rho
{

/** One sweep point. */
struct NopTunePoint
{
    unsigned nops;
    std::uint64_t flips;
    Ns timeNs;
    double missRate;
};

/** Sweep outcome. */
struct NopTuneResult
{
    unsigned bestNops = 0;
    std::uint64_t bestFlips = 0;
    std::vector<NopTunePoint> curve;
};

/**
 * Sweep nop counts for a fixed pattern/config over a set of
 * locations; cfg.barrier/nopCount are overridden per point.
 */
NopTuneResult tuneNops(HammerSession &session,
                       const HammerPattern &pattern, HammerConfig cfg,
                       const std::vector<unsigned> &nop_counts,
                       unsigned locations, std::uint64_t seed);

} // namespace rho

#endif // RHO_HAMMER_NOP_TUNER_HH
