#include "hammer/nop_tuner.hh"

#include "trace/tracer.hh"

namespace rho
{

NopTuneResult
tuneNops(HammerSession &session, const HammerPattern &pattern,
         HammerConfig cfg, const std::vector<unsigned> &nop_counts,
         unsigned locations, std::uint64_t seed)
{
    NopTuneResult res;
    (void)seed;

    // Use the same locations for every point so the sweep compares
    // like with like (flippability is location-dependent).
    std::vector<HammerLocation> locs;
    for (unsigned l = 0; l < locations; ++l)
        locs.push_back(session.randomLocation(pattern, cfg));

    MemorySystem &sys = session.system();
    RHO_TRACE(sys.tracer(), sys.now(), EventKind::PhaseBegin, 0,
              static_cast<std::uint32_t>(SimPhase::NopTune),
              nop_counts.size(), locations);
    for (unsigned n : nop_counts) {
        cfg.barrier = BarrierKind::Nop;
        cfg.nopCount = n;
        NopTunePoint pt{n, 0, 0.0, 0.0};
        double miss_sum = 0.0;
        for (const auto &loc : locs) {
            HammerOutcome out = session.hammer(pattern, loc, cfg);
            pt.flips += out.flips;
            pt.timeNs += out.perf.timeNs;
            miss_sum += out.perf.missRate();
        }
        pt.missRate = locations ? miss_sum / locations : 0.0;
        res.curve.push_back(pt);
        if (pt.flips > res.bestFlips) {
            res.bestFlips = pt.flips;
            res.bestNops = n;
        }
    }
    RHO_TRACE(sys.tracer(), sys.now(), EventKind::PhaseEnd, 0,
              static_cast<std::uint32_t>(SimPhase::NopTune), res.bestNops,
              res.bestFlips);
    return res;
}

} // namespace rho
