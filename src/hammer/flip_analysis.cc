#include "hammer/flip_analysis.hh"

#include <algorithm>
#include <set>

#include "common/table.hh"

namespace rho
{

FlipStats
analyzeFlips(const std::vector<FlipRecord> &flips)
{
    FlipStats s;
    s.bitInQword.assign(64, 0);
    std::set<std::pair<std::uint32_t, std::uint64_t>> rows;
    std::set<std::uint32_t> banks;
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t>
        per_row;

    for (const FlipRecord &f : flips) {
        ++s.total;
        if (f.toOne)
            ++s.toOne;
        else
            ++s.toZero;
        rows.insert({f.bank, f.row});
        banks.insert(f.bank);
        unsigned biq = f.bitOffset & 63;
        ++s.bitInQword[biq];
        if (biq >= 12 && biq <= 19)
            ++s.pteExploitable;
        std::uint64_t &n = per_row[{f.bank, f.row}];
        ++n;
        s.maxPerRow = std::max(s.maxPerRow, n);
    }
    s.uniqueRows = rows.size();
    s.uniqueBanks = banks.size();
    return s;
}

std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t>
flipsByRow(const std::vector<FlipRecord> &flips)
{
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> m;
    for (const FlipRecord &f : flips)
        ++m[{f.bank, f.row}];
    return m;
}

std::string
FlipStats::describe() const
{
    std::string out = strFormat(
        "%llu flips: %llu to-1 / %llu to-0 (%.0f%% to-1), "
        "%llu rows in %llu banks, worst row %llu, "
        "PTE-exploitable %llu (%.1f%%)",
        (unsigned long long)total, (unsigned long long)toOne,
        (unsigned long long)toZero, toOneRatio() * 100,
        (unsigned long long)uniqueRows, (unsigned long long)uniqueBanks,
        (unsigned long long)maxPerRow,
        (unsigned long long)pteExploitable, exploitableRatio() * 100);
    return out;
}

} // namespace rho
