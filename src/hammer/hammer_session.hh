/**
 * @file
 * HammerSession: instantiates a pattern at a DIMM location, builds the
 * hammer kernel for a given attack configuration (instruction kind,
 * addressing mode, bank count, counter-speculation settings), executes
 * it on the CPU model and verifies victim rows for bit flips.
 */

#ifndef RHO_HAMMER_HAMMER_SESSION_HH
#define RHO_HAMMER_HAMMER_SESSION_HH

#include <optional>
#include <vector>

#include "common/failure.hh"
#include "cpu/sim_cpu.hh"
#include "hammer/pattern.hh"
#include "memsys/memory_system.hh"

namespace rho
{

/** Which x86 instruction performs the DRAM access. */
enum class HammerInstr : std::uint8_t
{
    Load,
    PrefetchT0,
    PrefetchT1,
    PrefetchT2,
    PrefetchNta,
};

/** Barrier inserted after each hammer+flush group. */
enum class BarrierKind : std::uint8_t
{
    None,
    Nop,    //!< rhoHammer's NOP pseudo-barrier (count = nopCount)
    Lfence,
    Mfence,
    Cpuid,
};

/** Full attack configuration (one Table 6 / Fig. 9 cell). */
struct HammerConfig
{
    HammerInstr instr = HammerInstr::PrefetchNta;
    AddressingMode mode = AddressingMode::CppIndexed;
    unsigned numBanks = 1;       //!< multi-bank replication factor
    bool obfuscate = false;      //!< control-flow obfuscation
    BarrierKind barrier = BarrierKind::None;
    unsigned nopCount = 0;       //!< NOPs per access (barrier == Nop)
    std::uint64_t accessBudget = 600000; //!< hammer attempts per run
    std::uint8_t victimFill = 0x55;
    std::uint8_t aggrFill = 0xAA;

    /**
     * Synchronize with the refresh window before hammering
     * (hammer/ref_sync): detect the REF period from the latency-spike
     * side channel and start the kernel just after a boundary. Only
     * useful on refBlocking platforms (Zen, LPDDR4); a no-op
     * elsewhere because no spikes are detectable.
     */
    bool refSync = false;

    /** Baseline (load) vs rhoHammer (prefetch) shorthand. */
    bool isPrefetch() const { return instr != HammerInstr::Load; }
};

/** Where a pattern is instantiated. */
struct HammerLocation
{
    std::uint32_t bank = 0;
    std::uint64_t baseRow = 0;
};

/** Outcome of trying to place a pattern in a bank. */
struct LocationPick
{
    std::optional<HammerLocation> loc;
    FailureCode failure = FailureCode::None;

    bool ok() const { return loc.has_value(); }
};

/** Result of executing one pattern at one location. */
struct HammerOutcome
{
    std::uint64_t flips = 0;
    PerfCounters perf;
    std::vector<FlipRecord> flipList;
};

/** Execution engine for hammer attempts. */
class HammerSession
{
  public:
    HammerSession(MemorySystem &sys, std::uint64_t seed);

    /** Build the kernel only (inspection / micro-benchmarks). */
    HammerKernel buildKernel(const HammerPattern &pattern,
                             const HammerLocation &loc,
                             const HammerConfig &cfg) const;

    /** Initialize data, hammer, verify, and restore victim rows. */
    HammerOutcome hammer(const HammerPattern &pattern,
                         const HammerLocation &loc,
                         const HammerConfig &cfg);

    /**
     * Hammer without touching victim data (no fill, no diff, no
     * restore). Used when victim rows hold live system data, e.g. a
     * massaged page-table page; flips are taken from the device log.
     */
    HammerOutcome hammerRaw(const HammerPattern &pattern,
                            const HammerLocation &loc,
                            const HammerConfig &cfg);

    /**
     * A valid random location for the pattern footprint, or
     * FailureCode::PatternUnplaceable when the footprint (plus guard
     * rows) does not fit the bank's row space. Callers that sample
     * locations in a loop must check this instead of calling
     * randomLocation(), whose legacy signature cannot report failure.
     */
    LocationPick tryRandomLocation(const HammerPattern &pattern,
                                   const HammerConfig &cfg);

    /**
     * A valid random location for the pattern footprint. For a
     * pattern too wide for the bank this clamps to base row 8 rather
     * than sampling from a wrapped unsigned range (the historical
     * behaviour picked a base row near 2^64 mod rowsPerBank, placing
     * aggressors out of bounds); prefer tryRandomLocation() to detect
     * that case.
     */
    HammerLocation randomLocation(const HammerPattern &pattern,
                                  const HammerConfig &cfg);

    MemorySystem &system() { return sys; }
    SimCpu &cpu() { return core; }

  private:
    /** Victim rows of the instantiated pattern (per replicated bank). */
    std::vector<std::pair<std::uint32_t, std::uint64_t>>
    victimRows(const HammerPattern &pattern, const HammerLocation &loc,
               const HammerConfig &cfg) const;

    /** Aggressor rows per pair and bank. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>>
    aggressorRows(const HammerPattern &pattern, const HammerLocation &loc,
                  const HammerConfig &cfg) const;

    std::uint32_t bankAt(const HammerLocation &loc, unsigned idx) const;

    /** Run REF-window detection + alignment when cfg.refSync is set. */
    void maybeAlignToRef(const HammerConfig &cfg);

    MemorySystem &sys;
    SimCpu core;
    Rng rng;
};

/** Convert HammerInstr to the kernel op kind. */
OpKind opKindOf(HammerInstr instr);

/** Short display name ("load", "pref-nta", ...). */
std::string hammerInstrName(HammerInstr instr);

} // namespace rho

#endif // RHO_HAMMER_HAMMER_SESSION_HH
