#include "hammer/hammer_session.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "hammer/ref_sync.hh"

namespace rho
{

OpKind
opKindOf(HammerInstr instr)
{
    switch (instr) {
      case HammerInstr::Load: return OpKind::Load;
      case HammerInstr::PrefetchT0: return OpKind::PrefetchT0;
      case HammerInstr::PrefetchT1: return OpKind::PrefetchT1;
      case HammerInstr::PrefetchT2: return OpKind::PrefetchT2;
      case HammerInstr::PrefetchNta: return OpKind::PrefetchNta;
    }
    panic("opKindOf: bad instr");
}

std::string
hammerInstrName(HammerInstr instr)
{
    switch (instr) {
      case HammerInstr::Load: return "load";
      case HammerInstr::PrefetchT0: return "pref-t0";
      case HammerInstr::PrefetchT1: return "pref-t1";
      case HammerInstr::PrefetchT2: return "pref-t2";
      case HammerInstr::PrefetchNta: return "pref-nta";
    }
    panic("hammerInstrName: bad instr");
}

HammerSession::HammerSession(MemorySystem &sys_, std::uint64_t seed)
    : sys(sys_), core(sys_.cpuParams(), seed, sys_.cpuModel()),
      rng(seed ^ 0x5e5510)
{
}

std::uint32_t
HammerSession::bankAt(const HammerLocation &loc, unsigned idx) const
{
    return (loc.bank + idx) % sys.mapping().numBanks();
}

HammerKernel
HammerSession::buildKernel(const HammerPattern &pattern,
                           const HammerLocation &loc,
                           const HammerConfig &cfg) const
{
    HammerKernel kernel(cfg.mode);
    const AddressMapping &map = sys.mapping();
    OpKind hammer_op = opKindOf(cfg.instr);

    // Precompute physical addresses: pair x bank x side.
    std::vector<PhysAddr> addrs;
    addrs.reserve(pattern.numPairs() * cfg.numBanks * 2);
    for (unsigned pair = 0; pair < pattern.numPairs(); ++pair) {
        for (unsigned b = 0; b < cfg.numBanks; ++b) {
            std::uint64_t base = loc.baseRow + pattern.pairRowOffset(pair);
            addrs.push_back(map.rowToPhys(bankAt(loc, b), base));
            addrs.push_back(map.rowToPhys(bankAt(loc, b), base + 2));
        }
    }

    for (unsigned slot_idx = 0; slot_idx < pattern.slots().size();
         ++slot_idx) {
        unsigned pair = pattern.slots()[slot_idx];
        if (cfg.obfuscate)
            kernel.push({OpKind::BranchObf, 0, 1});
        // SledgeHammer interleaving: per aggressor side, hit the
        // replicated banks back to back.
        for (unsigned side = 0; side < 2; ++side) {
            for (unsigned b = 0; b < cfg.numBanks; ++b) {
                PhysAddr pa =
                    addrs[(pair * cfg.numBanks + b) * 2 + side];
                if (cfg.barrier == BarrierKind::Nop)
                    kernel.pushNops(cfg.nopCount);
                kernel.pushMem(hammer_op, pa);
                kernel.pushMem(OpKind::ClFlushOpt, pa);
                switch (cfg.barrier) {
                  case BarrierKind::Lfence:
                    kernel.push({OpKind::Lfence, 0, 1});
                    break;
                  case BarrierKind::Mfence:
                    kernel.push({OpKind::Mfence, 0, 1});
                    break;
                  case BarrierKind::Cpuid:
                    kernel.push({OpKind::Cpuid, 0, 1});
                    break;
                  case BarrierKind::None:
                  case BarrierKind::Nop:
                    break;
                }
            }
        }
    }
    kernel.push({OpKind::BranchLoop, 0, 1});
    return kernel;
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
HammerSession::aggressorRows(const HammerPattern &pattern,
                             const HammerLocation &loc,
                             const HammerConfig &cfg) const
{
    std::vector<std::pair<std::uint32_t, std::uint64_t>> rows;
    for (unsigned pair = 0; pair < pattern.numPairs(); ++pair) {
        for (unsigned b = 0; b < cfg.numBanks; ++b) {
            std::uint64_t base = loc.baseRow + pattern.pairRowOffset(pair);
            rows.push_back({bankAt(loc, b), base});
            rows.push_back({bankAt(loc, b), base + 2});
        }
    }
    return rows;
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
HammerSession::victimRows(const HammerPattern &pattern,
                          const HammerLocation &loc,
                          const HammerConfig &cfg) const
{
    auto aggs = aggressorRows(pattern, loc, cfg);
    std::set<std::pair<std::uint32_t, std::uint64_t>> agg_set(
        aggs.begin(), aggs.end());
    std::set<std::pair<std::uint32_t, std::uint64_t>> victims;
    std::uint64_t max_row = sys.dimm().geometry().rowsPerBank;
    for (auto [bank, row] : aggs) {
        for (int d = -2; d <= 2; ++d) {
            if (d == 0)
                continue;
            std::int64_t v = static_cast<std::int64_t>(row) + d;
            if (v < 0 || v >= static_cast<std::int64_t>(max_row))
                continue;
            auto key = std::make_pair(bank,
                                      static_cast<std::uint64_t>(v));
            if (!agg_set.count(key))
                victims.insert(key);
        }
    }
    return {victims.begin(), victims.end()};
}

LocationPick
HammerSession::tryRandomLocation(const HammerPattern &pattern,
                                 const HammerConfig &cfg)
{
    (void)cfg;
    const auto &geom = sys.dimm().geometry();
    std::uint64_t span = pattern.footprintRows() + 8;
    LocationPick pick;
    // Guard rows on both ends: baseRow >= 8 and span + 8 headroom
    // above. `rowsPerBank - span - 8` underflows (unsigned) for wide
    // patterns, which used to hand uniformInt a range near 2^64 and
    // place aggressors past the end of the bank.
    if (span + 16 > geom.rowsPerBank) {
        pick.failure = FailureCode::PatternUnplaceable;
        return pick;
    }
    HammerLocation loc;
    loc.bank = static_cast<std::uint32_t>(
        rng.uniformInt(0, geom.flatBanks() - 1));
    loc.baseRow = rng.uniformInt(8, geom.rowsPerBank - span - 8);
    pick.loc = loc;
    return pick;
}

HammerLocation
HammerSession::randomLocation(const HammerPattern &pattern,
                              const HammerConfig &cfg)
{
    LocationPick pick = tryRandomLocation(pattern, cfg);
    if (pick.ok())
        return *pick.loc;
    // Unplaceable: clamp to the bottom guard row. Rows past the bank
    // end are simply never activated; this is the best-effort legacy
    // contract for callers that cannot handle failure.
    const auto &geom = sys.dimm().geometry();
    HammerLocation loc;
    loc.bank = static_cast<std::uint32_t>(
        rng.uniformInt(0, geom.flatBanks() - 1));
    loc.baseRow = 8;
    return loc;
}

void
HammerSession::maybeAlignToRef(const HammerConfig &cfg)
{
    if (!cfg.refSync)
        return;
    RefSyncDetector det(sys);
    RefSyncEstimate est = det.detect();
    if (est.detected)
        RefSyncDetector::align(sys, est);
}

HammerOutcome
HammerSession::hammerRaw(const HammerPattern &pattern,
                         const HammerLocation &loc,
                         const HammerConfig &cfg)
{
    Dimm &dimm = sys.dimm();
    // Align before the flip log is cleared: the detector's probe
    // train activates rows of its own, and any disturbance it causes
    // must not be attributed to the kernel.
    maybeAlignToRef(cfg);
    HammerKernel kernel = buildKernel(pattern, loc, cfg);

    // The session's core is constructed before any tracer is attached
    // to the system, so pick the current one up per run.
    Tracer *tr = sys.tracer();
    core.setTracer(tr);

    dimm.clearFlipLog();
    Ns start = sys.now();
    RHO_TRACE(tr, start, EventKind::PhaseBegin, 0,
              static_cast<std::uint32_t>(SimPhase::Hammer), loc.bank,
              loc.baseRow);
    PerfCounters perf = core.run(kernel, sys, cfg.accessBudget, start);
    sys.syncTo(start + perf.timeNs);

    HammerOutcome out;
    out.perf = perf;
    out.flipList = dimm.flipLog();
    out.flips = out.flipList.size();
    RHO_TRACE(tr, sys.now(), EventKind::PhaseEnd, 0,
              static_cast<std::uint32_t>(SimPhase::Hammer), loc.bank,
              out.flips);
    return out;
}

HammerOutcome
HammerSession::hammer(const HammerPattern &pattern,
                      const HammerLocation &loc, const HammerConfig &cfg)
{
    Dimm &dimm = sys.dimm();
    // Align first: the probe train disturbs rows near its conflict
    // pair, and fills planted afterwards give diffRow a clean
    // baseline.
    maybeAlignToRef(cfg);
    auto victims = victimRows(pattern, loc, cfg);
    auto aggs = aggressorRows(pattern, loc, cfg);

    // Plant the data patterns the attacker checks against.
    for (auto [bank, row] : victims)
        dimm.fillRow(bank, row, cfg.victimFill, sys.now());
    for (auto [bank, row] : aggs)
        dimm.fillRow(bank, row, cfg.aggrFill, sys.now());

    HammerKernel kernel = buildKernel(pattern, loc, cfg);

    Tracer *tr = sys.tracer();
    core.setTracer(tr);

    dimm.clearFlipLog();
    Ns start = sys.now();
    RHO_TRACE(tr, start, EventKind::PhaseBegin, 0,
              static_cast<std::uint32_t>(SimPhase::Hammer), loc.bank,
              loc.baseRow);
    PerfCounters perf = core.run(kernel, sys, cfg.accessBudget, start);
    sys.syncTo(start + perf.timeNs);

    HammerOutcome out;
    out.perf = perf;
    RHO_TRACE(tr, sys.now(), EventKind::PhaseEnd, 0,
              static_cast<std::uint32_t>(SimPhase::Hammer), loc.bank, 0);
    // Verify by diffing victim rows against the planted pattern (the
    // flip log is the same set; the diff is the attacker's view).
    RHO_TRACE(tr, sys.now(), EventKind::PhaseBegin, 0,
              static_cast<std::uint32_t>(SimPhase::Verify), loc.bank,
              loc.baseRow);
    for (auto [bank, row] : victims) {
        auto diffs = dimm.diffRow(bank, row, cfg.victimFill, sys.now());
        for (const auto &f : diffs)
            out.flipList.push_back(f);
    }
    out.flips = out.flipList.size();
    RHO_TRACE(tr, sys.now(), EventKind::PhaseEnd, 0,
              static_cast<std::uint32_t>(SimPhase::Verify), loc.bank,
              out.flips);

    // Restore victim data so repeated trials start clean.
    for (auto [bank, row] : victims)
        dimm.fillRow(bank, row, cfg.victimFill, sys.now());
    return out;
}

} // namespace rho
