/**
 * @file
 * The sweeping operation (paper sections 4.1 and 5.3): apply one
 * effective pattern at many distinct physical locations, simulating
 * the templating phase of a real exploit and yielding the flip-rate
 * metric of Fig. 11.
 */

#ifndef RHO_HAMMER_SWEEP_HH
#define RHO_HAMMER_SWEEP_HH

#include <vector>

#include "hammer/hammer_session.hh"

namespace rho
{

/** Per-location and cumulative sweep results. */
struct SweepResult
{
    std::vector<std::uint64_t> flipsPerLocation;
    std::vector<Ns> cumulativeTimeNs; //!< after each location
    std::uint64_t totalFlips = 0;
    Ns simTimeNs = 0.0;
    std::vector<FlipRecord> flipList;

    /** Average flips per minute of simulated attack time. */
    double
    flipsPerMinute() const
    {
        return simTimeNs > 0.0
            ? totalFlips / (simTimeNs / 60e9)
            : 0.0;
    }
};

/**
 * Sweep a pattern over `num_locations` non-repeating locations.
 * Locations are drawn deterministically from `seed` so different
 * configurations can sweep identical physical rows (the paper
 * controls base addresses when comparing).
 */
SweepResult sweep(HammerSession &session, const HammerPattern &pattern,
                  const HammerConfig &cfg, unsigned num_locations,
                  std::uint64_t seed);

} // namespace rho

#endif // RHO_HAMMER_SWEEP_HH
