/**
 * @file
 * The sweeping operation (paper sections 4.1 and 5.3): apply one
 * effective pattern at many distinct physical locations, simulating
 * the templating phase of a real exploit and yielding the flip-rate
 * metric of Fig. 11.
 *
 * Two drivers are provided:
 *  - sweep(): the single-session serial path, where TRR/refresh state
 *    carries over between locations (useful for studying state
 *    accumulation on one simulated machine);
 *  - sweepCampaign(): the parallel campaign engine. Every location is
 *    an independent task with its own MemorySystem/HammerSession
 *    seeded hashCombine(seed, task_index); results merge in task
 *    order, so output is bit-identical for any `jobs` count.
 */

#ifndef RHO_HAMMER_SWEEP_HH
#define RHO_HAMMER_SWEEP_HH

#include <string>
#include <vector>

#include "common/checkpoint.hh"
#include "common/stats.hh"
#include "hammer/hammer_session.hh"
#include "trace/metrics.hh"

namespace rho
{

/** Journal kind tag for sweepCampaign() checkpoints. */
inline constexpr const char *SweepJournalKind = "sweep3";

/** Campaign sizing for sweepCampaign(). */
struct SweepParams
{
    unsigned numLocations = 16;
    unsigned jobs = 0; //!< worker threads; 0 = hardware_concurrency

    /**
     * When non-empty, completed tasks are journaled here and a killed
     * campaign resumes from its last completed task on the next run
     * with the same parameters — merged output stays bit-identical to
     * an uninterrupted run for any `jobs` value. A journal written
     * under different campaign parameters is detected and discarded.
     */
    std::string checkpointPath;

    /** Durability/fault options for the checkpoint journal. */
    JournalOptions journal{};

    /**
     * Service sharding: when non-null, only tasks with mask[i] != 0
     * execute and merge; the rest are skipped entirely (no journal
     * record, no merge contribution). The mask is NOT part of the
     * journal key — shards of one campaign share the campaign's key so
     * a supervisor can absorb shard journals into one merged journal.
     * A full mask reproduces the unmasked campaign bit-identically.
     */
    const std::vector<std::uint8_t> *taskMask = nullptr;
};

/** Per-location and cumulative sweep results. */
struct SweepResult
{
    std::vector<std::uint64_t> flipsPerLocation;
    std::vector<Ns> cumulativeTimeNs; //!< after each location
    std::uint64_t totalFlips = 0;
    Ns simTimeNs = 0.0;
    std::vector<FlipRecord> flipList;

    /** Average flips per minute of simulated attack time. */
    double
    flipsPerMinute() const
    {
        return simTimeNs > 0.0
            ? totalFlips / (simTimeNs / 60e9)
            : 0.0;
    }
};

/**
 * The deterministic location schedule shared by both drivers: the
 * bank is drawn from hashCombine(seed, index) and the base row
 * strides the bank space so locations never overlap.
 */
HammerLocation sweepLocationAt(const DimmGeometry &geom,
                               const HammerPattern &pattern,
                               std::uint64_t seed, unsigned index);

/**
 * Sweep a pattern over `num_locations` non-repeating locations on one
 * shared session (serial; device state accumulates across locations).
 * Locations are drawn deterministically from `seed` so different
 * configurations can sweep identical physical rows (the paper
 * controls base addresses when comparing).
 */
SweepResult sweep(HammerSession &session, const HammerPattern &pattern,
                  const HammerConfig &cfg, unsigned num_locations,
                  std::uint64_t seed);

/**
 * Parallel sweep campaign: one independent task per location, fanned
 * out over `params.jobs` workers. Bit-identical results regardless of
 * job count.
 *
 * @param stats optional per-campaign scheduling/timing counters.
 * @param metrics optional unified counters ("dram.acts",
 *        "dram.refreshes.trr", "dram.refreshes.rfm",
 *        "cpu.dram_accesses", "hammer.flips", "campaign.locations",
 *        plus "parallel.*"); totals are merged in task order and are
 *        identical for any `jobs` value and across checkpoint resumes.
 * @param trace optional merged event stream. Filled only when
 *        spec.trace.enabled: each task records into its own Tracer
 *        (tid = task index) and streams concatenate in task order, so
 *        the result is byte-identical for any `jobs` value. Tracing
 *        bypasses checkpoint-journal restores (a restored task has no
 *        events), keeping the stream complete.
 */
SweepResult sweepCampaign(const SystemSpec &spec,
                          const HammerPattern &pattern,
                          const HammerConfig &cfg,
                          const SweepParams &params, std::uint64_t seed,
                          ParallelStats *stats = nullptr,
                          MetricsRegistry *metrics = nullptr,
                          std::vector<TraceEvent> *trace = nullptr);

/**
 * Fingerprint of everything that determines a campaign task's result:
 * platform, DIMM, attack configuration and campaign seed. Checkpoint
 * journals are keyed on this (plus campaign-specific fields) so a
 * stale journal can never be replayed into a different campaign.
 */
std::uint64_t campaignKey(const SystemSpec &spec, const HammerConfig &cfg,
                          std::uint64_t seed);

/**
 * The exact journal key sweepCampaign() opens its checkpoint with
 * (campaignKey plus the sweep-specific fields). The service layer uses
 * it to read shard journals and build the merged journal.
 */
std::uint64_t sweepJournalKey(const SystemSpec &spec,
                              const HammerConfig &cfg,
                              const SweepParams &params,
                              const HammerPattern &pattern,
                              std::uint64_t seed);

} // namespace rho

#endif // RHO_HAMMER_SWEEP_HH
