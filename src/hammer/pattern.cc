#include "hammer/pattern.hh"

#include "common/table.hh"

namespace rho
{

HammerPattern
HammerPattern::randomNonUniform(Rng &rng, const PatternParams &params)
{
    HammerPattern p;
    p.patternId = rng.raw();
    unsigned period = 1u << rng.uniformInt(params.minPeriodLog2,
                                           params.maxPeriodLog2);
    p.nPairs = static_cast<unsigned>(
        rng.uniformInt(params.minPairs, params.maxPairs));
    p.slotSeq.assign(period, ~0u);

    auto place = [&](unsigned pos, unsigned pair) {
        for (unsigned k = 0; k < period; ++k) {
            unsigned s = (pos + k) % period;
            if (p.slotSeq[s] == ~0u) {
                p.slotSeq[s] = pair;
                return;
            }
        }
    };

    for (unsigned pair = 0; pair < p.nPairs; ++pair) {
        unsigned freq = 1u << rng.uniformInt(0, params.maxFreqLog2);
        unsigned amp = 1u << rng.uniformInt(0, params.maxAmpLog2);
        unsigned phase = static_cast<unsigned>(
            rng.uniformInt(0, period - 1));
        for (unsigned j = 0; j < freq; ++j) {
            unsigned pos = (phase + j * (period / freq)) % period;
            for (unsigned k = 0; k < amp; ++k)
                place(pos + k, pair);
        }
    }

    // Fill the remaining slots with random pairs so every slot
    // hammers (Blacksmith keeps the bus saturated).
    for (unsigned s = 0; s < period; ++s) {
        if (p.slotSeq[s] == ~0u) {
            p.slotSeq[s] = static_cast<unsigned>(
                rng.uniformInt(0, p.nPairs - 1));
        }
    }
    return p;
}

HammerPattern
HammerPattern::doubleSided(unsigned period_slots)
{
    HammerPattern p;
    p.patternId = 0xd5;
    p.nPairs = 1;
    p.slotSeq.assign(period_slots, 0);
    return p;
}

std::string
HammerPattern::describe() const
{
    return strFormat("pattern{id=%llx, pairs=%u, period=%zu}",
                     static_cast<unsigned long long>(patternId), nPairs,
                     slotSeq.size());
}

} // namespace rho
