#include "hammer/pattern.hh"

#include <algorithm>

#include "common/table.hh"

namespace rho
{

std::string
patternParamsError(const PatternParams &params)
{
    if (params.minPairs < 1)
        return "minPairs must be >= 1";
    if (params.minPairs > params.maxPairs)
        return strFormat("minPairs (%u) > maxPairs (%u)",
                         params.minPairs, params.maxPairs);
    if (params.minPeriodLog2 > params.maxPeriodLog2)
        return strFormat("minPeriodLog2 (%u) > maxPeriodLog2 (%u)",
                         params.minPeriodLog2, params.maxPeriodLog2);
    if (params.maxPeriodLog2 >= 20)
        return strFormat("maxPeriodLog2 (%u) unreasonably large",
                         params.maxPeriodLog2);
    if (params.maxFreqLog2 >= params.minPeriodLog2)
        return strFormat(
            "maxFreqLog2 (%u) >= minPeriodLog2 (%u): frequencies could "
            "exceed the period",
            params.maxFreqLog2, params.minPeriodLog2);
    if (params.maxAmpLog2 >= params.minPeriodLog2)
        return strFormat(
            "maxAmpLog2 (%u) >= minPeriodLog2 (%u): one appearance "
            "could cover the whole period",
            params.maxAmpLog2, params.minPeriodLog2);
    return "";
}

namespace
{

/** floor(log2(x)) for x >= 1. */
unsigned
floorLog2(unsigned x)
{
    unsigned l = 0;
    while (x >>= 1)
        ++l;
    return l;
}

/**
 * Claim the next free slot at or after `pos` (wrapping) for `pair`.
 * Placements beyond a full period are silently dropped — the pattern
 * is oversubscribed and the earlier pairs win their slots.
 */
void
placeSlot(std::vector<unsigned> &slot_seq, unsigned pos, unsigned pair)
{
    unsigned period = static_cast<unsigned>(slot_seq.size());
    for (unsigned k = 0; k < period; ++k) {
        unsigned s = (pos + k) % period;
        if (slot_seq[s] == ~0u) {
            slot_seq[s] = pair;
            return;
        }
    }
}

/**
 * Materialize a genome into a slot sequence: pairs claim slots in
 * gene order at evenly spaced phases. Frequencies above the period
 * are clamped to it — `period / freq` would otherwise truncate to a
 * zero step and collapse all appearances of the pair onto one run of
 * slots (and loop `freq` times doing it).
 */
void
placeGenes(std::vector<unsigned> &slot_seq,
           const std::vector<PairGene> &genes)
{
    unsigned period = static_cast<unsigned>(slot_seq.size());
    for (unsigned pair = 0; pair < genes.size(); ++pair) {
        const PairGene &g = genes[pair];
        unsigned freq = std::min(1u << g.freqLog2, period);
        unsigned amp = 1u << g.ampLog2;
        unsigned phase = g.phase % period;
        unsigned step = period / freq;
        for (unsigned j = 0; j < freq; ++j) {
            unsigned pos = (phase + j * step) % period;
            for (unsigned k = 0; k < amp; ++k)
                placeSlot(slot_seq, pos + k, pair);
        }
    }
}

} // namespace

HammerPattern
HammerPattern::randomNonUniform(Rng &rng, const PatternParams &params)
{
    HammerPattern p;
    p.patternId = rng.raw();
    unsigned period = 1u << rng.uniformInt(params.minPeriodLog2,
                                           params.maxPeriodLog2);
    p.nPairs = static_cast<unsigned>(
        rng.uniformInt(params.minPairs, params.maxPairs));
    p.slotSeq.assign(period, ~0u);

    // Draw order (freq, amp, phase per pair; fill draws last) is
    // pinned: the golden traces replay these exact streams.
    p.genes.reserve(p.nPairs);
    for (unsigned pair = 0; pair < p.nPairs; ++pair) {
        PairGene g;
        unsigned freq = 1u << rng.uniformInt(0, params.maxFreqLog2);
        g.freqLog2 = floorLog2(std::min(freq, period));
        g.ampLog2 = static_cast<unsigned>(
            rng.uniformInt(0, params.maxAmpLog2));
        g.phase = static_cast<unsigned>(rng.uniformInt(0, period - 1));
        g.rowOffset = pair * p.pairStride;
        p.genes.push_back(g);
    }
    placeGenes(p.slotSeq, p.genes);

    // Fill the remaining slots with random pairs so every slot
    // hammers (Blacksmith keeps the bus saturated).
    for (unsigned s = 0; s < period; ++s) {
        if (p.slotSeq[s] == ~0u) {
            p.slotSeq[s] = static_cast<unsigned>(
                rng.uniformInt(0, p.nPairs - 1));
        }
    }
    return p;
}

HammerPattern
HammerPattern::randomGenome(Rng &rng, const PatternParams &params)
{
    std::uint64_t id = rng.raw();
    unsigned period_log2 = static_cast<unsigned>(rng.uniformInt(
        params.minPeriodLog2, params.maxPeriodLog2));
    unsigned n_pairs = static_cast<unsigned>(
        rng.uniformInt(params.minPairs, params.maxPairs));
    std::vector<PairGene> genome;
    genome.reserve(n_pairs);
    for (unsigned pair = 0; pair < n_pairs; ++pair) {
        PairGene g;
        g.freqLog2 = static_cast<unsigned>(rng.uniformInt(
            0, std::min(params.maxFreqLog2, period_log2)));
        g.ampLog2 = static_cast<unsigned>(
            rng.uniformInt(0, params.maxAmpLog2));
        g.phase = static_cast<unsigned>(
            rng.uniformInt(0, (1u << period_log2) - 1));
        g.rowOffset = static_cast<unsigned>(
            rng.uniformInt(0, params.maxRowSpread));
        genome.push_back(g);
    }
    return fromGenome(id, 1u << period_log2, std::move(genome));
}

HammerPattern
HammerPattern::fromGenome(std::uint64_t id, unsigned period_slots,
                          std::vector<PairGene> genome)
{
    HammerPattern p;
    p.patternId = id;
    p.legacySpan = false;
    p.nPairs = static_cast<unsigned>(genome.size());
    p.genes = std::move(genome);
    if (period_slots == 0)
        period_slots = 1;
    for (PairGene &g : p.genes)
        g.phase %= period_slots;
    p.slotSeq.assign(period_slots, ~0u);
    if (p.nPairs == 0) {
        p.slotSeq.assign(period_slots, 0);
        p.nPairs = 1;
        p.genes.push_back(PairGene{});
        return p;
    }
    placeGenes(p.slotSeq, p.genes);
    // Deterministic filler (no rng): equal genomes materialize
    // bit-identically, which the evolved search's resume digests rely
    // on.
    for (unsigned s = 0; s < period_slots; ++s) {
        if (p.slotSeq[s] == ~0u) {
            p.slotSeq[s] = static_cast<unsigned>(
                splitMix64(hashCombine(id, s)) % p.nPairs);
        }
    }
    return p;
}

HammerPattern
HammerPattern::doubleSided(unsigned period_slots)
{
    HammerPattern p;
    p.patternId = 0xd5;
    p.nPairs = 1;
    p.slotSeq.assign(period_slots, 0);
    return p;
}

HammerPattern
HammerPattern::mutate(Rng &rng, const PatternParams &params) const
{
    unsigned period = static_cast<unsigned>(slotSeq.size());
    unsigned period_log2 = floorLog2(period);
    std::vector<PairGene> genome = genes;
    if (genome.empty()) {
        // Legacy pattern without genes (doubleSided): lift the uniform
        // layout into a genome first so mutation has state to act on.
        for (unsigned pair = 0; pair < nPairs; ++pair)
            genome.push_back(PairGene{0, 0, pair, pair * pairStride});
    }

    auto random_gene = [&]() {
        PairGene g;
        g.freqLog2 = static_cast<unsigned>(rng.uniformInt(
            0, std::min(params.maxFreqLog2, period_log2)));
        g.ampLog2 = static_cast<unsigned>(
            rng.uniformInt(0, params.maxAmpLog2));
        g.phase = static_cast<unsigned>(
            rng.uniformInt(0, period - 1));
        g.rowOffset = static_cast<unsigned>(
            rng.uniformInt(0, params.maxRowSpread));
        return g;
    };

    // One guaranteed edit plus a geometric tail: single-field tweaks
    // alone walk the landscape too slowly for short searches.
    unsigned n_ops = 1;
    while (n_ops < 3 && rng.chance(0.35))
        ++n_ops;
    for (unsigned edit = 0; edit < n_ops; ++edit) {
        unsigned op = static_cast<unsigned>(rng.uniformInt(0, 6));
        unsigned victim = static_cast<unsigned>(
            rng.uniformInt(0, genome.size() - 1));
        switch (op) {
          case 0: // retune frequency
            genome[victim].freqLog2 =
                static_cast<unsigned>(rng.uniformInt(
                    0, std::min(params.maxFreqLog2, period_log2)));
            break;
          case 1: // retune amplitude
            genome[victim].ampLog2 = static_cast<unsigned>(
                rng.uniformInt(0, params.maxAmpLog2));
            break;
          case 2: // re-phase
            genome[victim].phase = static_cast<unsigned>(
                rng.uniformInt(0, period - 1));
            break;
          case 3: // move the pair to a new row offset
            genome[victim].rowOffset = static_cast<unsigned>(
                rng.uniformInt(0, params.maxRowSpread));
            break;
          case 4: // grow (or, at the cap, refresh) a pair
            if (genome.size() < params.maxPairs)
                genome.push_back(random_gene());
            else
                genome[victim] = random_gene();
            break;
          case 5: // shrink (or, at the floor, refresh) a pair
            if (genome.size() > params.minPairs)
                genome.erase(genome.begin() + victim);
            else
                genome[victim] = random_gene();
            break;
          case 6: { // resize the period (re-wrapped in fromGenome)
            unsigned new_log2 = static_cast<unsigned>(rng.uniformInt(
                params.minPeriodLog2, params.maxPeriodLog2));
            period = 1u << new_log2;
            break;
          }
        }
    }
    return fromGenome(rng.raw(), period, std::move(genome));
}

HammerPattern
HammerPattern::crossover(Rng &rng, const HammerPattern &a,
                         const HammerPattern &b,
                         const PatternParams &params)
{
    (void)params;
    const std::vector<PairGene> &ga = a.genes;
    const std::vector<PairGene> &gb = b.genes;
    unsigned period = static_cast<unsigned>(
        rng.chance(0.5) ? a.slotSeq.size() : b.slotSeq.size());
    std::size_t lo = std::min(ga.size(), gb.size());
    std::size_t hi = std::max(ga.size(), gb.size());
    std::size_t n = static_cast<std::size_t>(rng.uniformInt(lo, hi));
    std::vector<PairGene> genome;
    genome.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (i >= ga.size())
            genome.push_back(gb[i]);
        else if (i >= gb.size())
            genome.push_back(ga[i]);
        else
            genome.push_back(rng.chance(0.5) ? ga[i] : gb[i]);
    }
    return fromGenome(rng.raw(), period, std::move(genome));
}

std::uint64_t
HammerPattern::genomeFingerprint() const
{
    std::uint64_t h = hashCombine(slotSeq.size(), 0x6e0e5ULL);
    for (const PairGene &g : genes) {
        h = hashCombine(h, g.freqLog2);
        h = hashCombine(h, g.ampLog2);
        h = hashCombine(h, g.phase);
        h = hashCombine(h, g.rowOffset);
    }
    return h;
}

std::string
HammerPattern::describe() const
{
    return strFormat("pattern{id=%llx, pairs=%u, period=%zu%s}",
                     static_cast<unsigned long long>(patternId), nPairs,
                     slotSeq.size(), hasGenome() ? ", genome" : "");
}

} // namespace rho
