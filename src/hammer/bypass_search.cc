#include "hammer/bypass_search.hh"

namespace rho
{

std::vector<MitigationConfig>
mitigationFrontier()
{
    std::vector<MitigationConfig> frontier;

    // DDR4 baseline: the probabilistic sampler alone. Non-uniform
    // fuzzing finds patterns that evade it (paper Table 6).
    {
        MitigationConfig c;
        c.name = "trr-only";
        frontier.push_back(c);
    }

    for (RfmLevel level :
         {RfmLevel::Relaxed, RfmLevel::Default, RfmLevel::Strict}) {
        MitigationConfig c;
        c.name = std::string("rfm-") + rfmLevelName(level);
        c.rfm = RfmConfig::forLevel(level);
        frontier.push_back(c);
    }

    // Deliberately weak PRAC: the threshold sits above the weakest
    // cells' flip threshold, so the exact counters fire too late and
    // fuzzing can still find flips. Included so the bench demonstrates
    // that PRAC's guarantee is conditional on correct provisioning.
    {
        MitigationConfig c;
        c.name = "prac-weak";
        c.prac.enabled = true;
        c.prac.threshold = 8192;
        frontier.push_back(c);
    }

    // Correctly provisioned PRAC: threshold well below the minimum
    // hammer count, so no row can accumulate a flipping disturbance
    // between ALERT services.
    {
        MitigationConfig c;
        c.name = "prac-512";
        c.prac.enabled = true;
        c.prac.threshold = 512;
        frontier.push_back(c);
    }

    // Belt and braces: strict RFM plus provisioned PRAC.
    {
        MitigationConfig c;
        c.name = "rfm-strict+prac";
        c.rfm = RfmConfig::forLevel(RfmLevel::Strict);
        c.prac.enabled = true;
        c.prac.threshold = 512;
        frontier.push_back(c);
    }

    return frontier;
}

BypassReport
bypassSearch(Arch arch, const DimmProfile &dimm, const HammerConfig &cfg,
             const std::vector<MitigationConfig> &frontier,
             const BypassParams &params, MetricsRegistry *metrics)
{
    BypassReport report;
    report.configs.reserve(frontier.size());

    for (const MitigationConfig &mit : frontier) {
        SystemSpec spec(arch, dimm, mit.trr, mit.rfm);
        spec.prac = mit.prac;

        FuzzParams fuzz = params.fuzz;
        // One journal file per frontier point: the journal header
        // carries a single campaign key, so sharing one file across
        // configurations would discard the previous configuration's
        // records on every switch.
        if (!fuzz.checkpointPath.empty())
            fuzz.checkpointPath += "." + mit.name;

        MetricsRegistry local;
        BypassConfigResult r;
        r.name = mit.name;
        r.fuzz = fuzzCampaign(spec, cfg, fuzz, params.seed, nullptr,
                              &local);
        r.acts = local.value("dram.acts");
        r.trrRefreshes = local.value("dram.refreshes.trr");
        r.rfmCommands = local.value("dram.refreshes.rfm");
        r.pracAlerts = local.value("dram.alerts.prac");
        r.bypassed = r.fuzz.totalFlips > 0;
        if (r.fuzz.simTimeNs > 0.0) {
            r.flipsPerMinute = static_cast<double>(r.fuzz.totalFlips)
                / (r.fuzz.simTimeNs / 6.0e10);
        }

        if (metrics) {
            metrics->merge(local);
            const std::string p = "bypass." + mit.name + ".";
            metrics->set(p + "flips", r.fuzz.totalFlips);
            metrics->set(p + "effective_patterns",
                         r.fuzz.effectivePatterns);
            metrics->set(p + "rfm_commands", r.rfmCommands);
            metrics->set(p + "prac_alerts", r.pracAlerts);
            metrics->set(p + "bypassed", r.bypassed ? 1 : 0);
        }
        report.configs.push_back(std::move(r));
    }
    return report;
}

} // namespace rho
