#include "hammer/bypass_search.hh"

#include "common/logging.hh"
#include "common/table.hh"

namespace rho
{

const char *
bypassEngineName(BypassEngine engine)
{
    switch (engine) {
      case BypassEngine::Blind: return "blind";
      case BypassEngine::Evolved: return "evolved";
    }
    return "unknown";
}

std::vector<MitigationConfig>
mitigationFrontier()
{
    std::vector<MitigationConfig> frontier;

    // DDR4 baseline: the probabilistic sampler alone. Non-uniform
    // fuzzing finds patterns that evade it (paper Table 6).
    {
        MitigationConfig c;
        c.name = "trr-only";
        frontier.push_back(c);
    }

    for (RfmLevel level :
         {RfmLevel::Relaxed, RfmLevel::Default, RfmLevel::Strict}) {
        MitigationConfig c;
        c.name = std::string("rfm-") + rfmLevelName(level);
        c.rfm = RfmConfig::forLevel(level);
        frontier.push_back(c);
    }

    // Deliberately weak PRAC: the threshold sits above the weakest
    // cells' flip threshold, so the exact counters fire too late and
    // fuzzing can still find flips. Included so the bench demonstrates
    // that PRAC's guarantee is conditional on correct provisioning.
    {
        MitigationConfig c;
        c.name = "prac-weak";
        c.prac.enabled = true;
        c.prac.threshold = 8192;
        frontier.push_back(c);
    }

    // Correctly provisioned PRAC: threshold well below the minimum
    // hammer count, so no row can accumulate a flipping disturbance
    // between ALERT services.
    {
        MitigationConfig c;
        c.name = "prac-512";
        c.prac.enabled = true;
        c.prac.threshold = 512;
        frontier.push_back(c);
    }

    // Belt and braces: strict RFM plus provisioned PRAC.
    {
        MitigationConfig c;
        c.name = "rfm-strict+prac";
        c.rfm = RfmConfig::forLevel(RfmLevel::Strict);
        c.prac.enabled = true;
        c.prac.threshold = 512;
        frontier.push_back(c);
    }

    return frontier;
}

BypassReport
bypassSearch(Arch arch, const DimmProfile &dimm, const HammerConfig &cfg,
             const std::vector<MitigationConfig> &frontier,
             const BypassParams &params, MetricsRegistry *metrics)
{
    BypassReport report;
    report.configs.reserve(frontier.size());

    for (const MitigationConfig &mit : frontier) {
        SystemSpec spec(arch, dimm, mit.trr, mit.rfm);
        spec.prac = mit.prac;

        MetricsRegistry local;
        BypassConfigResult r;
        r.name = mit.name;
        if (params.engine == BypassEngine::Blind) {
            FuzzParams fuzz = params.fuzz;
            // One journal file per frontier point: the journal header
            // carries a single campaign key, so sharing one file
            // across configurations would discard the previous
            // configuration's records on every switch.
            if (!fuzz.checkpointPath.empty())
                fuzz.checkpointPath += "." + mit.name;
            r.fuzz = fuzzCampaign(spec, cfg, fuzz, params.seed, nullptr,
                                  &local);
            r.trialsRun = r.fuzz.failure == FailureCode::None
                              ? params.fuzz.numPatterns
                              : 0;
        } else {
            EvoParams evo = params.evo;
            if (!evo.checkpointPath.empty())
                evo.checkpointPath += "." + mit.name;
            EvoResult er = evolvedFuzzCampaign(spec, cfg, evo,
                                               params.seed, nullptr,
                                               &local);
            // Project into the FuzzResult shape so callers (and the
            // comparison tests) read both engines uniformly.
            r.fuzz.totalFlips = er.totalFlips;
            r.fuzz.bestPatternFlips = er.bestPatternFlips;
            r.fuzz.bestPattern = std::move(er.bestPattern);
            r.fuzz.effectivePatterns = er.effectivePatterns;
            r.fuzz.unplaceablePatterns = er.unplaceablePatterns;
            r.fuzz.simTimeNs = er.simTimeNs;
            r.fuzz.dramAccesses = er.dramAccesses;
            r.fuzz.failure = er.failure;
            r.fuzz.failureReason = er.failureReason;
            r.trialsRun = er.trialsRun;
            r.generationBestFlips = std::move(er.bestFlipsPerGeneration);
        }
        if (r.fuzz.failure != FailureCode::None &&
            report.failure == FailureCode::None) {
            report.failure = r.fuzz.failure;
            report.failureReason =
                mit.name + ": " + r.fuzz.failureReason;
        }
        r.acts = local.value("dram.acts");
        r.trrRefreshes = local.value("dram.refreshes.trr");
        r.rfmCommands = local.value("dram.refreshes.rfm");
        r.pracAlerts = local.value("dram.alerts.prac");
        r.bypassed = r.fuzz.totalFlips > 0;
        if (r.fuzz.simTimeNs > 0.0) {
            r.flipsPerMinute = static_cast<double>(r.fuzz.totalFlips)
                / (r.fuzz.simTimeNs / 6.0e10);
        }

        if (metrics) {
            metrics->merge(local);
            const std::string p = "bypass." + mit.name + ".";
            metrics->set(p + "flips", r.fuzz.totalFlips);
            metrics->set(p + "effective_patterns",
                         r.fuzz.effectivePatterns);
            metrics->set(p + "rfm_commands", r.rfmCommands);
            metrics->set(p + "prac_alerts", r.pracAlerts);
            metrics->set(p + "bypassed", r.bypassed ? 1 : 0);
        }
        report.configs.push_back(std::move(r));
    }
    return report;
}

std::string
renderBypassBoundary(const BypassReport &blind,
                     const BypassReport &evolved)
{
    if (blind.configs.size() != evolved.configs.size())
        panic("renderBypassBoundary: reports cover different frontiers");

    TextTable table({"config", "blind flips", "blind best", "evo flips",
                     "evo best", "evo curve", "RFMs", "ALERTn",
                     "verdict"});
    for (std::size_t i = 0; i < blind.configs.size(); ++i) {
        const BypassConfigResult &b = blind.configs[i];
        const BypassConfigResult &e = evolved.configs[i];
        if (b.name != e.name)
            panic("renderBypassBoundary: config order mismatch (%s vs "
                  "%s)",
                  b.name.c_str(), e.name.c_str());

        std::string curve;
        for (std::uint64_t f : e.generationBestFlips) {
            if (!curve.empty())
                curve += "-";
            curve += strFormat("%llu", (unsigned long long)f);
        }
        if (curve.empty())
            curve = "n/a";

        const char *verdict;
        if (b.bypassed && e.bypassed)
            verdict = "open";
        else if (e.bypassed)
            verdict = "evo-only";
        else if (b.bypassed)
            verdict = "blind-only";
        else
            verdict = "sealed";

        table.addRow(
            {b.name,
             strFormat("%llu", (unsigned long long)b.fuzz.totalFlips),
             strFormat("%llu",
                       (unsigned long long)b.fuzz.bestPatternFlips),
             strFormat("%llu", (unsigned long long)e.fuzz.totalFlips),
             strFormat("%llu",
                       (unsigned long long)e.fuzz.bestPatternFlips),
             curve, strFormat("%llu", (unsigned long long)e.rfmCommands),
             strFormat("%llu", (unsigned long long)e.pracAlerts),
             verdict});
    }
    return table.render();
}

} // namespace rho
