#include "hammer/ref_sync.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hh"
#include "memsys/memory_system.hh"

namespace rho
{

namespace
{

double
medianOf(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

} // namespace

Ns
RefSyncEstimate::nextSafeStart(Ns now) const
{
    if (!detected || period <= 0.0)
        return now;
    // Next boundary strictly after `now`, then past the blocked
    // window plus a small guard for estimate error.
    double k = std::ceil((now - lastBoundary) / period);
    if (k < 1.0)
        k = 1.0;
    return lastBoundary + k * period + blockNs + 0.02 * period;
}

RefSyncEstimate
RefSyncDetector::detect(unsigned probes)
{
    RefSyncEstimate est;
    const AddressMapping &map = sys.mapping();

    // Two same-bank rows far enough apart to never share a buffer:
    // every access is a row conflict, so the latency baseline is flat
    // and a REF stall stands out by hundreds of ns.
    PhysAddr a = map.rowToPhys(0, 64);
    PhysAddr b = map.rowToPhys(0, 96);

    std::vector<double> lats(probes);
    std::vector<Ns> stamps(probes);
    for (unsigned i = 0; i < probes; ++i) {
        PhysAddr pa = (i & 1) ? b : a;
        stamps[i] = sys.now();
        Ns lat = sys.dramAccess(pa, sys.now());
        lats[i] = lat;
        sys.advance(lat);
    }

    double med = medianOf(lats);
    std::vector<double> dev(probes);
    for (unsigned i = 0; i < probes; ++i)
        dev[i] = std::abs(lats[i] - med);
    double mad = medianOf(dev);
    // Row-conflict jitter is a few ns; a REF stall is ~tRFC. The gate
    // keeps a generous floor so a perfectly flat train (mad == 0 on
    // non-blocking platforms) does not divide by zero into noise.
    double gate = med + std::max(8.0 * mad, 40.0);

    std::vector<Ns> spike_times;
    for (unsigned i = 0; i < probes; ++i) {
        if (lats[i] > gate) {
            spike_times.push_back(stamps[i]);
            est.blockNs = std::max(est.blockNs, lats[i] - med);
        }
    }
    est.spikes = static_cast<unsigned>(spike_times.size());
    if (spike_times.size() < 3)
        return est;

    std::vector<double> gaps;
    for (std::size_t i = 1; i < spike_times.size(); ++i)
        gaps.push_back(spike_times[i] - spike_times[i - 1]);
    double period = medianOf(gaps);
    if (period < 500.0 || period > 1e6)
        return est; // not a refresh cadence

    est.detected = true;
    est.period = period;
    est.lastBoundary = spike_times.back();
    return est;
}

void
RefSyncDetector::align(MemorySystem &sys, const RefSyncEstimate &est)
{
    if (!est.detected)
        return;
    Ns target = est.nextSafeStart(sys.now());
    if (target > sys.now())
        sys.advance(target - sys.now());
}

} // namespace rho
