#include "cpu/kernel.hh"

#include "common/logging.hh"

namespace rho
{

std::uint32_t
HammerKernel::lineIdFor(PhysAddr pa)
{
    PhysAddr line = lineOf(pa);
    auto [it, inserted] = lineIds.try_emplace(
        line, static_cast<std::uint32_t>(lineAddrs.size()));
    if (inserted)
        lineAddrs.push_back(line);
    return it->second;
}

void
HammerKernel::pushMem(OpKind kind, PhysAddr pa)
{
    if (!isMemRead(kind) && kind != OpKind::ClFlushOpt)
        panic("HammerKernel::pushMem: %s is not a memory op",
              opKindName(kind).c_str());
    ops.push_back({kind, lineIdFor(pa), 1});
}

void
HammerKernel::pushNops(std::uint32_t count)
{
    if (count == 0)
        return;
    ops.push_back({OpKind::NopRun, 0, count});
}

std::uint64_t
HammerKernel::memReadsPerPeriod() const
{
    std::uint64_t n = 0;
    for (const Op &op : ops) {
        if (isMemRead(op.kind))
            ++n;
    }
    return n;
}

std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Load: return "load";
      case OpKind::PrefetchT0: return "prefetcht0";
      case OpKind::PrefetchT1: return "prefetcht1";
      case OpKind::PrefetchT2: return "prefetcht2";
      case OpKind::PrefetchNta: return "prefetchnta";
      case OpKind::ClFlushOpt: return "clflushopt";
      case OpKind::NopRun: return "nop";
      case OpKind::Lfence: return "lfence";
      case OpKind::Mfence: return "mfence";
      case OpKind::Cpuid: return "cpuid";
      case OpKind::BranchObf: return "branch.obf";
      case OpKind::BranchLoop: return "branch.loop";
      case OpKind::AluDep: return "alu";
    }
    panic("opKindName: bad kind");
}

} // namespace rho
