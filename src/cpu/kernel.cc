#include "cpu/kernel.hh"

#include "common/logging.hh"
#include "cpu/arch_params.hh"

namespace rho
{

std::uint32_t
HammerKernel::lineIdFor(PhysAddr pa)
{
    PhysAddr line = lineOf(pa);
    auto [it, inserted] = lineIds.try_emplace(
        line, static_cast<std::uint32_t>(lineAddrs.size()));
    if (inserted)
        lineAddrs.push_back(line);
    return it->second;
}

void
HammerKernel::pushMem(OpKind kind, PhysAddr pa)
{
    if (!isMemRead(kind) && kind != OpKind::ClFlushOpt)
        panic("HammerKernel::pushMem: %s is not a memory op",
              opKindName(kind).c_str());
    ops.push_back({kind, lineIdFor(pa), 1});
}

void
HammerKernel::pushNops(std::uint32_t count)
{
    if (count == 0)
        return;
    ops.push_back({OpKind::NopRun, 0, count});
}

std::uint64_t
HammerKernel::memReadsPerPeriod() const
{
    std::uint64_t n = 0;
    for (const Op &op : ops) {
        if (isMemRead(op.kind))
            ++n;
    }
    return n;
}

std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Load: return "load";
      case OpKind::PrefetchT0: return "prefetcht0";
      case OpKind::PrefetchT1: return "prefetcht1";
      case OpKind::PrefetchT2: return "prefetcht2";
      case OpKind::PrefetchNta: return "prefetchnta";
      case OpKind::ClFlushOpt: return "clflushopt";
      case OpKind::NopRun: return "nop";
      case OpKind::Lfence: return "lfence";
      case OpKind::Mfence: return "mfence";
      case OpKind::Cpuid: return "cpuid";
      case OpKind::BranchObf: return "branch.obf";
      case OpKind::BranchLoop: return "branch.loop";
      case OpKind::AluDep: return "alu";
    }
    panic("opKindName: bad kind");
}

std::string
opKindMnemonic(OpKind kind, Isa isa)
{
    if (isa == Isa::X86)
        return opKindName(kind);
    switch (kind) {
      case OpKind::Load: return "ldr";
      case OpKind::PrefetchT0: return "prfm pldl1keep";
      case OpKind::PrefetchT1: return "prfm pldl2keep";
      case OpKind::PrefetchT2: return "prfm pldl3keep";
      case OpKind::PrefetchNta: return "prfm pldl1strm";
      case OpKind::ClFlushOpt: return "dc civac";
      case OpKind::NopRun: return "nop";
      case OpKind::Lfence: return "dsb ld";
      case OpKind::Mfence: return "dsb sy";
      case OpKind::Cpuid: return "mrs midr_el1";
      case OpKind::BranchObf: return "b.obf";
      case OpKind::BranchLoop: return "b.loop";
      case OpKind::AluDep: return "eor";
    }
    panic("opKindMnemonic: bad kind");
}

} // namespace rho
