/**
 * @file
 * Hammer-kernel representation: the instruction stream a hammering
 * strategy executes, at the abstraction level the timing model needs.
 *
 * A kernel is one period of the attack loop; SimCpu replays it until
 * an access budget is exhausted. Memory operands are interned into
 * dense "line ids" at build time so the cache model can use flat
 * arrays in the hot path.
 */

#ifndef RHO_CPU_KERNEL_HH
#define RHO_CPU_KERNEL_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace rho
{

/** Modelled instruction kinds. */
enum class OpKind : std::uint8_t
{
    Load,        //!< MOV from memory
    PrefetchT0,
    PrefetchT1,
    PrefetchT2,
    PrefetchNta,
    ClFlushOpt,
    NopRun,      //!< `count` consecutive NOPs (modelled as a block)
    Lfence,
    Mfence,
    Cpuid,
    BranchObf,   //!< control-flow-obfuscated branch (rdrand-derived)
    BranchLoop,  //!< well-predicted loop back-edge
    AluDep,      //!< dependent ALU op (index arithmetic)
};

/** @return true iff k is one of the four PREFETCHh hints. */
constexpr bool
isPrefetch(OpKind k)
{
    return k == OpKind::PrefetchT0 || k == OpKind::PrefetchT1 ||
           k == OpKind::PrefetchT2 || k == OpKind::PrefetchNta;
}

/** @return true iff k reads memory (load or prefetch). */
constexpr bool
isMemRead(OpKind k)
{
    return k == OpKind::Load || isPrefetch(k);
}

/** One modelled instruction. */
struct Op
{
    OpKind kind;
    std::uint32_t line = 0;  //!< interned cache-line id (mem ops)
    std::uint32_t count = 1; //!< repeat count (NopRun)
};

/** How hammer/flush operands are addressed (paper section 4.2). */
enum class AddressingMode : std::uint8_t
{
    CppIndexed,   //!< aggr_row_addrs[idx]: loop-carried dependency
    JitImmediate, //!< unrolled immediates: no dependency chain
};

/**
 * One period of a hammer loop plus the line-id to physical-address
 * interning table.
 */
class HammerKernel
{
  public:
    explicit HammerKernel(AddressingMode mode = AddressingMode::CppIndexed)
        : addrMode(mode)
    {
    }

    AddressingMode mode() const { return addrMode; }

    /** Intern an address; returns its dense line id. */
    std::uint32_t lineIdFor(PhysAddr pa);

    /** Physical address of a line id. */
    PhysAddr addrOf(std::uint32_t line) const { return lineAddrs[line]; }

    std::uint32_t numLines() const { return lineAddrs.size(); }

    void push(Op op) { ops.push_back(op); }
    void pushMem(OpKind kind, PhysAddr pa);
    void pushNops(std::uint32_t count);

    const std::vector<Op> &body() const { return ops; }

    /** Number of memory-read ops (hammer attempts) per period. */
    std::uint64_t memReadsPerPeriod() const;

  private:
    AddressingMode addrMode;
    std::vector<Op> ops;
    std::vector<PhysAddr> lineAddrs;
    std::unordered_map<PhysAddr, std::uint32_t> lineIds;
};

/** Display name for an op kind ("load", "prefetchnta", ...). */
std::string opKindName(OpKind kind);

enum class Isa; // cpu/arch_params.hh

/**
 * ISA-specific mnemonic for an op kind: the kernel op kinds are
 * ISA-neutral, and the same kernel assembles to CLFLUSHOPT/PREFETCHh/
 * LFENCE on x86 or DC CIVAC/PRFM/DSB on ARMv8 (used by kernel dumps
 * and the backend documentation tables).
 */
std::string opKindMnemonic(OpKind kind, Isa isa);

} // namespace rho

#endif // RHO_CPU_KERNEL_HH
