/**
 * @file
 * Branch prediction model: gshare pattern history table plus a direct
 * mapped branch target buffer.
 *
 * The counter-speculation technique (paper section 4.4) defeats both
 * structures with runtime-randomized multi-way control flow: the PHT
 * cannot learn a rdrand-derived direction and the BTB keeps being
 * retrained across the randomized targets. Here those branches are
 * fed genuinely random outcomes, so the mispredict rate is an emergent
 * property of the predictor, not a configured constant.
 */

#ifndef RHO_CPU_BRANCH_PREDICTOR_HH
#define RHO_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace rho
{

/** gshare + BTB predictor. */
class BranchPredictor
{
  public:
    BranchPredictor(unsigned pht_bits = 12, unsigned btb_bits = 10);

    /**
     * Predict and then resolve one branch.
     *
     * @param pc static identity of the branch instruction.
     * @param taken actual direction.
     * @param target actual target identity (0 for fall-through).
     * @return true iff the branch was mispredicted (direction or
     *         target).
     */
    bool predictAndUpdate(std::uint64_t pc, bool taken,
                          std::uint64_t target);

    void reset();

    std::uint64_t lookups() const { return nLookups; }
    std::uint64_t mispredicts() const { return nMispredicts; }

  private:
    unsigned phtMask, btbMask;
    std::vector<std::uint8_t> pht;  //!< 2-bit saturating counters
    struct BtbEntry
    {
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb;
    std::uint64_t history = 0;
    std::uint64_t nLookups = 0;
    std::uint64_t nMispredicts = 0;
};

} // namespace rho

#endif // RHO_CPU_BRANCH_PREDICTOR_HH
