/**
 * @file
 * Branch prediction model: gshare pattern history table plus a direct
 * mapped branch target buffer.
 *
 * The counter-speculation technique (paper section 4.4) defeats both
 * structures with runtime-randomized multi-way control flow: the PHT
 * cannot learn a rdrand-derived direction and the BTB keeps being
 * retrained across the randomized targets. Here those branches are
 * fed genuinely random outcomes, so the mispredict rate is an emergent
 * property of the predictor, not a configured constant.
 */

#ifndef RHO_CPU_BRANCH_PREDICTOR_HH
#define RHO_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace rho
{

/** gshare + BTB predictor. */
class BranchPredictor
{
  public:
    BranchPredictor(unsigned pht_bits = 12, unsigned btb_bits = 10);

    /**
     * Predict and then resolve one branch.
     *
     * @param pc static identity of the branch instruction.
     * @param taken actual direction.
     * @param target actual target identity (0 for fall-through).
     * @return true iff the branch was mispredicted (direction or
     *         target).
     */
    // Defined here so both engines inline it, and written with select
    // arithmetic instead of control flow: `taken` is rdrand-derived in
    // the obfuscated-branch workload, so any host branch on it (or on
    // anything derived from it) mispredicts at the full random rate.
    // The modeled predictor state machine is unchanged — each select
    // computes exactly the value the original if/else produced.
    bool
    predictAndUpdate(std::uint64_t pc, bool taken, std::uint64_t target)
    {
        ++nLookups;

        unsigned pht_idx = static_cast<unsigned>(
            (splitMix64(pc) ^ history) & phtMask);
        std::uint8_t ctr = pht[pht_idx];
        bool predicted_taken = ctr >= 2;

        unsigned btb_idx = static_cast<unsigned>(splitMix64(pc) & btbMask);
        BtbEntry &be = btb[btb_idx];
        bool target_hit = be.valid & (be.tag == pc) & (be.target == target);

        // taken: miss iff direction or target was wrong; not taken:
        // miss iff predicted taken.
        bool mispredict = taken ? !(predicted_taken & target_hit)
                                : predicted_taken;

        // Update: saturating 2-bit counter moves toward the outcome;
        // the BTB (re)learns the target only on taken branches.
        std::uint8_t up = ctr + (ctr < 3);
        std::uint8_t down = ctr - (ctr > 0);
        pht[pht_idx] = taken ? up : down;
        be.tag = taken ? pc : be.tag;
        be.target = taken ? target : be.target;
        be.valid = be.valid | taken;
        history = ((history << 1) | (taken ? 1 : 0)) & phtMask;

        nMispredicts += mispredict;
        return mispredict;
    }

    void reset();

    std::uint64_t lookups() const { return nLookups; }
    std::uint64_t mispredicts() const { return nMispredicts; }

  private:
    unsigned phtMask, btbMask;
    std::vector<std::uint8_t> pht;  //!< 2-bit saturating counters
    struct BtbEntry
    {
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb;
    std::uint64_t history = 0;
    std::uint64_t nLookups = 0;
    std::uint64_t nMispredicts = 0;
};

} // namespace rho

#endif // RHO_CPU_BRANCH_PREDICTOR_HH
