/**
 * @file
 * Hardware-performance-counter style statistics emitted by SimCpu,
 * mirroring what the paper measures via Linux perf (e.g. the
 * L1-dcache-load-misses event over the hammer loop).
 */

#ifndef RHO_CPU_PERF_COUNTERS_HH
#define RHO_CPU_PERF_COUNTERS_HH

#include <cstdint>

#include "common/types.hh"

namespace rho
{

/** Counters accumulated over one SimCpu::run. */
struct PerfCounters
{
    std::uint64_t memReads = 0;        //!< load + prefetch ops issued
    std::uint64_t dramAccesses = 0;    //!< reads that reached DRAM
    std::uint64_t cacheHits = 0;       //!< served by a (stale) line
    std::uint64_t pfQueueDrops = 0;    //!< prefetch dropped, queue full
    std::uint64_t flushes = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t nops = 0;
    Ns timeNs = 0.0;                   //!< simulated wall time

    /** L1-dcache-load-miss rate over the hammer loop. */
    double
    missRate() const
    {
        return memReads
            ? static_cast<double>(dramAccesses) / memReads
            : 0.0;
    }

    /** DRAM activations per second of simulated time. */
    double
    dramAccessRate() const
    {
        return timeNs > 0.0 ? dramAccesses / (timeNs * 1e-9) : 0.0;
    }
};

} // namespace rho

#endif // RHO_CPU_PERF_COUNTERS_HH
