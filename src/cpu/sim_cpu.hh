/**
 * @file
 * Instruction-granular timing model of a speculative x86 core running
 * a hammer kernel.
 *
 * The model captures exactly the micro-architectural interactions the
 * paper's analysis rests on:
 *
 *  - Loads occupy load-queue/ROB entries until their data returns and
 *    hold a fill buffer for the full fill-to-use path, throttling their
 *    activation rate.
 *  - Prefetches retire at issue (asynchronous); their requests use a
 *    shallow queue + the fill buffers, and are silently dropped when
 *    the line is (still) present, a fill is in flight, or the request
 *    queue is full.
 *  - CLFLUSHOPT completes asynchronously and is unordered with respect
 *    to prefetches: an access issued before a same-line flush completes
 *    hits the stale line and performs no DRAM activation (Fig. 7).
 *  - The "C++ indexed" addressing mode carries a loop dependency that
 *    spaces memory ops out; newer cores speculate most of that chain
 *    away (depChainBreakFactor), compressing issue times and making
 *    the disorder worse (Alder/Raptor Lake).
 *  - LFENCE waits for older loads (and the address-generation loads of
 *    the indexed mode) and blocks younger execution; it does NOT order
 *    prefetch fills. CPUID serializes everything. NOP runs consume
 *    dispatch bandwidth/ROB slots, spacing accesses without waiting.
 *  - Obfuscated branches are resolved against a real gshare/BTB model
 *    fed random outcomes; each mispredict is a pipeline flush that
 *    re-serializes the front end.
 */

#ifndef RHO_CPU_SIM_CPU_HH
#define RHO_CPU_SIM_CPU_HH

#include <deque>
#include <vector>

#include "common/rng.hh"
#include "cpu/arch_params.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/cache_model.hh"
#include "cpu/kernel.hh"
#include "cpu/perf_counters.hh"
#include "trace/tracer.hh"

namespace rho
{

/** Interface the CPU model uses to reach DRAM. */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /**
     * Perform a timed DRAM read of the line containing pa.
     * @return the access latency in ns.
     */
    virtual Ns dramAccess(PhysAddr pa, Ns now) = 0;
};

/** The core model. One instance per (arch, experiment). */
class SimCpu
{
  public:
    SimCpu(const ArchParams &params, std::uint64_t seed);

    /**
     * Replay the kernel until mem_read_budget hammer attempts (loads
     * or prefetches) have been issued.
     *
     * @param start_ns simulated time at entry (the DRAM refresh
     *        machinery is phase-sensitive, so callers maintain a
     *        global clock).
     */
    PerfCounters run(const HammerKernel &kernel, MemoryBackend &mem,
                     std::uint64_t mem_read_budget, Ns start_ns = 0.0);

    const ArchParams &params() const { return arch; }

    /**
     * Attach a tracer (nullptr detaches) for retire/stall/cache/
     * prefetch events (category Cpu — off in CatDefault; these are
     * the highest-volume events in the system). Tracing never draws
     * randomness or advances time.
     */
    void setTracer(Tracer *t) { tracer = t; }

  private:
    // One pass over the kernel body; returns false when budget hit.
    void execOp(const Op &op, const HammerKernel &kernel,
                MemoryBackend &mem, std::uint64_t op_index);

    Ns cyc(double cycles) const { return cycles / arch.freqGhz; }

    // Fill-buffer pool: returns the grant time for a new entry.
    Ns lfbAcquire(Ns t);
    void lfbRelease(Ns release_at);

    void robPush(Ns completion);
    void stallTo(Ns ready, std::uint32_t resource);

    Ns dram(MemoryBackend &mem, PhysAddr pa, Ns t);

    const ArchParams &arch;
    Rng rng;
    BranchPredictor bp;

    // Per-run state.
    CacheModel cache{0};
    std::vector<Ns> lfb;          //!< min-heap of release times
    std::deque<Ns> pfQueue;       //!< grant times of queued prefetches
    std::deque<Ns> loadQueue;     //!< completion times (FIFO)
    std::deque<Ns> storeBuffer;   //!< flush completion times (FIFO)
    std::deque<Ns> rob;           //!< completion times (FIFO)
    Ns now = 0.0;
    Ns lastMemIssue = -1e18;
    Ns lastLoadComplete = 0.0;
    Ns lastAddrLoadComplete = 0.0;
    Ns lastFlushDone = 0.0;
    Ns lastFillDone = 0.0;
    Ns lastRobRetire = 0.0;
    Ns lastLoadRetire = 0.0;
    Ns lastDramTime = 0.0;
    Ns lastLoadGrant = -1e18;
    Ns lastPfGrant = -1e18;
    PerfCounters ctr;
    std::uint64_t budget = 0;
    Tracer *tracer = nullptr;
};

} // namespace rho

#endif // RHO_CPU_SIM_CPU_HH
