/**
 * @file
 * Instruction-granular timing model of a speculative x86 core running
 * a hammer kernel.
 *
 * The model captures exactly the micro-architectural interactions the
 * paper's analysis rests on:
 *
 *  - Loads occupy load-queue/ROB entries until their data returns and
 *    hold a fill buffer for the full fill-to-use path, throttling their
 *    activation rate.
 *  - Prefetches retire at issue (asynchronous); their requests use a
 *    shallow queue + the fill buffers, and are silently dropped when
 *    the line is (still) present, a fill is in flight, or the request
 *    queue is full.
 *  - CLFLUSHOPT completes asynchronously and is unordered with respect
 *    to prefetches: an access issued before a same-line flush completes
 *    hits the stale line and performs no DRAM activation (Fig. 7).
 *  - The "C++ indexed" addressing mode carries a loop dependency that
 *    spaces memory ops out; newer cores speculate most of that chain
 *    away (depChainBreakFactor), compressing issue times and making
 *    the disorder worse (Alder/Raptor Lake).
 *  - LFENCE waits for older loads (and the address-generation loads of
 *    the indexed mode) and blocks younger execution; it does NOT order
 *    prefetch fills. CPUID serializes everything. NOP runs consume
 *    dispatch bandwidth/ROB slots, spacing accesses without waiting.
 *  - Obfuscated branches are resolved against a real gshare/BTB model
 *    fed random outcomes; each mispredict is a pipeline flush that
 *    re-serializes the front end.
 *
 * Two engines implement these semantics:
 *
 *  - CpuModelKind::Reference walks the kernel body op by op through
 *    execOp(), re-deriving every cost each time. It is the original
 *    engine, kept as the correctness oracle.
 *  - CpuModelKind::Blocked (default) compiles the body once per run
 *    into a BlockPlan (pre-divided costs, pre-resolved DRAM line
 *    handles, branch sites) and replays it from flat ring buffers,
 *    dropping to per-event handling only where state matters: cache
 *    occupancy, fill-buffer contention, branch mispredicts, the DRAM
 *    access itself, and the attached tracer.
 *
 * The engines are bit-identical — same counters (including the
 * floating-point clock), same DRAM command stream, same trace, same
 * randomness consumption. tests/test_cpu_oracle.cc and the property
 * suite pin this differentially.
 */

#ifndef RHO_CPU_SIM_CPU_HH
#define RHO_CPU_SIM_CPU_HH

#include <cstddef>
#include <deque>
#include <vector>

#include "common/rng.hh"
#include "cpu/arch_params.hh"
#include "cpu/block_plan.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/cache_model.hh"
#include "cpu/kernel.hh"
#include "cpu/perf_counters.hh"
#include "cpu/replay_rng.hh"
#include "trace/tracer.hh"

namespace rho
{

/** Interface the CPU model uses to reach DRAM. */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /**
     * Perform a timed DRAM read of the line containing pa.
     * @return the access latency in ns.
     */
    virtual Ns dramAccess(PhysAddr pa, Ns now) = 0;

    /**
     * Pre-resolve the line containing pa into an opaque handle that
     * dramAccessResolved() accepts in place of the address, letting
     * the backend skip per-access address decode for a working set
     * that is fixed over a run (a hammer kernel's is). The handle must
     * stay valid for the backend's lifetime.
     *
     * @return the handle, or nullptr when this backend has no
     *         resolved fast path (callers then use dramAccess).
     */
    virtual const void *resolveLine(PhysAddr pa)
    {
        (void)pa;
        return nullptr;
    }

    /**
     * dramAccess() for a handle obtained from resolveLine(). Must be
     * observably identical to dramAccess(pa, now) for the resolved
     * address. Only called with handles this backend returned.
     */
    virtual Ns dramAccessResolved(const void *handle, Ns now);
};

/**
 * Which replay engine SimCpu uses. Observable behaviour is identical;
 * Blocked is the fast path, Reference the original per-op
 * implementation kept as a differential-testing oracle (mirrors
 * RowStoreKind on the DRAM side).
 */
enum class CpuModelKind : std::uint8_t
{
    Blocked,   //!< compiled BlockPlan replay, ring-buffer state
    Reference  //!< original op-by-op interpreter
};

/** The core model. One instance per (arch, experiment). */
class SimCpu
{
  public:
    SimCpu(const ArchParams &params, std::uint64_t seed,
           CpuModelKind model = CpuModelKind::Blocked);

    /**
     * Replay the kernel until mem_read_budget hammer attempts (loads
     * or prefetches) have been issued.
     *
     * @param start_ns simulated time at entry (the DRAM refresh
     *        machinery is phase-sensitive, so callers maintain a
     *        global clock).
     */
    PerfCounters run(const HammerKernel &kernel, MemoryBackend &mem,
                     std::uint64_t mem_read_budget, Ns start_ns = 0.0);

    const ArchParams &params() const { return arch; }

    /** Engine selection; takes effect at the next run(). */
    void setModel(CpuModelKind k) { kind = k; }
    CpuModelKind model() const { return kind; }

    /**
     * Attach a tracer (nullptr detaches) for retire/stall/cache/
     * prefetch events (category Cpu — off in CatDefault; these are
     * the highest-volume events in the system). Tracing never draws
     * randomness or advances time.
     */
    void setTracer(Tracer *t) { tracer = t; }

  private:
    /**
     * Power-of-two ring buffer of timestamps: the Blocked engine's
     * replacement for the reference deques (load queue, store buffer,
     * ROB, prefetch queue). Capacity is fixed at init; the replay
     * loop's own occupancy checks bound the size, so push never
     * overwrites.
     */
    struct TimeRing
    {
        std::vector<Ns> buf;
        std::size_t mask = 0;
        std::size_t head = 0;
        std::size_t count = 0;

        void init(std::size_t capacity);
        void clear() { head = count = 0; }
        bool empty() const { return count == 0; }
        std::size_t size() const { return count; }
        Ns front() const { return buf[head & mask]; }
        Ns back() const { return buf[(head + count - 1) & mask]; }
        void pushBack(Ns v) { buf[(head + count++) & mask] = v; }
        void popFront()
        {
            ++head;
            --count;
        }
    };

    // One pass over the kernel body; returns false when budget hit.
    void execOp(const Op &op, const HammerKernel &kernel,
                MemoryBackend &mem, std::uint64_t op_index);

    /**
     * Blocked engine: replay the compiled plan until the budget is
     * hit. Specialized on tracer presence (Traced=false drops every
     * emission guard) and addressing mode (Indexed=false drops the
     * dependency-chain updates from all memory ops).
     */
    template <bool Traced, bool Indexed>
    void replayBlocked(MemoryBackend &mem);

    /**
     * Fresh micro-architectural state for one run(): empties both
     * engines' queue state, resets the predictor and counters, and
     * re-bases the clocks on start_ns. Deliberately does NOT reseed
     * the rng — randomness is a per-experiment stream that spans runs
     * (TRR-evasion trials depend on it). Pinned by the back-to-back
     * determinism regression in tests/test_cpu.cc.
     */
    void resetRunState(const HammerKernel &kernel,
                       std::uint64_t mem_read_budget, Ns start_ns);

    Ns cyc(double cycles) const { return cycles / arch.freqGhz; }

    // Fill-buffer pool: returns the grant time for a new entry.
    Ns lfbAcquire(Ns t);
    void lfbRelease(Ns release_at);

    // Blocked-engine fill-buffer pool: same multiset of release times
    // as the reference heap, kept as a flat array (lfbSize <= 16, so a
    // min scan beats heap maintenance).
    Ns lfbAcquireFlat(Ns t);
    void lfbReleaseFlat(Ns release_at) { lfbFlat[lfbCount++] = release_at; }

    void robPush(Ns completion);
    void stallTo(Ns ready, std::uint32_t resource);

    Ns dram(MemoryBackend &mem, PhysAddr pa, Ns t);

    const ArchParams &arch;
    CpuModelKind kind;
    Rng rng;
    ReplayRng rrng; //!< Blocked engine's view of rng (synced per run)
    BranchPredictor bp;
    BlockPlan plan; //!< Blocked engine's compiled body (reused storage)

    // Per-run state (reference engine).
    CacheModel cache{0};
    std::vector<Ns> lfb;          //!< min-heap of release times
    std::deque<Ns> pfQueue;       //!< grant times of queued prefetches
    std::deque<Ns> loadQueue;     //!< completion times (FIFO)
    std::deque<Ns> storeBuffer;   //!< flush completion times (FIFO)
    std::deque<Ns> rob;           //!< completion times (FIFO)

    // Per-run state (blocked engine): flat mirrors of the above.
    std::vector<Ns> lfbFlat;
    std::size_t lfbCount = 0;
    TimeRing pfRing;
    TimeRing lqRing;
    TimeRing sbRing;
    TimeRing robRing;

    // Per-run state (shared).
    Ns now = 0.0;
    Ns lastMemIssue = -1e18;
    Ns lastLoadComplete = 0.0;
    Ns lastAddrLoadComplete = 0.0;
    Ns lastFlushDone = 0.0;
    Ns lastFillDone = 0.0;
    Ns lastRobRetire = 0.0;
    Ns lastLoadRetire = 0.0;
    Ns lastDramTime = 0.0;
    Ns lastLoadGrant = -1e18;
    Ns lastPfGrant = -1e18;
    PerfCounters ctr;
    std::uint64_t budget = 0;
    Tracer *tracer = nullptr;
};

} // namespace rho

#endif // RHO_CPU_SIM_CPU_HH
