/**
 * @file
 * Micro-architectural parameter sets for the four evaluated Intel
 * cores (paper Table 1). Values are representative of public
 * documentation; what matters for the reproduction is the *relative*
 * evolution across generations: wider front-ends, larger windows and
 * more aggressive speculation from Comet Lake to Raptor Lake.
 */

#ifndef RHO_CPU_ARCH_PARAMS_HH
#define RHO_CPU_ARCH_PARAMS_HH

#include <string>

#include "common/types.hh"
#include "mapping/mapping_presets.hh"

namespace rho
{

/** Tunable core model parameters. */
struct ArchParams
{
    std::string name;
    double freqGhz;

    // Pipeline resources.
    unsigned fetchWidth;   //!< ops dispatched per cycle
    unsigned robSize;
    unsigned lqSize;       //!< load queue entries
    unsigned lfbSize;      //!< L1 line fill buffers (MSHRs)
    unsigned pfQueueSize;  //!< software prefetch request queue depth
    /**
     * Store-buffer / flush-queue entries. CLFLUSHOPT holds one until
     * its eviction completes, so this bounds how far the front end
     * (and thus speculative prefetch probes) can run ahead of memory
     * reality. Bigger buffers on newer cores = deeper run-ahead =
     * worse prefetch disorder.
     */
    unsigned sbSize;

    // Speculation behaviour.
    /**
     * How much of the address-generation dependency chain survives on
     * this core (1.0 = the full chain serializes memory ops; newer
     * cores predict/disambiguate it away almost entirely).
     */
    double depChainBreakFactor;
    double mispredictPenaltyCyc;
    double branchResolveCyc;

    // Cache / memory path costs.
    double l1HitCyc;
    double addrGenLatencyCyc;  //!< per-op chain latency ("C++" primitive)
    Ns flushLatencyNs;   //!< clflushopt issue-to-line-evicted latency
    Ns loadExtraNs;      //!< load fill-to-use + LFB hold beyond DRAM
    Ns prefetchExtraT0Ns; //!< extra fill time for all-level prefetch
    Ns prefetchExtraNs;  //!< extra fill time for T1/T2/NTA

    /**
     * Minimum spacing between demand-load misses entering the memory
     * subsystem (MSHR allocate + replay + TLB overheads). This is why
     * single-threaded loads cannot saturate DRAM bandwidth while
     * prefetches, with their much smaller footprint, can (paper 4.5).
     */
    Ns loadIssueOccupancyNs;
    Ns prefetchIssueOccupancyNs;

    /**
     * Residual speculative disorder at the memory interface: with this
     * probability a CLFLUSHOPT's completion is delayed by
     * flushJitterNs (weakly-ordered flush stuck behind speculative
     * traffic), so the next same-line access still hits. Grows
     * sharply on Alder/Raptor Lake and cannot be fenced away.
     */
    double flushJitterProb;
    Ns flushJitterNs;

    // Instruction costs (cycles).
    double nopCyc;        //!< effective dispatch cost of one NOP
    double aluCyc;
    double obfOverheadCyc; //!< rdrand/rdtscp + mixing per obf. branch
    double lfenceCyc;      //!< drain + pipeline restart (fence waited)
    /**
     * Issue cost of an LFENCE that finds no older loads pending (the
     * no-wait path): the fence dispatches and retires without draining
     * anything, so it costs only its own execution latency — per-arch,
     * and far below the drain+restart cost above.
     */
    double lfenceIssueCyc;
    double mfenceCyc;
    double cpuidCyc;

    /** Preset for one of the four paper machines. */
    static const ArchParams &forArch(Arch arch);
};

} // namespace rho

#endif // RHO_CPU_ARCH_PARAMS_HH
