/**
 * @file
 * Micro-architectural parameter sets for the evaluated cores: the four
 * Intel generations of paper Table 1 plus the AMD Zen 3 and ARMv8
 * Cortex-A72 backends (ROADMAP item 1). Values are representative of
 * public documentation; what matters for the reproduction is the
 * *relative* evolution across generations: wider front-ends, larger
 * windows and more aggressive speculation from Comet Lake to Raptor
 * Lake, and the Cortex-A72's synchronous DC CIVAC flushes at the other
 * extreme.
 */

#ifndef RHO_CPU_ARCH_PARAMS_HH
#define RHO_CPU_ARCH_PARAMS_HH

#include <string>

#include "common/types.hh"
#include "mapping/mapping_presets.hh"

namespace rho
{

/**
 * Instruction-set surface a core exposes to the hammer kernels. The
 * kernel op kinds are ISA-neutral (a "flush" is CLFLUSHOPT on x86 and
 * DC CIVAC on ARMv8); the ISA selects mnemonics and, through the
 * params below, the ops' ordering semantics and costs.
 */
enum class Isa
{
    X86,   //!< CLFLUSHOPT / PREFETCHh / LFENCE-MFENCE
    Armv8, //!< DC CIVAC / PRFM / DSB-DMB
};

/** Tunable core model parameters. */
struct ArchParams
{
    std::string name;
    Isa isa = Isa::X86;
    double freqGhz;

    // Pipeline resources.
    unsigned fetchWidth;   //!< ops dispatched per cycle
    unsigned robSize;
    unsigned lqSize;       //!< load queue entries
    unsigned lfbSize;      //!< L1 line fill buffers (MSHRs)
    unsigned pfQueueSize;  //!< software prefetch request queue depth
    /**
     * Store-buffer / flush-queue entries. CLFLUSHOPT holds one until
     * its eviction completes, so this bounds how far the front end
     * (and thus speculative prefetch probes) can run ahead of memory
     * reality. Bigger buffers on newer cores = deeper run-ahead =
     * worse prefetch disorder.
     */
    unsigned sbSize;

    // Speculation behaviour.
    /**
     * How much of the address-generation dependency chain survives on
     * this core (1.0 = the full chain serializes memory ops; newer
     * cores predict/disambiguate it away almost entirely).
     */
    double depChainBreakFactor;
    double mispredictPenaltyCyc;
    double branchResolveCyc;

    // Cache / memory path costs.
    double l1HitCyc;
    double addrGenLatencyCyc;  //!< per-op chain latency ("C++" primitive)
    Ns flushLatencyNs;   //!< clflushopt issue-to-line-evicted latency
    Ns loadExtraNs;      //!< load fill-to-use + LFB hold beyond DRAM
    Ns prefetchExtraT0Ns; //!< extra fill time for all-level prefetch
    Ns prefetchExtraNs;  //!< extra fill time for T1/T2/NTA

    /**
     * Minimum spacing between demand-load misses entering the memory
     * subsystem (MSHR allocate + replay + TLB overheads). This is why
     * single-threaded loads cannot saturate DRAM bandwidth while
     * prefetches, with their much smaller footprint, can (paper 4.5).
     */
    Ns loadIssueOccupancyNs;
    Ns prefetchIssueOccupancyNs;

    /**
     * Residual speculative disorder at the memory interface: with this
     * probability a CLFLUSHOPT's completion is delayed by
     * flushJitterNs (weakly-ordered flush stuck behind speculative
     * traffic), so the next same-line access still hits. Grows
     * sharply on Alder/Raptor Lake and cannot be fenced away.
     */
    double flushJitterProb;
    Ns flushJitterNs;

    /**
     * Synchronous flush semantics: ARMv8's DC CIVAC + DSB sequence
     * completes the clean-and-invalidate before the next instruction
     * issues, so the core waits for the eviction instead of letting it
     * drain through the store buffer. x86 CLFLUSHOPT is weakly ordered
     * (false here); the asynchronous drain is what prefetch-disorder
     * attacks exploit.
     */
    bool flushSynchronous = false;

    // Instruction costs (cycles).
    double nopCyc;        //!< effective dispatch cost of one NOP
    double aluCyc;
    double obfOverheadCyc; //!< rdrand/rdtscp + mixing per obf. branch
    double lfenceCyc;      //!< drain + pipeline restart (fence waited)
    /**
     * Issue cost of an LFENCE that finds no older loads pending (the
     * no-wait path): the fence dispatches and retires without draining
     * anything, so it costs only its own execution latency — per-arch,
     * and far below the drain+restart cost above.
     */
    double lfenceIssueCyc;
    double mfenceCyc;
    double cpuidCyc;

    /** Preset for one of the modelled machines (see RHO_ARCH_LIST). */
    static const ArchParams &forArch(Arch arch);
};

} // namespace rho

#endif // RHO_CPU_ARCH_PARAMS_HH
