/**
 * @file
 * Blocked CPU-model replay plan: one hammer-kernel body decoded and
 * pre-resolved into a flat op array so SimCpu's Blocked engine can
 * replay its timing effects millions of times without re-deriving
 * anything per op.
 *
 * The reference engine re-computes, on every executed op: the
 * cycle-to-ns conversions (one FP divide per cyc() call, several per
 * memory op), the kernel's addressing mode, the line-id to physical
 * address translation, and — through MemoryBackend::dramAccess — the
 * GF(2) physical-to-DRAM address decode. All of that is static over a
 * run, so compile() hoists it into the plan once:
 *
 *  - every cycle cost becomes a pre-divided Ns delta,
 *  - every memory op carries its physical address and (when the
 *    backend offers one) a pre-decoded line handle,
 *  - the addressing-mode dependency and the flush-jitter gate become
 *    plan-wide flags the replay loop specializes on.
 *
 * Bit-identity contract: a delta is the *same* floating-point
 * expression the reference engine evaluates, hoisted — never
 * algebraically rewritten (FP addition does not associate, so e.g.
 * consecutive NOP-run deltas are NOT fused). Replay therefore performs
 * the identical arithmetic in the identical order and produces
 * byte-identical counters, timestamps and DRAM command streams; the
 * differential oracle in tests/test_cpu_oracle.cc pins this.
 */

#ifndef RHO_CPU_BLOCK_PLAN_HH
#define RHO_CPU_BLOCK_PLAN_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "cpu/arch_params.hh"
#include "cpu/kernel.hh"

namespace rho
{

class MemoryBackend;

/**
 * Replay dispatch code. Collapses the four PREFETCHh hints into one
 * code (the hint only selects a pre-resolved fill delta) and keeps
 * state-dependent ops (branches, fences, flushes, memory) distinct so
 * the replay switch stays branch-predictable.
 */
enum class PlanCode : std::uint8_t
{
    Nop,
    Alu,
    Lfence,
    Mfence,
    Cpuid,
    BranchObf,
    BranchLoop,
    Flush,
    Load,
    Prefetch,
    // A NOP run fused with the memory op that follows it (the shape
    // every NOP-barrier hammer kernel has, ~2 of 3.5 ops per access).
    // The pair replays as the same two clock additions the unfused ops
    // perform — fusion removes a dispatch round-trip, never an FP add.
    // Only compiled when untraced (the run's InstrRetire event needs
    // its own emission point). d1 holds the NOP-run delta and count
    // the NOP count; the memory fields keep their usual meaning.
    NopFlush,
    NopLoad,
    NopPrefetch,
};

/**
 * One pre-resolved op. `d0`/`d1` are kind-specific pre-divided Ns
 * deltas (see compile()); `handle` is the backend's resolved line for
 * memory ops, or nullptr when the backend has no resolved fast path.
 */
struct PlanOp
{
    PlanCode code = PlanCode::Nop;
    OpKind rawKind = OpKind::NopRun; //!< original kind (trace payload)
    std::uint32_t line = 0;          //!< interned cache-line id
    std::uint32_t count = 1;         //!< repeat count (Nop/Alu runs)
    std::uint32_t opIndex = 0;       //!< body position (branch identity)
    PhysAddr pa = 0;                 //!< resolved physical address
    const void *handle = nullptr;    //!< pre-decoded line (may be null)
    Ns d0 = 0.0;
    Ns d1 = 0.0;
};

/** A compiled kernel body plus the plan-wide pre-resolved constants. */
class BlockPlan
{
  public:
    /**
     * Decode `kernel`'s body against `arch`. Cheap (linear in the
     * body, which is a few hundred ops) next to the millions of
     * replays a run performs, so callers recompile per run instead of
     * caching across kernels. Reuses this plan's storage.
     *
     * @param fuse_nop_runs fold each NOP run into the memory op that
     *        follows it (NopFlush/NopLoad/NopPrefetch). Pass false for
     *        traced runs, which need the run's own retire event.
     */
    void compile(const HammerKernel &kernel, const ArchParams &arch,
                 bool fuse_nop_runs);

    /**
     * Ask `mem` to pre-resolve every distinct line the plan touches
     * (MemoryBackend::resolveLine). Backends without a resolved fast
     * path leave the handles null and replay falls back to the
     * pa-based dramAccess — same behaviour, decode re-done per access.
     */
    void resolveLines(MemoryBackend &mem);

    const std::vector<PlanOp> &body() const { return ops; }

    // Plan-wide pre-resolved state (public: the replay engine is the
    // only consumer and reads them in its hottest loop).
    std::vector<PlanOp> ops;
    bool indexed = false;          //!< AddressingMode::CppIndexed
    bool flushJitterGated = false; //!< arch.flushJitterProb > 0
    Ns fetchDelta = 0.0;           //!< cyc(1 / fetchWidth)
    Ns addrGenDelta = 0.0;         //!< cyc(addrGen * depChainBreak)
    Ns l1HitDelta = 0.0;           //!< cyc(l1HitCyc)
    Ns robIssueDelta = 0.0;        //!< cyc(1.0): retire-at-issue cost
};

} // namespace rho

#endif // RHO_CPU_BLOCK_PLAN_HH
