#include "cpu/block_plan.hh"

#include "cpu/sim_cpu.hh"

namespace rho
{

void
BlockPlan::compile(const HammerKernel &kernel, const ArchParams &arch,
                   bool fuse_nop_runs)
{
    // Identical expression to SimCpu::cyc — the deltas below must be
    // the same doubles the reference engine computes per op.
    auto cyc = [&arch](double cycles) { return cycles / arch.freqGhz; };

    indexed = kernel.mode() == AddressingMode::CppIndexed;
    flushJitterGated = arch.flushJitterProb > 0.0;
    fetchDelta = cyc(1.0 / arch.fetchWidth);
    addrGenDelta = cyc(arch.addrGenLatencyCyc * arch.depChainBreakFactor);
    l1HitDelta = cyc(arch.l1HitCyc);
    robIssueDelta = cyc(1.0);

    const std::vector<Op> &body = kernel.body();
    ops.clear();
    ops.reserve(body.size());
    for (std::size_t i = 0; i < body.size(); ++i) {
        const Op &o = body[i];
        PlanOp p;
        p.rawKind = o.kind;
        p.line = o.line;
        p.count = o.count;
        p.opIndex = static_cast<std::uint32_t>(i);
        switch (o.kind) {
          case OpKind::NopRun:
            p.code = PlanCode::Nop;
            p.d0 = cyc(arch.nopCyc) * o.count;
            break;
          case OpKind::AluDep:
            p.code = PlanCode::Alu;
            p.d0 = cyc(arch.aluCyc) * o.count;
            break;
          case OpKind::Lfence:
            p.code = PlanCode::Lfence;
            p.d0 = cyc(arch.lfenceCyc);
            p.d1 = cyc(arch.lfenceIssueCyc);
            break;
          case OpKind::Mfence:
            p.code = PlanCode::Mfence;
            p.d0 = cyc(arch.mfenceCyc);
            break;
          case OpKind::Cpuid:
            p.code = PlanCode::Cpuid;
            p.d0 = cyc(arch.cpuidCyc);
            break;
          case OpKind::BranchObf:
            p.code = PlanCode::BranchObf;
            p.d0 = cyc(arch.obfOverheadCyc);
            p.d1 = cyc(arch.branchResolveCyc + arch.mispredictPenaltyCyc);
            break;
          case OpKind::BranchLoop:
            p.code = PlanCode::BranchLoop;
            p.d0 = cyc(0.25);
            p.d1 = cyc(arch.branchResolveCyc + arch.mispredictPenaltyCyc);
            break;
          case OpKind::ClFlushOpt:
            p.code = PlanCode::Flush;
            break;
          case OpKind::Load:
            p.code = PlanCode::Load;
            p.pa = kernel.addrOf(o.line);
            break;
          case OpKind::PrefetchT0:
          case OpKind::PrefetchT1:
          case OpKind::PrefetchT2:
          case OpKind::PrefetchNta:
            p.code = PlanCode::Prefetch;
            p.pa = kernel.addrOf(o.line);
            // Hint-dependent fill extra, selected once here.
            p.d0 = o.kind == OpKind::PrefetchT0 ? arch.prefetchExtraT0Ns
                                                : arch.prefetchExtraNs;
            break;
        }
        // Fuse a NOP run into the memory op that follows it: replace
        // the pending Nop and retag this op, moving the run's delta
        // into d1 (unused by memory ops) and its count into count.
        // The replay case performs the identical two clock additions;
        // only the dispatch merges. Never fuses across the period
        // boundary (the Nop would prefix the wrong op on wrap).
        if (fuse_nop_runs && !ops.empty() && i > 0
            && ops.back().code == PlanCode::Nop
            && (p.code == PlanCode::Flush || p.code == PlanCode::Load
                || p.code == PlanCode::Prefetch)) {
            PlanOp nop = ops.back();
            ops.pop_back();
            p.d1 = nop.d0;
            p.count = nop.count;
            p.code = p.code == PlanCode::Flush ? PlanCode::NopFlush
                : p.code == PlanCode::Load     ? PlanCode::NopLoad
                                               : PlanCode::NopPrefetch;
        }
        ops.push_back(p);
    }
}

void
BlockPlan::resolveLines(MemoryBackend &mem)
{
    // resolveLine memoizes per backend, so repeated lines cost one
    // hash lookup each; a backend without a resolved path returns
    // nullptr and replay uses the plain pa-based access.
    for (PlanOp &p : ops) {
        if (p.code == PlanCode::Load || p.code == PlanCode::Prefetch
            || p.code == PlanCode::NopLoad
            || p.code == PlanCode::NopPrefetch)
            p.handle = mem.resolveLine(p.pa);
    }
}

} // namespace rho
