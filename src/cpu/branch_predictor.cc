#include "cpu/branch_predictor.hh"

#include <algorithm>

#include "common/rng.hh"

namespace rho
{

BranchPredictor::BranchPredictor(unsigned pht_bits, unsigned btb_bits)
    : phtMask((1u << pht_bits) - 1), btbMask((1u << btb_bits) - 1),
      pht((1u << pht_bits), 1), btb(1u << btb_bits)
{
}

void
BranchPredictor::reset()
{
    std::fill(pht.begin(), pht.end(), 1);
    std::fill(btb.begin(), btb.end(), BtbEntry{});
    history = 0;
    nLookups = 0;
    nMispredicts = 0;
}

bool
BranchPredictor::predictAndUpdate(std::uint64_t pc, bool taken,
                                  std::uint64_t target)
{
    ++nLookups;

    unsigned pht_idx = static_cast<unsigned>(
        (splitMix64(pc) ^ history) & phtMask);
    bool predicted_taken = pht[pht_idx] >= 2;

    unsigned btb_idx = static_cast<unsigned>(splitMix64(pc) & btbMask);
    BtbEntry &be = btb[btb_idx];
    bool target_hit = be.valid && be.tag == pc && be.target == target;

    bool mispredict;
    if (taken) {
        mispredict = !predicted_taken || !target_hit;
    } else {
        mispredict = predicted_taken;
    }

    // Update.
    if (taken) {
        if (pht[pht_idx] < 3)
            ++pht[pht_idx];
        be = {pc, target, true};
    } else if (pht[pht_idx] > 0) {
        --pht[pht_idx];
    }
    history = ((history << 1) | (taken ? 1 : 0)) & phtMask;

    if (mispredict)
        ++nMispredicts;
    return mispredict;
}

} // namespace rho
