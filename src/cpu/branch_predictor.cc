#include "cpu/branch_predictor.hh"

#include <algorithm>

namespace rho
{

BranchPredictor::BranchPredictor(unsigned pht_bits, unsigned btb_bits)
    : phtMask((1u << pht_bits) - 1), btbMask((1u << btb_bits) - 1),
      pht((1u << pht_bits), 1), btb(1u << btb_bits)
{
}

void
BranchPredictor::reset()
{
    std::fill(pht.begin(), pht.end(), 1);
    std::fill(btb.begin(), btb.end(), BtbEntry{});
    history = 0;
    nLookups = 0;
    nMispredicts = 0;
}

} // namespace rho
