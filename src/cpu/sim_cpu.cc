#include "cpu/sim_cpu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rho
{

SimCpu::SimCpu(const ArchParams &params, std::uint64_t seed)
    : arch(params), rng(seed)
{
}

Ns
SimCpu::lfbAcquire(Ns t)
{
    if (lfb.size() < arch.lfbSize)
        return t;
    std::pop_heap(lfb.begin(), lfb.end(), std::greater<>());
    Ns earliest = lfb.back();
    lfb.pop_back();
    return std::max(t, earliest);
}

void
SimCpu::lfbRelease(Ns release_at)
{
    lfb.push_back(release_at);
    std::push_heap(lfb.begin(), lfb.end(), std::greater<>());
}

// Advance `now` to `ready` because a back-end resource (0 = ROB,
// 1 = load queue, 2 = store buffer) is full; traces the stall when it
// actually costs time.
void
SimCpu::stallTo(Ns ready, std::uint32_t resource)
{
    if (ready > now) {
        RHO_TRACE(tracer, now, EventKind::InstrStall, 0, resource, 0,
                  traceBits(ready - now));
        now = ready;
    }
}

void
SimCpu::robPush(Ns completion)
{
    if (rob.size() >= arch.robSize) {
        // In-order retirement: the head must commit before a new slot
        // frees up; commits cannot reorder, so retire time is monotone.
        lastRobRetire = std::max(lastRobRetire, rob.front());
        rob.pop_front();
        stallTo(lastRobRetire, 0);
    }
    rob.push_back(completion);
}

Ns
SimCpu::dram(MemoryBackend &mem, PhysAddr pa, Ns t)
{
    // The controller sees a monotone command stream.
    lastDramTime = std::max(lastDramTime, t);
    return mem.dramAccess(pa, lastDramTime);
}

PerfCounters
SimCpu::run(const HammerKernel &kernel, MemoryBackend &mem,
            std::uint64_t mem_read_budget, Ns start_ns)
{
    // Fresh micro-architectural state; lines start uncached (the
    // attack flushes its working set before hammering).
    cache = CacheModel(kernel.numLines());
    lfb.clear();
    pfQueue.clear();
    loadQueue.clear();
    storeBuffer.clear();
    rob.clear();
    bp.reset();
    now = start_ns;
    lastMemIssue = -1e18;
    lastLoadComplete = lastAddrLoadComplete = 0.0;
    lastFlushDone = lastFillDone = 0.0;
    lastRobRetire = lastLoadRetire = 0.0;
    lastDramTime = start_ns;
    lastLoadGrant = lastPfGrant = -1e18;
    ctr = PerfCounters{};
    budget = mem_read_budget;

    const auto &body = kernel.body();
    if (body.empty() || kernel.memReadsPerPeriod() == 0)
        fatal("SimCpu::run: kernel has no memory reads");

    bool done = false;
    while (!done) {
        for (std::uint64_t i = 0; i < body.size(); ++i) {
            execOp(body[i], kernel, mem, i);
            if (ctr.memReads >= budget) {
                done = true;
                break;
            }
        }
    }

    ctr.timeNs = now - start_ns;
    return ctr;
}

void
SimCpu::execOp(const Op &op, const HammerKernel &kernel, MemoryBackend &mem,
               std::uint64_t op_index)
{
    bool indexed = kernel.mode() == AddressingMode::CppIndexed;

    switch (op.kind) {
      case OpKind::NopRun:
        // A run of NOPs occupies dispatch bandwidth (and transiently
        // ROB slots); its only effect is to space later ops out.
        now += cyc(arch.nopCyc) * op.count;
        ctr.nops += op.count;
        RHO_TRACE(tracer, now, EventKind::InstrRetire, 0,
                  static_cast<std::uint32_t>(op.kind), 0, op.count);
        return;

      case OpKind::AluDep:
        now += cyc(arch.aluCyc) * op.count;
        RHO_TRACE(tracer, now, EventKind::InstrRetire, 0,
                  static_cast<std::uint32_t>(op.kind), 0, op.count);
        return;

      case OpKind::Lfence: {
        // Waits for older loads (including the address-generation
        // loads of the indexed primitive) and blocks younger
        // execution. Does not wait for prefetch fills, so with
        // immediate (JIT) addressing and a pure prefetch stream it
        // retires almost immediately and orders nothing.
        Ns ready = std::max(lastLoadComplete, lastAddrLoadComplete);
        if (ready > now)
            now = ready + cyc(arch.lfenceCyc); // wait + restart
        else
            now += cyc(arch.lfenceIssueCyc); // nothing to drain
        return;
      }

      case OpKind::Mfence: {
        Ns ready = std::max({lastLoadComplete, lastAddrLoadComplete,
                             lastFlushDone});
        now = std::max(now + cyc(arch.mfenceCyc), ready);
        return;
      }

      case OpKind::Cpuid: {
        // Fully serializing: even prefetch fills must land first.
        Ns ready = std::max({lastLoadComplete, lastAddrLoadComplete,
                             lastFlushDone, lastFillDone});
        now = std::max(now + cyc(arch.cpuidCyc), ready);
        return;
      }

      case OpKind::BranchObf: {
        ++ctr.branches;
        now += cyc(arch.obfOverheadCyc);
        // rdrand-derived direction and one of 8 dispatch targets: the
        // predictor cannot learn either.
        bool taken = rng.chance(0.5);
        std::uint64_t target = taken ? 1 + rng.uniformInt(0, 7) : 0;
        bool miss = bp.predictAndUpdate(0x4000 + op_index, taken, target);
        if (miss) {
            ++ctr.branchMispredicts;
            now += cyc(arch.branchResolveCyc + arch.mispredictPenaltyCyc);
            RHO_TRACE(tracer, now, EventKind::PipelineFlush, 0, 1,
                      op_index, 0);
        }
        return;
      }

      case OpKind::BranchLoop: {
        ++ctr.branches;
        now += cyc(0.25);
        bool miss = bp.predictAndUpdate(0x8000 + op_index, true,
                                        /*target=*/1);
        if (miss) {
            ++ctr.branchMispredicts;
            now += cyc(arch.branchResolveCyc + arch.mispredictPenaltyCyc);
            RHO_TRACE(tracer, now, EventKind::PipelineFlush, 0, 0,
                      op_index, 0);
        }
        return;
      }

      case OpKind::ClFlushOpt: {
        now += cyc(1.0 / arch.fetchWidth);
        Ns issue = now;
        if (indexed) {
            issue = std::max(issue, lastMemIssue
                + cyc(arch.addrGenLatencyCyc * arch.depChainBreakFactor));
            lastAddrLoadComplete = std::max(lastAddrLoadComplete,
                                            issue + cyc(arch.l1HitCyc));
        }
        ++ctr.flushes;
        // Residual speculative disorder: occasionally the weakly
        // ordered flush is delayed far beyond its nominal latency and
        // the next same-line access still hits the stale line. This
        // cannot be fenced or NOP-padded away, and is the dominant
        // effect on Alder/Raptor Lake.
        Ns flush_lat = arch.flushLatencyNs;
        if (arch.flushJitterProb > 0.0 && rng.chance(arch.flushJitterProb))
            flush_lat += arch.flushJitterNs;
        Ns done = cache.recordFlush(op.line, issue, flush_lat);
        if (done >= 0.0) {
            lastFlushDone = std::max(lastFlushDone, done);
            // The flush holds a store-buffer entry until it completes;
            // a full buffer stalls dispatch, pacing the front end to
            // memory reality.
            if (storeBuffer.size() >= arch.sbSize) {
                stallTo(storeBuffer.front(), 2);
                storeBuffer.pop_front();
            }
            storeBuffer.push_back(done);
        }
        robPush(issue + cyc(1.0));
        lastMemIssue = std::max(lastMemIssue, issue);
        return;
      }

      case OpKind::Load:
      case OpKind::PrefetchT0:
      case OpKind::PrefetchT1:
      case OpKind::PrefetchT2:
      case OpKind::PrefetchNta:
        break; // handled below
    }

    // Memory read (load or prefetch).
    now += cyc(1.0 / arch.fetchWidth);
    Ns issue = now;
    if (indexed) {
        issue = std::max(issue, lastMemIssue
            + cyc(arch.addrGenLatencyCyc * arch.depChainBreakFactor));
        lastAddrLoadComplete = std::max(lastAddrLoadComplete,
                                        issue + cyc(arch.l1HitCyc));
    }
    ++ctr.memReads;
    PhysAddr pa = kernel.addrOf(op.line);

    if (op.kind == OpKind::Load) {
        Ns completion;
        if (cache.presentOrInFlight(op.line, issue)) {
            ++ctr.cacheHits;
            RHO_TRACE(tracer, issue, EventKind::CacheHit, 0, 0, pa, 0);
            completion = std::max(issue, cache.fillDone(op.line))
                + cyc(arch.l1HitCyc);
        } else {
            RHO_TRACE(tracer, issue, EventKind::CacheMiss, 0, 0, pa, 0);
            // Demand misses enter the memory subsystem with a minimum
            // spacing; this is what keeps single-threaded loads from
            // saturating DRAM bandwidth.
            Ns grant = lfbAcquire(std::max(
                issue, lastLoadGrant + arch.loadIssueOccupancyNs));
            lastLoadGrant = grant;
            Ns lat = dram(mem, pa, grant);
            completion = grant + lat + arch.loadExtraNs;
            // Loads hold their fill buffer for the full fill-to-use
            // path (fill into L1 + forwarding), unlike prefetches.
            lfbRelease(completion);
            cache.recordFill(op.line, completion);
            ++ctr.dramAccesses;
            lastFillDone = std::max(lastFillDone, completion);
        }
        if (loadQueue.size() >= arch.lqSize) {
            lastLoadRetire = std::max(lastLoadRetire, loadQueue.front());
            loadQueue.pop_front();
            stallTo(lastLoadRetire, 1);
        }
        loadQueue.push_back(completion);
        robPush(completion);
        lastLoadComplete = std::max(lastLoadComplete, completion);
    } else {
        // Prefetch: retires as soon as the address resolves.
        robPush(issue + cyc(1.0));
        if (cache.presentOrInFlight(op.line, issue)) {
            // Hint ignored: line present or still being flushed/filled.
            ++ctr.cacheHits;
            RHO_TRACE(tracer, issue, EventKind::CacheHit, 1, 0, pa, 0);
        } else {
            while (!pfQueue.empty() && pfQueue.front() <= issue)
                pfQueue.pop_front();
            if (pfQueue.size() >= arch.pfQueueSize) {
                ++ctr.pfQueueDrops;
                RHO_TRACE(tracer, issue, EventKind::PrefetchDrop, 0, 0,
                          pa, 0);
            } else {
                Ns base = pfQueue.empty()
                    ? issue : std::max(issue, pfQueue.back());
                base = std::max(base,
                    lastPfGrant + arch.prefetchIssueOccupancyNs);
                Ns grant = lfbAcquire(base);
                lastPfGrant = grant;
                Ns lat = dram(mem, pa, grant);
                Ns extra = op.kind == OpKind::PrefetchT0
                    ? arch.prefetchExtraT0Ns : arch.prefetchExtraNs;
                Ns fill_done = grant + lat + extra;
                lfbRelease(fill_done);
                cache.recordFill(op.line, fill_done);
                pfQueue.push_back(grant);
                ++ctr.dramAccesses;
                RHO_TRACE(tracer, grant, EventKind::PrefetchIssue, 0, 0,
                          pa, 0);
                lastFillDone = std::max(lastFillDone, fill_done);
            }
        }
    }
    lastMemIssue = std::max(lastMemIssue, issue);
}

} // namespace rho
