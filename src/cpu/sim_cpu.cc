#include "cpu/sim_cpu.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace rho
{

Ns
MemoryBackend::dramAccessResolved(const void *handle, Ns now)
{
    (void)handle;
    (void)now;
    fatal("MemoryBackend::dramAccessResolved: backend returned a resolved "
          "handle but does not implement the resolved access path");
}

SimCpu::SimCpu(const ArchParams &params, std::uint64_t seed,
               CpuModelKind model)
    : arch(params), kind(model), rng(seed)
{
    // Blocked-engine ring capacities are bounded by the occupancy
    // checks in the replay loop (an entry is popped before a push once
    // the limit is reached), so the next power of two is enough.
    pfRing.init(arch.pfQueueSize);
    lqRing.init(arch.lqSize);
    sbRing.init(arch.sbSize);
    robRing.init(arch.robSize);
    lfbFlat.resize(arch.lfbSize);
}

void
SimCpu::TimeRing::init(std::size_t capacity)
{
    std::size_t cap = std::bit_ceil(std::max<std::size_t>(capacity, 1));
    buf.assign(cap, 0.0);
    mask = cap - 1;
    head = count = 0;
}

Ns
SimCpu::lfbAcquire(Ns t)
{
    if (lfb.size() < arch.lfbSize)
        return t;
    std::pop_heap(lfb.begin(), lfb.end(), std::greater<>());
    Ns earliest = lfb.back();
    lfb.pop_back();
    return std::max(t, earliest);
}

void
SimCpu::lfbRelease(Ns release_at)
{
    lfb.push_back(release_at);
    std::push_heap(lfb.begin(), lfb.end(), std::greater<>());
}

// Same contract as lfbAcquire against the flat pool: when the pool is
// full, evict the earliest release time. Ties pick a different (equal)
// element than the heap would — the returned value is identical.
Ns
SimCpu::lfbAcquireFlat(Ns t)
{
    if (lfbCount < arch.lfbSize)
        return t;
    std::size_t min_i = 0;
    for (std::size_t i = 1; i < lfbCount; ++i) {
        if (lfbFlat[i] < lfbFlat[min_i])
            min_i = i;
    }
    Ns earliest = lfbFlat[min_i];
    lfbFlat[min_i] = lfbFlat[--lfbCount];
    return std::max(t, earliest);
}

// Advance `now` to `ready` because a back-end resource (0 = ROB,
// 1 = load queue, 2 = store buffer) is full; traces the stall when it
// actually costs time.
void
SimCpu::stallTo(Ns ready, std::uint32_t resource)
{
    if (ready > now) {
        RHO_TRACE(tracer, now, EventKind::InstrStall, 0, resource, 0,
                  traceBits(ready - now));
        now = ready;
    }
}

void
SimCpu::robPush(Ns completion)
{
    if (rob.size() >= arch.robSize) {
        // In-order retirement: the head must commit before a new slot
        // frees up; commits cannot reorder, so retire time is monotone.
        lastRobRetire = std::max(lastRobRetire, rob.front());
        rob.pop_front();
        stallTo(lastRobRetire, 0);
    }
    rob.push_back(completion);
}

Ns
SimCpu::dram(MemoryBackend &mem, PhysAddr pa, Ns t)
{
    // The controller sees a monotone command stream.
    lastDramTime = std::max(lastDramTime, t);
    return mem.dramAccess(pa, lastDramTime);
}

void
SimCpu::resetRunState(const HammerKernel &kernel,
                      std::uint64_t mem_read_budget, Ns start_ns)
{
    // Fresh micro-architectural state; lines start uncached (the
    // attack flushes its working set before hammering).
    cache = CacheModel(kernel.numLines());
    lfb.clear();
    pfQueue.clear();
    loadQueue.clear();
    storeBuffer.clear();
    rob.clear();
    lfbCount = 0;
    pfRing.clear();
    lqRing.clear();
    sbRing.clear();
    robRing.clear();
    bp.reset();
    now = start_ns;
    lastMemIssue = -1e18;
    lastLoadComplete = lastAddrLoadComplete = 0.0;
    lastFlushDone = lastFillDone = 0.0;
    lastRobRetire = lastLoadRetire = 0.0;
    lastDramTime = start_ns;
    lastLoadGrant = lastPfGrant = -1e18;
    ctr = PerfCounters{};
    budget = mem_read_budget;
}

PerfCounters
SimCpu::run(const HammerKernel &kernel, MemoryBackend &mem,
            std::uint64_t mem_read_budget, Ns start_ns)
{
    const auto &body = kernel.body();
    if (body.empty() || kernel.memReadsPerPeriod() == 0)
        fatal("SimCpu::run: kernel has no memory reads");

    resetRunState(kernel, mem_read_budget, start_ns);

    // A zero budget is satisfied before any memory op runs; the
    // reference loop's after-every-op check then stops after exactly
    // one op. The blocked loop only checks at memory ops (the only
    // sites where memReads changes), so route that edge to the
    // reference engine instead of carrying per-op checks for it.
    if (kind == CpuModelKind::Reference || budget == 0) {
        bool done = false;
        while (!done) {
            for (std::uint64_t i = 0; i < body.size(); ++i) {
                execOp(body[i], kernel, mem, i);
                if (ctr.memReads >= budget) {
                    done = true;
                    break;
                }
            }
        }
    } else {
        // Compile + resolve once per run (linear in the body), then
        // replay with the variant specialized for this run's tracer
        // and addressing mode.
        // NOP runs fuse into the following memory op only when the run
        // needs no InstrRetire trace event of its own.
        plan.compile(kernel, arch, /*fuse_nop_runs=*/tracer == nullptr);
        plan.resolveLines(mem);
        // The replay loop draws through the batched engine replica;
        // hand it the stream and take it back afterwards so reference
        // and blocked runs of this core consume one continuous
        // sequence.
        rrng.importFrom(rng);
        bool indexed = kernel.mode() == AddressingMode::CppIndexed;
        if (tracer) {
            if (indexed)
                replayBlocked<true, true>(mem);
            else
                replayBlocked<true, false>(mem);
        } else {
            if (indexed)
                replayBlocked<false, true>(mem);
            else
                replayBlocked<false, false>(mem);
        }
        rrng.exportTo(rng);
    }

    ctr.timeNs = now - start_ns;
    return ctr;
}

/**
 * Replay the compiled plan. Every arithmetic expression here is the
 * hoisted twin of one in execOp() — evaluated in the same order on the
 * same values, so clocks, counters, randomness consumption and the
 * DRAM command stream are bit-identical to the reference engine (the
 * oracle suite enforces this). The wins are strictly structural: no
 * per-op divisions, no deque/heap bookkeeping, no address re-decode
 * (pre-resolved handles), and no trace guards when untraced.
 */
template <bool Traced, bool Indexed>
void
SimCpu::replayBlocked(MemoryBackend &mem)
{
    const PlanOp *const ops = plan.ops.data();
    const std::size_t n = plan.ops.size();
    const Ns fetch_delta = plan.fetchDelta;
    const Ns addr_gen_delta = plan.addrGenDelta;
    const Ns l1_hit_delta = plan.l1HitDelta;
    const Ns rob_issue_delta = plan.robIssueDelta;
    const bool jitter_gated = plan.flushJitterGated;
    const bool flush_sync = arch.flushSynchronous;
    const Ns flush_lat_base = arch.flushLatencyNs;
    const double jitter_prob = arch.flushJitterProb;
    const Ns jitter_add = arch.flushJitterNs;

    for (;;) {
        for (std::size_t i = 0; i < n; ++i) {
            const PlanOp &op = ops[i];
            switch (op.code) {
              case PlanCode::Nop:
                now += op.d0; // cyc(nopCyc) * count
                ctr.nops += op.count;
                if constexpr (Traced) {
                    RHO_TRACE(tracer, now, EventKind::InstrRetire, 0,
                              static_cast<std::uint32_t>(op.rawKind), 0,
                              op.count);
                }
                break;

              case PlanCode::Alu:
                now += op.d0; // cyc(aluCyc) * count
                if constexpr (Traced) {
                    RHO_TRACE(tracer, now, EventKind::InstrRetire, 0,
                              static_cast<std::uint32_t>(op.rawKind), 0,
                              op.count);
                }
                break;

              case PlanCode::Lfence: {
                Ns ready = std::max(lastLoadComplete, lastAddrLoadComplete);
                if (ready > now)
                    now = ready + op.d0; // cyc(lfenceCyc): wait + restart
                else
                    now += op.d1; // cyc(lfenceIssueCyc): nothing to drain
                break;
              }

              case PlanCode::Mfence: {
                Ns ready = std::max({lastLoadComplete, lastAddrLoadComplete,
                                     lastFlushDone});
                now = std::max(now + op.d0, ready);
                break;
              }

              case PlanCode::Cpuid: {
                Ns ready = std::max({lastLoadComplete, lastAddrLoadComplete,
                                     lastFlushDone, lastFillDone});
                now = std::max(now + op.d0, ready);
                break;
              }

              case PlanCode::BranchObf: {
                ++ctr.branches;
                now += op.d0; // cyc(obfOverheadCyc)
                bool taken = rrng.chance(0.5);
                // Reference: `taken ? 1 + uniformInt(0, 7) : 0`. That
                // gates a draw on a coin flip — an unpredictable host
                // branch. Peek the would-be draw, advance the stream
                // only if taken, and mask the target instead.
                // uniformInt(0, 7)'s Lemire downscale is one draw with
                // no rejection (8 divides 2^64) and reduces to x >> 61.
                std::uint64_t tdraw = rrng.peek();
                rrng.consumeIf(taken);
                std::uint64_t target = (1 + (tdraw >> 61))
                    & (0 - static_cast<std::uint64_t>(taken));
                bool miss = bp.predictAndUpdate(
                    0x4000 + static_cast<std::uint64_t>(op.opIndex), taken,
                    target);
                // Select arithmetic, not control flow: `miss` is
                // random here, so a host branch on it mispredicts at
                // the full random rate. Adding 0.0 on a hit leaves the
                // clock bit-identical (now > 0, so no -0.0 edge).
                ctr.branchMispredicts += miss;
                now += static_cast<double>(miss) * op.d1;
                if constexpr (Traced) {
                    if (miss) {
                        RHO_TRACE(tracer, now, EventKind::PipelineFlush, 0,
                                  1, op.opIndex, 0);
                    }
                }
                break;
              }

              case PlanCode::BranchLoop: {
                ++ctr.branches;
                now += op.d0; // cyc(0.25)
                bool miss = bp.predictAndUpdate(
                    0x8000 + static_cast<std::uint64_t>(op.opIndex), true,
                    /*target=*/1);
                ctr.branchMispredicts += miss;
                now += static_cast<double>(miss) * op.d1;
                if constexpr (Traced) {
                    if (miss) {
                        RHO_TRACE(tracer, now, EventKind::PipelineFlush, 0,
                                  0, op.opIndex, 0);
                    }
                }
                break;
              }

              // Fused cases: perform the NOP run's own clock addition
              // (the same `now += cyc(nopCyc) * count` the unfused op
              // would) and fall through into the unchanged memory-op
              // body — fusion merges dispatch, never arithmetic.
              case PlanCode::NopFlush:
                now += op.d1; // cyc(nopCyc) * count
                ctr.nops += op.count;
                [[fallthrough]];
              case PlanCode::Flush: {
                now += fetch_delta;
                Ns issue = now;
                if constexpr (Indexed) {
                    issue = std::max(issue, lastMemIssue + addr_gen_delta);
                    lastAddrLoadComplete = std::max(lastAddrLoadComplete,
                                                    issue + l1_hit_delta);
                }
                ++ctr.flushes;
                // The jitter coin is random: consume it branchlessly
                // (false adds 0.0, leaving the latency bit-identical).
                Ns flush_lat = flush_lat_base;
                if (jitter_gated) {
                    flush_lat +=
                        static_cast<double>(rrng.chance(jitter_prob))
                        * jitter_add;
                }
                Ns done = cache.recordFlush(op.line, issue, flush_lat);
                if (done >= 0.0) {
                    lastFlushDone = std::max(lastFlushDone, done);
                    if (sbRing.size() >= arch.sbSize) {
                        stallTo(sbRing.front(), 2);
                        sbRing.popFront();
                    }
                    sbRing.pushBack(done);
                    // Synchronous flush ISAs (DC CIVAC + DSB): dispatch
                    // resumes only once the line is clean.
                    if (flush_sync)
                        now = std::max(now, done);
                }
                if (robRing.size() >= arch.robSize) {
                    lastRobRetire = std::max(lastRobRetire, robRing.front());
                    robRing.popFront();
                    stallTo(lastRobRetire, 0);
                }
                robRing.pushBack(issue + rob_issue_delta);
                lastMemIssue = std::max(lastMemIssue, issue);
                break;
              }

              case PlanCode::NopLoad:
                now += op.d1; // cyc(nopCyc) * count
                ctr.nops += op.count;
                [[fallthrough]];
              case PlanCode::Load: {
                now += fetch_delta;
                Ns issue = now;
                if constexpr (Indexed) {
                    issue = std::max(issue, lastMemIssue + addr_gen_delta);
                    lastAddrLoadComplete = std::max(lastAddrLoadComplete,
                                                    issue + l1_hit_delta);
                }
                ++ctr.memReads;
                Ns completion;
                if (cache.presentOrInFlight(op.line, issue)) {
                    ++ctr.cacheHits;
                    if constexpr (Traced) {
                        RHO_TRACE(tracer, issue, EventKind::CacheHit, 0, 0,
                                  op.pa, 0);
                    }
                    completion = std::max(issue, cache.fillDone(op.line))
                        + l1_hit_delta;
                } else {
                    if constexpr (Traced) {
                        RHO_TRACE(tracer, issue, EventKind::CacheMiss, 0, 0,
                                  op.pa, 0);
                    }
                    Ns grant = lfbAcquireFlat(std::max(
                        issue, lastLoadGrant + arch.loadIssueOccupancyNs));
                    lastLoadGrant = grant;
                    lastDramTime = std::max(lastDramTime, grant);
                    Ns lat = op.handle
                        ? mem.dramAccessResolved(op.handle, lastDramTime)
                        : mem.dramAccess(op.pa, lastDramTime);
                    completion = grant + lat + arch.loadExtraNs;
                    lfbReleaseFlat(completion);
                    cache.recordFill(op.line, completion);
                    ++ctr.dramAccesses;
                    lastFillDone = std::max(lastFillDone, completion);
                }
                if (lqRing.size() >= arch.lqSize) {
                    lastLoadRetire = std::max(lastLoadRetire,
                                              lqRing.front());
                    lqRing.popFront();
                    stallTo(lastLoadRetire, 1);
                }
                lqRing.pushBack(completion);
                if (robRing.size() >= arch.robSize) {
                    lastRobRetire = std::max(lastRobRetire, robRing.front());
                    robRing.popFront();
                    stallTo(lastRobRetire, 0);
                }
                robRing.pushBack(completion);
                lastLoadComplete = std::max(lastLoadComplete, completion);
                lastMemIssue = std::max(lastMemIssue, issue);
                if (ctr.memReads >= budget)
                    return;
                break;
              }

              case PlanCode::NopPrefetch:
                now += op.d1; // cyc(nopCyc) * count
                ctr.nops += op.count;
                [[fallthrough]];
              case PlanCode::Prefetch: {
                now += fetch_delta;
                Ns issue = now;
                if constexpr (Indexed) {
                    issue = std::max(issue, lastMemIssue + addr_gen_delta);
                    lastAddrLoadComplete = std::max(lastAddrLoadComplete,
                                                    issue + l1_hit_delta);
                }
                ++ctr.memReads;
                // Prefetch retires as soon as the address resolves.
                if (robRing.size() >= arch.robSize) {
                    lastRobRetire = std::max(lastRobRetire, robRing.front());
                    robRing.popFront();
                    stallTo(lastRobRetire, 0);
                }
                robRing.pushBack(issue + rob_issue_delta);
                if (cache.presentOrInFlight(op.line, issue)) {
                    ++ctr.cacheHits;
                    if constexpr (Traced) {
                        RHO_TRACE(tracer, issue, EventKind::CacheHit, 1, 0,
                                  op.pa, 0);
                    }
                } else {
                    while (!pfRing.empty() && pfRing.front() <= issue)
                        pfRing.popFront();
                    if (pfRing.size() >= arch.pfQueueSize) {
                        ++ctr.pfQueueDrops;
                        if constexpr (Traced) {
                            RHO_TRACE(tracer, issue, EventKind::PrefetchDrop,
                                      0, 0, op.pa, 0);
                        }
                    } else {
                        Ns base = pfRing.empty()
                            ? issue : std::max(issue, pfRing.back());
                        base = std::max(base,
                            lastPfGrant + arch.prefetchIssueOccupancyNs);
                        Ns grant = lfbAcquireFlat(base);
                        lastPfGrant = grant;
                        lastDramTime = std::max(lastDramTime, grant);
                        Ns lat = op.handle
                            ? mem.dramAccessResolved(op.handle, lastDramTime)
                            : mem.dramAccess(op.pa, lastDramTime);
                        Ns fill_done = grant + lat + op.d0; // hint extra
                        lfbReleaseFlat(fill_done);
                        cache.recordFill(op.line, fill_done);
                        pfRing.pushBack(grant);
                        ++ctr.dramAccesses;
                        if constexpr (Traced) {
                            RHO_TRACE(tracer, grant,
                                      EventKind::PrefetchIssue, 0, 0, op.pa,
                                      0);
                        }
                        lastFillDone = std::max(lastFillDone, fill_done);
                    }
                }
                lastMemIssue = std::max(lastMemIssue, issue);
                if (ctr.memReads >= budget)
                    return;
                break;
              }
            }
            // The reference engine checks the budget after every op;
            // the condition only becomes true where memReads changes,
            // so checking at the two memory-op sites stops at the
            // identical op (run() pre-handles the zero-budget edge).
        }
    }
}

void
SimCpu::execOp(const Op &op, const HammerKernel &kernel, MemoryBackend &mem,
               std::uint64_t op_index)
{
    bool indexed = kernel.mode() == AddressingMode::CppIndexed;

    switch (op.kind) {
      case OpKind::NopRun:
        // A run of NOPs occupies dispatch bandwidth (and transiently
        // ROB slots); its only effect is to space later ops out.
        now += cyc(arch.nopCyc) * op.count;
        ctr.nops += op.count;
        RHO_TRACE(tracer, now, EventKind::InstrRetire, 0,
                  static_cast<std::uint32_t>(op.kind), 0, op.count);
        return;

      case OpKind::AluDep:
        now += cyc(arch.aluCyc) * op.count;
        RHO_TRACE(tracer, now, EventKind::InstrRetire, 0,
                  static_cast<std::uint32_t>(op.kind), 0, op.count);
        return;

      case OpKind::Lfence: {
        // Waits for older loads (including the address-generation
        // loads of the indexed primitive) and blocks younger
        // execution. Does not wait for prefetch fills, so with
        // immediate (JIT) addressing and a pure prefetch stream it
        // retires almost immediately and orders nothing.
        Ns ready = std::max(lastLoadComplete, lastAddrLoadComplete);
        if (ready > now)
            now = ready + cyc(arch.lfenceCyc); // wait + restart
        else
            now += cyc(arch.lfenceIssueCyc); // nothing to drain
        return;
      }

      case OpKind::Mfence: {
        Ns ready = std::max({lastLoadComplete, lastAddrLoadComplete,
                             lastFlushDone});
        now = std::max(now + cyc(arch.mfenceCyc), ready);
        return;
      }

      case OpKind::Cpuid: {
        // Fully serializing: even prefetch fills must land first.
        Ns ready = std::max({lastLoadComplete, lastAddrLoadComplete,
                             lastFlushDone, lastFillDone});
        now = std::max(now + cyc(arch.cpuidCyc), ready);
        return;
      }

      case OpKind::BranchObf: {
        ++ctr.branches;
        now += cyc(arch.obfOverheadCyc);
        // rdrand-derived direction and one of 8 dispatch targets: the
        // predictor cannot learn either.
        bool taken = rng.chance(0.5);
        std::uint64_t target = taken ? 1 + rng.uniformInt(0, 7) : 0;
        bool miss = bp.predictAndUpdate(0x4000 + op_index, taken, target);
        if (miss) {
            ++ctr.branchMispredicts;
            now += cyc(arch.branchResolveCyc + arch.mispredictPenaltyCyc);
            RHO_TRACE(tracer, now, EventKind::PipelineFlush, 0, 1,
                      op_index, 0);
        }
        return;
      }

      case OpKind::BranchLoop: {
        ++ctr.branches;
        now += cyc(0.25);
        bool miss = bp.predictAndUpdate(0x8000 + op_index, true,
                                        /*target=*/1);
        if (miss) {
            ++ctr.branchMispredicts;
            now += cyc(arch.branchResolveCyc + arch.mispredictPenaltyCyc);
            RHO_TRACE(tracer, now, EventKind::PipelineFlush, 0, 0,
                      op_index, 0);
        }
        return;
      }

      case OpKind::ClFlushOpt: {
        now += cyc(1.0 / arch.fetchWidth);
        Ns issue = now;
        if (indexed) {
            issue = std::max(issue, lastMemIssue
                + cyc(arch.addrGenLatencyCyc * arch.depChainBreakFactor));
            lastAddrLoadComplete = std::max(lastAddrLoadComplete,
                                            issue + cyc(arch.l1HitCyc));
        }
        ++ctr.flushes;
        // Residual speculative disorder: occasionally the weakly
        // ordered flush is delayed far beyond its nominal latency and
        // the next same-line access still hits the stale line. This
        // cannot be fenced or NOP-padded away, and is the dominant
        // effect on Alder/Raptor Lake.
        Ns flush_lat = arch.flushLatencyNs;
        if (arch.flushJitterProb > 0.0 && rng.chance(arch.flushJitterProb))
            flush_lat += arch.flushJitterNs;
        Ns done = cache.recordFlush(op.line, issue, flush_lat);
        if (done >= 0.0) {
            lastFlushDone = std::max(lastFlushDone, done);
            // The flush holds a store-buffer entry until it completes;
            // a full buffer stalls dispatch, pacing the front end to
            // memory reality.
            if (storeBuffer.size() >= arch.sbSize) {
                stallTo(storeBuffer.front(), 2);
                storeBuffer.pop_front();
            }
            storeBuffer.push_back(done);
            // Synchronous flush ISAs (DC CIVAC + DSB): dispatch
            // resumes only once the line is clean.
            if (arch.flushSynchronous)
                now = std::max(now, done);
        }
        robPush(issue + cyc(1.0));
        lastMemIssue = std::max(lastMemIssue, issue);
        return;
      }

      case OpKind::Load:
      case OpKind::PrefetchT0:
      case OpKind::PrefetchT1:
      case OpKind::PrefetchT2:
      case OpKind::PrefetchNta:
        break; // handled below
    }

    // Memory read (load or prefetch).
    now += cyc(1.0 / arch.fetchWidth);
    Ns issue = now;
    if (indexed) {
        issue = std::max(issue, lastMemIssue
            + cyc(arch.addrGenLatencyCyc * arch.depChainBreakFactor));
        lastAddrLoadComplete = std::max(lastAddrLoadComplete,
                                        issue + cyc(arch.l1HitCyc));
    }
    ++ctr.memReads;
    PhysAddr pa = kernel.addrOf(op.line);

    if (op.kind == OpKind::Load) {
        Ns completion;
        if (cache.presentOrInFlight(op.line, issue)) {
            ++ctr.cacheHits;
            RHO_TRACE(tracer, issue, EventKind::CacheHit, 0, 0, pa, 0);
            completion = std::max(issue, cache.fillDone(op.line))
                + cyc(arch.l1HitCyc);
        } else {
            RHO_TRACE(tracer, issue, EventKind::CacheMiss, 0, 0, pa, 0);
            // Demand misses enter the memory subsystem with a minimum
            // spacing; this is what keeps single-threaded loads from
            // saturating DRAM bandwidth.
            Ns grant = lfbAcquire(std::max(
                issue, lastLoadGrant + arch.loadIssueOccupancyNs));
            lastLoadGrant = grant;
            Ns lat = dram(mem, pa, grant);
            completion = grant + lat + arch.loadExtraNs;
            // Loads hold their fill buffer for the full fill-to-use
            // path (fill into L1 + forwarding), unlike prefetches.
            lfbRelease(completion);
            cache.recordFill(op.line, completion);
            ++ctr.dramAccesses;
            lastFillDone = std::max(lastFillDone, completion);
        }
        if (loadQueue.size() >= arch.lqSize) {
            lastLoadRetire = std::max(lastLoadRetire, loadQueue.front());
            loadQueue.pop_front();
            stallTo(lastLoadRetire, 1);
        }
        loadQueue.push_back(completion);
        robPush(completion);
        lastLoadComplete = std::max(lastLoadComplete, completion);
    } else {
        // Prefetch: retires as soon as the address resolves.
        robPush(issue + cyc(1.0));
        if (cache.presentOrInFlight(op.line, issue)) {
            // Hint ignored: line present or still being flushed/filled.
            ++ctr.cacheHits;
            RHO_TRACE(tracer, issue, EventKind::CacheHit, 1, 0, pa, 0);
        } else {
            while (!pfQueue.empty() && pfQueue.front() <= issue)
                pfQueue.pop_front();
            if (pfQueue.size() >= arch.pfQueueSize) {
                ++ctr.pfQueueDrops;
                RHO_TRACE(tracer, issue, EventKind::PrefetchDrop, 0, 0,
                          pa, 0);
            } else {
                Ns base = pfQueue.empty()
                    ? issue : std::max(issue, pfQueue.back());
                base = std::max(base,
                    lastPfGrant + arch.prefetchIssueOccupancyNs);
                Ns grant = lfbAcquire(base);
                lastPfGrant = grant;
                Ns lat = dram(mem, pa, grant);
                Ns extra = op.kind == OpKind::PrefetchT0
                    ? arch.prefetchExtraT0Ns : arch.prefetchExtraNs;
                Ns fill_done = grant + lat + extra;
                lfbRelease(fill_done);
                cache.recordFill(op.line, fill_done);
                pfQueue.push_back(grant);
                ++ctr.dramAccesses;
                RHO_TRACE(tracer, grant, EventKind::PrefetchIssue, 0, 0,
                          pa, 0);
                lastFillDone = std::max(lastFillDone, fill_done);
            }
        }
    }
    lastMemIssue = std::max(lastMemIssue, issue);
}

} // namespace rho
