#include "cpu/replay_rng.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"

namespace rho
{

// mt19937_64 block generation (std _M_gen_rand): n 312, m 156, r 31,
// a 0xb5026f5aa96619e9. One deliberate difference from the std code:
// the conditional xor of `a` is a mask (-(y & 1) is all-ones iff y is
// odd), not a branch — the low bit is random, so the std `?:` form
// mispredicts every other word of the 312-word block.
void
ReplayRng::twist()
{
    constexpr std::size_t m = 156;
    constexpr std::uint64_t upper = ~std::uint64_t(0) << 31;
    constexpr std::uint64_t lower = ~upper;
    constexpr std::uint64_t a = 0xb5026f5aa96619e9ULL;

    for (std::size_t k = 0; k < kN - m; ++k) {
        std::uint64_t y = (state[k] & upper) | (state[k + 1] & lower);
        state[k] = state[k + m] ^ (y >> 1) ^ ((0 - (y & 1)) & a);
    }
    for (std::size_t k = kN - m; k < kN - 1; ++k) {
        std::uint64_t y = (state[k] & upper) | (state[k + 1] & lower);
        state[k] = state[k + (m - kN)] ^ (y >> 1) ^ ((0 - (y & 1)) & a);
    }
    std::uint64_t y = (state[kN - 1] & upper) | (state[0] & lower);
    state[kN - 1] = state[m - 1] ^ (y >> 1) ^ ((0 - (y & 1)) & a);
    idx = 0;
}

// The standard text serialization of mersenne_twister_engine is the 312
// state words followed by the read position, space-separated. Parsing
// it is the one portable way to move state in and out of a
// std::mt19937_64; it runs once per SimCpu::run.

void
ReplayRng::importFrom(const Rng &src)
{
    std::istringstream in(src.saveEngineState());
    for (std::size_t i = 0; i < kN; ++i)
        in >> state[i];
    in >> idx;
    if (!in || idx > kN)
        fatal("ReplayRng::importFrom: malformed engine state");
}

void
ReplayRng::exportTo(Rng &dst) const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < kN; ++i)
        out << state[i] << ' ';
    out << idx;
    dst.loadEngineState(out.str());
}

} // namespace rho
