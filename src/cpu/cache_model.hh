/**
 * @file
 * Per-line cache / fill-buffer state for the hammer-loop working set.
 *
 * The timing model only needs the lines a kernel touches (interned to
 * dense ids), so state is a flat array. Each line tracks the last fill
 * completion and the last flush completion; the x86 semantics the
 * paper exploits (Fig. 7) fall out of the two timestamps:
 *
 *   - A line is "present or in flight" at time t if its last fill
 *     began/completed and no flush has *completed* by t. An access in
 *     the window between a CLFLUSHOPT issuing and its effects
 *     completing still hits the (stale) line, so a prefetch there is
 *     ignored by the CPU and no DRAM activation happens.
 */

#ifndef RHO_CPU_CACHE_MODEL_HH
#define RHO_CPU_CACHE_MODEL_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rho
{

/** Flat cache-line state for the kernel working set. */
class CacheModel
{
  public:
    explicit CacheModel(std::uint32_t num_lines)
        : lines(num_lines)
    {
    }

    /** All lines absent (freshly flushed), clean timestamps. */
    void
    reset()
    {
        for (auto &l : lines)
            l = LineState{};
    }

    /**
     * Is an access at time t served without a DRAM activation?
     * True when the line was filled and no flush has completed yet
     * (including the flush-pending window), or a fill is in flight
     * (MSHR merge).
     */
    bool
    presentOrInFlight(std::uint32_t line, Ns t) const
    {
        const LineState &l = lines[line];
        if (!l.filled)
            return false;
        return l.flushDone < 0.0 || t < l.flushDone;
    }

    /** Completion time of the in-flight or finished fill. */
    Ns fillDone(std::uint32_t line) const { return lines[line].fillDone; }

    /** Record a fill that completes at fill_done. */
    void
    recordFill(std::uint32_t line, Ns fill_done)
    {
        LineState &l = lines[line];
        l.filled = true;
        l.fillDone = fill_done;
        l.flushDone = -1.0;
    }

    /**
     * Record a CLFLUSHOPT issued at time t with propagation latency
     * flush_lat. If a fill is still in flight the flush takes effect
     * after it lands. No-op if the line is already absent.
     *
     * @return the flush completion time, or -1 if it was a no-op.
     */
    Ns
    recordFlush(std::uint32_t line, Ns t, Ns flush_lat)
    {
        LineState &l = lines[line];
        if (!l.filled)
            return -1.0;
        if (l.flushDone >= 0.0 && l.flushDone <= t) {
            // Previous flush already completed; line is gone.
            l.filled = false;
            l.flushDone = -1.0;
            return -1.0;
        }
        Ns start = std::max(t, l.fillDone);
        Ns done = start + flush_lat;
        if (l.flushDone < 0.0 || done < l.flushDone)
            l.flushDone = done;
        return l.flushDone;
    }

    /** Lazily retire a completed flush (line becomes absent). */
    void
    expireFlush(std::uint32_t line, Ns t)
    {
        LineState &l = lines[line];
        if (l.filled && l.flushDone >= 0.0 && l.flushDone <= t) {
            l.filled = false;
            l.flushDone = -1.0;
        }
    }

  private:
    struct LineState
    {
        bool filled = false;
        Ns fillDone = 0.0;
        Ns flushDone = -1.0; //!< <0: no flush pending
    };

    std::vector<LineState> lines;
};

} // namespace rho

#endif // RHO_CPU_CACHE_MODEL_HH
