#include "cpu/arch_params.hh"

#include "common/logging.hh"

namespace rho
{

namespace
{

ArchParams
base()
{
    ArchParams p{};
    p.branchResolveCyc = 8.0;
    p.l1HitCyc = 4.0;
    p.addrGenLatencyCyc = 5.0;
    p.prefetchExtraT0Ns = 3.0;
    p.prefetchExtraNs = 0.5;
    p.aluCyc = 1.0;
    p.obfOverheadCyc = 24.0;
    p.lfenceCyc = 15.0;
    p.mfenceCyc = 35.0;
    p.cpuidCyc = 220.0;
    return p;
}

ArchParams
cometLake()
{
    ArchParams p = base();
    p.name = "Comet Lake";
    p.lfenceIssueCyc = 2.0;
    p.freqGhz = 4.8;
    p.fetchWidth = 4;
    p.robSize = 224;
    p.lqSize = 72;
    p.lfbSize = 10;
    p.pfQueueSize = 10;
    p.sbSize = 2048;
    p.depChainBreakFactor = 1.0;
    p.mispredictPenaltyCyc = 16.0;
    p.flushLatencyNs = 14.0;
    p.loadExtraNs = 36.0;
    p.loadIssueOccupancyNs = 120.0;
    p.prefetchIssueOccupancyNs = 15.0;
    p.flushJitterProb = 0.02;
    p.flushJitterNs = 150.0;
    p.nopCyc = 1.0 / p.fetchWidth;
    return p;
}

ArchParams
rocketLake()
{
    ArchParams p = base();
    p.name = "Rocket Lake";
    p.lfenceIssueCyc = 2.25;
    p.freqGhz = 4.9;
    p.fetchWidth = 5;
    p.robSize = 352;
    p.lqSize = 72;
    p.lfbSize = 12;
    p.pfQueueSize = 12;
    p.sbSize = 2048;
    p.depChainBreakFactor = 0.75;
    p.mispredictPenaltyCyc = 17.0;
    p.flushLatencyNs = 17.0;
    p.loadExtraNs = 40.0;
    p.loadIssueOccupancyNs = 125.0;
    p.prefetchIssueOccupancyNs = 15.0;
    p.flushJitterProb = 0.10;
    p.flushJitterNs = 200.0;
    p.nopCyc = 1.0 / p.fetchWidth;
    return p;
}

ArchParams
alderLake()
{
    ArchParams p = base();
    p.name = "Alder Lake";
    p.lfenceIssueCyc = 2.5;
    p.freqGhz = 5.1;
    p.fetchWidth = 6;
    p.robSize = 512;
    p.lqSize = 192;
    p.lfbSize = 16;
    p.pfQueueSize = 16;
    p.sbSize = 2048;
    p.depChainBreakFactor = 0.32;
    p.mispredictPenaltyCyc = 18.0;
    p.flushLatencyNs = 40.0;
    p.loadExtraNs = 46.0;
    p.loadIssueOccupancyNs = 115.0;
    p.prefetchIssueOccupancyNs = 14.0;
    p.flushJitterProb = 0.60;
    p.flushJitterNs = 250.0;
    p.nopCyc = 1.0 / p.fetchWidth;
    return p;
}

ArchParams
raptorLake()
{
    ArchParams p = base();
    p.name = "Raptor Lake";
    p.lfenceIssueCyc = 3.0;
    p.freqGhz = 5.5;
    p.fetchWidth = 6;
    p.robSize = 512;
    p.lqSize = 192;
    p.lfbSize = 16;
    p.pfQueueSize = 16;
    p.sbSize = 2048;
    p.depChainBreakFactor = 0.22;
    p.mispredictPenaltyCyc = 18.0;
    p.flushLatencyNs = 48.0;
    p.loadExtraNs = 50.0;
    p.loadIssueOccupancyNs = 110.0;
    p.prefetchIssueOccupancyNs = 14.0;
    p.flushJitterProb = 0.70;
    p.flushJitterNs = 300.0;
    p.nopCyc = 1.0 / p.fetchWidth;
    return p;
}

ArchParams
zen3()
{
    ArchParams p = base();
    p.name = "Zen 3";
    p.isa = Isa::X86;
    p.lfenceIssueCyc = 2.5;
    p.freqGhz = 4.9;
    p.fetchWidth = 6;
    p.robSize = 256;
    p.lqSize = 72;
    p.lfbSize = 12;
    p.pfQueueSize = 12;
    p.sbSize = 2048;
    p.depChainBreakFactor = 0.40;
    p.mispredictPenaltyCyc = 17.0;
    p.flushLatencyNs = 30.0;
    p.loadExtraNs = 44.0;
    p.loadIssueOccupancyNs = 118.0;
    p.prefetchIssueOccupancyNs = 14.0;
    p.flushJitterProb = 0.35;
    p.flushJitterNs = 220.0;
    p.nopCyc = 1.0 / p.fetchWidth;
    return p;
}

ArchParams
cortexA72()
{
    ArchParams p = base();
    p.name = "Cortex-A72";
    p.isa = Isa::Armv8;
    // DSB with nothing to drain still stalls dispatch a few cycles.
    p.lfenceIssueCyc = 4.0;
    p.lfenceCyc = 40.0;
    p.mfenceCyc = 45.0;
    p.freqGhz = 1.8;
    p.fetchWidth = 3;
    p.robSize = 128;
    p.lqSize = 32;
    p.lfbSize = 6;
    p.pfQueueSize = 8;
    p.sbSize = 32;
    p.depChainBreakFactor = 1.0;
    p.mispredictPenaltyCyc = 15.0;
    // DC CIVAC + DSB: the clean-and-invalidate round trip is charged
    // synchronously (flushSynchronous) and jitter-free — there is no
    // weakly-ordered drain for speculative traffic to delay.
    p.flushSynchronous = true;
    p.flushLatencyNs = 60.0;
    p.loadExtraNs = 60.0;
    p.loadIssueOccupancyNs = 180.0;
    // PRFM PLDL1STRM: the A72 prefetch engine is narrower but still
    // decouples fills from the core's issue window.
    p.prefetchIssueOccupancyNs = 25.0;
    p.prefetchExtraNs = 1.0;
    p.flushJitterProb = 0.0;
    p.flushJitterNs = 0.0;
    p.nopCyc = 1.0 / p.fetchWidth;
    return p;
}

} // namespace

const ArchParams &
ArchParams::forArch(Arch arch)
{
    static const ArchParams comet = cometLake();
    static const ArchParams rocket = rocketLake();
    static const ArchParams alder = alderLake();
    static const ArchParams raptor = raptorLake();
    static const ArchParams zen = zen3();
    static const ArchParams a72 = cortexA72();
    switch (arch) {
      case Arch::CometLake: return comet;
      case Arch::RocketLake: return rocket;
      case Arch::AlderLake: return alder;
      case Arch::RaptorLake: return raptor;
      case Arch::Zen3: return zen;
      case Arch::CortexA72: return a72;
    }
    panic("ArchParams::forArch: bad arch");
}

} // namespace rho
