/**
 * @file
 * Bit-exact batched replica of the simulator's std-library RNG stack,
 * used only by the blocked replay engine.
 *
 * The reference engine draws through Rng (std::mt19937_64 +
 * std::bernoulli_distribution / std::uniform_int_distribution). Those
 * draws are *semantic*: the flush-jitter coin and the obfuscated-branch
 * direction/target feed timing and the branch predictor, so the blocked
 * engine must consume the identical value stream or it stops being
 * bit-identical to the oracle. They are also the dominant cost of the
 * replay loop (a std::bernoulli_distribution draw is ~5x the price of
 * the whole dispatch + queue machinery around it), almost all of it
 * spent in per-call distribution-object and generate_canonical
 * boilerplate rather than in the Mersenne twister itself.
 *
 * ReplayRng removes the boilerplate, not the semantics. It holds a
 * mersenne_twister_engine state with the mt19937_64 parameters and
 * re-implements, against the installed libstdc++:
 *
 *  - operator(): lazy block twist + tempering, word-for-word the
 *    standard algorithm (the output sequence is fixed by the C++
 *    standard, not an implementation detail);
 *  - generate_canonical<double, 53>: for a 64-bit engine the generic
 *    loop collapses to one draw, double(x) / 2^64, clamped to
 *    nextafter(1, 0) when the conversion rounds up to 1.0;
 *  - bernoulli_distribution: canonical < p (the standard's
 *    `(c - min) < p * (max - min)` with min 0 and max 1);
 *  - uniform_int_distribution<uint64_t>: Lemire's nearly divisionless
 *    downscaling over __uint128_t, exactly the libstdc++ _S_nd path
 *    taken whenever the engine range is 2^64.
 *
 * chance() additionally mirrors Rng::chance's p <= 0 / p >= 1
 * short-circuits, which consume no engine output.
 *
 * State moves between a ReplayRng and an Rng through the engine's
 * standard text serialization at run boundaries (313 integers, once
 * per SimCpu::run, amortized over every draw in the run), so reference
 * and blocked runs of the same SimCpu consume one continuous stream.
 * test_cpu_oracle pins raw-stream equality against std::mt19937_64 and
 * round-trips the state both ways; the golden traces pin the composed
 * behavior end to end.
 */

#ifndef RHO_CPU_REPLAY_RNG_HH
#define RHO_CPU_REPLAY_RNG_HH

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace rho
{

class Rng;

/** Batched mt19937_64 + exact libstdc++ distribution replicas. */
class ReplayRng
{
  public:
    /** Copy the engine state out of an Rng (its next draw is ours). */
    void importFrom(const Rng &src);

    /** Write the engine state back into an Rng (our next draw is its). */
    void exportTo(Rng &dst) const;

    /** Raw engine output; the std::mt19937_64 sequence. */
    std::uint64_t
    next()
    {
        if (idx >= kN)
            twist();
        std::uint64_t z = state[idx++];
        z ^= (z >> 29) & 0x5555555555555555ULL;
        z ^= (z << 17) & 0x71d67fffeda60000ULL;
        z ^= (z << 37) & 0xfff7eee000000000ULL;
        z ^= z >> 43;
        return z;
    }

    /** Exact replica of Rng::chance (incl. its draw-free edges). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return canonical() < p;
    }

    /**
     * The next raw draw, without consuming it. Pair with consumeIf():
     * a caller whose draw is gated on a random condition (the
     * obfuscated branch draws a target only when taken) can compute
     * the would-be value unconditionally and advance the stream by 0
     * or 1 — no host branch on random data. consumeIf(true) followed
     * by nothing is exactly next(); consumeIf(false) leaves the
     * stream untouched.
     */
    std::uint64_t
    peek()
    {
        if (idx >= kN)
            twist();
        std::uint64_t z = state[idx];
        z ^= (z >> 29) & 0x5555555555555555ULL;
        z ^= (z << 17) & 0x71d67fffeda60000ULL;
        z ^= (z << 37) & 0xfff7eee000000000ULL;
        z ^= z >> 43;
        return z;
    }

    void consumeIf(bool take) { idx += take; }

    /** Exact replica of Rng::uniformInt: uniform in [lo, hi]. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        std::uint64_t urange = hi - lo;
        if (urange == ~0ULL)
            return next(); // whole engine range: raw draw
        std::uint64_t uerange = urange + 1;
        unsigned __int128 product =
            static_cast<unsigned __int128>(next()) * uerange;
        std::uint64_t low = static_cast<std::uint64_t>(product);
        if (low < uerange) {
            std::uint64_t threshold = (0 - uerange) % uerange;
            while (low < threshold) {
                product = static_cast<unsigned __int128>(next()) * uerange;
                low = static_cast<std::uint64_t>(product);
            }
        }
        return lo + static_cast<std::uint64_t>(product >> 64);
    }

  private:
    /**
     * Round-to-nearest uint64 -> double without the compiler's
     * sign-test branch. x86-64 has no unsigned conversion before
     * AVX-512, so `double(x)` compiles to a branch on bit 63 — which
     * is random engine output here and mispredicts half the time,
     * costing more than the rest of the draw combined. Splitting into
     * two exactly-representable halves (hi * 2^32 is exact, lo is
     * exact) sums to mathematical x and rounds exactly once, so the
     * result is bit-identical to the direct conversion.
     */
    static double
    toDouble(std::uint64_t x)
    {
        double hi = static_cast<double>(
            static_cast<std::int64_t>(x >> 32));
        double lo = static_cast<double>(
            static_cast<std::int64_t>(x & 0xffffffffULL));
        return hi * 0x1p32 + lo;
    }

    /** std::generate_canonical<double, 53, mt19937_64>. */
    double
    canonical()
    {
        double ret = toDouble(next()) * 0x1p-64;
        // double(x) rounds up to 2^64 for the top ~2^10 inputs; the
        // standard clamps the quotient below 1.0.
        if (ret >= 1.0) [[unlikely]]
            ret = std::nextafter(1.0, 0.0);
        return ret;
    }

    void twist();

    static constexpr std::size_t kN = 312;

    std::uint64_t state[kN] = {};
    std::size_t idx = kN;
};

} // namespace rho

#endif // RHO_CPU_REPLAY_RNG_HH
