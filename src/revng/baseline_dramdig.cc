#include "revng/baseline_dramdig.hh"

#include <algorithm>
#include <bit>
#include <functional>

#include "common/bits.hh"
#include "common/stats.hh"
#include "revng/threshold.hh"

namespace rho
{

DramDigReverseEngineer::DramDigReverseEngineer(TimingProbe &probe_,
                                               const PhysPool &pool_,
                                               std::uint64_t seed,
                                               DramDigConfig cfg_)
    : probe(probe_), pool(pool_), rng(seed), cfg(cfg_)
{
}

MappingRecovery
DramDigReverseEngineer::run()
{
    MemorySystem &sys = probe.system();
    Ns t0 = sys.now();
    std::uint64_t acc0 = probe.accessCount();
    MappingRecovery out;

    sys.advance(static_cast<Ns>(pool.ownedPages()) *
                cfg.setupCostPerPageNs);

    double thres = robustSeparatingThreshold(probe, pool, rng, 800);
    out.thresholdNs = thres;

    unsigned phys_bits = sys.mapping().physBits();

    // Knowledge-assisted step: find and exclude pure row bits. The
    // robust probe replaces the tool's plain 4-sample average so an
    // interference burst cannot misclassify a bit.
    std::vector<unsigned> pure_row, non_pure;
    for (unsigned b = cfg.lowestBit; b < phys_bits; ++b) {
        auto base = pool.pairBase(rng, 1ULL << b);
        if (!base)
            continue;
        RobustTimingConfig rt;
        rt.baseSamples = 4;
        double t = probe.measurePairRobust(*base, *base ^ (1ULL << b),
                                           100, rt, &out.measureRetry);
        if (t > thres)
            pure_row.push_back(b);
        else
            non_pure.push_back(b);
    }

    if (pure_row.empty()) {
        // The tool's core assumption: pure row bits must exist to
        // bound the brute-force space. On Alder/Raptor they do not.
        out.failureReason = "premature exit: no pure row bits";
        out.code = FailureCode::NoPureRowBits;
        out.simTimeNs = sys.now() - t0;
        out.timedAccesses = probe.accessCount() - acc0;
        return out;
    }

    // Exhaustive coloring of the entire pool into banks. A detailed
    // sample is simulated; the remaining pages are charged at the
    // tool's per-page coloring cost.
    std::vector<std::vector<PhysAddr>> groups;
    for (unsigned i = 0; i < cfg.coloredSample; ++i) {
        PhysAddr a = pool.randomAddr(rng);
        bool placed = false;
        for (auto &g : groups) {
            if (probe.measurePairRobust(a, g.front(), 10, {},
                                        &out.measureRetry) > thres) {
                g.push_back(a);
                placed = true;
                break;
            }
        }
        if (!placed)
            groups.push_back({a});
    }
    std::uint64_t rest = pool.ownedPages() > cfg.coloredSample
        ? pool.ownedPages() - cfg.coloredSample : 0;
    sys.advance(static_cast<Ns>(rest) * cfg.colorCostPerPageNs);

    // Brute-force XOR functions over the non-pure-row bits, smallest
    // first, testing parity constancy within every colored bank set.
    auto constant_in_groups = [&](std::uint64_t mask) {
        for (const auto &g : groups) {
            std::uint64_t p0 = parity(g.front(), mask);
            for (PhysAddr a : g) {
                if (parity(a, mask) != p0)
                    return false;
            }
        }
        return true;
    };

    std::vector<std::uint64_t> candidates;
    std::vector<unsigned> bits = non_pure;
    // Size-2 .. size-maxFnBits subsets (size-1 cannot exist after the
    // pure-row exclusion: a single constant bit would be a bank bit
    // used alone, which duet-style coloring already separates).
    std::vector<unsigned> idx;
    std::function<void(std::size_t, unsigned)> enumerate =
        [&](std::size_t start, unsigned remaining) {
            if (idx.size() >= 2) {
                std::uint64_t mask = 0;
                for (unsigned i : idx)
                    mask |= 1ULL << bits[i];
                if (constant_in_groups(mask))
                    candidates.push_back(mask);
            }
            if (remaining == 0)
                return;
            for (std::size_t i = start; i < bits.size(); ++i) {
                idx.push_back(static_cast<unsigned>(i));
                enumerate(i + 1, remaining - 1);
                idx.pop_back();
            }
        };
    enumerate(0, cfg.maxFnBits);
    // Each tested subset costs a verification measurement.
    std::uint64_t tested = 0;
    for (unsigned k = 2; k <= cfg.maxFnBits; ++k) {
        std::uint64_t c = 1;
        for (unsigned i = 0; i < k; ++i)
            c = c * (bits.size() - i) / (i + 1);
        tested += c;
    }
    sys.advance(static_cast<Ns>(tested) * 2000.0);

    std::sort(candidates.begin(), candidates.end(),
              [](std::uint64_t a, std::uint64_t b) {
                  unsigned pa = std::popcount(a), pb = std::popcount(b);
                  return pa != pb ? pa < pb : a < b;
              });
    std::vector<std::uint64_t> basis;
    for (std::uint64_t c : candidates) {
        Gf2Matrix m(phys_bits);
        for (auto b : basis)
            m.addRow(b);
        m.addRow(c);
        if (m.rank() == basis.size() + 1)
            basis.push_back(c);
    }

    std::size_t expected_fns = 0;
    while ((1ULL << expected_fns) < groups.size())
        ++expected_fns;
    if (basis.size() != expected_fns) {
        out.failureReason = "function basis does not explain bank sets";
        out.code = FailureCode::FunctionSearchIncomplete;
        out.simTimeNs = sys.now() - t0;
        out.timedAccesses = probe.accessCount() - acc0;
        return out;
    }
    out.bankFns = basis;

    // Split row-inclusive functions: flipping all bits of such a
    // function keeps the bank but changes the row (SBDR).
    std::vector<unsigned> rows = pure_row;
    for (std::uint64_t fn : basis) {
        auto base = pool.pairBase(rng, fn);
        if (!base)
            continue;
        if (probe.measurePairRobust(*base, *base ^ fn, 25, {},
                                    &out.measureRetry) > thres) {
            auto fn_bits = bitsOfMask(fn);
            rows.push_back(fn_bits.back());
        }
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    out.rowBits = rows;

    out.success = true;
    out.simTimeNs = sys.now() - t0;
    out.timedAccesses = probe.accessCount() - acc0;
    return out;
}

} // namespace rho
