/**
 * @file
 * DRAMDig-style knowledge-assisted baseline (Wang et al., DAC 2020)
 * for the Table 5 comparison.
 *
 * Method: identify and exclude pure row bits first, color *all*
 * allocated memory into banks, then brute-force XOR functions over
 * the remaining bits. Correct where its layout assumptions hold
 * (Comet/Rocket Lake), but two orders of magnitude slower than
 * rhoHammer because of the exhaustive coloring; aborts on
 * Alder/Raptor Lake where no pure row bits exist.
 */

#ifndef RHO_REVNG_BASELINE_DRAMDIG_HH
#define RHO_REVNG_BASELINE_DRAMDIG_HH

#include "revng/reverse_engineer.hh"

namespace rho
{

/** Measurement-budget knobs for the DRAMDig model. */
struct DramDigConfig
{
    unsigned lowestBit = 6;
    unsigned coloredSample = 1200;  //!< addresses simulated in detail
    /**
     * Per-page cost of the full-memory coloring sweep (the tool
     * times every allocated page against bank representatives, with
     * verification rounds); charged analytically for the pool pages
     * beyond coloredSample.
     */
    Ns colorCostPerPageNs = 120000.0;
    unsigned maxFnBits = 4;
    Ns setupCostPerPageNs = 1500.0;
};

/** The baseline driver. */
class DramDigReverseEngineer
{
  public:
    DramDigReverseEngineer(TimingProbe &probe, const PhysPool &pool,
                           std::uint64_t seed,
                           DramDigConfig cfg = DramDigConfig{});

    MappingRecovery run();

  private:
    TimingProbe &probe;
    const PhysPool &pool;
    Rng rng;
    DramDigConfig cfg;
};

} // namespace rho

#endif // RHO_REVNG_BASELINE_DRAMDIG_HH
