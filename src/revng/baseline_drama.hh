/**
 * @file
 * DRAMA-style brute-force reverse engineering baseline
 * (Pessl et al., USENIX Security 2016), as reimplemented for the
 * Table 5 comparison.
 *
 * Method: time random address pairs to group addresses into bank
 * sets ("coloring"), then exhaustively search small XOR functions
 * that are constant within every set. Its documented assumptions -
 * small per-function bit counts, a bounded candidate-bit range, and
 * pure high-order row bits - fail on the mappings of all four
 * evaluated machines, matching the paper's "-" entries.
 */

#ifndef RHO_REVNG_BASELINE_DRAMA_HH
#define RHO_REVNG_BASELINE_DRAMA_HH

#include "revng/reverse_engineer.hh"

namespace rho
{

/** Knobs reflecting the original tool's defaults. */
struct DramaConfig
{
    unsigned sampleAddrs = 768;  //!< addresses to color
    unsigned maxFnBits = 2;      //!< brute-force function size cap
    unsigned maxBit = 30;        //!< candidate bank-bit upper bound
    unsigned lowestBit = 6;
    Ns setupCostPerPageNs = 1500.0;
};

/** The baseline driver. */
class DramaReverseEngineer
{
  public:
    DramaReverseEngineer(TimingProbe &probe, const PhysPool &pool,
                         std::uint64_t seed,
                         DramaConfig cfg = DramaConfig{});

    MappingRecovery run();

  private:
    TimingProbe &probe;
    const PhysPool &pool;
    Rng rng;
    DramaConfig cfg;
};

} // namespace rho

#endif // RHO_REVNG_BASELINE_DRAMA_HH
