/**
 * @file
 * rhoHammer's DRAM address-mapping reverse engineering (paper
 * Algorithm 1): selective pairwise SBDR measurements with structured
 * deduction (Duet / Trios / Quartet), layout-agnostic and polynomial
 * in the number of physical address bits.
 */

#ifndef RHO_REVNG_REVERSE_ENGINEER_HH
#define RHO_REVNG_REVERSE_ENGINEER_HH

#include <optional>
#include <string>
#include <vector>

#include "common/failure.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "memsys/timing_probe.hh"
#include "os/pagemap.hh"

namespace rho
{

/** Measurement-budget knobs (paper defaults in section 3.3). */
struct ReverseEngineerConfig
{
    unsigned pairsPerMeasurement = 16; //!< random pairs per T_SBDR
    unsigned roundsPerPair = 50;       //!< accesses per address
    unsigned thresholdPairs = 1200;    //!< random pairs for step 0
    unsigned lowestBit = 6;            //!< cache-line bits never matter
    /** Modelled mmap+pagemap setup cost per pooled 4 KiB page. */
    Ns setupCostPerPageNs = 1500.0;

    // Robustness against environmental interference (co-running
    // workload bursts injected by a FaultSchedule). Fault-free these
    // change nothing measurable: the MAD of a clean sample set sits
    // well under madStableNs, so no re-measurement ever triggers.
    double madK = 3.5;           //!< inlier band half-width, in MADs
    double madFloorNs = 1.0;     //!< MAD floor (degenerate zero spread)
    double madStableNs = 3.0;    //!< spread above this => interference
    double minInlierFrac = 0.75; //!< required surviving-sample fraction
    unsigned maxRemeasureRounds = 3; //!< extra batches when unstable
    Ns remeasureBackoffNs = 2e6; //!< first backoff, simulated ns
    double backoffFactor = 2.0;  //!< exponential backoff growth
    Ns maxBackoffNs = 8e6;       //!< backoff ceiling

    // Non-linear (AMD Zen) region-offset recovery, step 0b. Region
    // bases are multiples of 2^offsetGranuleBits; each candidate is
    // gated by the *minimum* per-mask classification consistency of
    // {low anchor bit, high bit} probe pairs and ranked by how many
    // masks classify consistently SBDR-slow. A non-zero offset is
    // adopted only when the zero-offset (linear) hypothesis FAILS the
    // consistency bar on its own masks while the winner clears it and
    // recovers strictly more slow masks — so linear mappings (which
    // always time consistently at 0, even when a shifted description
    // happens to be gauge-equivalent) and noise floods (which gate
    // every candidate out) both fall back to offset 0.
    unsigned offsetGranuleBits = 30;  //!< candidate spacing, log2
    unsigned offsetSamplesPerMask = 8; //!< timed pairs per probe mask
    double offsetAcceptScore = 0.85;  //!< consistency bar per mask
};

/** Outcome of a mapping-recovery run (any tool). */
struct MappingRecovery
{
    bool success = false;
    std::string failureReason;
    FailureCode code = FailureCode::None;
    RetryStats measureRetry; //!< robust-measurement retries/backoffs
    std::vector<std::uint64_t> bankFns;
    std::vector<unsigned> rowBits; //!< ascending
    /**
     * Recovered non-linear region base (0 for linear mappings). When
     * non-zero, bankFns/rowBits describe the structure of the
     * region-normalized address (pa - regionOffset).
     */
    std::uint64_t regionOffset = 0;
    double thresholdNs = 0.0;
    Ns simTimeNs = 0.0;            //!< total simulated runtime
    std::uint64_t timedAccesses = 0;

    /**
     * Compare against ground truth: row bits must match exactly and
     * the bank functions must span the same GF(2) space.
     */
    bool matches(const AddressMapping &truth) const;
};

/** GF(2) span equality of two bank-function sets. */
bool sameFnSpan(const std::vector<std::uint64_t> &a,
                const std::vector<std::uint64_t> &b, unsigned bits);

/** Algorithm 1. */
class RhoReverseEngineer
{
  public:
    RhoReverseEngineer(TimingProbe &probe, const PhysPool &pool,
                       std::uint64_t seed,
                       ReverseEngineerConfig cfg = ReverseEngineerConfig{});

    /** Run the full recovery. */
    MappingRecovery run();

  private:
    /**
     * T_SBDR(M, diff_mask): robust pairwise timing, in ns. Samples
     * are MAD-filtered; when the surviving set is too small or too
     * spread (interference burst), the measurement backs off in
     * simulated time and takes fresh batches, up to
     * cfg.maxRemeasureRounds times, then returns the inlier median.
     */
    double tSbdr(std::uint64_t diff_mask);

    /** Step 0: find the SBDR/non-SBDR separating threshold. */
    double findThreshold();

    /**
     * Step 0b: scan region-offset candidates (multiples of the
     * granule) and adopt the one whose predicted pairings time
     * consistently — the Zen non-linearity detector. Returns the
     * adopted offset (0 for linear mappings) and leaves the probing
     * state (this->offset) set to it.
     */
    std::uint64_t recoverOffset(double thres, unsigned phys_bits);

    /** (pa - offset) mod 2^physBits: the space the XOR core hashes. */
    PhysAddr normalize(PhysAddr pa) const
    {
        return (pa - offset) & addrMask;
    }
    PhysAddr denormalize(PhysAddr n) const
    {
        return (n + offset) & addrMask;
    }

    /**
     * A pooled base whose partner differs by diff_mask in normalized
     * space (plain XOR when offset is 0). Returns the base and writes
     * the partner; nullopt when the pool has no such pair.
     */
    std::optional<PhysAddr> pairBaseAt(std::uint64_t diff_mask,
                                       PhysAddr &partner);

    TimingProbe &probe;
    const PhysPool &pool;
    Rng rng;
    ReverseEngineerConfig cfg;
    RetryStats measureRetry;
    std::uint64_t offset = 0;   //!< region offset assumed while probing
    std::uint64_t addrMask = 0; //!< 2^physBits - 1
};

} // namespace rho

#endif // RHO_REVNG_REVERSE_ENGINEER_HH
