/**
 * @file
 * rhoHammer's DRAM address-mapping reverse engineering (paper
 * Algorithm 1): selective pairwise SBDR measurements with structured
 * deduction (Duet / Trios / Quartet), layout-agnostic and polynomial
 * in the number of physical address bits.
 */

#ifndef RHO_REVNG_REVERSE_ENGINEER_HH
#define RHO_REVNG_REVERSE_ENGINEER_HH

#include <string>
#include <vector>

#include "common/failure.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "memsys/timing_probe.hh"
#include "os/pagemap.hh"

namespace rho
{

/** Measurement-budget knobs (paper defaults in section 3.3). */
struct ReverseEngineerConfig
{
    unsigned pairsPerMeasurement = 16; //!< random pairs per T_SBDR
    unsigned roundsPerPair = 50;       //!< accesses per address
    unsigned thresholdPairs = 1200;    //!< random pairs for step 0
    unsigned lowestBit = 6;            //!< cache-line bits never matter
    /** Modelled mmap+pagemap setup cost per pooled 4 KiB page. */
    Ns setupCostPerPageNs = 1500.0;

    // Robustness against environmental interference (co-running
    // workload bursts injected by a FaultSchedule). Fault-free these
    // change nothing measurable: the MAD of a clean sample set sits
    // well under madStableNs, so no re-measurement ever triggers.
    double madK = 3.5;           //!< inlier band half-width, in MADs
    double madFloorNs = 1.0;     //!< MAD floor (degenerate zero spread)
    double madStableNs = 3.0;    //!< spread above this => interference
    double minInlierFrac = 0.75; //!< required surviving-sample fraction
    unsigned maxRemeasureRounds = 3; //!< extra batches when unstable
    Ns remeasureBackoffNs = 2e6; //!< first backoff, simulated ns
    double backoffFactor = 2.0;  //!< exponential backoff growth
    Ns maxBackoffNs = 8e6;       //!< backoff ceiling
};

/** Outcome of a mapping-recovery run (any tool). */
struct MappingRecovery
{
    bool success = false;
    std::string failureReason;
    FailureCode code = FailureCode::None;
    RetryStats measureRetry; //!< robust-measurement retries/backoffs
    std::vector<std::uint64_t> bankFns;
    std::vector<unsigned> rowBits; //!< ascending
    double thresholdNs = 0.0;
    Ns simTimeNs = 0.0;            //!< total simulated runtime
    std::uint64_t timedAccesses = 0;

    /**
     * Compare against ground truth: row bits must match exactly and
     * the bank functions must span the same GF(2) space.
     */
    bool matches(const AddressMapping &truth) const;
};

/** GF(2) span equality of two bank-function sets. */
bool sameFnSpan(const std::vector<std::uint64_t> &a,
                const std::vector<std::uint64_t> &b, unsigned bits);

/** Algorithm 1. */
class RhoReverseEngineer
{
  public:
    RhoReverseEngineer(TimingProbe &probe, const PhysPool &pool,
                       std::uint64_t seed,
                       ReverseEngineerConfig cfg = ReverseEngineerConfig{});

    /** Run the full recovery. */
    MappingRecovery run();

  private:
    /**
     * T_SBDR(M, diff_mask): robust pairwise timing, in ns. Samples
     * are MAD-filtered; when the surviving set is too small or too
     * spread (interference burst), the measurement backs off in
     * simulated time and takes fresh batches, up to
     * cfg.maxRemeasureRounds times, then returns the inlier median.
     */
    double tSbdr(std::uint64_t diff_mask);

    /** Step 0: find the SBDR/non-SBDR separating threshold. */
    double findThreshold();

    TimingProbe &probe;
    const PhysPool &pool;
    Rng rng;
    ReverseEngineerConfig cfg;
    RetryStats measureRetry;
};

} // namespace rho

#endif // RHO_REVNG_REVERSE_ENGINEER_HH
