/**
 * @file
 * Burst-robust SBDR threshold discovery shared by all
 * reverse-engineering tools.
 *
 * A single latency histogram cannot separate the (sparse, ~1/#banks)
 * SBDR mode from a gap sprinkled with burst-jittered samples: any
 * per-bin emptiness criterion either rejects the sprinkled gap or
 * swallows the sparse mode. Temporal diversification solves what bin
 * statistics cannot: the pairs are measured in several chunks spread
 * over simulated time, each chunk computes its own separating
 * threshold, and the median of the per-chunk thresholds wins. An
 * interference burst contaminates at most one or two chunks wholesale;
 * the clean majority carries the median. Fault-free, every chunk sees
 * the same bimodal shape and the median equals the single-shot value.
 */

#ifndef RHO_REVNG_THRESHOLD_HH
#define RHO_REVNG_THRESHOLD_HH

#include "common/rng.hh"
#include "memsys/timing_probe.hh"
#include "os/pagemap.hh"

namespace rho
{

/**
 * Measure `total_pairs` random pool pairs in `chunks` time-separated
 * chunks (`chunk_gap_ns` of simulated time apart — longer than a
 * co-running workload burst) and return the median of the per-chunk
 * separating thresholds.
 */
double robustSeparatingThreshold(TimingProbe &probe, const PhysPool &pool,
                                 Rng &rng, unsigned total_pairs,
                                 unsigned rounds = 8, unsigned chunks = 6,
                                 Ns chunk_gap_ns = 12.5e6);

} // namespace rho

#endif // RHO_REVNG_THRESHOLD_HH
