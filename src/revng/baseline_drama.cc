#include "revng/baseline_drama.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/stats.hh"
#include "revng/threshold.hh"

namespace rho
{

DramaReverseEngineer::DramaReverseEngineer(TimingProbe &probe_,
                                           const PhysPool &pool_,
                                           std::uint64_t seed,
                                           DramaConfig cfg_)
    : probe(probe_), pool(pool_), rng(seed), cfg(cfg_)
{
}

MappingRecovery
DramaReverseEngineer::run()
{
    MemorySystem &sys = probe.system();
    Ns t0 = sys.now();
    std::uint64_t acc0 = probe.accessCount();
    MappingRecovery out;

    sys.advance(static_cast<Ns>(pool.ownedPages()) *
                cfg.setupCostPerPageNs);

    // Threshold from a latency histogram of random pairs, collected
    // in time-separated chunks so an interference burst cannot
    // contaminate the whole distribution.
    double thres = robustSeparatingThreshold(probe, pool, rng, 600);
    out.thresholdNs = thres;

    // Coloring: each sampled address joins the first bank set whose
    // representative it conflicts with. Decisions use the robust
    // (median + re-measure) probe so a single noise burst does not
    // spawn phantom bank sets.
    std::vector<std::vector<PhysAddr>> groups;
    for (unsigned i = 0; i < cfg.sampleAddrs; ++i) {
        PhysAddr a = pool.randomAddr(rng);
        bool placed = false;
        for (auto &g : groups) {
            if (probe.measurePairRobust(a, g.front(), 10, {},
                                        &out.measureRetry) > thres) {
                g.push_back(a);
                placed = true;
                break;
            }
        }
        if (!placed)
            groups.push_back({a});
    }

    // Caveat of the original method on these machines: same-bank
    // same-row pairs are fast, so coloring by "conflicts with the
    // representative" splits banks into many row-sharing sets; and
    // pure-row pairs look like conflicts. The function search below
    // inherits those errors.

    // Exhaustive small-function search over the candidate bit range.
    std::vector<std::uint64_t> candidates;
    std::vector<unsigned> bits;
    for (unsigned b = cfg.lowestBit; b <= cfg.maxBit; ++b)
        bits.push_back(b);
    auto constant_in_groups = [&](std::uint64_t mask) {
        for (const auto &g : groups) {
            std::uint64_t p0 = parity(g.front(), mask);
            for (PhysAddr a : g) {
                if (parity(a, mask) != p0)
                    return false;
            }
        }
        return true;
    };
    for (std::size_t i = 0; i < bits.size(); ++i) {
        std::uint64_t m1 = 1ULL << bits[i];
        if (cfg.maxFnBits >= 1 && constant_in_groups(m1))
            candidates.push_back(m1);
        for (std::size_t j = i + 1; j < bits.size(); ++j) {
            std::uint64_t m2 = m1 | (1ULL << bits[j]);
            if (cfg.maxFnBits >= 2 && constant_in_groups(m2))
                candidates.push_back(m2);
        }
    }

    // Reduce to an independent basis.
    unsigned phys_bits = sys.mapping().physBits();
    std::vector<std::uint64_t> basis;
    for (std::uint64_t c : candidates) {
        Gf2Matrix m(phys_bits);
        for (auto b : basis)
            m.addRow(b);
        m.addRow(c);
        if (m.rank() == basis.size() + 1)
            basis.push_back(c);
    }

    std::size_t expected_fns = 0;
    while ((1ULL << expected_fns) < groups.size())
        ++expected_fns;
    if (basis.size() < expected_fns || basis.empty()) {
        out.failureReason = "function search incomplete for " +
            std::to_string(groups.size()) + " sets";
        out.code = FailureCode::FunctionSearchIncomplete;
        out.simTimeNs = sys.now() - t0;
        out.timedAccesses = probe.accessCount() - acc0;
        return out;
    }
    out.bankFns = basis;

    // Row bits: the original heuristic assumes pure high-order row
    // bits; single-bit conflicts mark them.
    for (unsigned b = cfg.lowestBit; b < phys_bits; ++b) {
        auto base = pool.pairBase(rng, 1ULL << b);
        if (!base)
            continue;
        if (probe.measurePairRobust(*base, *base ^ (1ULL << b), 10, {},
                                    &out.measureRetry) > thres)
            out.rowBits.push_back(b);
    }

    out.success = !out.rowBits.empty();
    if (!out.success) {
        out.failureReason = "no pure row bits detected";
        out.code = FailureCode::NoPureRowBits;
    }
    out.simTimeNs = sys.now() - t0;
    out.timedAccesses = probe.accessCount() - acc0;
    return out;
}

} // namespace rho
