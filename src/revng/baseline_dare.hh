/**
 * @file
 * DARE-style baseline (ZenHammer's DRAM address reverse-engineering
 * tool, Jattke et al., USENIX Security 2024) for Table 5.
 *
 * Method: allocate superpages so physical bits within a 2 MiB frame
 * (bits 0..20) are known, recover functions over those bits with
 * timing, and extend to higher bits with offset/coloring heuristics
 * across superpages. The cross-superpage inference is
 * non-deterministic: per high-order bit it occasionally
 * misclassifies, reproducing the partial accuracy the paper observed
 * (34/50 on Comet Lake); mappings whose functions combine several
 * bits above the superpage range (Alder/Raptor Lake) are unrecoverable.
 */

#ifndef RHO_REVNG_BASELINE_DARE_HH
#define RHO_REVNG_BASELINE_DARE_HH

#include "revng/reverse_engineer.hh"

namespace rho
{

/** Knobs for the DARE model. */
struct DareConfig
{
    unsigned lowestBit = 6;
    unsigned superpageBit = 20;   //!< highest in-superpage bit
    double highBitErrorProb = 0.03; //!< per high-bit misclassification
    unsigned superpages = 512;    //!< allocation budget
    Ns superpageSetupNs = 60e6;   //!< per-superpage allocation cost
};

/**
 * The baseline driver. The cross-superpage heuristic is modelled
 * against the ground-truth mapping with injected per-bit error, as
 * the real tool's heuristic cannot be reproduced timing-only here.
 */
class DareReverseEngineer
{
  public:
    DareReverseEngineer(TimingProbe &probe, const PhysPool &pool,
                        const AddressMapping &truth, std::uint64_t seed,
                        DareConfig cfg = DareConfig{});

    MappingRecovery run();

  private:
    TimingProbe &probe;
    const PhysPool &pool;
    const AddressMapping &truth;
    Rng rng;
    DareConfig cfg;
};

} // namespace rho

#endif // RHO_REVNG_BASELINE_DARE_HH
