#include "revng/reverse_engineer.hh"

#include <algorithm>
#include <functional>
#include <map>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "revng/threshold.hh"
#include "trace/tracer.hh"

namespace rho
{

bool
sameFnSpan(const std::vector<std::uint64_t> &a,
           const std::vector<std::uint64_t> &b, unsigned bits)
{
    if (a.size() != b.size())
        return false;
    Gf2Matrix ma(bits);
    for (auto fn : a)
        ma.addRow(fn);
    unsigned rank_a = ma.rank();
    if (rank_a != a.size())
        return false;
    // Equal-dimension spans are equal iff adding any vector of b does
    // not increase the rank.
    for (auto fn : b) {
        Gf2Matrix ext(bits);
        for (auto f2 : a)
            ext.addRow(f2);
        ext.addRow(fn);
        if (ext.rank() != rank_a)
            return false;
    }
    return true;
}

bool
MappingRecovery::matches(const AddressMapping &truth) const
{
    if (!success)
        return false;
    if (regionOffset != truth.regionOffset())
        return false;
    if (rowBits != truth.rowBitPositions())
        return false;
    return sameFnSpan(bankFns, truth.bankFnMasks(), truth.physBits());
}

RhoReverseEngineer::RhoReverseEngineer(TimingProbe &probe_,
                                       const PhysPool &pool_,
                                       std::uint64_t seed,
                                       ReverseEngineerConfig cfg_)
    : probe(probe_), pool(pool_), rng(seed), cfg(cfg_)
{
}

std::optional<PhysAddr>
RhoReverseEngineer::pairBaseAt(std::uint64_t diff_mask, PhysAddr &partner)
{
    if (offset == 0) {
        auto base = pool.pairBase(rng, diff_mask);
        if (!base)
            return std::nullopt;
        partner = *base ^ diff_mask;
        return base;
    }
    // Non-linear probing: the partner differs by diff_mask in the
    // region-normalized space, which is an addition-mangled (not XOR)
    // physical difference. Same acceptance loop as PhysPool::pairBase.
    for (unsigned i = 0; i < 4096; ++i) {
        PhysAddr a = pool.randomAddr(rng);
        PhysAddr b = denormalize(normalize(a) ^ diff_mask);
        if (pool.contains(b)) {
            partner = b;
            return a;
        }
    }
    return std::nullopt;
}

double
RhoReverseEngineer::tSbdr(std::uint64_t diff_mask)
{
    auto measureBatch = [&]() {
        std::vector<double> samples;
        samples.reserve(cfg.pairsPerMeasurement);
        for (unsigned i = 0; i < cfg.pairsPerMeasurement; ++i) {
            PhysAddr partner = 0;
            auto base = pairBaseAt(diff_mask, partner);
            if (!base)
                continue;
            samples.push_back(probe.measurePair(*base, partner,
                                                cfg.roundsPerPair));
        }
        return samples;
    };

    // A batch's instability score: the spread of its MAD inliers, with
    // an extra penalty when too many samples were rejected as
    // outliers. A clean batch (intrinsic rdtscp jitter only) scores
    // well under madStableNs; a batch overlapping an interference
    // burst scores far above it.
    auto score = [&](const std::vector<double> &samples,
                     const std::vector<double> &inliers) {
        double spread = medianAbsDeviation(inliers, median(inliers));
        if (inliers.size() <
            static_cast<std::size_t>(cfg.minInlierFrac * samples.size()))
            spread += cfg.madStableNs;
        return spread;
    };

    std::vector<double> samples = measureBatch();
    measureRetry.recordAttempt();
    if (samples.empty()) {
        warn("tSbdr: no owned pair for mask %llx",
             static_cast<unsigned long long>(diff_mask));
        return 0.0;
    }

    // Keep whole batches independent instead of pooling them: a batch
    // taken inside a burst is contaminated wholesale, and pooling it
    // with later clean samples would let the poisoned majority own
    // the median. The most stable batch wins; re-measure with bounded
    // exponential backoff until one is stable or the budget is spent.
    std::vector<double> inliers =
        madFilter(samples, cfg.madK, cfg.madFloorNs);
    double best_value = median(inliers);
    double best_score = score(samples, inliers);

    Ns backoff = cfg.remeasureBackoffNs;
    for (unsigned round = 0;
         round < cfg.maxRemeasureRounds && best_score > cfg.madStableNs;
         ++round) {
        probe.system().advance(backoff);
        measureRetry.recordRetry(backoff);
        backoff = std::min(backoff * cfg.backoffFactor, cfg.maxBackoffNs);

        samples = measureBatch();
        if (samples.empty())
            continue;
        inliers = madFilter(samples, cfg.madK, cfg.madFloorNs);
        double s = score(samples, inliers);
        if (s < best_score) {
            best_score = s;
            best_value = median(inliers);
        }
    }

    return best_value;
}

std::uint64_t
RhoReverseEngineer::recoverOffset(double thres, unsigned phys_bits)
{
    unsigned g = cfg.offsetGranuleBits;
    offset = 0;
    if (phys_bits <= g)
        return 0;
    // Offsets differing only in the address-space MSB are physically
    // equivalent: XOR at the top bit commutes with mod-2^n add/sub,
    // so the larger offset is the smaller one composed with a uniform
    // bank/row relabeling. Canonicalize to the half range.
    std::uint64_t candidates = 1ULL << (phys_bits - g);
    if (candidates > 1)
        candidates /= 2;

    // The low-bit structure is offset-invariant: candidates only
    // differ in bits >= g, and subtracting a multiple of 2^g never
    // borrows into the low bits, so a low-only diff mask predicts the
    // same partner under every candidate. Classify low single bits,
    // then collect same-function row-inclusive pairs entirely below
    // the granule — one anchor per function, because each candidate
    // discriminator needs an anchor in the function that owns the
    // high bit it perturbs.
    std::vector<unsigned> fast;
    for (unsigned b = cfg.lowestBit; b < g; ++b) {
        if (tSbdr(1ULL << b) <= thres)
            fast.push_back(b);
    }
    constexpr unsigned maxAnchors = 4;
    std::vector<unsigned> anchors;
    std::vector<bool> used(g, false);
    // Descending search: the interleaved functions put their
    // row-partnered bits at the top of the low range, so each
    // function's first slow pair comes quickly, and excluding found
    // bits steers the scan to the next function rather than a
    // duplicate pair of the same one.
    for (std::size_t i = fast.size();
         anchors.size() < maxAnchors && i-- > 1;) {
        if (used[fast[i]])
            continue;
        for (std::size_t j = i; j-- > 0;) {
            if (used[fast[j]])
                continue;
            std::uint64_t m = (1ULL << fast[i]) | (1ULL << fast[j]);
            if (tSbdr(m) > thres) {
                anchors.push_back(fast[j]);
                used[fast[i]] = used[fast[j]] = true;
                break;
            }
        }
    }
    if (anchors.empty())
        return 0;

    // Probe masks {anchor, high bit}. Under the true offset every
    // mask's normalized difference is exactly the mask, so every mask
    // classifies consistently and the same-function {anchor, high}
    // masks are all SBDR-slow. A wrong offset's borrow chain mangles
    // the difference per base, mixing the classes of the masks whose
    // high bit sits where the candidate-vs-truth borrow patterns
    // diverge — killing the MINIMUM per-mask consistency. Score =
    // (#consistent-slow masks, min consistency); the slow count ranks
    // the surviving candidates because residual borrow garbage lands
    // on other functions and turns row conflicts into bank misses.
    std::vector<std::uint64_t> masks;
    for (unsigned hi = g; hi < phys_bits; ++hi) {
        for (unsigned lo : anchors)
            masks.push_back((1ULL << hi) | (1ULL << lo));
    }

    std::uint64_t best = 0;
    double best_cons = -1.0, zero_cons = 0.0;
    unsigned best_slow = 0, zero_slow = 0;
    for (std::uint64_t k = 0; k < candidates; ++k) {
        offset = k << g;
        double min_cons = 1.0;
        unsigned slow_masks = 0;
        for (std::uint64_t m : masks) {
            unsigned slow = 0, n = 0;
            for (unsigned s = 0; s < cfg.offsetSamplesPerMask; ++s) {
                PhysAddr partner = 0;
                auto base = pairBaseAt(m, partner);
                if (!base)
                    continue;
                double t =
                    probe.measurePair(*base, partner, cfg.roundsPerPair);
                ++n;
                slow += t > thres ? 1 : 0;
            }
            if (n == 0)
                continue;
            double slow_frac =
                static_cast<double>(slow) / static_cast<double>(n);
            min_cons =
                std::min(min_cons, std::max(slow_frac, 1.0 - slow_frac));
            if (slow_frac >= cfg.offsetAcceptScore)
                ++slow_masks;
        }
        if (verbose()) {
            inform("recoverOffset: candidate %#llx cons %.3f slow %u",
                   static_cast<unsigned long long>(k << g), min_cons,
                   slow_masks);
        }
        if (k == 0) {
            zero_cons = min_cons;
            zero_slow = slow_masks;
        }
        // Consistency is the gate, recovered-SBDR count the ranking.
        if (min_cons < cfg.offsetAcceptScore)
            continue;
        if (slow_masks > best_slow
            || (slow_masks == best_slow && min_cons > best_cons)) {
            best_cons = min_cons;
            best_slow = slow_masks;
            best = k;
        }
    }

    // Prefer the linear hypothesis: adopt a non-zero offset only when
    // offset 0 is REJECTED by its own masks — a true region offset
    // makes some zero-offset mask mix classes (the borrow chain flips
    // different functions per base), while a linear mapping times
    // perfectly consistently at 0 no matter how tempting a shifted,
    // gauge-equivalent description looks. Noise floods gate every
    // candidate out (best stays 0); both fall back to 0.
    offset = 0;
    if (best != 0 && zero_cons < cfg.offsetAcceptScore
        && best_slow > zero_slow) {
        offset = best << g;
    }
    return offset;
}

double
RhoReverseEngineer::findThreshold()
{
    // Probability-distribution method: random pairs fall into two
    // assembly areas (SBDR and non-SBDR); split them at the widest
    // density gap. The SBDR fraction is roughly 1/(#banks-1), so the
    // upper mode is small but well separated. Chunked over simulated
    // time so a burst poisons at most a minority of the per-chunk
    // thresholds, never the merged histogram.
    return robustSeparatingThreshold(probe, pool, rng,
                                     cfg.thresholdPairs);
}

MappingRecovery
RhoReverseEngineer::run()
{
    MemorySystem &sys = probe.system();
    Ns t0 = sys.now();
    std::uint64_t acc0 = probe.accessCount();

    MappingRecovery out;
    measureRetry = RetryStats{};
    RHO_TRACE(sys.tracer(), t0, EventKind::PhaseBegin, 0,
              static_cast<std::uint32_t>(SimPhase::ReverseEng), 0, 0);

    // Charge the (dominant) setup cost: allocating ~70% of physical
    // memory in 4 KiB pages and reading their pagemap entries.
    sys.advance(static_cast<Ns>(pool.ownedPages()) *
                cfg.setupCostPerPageNs);

    // Step 0: threshold.
    double thres = findThreshold();
    out.thresholdNs = thres;

    unsigned phys_bits = sys.mapping().physBits();
    addrMask = phys_bits >= 64 ? ~0ULL : (1ULL << phys_bits) - 1;

    // Step 0b: non-linear region offset. All subsequent probing runs
    // in the normalized space, where the mapping is plain GF(2) again
    // and Algorithm 1 applies unchanged.
    out.regionOffset = recoverOffset(thres, phys_bits);

    std::vector<unsigned> all_bits;
    for (unsigned b = cfg.lowestBit; b < phys_bits; ++b)
        all_bits.push_back(b);

    // Exclude pure row bits: a single-bit difference that is slow can
    // only be a row bit outside every bank function.
    std::vector<unsigned> pure_row, non_pure;
    for (unsigned b : all_bits) {
        if (tSbdr(1ULL << b) > thres)
            pure_row.push_back(b);
        else
            non_pure.push_back(b);
    }

    // Step 1: Duet. SBDR iff both bits share one bank function and at
    // least one of them is a row bit.
    std::vector<std::pair<unsigned, unsigned>> fn_pairs;
    std::vector<unsigned> row_bits = pure_row;
    for (std::size_t i = 0; i < non_pure.size(); ++i) {
        for (std::size_t j = i + 1; j < non_pure.size(); ++j) {
            unsigned bx = non_pure[i], by = non_pure[j];
            if (tSbdr((1ULL << bx) | (1ULL << by)) > thres) {
                fn_pairs.push_back({bx, by});
                row_bits.push_back(std::max(bx, by));
            }
        }
    }

    if (fn_pairs.empty()) {
        out.failureReason = "no row-inclusive bank functions found";
        out.code = FailureCode::NoRowFunctions;
        out.simTimeNs = sys.now() - t0;
        out.timedAccesses = probe.accessCount() - acc0;
        out.measureRetry = measureRetry;
        RHO_TRACE(sys.tracer(), sys.now(), EventKind::PhaseEnd, 0,
                  static_cast<std::uint32_t>(SimPhase::ReverseEng), 0,
                  0);
        return out;
    }

    std::sort(row_bits.begin(), row_bits.end());
    row_bits.erase(std::unique(row_bits.begin(), row_bits.end()),
                   row_bits.end());

    // Step 2: Trios. Borrow an SBDR state from a row-inclusive
    // function; a third differing bit that is a bank bit breaks it.
    auto [bf, bf2] = fn_pairs.front();
    std::uint64_t borrow = (1ULL << bf) | (1ULL << bf2);
    std::vector<unsigned> non_row_bank;
    for (unsigned bx : non_pure) {
        if (bx == bf || bx == bf2)
            continue;
        if (std::binary_search(row_bits.begin(), row_bits.end(), bx))
            continue;
        if (tSbdr(borrow | (1ULL << bx)) < thres)
            non_row_bank.push_back(bx);
    }

    // Step 3: Quartet. Two non-row bank bits in the same function
    // cancel out and preserve the borrowed SBDR state.
    for (std::size_t i = 0; i < non_row_bank.size(); ++i) {
        for (std::size_t j = i + 1; j < non_row_bank.size(); ++j) {
            unsigned bx = non_row_bank[i], by = non_row_bank[j];
            std::uint64_t m = borrow | (1ULL << bx) | (1ULL << by);
            if (tSbdr(m) > thres)
                fn_pairs.push_back({bx, by});
        }
    }

    // Merge pairs into functions (union-find over bits).
    std::map<unsigned, unsigned> parent;
    std::function<unsigned(unsigned)> find = [&](unsigned x) {
        auto it = parent.find(x);
        if (it == parent.end() || it->second == x)
            return x;
        unsigned r = find(it->second);
        parent[x] = r;
        return r;
    };
    for (auto [a, b] : fn_pairs) {
        parent.try_emplace(a, a);
        parent.try_emplace(b, b);
        unsigned ra = find(a), rb = find(b);
        if (ra != rb)
            parent[ra] = rb;
    }
    std::map<unsigned, std::uint64_t> groups;
    for (auto &[bit, _] : parent)
        groups[find(bit)] |= 1ULL << bit;

    for (auto &[root, mask] : groups)
        out.bankFns.push_back(mask);
    std::sort(out.bankFns.begin(), out.bankFns.end());
    out.rowBits = row_bits;

    out.success = !out.bankFns.empty() && !out.rowBits.empty();
    if (!out.success) {
        out.failureReason = "incomplete structure";
        out.code = FailureCode::IncompleteStructure;
    }
    out.simTimeNs = sys.now() - t0;
    out.timedAccesses = probe.accessCount() - acc0;
    out.measureRetry = measureRetry;
    RHO_TRACE(sys.tracer(), sys.now(), EventKind::PhaseEnd,
              out.success ? 1 : 0,
              static_cast<std::uint32_t>(SimPhase::ReverseEng),
              out.bankFns.size(), out.rowBits.size());
    return out;
}

} // namespace rho
