#include "revng/reverse_engineer.hh"

#include <algorithm>
#include <functional>
#include <map>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "revng/threshold.hh"
#include "trace/tracer.hh"

namespace rho
{

bool
sameFnSpan(const std::vector<std::uint64_t> &a,
           const std::vector<std::uint64_t> &b, unsigned bits)
{
    if (a.size() != b.size())
        return false;
    Gf2Matrix ma(bits);
    for (auto fn : a)
        ma.addRow(fn);
    unsigned rank_a = ma.rank();
    if (rank_a != a.size())
        return false;
    // Equal-dimension spans are equal iff adding any vector of b does
    // not increase the rank.
    for (auto fn : b) {
        Gf2Matrix ext(bits);
        for (auto f2 : a)
            ext.addRow(f2);
        ext.addRow(fn);
        if (ext.rank() != rank_a)
            return false;
    }
    return true;
}

bool
MappingRecovery::matches(const AddressMapping &truth) const
{
    if (!success)
        return false;
    if (rowBits != truth.rowBitPositions())
        return false;
    return sameFnSpan(bankFns, truth.bankFnMasks(), truth.physBits());
}

RhoReverseEngineer::RhoReverseEngineer(TimingProbe &probe_,
                                       const PhysPool &pool_,
                                       std::uint64_t seed,
                                       ReverseEngineerConfig cfg_)
    : probe(probe_), pool(pool_), rng(seed), cfg(cfg_)
{
}

double
RhoReverseEngineer::tSbdr(std::uint64_t diff_mask)
{
    auto measureBatch = [&]() {
        std::vector<double> samples;
        samples.reserve(cfg.pairsPerMeasurement);
        for (unsigned i = 0; i < cfg.pairsPerMeasurement; ++i) {
            auto base = pool.pairBase(rng, diff_mask);
            if (!base)
                continue;
            samples.push_back(probe.measurePair(
                *base, *base ^ diff_mask, cfg.roundsPerPair));
        }
        return samples;
    };

    // A batch's instability score: the spread of its MAD inliers, with
    // an extra penalty when too many samples were rejected as
    // outliers. A clean batch (intrinsic rdtscp jitter only) scores
    // well under madStableNs; a batch overlapping an interference
    // burst scores far above it.
    auto score = [&](const std::vector<double> &samples,
                     const std::vector<double> &inliers) {
        double spread = medianAbsDeviation(inliers, median(inliers));
        if (inliers.size() <
            static_cast<std::size_t>(cfg.minInlierFrac * samples.size()))
            spread += cfg.madStableNs;
        return spread;
    };

    std::vector<double> samples = measureBatch();
    measureRetry.recordAttempt();
    if (samples.empty()) {
        warn("tSbdr: no owned pair for mask %llx",
             static_cast<unsigned long long>(diff_mask));
        return 0.0;
    }

    // Keep whole batches independent instead of pooling them: a batch
    // taken inside a burst is contaminated wholesale, and pooling it
    // with later clean samples would let the poisoned majority own
    // the median. The most stable batch wins; re-measure with bounded
    // exponential backoff until one is stable or the budget is spent.
    std::vector<double> inliers =
        madFilter(samples, cfg.madK, cfg.madFloorNs);
    double best_value = median(inliers);
    double best_score = score(samples, inliers);

    Ns backoff = cfg.remeasureBackoffNs;
    for (unsigned round = 0;
         round < cfg.maxRemeasureRounds && best_score > cfg.madStableNs;
         ++round) {
        probe.system().advance(backoff);
        measureRetry.recordRetry(backoff);
        backoff = std::min(backoff * cfg.backoffFactor, cfg.maxBackoffNs);

        samples = measureBatch();
        if (samples.empty())
            continue;
        inliers = madFilter(samples, cfg.madK, cfg.madFloorNs);
        double s = score(samples, inliers);
        if (s < best_score) {
            best_score = s;
            best_value = median(inliers);
        }
    }

    return best_value;
}

double
RhoReverseEngineer::findThreshold()
{
    // Probability-distribution method: random pairs fall into two
    // assembly areas (SBDR and non-SBDR); split them at the widest
    // density gap. The SBDR fraction is roughly 1/(#banks-1), so the
    // upper mode is small but well separated. Chunked over simulated
    // time so a burst poisons at most a minority of the per-chunk
    // thresholds, never the merged histogram.
    return robustSeparatingThreshold(probe, pool, rng,
                                     cfg.thresholdPairs);
}

MappingRecovery
RhoReverseEngineer::run()
{
    MemorySystem &sys = probe.system();
    Ns t0 = sys.now();
    std::uint64_t acc0 = probe.accessCount();

    MappingRecovery out;
    measureRetry = RetryStats{};
    RHO_TRACE(sys.tracer(), t0, EventKind::PhaseBegin, 0,
              static_cast<std::uint32_t>(SimPhase::ReverseEng), 0, 0);

    // Charge the (dominant) setup cost: allocating ~70% of physical
    // memory in 4 KiB pages and reading their pagemap entries.
    sys.advance(static_cast<Ns>(pool.ownedPages()) *
                cfg.setupCostPerPageNs);

    // Step 0: threshold.
    double thres = findThreshold();
    out.thresholdNs = thres;

    unsigned phys_bits = sys.mapping().physBits();
    std::vector<unsigned> all_bits;
    for (unsigned b = cfg.lowestBit; b < phys_bits; ++b)
        all_bits.push_back(b);

    // Exclude pure row bits: a single-bit difference that is slow can
    // only be a row bit outside every bank function.
    std::vector<unsigned> pure_row, non_pure;
    for (unsigned b : all_bits) {
        if (tSbdr(1ULL << b) > thres)
            pure_row.push_back(b);
        else
            non_pure.push_back(b);
    }

    // Step 1: Duet. SBDR iff both bits share one bank function and at
    // least one of them is a row bit.
    std::vector<std::pair<unsigned, unsigned>> fn_pairs;
    std::vector<unsigned> row_bits = pure_row;
    for (std::size_t i = 0; i < non_pure.size(); ++i) {
        for (std::size_t j = i + 1; j < non_pure.size(); ++j) {
            unsigned bx = non_pure[i], by = non_pure[j];
            if (tSbdr((1ULL << bx) | (1ULL << by)) > thres) {
                fn_pairs.push_back({bx, by});
                row_bits.push_back(std::max(bx, by));
            }
        }
    }

    if (fn_pairs.empty()) {
        out.failureReason = "no row-inclusive bank functions found";
        out.code = FailureCode::NoRowFunctions;
        out.simTimeNs = sys.now() - t0;
        out.timedAccesses = probe.accessCount() - acc0;
        out.measureRetry = measureRetry;
        RHO_TRACE(sys.tracer(), sys.now(), EventKind::PhaseEnd, 0,
                  static_cast<std::uint32_t>(SimPhase::ReverseEng), 0,
                  0);
        return out;
    }

    std::sort(row_bits.begin(), row_bits.end());
    row_bits.erase(std::unique(row_bits.begin(), row_bits.end()),
                   row_bits.end());

    // Step 2: Trios. Borrow an SBDR state from a row-inclusive
    // function; a third differing bit that is a bank bit breaks it.
    auto [bf, bf2] = fn_pairs.front();
    std::uint64_t borrow = (1ULL << bf) | (1ULL << bf2);
    std::vector<unsigned> non_row_bank;
    for (unsigned bx : non_pure) {
        if (bx == bf || bx == bf2)
            continue;
        if (std::binary_search(row_bits.begin(), row_bits.end(), bx))
            continue;
        if (tSbdr(borrow | (1ULL << bx)) < thres)
            non_row_bank.push_back(bx);
    }

    // Step 3: Quartet. Two non-row bank bits in the same function
    // cancel out and preserve the borrowed SBDR state.
    for (std::size_t i = 0; i < non_row_bank.size(); ++i) {
        for (std::size_t j = i + 1; j < non_row_bank.size(); ++j) {
            unsigned bx = non_row_bank[i], by = non_row_bank[j];
            std::uint64_t m = borrow | (1ULL << bx) | (1ULL << by);
            if (tSbdr(m) > thres)
                fn_pairs.push_back({bx, by});
        }
    }

    // Merge pairs into functions (union-find over bits).
    std::map<unsigned, unsigned> parent;
    std::function<unsigned(unsigned)> find = [&](unsigned x) {
        auto it = parent.find(x);
        if (it == parent.end() || it->second == x)
            return x;
        unsigned r = find(it->second);
        parent[x] = r;
        return r;
    };
    for (auto [a, b] : fn_pairs) {
        parent.try_emplace(a, a);
        parent.try_emplace(b, b);
        unsigned ra = find(a), rb = find(b);
        if (ra != rb)
            parent[ra] = rb;
    }
    std::map<unsigned, std::uint64_t> groups;
    for (auto &[bit, _] : parent)
        groups[find(bit)] |= 1ULL << bit;

    for (auto &[root, mask] : groups)
        out.bankFns.push_back(mask);
    std::sort(out.bankFns.begin(), out.bankFns.end());
    out.rowBits = row_bits;

    out.success = !out.bankFns.empty() && !out.rowBits.empty();
    if (!out.success) {
        out.failureReason = "incomplete structure";
        out.code = FailureCode::IncompleteStructure;
    }
    out.simTimeNs = sys.now() - t0;
    out.timedAccesses = probe.accessCount() - acc0;
    out.measureRetry = measureRetry;
    RHO_TRACE(sys.tracer(), sys.now(), EventKind::PhaseEnd,
              out.success ? 1 : 0,
              static_cast<std::uint32_t>(SimPhase::ReverseEng),
              out.bankFns.size(), out.rowBits.size());
    return out;
}

} // namespace rho
