#include "revng/threshold.hh"

#include <vector>

#include "common/stats.hh"

namespace rho
{

double
robustSeparatingThreshold(TimingProbe &probe, const PhysPool &pool,
                          Rng &rng, unsigned total_pairs, unsigned rounds,
                          unsigned chunks, Ns chunk_gap_ns)
{
    chunks = std::max(1u, chunks);
    unsigned per_chunk = std::max(1u, total_pairs / chunks);

    std::vector<double> thresholds;
    thresholds.reserve(chunks);
    for (unsigned c = 0; c < chunks; ++c) {
        if (c > 0)
            probe.system().advance(chunk_gap_ns);
        Histogram hist(20.0, 140.0, 240);
        for (unsigned i = 0; i < per_chunk; ++i) {
            hist.add(probe.measurePair(pool.randomAddr(rng),
                                       pool.randomAddr(rng), rounds));
        }
        thresholds.push_back(hist.separatingThreshold(0.005, 0.004));
    }
    return median(std::move(thresholds));
}

} // namespace rho
