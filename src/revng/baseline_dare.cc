#include "revng/baseline_dare.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/stats.hh"
#include "revng/threshold.hh"

namespace rho
{

DareReverseEngineer::DareReverseEngineer(TimingProbe &probe_,
                                         const PhysPool &pool_,
                                         const AddressMapping &truth_,
                                         std::uint64_t seed,
                                         DareConfig cfg_)
    : probe(probe_), pool(pool_), truth(truth_), rng(seed), cfg(cfg_)
{
}

MappingRecovery
DareReverseEngineer::run()
{
    MemorySystem &sys = probe.system();
    Ns t0 = sys.now();
    std::uint64_t acc0 = probe.accessCount();
    MappingRecovery out;

    // Superpage allocation dominates the tool's runtime.
    sys.advance(static_cast<double>(cfg.superpages) *
                cfg.superpageSetupNs);

    double thres = robustSeparatingThreshold(probe, pool, rng, 400);
    out.thresholdNs = thres;

    // In-superpage measurements: all pairwise tests over bits the
    // superpage physically pins down (exact, like rhoHammer's Duet
    // restricted to the low range).
    for (unsigned bx = cfg.lowestBit; bx <= cfg.superpageBit; ++bx) {
        for (unsigned by = bx + 1; by <= cfg.superpageBit; ++by) {
            std::uint64_t m = (1ULL << bx) | (1ULL << by);
            auto base = pool.pairBase(rng, m);
            if (base)
                probe.measurePair(*base, *base ^ m, 10);
        }
    }

    // Cross-superpage extension (modelled): per-function, bits above
    // the superpage range are inferred via offset/coloring heuristics
    // with an error probability each; functions with two or more such
    // bits cannot be disambiguated at all.
    for (std::uint64_t fn : truth.bankFnMasks()) {
        unsigned high_bits = 0;
        for (unsigned b : bitsOfMask(fn)) {
            if (b > cfg.superpageBit)
                ++high_bits;
        }
        if (high_bits >= 2) {
            out.failureReason =
                "bank functions exceed superpage-resolvable range";
            out.code = FailureCode::SuperpageRangeExceeded;
            out.simTimeNs = sys.now() - t0;
            out.timedAccesses = probe.accessCount() - acc0;
            return out;
        }
        std::uint64_t recovered = 0;
        for (unsigned b : bitsOfMask(fn)) {
            if (b <= cfg.superpageBit || !rng.chance(cfg.highBitErrorProb))
                recovered |= 1ULL << b;
            else if (b + 1 < truth.physBits())
                recovered |= 1ULL << (b + 1); // misattributed offset
        }
        out.bankFns.push_back(recovered);
    }

    // Row bits: in-range rows from timing, high rows via the same
    // noisy extension.
    for (unsigned b : truth.rowBitPositions()) {
        if (b <= cfg.superpageBit || !rng.chance(cfg.highBitErrorProb)) {
            out.rowBits.push_back(b);
        }
    }
    std::sort(out.rowBits.begin(), out.rowBits.end());

    out.success = true;
    out.simTimeNs = sys.now() - t0;
    out.timedAccesses = probe.accessCount() - acc0;
    return out;
}

} // namespace rho
