#include "fault/fault_schedule.hh"

#include <algorithm>
#include <cmath>

#include "common/table.hh"

namespace rho
{

bool
FaultLevels::any() const
{
    return timingNoiseSigmaNs > 0.0 || timingDriftNs != 0.0 ||
           flipSuppressProb > 0.0 || spuriousRefreshProb > 0.0 ||
           allocFailProb > 0.0 || fragmentSpikeProb > 0.0 ||
           workerCrashProb > 0.0 || workerHangProb > 0.0 ||
           journalBitRotProb > 0.0;
}

namespace
{

double
saturatingProb(double a, double b)
{
    return std::clamp(a + b, 0.0, 1.0);
}

} // namespace

FaultLevels &
FaultLevels::operator+=(const FaultLevels &o)
{
    timingNoiseSigmaNs += o.timingNoiseSigmaNs;
    timingDriftNs += o.timingDriftNs;
    flipSuppressProb = saturatingProb(flipSuppressProb, o.flipSuppressProb);
    spuriousRefreshProb =
        saturatingProb(spuriousRefreshProb, o.spuriousRefreshProb);
    allocFailProb = saturatingProb(allocFailProb, o.allocFailProb);
    fragmentSpikeProb =
        saturatingProb(fragmentSpikeProb, o.fragmentSpikeProb);
    workerCrashProb = saturatingProb(workerCrashProb, o.workerCrashProb);
    workerHangProb = saturatingProb(workerHangProb, o.workerHangProb);
    journalBitRotProb =
        saturatingProb(journalBitRotProb, o.journalBitRotProb);
    return *this;
}

FaultLevels
FaultLevels::scaled(double k) const
{
    FaultLevels out;
    out.timingNoiseSigmaNs = timingNoiseSigmaNs * k;
    out.timingDriftNs = timingDriftNs * k;
    out.flipSuppressProb = std::clamp(flipSuppressProb * k, 0.0, 1.0);
    out.spuriousRefreshProb =
        std::clamp(spuriousRefreshProb * k, 0.0, 1.0);
    out.allocFailProb = std::clamp(allocFailProb * k, 0.0, 1.0);
    out.fragmentSpikeProb = std::clamp(fragmentSpikeProb * k, 0.0, 1.0);
    out.workerCrashProb = std::clamp(workerCrashProb * k, 0.0, 1.0);
    out.workerHangProb = std::clamp(workerHangProb * k, 0.0, 1.0);
    out.journalBitRotProb =
        std::clamp(journalBitRotProb * k, 0.0, 1.0);
    return out;
}

bool
FaultPhase::activeAt(Ns t) const
{
    if (t < startNs || t >= endNs)
        return false;
    if (repeatPeriodNs <= 0.0)
        return true;
    Ns offset = std::fmod(t - startNs, repeatPeriodNs);
    return offset < burstLenNs;
}

FaultSchedule &
FaultSchedule::add(const FaultPhase &p)
{
    phases.push_back(p);
    return *this;
}

FaultSchedule &
FaultSchedule::merge(const FaultSchedule &o)
{
    phases.insert(phases.end(), o.phases.begin(), o.phases.end());
    return *this;
}

FaultLevels
FaultSchedule::levelsAt(Ns t) const
{
    FaultLevels out;
    for (const FaultPhase &p : phases) {
        if (p.activeAt(t))
            out += p.levels;
    }
    return out;
}

FaultSchedule
FaultSchedule::scaled(double k) const
{
    FaultSchedule out;
    for (const FaultPhase &p : phases) {
        FaultPhase q = p;
        q.levels = p.levels.scaled(k);
        out.add(q);
    }
    return out;
}

std::string
FaultSchedule::describe() const
{
    if (phases.empty())
        return "fault schedule: none";
    return strFormat("fault schedule: %zu phase%s", phases.size(),
                     phases.size() == 1 ? "" : "s");
}

FaultSchedule
FaultSchedule::none()
{
    return FaultSchedule();
}

FaultSchedule
FaultSchedule::constant(const FaultLevels &levels)
{
    FaultPhase p;
    p.levels = levels;
    return FaultSchedule().add(p);
}

FaultSchedule
FaultSchedule::timingBursts(Ns period, Ns burst, Ns sigma, Ns drift)
{
    FaultPhase p;
    p.repeatPeriodNs = period;
    p.burstLenNs = burst;
    p.levels.timingNoiseSigmaNs = sigma;
    p.levels.timingDriftNs = drift;
    return FaultSchedule().add(p);
}

FaultSchedule
FaultSchedule::flipNonReproduction(double prob)
{
    FaultLevels l;
    l.flipSuppressProb = prob;
    return constant(l);
}

FaultSchedule
FaultSchedule::allocPressure(double fail_prob, double fragment_prob)
{
    FaultLevels l;
    l.allocFailProb = fail_prob;
    l.fragmentSpikeProb = fragment_prob;
    return constant(l);
}

FaultSchedule
FaultSchedule::spuriousTrr(double prob_per_act, Ns start, Ns end)
{
    FaultPhase p;
    p.startNs = start;
    p.endNs = end;
    p.levels.spuriousRefreshProb = prob_per_act;
    return FaultSchedule().add(p);
}

FaultSchedule
FaultSchedule::serviceChaos(double crash_prob, double hang_prob,
                            double bit_rot_prob)
{
    FaultLevels l;
    l.workerCrashProb = crash_prob;
    l.workerHangProb = hang_prob;
    l.journalBitRotProb = bit_rot_prob;
    return constant(l);
}

FaultSchedule
FaultSchedule::chaosDefault()
{
    // Timing bursts: a co-running workload wakes up every 50 ms of
    // simulated time and interferes for 8 ms (16% duty cycle), adding
    // 12 ns of jitter and a 3 ns baseline drift — enough to defeat a
    // naive mean but recoverable with MAD filtering.
    return FaultSchedule::timingBursts(50e6, 8e6, 12.0, 3.0)
        .merge(FaultSchedule::flipNonReproduction(0.10))
        .merge(FaultSchedule::allocPressure(0.02, 0.005));
}

} // namespace rho
