#include "fault/fault_injector.hh"

#include "common/table.hh"

namespace rho
{

std::string
FaultStats::summary() const
{
    return strFormat(
        "faults: timing=%llu flips-suppressed=%llu spurious-refresh=%llu "
        "alloc-fail=%llu frag-spike=%llu worker-crash=%llu "
        "worker-hang=%llu journal-rot=%llu",
        (unsigned long long)timingPerturbations,
        (unsigned long long)flipsSuppressed,
        (unsigned long long)spuriousRefreshes,
        (unsigned long long)allocFailures,
        (unsigned long long)fragmentSpikes,
        (unsigned long long)workerCrashes,
        (unsigned long long)workerHangs,
        (unsigned long long)journalBitsFlipped);
}

FaultInjector::FaultInjector(FaultSchedule schedule, std::uint64_t seed)
    : sched(std::move(schedule)), timingRng(hashCombine(seed, 1)),
      flipRng(hashCombine(seed, 2)), refreshRng(hashCombine(seed, 3)),
      allocRng(hashCombine(seed, 4)), fragmentRng(hashCombine(seed, 5)),
      crashRng(hashCombine(seed, 6)), hangRng(hashCombine(seed, 7)),
      rotRng(hashCombine(seed, 8))
{
}

void
FaultInjector::noteActivity(bool active)
{
    if (active == lastActive)
        return;
    lastActive = active;
    RHO_TRACE(tracer, now(),
              active ? EventKind::FaultPhaseEnter
                     : EventKind::FaultPhaseExit,
              0, 0, 0, 0);
}

Ns
FaultInjector::timingPerturbation()
{
    FaultLevels l = levelsNow();
    noteActivity(l.any());
    if (l.timingNoiseSigmaNs <= 0.0 && l.timingDriftNs == 0.0)
        return 0.0;
    ++st.timingPerturbations;
    RHO_TRACE(tracer, now(), EventKind::FaultDelivered, 0,
              static_cast<std::uint32_t>(FaultChannel::Timing), 0, 0);
    Ns jitter = l.timingNoiseSigmaNs > 0.0
                    ? timingRng.normal(0.0, l.timingNoiseSigmaNs)
                    : 0.0;
    return l.timingDriftNs + jitter;
}

bool
FaultInjector::suppressFlip()
{
    FaultLevels l = levelsNow();
    noteActivity(l.any());
    // Rng::chance(p <= 0) returns false without consuming a draw, so
    // an inactive channel leaves the stream untouched.
    bool hit = flipRng.chance(l.flipSuppressProb);
    if (hit) {
        ++st.flipsSuppressed;
        RHO_TRACE(tracer, now(), EventKind::FaultDelivered, 0,
                  static_cast<std::uint32_t>(FaultChannel::FlipSuppress),
                  0, 0);
    }
    return hit;
}

bool
FaultInjector::spuriousRefresh()
{
    FaultLevels l = levelsNow();
    noteActivity(l.any());
    bool hit = refreshRng.chance(l.spuriousRefreshProb);
    if (hit) {
        ++st.spuriousRefreshes;
        RHO_TRACE(
            tracer, now(), EventKind::FaultDelivered, 0,
            static_cast<std::uint32_t>(FaultChannel::SpuriousRefresh), 0,
            0);
    }
    return hit;
}

bool
FaultInjector::allocFails()
{
    FaultLevels l = levelsNow();
    noteActivity(l.any());
    bool hit = allocRng.chance(l.allocFailProb);
    if (hit) {
        ++st.allocFailures;
        RHO_TRACE(tracer, now(), EventKind::FaultDelivered, 0,
                  static_cast<std::uint32_t>(FaultChannel::AllocFail), 0,
                  0);
    }
    return hit;
}

bool
FaultInjector::workerCrash()
{
    FaultLevels l = levelsNow();
    noteActivity(l.any());
    bool hit = crashRng.chance(l.workerCrashProb);
    if (hit) {
        ++st.workerCrashes;
        RHO_TRACE(tracer, now(), EventKind::FaultDelivered, 0,
                  static_cast<std::uint32_t>(FaultChannel::WorkerCrash),
                  0, 0);
    }
    return hit;
}

bool
FaultInjector::workerHang()
{
    FaultLevels l = levelsNow();
    noteActivity(l.any());
    bool hit = hangRng.chance(l.workerHangProb);
    if (hit) {
        ++st.workerHangs;
        RHO_TRACE(tracer, now(), EventKind::FaultDelivered, 0,
                  static_cast<std::uint32_t>(FaultChannel::WorkerHang),
                  0, 0);
    }
    return hit;
}

int
FaultInjector::journalBitRot(std::size_t num_bits)
{
    FaultLevels l = levelsNow();
    noteActivity(l.any());
    if (num_bits == 0 || !rotRng.chance(l.journalBitRotProb))
        return -1;
    ++st.journalBitsFlipped;
    RHO_TRACE(tracer, now(), EventKind::FaultDelivered, 0,
              static_cast<std::uint32_t>(FaultChannel::JournalBitRot), 0,
              0);
    return static_cast<int>(rotRng.uniformInt(0, num_bits - 1));
}

bool
FaultInjector::fragmentSpike()
{
    FaultLevels l = levelsNow();
    noteActivity(l.any());
    bool hit = fragmentRng.chance(l.fragmentSpikeProb);
    if (hit) {
        ++st.fragmentSpikes;
        RHO_TRACE(tracer, now(), EventKind::FaultDelivered, 0,
                  static_cast<std::uint32_t>(FaultChannel::FragmentSpike),
                  0, 0);
    }
    return hit;
}

} // namespace rho
