#include "fault/fault_injector.hh"

#include "common/table.hh"

namespace rho
{

std::string
FaultStats::summary() const
{
    return strFormat(
        "faults: timing=%llu flips-suppressed=%llu spurious-refresh=%llu "
        "alloc-fail=%llu frag-spike=%llu",
        (unsigned long long)timingPerturbations,
        (unsigned long long)flipsSuppressed,
        (unsigned long long)spuriousRefreshes,
        (unsigned long long)allocFailures,
        (unsigned long long)fragmentSpikes);
}

FaultInjector::FaultInjector(FaultSchedule schedule, std::uint64_t seed)
    : sched(std::move(schedule)), timingRng(hashCombine(seed, 1)),
      flipRng(hashCombine(seed, 2)), refreshRng(hashCombine(seed, 3)),
      allocRng(hashCombine(seed, 4)), fragmentRng(hashCombine(seed, 5))
{
}

Ns
FaultInjector::timingPerturbation()
{
    FaultLevels l = levelsNow();
    if (l.timingNoiseSigmaNs <= 0.0 && l.timingDriftNs == 0.0)
        return 0.0;
    ++st.timingPerturbations;
    Ns jitter = l.timingNoiseSigmaNs > 0.0
                    ? timingRng.normal(0.0, l.timingNoiseSigmaNs)
                    : 0.0;
    return l.timingDriftNs + jitter;
}

bool
FaultInjector::suppressFlip()
{
    double p = levelsNow().flipSuppressProb;
    // Rng::chance(p <= 0) returns false without consuming a draw, so
    // an inactive channel leaves the stream untouched.
    bool hit = flipRng.chance(p);
    if (hit)
        ++st.flipsSuppressed;
    return hit;
}

bool
FaultInjector::spuriousRefresh()
{
    bool hit = refreshRng.chance(levelsNow().spuriousRefreshProb);
    if (hit)
        ++st.spuriousRefreshes;
    return hit;
}

bool
FaultInjector::allocFails()
{
    bool hit = allocRng.chance(levelsNow().allocFailProb);
    if (hit)
        ++st.allocFailures;
    return hit;
}

bool
FaultInjector::fragmentSpike()
{
    bool hit = fragmentRng.chance(levelsNow().fragmentSpikeProb);
    if (hit)
        ++st.fragmentSpikes;
    return hit;
}

} // namespace rho
