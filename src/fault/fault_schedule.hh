/**
 * @file
 * Composable fault schedules: *what* environmental perturbation is
 * active *when*, in simulated time.
 *
 * A FaultSchedule is a set of phases; each phase contributes a set of
 * fault intensities (FaultLevels) over a simulated-time window, either
 * once or as a repeating burst train (modelling co-running workloads
 * that come and go). Schedules compose by merging phases, so a chaos
 * experiment is built from small named ingredients:
 *
 *   FaultSchedule s = FaultSchedule::timingBursts(50e6, 8e6, 12.0, 3.0)
 *                         .merge(FaultSchedule::flipNonReproduction(0.10))
 *                         .merge(FaultSchedule::allocPressure(0.02, 0.005));
 *
 * Everything is pure data — the FaultInjector owns the randomness.
 */

#ifndef RHO_FAULT_FAULT_SCHEDULE_HH
#define RHO_FAULT_FAULT_SCHEDULE_HH

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rho
{

/** Fault intensities active at one instant. Zero means "off". */
struct FaultLevels
{
    Ns timingNoiseSigmaNs = 0.0;    //!< extra gaussian timing jitter
    Ns timingDriftNs = 0.0;         //!< baseline shift of measurements
    double flipSuppressProb = 0.0;  //!< P(weak cell holds its charge)
    double spuriousRefreshProb = 0.0; //!< P(extra TRR-style refresh)/ACT
    double allocFailProb = 0.0;     //!< P(buddy allocation fails)
    double fragmentSpikeProb = 0.0; //!< P(fragmentation spike)/alloc
    double workerCrashProb = 0.0;   //!< P(worker dies mid-shard)/launch
    double workerHangProb = 0.0;    //!< P(worker wedges)/launch
    double journalBitRotProb = 0.0; //!< P(journal record bit flips)/record

    /** True if any channel is non-zero. */
    bool any() const;

    /** Accumulate another phase's contribution (probs saturate at 1). */
    FaultLevels &operator+=(const FaultLevels &o);

    /** Multiply every intensity by k (probs clamp to [0, 1]). */
    FaultLevels scaled(double k) const;
};

/**
 * One schedule entry: levels active over [startNs, endNs), optionally
 * as a repeating burst train — active for the first burstLenNs of
 * every repeatPeriodNs within the window.
 */
struct FaultPhase
{
    Ns startNs = 0.0;
    Ns endNs = std::numeric_limits<double>::infinity();
    Ns repeatPeriodNs = 0.0; //!< 0 = continuously active in the window
    Ns burstLenNs = 0.0;     //!< burst duration when repeating
    FaultLevels levels;

    bool activeAt(Ns t) const;
};

/** A composable set of fault phases. */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    FaultSchedule &add(const FaultPhase &p);
    FaultSchedule &merge(const FaultSchedule &o);

    /** Sum of all phases active at simulated time t. */
    FaultLevels levelsAt(Ns t) const;

    bool empty() const { return phases.empty(); }
    std::size_t numPhases() const { return phases.size(); }

    /** Uniformly scale every phase's intensities (escalation knob). */
    FaultSchedule scaled(double k) const;

    /** One-line description for logs. */
    std::string describe() const;

    // ---- Named ingredients -------------------------------------------

    /** The empty schedule (injector becomes a no-op). */
    static FaultSchedule none();

    /** Levels active for the whole run. */
    static FaultSchedule constant(const FaultLevels &levels);

    /**
     * Repeating timing-noise bursts: every `period` ns a co-running
     * workload occupies the machine for `burst` ns, adding gaussian
     * jitter (`sigma`) and a baseline drift (`drift`) to measurements.
     */
    static FaultSchedule timingBursts(Ns period, Ns burst, Ns sigma,
                                      Ns drift);

    /** Constant probability that a crossed threshold does not flip. */
    static FaultSchedule flipNonReproduction(double prob);

    /** Constant allocator pressure: failures + fragmentation spikes. */
    static FaultSchedule allocPressure(double fail_prob,
                                       double fragment_prob);

    /** Per-ACT spurious TRR-style neighbour refreshes in a window. */
    static FaultSchedule spuriousTrr(double prob_per_act, Ns start = 0.0,
                                     Ns end =
                                         std::numeric_limits<double>::infinity());

    /**
     * The default chaos mix used by tests and the chaos lab: timing
     * bursts + 10% flip non-reproduction + allocation failures (the
     * ISSUE acceptance schedule).
     */
    static FaultSchedule chaosDefault();

    /**
     * Campaign-service chaos: per-launch worker crash/hang
     * probabilities and per-record journal bit-rot, constant for the
     * whole run. Consumed by the src/service supervisor layer.
     */
    static FaultSchedule serviceChaos(double crash_prob,
                                      double hang_prob,
                                      double bit_rot_prob);

  private:
    std::vector<FaultPhase> phases;
};

} // namespace rho

#endif // RHO_FAULT_FAULT_SCHEDULE_HH
