/**
 * @file
 * FaultInjector: deterministic, seeded execution of a FaultSchedule.
 *
 * The injector is bound to the simulation clock and queried by the
 * components it perturbs (TimingProbe, Dimm, BuddyAllocator). Each
 * fault channel draws from its own Rng stream, seeded from
 * hashCombine(seed, channel), so enabling one channel never shifts
 * another channel's draw sequence — schedules compose without
 * perturbing each other's determinism.
 *
 * A channel only consumes a draw while its level is non-zero, so a
 * schedule with a channel entirely off is bit-identical to one where
 * that channel was never mentioned.
 */

#ifndef RHO_FAULT_FAULT_INJECTOR_HH
#define RHO_FAULT_FAULT_INJECTOR_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"
#include "fault/fault_schedule.hh"
#include "trace/tracer.hh"

namespace rho
{

/** Counters of every fault the injector actually delivered. */
struct FaultStats
{
    std::uint64_t timingPerturbations = 0;
    std::uint64_t flipsSuppressed = 0;
    std::uint64_t spuriousRefreshes = 0;
    std::uint64_t allocFailures = 0;
    std::uint64_t fragmentSpikes = 0;
    std::uint64_t workerCrashes = 0;
    std::uint64_t workerHangs = 0;
    std::uint64_t journalBitsFlipped = 0;

    std::uint64_t
    total() const
    {
        return timingPerturbations + flipsSuppressed + spuriousRefreshes +
               allocFailures + fragmentSpikes + workerCrashes +
               workerHangs + journalBitsFlipped;
    }

    /** One-line human-readable summary for bench/chaos output. */
    std::string summary() const;
};

/** Executes a FaultSchedule against the simulation clock. */
class FaultInjector
{
  public:
    FaultInjector(FaultSchedule schedule, std::uint64_t seed);

    /**
     * Bind to a simulation clock. The pointee must outlive the
     * injector (MemorySystem::attachFaultInjector does this).
     * Unbound, the injector evaluates the schedule at t = 0.
     */
    void bindClock(const Ns *clock_ptr) { clock = clock_ptr; }

    Ns now() const { return clock ? *clock : 0.0; }

    const FaultSchedule &schedule() const { return sched; }
    FaultLevels levelsNow() const { return sched.levelsAt(now()); }

    // ---- Fault queries (each draws from its own stream) --------------

    /** Additive timing perturbation (ns) for one measurement. */
    Ns timingPerturbation();

    /** True if a threshold-crossing weak cell holds its charge. */
    bool suppressFlip();

    /** True if this ACT triggers a spurious neighbour refresh. */
    bool spuriousRefresh();

    /** True if this buddy allocation should fail. */
    bool allocFails();

    /** True if a fragmentation spike should hit the allocator now. */
    bool fragmentSpike();

    /** True if this worker launch should crash mid-shard (supervisor). */
    bool workerCrash();

    /** True if this worker launch should wedge (miss heartbeats). */
    bool workerHang();

    /**
     * Journal bit-rot for one record of `num_bits` bits: the bit index
     * to flip, or -1 to leave the record intact. Wire into
     * JournalOptions::bitRot.
     */
    int journalBitRot(std::size_t num_bits);

    const FaultStats &stats() const { return st; }
    void clearStats() { st = FaultStats{}; }

    /**
     * Attach a tracer (nullptr detaches) for FaultDelivered events and
     * schedule activity transitions (FaultPhaseEnter/Exit, observed at
     * query time — the injector only sees the schedule when consulted).
     * Tracing never consumes a random draw.
     */
    void setTracer(Tracer *t) { tracer = t; }

  private:
    /** Emit phase-transition events when schedule activity changes. */
    void noteActivity(bool active);

    FaultSchedule sched;
    const Ns *clock = nullptr;
    Rng timingRng;
    Rng flipRng;
    Rng refreshRng;
    Rng allocRng;
    Rng fragmentRng;
    Rng crashRng;
    Rng hangRng;
    Rng rotRng;
    FaultStats st;
    Tracer *tracer = nullptr;
    bool lastActive = false;
};

} // namespace rho

#endif // RHO_FAULT_FAULT_INJECTOR_HH
